(* Bench harness entry point.

   Regenerates every table and figure of "A Critique of ANSI SQL
   Isolation Levels" from the engines in this repository, then measures
   the paper's section 4.2 performance claims with bechamel.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- tables  -- Tables 1-4 only
     dune exec bench/main.exe -- figure  -- Figure 2 only
     dune exec bench/main.exe -- histories | recovery | ablation | perf
     dune exec bench/main.exe -- runtime -- multicore pool, writes
                                           BENCH_runtime.json *)

let () =
  let sections =
    match Array.to_list Sys.argv with
    | _ :: args when args <> [] -> args
    | _ ->
      [
        "tables"; "figure"; "histories"; "recovery"; "ablation"; "perf";
        "runtime"; "server";
      ]
  in
  List.iter
    (fun section ->
      match section with
      | "tables" ->
        Sections.table1 ();
        Sections.table2 ();
        Sections.table3 ();
        Sections.table4 ()
      | "table1" -> Sections.table1 ()
      | "table2" -> Sections.table2 ()
      | "table3" -> Sections.table3 ()
      | "table4" -> Sections.table4 ()
      | "figure" | "figure2" -> Sections.figure2 ()
      | "histories" -> Sections.histories ()
      | "recovery" -> Sections.recovery ()
      | "ablation" ->
        Sections.ablation ();
        Sections.phantom_guards ();
        Sections.update_locks ()
      | "perf" -> Perf.all ()
      | "runtime" -> Runtime_bench.runtime ()
      | "mixed" -> ignore (Runtime_bench.mixed ())
      | "server" -> Server_bench.server ()
      | "all" ->
        Sections.all ();
        Perf.all ();
        Runtime_bench.runtime ();
        Server_bench.server ()
      | other ->
        Printf.eprintf
          "unknown section %S (expected \
           tables|table1..4|figure|histories|recovery|ablation|perf|runtime|mixed|server)\n"
          other;
        exit 2)
    sections
