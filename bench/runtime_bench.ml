(* Runtime section: the multicore worker pool driven across isolation
   levels and stress mixes, every run checked by the serializability
   oracle. Prints a comparison table and writes the machine-readable
   BENCH_runtime.json so the performance trajectory is diffable across
   PRs.

   This is a macro-benchmark of the whole runtime (latch, backoff,
   deadlock detector, recorder), not a bechamel micro-benchmark: one run
   per cell is the point, because the oracle verdict is part of the
   result. Throughput numbers are indicative; the oracle columns are
   exact for the recorded interleaving. *)

module L = Isolation.Level
module Generators = Workload.Generators
module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Metrics = Runtime.Metrics
module Sysmem = Runtime.Sysmem
module Certifier = Runtime.Certifier
module Wal = Storage.Wal

let levels =
  [
    L.Read_committed;
    L.Serializable;
    L.Snapshot;
    L.Serializable_snapshot;
    L.Timestamp_ordering;
  ]

let mixes = [ Generators.Transfer; Generators.Hotspot; Generators.Read_heavy ]

(* Small enough that 15 oracle passes stay fast (the detectors are
   polynomial in history size), large enough to contend. *)
let txns = 128
let workers = 8
let accounts = 16
let hot = 4
let ops = 6
let think_us = 50.
let seed = 7

type row = {
  level : L.t;
  mix : Generators.mix;
  m : Metrics.snapshot;
  o : Oracle.t;
}

let run_cell level mix =
  let gen i =
    let p = Generators.stress_program mix ~seed ~accounts ~hot ~ops ~index:i in
    Pool.job ~name:p.Core.Program.name ~level p
  in
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~think_us ~seed ()
  in
  let r = Pool.run cfg (Array.init txns gen) in
  { level; mix; m = r.Pool.metrics; o = (Option.get r.Pool.oracle) }

let verdict o =
  let names ps =
    String.concat "+" (List.map (fun (p, _) -> Phenomena.Phenomenon.name p) ps)
  in
  if Oracle.pattern_free o then "clean"
  else if Oracle.clean o then
    Printf.sprintf "clean (%s patterns)" (names (Oracle.patterns o))
  else Printf.sprintf "ANOMALIES %s" (names (Oracle.anomalies o))

let row_json { level; mix; m; o } =
  Metrics.to_json
    ~extra:
      [
        ("level", Printf.sprintf "%S" (L.name level));
        ("mix", Printf.sprintf "%S" (Generators.mix_name mix));
        ("workers", string_of_int workers);
        ("txns", string_of_int txns);
        ("oracle", Oracle.to_json o);
      ]
    m

let json_path = "BENCH_runtime.json"

(* {2 Worker-scaling sweep}

   The striped-vs-coarse comparison the striping work is accountable to:
   SERIALIZABLE transfers over a uniform key population (every account
   equally likely, so footprints spread across the stripes), zero think
   time so the mutual-exclusion path itself is the bottleneck, workers
   swept 1..8. Each cell runs both the striped pool and the [~coarse]
   baseline on the same jobs; the oracle runs windowed so the polynomial
   post-run check doesn't dominate the sweep. Sub-second cells are
   scheduler-noise lotteries, so each cell is the best of [scaling_reps]
   runs — standard practice for a min-noise throughput estimate.

   The speedup is only meaningful relative to the host's parallelism:
   on a single-core machine the coarse latch never convoys (a domain
   runs thousands of uncontended steps per timeslice), so striped and
   coarse measure the same serial engine and the ratio hovers around
   1.0 +/- noise; the JSON records [cores] so the number can be read in
   context. The stripe-contended ratio column is the signal that
   survives either way. *)

let scaling_workers = [ 1; 2; 4; 8 ]
let scaling_txns = 2048
let scaling_reps = 3
let scaling_accounts = 64

type scaling_row = {
  s_workers : int;
  s_mode : string; (* "striped" | "coarse" *)
  s_stripes : int;
  s_m : Metrics.snapshot;
  s_clean : bool;
}

let run_scaling_cell ~workers ~coarse =
  let gen i =
    let p =
      Generators.stress_program Generators.Transfer ~seed
        ~accounts:scaling_accounts ~hot:scaling_accounts ~ops ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
  in
  let cfg =
    Pool.config ~workers ~coarse
      ~initial:(Generators.bank_accounts scaling_accounts)
      ~think_us:0. ~oracle_window:32 ~seed ()
  in
  let runs =
    List.init scaling_reps (fun _ -> Pool.run cfg (Array.init scaling_txns gen))
  in
  let r =
    List.fold_left
      (fun best r ->
        if r.Pool.metrics.Metrics.throughput > best.Pool.metrics.Metrics.throughput
        then r
        else best)
      (List.hd runs) (List.tl runs)
  in
  {
    s_workers = workers;
    s_mode = (if coarse then "coarse" else "striped");
    s_stripes = (if coarse then 1 else Pool.default_stripes);
    s_m = r.Pool.metrics;
    s_clean = List.for_all (fun r -> Oracle.clean (Option.get r.Pool.oracle)) runs;
  }

let scaling_row_json r =
  Printf.sprintf
    "{\"workers\":%d,\"mode\":%S,\"stripes\":%d,\"txn_s\":%.1f,\
     \"lat_p50_ms\":%.3f,\"lock_stripe_contended\":%.4f,\
     \"stripe_acquired\":%d,\"aborted\":%d,\"deadlocks\":%d,\
     \"oracle_clean\":%b}"
    r.s_workers r.s_mode r.s_stripes r.s_m.Metrics.throughput
    r.s_m.Metrics.lat_p50_ms r.s_m.Metrics.lock_stripe_contended
    r.s_m.Metrics.stripe_acquired r.s_m.Metrics.aborted_total
    r.s_m.Metrics.deadlocks r.s_clean

let scaling () =
  Printf.printf
    "== scaling: SERIALIZABLE uniform transfers, %d txns/cell (best of %d), \
     %d accounts, think 0us, %d cores ==\n"
    scaling_txns scaling_reps scaling_accounts
    (Domain.recommended_domain_count ());
  Printf.printf "  %-8s %-8s %8s %9s %8s %10s %7s %9s %6s\n" "workers" "mode"
    "stripes" "txn/s" "p50ms" "contended" "aborts" "deadlocks" "oracle";
  let rows =
    List.concat_map
      (fun workers ->
        List.map
          (fun coarse ->
            let r = run_scaling_cell ~workers ~coarse in
            Printf.printf
              "  %-8d %-8s %8d %9.0f %8.3f %9.1f%% %7d %9d %6s\n" r.s_workers
              r.s_mode r.s_stripes r.s_m.Metrics.throughput
              r.s_m.Metrics.lat_p50_ms
              (100. *. r.s_m.Metrics.lock_stripe_contended)
              r.s_m.Metrics.aborted_total r.s_m.Metrics.deadlocks
              (if r.s_clean then "clean" else "DIRTY");
            r)
          [ false; true ])
      scaling_workers
  in
  let tput mode w =
    List.fold_left
      (fun acc r ->
        if r.s_mode = mode && r.s_workers = w then r.s_m.Metrics.throughput
        else acc)
      0. rows
  in
  let speedup =
    let c = tput "coarse" 8 in
    if c > 0. then tput "striped" 8 /. c else 0.
  in
  Printf.printf "  striped/coarse speedup at 8 workers: %.2fx\n" speedup;
  if Domain.recommended_domain_count () < 2 then
    Printf.printf
      "  (single-core host: no parallelism for striping to exploit — the \
       ratio measures overhead parity, not scaling)\n";
  (rows, speedup)

(* {2 Certifier overhead}

   The online certifier costs one incremental-graph insertion per
   recorded action, inside the recorder's critical section. The
   accountable comparison: the same READ COMMITTED hotspot cell with and
   without [~certify] (the throughput delta is the online overhead), set
   against the wall cost of the offline full-history replay
   ({!Runtime.Certifier.replay}) and of the complete post-run oracle —
   the polynomial machinery an online-certified long run can skip. READ
   COMMITTED because it actually admits dependency cycles, so the
   enforce path (doom, abort, era purge) is exercised rather than just
   edge insertion.

   Status note on the post-run oracle: its serializability hot path is
   super-linear in history length — it scans the full trace for
   conflicting pairs (O(n * k) with k actions per txn) and then cycle-
   checks the whole dependency graph at once, with the pattern
   detectors layered on top. That was fine while every run kept its
   history in memory; it does not survive the out-of-core regime, where
   the history is never materialized at all. The certifier's
   incremental replay computes the identical committed-projection
   verdict in O(edges) with era-pruned state, so for long runs the
   oracle is superseded: the out-of-core section below runs with the
   oracle disabled and the certifier as the sole (still exact) judge.
   The oracle remains the cross-check for in-memory cells — including
   this section, where the [serializable] column is its verdict. *)

let cert_txns = 1024

type cert_row = {
  ct_mode : string; (* "baseline" | "certify" *)
  ct_tput : float;
  ct_dooms : int;
  ct_replay_ms : float; (* offline Certifier.replay over the history *)
  ct_oracle_ms : float; (* full post-run oracle on the same history *)
  ct_serializable : bool; (* committed projection, post-run verdict *)
}

let run_cert_cell ~mode ~certify ~certify_batch =
  let gen i =
    let p =
      Generators.stress_program Generators.Hotspot ~seed ~accounts ~hot ~ops
        ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Read_committed p
  in
  (* The in-run oracle is windowed so the cell prices the *certifier*,
     not the polynomial detectors; its serializability verdict is still
     the exact full-history one (incremental replay). The explicitly
     timed [Oracle.check] below is the unwindowed post-run pass being
     compared against. *)
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~think_us:0. ~oracle_window:32 ~seed ~certify ~certify_batch ()
  in
  let r = Pool.run cfg (Array.init cert_txns gen) in
  let h = r.Pool.history in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let replay_ms = time (fun () -> Runtime.Certifier.replay h) in
  let oracle_ms = time (fun () -> Oracle.check h) in
  {
    ct_mode = mode;
    ct_tput = r.Pool.metrics.Metrics.throughput;
    ct_dooms = r.Pool.metrics.Metrics.certifier_aborts;
    ct_replay_ms = replay_ms;
    ct_oracle_ms = oracle_ms;
    ct_serializable = (Option.get r.Pool.oracle).Oracle.serializable;
  }

let cert_row_json c =
  Printf.sprintf
    "{\"mode\":%S,\"level\":%S,\"mix\":\"hotspot\",\"txns\":%d,\
     \"txn_s\":%.1f,\"certifier_aborts\":%d,\"replay_ms\":%.3f,\
     \"oracle_ms\":%.3f,\"serializable\":%b}"
    c.ct_mode (L.name L.Read_committed) cert_txns c.ct_tput c.ct_dooms
    c.ct_replay_ms c.ct_oracle_ms c.ct_serializable

let certifier () =
  Printf.printf
    "== certifier: READ COMMITTED hotspot, %d txns, online enforcement vs \
     post-run checking ==\n"
    cert_txns;
  Printf.printf "  %-16s %9s %8s %11s %11s %13s\n" "mode" "txn/s" "dooms"
    "replay_ms" "oracle_ms" "serializable";
  let rows =
    List.map
      (fun (mode, certify, certify_batch) ->
        let c = run_cert_cell ~mode ~certify ~certify_batch in
        Printf.printf "  %-16s %9.0f %8d %11.3f %11.3f %13b\n" c.ct_mode
          c.ct_tput c.ct_dooms c.ct_replay_ms c.ct_oracle_ms c.ct_serializable;
        c)
      [
        ("baseline", false, true);
        (* unbatched: every edge offer runs inside the engine's trace
           lock — the pre-batching feed, kept as the comparison cell *)
        ("certify-inline", true, false);
        (* batched (the default): the trace hook only buffers; graph
           work happens at the workers' next doomed-poll, outside the
           recorder critical section *)
        ("certify", true, true);
      ]
  in
  (match rows with
  | [ base; inline; batched ] when base.ct_tput > 0. && inline.ct_tput > 0. ->
    Printf.printf
      "  online overhead: %.1f%% throughput batched, %.1f%% inline — \
       batching the edge offers out of the trace lock recovers %.1f%% \
       (replay alone would cost %.3fms post-run, the full oracle %.3fms)\n"
      (100. *. (1. -. (batched.ct_tput /. base.ct_tput)))
      (100. *. (1. -. (inline.ct_tput /. base.ct_tput)))
      (100. *. ((batched.ct_tput /. inline.ct_tput) -. 1.))
      base.ct_replay_ms base.ct_oracle_ms
  | _ -> ());
  rows

(* {2 Chaos smoke}

   One cell under the chaos preset: SERIALIZABLE hotspot with faults at
   every point class, a per-attempt deadline and the watchdog on, then
   the two conservation checks — the final store equals the committed
   WAL replay, and every crash point recovers to the ideal state. A
   throughput row like the others, plus the robustness verdicts the
   chaos machinery is accountable to. *)

let chaos_txns = 96
let chaos_rate = 0.08
let chaos_deadline_us = 10_000.
let chaos_watchdog_us = 5_000.

type chaos_row = {
  c_m : Metrics.snapshot;
  c_clean : bool;
  c_injected : (string * int) list;
  c_effects_ok : bool;
  c_crash : Fault.Crash.report option;
}

let run_chaos_cell () =
  let gen i =
    let p =
      Generators.stress_program Generators.Hotspot ~seed ~accounts ~hot ~ops
        ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
  in
  let initial = Generators.bank_accounts accounts in
  let plan =
    Fault.Plan.chaos ~stall_us:(chaos_deadline_us /. 4.) ~rate:chaos_rate ~seed
      ()
  in
  let cfg =
    Pool.config ~workers ~initial ~think_us ~seed ~fault:plan
      ~deadline_us:chaos_deadline_us ~watchdog_us:chaos_watchdog_us ()
  in
  let r = Pool.run cfg (Array.init chaos_txns gen) in
  let initial_store = Storage.Store.of_list initial in
  let effects_ok, crash =
    match r.Pool.wal with
    | None -> (false, None)
    | Some wal ->
      ( Storage.Store.equal
          (Storage.Store.of_list r.Pool.final)
          (Storage.Recovery.ideal_state ~initial:initial_store wal),
        Some (Fault.Crash.enumerate ~initial:initial_store wal) )
  in
  {
    c_m = r.Pool.metrics;
    c_clean = Oracle.pattern_free (Option.get r.Pool.oracle);
    c_injected = Fault.Plan.injected plan;
    c_effects_ok = effects_ok;
    c_crash = crash;
  }

let chaos_row_json c =
  let crash_json =
    match c.c_crash with
    | None -> "null"
    | Some rep -> Fault.Crash.to_json rep
  in
  Printf.sprintf
    "{\"level\":%S,\"mix\":\"hotspot\",\"workers\":%d,\"txns\":%d,\
     \"fault_rate\":%g,\"deadline_us\":%.0f,\"txn_s\":%.1f,\
     \"faults_injected\":%d,\"by_class\":{%s},\"deadline_exceeded\":%d,\
     \"watchdog_kicks\":%d,\"oracle_clean\":%b,\"effects_ok\":%b,\
     \"crash_points\":%s}"
    (L.name L.Serializable) workers chaos_txns chaos_rate chaos_deadline_us
    c.c_m.Metrics.throughput c.c_m.Metrics.faults_injected
    (String.concat ","
       (List.map (fun (k, n) -> Printf.sprintf "%S:%d" k n) c.c_injected))
    c.c_m.Metrics.deadline_exceeded c.c_m.Metrics.watchdog_kicks c.c_clean
    c.c_effects_ok crash_json

let chaos () =
  Printf.printf
    "== chaos smoke: SERIALIZABLE hotspot, %d txns, fault rate %g, deadline \
     %.0fus, watchdog %.0fus ==\n"
    chaos_txns chaos_rate chaos_deadline_us chaos_watchdog_us;
  let c = run_chaos_cell () in
  Printf.printf
    "  %9.0f txn/s  faults %d (%s)  deadline exceeded %d  watchdog %d\n"
    c.c_m.Metrics.throughput c.c_m.Metrics.faults_injected
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) c.c_injected))
    c.c_m.Metrics.deadline_exceeded c.c_m.Metrics.watchdog_kicks;
  Printf.printf "  oracle %s | committed effects %s | crash points %s\n"
    (if c.c_clean then "clean" else "DIRTY")
    (if c.c_effects_ok then "conserved" else "LOST/DUPLICATED")
    (match c.c_crash with
    | None -> "n/a"
    | Some rep ->
      if Fault.Crash.ok rep then
        Printf.sprintf "all %d recover" (rep.Fault.Crash.points + rep.Fault.Crash.torn_points)
      else Printf.sprintf "%d UNSOUND" (List.length rep.Fault.Crash.failures));
  c

(* {2 Mixed-level matrix}

   The Table-4 cell the mixed criterion is accountable to: one hotspot
   run where every transaction draws its own declared level from the
   acceptance mix (70% READ COMMITTED, 25% SNAPSHOT, 5% SERIALIZABLE),
   executed on the weight-plurality family with each declared level
   strengthened onto it. Two cells: [observe] runs uncertified and lets
   the post-run mixed oracle attribute every anomaly to its committed
   victim's declared level — the anomaly x victim-level matrix, where
   the SERIALIZABLE column is zero by construction (a SERIALIZABLE
   victim permits nothing, so any attribution to one is a violation,
   not a matrix cell). [certify] reruns the same jobs under the mixed
   criterion, which must abort exactly the forbidden-for-victim
   structures and finish [mixed_ok]. *)

let mixed_spec = "rc=70,si=25,serializable=5"
let mixed_txns = 1024
let mixed_hot = 2

type mixed_row = {
  mx_mode : string; (* "observe" | "certify" *)
  mx_tput : float;
  mx_dooms : int;
  mx_aborts : int;
  mx_mixed : Oracle.mixed;
  mx_cert : Certifier.summary option;
}

let run_mixed_cell ~mode ~certify =
  let lmix =
    match Workload.Mix.parse mixed_spec with
    | Ok m -> m
    | Error msg -> failwith msg
  in
  let fam = Workload.Mix.family lmix in
  let gen i =
    let declared = Workload.Mix.draw lmix ~seed ~index:i in
    let p =
      Generators.stress_program Generators.Hotspot ~seed ~accounts
        ~hot:mixed_hot ~ops ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~declared
      ~level:(Isolation.Lattice.strengthen declared fam)
      p
  in
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~think_us:0. ~seed ~certify ~criterion:Certifier.Mixed ~family:fam ()
  in
  let r = Pool.run cfg (Array.init mixed_txns gen) in
  {
    mx_mode = mode;
    mx_tput = r.Pool.metrics.Metrics.throughput;
    mx_dooms = r.Pool.metrics.Metrics.certifier_aborts;
    mx_aborts = r.Pool.metrics.Metrics.aborted_total;
    mx_mixed = Option.get r.Pool.mixed;
    mx_cert = r.Pool.certifier;
  }

let mixed_row_json r =
  Printf.sprintf
    "{\"mode\":%S,\"levels\":%S,\"mix\":\"hotspot\",\"txns\":%d,\
     \"txn_s\":%.1f,\"certifier_aborts\":%d,\"aborted\":%d,\"mixed\":%s}"
    r.mx_mode mixed_spec mixed_txns r.mx_tput r.mx_dooms r.mx_aborts
    (Oracle.mixed_to_json r.mx_mixed)

let mixed () =
  Printf.printf
    "== mixed criterion: hotspot, levels %s, %d txns, anomaly x victim-level \
     matrix ==\n"
    mixed_spec mixed_txns;
  let rows =
    List.map
      (fun (mode, certify) ->
        let r = run_mixed_cell ~mode ~certify in
        let m = r.mx_mixed in
        Printf.printf
          "  %-9s %9.0f txn/s  dooms %-4d aborts %-4d tolerated %-4d harmed \
           %-4d %s\n"
          r.mx_mode r.mx_tput r.mx_dooms r.mx_aborts m.Oracle.m_tolerated
          m.Oracle.m_harmed
          (if m.Oracle.m_clean then "mixed-clean" else "MIXED VIOLATION");
        let fmt_cells cs =
          String.concat ", "
            (List.map
               (fun ((l, p), n) ->
                 Printf.sprintf "%s@%s x%d"
                   (Phenomena.Phenomenon.name p)
                   (L.name l) n)
               cs)
        in
        Printf.printf "            permitted:  %s\n"
          (match m.Oracle.m_matrix with [] -> "none" | cs -> fmt_cells cs);
        Printf.printf "            violations: %s\n"
          (match m.Oracle.m_violations with
          | [] -> "none"
          | cs -> fmt_cells cs);
        (match r.mx_cert with
        | Some s ->
          Printf.printf
            "            online: cycles %d dooms %d misses %d tolerated %d \
             harmed %d mixed_ok %b\n"
            s.Certifier.cycles s.Certifier.dooms s.Certifier.misses
            s.Certifier.tolerated s.Certifier.harmed s.Certifier.mixed_ok
        | None -> ());
        r)
      [ ("observe", false); ("certify", true) ]
  in
  let ser_cells =
    List.concat_map
      (fun r ->
        List.filter
          (fun ((l, _), _) -> l = L.Serializable)
          r.mx_mixed.Oracle.m_matrix)
      rows
  in
  Printf.printf "  SERIALIZABLE victims: %s\n"
    (if ser_cells = [] then "zero permitted anomalies (as required)"
     else "PERMITTED ANOMALIES LEAKED");
  rows

(* {2 Out-of-core}

   The flat-memory accountability cells: certified SERIALIZABLE
   transfers at 10^4 / 10^5 / 10^6 transactions with [keep_history]
   off — jobs generated lazily, the recorder spilling its journal
   stripes to disk, the WAL checkpointing and truncating behind the
   commit frontier (in-memory backend, as a default [stress] run uses,
   so the rows measure the pipeline and not this host's fsync latency),
   and the certifier era-pruning committed nodes — so the only verdict
   machinery left resident is the live dependency frontier. Each cell
   compacts and resets the kernel's peak-RSS watermark first, so VmHWM
   prices that cell alone. The claim the JSON is accountable to: peak
   RSS stays flat (within 2x) from 10^5 to 10^6 transactions while the
   certifier verdict stays exact.

   The group-commit comparison reruns one disk-WAL cell with
   [wal_group_commit:false] — one fsync per commit, the classical
   durability baseline — against the default batched sync, whose batch
   histogram is the direct evidence that one leader fsync absorbed many
   parked committers. *)

let ooc_sizes = [ 10_000; 100_000; 1_000_000 ]

(* The multiversion flatness rows span one decade: the certifier's MV
   retirement is vacuum-driven (era pruning proper has no commit-order
   horizon to cut at), so this is the cell that would regress if the
   burial feed stopped collecting. *)
let mv_ooc_sizes = [ 10_000; 100_000 ]
let ooc_accounts = 64
let ooc_checkpoint_every = 10_000
let gc_txns = 8_192

type ooc_row = {
  oc_txns : int;
  oc_group_commit : bool;
  oc_tput : float;
  oc_mem : Sysmem.reading;
  oc_cert : Certifier.summary;
  oc_wal : Wal.stats option;
}

let ooc_scratch name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "isolation_bench_%s_%d" name (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* [disk:false] keeps the WAL on the in-memory backend (still
   checkpoint-truncated, still bounded) — what a default [stress] run
   uses, and what the RSS-flatness rows measure without conflating the
   result with this host's fsync latency. [disk:true] is for the group-
   commit cells, where the fsync cost is exactly the thing measured. *)
let run_ooc_cell ?(group_commit = true) ?(disk = false)
    ?(level = L.Serializable) ~txns () =
  let tag = Printf.sprintf "%d_%b_%s" txns group_commit (L.name level) in
  let wal_dir =
    if disk then Some (ooc_scratch ("wal_" ^ tag)) else None
  in
  let spill_dir = ooc_scratch ("spill_" ^ tag) in
  let gen i =
    let p =
      Generators.stress_program Generators.Transfer ~seed
        ~accounts:ooc_accounts ~hot:ooc_accounts ~ops ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level p
  in
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts ooc_accounts)
      ~think_us:0. ~seed ~certify:true ?wal_dir ~wal_group_commit:group_commit
      ~checkpoint_every:ooc_checkpoint_every ~keep_history:false ~spill_dir ()
  in
  Gc.compact ();
  Sysmem.reset_peak ();
  let r = Pool.run_n cfg ~txns ~gen in
  let mem = Sysmem.read () in
  let wal_stats = Option.map Wal.stats r.Pool.wal in
  Option.iter rm_rf wal_dir;
  rm_rf spill_dir;
  {
    oc_txns = txns;
    oc_group_commit = group_commit;
    oc_tput = r.Pool.metrics.Metrics.throughput;
    oc_mem = mem;
    oc_cert = Option.get r.Pool.certifier;
    oc_wal = wal_stats;
  }

let wal_json (w : Wal.stats) =
  Printf.sprintf
    "{\"records\":%d,\"segments\":%d,\"disk_bytes\":%d,\"syncs\":%d,\
     \"checkpoints\":%d,\"truncated_segments\":%d,\"batch_hist\":{%s}}"
    w.Wal.w_records w.w_segments w.w_disk_bytes w.w_syncs w.w_checkpoints
    w.w_truncated_segments
    (String.concat ","
       (List.map
          (fun (le, n) -> Printf.sprintf "\"%d\":%d" le n)
          w.w_batch_hist))

let ooc_row_json r =
  Printf.sprintf
    "{\"txns\":%d,\"group_commit\":%b,\"txn_s\":%.1f,\"memory\":%s,\
     \"serializable\":%b,\"prune_passes\":%d,\"pruned_nodes\":%d,\
     \"pruned_eras\":%d,\"wal\":%s}"
    r.oc_txns r.oc_group_commit r.oc_tput
    (Sysmem.to_json r.oc_mem)
    r.oc_cert.Certifier.serializable r.oc_cert.Certifier.prune_passes
    r.oc_cert.Certifier.pruned_nodes r.oc_cert.Certifier.pruned_eras
    (match r.oc_wal with None -> "null" | Some w -> wal_json w)

let outofcore () =
  Printf.printf
    "== out-of-core: certified SERIALIZABLE transfers, no history, spilled \
     journal, checkpoint every %d, %d workers ==\n"
    ooc_checkpoint_every workers;
  Printf.printf "  %-9s %9s %9s %9s %12s %9s %8s %6s\n" "txns" "txn/s"
    "peakMB" "heapMW" "serializable" "pruned" "eras" "segs";
  let rows =
    List.map
      (fun txns ->
        let r = run_ooc_cell ~txns () in
        Printf.printf "  %-9d %9.0f %9d %9.1f %12b %9d %8d %6d\n" r.oc_txns
          r.oc_tput
          (r.oc_mem.Sysmem.r_vm_hwm_kb / 1024)
          (float_of_int r.oc_mem.Sysmem.r_heap_words /. 1e6)
          r.oc_cert.Certifier.serializable r.oc_cert.Certifier.pruned_nodes
          r.oc_cert.Certifier.pruned_eras
          (match r.oc_wal with None -> 0 | Some w -> w.Wal.w_segments);
        r)
      ooc_sizes
  in
  (match List.rev rows with
  | big :: prev :: _ when prev.oc_mem.Sysmem.r_vm_hwm_kb > 0 ->
    Printf.printf
      "  peak RSS ratio %dx txns: %.2fx (flat = the pipeline really is \
       out-of-core)\n"
      (big.oc_txns / max 1 prev.oc_txns)
      (float_of_int big.oc_mem.Sysmem.r_vm_hwm_kb
      /. float_of_int prev.oc_mem.Sysmem.r_vm_hwm_kb)
  | _ -> ());
  Printf.printf
    "  -- multiversion family (SNAPSHOT, vacuum-driven retirement) --\n";
  let mv_rows =
    List.map
      (fun txns ->
        let r = run_ooc_cell ~level:L.Snapshot ~txns () in
        Printf.printf "  %-9d %9.0f %9d %9.1f %12b %9d %8d %6d\n" r.oc_txns
          r.oc_tput
          (r.oc_mem.Sysmem.r_vm_hwm_kb / 1024)
          (float_of_int r.oc_mem.Sysmem.r_heap_words /. 1e6)
          r.oc_cert.Certifier.serializable r.oc_cert.Certifier.pruned_nodes
          r.oc_cert.Certifier.pruned_eras
          (match r.oc_wal with None -> 0 | Some w -> w.Wal.w_segments);
        r)
      mv_ooc_sizes
  in
  (match List.rev mv_rows with
  | big :: prev :: _ when prev.oc_mem.Sysmem.r_vm_hwm_kb > 0 ->
    Printf.printf "  MV peak RSS ratio %dx txns: %.2fx\n"
      (big.oc_txns / max 1 prev.oc_txns)
      (float_of_int big.oc_mem.Sysmem.r_vm_hwm_kb
      /. float_of_int prev.oc_mem.Sysmem.r_vm_hwm_kb)
  | _ -> ());
  Printf.printf
    "  -- group commit vs per-commit fsync, disk WAL, %d txns, %d workers --\n"
    gc_txns workers;
  let gc_rows =
    List.map
      (fun group_commit ->
        let r = run_ooc_cell ~group_commit ~disk:true ~txns:gc_txns () in
        let syncs, hist =
          match r.oc_wal with
          | None -> (0, [])
          | Some w -> (w.Wal.w_syncs, w.Wal.w_batch_hist)
        in
        Printf.printf "  %-12s %9.0f txn/s  %6d fsyncs  batches{%s}\n"
          (if group_commit then "grouped" else "per-commit")
          r.oc_tput syncs
          (String.concat ", "
             (List.map (fun (le, n) -> Printf.sprintf "<=%d:%d" le n) hist));
        r)
      [ false; true ]
  in
  (match gc_rows with
  | [ per; grouped ] when per.oc_tput > 0. ->
    Printf.printf "  group-commit speedup: %.2fx\n"
      (grouped.oc_tput /. per.oc_tput)
  | _ -> ());
  (rows, mv_rows, gc_rows)

let runtime () =
  Printf.printf
    "== runtime: %d worker domains, %d txns/cell, %d accounts (%d hot), \
     think %.0fus ==\n"
    workers txns accounts hot think_us;
  Printf.printf "  %-22s %-10s %9s %8s %8s %8s %8s %8s %7s %9s  %s\n" "level"
    "mix" "txn/s" "p50ms" "p99ms" "exec50" "wait50" "retry_s" "aborts"
    "deadlocks" "oracle";
  let rows =
    List.concat_map
      (fun level ->
        List.map
          (fun mix ->
            let r = run_cell level mix in
            Printf.printf
              "  %-22s %-10s %9.0f %8.3f %8.3f %8.3f %8.3f %8.3f %7d %9d  %s\n"
              (L.name r.level)
              (Generators.mix_name r.mix)
              r.m.Metrics.throughput r.m.Metrics.lat_p50_ms
              r.m.Metrics.lat_p99_ms r.m.Metrics.exec_p50_ms
              r.m.Metrics.lock_wait_p50_ms r.m.Metrics.retry_overhead_s
              r.m.Metrics.aborted_total r.m.Metrics.deadlocks (verdict r.o);
            r)
          mixes)
      levels
  in
  let scaling_rows, speedup = scaling () in
  let cert_rows = certifier () in
  let mixed_rows = mixed () in
  let chaos_row = chaos () in
  let ooc_rows, mv_ooc_rows, gc_rows = outofcore () in
  let json =
    Printf.sprintf
      "{\"bench\":\"runtime\",\"rows\":[%s],\"scaling\":[%s],\
       \"speedup_8w\":%.2f,\"cores\":%d,\"scaling_reps\":%d,\
       \"certifier\":[%s],\"mixed\":[%s],\"chaos\":%s,\
       \"outofcore\":{\"checkpoint_every\":%d,\"oracle\":\"superseded by \
       online certifier (exact incremental replay); post-run oracle is \
       super-linear in history length and needs the full in-memory \
       trace\",\"rows\":[%s],\"mv_rows\":[%s],\"group_commit\":[%s]}}\n"
      (String.concat "," (List.map row_json rows))
      (String.concat "," (List.map scaling_row_json scaling_rows))
      speedup
      (Domain.recommended_domain_count ())
      scaling_reps
      (String.concat "," (List.map cert_row_json cert_rows))
      (String.concat "," (List.map mixed_row_json mixed_rows))
      (chaos_row_json chaos_row)
      ooc_checkpoint_every
      (String.concat "," (List.map ooc_row_json ooc_rows))
      (String.concat "," (List.map ooc_row_json mv_ooc_rows))
      (String.concat "," (List.map ooc_row_json gc_rows))
  in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "  wrote %s (%d cells + %d scaling cells)\n" json_path
    (List.length rows)
    (List.length scaling_rows)
