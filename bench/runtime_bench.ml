(* Runtime section: the multicore worker pool driven across isolation
   levels and stress mixes, every run checked by the serializability
   oracle. Prints a comparison table and writes the machine-readable
   BENCH_runtime.json so the performance trajectory is diffable across
   PRs.

   This is a macro-benchmark of the whole runtime (latch, backoff,
   deadlock detector, recorder), not a bechamel micro-benchmark: one run
   per cell is the point, because the oracle verdict is part of the
   result. Throughput numbers are indicative; the oracle columns are
   exact for the recorded interleaving. *)

module L = Isolation.Level
module Generators = Workload.Generators
module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Metrics = Runtime.Metrics

let levels =
  [
    L.Read_committed;
    L.Serializable;
    L.Snapshot;
    L.Serializable_snapshot;
    L.Timestamp_ordering;
  ]

let mixes = [ Generators.Transfer; Generators.Hotspot; Generators.Read_heavy ]

(* Small enough that 15 oracle passes stay fast (the detectors are
   polynomial in history size), large enough to contend. *)
let txns = 128
let workers = 8
let accounts = 16
let hot = 4
let ops = 6
let think_us = 50.
let seed = 7

type row = {
  level : L.t;
  mix : Generators.mix;
  m : Metrics.snapshot;
  o : Oracle.t;
}

let run_cell level mix =
  let gen i =
    let p = Generators.stress_program mix ~seed ~accounts ~hot ~ops ~index:i in
    Pool.job ~name:p.Core.Program.name ~level p
  in
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~think_us ~seed ()
  in
  let r = Pool.run cfg (Array.init txns gen) in
  { level; mix; m = r.Pool.metrics; o = r.Pool.oracle }

let verdict o =
  let names ps =
    String.concat "+" (List.map (fun (p, _) -> Phenomena.Phenomenon.name p) ps)
  in
  if Oracle.pattern_free o then "clean"
  else if Oracle.clean o then
    Printf.sprintf "clean (%s patterns)" (names (Oracle.patterns o))
  else Printf.sprintf "ANOMALIES %s" (names (Oracle.anomalies o))

let row_json { level; mix; m; o } =
  Metrics.to_json
    ~extra:
      [
        ("level", Printf.sprintf "%S" (L.name level));
        ("mix", Printf.sprintf "%S" (Generators.mix_name mix));
        ("workers", string_of_int workers);
        ("txns", string_of_int txns);
        ("oracle", Oracle.to_json o);
      ]
    m

let json_path = "BENCH_runtime.json"

let runtime () =
  Printf.printf
    "== runtime: %d worker domains, %d txns/cell, %d accounts (%d hot), \
     think %.0fus ==\n"
    workers txns accounts hot think_us;
  Printf.printf "  %-22s %-10s %9s %8s %8s %8s %8s %8s %7s %9s  %s\n" "level"
    "mix" "txn/s" "p50ms" "p99ms" "exec50" "wait50" "retry_s" "aborts"
    "deadlocks" "oracle";
  let rows =
    List.concat_map
      (fun level ->
        List.map
          (fun mix ->
            let r = run_cell level mix in
            Printf.printf
              "  %-22s %-10s %9.0f %8.3f %8.3f %8.3f %8.3f %8.3f %7d %9d  %s\n"
              (L.name r.level)
              (Generators.mix_name r.mix)
              r.m.Metrics.throughput r.m.Metrics.lat_p50_ms
              r.m.Metrics.lat_p99_ms r.m.Metrics.exec_p50_ms
              r.m.Metrics.lock_wait_p50_ms r.m.Metrics.retry_overhead_s
              r.m.Metrics.aborted_total r.m.Metrics.deadlocks (verdict r.o);
            r)
          mixes)
      levels
  in
  let json =
    Printf.sprintf "{\"bench\":\"runtime\",\"rows\":[%s]}\n"
      (String.concat "," (List.map row_json rows))
  in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "  wrote %s (%d cells)\n" json_path (List.length rows)
