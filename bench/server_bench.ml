(* Server section: the wire-protocol front-end measured end to end —
   loadgen sessions over real sockets into the session scheduler, the
   striped engine underneath — across a sessions sweep (sessions ≫
   workers) with the online certifier off and on. Prints a table and
   writes BENCH_server.json so the trajectory is diffable across PRs.

   Like the runtime section this is a macro-benchmark: one run per cell,
   oracle verdict included. Throughput falls and latency climbs as the
   multiprogramming level blows past the worker count — that thrashing
   curve is the point of the sweep, not noise. *)

module L = Isolation.Level
module Pool = Runtime.Pool
module Frontend = Server.Frontend
module Loadgen = Server.Loadgen

let workers = 8
let accounts = 128
let total_txns = 2048  (* per cell, split across the sessions *)
let seed = 11

type cell = {
  sv_sessions : int;
  sv_certify : bool;
  sv_telemetry : bool;
  sv_scrapes : int;
  sv_stats : Loadgen.stats;
  sv_metrics : Runtime.Metrics.snapshot;
  sv_serializable : bool;
  sv_wire : Frontend.stats;
}

(* One Prometheus scrape over a raw socket — the bench measures the cost
   of serving the exposition under load, so it must actually pull it,
   not just open the port. Returns the byte count (0 on any failure). *)
let scrape_metrics ~port =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
        ignore (Unix.write fd req 0 (Bytes.length req));
        let buf = Bytes.create 8192 in
        let total = ref 0 in
        let rec drain () =
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          if n > 0 then begin
            total := !total + n;
            drain ()
          end
        in
        drain ();
        !total)
  with
  | n -> n
  | exception (Unix.Unix_error _ | End_of_file) -> 0

let run_cell ~sessions ~certify ~telemetry =
  let stop = Atomic.make false in
  let port_box = Atomic.make 0 in
  let tport_box = Atomic.make 0 in
  let pool =
    Pool.config ~workers
      ~initial:(Workload.Generators.bank_accounts accounts)
      ~seed ~certify ~oracle_window:64 ()
  in
  let cfg =
    Frontend.config ~port:0
      ~on_ready:(fun p -> Atomic.set port_box p)
      ?telemetry_port:(if telemetry then Some 0 else None)
      ~telemetry_ready:(fun p -> Atomic.set tport_box p)
      ~drain_grace_s:5.0 ~stop ~pool ~family:`Locking ()
  in
  let result = ref None in
  let server = Thread.create (fun () -> result := Some (Frontend.serve cfg)) () in
  let rec await_port n =
    if Atomic.get port_box = 0 && n < 500 then begin
      Thread.delay 0.01;
      await_port (n + 1)
    end
  in
  await_port 0;
  let port = Atomic.get port_box in
  if port = 0 then failwith "server_bench: server never came up";
  (* with telemetry on, a scraper polls the exposition throughout the
     run — the measured cell includes the cost of answering it *)
  let scrapes = ref 0 in
  let scraper =
    if not telemetry then None
    else begin
      let rec await_tport n =
        if Atomic.get tport_box = 0 && n < 500 then begin
          Thread.delay 0.01;
          await_tport (n + 1)
        end
      in
      await_tport 0;
      let tport = Atomic.get tport_box in
      if tport = 0 then failwith "server_bench: telemetry never came up";
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get stop) do
               if scrape_metrics ~port:tport > 0 then incr scrapes;
               Thread.delay 0.25
             done)
           ())
    end
  in
  let lg =
    Loadgen.config ~port ~sessions
      ~txns_per_session:(max 1 (total_txns / sessions))
      ~mix:Workload.Generators.Transfer
      ~levels:[ (L.Read_committed, 3.); (L.Serializable, 1.) ]
      ~accounts ~seed ()
  in
  let stats = Loadgen.run lg in
  Atomic.set stop true;
  Option.iter Thread.join scraper;
  Thread.join server;
  let r, wire =
    match !result with Some r -> r | None -> failwith "server died"
  in
  {
    sv_sessions = sessions;
    sv_certify = certify;
    sv_telemetry = telemetry;
    sv_scrapes = !scrapes;
    sv_stats = stats;
    sv_metrics = r.Pool.metrics;
    sv_serializable = (Option.get r.Pool.oracle).Runtime.Oracle.serializable;
    sv_wire = wire;
  }

let cell_json c =
  Printf.sprintf
    "{\"sessions\":%d,\"certify\":%b,\"telemetry\":%b,\"scrapes\":%d,\
     \"workers\":%d,\"committed\":%d,\
     \"aborted\":%d,\"giveups\":%d,\"protocol_errors\":%d,\
     \"throughput\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\
     \"frames\":%d,\"certifier_aborts\":%d,\"serializable\":%b}"
    c.sv_sessions c.sv_certify c.sv_telemetry c.sv_scrapes workers
    c.sv_stats.Loadgen.committed
    c.sv_stats.Loadgen.aborted c.sv_stats.Loadgen.giveups
    c.sv_stats.Loadgen.protocol_errors c.sv_stats.Loadgen.throughput
    c.sv_stats.Loadgen.p50_ms c.sv_stats.Loadgen.p95_ms
    c.sv_stats.Loadgen.p99_ms c.sv_wire.Frontend.frames
    c.sv_metrics.Runtime.Metrics.certifier_aborts c.sv_serializable

let json_path = "BENCH_server.json"

let server () =
  Printf.printf
    "== server: wire front-end, %d worker domains, transfer mix over %d \
     accounts, %d txns/cell, rc:serializable sessions 3:1 ==\n"
    workers accounts total_txns;
  Printf.printf "  %-9s %-8s %-9s %9s %8s %8s %8s %8s %7s %6s  %s\n" "sessions"
    "certify" "telemetry" "txn/s" "p50ms" "p95ms" "p99ms" "commits" "aborts"
    "proto" "serializable";
  let cells =
    List.concat_map
      (fun sessions ->
        List.concat_map
          (fun certify ->
            List.map
              (fun telemetry ->
                let c = run_cell ~sessions ~certify ~telemetry in
                Printf.printf
                  "  %-9d %-8b %-9b %9.0f %8.2f %8.2f %8.2f %8d %7d %6d  %b\n"
                  c.sv_sessions c.sv_certify c.sv_telemetry
                  c.sv_stats.Loadgen.throughput c.sv_stats.Loadgen.p50_ms
                  c.sv_stats.Loadgen.p95_ms c.sv_stats.Loadgen.p99_ms
                  c.sv_stats.Loadgen.committed c.sv_stats.Loadgen.aborted
                  c.sv_stats.Loadgen.protocol_errors c.sv_serializable;
                c)
              [ false; true ])
          [ false; true ])
      [ 64; 256; 1024 ]
  in
  let json =
    Printf.sprintf "{\"bench\":\"server\",\"workers\":%d,\"cells\":[%s]}\n"
      workers
      (String.concat "," (List.map cell_json cells))
  in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc json);
  Printf.printf "  wrote %s\n%!" json_path
