(* lib/graph: the shared incremental dependency-graph core. Unit tests
   for the Pearce-Kelly structure's contract — the topological-order
   invariant after every insertion, witness validity at the rejected
   closing edge, duplicate handling, deletions — plus a property hunt:
   random edge sequences must agree with the offline History.Digraph
   acyclicity verdict at every step. *)

module D = Graph.Digraph
module I = Graph.Incremental
module Off = History.Digraph

(* {2 The order invariant}

   After any sequence of accepted insertions, [order_of a < order_of b]
   for every stored edge [a -> b] — the invariant all of Pearce-Kelly's
   O(1) fast paths and affected-region reorderings are accountable to. *)

let check_order g =
  List.iter
    (fun a ->
      let oa =
        match I.order_of g a with
        | Some o -> o
        | None -> Alcotest.failf "node %d has no priority" a
      in
      List.iter
        (fun b ->
          let ob =
            match I.order_of g b with
            | Some o -> o
            | None -> Alcotest.failf "node %d has no priority" b
          in
          if oa >= ob then
            Alcotest.failf "edge %d -> %d violates order (%d >= %d)" a b oa ob)
        (I.succs g a))
    (I.nodes g)

let test_order_forward_chain () =
  let g = I.create () in
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "accepted" true (I.add_edge g a b = `Ok))
    [ (1, 2); (2, 3); (3, 4); (1, 4) ];
  check_order g

let test_order_backward_insertions () =
  (* Insert edges against the discovery order so every insertion lands
     in the slow path and forces a reordering. *)
  let g = I.create () in
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "accepted" true (I.add_edge g a b = `Ok))
    [ (30, 40); (20, 30); (10, 20); (5, 10); (40, 50) ];
  check_order g;
  (* A cross edge into the middle of the chain reorders the affected
     region only; the invariant must survive. *)
  Alcotest.(check bool) "cross edge" true (I.add_edge g 5 35 = `Ok);
  Alcotest.(check bool) "cross edge 2" true (I.add_edge g 35 40 = `Ok);
  check_order g

let test_order_random_dag () =
  (* Random insertions over a node universe where edges always point
     from a lower to a higher id — guaranteed acyclic, so every offer
     must be accepted and the order invariant must hold throughout. *)
  let st = Random.State.make [| 0xdead; 17 |] in
  let g = I.create () in
  for _ = 1 to 400 do
    let a = Random.State.int st 60 in
    let b = a + 1 + Random.State.int st (61 - a) in
    (match I.add_edge g a b with
    | `Ok | `Exists -> ()
    | `Cycle _ -> Alcotest.fail "rejected an edge of a DAG");
    check_order g
  done

(* {2 Witness validity} *)

let test_self_loop () =
  let g = I.create () in
  (match I.add_edge g 3 3 with
  | `Cycle [ 3 ] -> ()
  | _ -> Alcotest.fail "self-loop must return `Cycle [x]");
  Alcotest.(check bool) "self-loop not stored" false (I.mem_edge g 3 3)

let test_two_cycle_witness () =
  let g = I.create () in
  Alcotest.(check bool) "forward" true (I.add_edge g 1 2 = `Ok);
  (match I.add_edge g 2 1 with
  | `Cycle [ 1; 2 ] -> ()
  | `Cycle c ->
    Alcotest.failf "wrong witness [%s]"
      (String.concat ";" (List.map string_of_int c))
  | _ -> Alcotest.fail "closing edge must be rejected");
  (* The rejected edge is NOT inserted: the graph stays acyclic and the
     same offer keeps failing. *)
  Alcotest.(check bool) "edge rejected" false (I.mem_edge g 2 1);
  Alcotest.(check bool) "still cyclic offer" true
    (match I.add_edge g 2 1 with `Cycle _ -> true | _ -> false)

(* A witness [n1; ...; nk] for rejected edge [x -> y] must be an actual
   stored path: y = n1, x = nk, and every consecutive hop an edge. *)
let check_witness g ~src ~dst = function
  | [] -> Alcotest.fail "empty witness"
  | n1 :: _ as w ->
    Alcotest.(check int) "witness starts at dst" dst n1;
    let rec hops = function
      | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "witness hop %d -> %d stored" a b)
          true (I.mem_edge g a b);
        hops rest
      | [ last ] -> Alcotest.(check int) "witness ends at src" src last
      | [] -> ()
    in
    hops w

let test_long_cycle_witness () =
  let g = I.create () in
  List.iter
    (fun (a, b) -> ignore (I.add_edge g a b))
    [ (1, 2); (2, 3); (3, 4); (4, 5) ];
  match I.add_edge g 5 1 with
  | `Cycle w -> check_witness g ~src:5 ~dst:1 w
  | _ -> Alcotest.fail "5 -> 1 closes the chain"

(* {2 Duplicates and deletions} *)

let test_duplicate_edge () =
  let g = I.create () in
  Alcotest.(check bool) "first" true (I.add_edge g 7 9 = `Ok);
  Alcotest.(check bool) "second is `Exists" true (I.add_edge g 7 9 = `Exists);
  Alcotest.(check int) "stored once" 1 (I.edge_count g)

let test_remove_edge_reopens () =
  let g = I.create () in
  ignore (I.add_edge g 1 2);
  ignore (I.add_edge g 2 3);
  Alcotest.(check bool) "closing rejected" true
    (match I.add_edge g 3 1 with `Cycle _ -> true | _ -> false);
  I.remove_edge g 1 2;
  Alcotest.(check bool) "after deletion the edge fits" true
    (I.add_edge g 3 1 = `Ok);
  check_order g

let test_remove_node_drops_incident () =
  let g = I.create () in
  ignore (I.add_edge g 1 2);
  ignore (I.add_edge g 2 3);
  ignore (I.add_edge g 4 2);
  I.remove_node g 2;
  Alcotest.(check bool) "no 1->2" false (I.mem_edge g 1 2);
  Alcotest.(check bool) "no 2->3" false (I.mem_edge g 2 3);
  Alcotest.(check bool) "no 4->2" false (I.mem_edge g 4 2);
  Alcotest.(check int) "edges gone" 0 (I.edge_count g);
  (* A finished transaction's id can come back (retry) without tripping
     over stale adjacency. *)
  Alcotest.(check bool) "reusable id" true (I.add_edge g 3 2 = `Ok);
  check_order g

let test_remove_out_edges () =
  let g = I.create () in
  ignore (I.add_edge g 1 2);
  ignore (I.add_edge g 1 3);
  ignore (I.add_edge g 4 1);
  I.remove_out_edges g 1;
  Alcotest.(check int) "only 4->1 left" 1 (I.edge_count g);
  Alcotest.(check bool) "in-edge kept" true (I.mem_edge g 4 1)

(* {2 Agreement with the offline graph}

   Feed random edge offers (cycles likely) to the incremental structure
   and mirror the *accepted* ones into History.Digraph. At every step:
   the mirror must be acyclic (the incremental structure never admits a
   cycle), and a rejected offer added to the mirror must make it cyclic
   (no spurious rejection). *)

let test_agrees_with_offline () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0xf00d; seed |] in
      let g = I.create () in
      let accepted = ref [] in
      for _ = 1 to 300 do
        let a = Random.State.int st 20 and b = Random.State.int st 20 in
        match I.add_edge g a b with
        | `Ok ->
          accepted := (a, b) :: !accepted;
          let off = Off.create () in
          List.iter (fun (x, y) -> Off.add_edge off x y) !accepted;
          if not (Off.is_acyclic off) then
            Alcotest.failf "seed %d: admitted a cycle via %d -> %d" seed a b
        | `Exists ->
          if not (List.mem (a, b) !accepted) then
            Alcotest.failf "seed %d: phantom duplicate %d -> %d" seed a b
        | `Cycle w ->
          check_witness g ~src:a ~dst:b w;
          let off = Off.create () in
          List.iter (fun (x, y) -> Off.add_edge off x y) ((a, b) :: !accepted);
          if Off.is_acyclic off then
            Alcotest.failf "seed %d: spurious rejection of %d -> %d" seed a b
      done;
      check_order g)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* {2 The plain digraph} *)

let test_digraph_basics () =
  let g = D.create ~shards:4 () in
  D.add_edge g 1 2;
  D.add_edge g 1 2;
  D.add_edge g 2 3;
  Alcotest.(check int) "dedup" 2 (D.edge_count g);
  Alcotest.(check (list int)) "succs" [ 2 ] (List.sort compare (D.succs g 1));
  Alcotest.(check (list int)) "preds" [ 1 ] (List.sort compare (D.preds g 2));
  D.remove_node g 2;
  Alcotest.(check int) "incident edges dropped" 0 (D.edge_count g);
  Alcotest.(check bool) "node gone" false (D.mem_node g 2);
  Alcotest.(check (list int))
    "others kept" [ 1; 3 ]
    (List.sort compare (D.nodes g))

let suite =
  [
    Alcotest.test_case "order: forward chain" `Quick test_order_forward_chain;
    Alcotest.test_case "order: backward insertions" `Quick
      test_order_backward_insertions;
    Alcotest.test_case "order: random DAG" `Quick test_order_random_dag;
    Alcotest.test_case "witness: self-loop" `Quick test_self_loop;
    Alcotest.test_case "witness: two-cycle" `Quick test_two_cycle_witness;
    Alcotest.test_case "witness: long cycle" `Quick test_long_cycle_witness;
    Alcotest.test_case "duplicate edge" `Quick test_duplicate_edge;
    Alcotest.test_case "remove_edge reopens" `Quick test_remove_edge_reopens;
    Alcotest.test_case "remove_node drops incident" `Quick
      test_remove_node_drops_incident;
    Alcotest.test_case "remove_out_edges" `Quick test_remove_out_edges;
    Alcotest.test_case "agrees with History.Digraph" `Quick
      test_agrees_with_offline;
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
  ]
