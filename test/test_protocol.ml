(* The wire codec: property tests pin the round trip (any request or
   response survives encode -> frame reader -> decode, under any
   chunking of the byte stream), and the malformed-input tests pin the
   failure mode — truncated frames wait, corrupt length prefixes and
   garbage payloads become clean errors, never exceptions. *)

module P = Server.Protocol

(* {2 Generators} *)

let gen_key =
  QCheck.Gen.(
    oneof
      [
        map (Printf.sprintf "acct_%03d") (int_bound 999);
        string_size ~gen:(char_range 'a' 'z') (int_range 1 24);
      ])

let gen_value = QCheck.Gen.(oneof [ int; int_bound 1000; return (-1) ])

let gen_pred =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> P.Named s) gen_key;
        map3
          (fun name lo hi -> P.Range { name; lo; hi })
          gen_key gen_key (opt gen_key);
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return P.Open;
        return P.Close;
        map (fun s -> P.Set_level s) gen_key;
        map3
          (fun read_only attempt name -> P.Begin { read_only; attempt; name })
          bool (int_bound 1000) gen_key;
        map (fun k -> P.Read k) gen_key;
        map2 (fun k v -> P.Write (k, v)) gen_key gen_value;
        map2 (fun k v -> P.Insert (k, v)) gen_key gen_value;
        map (fun k -> P.Delete k) gen_key;
        map (fun p -> P.Predicate p) gen_pred;
        return P.Commit;
        return P.Abort;
        return P.Stats;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return P.Ok_resp;
        map (fun v -> P.Value v) (opt gen_value);
        map (fun rows -> P.Rows rows) (small_list (pair gen_key gen_value));
        return P.Committed;
        map (fun s -> P.Aborted s) gen_key;
        map2 (fun code msg -> P.Error { code; msg }) (int_bound 255) gen_key;
        (* STATS bodies are u32-length strings: cover both small JSON
           and bodies past the u16 cap ordinary strings live under *)
        map
          (fun s -> P.Stats_resp s)
          (oneof
             [
               string_size (int_range 0 128);
               map (String.make 70_000) (char_range 'a' 'z');
             ]);
      ])

let gen_sid_req = QCheck.Gen.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))

let arb_request =
  QCheck.make
    ~print:(fun (sid, req, r) ->
      Fmt.str "sid=%d req=%d %a" sid req P.pp_request r)
    QCheck.Gen.(
      map2 (fun (sid, req) r -> (sid, req, r)) gen_sid_req gen_request)

let arb_response =
  QCheck.make
    ~print:(fun (sid, req, r) ->
      Fmt.str "sid=%d req=%d %a" sid req P.pp_response r)
    QCheck.Gen.(
      map2 (fun (sid, req) r -> (sid, req, r)) gen_sid_req gen_response)

(* Strip the length prefix off a full frame. *)
let payload_of_frame frame =
  Bytes.sub frame 4 (Bytes.length frame - 4)

(* {2 Round trips} *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request round-trips" arb_request
    (fun (sid, req, r) ->
      let frame = P.encode_request ~sid ~req r in
      match P.decode_request (payload_of_frame frame) with
      | Ok (sid', req', r') -> sid' = sid && req' = req && r' = r
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response round-trips" arb_response
    (fun (sid, req, r) ->
      let frame = P.encode_response ~sid ~req r in
      match P.decode_response (payload_of_frame frame) with
      | Ok (sid', req', r') -> sid' = sid && req' = req && r' = r
      | Error _ -> false)

(* Any chunking of a frame stream reassembles the same frames: the
   reader is agnostic to where the kernel splits reads. *)
let prop_reader_chunking =
  QCheck.Test.make ~count:200 ~name:"reader reassembles any chunking"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 8)
              (map2 (fun (sid, req) r -> (sid, req, r)) gen_sid_req gen_request))
           (int_range 1 13)))
    (fun (msgs, chunk) ->
      let stream =
        Bytes.concat Bytes.empty
          (List.map
             (fun (sid, req, r) -> P.encode_request ~sid ~req r)
             msgs)
      in
      let reader = P.Reader.create () in
      let n = Bytes.length stream in
      let pos = ref 0 in
      let out = ref [] in
      let drain () =
        let rec go () =
          match P.Reader.next reader with
          | `Frame payload -> (
            match P.decode_request payload with
            | Ok m ->
              out := m :: !out;
              go ()
            | Error _ -> ())
          | `Awaiting | `Corrupt _ -> ()
        in
        go ()
      in
      while !pos < n do
        let len = min chunk (n - !pos) in
        P.Reader.feed reader stream ~pos:!pos ~len;
        pos := !pos + len;
        drain ()
      done;
      List.rev !out = msgs)

(* {2 Malformed input} *)

let feed_all reader b =
  P.Reader.feed reader b ~pos:0 ~len:(Bytes.length b)

let test_truncated_frame () =
  (* a frame missing its last byte waits for more input, forever *)
  let frame = P.encode_request ~sid:1 ~req:2 (P.Read "acct_001") in
  let reader = P.Reader.create () in
  P.Reader.feed reader frame ~pos:0 ~len:(Bytes.length frame - 1);
  (match P.Reader.next reader with
  | `Awaiting -> ()
  | `Frame _ -> Alcotest.fail "truncated frame produced a frame"
  | `Corrupt m -> Alcotest.failf "truncated frame corrupt: %s" m);
  (* the missing byte completes it *)
  P.Reader.feed reader frame
    ~pos:(Bytes.length frame - 1)
    ~len:1;
  match P.Reader.next reader with
  | `Frame p -> (
    match P.decode_request p with
    | Ok (1, 2, P.Read "acct_001") -> ()
    | _ -> Alcotest.fail "wrong frame after completion")
  | _ -> Alcotest.fail "no frame after completing the bytes"

let test_corrupt_length_prefix () =
  (* an oversized length prefix cannot be resynchronized: corrupt *)
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int (P.max_frame + 1));
  let reader = P.Reader.create () in
  feed_all reader b;
  (match P.Reader.next reader with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized length prefix not corrupt");
  (* an undersized one (below the 9-byte header) likewise *)
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 4l;
  let reader = P.Reader.create () in
  feed_all reader b;
  match P.Reader.next reader with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "undersized length prefix not corrupt"

let test_garbage_payload () =
  (* a well-framed payload with an unknown opcode decodes to Error *)
  let payload = Bytes.make 9 '\xFF' in
  (match P.decode_request payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opcode 255 decoded");
  (* a string length pointing past the payload end decodes to Error *)
  let frame = P.encode_request ~sid:0 ~req:0 (P.Read "abcdef") in
  let payload = payload_of_frame frame in
  (* inflate the embedded string length *)
  Bytes.set_uint16_be payload 9 60000;
  match P.decode_request payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "string overrun decoded"

let test_stats_lstr_malformed () =
  (* the response body is at offset 9 (opcode u8, sid u32, req u32);
     its u32 length prefix must bound-check, not trust the sender *)
  let frame = P.encode_response ~sid:0 ~req:1 (P.Stats_resp "{}") in
  let payload = payload_of_frame frame in
  (* length pointing past the payload end *)
  Bytes.set_int32_be payload 9 1000l;
  (match P.decode_response payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lstr overrun decoded");
  (* length past the frame ceiling *)
  Bytes.set_int32_be payload 9 (Int32.of_int (P.max_frame + 5));
  (match P.decode_response payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized lstr length decoded");
  (* a length prefix that masks to a huge unsigned value *)
  Bytes.set_int32_be payload 9 (-1l);
  (match P.decode_response payload with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "0xFFFFFFFF lstr length decoded");
  (* truncated mid-prefix: only 2 of the 4 length bytes present *)
  let cut = Bytes.sub payload 0 11 in
  (match P.decode_response cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated lstr prefix decoded");
  (* a STATS request carries no body; trailing bytes are a misuse *)
  let sframe = P.encode_request ~sid:0 ~req:7 P.Stats in
  let spayload = payload_of_frame sframe in
  (match P.decode_request spayload with
  | Ok (0, 7, P.Stats) -> ()
  | _ -> Alcotest.fail "STATS request did not round-trip");
  match P.decode_request (Bytes.cat spayload (Bytes.make 2 '\x00')) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "STATS with trailing bytes decoded"

let test_trailing_bytes_rejected () =
  let frame = P.encode_request ~sid:3 ~req:4 P.Commit in
  let payload = payload_of_frame frame in
  let padded = Bytes.cat payload (Bytes.make 1 '\x00') in
  match P.decode_request padded with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes decoded"

let prop_random_bytes_never_raise =
  QCheck.Test.make ~count:500 ~name:"random payloads never raise"
    QCheck.(make Gen.(string_size (int_range 0 64)))
    (fun s ->
      let payload = Bytes.of_string s in
      (match P.decode_request payload with Ok _ | Error _ -> ());
      (match P.decode_response payload with Ok _ | Error _ -> ());
      true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_request_roundtrip;
      prop_response_roundtrip;
      prop_reader_chunking;
      prop_random_bytes_never_raise;
    ]
  @ [
      Alcotest.test_case "truncated frame awaits, then completes" `Quick
        test_truncated_frame;
      Alcotest.test_case "corrupt length prefixes" `Quick
        test_corrupt_length_prefix;
      Alcotest.test_case "garbage payloads decode to Error" `Quick
        test_garbage_payload;
      Alcotest.test_case "malformed STATS frames decode to Error" `Quick
        test_stats_lstr_malformed;
      Alcotest.test_case "trailing bytes rejected" `Quick
        test_trailing_bytes_rejected;
    ]
