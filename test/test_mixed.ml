(* The mixed-level correctness criterion.

   Each transaction declares its own isolation level; the certifier must
   protect it from exactly the phenomena that level forbids (see "On the
   Complexity of Checking Mixed Isolation Levels for SQL Transactions").
   Directed witness histories pin the victim-relative judgement — an RC
   reader beside writers tolerates P2/A5A read skew, an SI pair
   tolerates A5B write skew, while RR / SSI / SERIALIZABLE victims in
   the same cycles are caught — and property tests over mixed pool runs
   hold the online certifier to agreement with the post-run mixed
   oracle. Single-level behaviour is regression-pinned: the default
   criterion's verdicts and the all-SERIALIZABLE mixed run must match
   the old serializability answers exactly. *)

module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Cert = Runtime.Certifier
module Mix = Workload.Mix
module Lattice = Isolation.Lattice
module Spec = Isolation.Spec
module L = Isolation.Level
module P = Phenomena.Phenomenon

let h = History.of_string

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* {2 Lattice.strengthen} *)

let lvl = Alcotest.testable (Fmt.of_to_string L.name) ( = )

let test_strengthen_identity () =
  List.iter
    (fun l ->
      Alcotest.check lvl
        (L.name l ^ " maps to itself in its own family")
        l
        (Lattice.strengthen l (L.family l)))
    L.all

let test_strengthen_cross_family () =
  Alcotest.check lvl "SI on the locking engine runs SERIALIZABLE"
    L.Serializable
    (Lattice.strengthen L.Snapshot `Locking);
  Alcotest.check lvl "RC on the MV engine runs ORC"
    L.Oracle_read_consistency
    (Lattice.strengthen L.Read_committed `Mv);
  Alcotest.check lvl "RR on the MV engine runs SSI (Snapshot admits A5B)"
    L.Serializable_snapshot
    (Lattice.strengthen L.Repeatable_read `Mv);
  Alcotest.check lvl "everything on the T/O engine runs T/O"
    L.Timestamp_ordering
    (Lattice.strengthen L.Degree_0 `Timestamp)

let test_strengthen_preserves_contract () =
  (* The defining property: nothing the declared level forbids may
     become possible at the execution level. *)
  List.iter
    (fun declared ->
      List.iter
        (fun fam ->
          let exec = Lattice.strengthen declared fam in
          List.iter
            (fun p ->
              if Spec.table4 declared p = Spec.Not_possible then
                Alcotest.(check bool)
                  (Printf.sprintf "%s -> %s keeps %s forbidden"
                     (L.name declared) (L.name exec) (P.name p))
                  true
                  (Spec.table4 exec p = Spec.Not_possible))
            P.all)
        [ `Locking; `Mv; `Timestamp ])
    L.all

(* {2 Workload.Mix} *)

let test_mix_parse () =
  (match Mix.parse "rc=3,si=1,serializable=0.5" with
  | Ok m ->
    Alcotest.(check int) "three entries" 3 (List.length m);
    Alcotest.check lvl "first is RC" L.Read_committed (fst (List.nth m 0));
    Alcotest.(check (float 1e-9)) "weight parsed" 0.5 (snd (List.nth m 2))
  | Error e -> Alcotest.fail e);
  (match Mix.parse "rc,si" with
  | Ok m ->
    List.iter
      (fun (_, w) -> Alcotest.(check (float 1e-9)) "default weight 1" 1.0 w)
      m
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Mix.parse bad with
      | Ok _ -> Alcotest.fail ("accepted bad mix " ^ bad)
      | Error msg ->
        Alcotest.(check bool) "error names the grammar" true
          (contains ~affix:"level[=weight]" msg))
    [ ""; "nope"; "rc=-1"; "rc=0"; "rc=x"; "rc,,si" ]

let test_mix_family_plurality () =
  let m mix = match Mix.parse mix with Ok m -> m | Error e -> failwith e in
  Alcotest.(check bool) "RC-heavy mix is locking" true
    (Mix.family (m "rc=70,si=25,serializable=5") = `Locking);
  Alcotest.(check bool) "SI-heavy mix is MV" true
    (Mix.family (m "rc=1,si=3") = `Mv);
  Alcotest.(check bool) "tie breaks toward locking" true
    (Mix.family (m "rc=1,si=1") = `Locking);
  Alcotest.(check bool) "T/O plurality wins" true
    (Mix.family (m "to=5,rc=1") = `Timestamp)

let test_mix_draw_deterministic () =
  let m =
    match Mix.parse "rc=70,si=25,serializable=5" with
    | Ok m -> m
    | Error e -> failwith e
  in
  for i = 0 to 99 do
    Alcotest.check lvl "draw is a pure function of (seed, index)"
      (Mix.draw m ~seed:42 ~index:i)
      (Mix.draw m ~seed:42 ~index:i)
  done;
  (* The draw follows the weights at least roughly: a 70% component must
     dominate a 5% one over a few hundred indices. *)
  let count l =
    let n = ref 0 in
    for i = 0 to 399 do
      if Mix.draw m ~seed:7 ~index:i = l then incr n
    done;
    !n
  in
  Alcotest.(check bool) "rc dominates serializable" true
    (count L.Read_committed > count L.Serializable)

(* {2 Directed witness histories (replay)} *)

(* Read skew (A5A): T1 reads x, T2 overwrites x and y and commits, T1
   then reads the new y — wr T2->T1 closes against rw T1->T2. The cycle
   classifies as {P2, A5A}. *)
let read_skew = "r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] c1"

let test_rc_reader_tolerates_read_skew () =
  let s =
    Cert.replay ~criterion:Cert.Mixed
      ~levels:[ (1, L.Read_committed); (2, L.Read_committed) ]
      (h read_skew)
  in
  Alcotest.(check bool) "not serializable" false s.Cert.serializable;
  Alcotest.(check bool) "but mixed-ok: RC admits P2/A5A" true s.Cert.mixed_ok;
  Alcotest.(check int) "tolerated online" 1 s.Cert.tolerated;
  Alcotest.(check int) "no harm on the committed projection" 0 s.Cert.harmed;
  Alcotest.(check bool) "RC x A5A attributed in the matrix" true
    (List.mem_assoc (L.Read_committed, P.A5A) s.Cert.matrix)

let test_rr_reader_caught_on_read_skew () =
  let s =
    Cert.replay ~mode:Cert.Enforce ~criterion:Cert.Mixed
      ~levels:[ (1, L.Repeatable_read); (2, L.Read_committed) ]
      (h read_skew)
  in
  Alcotest.(check int) "the RR reader is doomed" 1 s.Cert.dooms;
  Alcotest.(check int) "nothing tolerated" 0 s.Cert.tolerated;
  match s.Cert.violations with
  | [ v ] ->
    Alcotest.(check (option int)) "T1 is the victim" (Some 1) v.Cert.doomed;
    Alcotest.(check (option string))
      "provenance names the victim's level" (Some "repeatable_read")
      v.Cert.victim_level;
    Alcotest.(check bool) "classified as read skew" true
      (List.mem "A5A" v.Cert.classes)
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

(* Write skew (A5B) on the single-version rules: both read under the
   initial era, then write each other's key — rw both ways. *)
let write_skew = "r1[x=100] r2[y=100] w1[y=60] w2[x=60] c1 c2"

let test_si_pair_tolerates_write_skew () =
  let s =
    Cert.replay ~criterion:Cert.Mixed
      ~levels:[ (1, L.Snapshot); (2, L.Snapshot) ]
      (h write_skew)
  in
  Alcotest.(check bool) "not serializable" false s.Cert.serializable;
  Alcotest.(check bool) "mixed-ok: SI admits A5B" true s.Cert.mixed_ok;
  Alcotest.(check bool) "SI x A5B attributed" true
    (List.mem_assoc (L.Snapshot, P.A5B) s.Cert.matrix);
  Alcotest.(check bool) "P2 never attributed to SI (it is forbidden)" false
    (List.mem_assoc (L.Snapshot, P.P2) s.Cert.matrix)

let test_ssi_victim_caught_on_write_skew () =
  let s =
    Cert.replay ~mode:Cert.Enforce ~criterion:Cert.Mixed
      ~levels:[ (1, L.Serializable_snapshot); (2, L.Serializable_snapshot) ]
      (h write_skew)
  in
  Alcotest.(check int) "an SSI victim is doomed" 1 s.Cert.dooms;
  Alcotest.(check int) "nothing tolerated" 0 s.Cert.tolerated

let test_serializable_victim_special_case () =
  (* One SERIALIZABLE member in an otherwise weak cycle: it forbids
     everything, so any cycle through it harms it — full
     serializability as the SERIALIZABLE-victim special case. *)
  let s =
    Cert.replay ~mode:Cert.Enforce ~criterion:Cert.Mixed
      ~levels:[ (1, L.Serializable); (2, L.Read_uncommitted) ]
      (h write_skew)
  in
  Alcotest.(check int) "the SERIALIZABLE member is doomed" 1 s.Cert.dooms;
  match s.Cert.violations with
  | [ v ] ->
    Alcotest.(check (option int)) "T1, not the weak T2" (Some 1) v.Cert.doomed
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

let test_untagged_defaults_to_serializable () =
  let s =
    Cert.replay ~mode:Cert.Enforce ~criterion:Cert.Mixed (h write_skew)
  in
  Alcotest.(check int) "untagged transactions forbid everything" 1
    s.Cert.dooms

(* A harmed member that commits before the cycle closes cannot be
   aborted; the certifier dooms a live member in its stead (the
   defensive abort) and the provenance still names the protected
   party's level. In [read_skew] the closing edge lands at T1's second
   read, after the RR-declared T2 has committed. *)
let test_defensive_abort_protects_committed_victim () =
  let s =
    Cert.replay ~mode:Cert.Enforce ~criterion:Cert.Mixed
      ~levels:[ (1, L.Read_committed); (2, L.Repeatable_read) ]
      (h read_skew)
  in
  Alcotest.(check int) "one doom" 1 s.Cert.dooms;
  Alcotest.(check int) "no miss" 0 s.Cert.misses;
  match s.Cert.violations with
  | [ v ] ->
    Alcotest.(check (option int))
      "the live RC actor is doomed in the committed victim's stead" (Some 1)
      v.Cert.doomed;
    Alcotest.(check (option string))
      "provenance names the protected member's level"
      (Some "repeatable_read") v.Cert.victim_level
  | vs -> Alcotest.fail (Printf.sprintf "%d violations" (List.length vs))

(* {2 Property: 20 seeds of mixed pool traffic}

   Certified mixed runs across seeds: the online certifier's finalized
   [mixed_ok] must agree with the post-run mixed oracle's committed-
   projection replay, and certifier aborts may only strike cycles that
   harmed someone (no aborts in a run whose oracle saw no harm and no
   violation). *)

let test_mixed_pool_agrees_with_oracle () =
  let mix =
    match Mix.parse "rc=70,si=25,serializable=5" with
    | Ok m -> m
    | Error e -> failwith e
  in
  let fam = Mix.family mix in
  for seed = 1 to 20 do
    let gen i =
      let declared = Mix.draw mix ~seed ~index:i in
      let p =
        Workload.Generators.stress_program Workload.Generators.Hotspot ~seed
          ~accounts:8 ~hot:2 ~ops:5 ~index:i
      in
      Pool.job ~name:p.Core.Program.name ~declared
        ~level:(Lattice.strengthen declared fam)
        p
    in
    let cfg =
      Pool.config ~workers:4
        ~initial:(Workload.Generators.bank_accounts 8)
        ~think_us:0. ~seed ~certify:true ~criterion:Cert.Mixed ~family:fam ()
    in
    let r = Pool.run cfg (Array.init 64 gen) in
    let cert =
      match r.Pool.certifier with
      | Some s -> s
      | None -> Alcotest.fail "certified run lost its summary"
    in
    let mixed =
      match r.Pool.mixed with
      | Some m -> m
      | None -> Alcotest.fail "mixed criterion run lost its mixed verdict"
    in
    Alcotest.(check bool)
      (Printf.sprintf
         "seed %d: online mixed_ok agrees with the post-run oracle replay"
         seed)
      cert.Cert.mixed_ok
      (mixed.Oracle.m_harmed = 0);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: no forbidden-for-victim attribution" seed)
      true
      (mixed.Oracle.m_violations = []);
    (* Aborts are victim-relative: a run whose cycles all harmed nobody
       must not have certifier-doomed anyone. *)
    if cert.Cert.dooms > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: dooms only on harm" seed)
        true
        (List.exists
           (fun v -> v.Cert.doomed <> None && v.Cert.victim_level <> None)
           cert.Cert.violations)
  done

(* {2 Single-level regression: the default criterion is untouched} *)

let test_default_criterion_unchanged () =
  List.iter
    (fun hist ->
      let old = Cert.replay (h hist) in
      let tagged =
        Cert.replay ~criterion:Cert.Mixed
          ~levels:(List.map (fun t -> (t, L.Serializable)) [ 1; 2; 3 ])
          (h hist)
      in
      Alcotest.(check bool) "criterion defaults to serializability" true
        (old.Cert.criterion = Cert.Serializability);
      Alcotest.(check bool) "mixed_ok mirrors serializable by default"
        old.Cert.serializable old.Cert.mixed_ok;
      Alcotest.(check bool)
        "all-SERIALIZABLE mixed agrees with the serializability verdict"
        old.Cert.serializable
        (tagged.Cert.serializable && tagged.Cert.mixed_ok))
    [
      "r1[x=0] w1[x=1] c1 r2[x=1] w2[y=1] c2";
      read_skew;
      write_skew;
      "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1";
      "r1[x=0] w2[x=1] r2[y=0] w3[y=1] r3[z=0] w1[z=1] c1 c2 c3";
    ]

let suite =
  [
    Alcotest.test_case "strengthen: identity in-family" `Quick
      test_strengthen_identity;
    Alcotest.test_case "strengthen: cross-family mappings" `Quick
      test_strengthen_cross_family;
    Alcotest.test_case "strengthen: preserves forbidden sets" `Quick
      test_strengthen_preserves_contract;
    Alcotest.test_case "mix: parse" `Quick test_mix_parse;
    Alcotest.test_case "mix: family plurality" `Quick
      test_mix_family_plurality;
    Alcotest.test_case "mix: deterministic draw" `Quick
      test_mix_draw_deterministic;
    Alcotest.test_case "witness: RC tolerates read skew" `Quick
      test_rc_reader_tolerates_read_skew;
    Alcotest.test_case "witness: RR caught on read skew" `Quick
      test_rr_reader_caught_on_read_skew;
    Alcotest.test_case "witness: SI tolerates write skew" `Quick
      test_si_pair_tolerates_write_skew;
    Alcotest.test_case "witness: SSI caught on write skew" `Quick
      test_ssi_victim_caught_on_write_skew;
    Alcotest.test_case "witness: SERIALIZABLE victim special case" `Quick
      test_serializable_victim_special_case;
    Alcotest.test_case "witness: untagged defaults to SERIALIZABLE" `Quick
      test_untagged_defaults_to_serializable;
    Alcotest.test_case "witness: defensive abort for a committed victim"
      `Quick test_defensive_abort_protects_committed_victim;
    Alcotest.test_case "property: 20-seed pool runs agree with the oracle"
      `Quick test_mixed_pool_agrees_with_oracle;
    Alcotest.test_case "regression: default criterion unchanged" `Quick
      test_default_criterion_unchanged;
  ]
