(* The striped execution path: stripe plans, the shared key-hash map,
   the sharded store and striped lock table, cross-stripe deadlock
   detection, oracle windowing, and the property the whole refactor is
   accountable to — striped runs produce well-formed histories with the
   same oracle verdict class as the coarse baseline at every level.

   Parallel assertions follow the suite's rule: only invariants that
   hold for every interleaving (verdicts, conservation, accounting).
   Probabilistic facts (a deadlock actually forming, READ COMMITTED
   actually losing an update) hunt over seeds. *)

module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Metrics = Runtime.Metrics
module Stripes = Runtime.Stripes
module Engine = Core.Engine
module Program = Core.Program
module Shard = Storage.Shard
module Store = Storage.Store
module LT = Locking.Lock_table
module Generators = Workload.Generators
module L = Isolation.Level
module Ph = Phenomena.Phenomenon

(* {2 Stripe plans} *)

let test_plan_all () =
  Alcotest.(check (list int))
    "All takes every key stripe plus the predicate stripe" [ 0; 1; 2; 3; 4 ]
    (Pool.stripe_plan ~stripes:4 Engine.All)

let test_plan_ordered_two_stripe () =
  (* The ordered two-stripe discipline for item writers: the key's
     stripe first, the predicate stripe last. *)
  let k = "acct_007" in
  let ks = Shard.of_key ~shards:8 k in
  Alcotest.(check (list int))
    "write plan = key stripe then predicate stripe" [ ks; 8 ]
    (Pool.stripe_plan ~stripes:8 (Engine.Keys { keys = [ k ]; pred = true }));
  (* A reader skips the predicate stripe entirely. *)
  Alcotest.(check (list int))
    "read plan = key stripe only" [ ks ]
    (Pool.stripe_plan ~stripes:8 (Engine.Keys { keys = [ k ]; pred = false }))

let test_plan_ascending_and_deduped () =
  (* Whatever the key order in the footprint, the plan is ascending and
     duplicate stripes collapse — the global acquisition order that
     makes the stripe mutexes deadlock-free. *)
  let keys = List.init 32 (fun i -> Printf.sprintf "k%d" i) in
  let plan =
    Pool.stripe_plan ~stripes:8 (Engine.Keys { keys = List.rev keys; pred = true })
  in
  let rec strictly_ascending = function
    | a :: (b :: _ as rest) -> a < b && strictly_ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending" true (strictly_ascending plan);
  Alcotest.(check int)
    "predicate stripe is last" 8
    (List.nth plan (List.length plan - 1))

let test_plan_never_empty () =
  Alcotest.(check (list int))
    "empty footprint still holds one stripe" [ 0 ]
    (Pool.stripe_plan ~stripes:8 (Engine.Keys { keys = []; pred = false }))

let test_engine_footprints () =
  let e =
    Engine.create ~initial:[ ("a", 1); ("b", 2) ] ~predicates:[] ~stripes:8
      ~family:`Locking ()
  in
  Engine.begin_txn e 1 ~level:L.Serializable;
  (match Engine.footprint e 1 (Program.Read "a") with
  | Engine.Keys { keys = [ "a" ]; pred = false } -> ()
  | _ -> Alcotest.fail "read footprint should be its key, no predicate stripe");
  (match Engine.footprint e 1 (Program.Write ("a", Program.const 9)) with
  | Engine.Keys { keys = [ "a" ]; pred = true } -> ()
  | _ -> Alcotest.fail "write footprint should be its key plus predicates");
  (match Engine.footprint e 1 (Program.Scan Storage.Predicate.all) with
  | Engine.All -> ()
  | _ -> Alcotest.fail "scan footprint must be All");
  match Engine.footprint e 1 Program.Commit with
  | Engine.All -> ()
  | _ -> Alcotest.fail "commit footprint must be All"

(* {2 One hash to rule them} *)

let test_hash_agreement () =
  let shards = 8 in
  let stripes = Stripes.create shards in
  let store = Store.of_list ~shards [] in
  let lt = LT.create ~stripes:shards () in
  List.iter
    (fun k ->
      let expected = Shard.of_key ~shards k in
      Alcotest.(check int) ("stripes agree on " ^ k) expected
        (Stripes.stripe_of_key stripes k);
      Alcotest.(check int) ("store agrees on " ^ k) expected
        (Store.shard_of_key store k);
      Alcotest.(check int) ("lock table agrees on " ^ k) expected
        (LT.bucket_of_key lt k))
    (List.init 64 (fun i -> Printf.sprintf "acct_%03d" i))

(* {2 Sharded storage equivalence} *)

let test_sharded_store_equivalence () =
  let kvs = List.init 50 (fun i -> (Printf.sprintf "k%02d" i, i * 3)) in
  let s1 = Store.of_list ~shards:1 kvs in
  let s8 = Store.of_list ~shards:8 kvs in
  Store.delete s1 "k07";
  Store.delete s8 "k07";
  Store.put s1 "zz" 99;
  Store.put s8 "zz" 99;
  Alcotest.(check bool) "same contents" true (Store.equal s1 s8);
  Alcotest.(check
               (list (pair string int)))
    "scan merges shards in key order"
    (Store.to_list s1) (Store.to_list s8);
  List.iter
    (fun probe ->
      Alcotest.(check (option string))
        ("next_key_geq " ^ probe)
        (Store.next_key_geq s1 probe) (Store.next_key_geq s8 probe))
    [ "k00"; "k07"; "k25"; "k49"; "k99"; "a"; "zz" ]

(* {2 Striped lock table: single-threaded equivalence} *)

let test_striped_lock_table_equivalence () =
  let script lt =
    let acq owner req = LT.acquire lt ~owner ~tag:LT.Long req in
    let w k = LT.Write_item { k; before = None; after = Some 1 } in
    [
      acq 1 (LT.Read_item "a");
      acq 2 (w "a"); (* blocked by T1's read, same stripe *)
      acq 2 (w "b"); (* free: different key *)
      acq 1 (LT.Read_pred Storage.Predicate.all); (* pred vs T2's write on b *)
      acq 1 (w "a"); (* upgrade of T1's own read *)
    ]
  in
  let verdicts lt = List.map (function
      | LT.Granted -> None
      | LT.Conflict owners -> Some (List.sort compare owners))
      (script lt)
  in
  let lt1 = LT.create ~stripes:1 () in
  let lt8 = LT.create ~stripes:8 () in
  Alcotest.(check (list (option (list int))))
    "same verdicts at 1 and 8 stripes" (verdicts lt1) (verdicts lt8);
  let s1 = LT.stats lt1 and s8 = LT.stats lt8 in
  Alcotest.(check (list int))
    "same stats"
    [ s1.LT.grants; s1.LT.conflicts; s1.LT.upgrades ]
    [ s8.LT.grants; s8.LT.conflicts; s8.LT.upgrades ];
  LT.release_all lt8 ~owner:1;
  LT.release_all lt8 ~owner:2;
  Alcotest.(check bool) "striped table drains" true (LT.is_empty lt8)

(* {2 Cross-stripe deadlock detection} *)

(* Uniform transfers lock two random accounts in opposite orders, so
   wait cycles routinely span keys hashing to different stripes; the
   sharded detector must find those cycles and abort a victim. Any one
   seed may dodge the race, so hunt — but every run, deadlock or not,
   must end with all jobs committed and a pattern-free history. *)
let test_cross_stripe_deadlock () =
  let deadlocks_seen = ref 0 in
  List.iter
    (fun seed ->
      let n = 96 in
      let gen i =
        let p =
          Generators.stress_program Generators.Transfer ~seed ~accounts:16
            ~hot:16 ~ops:4 ~index:i
        in
        Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
      in
      let cfg =
        Pool.config ~workers:4
          ~initial:(Generators.bank_accounts 16)
          ~think_us:50. ~seed ()
      in
      let r = Pool.run cfg (Array.init n gen) in
      deadlocks_seen := !deadlocks_seen + r.Pool.metrics.Metrics.deadlocks;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: every job commits" seed)
        n r.Pool.metrics.Metrics.committed;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: pattern-free" seed)
        true
        (Oracle.pattern_free (Option.get r.Pool.oracle));
      (* Victim accounting: every deadlock the detector broke is an
         aborted attempt with the victim reason. *)
      Alcotest.(check int)
        (Printf.sprintf "seed %d: victims = deadlocks" seed)
        r.Pool.metrics.Metrics.deadlocks
        (List.assoc_opt Core.Engine.Deadlock_victim r.Pool.metrics.Metrics.aborted
        |> Option.value ~default:0);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: stripe acquisitions recorded" seed)
        true
        (r.Pool.metrics.Metrics.stripe_acquired > 0))
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check bool) "at least one deadlock broken across seeds" true
    (!deadlocks_seen > 0)

(* {2 Striped vs coarse: same verdict class at every level} *)

let run_mode ~coarse ~level ~seed =
  let mix =
    (* hot keys for the weak levels so anomalies have a chance to form *)
    match level with
    | L.Read_committed -> Generators.Hotspot
    | _ -> Generators.Transfer
  in
  let gen i =
    let p =
      Generators.stress_program mix ~seed ~accounts:8 ~hot:1 ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level p
  in
  let cfg =
    Pool.config ~workers:4 ~coarse
      ~initial:(Generators.bank_accounts 8)
      ~think_us:20. ~seed ()
  in
  Pool.run cfg (Array.init 24 gen)

(* The verdict class a level is accountable for. Striped and coarse runs
   see different interleavings, so per-seed witness counts differ; what
   must agree is the class: serializability-promising levels come back
   clean (2PL even pattern-free) in both modes, and every history is
   well-formed in both modes. *)
let check_class ~mode ~level ~seed (r : Pool.result) =
  let label fact = Printf.sprintf "%s seed %d (%s): %s" (L.name level) seed mode fact in
  Alcotest.(check bool) (label "well-formed") true
    ((Option.get r.oracle).Oracle.well_formed = Ok ());
  match level with
  | L.Serializable ->
    Alcotest.(check bool) (label "pattern-free") true (Oracle.pattern_free (Option.get r.oracle))
  | L.Serializable_snapshot | L.Timestamp_ordering ->
    Alcotest.(check bool) (label "clean") true (Oracle.clean (Option.get r.oracle))
  | L.Snapshot ->
    (* SI admits write skew in principle; the bank mixes cannot form it,
       so SI must come back clean here too. *)
    Alcotest.(check bool) (label "clean") true (Oracle.clean (Option.get r.oracle))
  | _ -> ()

let test_striped_serializable_20_seeds () =
  List.iter
    (fun seed ->
      let striped = run_mode ~coarse:false ~level:L.Serializable ~seed in
      check_class ~mode:"striped" ~level:L.Serializable ~seed striped;
      let coarse = run_mode ~coarse:true ~level:L.Serializable ~seed in
      check_class ~mode:"coarse" ~level:L.Serializable ~seed coarse)
    (List.init 20 (fun i -> i + 1))

let test_striped_other_levels () =
  List.iter
    (fun level ->
      List.iter
        (fun seed ->
          let striped = run_mode ~coarse:false ~level ~seed in
          check_class ~mode:"striped" ~level ~seed striped;
          let coarse = run_mode ~coarse:true ~level ~seed in
          check_class ~mode:"coarse" ~level ~seed coarse)
        [ 1; 2; 3; 4 ])
    [ L.Snapshot; L.Serializable_snapshot; L.Timestamp_ordering ]

(* READ COMMITTED keeps its anomalies under striping: over 20 seeds the
   striped runs must exhibit a lost update (P4) or an A5 read anomaly
   somewhere — weakening the level is the phenomenon the striping must
   not accidentally mask (nor fix). *)
let test_striped_read_committed_still_weak () =
  let found = ref false in
  List.iter
    (fun seed ->
      let r = run_mode ~coarse:false ~level:L.Read_committed ~seed in
      check_class ~mode:"striped" ~level:L.Read_committed ~seed r;
      if
        List.exists
          (fun p -> List.mem_assoc p (Option.get r.oracle).Oracle.phenomena)
          [ Ph.P4; Ph.A5A; Ph.A5B ]
      then found := true)
    (List.init 20 (fun i -> i + 1));
  Alcotest.(check bool) "P4/A5 observed under striping" true !found

(* {2 Oracle windowing} *)

let lost_update_among_bystanders =
  (* T1/T2 race a lost update on x; T3..T6 are independent committed
     bystanders that stretch the completion order past any small
     window. *)
  "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1 r3[a=1] c3 r4[b=1] c4 \
   r5[d=1] c5 r6[e=1] c6"

let test_windowed_oracle_finds_anomaly () =
  let h = History.of_string lost_update_among_bystanders in
  let full = Oracle.check h in
  let windowed = Oracle.check ~window:2 h in
  Alcotest.(check (option int)) "window recorded" (Some 2) windowed.Oracle.window;
  Alcotest.(check bool) "full check sees P4" true
    (List.mem_assoc Ph.P4 full.Oracle.phenomena);
  Alcotest.(check bool) "windowed check still sees P4" true
    (List.mem_assoc Ph.P4 windowed.Oracle.phenomena);
  Alcotest.(check bool) "windowed verdict is dirty" false
    (Oracle.clean windowed);
  Alcotest.(check bool) "windowed serializability fails too" false
    windowed.Oracle.serializable;
  (* Totals describe the whole history even when checking is windowed. *)
  Alcotest.(check int) "txn total is the full history's" 6 windowed.Oracle.txns;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "JSON labels the verdict windowed" true
    (contains (Oracle.to_json windowed) "\"windowed\":2")

let test_windowed_oracle_clean_run () =
  (* A striped SERIALIZABLE run checked with a window stays clean, and
     the pool threads the window into the verdict. *)
  let gen i =
    let p =
      Generators.stress_program Generators.Transfer ~seed:5 ~accounts:8 ~hot:2
        ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
  in
  let cfg =
    Pool.config ~workers:4
      ~initial:(Generators.bank_accounts 8)
      ~think_us:20. ~oracle_window:8 ~seed:5 ()
  in
  let r = Pool.run cfg (Array.init 48 gen) in
  Alcotest.(check (option int)) "verdict is windowed" (Some 8)
    (Option.get r.Pool.oracle).Oracle.window;
  Alcotest.(check bool) "windowed striped run is clean" true
    (Oracle.clean (Option.get r.Pool.oracle))

let suite =
  [
    Alcotest.test_case "plan: All covers every stripe" `Quick test_plan_all;
    Alcotest.test_case "plan: ordered two-stripe acquisition" `Quick
      test_plan_ordered_two_stripe;
    Alcotest.test_case "plan: ascending and deduplicated" `Quick
      test_plan_ascending_and_deduped;
    Alcotest.test_case "plan: never empty" `Quick test_plan_never_empty;
    Alcotest.test_case "engine footprints localize point ops" `Quick
      test_engine_footprints;
    Alcotest.test_case "stripes, store and lock table share the key hash"
      `Quick test_hash_agreement;
    Alcotest.test_case "sharded store behaves like one btree" `Quick
      test_sharded_store_equivalence;
    Alcotest.test_case "striped lock table: single-thread equivalence" `Quick
      test_striped_lock_table_equivalence;
    Alcotest.test_case "cross-stripe deadlocks are found and broken" `Quick
      test_cross_stripe_deadlock;
    Alcotest.test_case "striped SERIALIZABLE clean over 20 seeds (+ coarse)"
      `Quick test_striped_serializable_20_seeds;
    Alcotest.test_case "striped SI/SSI/TO keep their verdict class" `Quick
      test_striped_other_levels;
    Alcotest.test_case "striped READ COMMITTED still exhibits P4/A5" `Quick
      test_striped_read_committed_still_weak;
    Alcotest.test_case "windowed oracle: anomalies stay visible" `Quick
      test_windowed_oracle_finds_anomaly;
    Alcotest.test_case "windowed oracle: clean striped run stays clean" `Quick
      test_windowed_oracle_clean_run;
  ]
