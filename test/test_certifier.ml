(* The online serializability certifier.

   Unit tests feed hand-written histories through {!Certifier.replay}
   and pin verdicts, edge accounting and enforcement semantics; the
   property tests run the real pool and hold the certifier to its two
   contracts: (1) the replay verdict agrees with the offline oracle's
   serializability class on every recorded history, at every isolation
   level, across seeds; (2) an enforcing run's committed projection is
   serializable at any level — anomalies are certified away, not
   observed. A regression test pins the windowed-oracle fix: a
   dependency cycle spanning more transactions than a window holds must
   still be caught. *)

module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Cert = Runtime.Certifier
module Metrics = Runtime.Metrics
module Generators = Workload.Generators
module L = Isolation.Level
module A = History.Action

let h = History.of_string

(* {2 Replay on hand-written histories} *)

let test_replay_serial () =
  let s = Cert.replay (h "r1[x=0] w1[x=1] c1 r2[x=1] w2[y=1] c2") in
  Alcotest.(check bool) "serial history certifies" true s.Cert.serializable;
  Alcotest.(check int) "no cycles" 0 s.Cert.cycles;
  Alcotest.(check bool) "wr edge recorded" true (s.Cert.edges_wr >= 1)

let test_replay_lost_update () =
  (* The P4 template: both read x=100, both write — T1 -> T2 by rw,
     T2 -> T1 by ww/rw. Not serializable. *)
  let s = Cert.replay (h "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1") in
  Alcotest.(check bool) "lost update is not serializable" false
    s.Cert.serializable;
  Alcotest.(check bool) "witness produced" true (s.Cert.witness <> None)

let test_replay_aborted_writer_excluded () =
  (* A dirty read whose writer aborts: the committed projection is just
     T2, trivially serializable — aborted transactions must not leave
     edges behind. *)
  let s = Cert.replay (h "w1[x=1] r2[x=1] a1 w2[y=1] c2") in
  Alcotest.(check bool) "committed projection certifies" true
    s.Cert.serializable

let test_replay_wr_cycle_witness () =
  (* A pure rw cycle across three keys (the write-skew shape stretched
     to three transactions): every closing edge class reported. *)
  let s =
    Cert.replay (h "r1[x=0] w2[x=1] r2[y=0] w3[y=1] r3[z=0] w1[z=1] c1 c2 c3")
  in
  Alcotest.(check bool) "three-txn rw cycle caught" false s.Cert.serializable;
  match s.Cert.witness with
  | Some w -> Alcotest.(check int) "witness covers the triangle" 3 (List.length w)
  | None -> Alcotest.fail "no witness"

let test_replay_mv_snapshot_reads_certify () =
  (* Multiversion: T2 reads the version before T1's committed write —
     a single-version analysis would call r2 a fuzzy read, but the MVSG
     (version order = commit order) is acyclic. *)
  let s = Cert.replay (h "w1[x1=1] c1 r2[x0=0] w2[y2=1] c2") in
  Alcotest.(check bool) "snapshot read certifies" true s.Cert.serializable

let test_replay_mv_write_skew_rejected () =
  (* SI's signature anomaly in version vocabulary: disjoint writes off a
     common snapshot — rw both ways, an MVSG cycle. *)
  let s =
    Cert.replay
      (h "r1[x0=0] r1[y0=0] r2[x0=0] r2[y0=0] w1[x1=1] c1 w2[y2=1] c2")
  in
  Alcotest.(check bool) "write skew is not one-copy serializable" false
    s.Cert.serializable

(* {2 Enforcement semantics} *)

let test_enforce_dooms_the_closer () =
  (* Feed the three-transaction rw triangle action by action: the last
     read/write belongs to T1 and closes the cycle, so Enforce must doom
     T1 — and once T1 aborts instead of committing, the committed
     projection is serializable. *)
  let c = Cert.create ~mode:Cert.Enforce ~family:`Locking () in
  let feed s = List.iteri (fun i a -> Cert.observe c i a) (h s) in
  feed "r1[x=0] w2[x=1] r2[y=0] w3[y=1] r3[z=0]";
  Alcotest.(check bool) "nobody doomed yet" false
    (List.exists (Cert.doomed c) [ 1; 2; 3 ]);
  feed "w1[z=1]";
  Alcotest.(check bool) "the closer is doomed" true (Cert.doomed c 1);
  Alcotest.(check bool) "bystanders are not" false
    (Cert.doomed c 2 || Cert.doomed c 3);
  feed "a1 c2 c3";
  let s = Cert.finalize c in
  Alcotest.(check int) "one cycle rejected" 1 s.Cert.cycles;
  Alcotest.(check int) "one doom" 1 s.Cert.dooms;
  Alcotest.(check bool) "committed projection serializable" true
    s.Cert.serializable;
  (* The violation names the closing edge's class and victim. *)
  match s.Cert.violations with
  | [ v ] ->
    Alcotest.(check string) "closing edge class" "rw" v.Cert.dep;
    Alcotest.(check (option int)) "doomed is recorded" (Some 1) v.Cert.doomed
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_observe_mode_never_dooms () =
  let c = Cert.create ~mode:Cert.Observe ~family:`Locking () in
  List.iteri (fun i a -> Cert.observe c i a)
    (h "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1");
  Alcotest.(check bool) "observe dooms nobody" false
    (Cert.doomed c 1 || Cert.doomed c 2);
  let s = Cert.finalize c in
  Alcotest.(check bool) "cycle still recorded" true (s.Cert.cycles >= 1);
  Alcotest.(check int) "no dooms" 0 s.Cert.dooms;
  Alcotest.(check bool) "verdict still falls" false s.Cert.serializable

(* {2 The cross-window regression}

   Before serializability was decided by full-history replay, the
   windowed oracle took the conjunction of per-window verdicts — and a
   cycle spanning more transactions than one window holds slipped
   through. The triangle above with window 2 is exactly that trap. *)

let test_windowed_oracle_catches_spanning_cycle () =
  let hist = h "r1[x=0] w2[x=1] r2[y=0] w3[y=1] r3[z=0] w1[z=1] c1 c2 c3" in
  let full = Oracle.check hist in
  Alcotest.(check bool) "full check: not serializable" false
    full.Oracle.serializable;
  (* Window 2 over 3 transactions: no window contains the whole cycle,
     yet the verdict must still fall. *)
  let windowed = Oracle.check ~window:2 hist in
  Alcotest.(check (option int)) "windowed" (Some 2) windowed.Oracle.window;
  Alcotest.(check bool) "windowed check: not serializable" false
    windowed.Oracle.serializable;
  Alcotest.(check bool) "cycle witness survives windowing" true
    (windowed.Oracle.cycle <> None)

(* {2 Properties over real pool runs} *)

let seeds = List.init 20 (fun i -> i + 1)

let levels =
  [
    L.Read_committed;
    L.Repeatable_read;
    L.Serializable;
    L.Snapshot;
    L.Serializable_snapshot;
    L.Timestamp_ordering;
  ]

let run_pool ?(certify = false) ~level ~seed () =
  let gen i =
    let p =
      Generators.stress_program Generators.Hotspot ~seed ~accounts:8 ~hot:3
        ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level p
  in
  let cfg =
    Pool.config ~workers:4
      ~initial:(Generators.bank_accounts 8)
      ~think_us:10. ~seed ~certify ()
  in
  Pool.run cfg (Array.init 24 gen)

(* Contract (1): the incremental replay's verdict equals the offline
   oracle's on every history the pool can produce — locking, snapshot
   and timestamp families alike. *)
let test_replay_agrees_with_oracle () =
  List.iter
    (fun level ->
      List.iter
        (fun seed ->
          let r = run_pool ~level ~seed () in
          let replay = Cert.replay r.Pool.history in
          if replay.Cert.serializable <> (Option.get r.Pool.oracle).Oracle.serializable then
            Alcotest.failf "%s seed %d: replay says %b, oracle says %b"
              (L.name level) seed replay.Cert.serializable
              (Option.get r.Pool.oracle).Oracle.serializable)
        seeds)
    levels

(* Contract (2): enforcing runs commit only a serializable projection —
   at READ COMMITTED, where cycles genuinely form, the certifier must
   abort its way to an acyclic history across every seed. *)
let test_enforced_runs_certify_clean () =
  List.iter
    (fun level ->
      List.iter
        (fun seed ->
          let r = run_pool ~certify:true ~level ~seed () in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d serializable" (L.name level) seed)
            true (Option.get r.Pool.oracle).Oracle.serializable;
          match r.Pool.certifier with
          | None -> Alcotest.fail "certifier summary missing"
          | Some s ->
            Alcotest.(check bool)
              (Printf.sprintf "%s seed %d summary verdict" (L.name level) seed)
              true s.Cert.serializable;
            Alcotest.(check int)
              (Printf.sprintf "%s seed %d dooms = metric" (L.name level) seed)
              s.Cert.dooms r.Pool.metrics.Metrics.certifier_aborts)
        seeds)
    [ L.Read_committed; L.Serializable ]

(* At SERIALIZABLE the engine already prevents cycles, so certification
   must be a no-op: no dooms, no anomalies, pattern-free — the ISSUE's
   20-seed acceptance bar. *)
let test_serializable_certify_is_noop () =
  List.iter
    (fun seed ->
      let r = run_pool ~certify:true ~level:L.Serializable ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d pattern-free" seed)
        true
        (Oracle.pattern_free (Option.get r.Pool.oracle));
      Alcotest.(check int)
        (Printf.sprintf "seed %d no certifier aborts" seed)
        0 r.Pool.metrics.Metrics.certifier_aborts)
    seeds

let suite =
  [
    Alcotest.test_case "replay: serial history" `Quick test_replay_serial;
    Alcotest.test_case "replay: lost update rejected" `Quick
      test_replay_lost_update;
    Alcotest.test_case "replay: aborted writer excluded" `Quick
      test_replay_aborted_writer_excluded;
    Alcotest.test_case "replay: rw triangle witness" `Quick
      test_replay_wr_cycle_witness;
    Alcotest.test_case "replay: MV snapshot reads certify" `Quick
      test_replay_mv_snapshot_reads_certify;
    Alcotest.test_case "replay: MV write skew rejected" `Quick
      test_replay_mv_write_skew_rejected;
    Alcotest.test_case "enforce dooms the closer" `Quick
      test_enforce_dooms_the_closer;
    Alcotest.test_case "observe mode never dooms" `Quick
      test_observe_mode_never_dooms;
    Alcotest.test_case "windowed oracle catches spanning cycle" `Quick
      test_windowed_oracle_catches_spanning_cycle;
    Alcotest.test_case "replay agrees with the oracle (20 seeds x levels)"
      `Slow test_replay_agrees_with_oracle;
    Alcotest.test_case "enforced runs certify clean (20 seeds)" `Slow
      test_enforced_runs_certify_clean;
    Alcotest.test_case "certify at SERIALIZABLE is a no-op (20 seeds)" `Slow
      test_serializable_certify_is_noop;
  ]
