(* The telemetry layer: Window's interval arithmetic against real
   Metrics recording (the delta of two snapshots must equal what was
   recorded between them), monotonicity of live snapshots under
   concurrent recording domains, the STATS JSON round trip
   (Metrics.to_json -> Trace.Json.parse -> Window.of_json), and the
   Prometheus writer's output shape. *)

module Metrics = Runtime.Metrics
module W = Telemetry.Window
module L = Isolation.Level
module J = Trace.Json

let reason = Core.Engine.Deadlock_victim

(* {2 Window.delta of two real snapshots} *)

let test_delta_matches_recording () =
  let m = Metrics.create () in
  Metrics.start m;
  Metrics.record_commit ~level:L.Serializable m ~latency_ns:1_000_000;
  Metrics.record_abort ~level:L.Serializable m reason;
  let s0 = W.of_snapshot (Metrics.snapshot m) in
  (* the interval under test: 3 commits, 2 aborts, 1 doom, 1 retry *)
  Metrics.record_commit ~level:L.Serializable m ~latency_ns:2_000_000;
  Metrics.record_commit ~level:L.Serializable m ~latency_ns:2_000_000;
  Metrics.record_commit ~level:L.Read_committed m ~latency_ns:4_000_000;
  Metrics.record_abort ~level:L.Read_committed m reason;
  Metrics.record_abort ~level:L.Read_committed m Core.Engine.Certifier_abort;
  Metrics.record_certifier_abort ~level:L.Read_committed m;
  Metrics.record_retry m;
  let s1 = W.of_snapshot (Metrics.snapshot m) in
  let r = W.delta s0 s1 in
  Alcotest.(check int) "interval commits" 3 r.W.d_committed;
  Alcotest.(check int) "interval aborts" 2 r.W.d_aborted;
  Alcotest.(check int) "interval retries" 1 r.W.d_retries;
  Alcotest.(check int) "interval dooms" 1 r.W.d_certifier_aborts;
  Alcotest.(check (list (pair string int)))
    "interval abort mix"
    (List.sort compare
       [
         (Metrics.abort_reason_slug reason, 1);
         (Metrics.abort_reason_slug Core.Engine.Certifier_abort, 1);
       ])
    (List.sort compare r.W.d_aborted_by);
  Alcotest.(check (list (triple string int int)))
    "per-level interval (committed, aborted)"
    [ ("read_committed", 1, 2); ("serializable", 2, 0) ]
    (List.sort compare
       (List.map (fun (s, c, a, _) -> (s, c, a)) r.W.d_per_level));
  (* the interval histogram holds exactly the interval's 3 commits, and
     its quantiles land near the recorded latencies (log2 buckets) *)
  Alcotest.(check bool) "interval p50 in [1, 4]ms" true
    (r.W.lat_p50_ms >= 1.0 && r.W.lat_p50_ms <= 4.0);
  Alcotest.(check bool) "interval p99 in [2, 8]ms" true
    (r.W.lat_p99_ms >= 2.0 && r.W.lat_p99_ms <= 8.0);
  (* an empty interval deltas to zero, not noise *)
  let r0 = W.delta s1 (W.of_snapshot (Metrics.snapshot m)) in
  Alcotest.(check int) "empty interval commits" 0 r0.W.d_committed;
  Alcotest.(check int) "empty interval aborts" 0 r0.W.d_aborted;
  Alcotest.(check (list (pair string int)))
    "empty interval abort mix" [] r0.W.d_aborted_by

(* {2 Monotone live reads under concurrent recording} *)

let test_monotone_under_concurrency () =
  let m = Metrics.create () in
  Metrics.start m;
  let per_domain = 20_000 in
  let running = Atomic.make 4 in
  (* Writers hold at this gate until the reader has taken its first live
     snapshot, so at least one reader check provably races them — the
     un-gated version flaked when all four domains finished before the
     reader's first look at [running]. *)
  let go = Atomic.make false in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get go) do
              Domain.cpu_relax ()
            done;
            for i = 1 to per_domain do
              if i land 1 = 0 then
                Metrics.record_commit ~level:L.Snapshot m
                  ~latency_ns:((i land 0xFF) * 1000)
              else Metrics.record_abort ~level:L.Snapshot m reason;
              if d = 0 && i land 63 = 0 then Metrics.record_retry m
            done;
            Atomic.decr running))
  in
  (* reader side: every counter must be monotone between consecutive
     live snapshots, and no read may tear *)
  let prev = ref (W.of_snapshot (Metrics.snapshot m)) in
  let checks = ref 0 in
  Atomic.set go true;
  while Atomic.get running > 0 do
    let s = W.of_snapshot (Metrics.snapshot m) in
    let p = !prev in
    if s.W.committed < p.W.committed then
      Alcotest.failf "committed went backwards: %d -> %d" p.W.committed
        s.W.committed;
    if s.W.aborted < p.W.aborted then
      Alcotest.failf "aborted went backwards: %d -> %d" p.W.aborted s.W.aborted;
    if s.W.retries < p.W.retries then
      Alcotest.failf "retries went backwards: %d -> %d" p.W.retries s.W.retries;
    Array.iteri
      (fun i n ->
        if Array.length p.W.lat_hist > i && n < p.W.lat_hist.(i) then
          Alcotest.failf "lat_hist.(%d) went backwards" i)
      s.W.lat_hist;
    incr checks;
    prev := s
  done;
  List.iter Domain.join domains;
  Alcotest.(check bool) "reader actually raced the writers" true (!checks > 0);
  (* quiescent snapshot is exact *)
  let s = W.of_snapshot (Metrics.snapshot m) in
  Alcotest.(check int) "final commits" (4 * per_domain / 2) s.W.committed;
  Alcotest.(check int) "final aborts" (4 * per_domain / 2) s.W.aborted;
  Alcotest.(check int)
    "histogram holds every commit"
    (4 * per_domain / 2)
    (Array.fold_left ( + ) 0 s.W.lat_hist)

(* {2 JSON round trip} *)

let test_of_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.start m;
  Metrics.record_commit ~level:L.Serializable m ~latency_ns:3_000_000;
  Metrics.record_commit m ~latency_ns:500_000;
  Metrics.record_abort ~level:L.Serializable m reason;
  Metrics.record_retry m;
  Metrics.record_giveup m;
  Metrics.record_deadlock m;
  Metrics.record_certifier_abort ~level:L.Serializable m;
  Metrics.stop m;
  let snap = Metrics.snapshot m in
  let direct = W.of_snapshot snap in
  let j =
    match J.parse (Metrics.to_json snap) with
    | Ok j -> j
    | Error e -> Alcotest.failf "metrics JSON did not parse: %a" J.pp_error e
  in
  let parsed =
    match W.of_json j with
    | Some s -> s
    | None -> Alcotest.fail "Window.of_json rejected Metrics.to_json"
  in
  Alcotest.(check (float 1e-6)) "at survives" direct.W.at parsed.W.at;
  Alcotest.(check int) "committed survives" direct.W.committed
    parsed.W.committed;
  Alcotest.(check int) "aborted survives" direct.W.aborted parsed.W.aborted;
  Alcotest.(check int) "retries survive" direct.W.retries parsed.W.retries;
  Alcotest.(check int) "giveups survive" direct.W.giveups parsed.W.giveups;
  Alcotest.(check int) "deadlocks survive" direct.W.deadlocks
    parsed.W.deadlocks;
  Alcotest.(check int) "dooms survive" direct.W.certifier_aborts
    parsed.W.certifier_aborts;
  Alcotest.(check (list (pair string int)))
    "abort mix survives"
    (List.sort compare direct.W.aborted_by)
    (List.sort compare parsed.W.aborted_by);
  Alcotest.(check bool) "per-level survives" true
    (List.sort compare direct.W.per_level
    = List.sort compare parsed.W.per_level);
  Alcotest.(check bool) "histogram survives" true
    (direct.W.lat_hist = parsed.W.lat_hist);
  (* a malformed object (no taken_at) is None, not an exception *)
  Alcotest.(check bool) "missing taken_at rejected" true
    (W.of_json (J.Obj [ ("committed", J.Int 3) ]) = None)

(* {2 Prometheus writer} *)

let test_prometheus_shape () =
  let p = Telemetry.Prometheus.create () in
  Telemetry.Prometheus.counter p ~help:"Committed transactions" "lab_commits"
    [ ([], 42.) ];
  Telemetry.Prometheus.counter p "lab_aborts"
    [
      ([ ("reason", "deadlock") ], 7.);
      ([ ("reason", "weird\"quote\\and\nnewline") ], 1.);
    ];
  Telemetry.Prometheus.gauge p "lab_queue" [ ([], 3.5) ];
  let out = Telemetry.Prometheus.to_string p in
  let has needle =
    Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
      (let n = String.length needle and m = String.length out in
       let rec at i = i + n <= m && (String.sub out i n = needle || at (i + 1)) in
       at 0)
  in
  has "# HELP lab_commits Committed transactions\n";
  has "# TYPE lab_commits counter\n";
  has "lab_commits 42\n";
  has "# TYPE lab_aborts counter\n";
  has "lab_aborts{reason=\"deadlock\"} 7\n";
  (* label escaping: backslash, quote and newline *)
  has "lab_aborts{reason=\"weird\\\"quote\\\\and\\nnewline\"} 1\n";
  has "# TYPE lab_queue gauge\n";
  has "lab_queue 3.5\n"

let suite =
  [
    Alcotest.test_case "window delta matches the interval's recording" `Quick
      test_delta_matches_recording;
    Alcotest.test_case "live snapshots are monotone under concurrency" `Quick
      test_monotone_under_concurrency;
    Alcotest.test_case "sample survives the STATS JSON round trip" `Quick
      test_of_json_roundtrip;
    Alcotest.test_case "prometheus exposition shape and escaping" `Quick
      test_prometheus_shape;
  ]
