(* Test entry point: every suite registered under one Alcotest runner. *)

let () =
  Alcotest.run "ansi_critique"
    [
      ("digraph", Test_digraph.suite);
      ("parser", Test_parser.suite);
      ("history", Test_history.suite);
      ("conflict", Test_conflict.suite);
      ("mv", Test_mv.suite);
      ("view", Test_view.suite);
      ("recoverability", Test_recoverability.suite);
      ("phenomena", Test_phenomena.suite);
      ("implications", Test_implications.suite);
      ("isolation", Test_isolation.suite);
      ("btree", Test_btree.suite);
      ("storage", Test_storage.suite);
      ("recovery", Test_recovery.suite);
      ("locking", Test_locking.suite);
      ("lock-engine", Test_lock_engine.suite);
      ("discipline", Test_discipline.suite);
      ("next-key", Test_next_key.suite);
      ("update-locks", Test_update_locks.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("mv-engine", Test_mv_engine.suite);
      ("mixed-method", Test_mixed_method.suite);
      ("timestamp-ordering", Test_to_engine.suite);
      ("executor", Test_executor.suite);
      ("db", Test_db.suite);
      ("script", Test_script.suite);
      ("sim", Test_sim.suite);
      ("scenarios", Test_scenarios.suite);
      ("classify", Test_classify.suite);
      ("properties", Test_properties.suite);
      ("runtime", Test_runtime.suite);
      ("graph", Test_graph.suite);
      ("certifier", Test_certifier.suite);
      ("mixed", Test_mixed.suite);
      ("striped", Test_striped.suite);
      ("trace", Test_trace.suite);
      ("fault", Test_fault.suite);
      ("outofcore", Test_outofcore.suite);
      ("protocol", Test_protocol.suite);
      ("server", Test_server.suite);
      ("telemetry", Test_telemetry.suite);
    ]
