(* Fault injection and crash-point enumeration.

   Unit tests pin the deterministic plan and the torn-tail WAL
   semantics; the crash enumerator is checked against a hand-built P0
   log (it must flag the paper's §3 dilemma at exactly the unsound
   points) and, as a property, against real pool runs at a P0-free
   level (every one of the 2n+1 crash images must recover to the ideal
   state). The runtime tests assert interleaving-independent invariants
   only: injected faults drain through retry, deadlines abort
   gracefully, committed effects are conserved. *)

module Store = Storage.Store
module Wal = Storage.Wal
module Recovery = Storage.Recovery
module Plan = Fault.Plan
module Crash = Fault.Crash
module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Metrics = Runtime.Metrics
module Generators = Workload.Generators
module L = Isolation.Level

let store_eq = Alcotest.testable Store.pp Store.equal

let log records =
  let w = Wal.create () in
  List.iter (Wal.append w) records;
  w

(* {2 Torn-tail WAL semantics} *)

(* A Commit torn off the tail never took effect: the transaction is a
   loser, exactly as if the crash had struck one record earlier. *)
let test_torn_commit_is_loser () =
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 5 };
        Wal.Commit 1 ]
  in
  let torn = Wal.torn_prefix w 3 in
  Alcotest.(check int) "all records present" 3 (List.length (Wal.records torn));
  Alcotest.(check int) "intact excludes the torn tail" 2
    (List.length (Wal.intact torn));
  Alcotest.(check (list int)) "torn commit never took effect" [] (Wal.committed torn);
  Alcotest.(check (list int)) "T1 is in flight" [ 1 ] (Wal.losers torn);
  let initial = Store.of_list [ ("x", 0) ] in
  Alcotest.(check store_eq) "recovery rolls T1 back"
    (Store.of_list [ ("x", 0) ])
    (Recovery.recover ~initial torn).Recovery.state

let test_prefixes () =
  let records =
    [ Wal.Begin 1;
      Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
      Wal.Commit 1 ]
  in
  let w = log records in
  Alcotest.(check int) "empty prefix" 0 (Wal.length (Wal.prefix w 0));
  Alcotest.(check int) "full prefix" 3 (Wal.length (Wal.prefix w 3));
  Alcotest.(check bool) "full prefix not torn" false
    (Wal.torn_tail (Wal.prefix w 3) <> None);
  Alcotest.(check bool) "torn prefix marks its tail" true
    (Wal.torn_tail (Wal.torn_prefix w 2) <> None);
  Alcotest.check_raises "prefix out of range"
    (Invalid_argument "Wal.prefix: 4 not in [0, 3]") (fun () ->
      ignore (Wal.prefix w 4));
  Alcotest.check_raises "torn_prefix needs a record"
    (Invalid_argument "Wal.torn_prefix: 0 not in [1, 3]") (fun () ->
      ignore (Wal.torn_prefix w 0))

(* {2 Plan determinism} *)

let test_plan_deterministic () =
  let mk () = Plan.create ~stall_rate:0.3 ~step_fail_rate:0.3 ~victim_rate:0.3 ~seed:42 () in
  let p1 = mk () and p2 = mk () in
  let sites =
    List.init 200 (fun i -> (i / 10, Plan.Step { seq = i mod 10 }))
  in
  List.iter
    (fun (tid, site) ->
      let a1 = Plan.point p1 ~tid site and a2 = Plan.point p2 ~tid site in
      Alcotest.(check bool) "same seed, same decision" true (a1 = a2))
    sites;
  Alcotest.(check int) "counters agree" (Plan.total p1) (Plan.total p2);
  Alcotest.(check bool) "something fired at rate 0.3" true (Plan.total p1 > 0)

let test_plan_rates () =
  (* rate 0 never fires; rate 1 always fires. *)
  let never = Plan.create ~seed:1 () in
  let always = Plan.create ~stall_rate:1.0 ~seed:1 () in
  for tid = 1 to 50 do
    Alcotest.(check bool) "rate 0 silent" true
      (Plan.point never ~tid (Plan.Step { seq = 0 }) = None);
    match Plan.point always ~tid (Plan.Step { seq = 0 }) with
    | Some (Plan.Stall _) -> ()
    | _ -> Alcotest.fail "rate 1 must stall"
  done;
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Fault.Plan.create: stall rate 2 not in [0, 1]")
    (fun () -> ignore (Plan.create ~stall_rate:2.0 ~seed:1 ()))

(* {2 Crash-point enumeration} *)

(* The §3 dilemma, enumerated: w1[x] w2[x] c2 with T1 in flight. Only
   the crash points where T2's commit is durable and T1 is still in
   flight are unsound — the enumerator must find exactly those. *)
let test_enumerate_flags_p0 () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
        Wal.Begin 2;
        Wal.Update { t = 2; k = "x"; before = Some 1; after = Some 2 };
        Wal.Commit 2 ]
  in
  let r = Crash.enumerate ~initial w in
  Alcotest.(check int) "5 records" 5 r.Crash.records;
  Alcotest.(check int) "6 prefixes" 6 r.Crash.points;
  Alcotest.(check int) "5 torn tails" 5 r.Crash.torn_points;
  Alcotest.(check bool) "P0 log is unsound somewhere" false (Crash.ok r);
  (* the full log: c2 durable, T1 in flight, undo wipes x back to 0 *)
  Alcotest.(check bool) "full prefix is a failing point" true
    (List.exists
       (fun f -> f.Crash.point = 5 && (not f.Crash.torn) && f.Crash.undone = [ 1 ])
       r.Crash.failures);
  (* before c2 is durable, rolling both back is consistent *)
  Alcotest.(check bool) "prefixes before the commit recover" true
    (List.for_all (fun f -> f.Crash.point >= 5) r.Crash.failures)

let test_enumerate_clean_log () =
  let initial = Store.of_list [ ("x", 0); ("y", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
        Wal.Commit 1;
        Wal.Begin 2;
        Wal.Update { t = 2; k = "y"; before = Some 0; after = Some 9 } ]
  in
  let r = Crash.enumerate ~initial w in
  Alcotest.(check bool) "serial log recovers everywhere" true (Crash.ok r);
  Alcotest.(check int) "checked every image" 11 (r.Crash.points + r.Crash.torn_points)

(* {2 Sampled enumeration}

   [?sample] must be deterministic in the seed, bounded by the budget
   plus the always-checked decisive points, and still catch the §3
   dilemma — the full prefix and every torn terminal record are never
   sampled away. *)

(* A long clean serial log: [n] one-update committed transactions. *)
let serial_log n =
  let w = Wal.create () in
  for t = 1 to n do
    Wal.append w (Wal.Begin t);
    Wal.append w (Wal.Update { t; k = "x"; before = Some (t - 1); after = Some t });
    Wal.append w (Wal.Commit t)
  done;
  w

let test_sample_deterministic () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w = serial_log 40 in
  let a = Crash.enumerate ~sample:10 ~seed:42 ~initial w in
  let b = Crash.enumerate ~sample:10 ~seed:42 ~initial w in
  Alcotest.(check int) "same clean points" a.Crash.points b.Crash.points;
  Alcotest.(check int) "same torn points" a.Crash.torn_points b.Crash.torn_points;
  Alcotest.(check bool) "same verdict" (Crash.ok a) (Crash.ok b);
  Alcotest.(check bool) "clean log passes sampled" true (Crash.ok a)

let test_sample_bounded_but_complete () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w = serial_log 40 in
  let n = Wal.length w in
  let terminals = 40 (* one Commit per transaction *) in
  let r = Crash.enumerate ~sample:10 ~seed:3 ~initial w in
  Alcotest.(check int) "full log length" 120 n;
  Alcotest.(check bool) "clean prefixes capped near the budget" true
    (r.Crash.points <= 10 + 2 (* budget + {empty, full} *));
  Alcotest.(check bool) "fewer than exhaustive" true (r.Crash.points < n + 1);
  Alcotest.(check bool) "torn points capped near budget + terminals" true
    (r.Crash.torn_points <= 10 + terminals && r.Crash.torn_points >= terminals);
  (* A budget at least the span degenerates to the exhaustive check. *)
  let full = Crash.enumerate ~sample:1000 ~initial w in
  Alcotest.(check int) "big budget = every prefix" (n + 1) full.Crash.points;
  Alcotest.(check int) "big budget = every torn tail" n full.Crash.torn_points

let test_sample_still_flags_p0 () =
  (* The P0 log's only unsound points are the full prefix and the torn
     terminal — exactly the points sampling always keeps, so even a
     budget of 1 must convict. *)
  let initial = Store.of_list [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
        Wal.Begin 2;
        Wal.Update { t = 2; k = "x"; before = Some 1; after = Some 2 };
        Wal.Commit 2 ]
  in
  let r = Crash.enumerate ~sample:1 ~seed:9 ~initial w in
  Alcotest.(check bool) "sampled run still flags P0" false (Crash.ok r);
  Alcotest.(check bool) "the full prefix is among the failures" true
    (List.exists
       (fun f -> f.Crash.point = 5 && not f.Crash.torn)
       r.Crash.failures)

(* {2 Multiversion enumeration} *)

(* A versioned log with a stamped committer and an unstamped installer:
   every crash image — including the ones that tear the Vcommit stamp
   off the tail — must recover to the committed-prefix ideal. *)
let test_enumerate_mv_clean_log () =
  let initial = [ ("x", 0); ("y", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Vinstall { t = 1; k = "x"; value = Some 1 };
        Wal.Vcommit { t = 1; ts = 1 };
        Wal.Begin 2;
        Wal.Vinstall { t = 2; k = "y"; value = Some 9 } ]
  in
  let r = Crash.enumerate_mv ~initial w in
  Alcotest.(check bool) "versioned log recovers everywhere" true (Crash.ok r);
  Alcotest.(check int) "all 2n+1 images checked" 11
    (r.Crash.points + r.Crash.torn_points)

(* Sampling keeps every torn Vcommit (the MV decisive points — exactly
   where a torn stamp must demote the txn to in-flight). *)
let test_sample_mv_keeps_stamps () =
  let w = Wal.create () in
  for t = 1 to 30 do
    Wal.append w (Wal.Begin t);
    Wal.append w (Wal.Vinstall { t; k = "x"; value = Some t });
    Wal.append w (Wal.Vcommit { t; ts = t })
  done;
  let r = Crash.enumerate_mv ~sample:5 ~seed:7 ~initial:[ ("x", 0) ] w in
  Alcotest.(check bool) "sampled MV enumeration recovers" true (Crash.ok r);
  Alcotest.(check bool) "every torn stamp was kept" true
    (r.Crash.torn_points >= 30);
  let full = Crash.enumerate_mv ~initial:[ ("x", 0) ] w in
  Alcotest.(check bool) "exhaustive agrees" true (Crash.ok full);
  Alcotest.(check int) "exhaustive checks every image"
    (2 * Wal.length w + 1)
    (full.Crash.points + full.Crash.torn_points)

(* Property: a real SERIALIZABLE pool run (2PL long write locks — no P0
   by construction) must recover at every crash point of its WAL, for
   every seed. This is the tentpole guarantee: durability of the
   committed, rollback of the in-flight, at all 2n+1 crash images. *)
let test_stress_runs_recover_everywhere () =
  for seed = 1 to 20 do
    let accounts = 8 in
    let initial = Generators.bank_accounts accounts in
    let jobs =
      Array.init 12 (fun i ->
          let p =
            Generators.stress_program Generators.Hotspot ~seed ~accounts ~hot:2
              ~ops:4 ~index:i
          in
          Pool.job ~name:p.Core.Program.name ~level:L.Serializable p)
    in
    let cfg = Pool.config ~workers:4 ~initial ~think_us:20. ~seed () in
    let r = Pool.run cfg jobs in
    match r.Pool.wal with
    | None -> Alcotest.fail "locking run must expose its WAL"
    | Some wal ->
      let initial_store = Store.of_list initial in
      let report = Crash.enumerate ~initial:initial_store wal in
      if not (Crash.ok report) then
        Alcotest.failf "seed %d: %a" seed Crash.pp report;
      (* and the surviving state is exactly the committed replay *)
      Alcotest.(check store_eq)
        (Printf.sprintf "seed %d: effects conserved" seed)
        (Recovery.ideal_state ~initial:initial_store wal)
        (Store.of_list r.Pool.final)
  done

(* Same property over the segmented on-disk WAL: tiny segments so every
   run's log crosses several rotation edges (crash images that straddle
   a segment boundary are exactly the new code paths), and on even
   seeds aggressive checkpointing so truncated logs with carried undo
   journals get enumerated too. *)
let test_stress_runs_recover_everywhere_segmented () =
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  for seed = 1 to 20 do
    let wal_dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "isolab_fault_wal_%d_%d" (Unix.getpid ()) seed)
    in
    Fun.protect
      ~finally:(fun () -> rm_rf wal_dir)
      (fun () ->
        let accounts = 8 in
        let initial = Generators.bank_accounts accounts in
        let jobs =
          Array.init 12 (fun i ->
              let p =
                Generators.stress_program Generators.Hotspot ~seed ~accounts
                  ~hot:2 ~ops:4 ~index:i
              in
              Pool.job ~name:p.Core.Program.name ~level:L.Serializable p)
        in
        let checkpoint_every = if seed mod 2 = 0 then 4 else 0 in
        let cfg =
          Pool.config ~workers:4 ~initial ~think_us:20. ~seed ~wal_dir
            ~wal_segment_bytes:512 ~checkpoint_every ()
        in
        let r = Pool.run cfg jobs in
        match r.Pool.wal with
        | None -> Alcotest.fail "locking run must expose its WAL"
        | Some wal ->
          let st = Storage.Wal.stats wal in
          if checkpoint_every = 0 && st.Storage.Wal.w_segments < 2 then
            Alcotest.failf "seed %d: log never rotated (%d segments)" seed
              st.Storage.Wal.w_segments;
          if checkpoint_every > 0 && st.Storage.Wal.w_checkpoints = 0 then
            Alcotest.failf "seed %d: no checkpoint was taken" seed;
          let initial_store = Store.of_list initial in
          let report = Crash.enumerate ~initial:initial_store wal in
          if not (Crash.ok report) then
            Alcotest.failf "seed %d (segmented): %a" seed Crash.pp report;
          Alcotest.(check store_eq)
            (Printf.sprintf "seed %d: effects conserved on disk" seed)
            (Recovery.ideal_state ~initial:initial_store wal)
            (Store.of_list r.Pool.final))
  done

(* The same property at SNAPSHOT: the multiversion engine's versioned
   WAL (Vinstall/Vcommit) must replay every one of its 2n+1 crash
   images to the ideal committed-prefix version store, for 20 seeds —
   and the surviving latest rows must equal the committed replay. *)
let test_snapshot_runs_recover_everywhere () =
  for seed = 1 to 20 do
    let accounts = 8 in
    let initial = Generators.bank_accounts accounts in
    let jobs =
      Array.init 12 (fun i ->
          let p =
            Generators.stress_program Generators.Hotspot ~seed ~accounts ~hot:2
              ~ops:4 ~index:i
          in
          Pool.job ~name:p.Core.Program.name ~level:L.Snapshot p)
    in
    let cfg = Pool.config ~workers:4 ~initial ~think_us:20. ~seed () in
    let r = Pool.run cfg jobs in
    match r.Pool.wal with
    | None -> Alcotest.fail "multiversion run must expose its WAL"
    | Some wal ->
      let report = Crash.enumerate_mv ~initial wal in
      if not (Crash.ok report) then
        Alcotest.failf "seed %d: %a" seed Crash.pp report;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "seed %d: effects conserved" seed)
        (List.sort compare
           (Storage.Version_store.to_latest_list
              (Recovery.ideal_mv ~initial wal)))
        (List.sort compare r.Pool.final)
  done

(* {2 Runtime fault injection} *)

let chaos_run ?(txns = 32) ?(workers = 4) ?fault ?deadline_us ?watchdog_us
    ?(seed = 5) () =
  let accounts = 8 in
  let initial = Generators.bank_accounts accounts in
  let jobs =
    Array.init txns (fun i ->
        let p =
          Generators.stress_program Generators.Hotspot ~seed ~accounts ~hot:2
            ~ops:4 ~index:i
        in
        Pool.job ~name:p.Core.Program.name ~level:L.Serializable p)
  in
  let cfg =
    Pool.config ~workers ~initial ~think_us:20. ~seed ?fault ?deadline_us
      ?watchdog_us ()
  in
  (initial, Pool.run cfg jobs)

let check_effects_conserved name initial (r : Pool.result) =
  match r.Pool.wal with
  | None -> Alcotest.fail "locking run must expose its WAL"
  | Some wal ->
    let initial_store = Store.of_list initial in
    Alcotest.(check store_eq) name
      (Recovery.ideal_state ~initial:initial_store wal)
      (Store.of_list r.Pool.final)

(* Faults at every class: the workload still drains, the oracle stays
   pattern-free, and no committed effect is lost or duplicated. *)
let test_chaos_drains_clean () =
  let plan = Plan.chaos ~stall_us:500. ~rate:0.15 ~seed:5 () in
  let initial, r = chaos_run ~fault:plan () in
  Alcotest.(check int) "every job eventually commits" 32
    r.Pool.metrics.Metrics.committed;
  Alcotest.(check bool) "faults were actually injected" true
    (r.Pool.metrics.Metrics.faults_injected > 0);
  Alcotest.(check bool) "2PL stays pattern-free under faults" true
    (Oracle.pattern_free (Option.get r.Pool.oracle));
  check_effects_conserved "chaos conserves committed effects" initial r

(* A spurious-failure-only plan: injected aborts surface as the
   [Fault_injected] reason and every one is retried to success. *)
let test_step_fail_aborts_and_retries () =
  let plan = Plan.create ~step_fail_rate:0.3 ~seed:9 () in
  let initial, r = chaos_run ~fault:plan () in
  let fault_aborts =
    try List.assoc Core.Engine.Fault_injected r.Pool.metrics.Metrics.aborted
    with Not_found -> 0
  in
  Alcotest.(check bool) "some attempts were shot down" true (fault_aborts > 0);
  Alcotest.(check int) "all jobs still commit" 32
    r.Pool.metrics.Metrics.committed;
  check_effects_conserved "no effect from aborted attempts" initial r

(* Torn commits: the WAL hook rolls the attempt back as if its Commit
   record never became durable; the retry commits it for real. *)
let test_torn_commit_retries () =
  let plan = Plan.create ~torn_commit_rate:0.4 ~seed:3 () in
  let initial, r = chaos_run ~fault:plan () in
  Alcotest.(check bool) "some commits were torn" true
    (r.Pool.metrics.Metrics.faults_injected > 0);
  Alcotest.(check int) "every job commits after retry" 32
    r.Pool.metrics.Metrics.committed;
  check_effects_conserved "torn commits leave no trace" initial r

(* The MV form: the tear hook fires as the Vcommit stamp would be
   logged — after the Vinstalls made it — so the live log exhibits
   installed-but-unstamped versions closed by a compensating Abort, the
   attempt retries, and the whole log still recovers everywhere. *)
let test_mv_torn_stamp_retries () =
  let plan = Plan.create ~torn_commit_rate:0.4 ~seed:3 () in
  let accounts = 8 in
  let initial = Generators.bank_accounts accounts in
  let jobs =
    Array.init 32 (fun i ->
        let p =
          Generators.stress_program Generators.Hotspot ~seed:3 ~accounts ~hot:2
            ~ops:4 ~index:i
        in
        Pool.job ~name:p.Core.Program.name ~level:L.Snapshot p)
  in
  let cfg = Pool.config ~workers:4 ~initial ~think_us:20. ~seed:3 ~fault:plan () in
  let r = Pool.run cfg jobs in
  Alcotest.(check bool) "some stamps were torn" true
    (r.Pool.metrics.Metrics.faults_injected > 0);
  Alcotest.(check int) "every job commits after retry" 32
    r.Pool.metrics.Metrics.committed;
  let wal = Option.get r.Pool.wal in
  Alcotest.(check (list (pair string int))) "torn stamps leave no trace"
    (List.sort compare
       (Storage.Version_store.to_latest_list (Recovery.ideal_mv ~initial wal)))
    (List.sort compare r.Pool.final);
  Alcotest.(check bool) "and every crash image recovers" true
    (Crash.ok (Crash.enumerate_mv ~initial wal))

(* {2 Deadlines and the watchdog} *)

(* Stalls longer than the deadline: stalled attempts must abort with
   [Deadline_exceeded] and retry; unstalled retries commit. *)
let test_deadline_aborts_gracefully () =
  let plan = Plan.create ~stall_rate:0.3 ~stall_us:8_000. ~seed:13 () in
  let initial, r = chaos_run ~fault:plan ~deadline_us:4_000. () in
  Alcotest.(check bool) "deadlines fired" true
    (r.Pool.metrics.Metrics.deadline_exceeded > 0);
  let dl_aborts =
    try List.assoc Core.Engine.Deadline_exceeded r.Pool.metrics.Metrics.aborted
    with Not_found -> 0
  in
  Alcotest.(check int) "metrics and abort reasons agree"
    r.Pool.metrics.Metrics.deadline_exceeded dl_aborts;
  Alcotest.(check bool) "graceful: no lost effects" true
    (Oracle.pattern_free (Option.get r.Pool.oracle));
  check_effects_conserved "deadline aborts conserve effects" initial r

(* A generous deadline is never hit. *)
let test_generous_deadline_silent () =
  let _, r = chaos_run ~deadline_us:5_000_000. () in
  Alcotest.(check int) "no deadline aborts" 0
    r.Pool.metrics.Metrics.deadline_exceeded;
  Alcotest.(check int) "all commit" 32 r.Pool.metrics.Metrics.committed

(* Every attempt stalls 30ms per step; a 5ms watchdog must notice. *)
let test_watchdog_sees_stalls () =
  let plan = Plan.create ~stall_rate:1.0 ~stall_us:30_000. ~seed:1 () in
  let _, r = chaos_run ~txns:4 ~workers:2 ~fault:plan ~watchdog_us:5_000. () in
  Alcotest.(check bool) "watchdog kicked" true
    (r.Pool.metrics.Metrics.watchdog_kicks > 0);
  Alcotest.(check int) "observation only: jobs still commit" 4
    r.Pool.metrics.Metrics.committed

(* {2 Trace events} *)

let test_fault_events_traced () =
  let plan = Plan.chaos ~stall_us:500. ~rate:0.2 ~seed:5 () in
  let sink = Trace.Sink.create ~workers:4 () in
  let accounts = 8 in
  let initial = Generators.bank_accounts accounts in
  let jobs =
    Array.init 24 (fun i ->
        let p =
          Generators.stress_program Generators.Hotspot ~seed:5 ~accounts ~hot:2
            ~ops:4 ~index:i
        in
        Pool.job ~name:p.Core.Program.name ~level:L.Serializable p)
  in
  let cfg =
    Pool.config ~workers:4 ~initial ~think_us:20. ~seed:5 ~fault:plan
      ~trace:sink ()
  in
  let r = Pool.run cfg jobs in
  let traced =
    List.filter
      (fun (e : Trace.Event.t) ->
        match e.Trace.Event.kind with
        | Trace.Event.Fault_inject _ -> true
        | _ -> false)
      r.Pool.events
  in
  Alcotest.(check bool) "fault_inject events recorded" true (traced <> []);
  Alcotest.(check bool) "trace matches metrics" true
    (List.length traced <= r.Pool.metrics.Metrics.faults_injected)

let suite =
  [
    Alcotest.test_case "torn commit is a loser" `Quick test_torn_commit_is_loser;
    Alcotest.test_case "prefix helpers" `Quick test_prefixes;
    Alcotest.test_case "plan is deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan rate edges" `Quick test_plan_rates;
    Alcotest.test_case "enumeration flags P0" `Quick test_enumerate_flags_p0;
    Alcotest.test_case "enumeration passes a clean log" `Quick
      test_enumerate_clean_log;
    Alcotest.test_case "sampled enumeration is deterministic" `Quick
      test_sample_deterministic;
    Alcotest.test_case "sampled enumeration is bounded" `Quick
      test_sample_bounded_but_complete;
    Alcotest.test_case "sampling keeps the decisive points" `Quick
      test_sample_still_flags_p0;
    Alcotest.test_case "MV enumeration passes a versioned log" `Quick
      test_enumerate_mv_clean_log;
    Alcotest.test_case "MV sampling keeps every torn stamp" `Quick
      test_sample_mv_keeps_stamps;
    Alcotest.test_case "20 seeded runs recover at every crash point" `Slow
      test_stress_runs_recover_everywhere;
    Alcotest.test_case "20 seeded runs recover on the segmented disk WAL"
      `Slow test_stress_runs_recover_everywhere_segmented;
    Alcotest.test_case "20 seeded SNAPSHOT runs recover at every crash point"
      `Slow test_snapshot_runs_recover_everywhere;
    Alcotest.test_case "chaos drains clean" `Quick test_chaos_drains_clean;
    Alcotest.test_case "spurious failures retry to success" `Quick
      test_step_fail_aborts_and_retries;
    Alcotest.test_case "torn commits retry to success" `Quick
      test_torn_commit_retries;
    Alcotest.test_case "torn MV stamps retry to success" `Quick
      test_mv_torn_stamp_retries;
    Alcotest.test_case "deadline aborts gracefully" `Quick
      test_deadline_aborts_gracefully;
    Alcotest.test_case "generous deadline is silent" `Quick
      test_generous_deadline_silent;
    Alcotest.test_case "watchdog sees stalled workers" `Quick
      test_watchdog_sees_stalls;
    Alcotest.test_case "fault events reach the trace" `Quick
      test_fault_events_traced;
  ]
