(* Tests for the out-of-core pipeline: the segmented on-disk WAL must be
   observationally equal to the in-memory log (including every crash
   image across segment boundaries), group commit must batch without
   losing durability, checkpoints must truncate without changing
   recovery, the era-pruned certifier must keep the exact verdict, and
   the spill-to-disk recorder must stream back the same journal. *)

module Store = Storage.Store
module Wal = Storage.Wal
module Recovery = Storage.Recovery
module Crash = Fault.Crash
module L = Isolation.Level
module Generators = Workload.Generators
module Pool = Runtime.Pool
module Certifier = Runtime.Certifier
module Recorder = Runtime.Recorder

let store_eq = Alcotest.testable Store.pp Store.equal
let record_eq = Alcotest.testable Wal.pp_record ( = )

let scratch =
  let n = ref 0 in
  fun name ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "isolab_test_%s_%d_%d" name (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_dir name f =
  let dir = scratch name in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* A workload long enough that 512-byte segments rotate several times:
   [n] committed single-update transactions plus one in-flight loser. *)
let busy_records n =
  (* truthful before-images (all keys start at 0), or undo is unsound *)
  let last = Hashtbl.create 7 in
  let prev k = Option.value ~default:0 (Hashtbl.find_opt last k) in
  (* bind before [@]: its right operand would otherwise evaluate first
     and read the table empty — a genuinely unsound before-image the
     enumerator convicts *)
  let committed =
    List.concat
      (List.init n (fun i ->
           let t = i + 1 in
           let k = Printf.sprintf "acct_%02d" (i mod 7) in
           let before = prev k in
           Hashtbl.replace last k (i + 1);
           [
             Wal.Begin t;
             Wal.Update { t; k; before = Some before; after = Some (i + 1) };
             Wal.Commit t;
           ]))
  in
  committed
  @ [
      Wal.Begin (n + 1);
      Wal.Update
        { t = n + 1; k = "acct_00"; before = Some (prev "acct_00"); after = Some 99 };
    ]

let fill w records = List.iter (Wal.append w) records

(* {2 Mem-vs-disk differential}

   The disk backend's contract is observational equality with the
   in-memory log: same records, same committed/aborted/losers, and the
   same crash image at every prefix and torn point — in particular at
   the points that land exactly on segment rotation edges. *)

let test_disk_equals_mem () =
  with_dir "diff" (fun dir ->
      let records = busy_records 24 in
      let mem = Wal.create () in
      fill mem records;
      let disk = Wal.create ~dir ~segment_bytes:512 () in
      fill disk records;
      Wal.sync disk;
      let st = Wal.stats disk in
      Alcotest.(check bool) "segments rotated" true (st.Wal.w_segments > 1);
      Alcotest.(check int) "same length" (Wal.length mem) (Wal.length disk);
      Alcotest.(check (list record_eq))
        "same records" (Wal.records mem) (Wal.records disk);
      Alcotest.(check (list int))
        "same committed" (Wal.committed mem) (Wal.committed disk);
      Alcotest.(check (list int)) "same losers" (Wal.losers mem) (Wal.losers disk);
      let n = Wal.length disk in
      for i = 0 to n do
        let a = Wal.prefix mem i and b = Wal.prefix disk i in
        Alcotest.(check (list record_eq))
          (Printf.sprintf "prefix %d records" i)
          (Wal.records a) (Wal.records b);
        Alcotest.(check (list int))
          (Printf.sprintf "prefix %d losers" i)
          (Wal.losers a) (Wal.losers b)
      done;
      for i = 1 to n do
        let a = Wal.torn_prefix mem i and b = Wal.torn_prefix disk i in
        Alcotest.(check (list record_eq))
          (Printf.sprintf "torn %d intact" i)
          (Wal.intact a) (Wal.intact b);
        Alcotest.(check bool)
          (Printf.sprintf "torn %d tail present" i)
          true
          (Wal.torn_tail a = Wal.torn_tail b && Wal.torn_tail b <> None);
        Alcotest.(check (list int))
          (Printf.sprintf "torn %d losers" i)
          (Wal.losers a) (Wal.losers b)
      done)

let test_disk_crash_enumeration () =
  with_dir "enum" (fun dir ->
      let records = busy_records 16 in
      let initial =
        Store.of_list (List.init 7 (fun i -> (Printf.sprintf "acct_%02d" i, 0)))
      in
      let mem = Wal.create () in
      fill mem records;
      let disk = Wal.create ~dir ~segment_bytes:512 () in
      fill disk records;
      Wal.sync disk;
      Alcotest.(check bool) "crosses a rotation edge" true
        ((Wal.stats disk).Wal.w_segments > 1);
      let a = Crash.enumerate ~initial mem in
      let b = Crash.enumerate ~initial disk in
      Alcotest.(check int) "same points" a.Crash.points b.Crash.points;
      Alcotest.(check int) "same torn points" a.Crash.torn_points
        b.Crash.torn_points;
      Alcotest.(check bool) "mem log sound" true (Crash.ok a);
      Alcotest.(check bool) "disk log sound across rotations" true (Crash.ok b))

(* {2 Multiversion differential}

   The versioned record set (Vinstall/Vcommit/Watermark) through the
   disk backend: the same record sequence into an in-memory and a
   segmented on-disk log must produce identical losers and identical
   crash images — in particular across rotation edges — and both must
   recover chain-exactly to the same version store. *)

let busy_mv_records n =
  let committed =
    List.concat
      (List.init n (fun i ->
           let t = i + 1 in
           let k = Printf.sprintf "acct_%02d" (i mod 7) in
           [
             Wal.Begin t;
             Wal.Vinstall { t; k; value = Some (i + 1) };
             Wal.Vcommit { t; ts = i + 1 };
           ]))
  in
  (* a mid-run watermark advance, then an unstamped installer at the
     tail — the torn-Vcommit shape recovery must discard *)
  committed
  @ [
      Wal.Watermark (n / 2);
      Wal.Begin (n + 1);
      Wal.Vinstall { t = n + 1; k = "acct_00"; value = Some 999 };
    ]

let test_mv_disk_crash_images_equal_mem () =
  with_dir "mv_diff" (fun dir ->
      let records = busy_mv_records 24 in
      let initial = List.init 7 (fun i -> (Printf.sprintf "acct_%02d" i, 0)) in
      let mem = Wal.create () in
      fill mem records;
      let disk = Wal.create ~dir ~segment_bytes:512 () in
      fill disk records;
      Wal.sync disk;
      Alcotest.(check bool) "crosses a rotation edge" true
        ((Wal.stats disk).Wal.w_segments > 1);
      Alcotest.(check (list record_eq))
        "versioned records round-trip the codec" (Wal.records mem)
        (Wal.records disk);
      Alcotest.(check (list int)) "same losers" (Wal.losers mem)
        (Wal.losers disk);
      let a = Crash.enumerate_mv ~initial mem in
      let b = Crash.enumerate_mv ~initial disk in
      Alcotest.(check int) "same points" a.Crash.points b.Crash.points;
      Alcotest.(check int) "same torn points" a.Crash.torn_points
        b.Crash.torn_points;
      Alcotest.(check bool) "mem versioned log recovers everywhere" true
        (Crash.ok a);
      Alcotest.(check bool) "disk versioned log recovers everywhere" true
        (Crash.ok b);
      Alcotest.(check bool) "recovered chains identical" true
        (Storage.Version_store.equal
           (Recovery.recover_mv ~initial mem).Recovery.vstate
           (Recovery.recover_mv ~initial disk).Recovery.vstate))

(* {2 Checkpoint, truncation, reopen} *)

let test_checkpoint_truncates_and_recovers () =
  with_dir "ckpt" (fun dir ->
      let w = Wal.create ~dir ~segment_bytes:512 () in
      fill w (busy_records 24);
      (* settle the in-flight txn before the checkpoint image *)
      Wal.append w (Wal.Abort 25);
      let image = [ ("acct_00", 4); ("acct_01", 2) ] in
      Wal.checkpoint w ~image ~active:[];
      let before = Wal.stats w in
      Alcotest.(check int) "one checkpoint" 1 before.Wal.w_checkpoints;
      Alcotest.(check bool) "segments unlinked" true
        (before.Wal.w_truncated_segments > 0);
      Alcotest.(check int) "only the checkpoint survives" 1 (Wal.length w);
      (* post-checkpoint traffic replays on top of the image *)
      Wal.append w (Wal.Begin 40);
      Wal.append w
        (Wal.Update { t = 40; k = "acct_01"; before = Some 2; after = Some 7 });
      Wal.append w (Wal.Commit 40);
      Wal.sync w;
      let expect = Store.of_list [ ("acct_00", 4); ("acct_01", 7) ] in
      let initial = Store.of_list [] in
      Alcotest.(check store_eq) "replay starts from the image" expect
        (Recovery.ideal_state ~initial w);
      Alcotest.(check bool) "checkpointed log recovers everywhere" true
        (Crash.ok (Crash.enumerate ~initial w));
      (* reopening the directory sees exactly the live records *)
      let live = Wal.records w in
      Wal.close w;
      let re = Wal.load ~dir in
      Alcotest.(check (list record_eq)) "load after close" live (Wal.records re);
      Alcotest.(check store_eq) "reopened replay agrees" expect
        (Recovery.ideal_state ~initial re))

let test_load_after_close () =
  with_dir "reopen" (fun dir ->
      let records = busy_records 10 in
      let w = Wal.create ~dir ~segment_bytes:512 () in
      fill w records;
      Wal.close w;
      let re = Wal.load ~dir in
      Alcotest.(check (list record_eq)) "all records survive" records
        (Wal.records re);
      Alcotest.(check bool) "no torn tail on clean close" true
        (Wal.torn_tail re = None))

(* {2 Group commit} *)

let test_group_commit_concurrent () =
  with_dir "group" (fun dir ->
      let w = Wal.create ~dir ~segment_bytes:65536 ~group_commit:true () in
      let domains = 4 and per = 50 in
      let ds =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per do
                  let t = (d * per) + i in
                  Wal.append w (Wal.Begin t);
                  Wal.append w (Wal.Commit t);
                  Wal.sync w
                done))
      in
      List.iter Domain.join ds;
      let st = Wal.stats w in
      let total_syncs = domains * per in
      Alcotest.(check bool) "no more fsyncs than sync calls" true
        (st.Wal.w_syncs <= total_syncs && st.Wal.w_syncs > 0);
      Alcotest.(check int) "histogram accounts for every fsync" st.Wal.w_syncs
        (List.fold_left (fun acc (_, n) -> acc + n) 0 st.Wal.w_batch_hist);
      (* durability: every record survives a reopen *)
      Wal.close w;
      let re = Wal.load ~dir in
      Alcotest.(check int) "all records durable" (2 * domains * per)
        (Wal.length re);
      Alcotest.(check int) "every txn committed" (domains * per)
        (List.length (Wal.committed re)))

let test_per_commit_fsync_baseline () =
  with_dir "percommit" (fun dir ->
      let w = Wal.create ~dir ~group_commit:false () in
      for t = 1 to 20 do
        Wal.append w (Wal.Begin t);
        Wal.append w (Wal.Commit t);
        Wal.sync w
      done;
      let st = Wal.stats w in
      Alcotest.(check int) "one fsync per sync call" 20 st.Wal.w_syncs;
      Alcotest.(check bool) "all batches are singletons" true
        (List.for_all (fun (le, n) -> le > 1 || n = 20) st.Wal.w_batch_hist);
      Wal.close w)

(* {2 Era-pruned certifier: verdict is exact}

   The pruning invariant — a retired node can never gain another
   in-edge — means the online, aggressively-pruned verdict must equal
   the offline unpruned replay of the same trace. READ COMMITTED
   hotspot so real dependency cycles arise and the enforce path runs. *)

let test_pruned_verdict_equals_replay () =
  let accounts = 8 in
  let gen i =
    let p =
      Generators.stress_program Generators.Hotspot ~seed:11 ~accounts ~hot:2
        ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Read_committed p
  in
  let cfg =
    Pool.config ~workers:4
      ~initial:(Generators.bank_accounts accounts)
      ~think_us:0. ~seed:11 ~certify:true ~prune_every:8 ()
  in
  let r = Pool.run_n cfg ~txns:256 ~gen in
  let s = Option.get r.Pool.certifier in
  Alcotest.(check bool) "pruning actually ran" true
    (s.Certifier.prune_passes > 0 && s.Certifier.pruned_nodes > 0);
  let offline = Certifier.replay r.Pool.history in
  Alcotest.(check bool) "pruned online verdict = unpruned replay"
    offline.Certifier.serializable s.Certifier.serializable;
  let oracle = Option.get r.Pool.oracle in
  Alcotest.(check bool) "and = the post-run oracle"
    oracle.Runtime.Oracle.serializable s.Certifier.serializable

(* {2 Recorder spill} *)

let test_recorder_spill_equality () =
  with_dir "spill" (fun dir ->
      let feed r =
        for i = 0 to 299 do
          Recorder.record r ~job:i ~name:(Printf.sprintf "t%d" i)
            ~level:L.Serializable ~tid:(i + 1) ~attempt:1 ~worker:(i mod 4)
            ~start_ns:(i * 10) ~finish_ns:((i * 10) + 5) Recorder.Committed
        done
      in
      let plain = Recorder.create ~stripes:4 () in
      feed plain;
      let spilly =
        Recorder.create ~stripes:4 ~spill_dir:dir ~spill_threshold:64 ()
      in
      feed spilly;
      Alcotest.(check bool) "entries were spilled" true
        (Recorder.spilled spilly > 0);
      let baseline = Recorder.entries plain in
      Alcotest.(check bool) "materialized merge identical" true
        (Recorder.entries spilly = baseline);
      let streamed = ref [] in
      Recorder.iter_entries spilly (fun e -> streamed := e :: !streamed);
      Alcotest.(check bool) "streamed merge identical" true
        (List.rev !streamed = baseline))

(* {2 Pool out-of-core smoke}

   keep_history:false end to end: no journal, no oracle, the exact
   verdict from the certifier, checkpoints truncating the disk WAL
   behind the run — and the surviving store still equal to the
   committed replay of what remains of the log. *)

let test_pool_out_of_core () =
  with_dir "pool_wal" (fun wal_dir ->
      with_dir "pool_spill" (fun spill_dir ->
          let accounts = 8 in
          let initial = Generators.bank_accounts accounts in
          let gen i =
            let p =
              Generators.stress_program Generators.Transfer ~seed:3 ~accounts
                ~hot:4 ~ops:4 ~index:i
            in
            Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
          in
          let cfg =
            Pool.config ~workers:4 ~initial ~think_us:0. ~seed:3 ~certify:true
              ~wal_dir ~wal_segment_bytes:512 ~checkpoint_every:100
              ~keep_history:false ~spill_dir ()
          in
          let r = Pool.run_n cfg ~txns:500 ~gen in
          Alcotest.(check bool) "no journal kept" true (r.Pool.journal = []);
          Alcotest.(check bool) "no oracle ran" true (r.Pool.oracle = None);
          let s = Option.get r.Pool.certifier in
          Alcotest.(check bool) "2PL run certified serializable" true
            s.Certifier.serializable;
          let wal = Option.get r.Pool.wal in
          let st = Wal.stats wal in
          Alcotest.(check bool) "checkpoints truncated the log" true
            (st.Wal.w_checkpoints > 0 && st.Wal.w_truncated_segments > 0);
          Alcotest.(check store_eq) "effects conserved through checkpoints"
            (Recovery.ideal_state ~initial:(Store.of_list initial) wal)
            (Store.of_list r.Pool.final)))

(* The multiversion pool out-of-core: Vcheckpoints truncating the
   versioned disk WAL behind a SNAPSHOT run with history off, engine
   vacuums feeding the certifier's version-order retirement — and the
   truncated log still enumerating clean from its Vcheckpoint base. *)
let test_pool_out_of_core_mv () =
  with_dir "mv_pool_wal" (fun wal_dir ->
      with_dir "mv_pool_spill" (fun spill_dir ->
          let accounts = 8 in
          let initial = Generators.bank_accounts accounts in
          let gen i =
            let p =
              Generators.stress_program Generators.Transfer ~seed:5 ~accounts
                ~hot:4 ~ops:4 ~index:i
            in
            Pool.job ~name:p.Core.Program.name ~level:L.Snapshot p
          in
          let cfg =
            Pool.config ~workers:4 ~initial ~think_us:0. ~seed:5 ~certify:true
              ~prune_every:64 ~wal_dir ~wal_segment_bytes:512
              ~checkpoint_every:100 ~keep_history:false ~spill_dir ()
          in
          let r = Pool.run_n cfg ~txns:500 ~gen in
          Alcotest.(check bool) "no journal kept" true (r.Pool.journal = []);
          let wal = Option.get r.Pool.wal in
          let st = Wal.stats wal in
          Alcotest.(check bool) "Vcheckpoints truncated the versioned log"
            true
            (st.Wal.w_checkpoints > 0 && st.Wal.w_truncated_segments > 0);
          Alcotest.(check bool) "truncated log recovers at every image" true
            (Crash.ok (Crash.enumerate_mv ~sample:25 ~seed:5 ~initial wal));
          Alcotest.(check (list (pair string int)))
            "effects conserved through Vcheckpoints"
            (List.sort compare
               (Storage.Version_store.to_latest_list
                  (Recovery.ideal_mv ~initial wal)))
            (List.sort compare r.Pool.final)))

let suite =
  [
    Alcotest.test_case "disk log equals memory log at every crash image"
      `Quick test_disk_equals_mem;
    Alcotest.test_case "crash enumeration crosses segment boundaries" `Quick
      test_disk_crash_enumeration;
    Alcotest.test_case "checkpoint truncates and still recovers" `Quick
      test_checkpoint_truncates_and_recovers;
    Alcotest.test_case "load after clean close" `Quick test_load_after_close;
    Alcotest.test_case "group commit batches without losing records" `Quick
      test_group_commit_concurrent;
    Alcotest.test_case "per-commit fsync baseline" `Quick
      test_per_commit_fsync_baseline;
    Alcotest.test_case "era-pruned verdict equals unpruned replay" `Quick
      test_pruned_verdict_equals_replay;
    Alcotest.test_case "recorder spill streams the same journal" `Quick
      test_recorder_spill_equality;
    Alcotest.test_case "pool runs out-of-core with exact verdict" `Quick
      test_pool_out_of_core;
    Alcotest.test_case "MV crash images agree between memory and disk" `Quick
      test_mv_disk_crash_images_equal_mem;
    Alcotest.test_case "MV pool runs out-of-core through Vcheckpoints" `Quick
      test_pool_out_of_core_mv;
  ]
