The paper's H1 analyzed from the command line:

  $ isolation_lab analyze "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1"
  history: r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1
  transactions: 1,2  committed: 1,2  aborted: 
  serializable: false
    dependency cycle: T1 -> T2
  recoverability: not recoverable
  phenomena:
    P1[T1,T2 at 1,2]: T2 reads T1's uncommitted write of x

Multiversion histories are recognized and mapped:

  $ isolation_lab analyze "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1"
  history: r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
  transactions: 1,2  committed: 1,2  aborted: 
  multiversion history
    one-copy serializable: true
    snapshot reads respected: true
    first-committer-wins respected: true
    single-valued mapping: r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1
  phenomena: none

Ad-hoc workloads in the mini syntax:

  $ isolation_lab run --level "read uncommitted" --init "x=50, y=50" --schedule 1112221111 "r x; w x -= 40; r y; w y += 40 | r x; r y"
  level:    READ UNCOMMITTED
  history:  r1[x=50] r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] r1[y=50] w1[y=90] c1
  final:    x=10, y=90
  T1 committed
  T2 committed
  blocked attempts: 0   deadlocks: 0
  phenomena: P1
  serializable: false

The same schedule at snapshot isolation:

  $ isolation_lab run --level si --init "x=50, y=50" --schedule 1112221111 "r x; w x -= 40; r y; w y += 40 | r x; r y"
  level:    Snapshot
  history:  r1[x0=50] r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] r1[y0=50] w1[y1=90] c1
  final:    x=10, y=90
  T1 committed
  T2 committed
  blocked attempts: 0   deadlocks: 0
  phenomena: none
  serializable: true

Classifying a Table 4 cell:

  $ isolation_lab classify --level "cursor stability" -p P4
  Cursor Stability / P4 (Lost Update): Sometimes Possible
  paper says: Sometimes Possible
    scenario P4/plain           exhibited  (5 interleavings examined)
      witness schedule: 121122
      witness history:  r1[x=100] r2[x=100] w1[x=130] c1 w2[x=120] c2
    scenario P4/cursor          impossible (70 interleavings examined)

Parse errors are reported, not crashes:

  $ isolation_lab analyze "r1[x"
  parse error at offset 4: expected ']' but found end of input
  [1]

Unknown levels are rejected:

  $ isolation_lab run --level bogus "r x"
  isolation_lab: option '--level': unknown isolation level "bogus"
  Usage: isolation_lab run [--init=ROWS] [--level=LEVEL] [--schedule=DIGITS] [OPTION]… SCRIPT
  Try 'isolation_lab run --help' or 'isolation_lab --help' for more information.
  [124]
