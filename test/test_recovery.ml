(* Tests for WAL recovery — the executable form of the paper's §3 claim
   that P0 must be excluded or before-image undo is unsound. *)

module Store = Storage.Store
module Wal = Storage.Wal
module Recovery = Storage.Recovery

let store_eq = Alcotest.testable Store.pp Store.equal

let log records =
  let w = Wal.create () in
  List.iter (Wal.append w) records;
  w

let test_losers () =
  let w =
    log [ Wal.Begin 1; Wal.Begin 2; Wal.Commit 1; Wal.Begin 3; Wal.Abort 3 ]
  in
  Alcotest.(check (list int)) "committed" [ 1 ] (Wal.committed w);
  Alcotest.(check (list int)) "aborted" [ 3 ] (Wal.aborted w);
  Alcotest.(check (list int)) "losers" [ 2 ] (Wal.losers w)

let test_replay () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 5 };
        Wal.Update { t = 1; k = "y"; before = None; after = Some 7 } ]
  in
  Alcotest.(check store_eq) "replayed state"
    (Store.of_list [ ("x", 5); ("y", 7) ])
    (Recovery.replay ~initial w)

(* A clean crash: committed T1, in-flight T2. Undo restores T2's before
   images; recovery matches the ideal state. *)
let test_recover_clean () =
  let initial = Store.of_list [ ("x", 0); ("y", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
        Wal.Commit 1;
        Wal.Begin 2;
        Wal.Update { t = 2; k = "y"; before = Some 0; after = Some 9 } ]
  in
  let { Recovery.state; undone } = Recovery.recover ~initial w in
  Alcotest.(check (list int)) "T2 undone" [ 2 ] undone;
  Alcotest.(check store_eq) "x kept, y restored"
    (Store.of_list [ ("x", 1); ("y", 0) ])
    state;
  Alcotest.(check bool) "recovery correct" true
    (Recovery.recovery_correct ~initial w)

(* The paper's dilemma: w1[x] w2[x], T2 commits, T1 is in flight at the
   crash. Restoring T1's before-image wipes out T2's committed update. *)
let test_p0_breaks_recovery () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
        Wal.Begin 2;
        Wal.Update { t = 2; k = "x"; before = Some 1; after = Some 2 };
        Wal.Commit 2 ]
  in
  Alcotest.(check store_eq) "ideal keeps T2's update"
    (Store.of_list [ ("x", 2) ])
    (Recovery.ideal_state ~initial w);
  Alcotest.(check store_eq) "before-image undo wipes it"
    (Store.of_list [ ("x", 0) ])
    (Recovery.recover ~initial w).Recovery.state;
  Alcotest.(check bool) "recovery incorrect under P0" false
    (Recovery.recovery_correct ~initial w)

(* Run-time aborts log compensation updates, so replay reconstructs the
   crash-time state and a previously aborted transaction is not undone a
   second time. *)
let test_aborted_txn_compensated () =
  let initial = Store.of_list [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 5 };
        (* compensation logged by the run-time rollback *)
        Wal.Update { t = 1; k = "x"; before = Some 5; after = Some 0 };
        Wal.Abort 1;
        Wal.Begin 2;
        Wal.Update { t = 2; k = "x"; before = Some 0; after = Some 7 };
        Wal.Commit 2 ]
  in
  Alcotest.(check store_eq) "T2's update survives T1's abort"
    (Store.of_list [ ("x", 7) ])
    (Recovery.recover ~initial w).Recovery.state;
  Alcotest.(check bool) "recovery correct" true
    (Recovery.recovery_correct ~initial w)

(* The locking engine's own WAL (with compensation logging) recovers to
   the engine's final state, including after a user abort. *)
let test_engine_wals_recover_correctly () =
  let module P = Core.Program in
  let engine =
    Core.Engine.create ~initial:[ ("x", 0); ("y", 0) ] ~predicates:[]
      ~family:`Locking ()
  in
  let step tid op = ignore (Core.Engine.step engine tid op) in
  Core.Engine.begin_txn engine 1 ~level:Isolation.Level.Serializable;
  step 1 (P.Write ("x", P.const 4));
  step 1 (P.Write ("y", P.const 5));
  step 1 P.Commit;
  Core.Engine.begin_txn engine 2 ~level:Isolation.Level.Serializable;
  step 2 (P.Write ("x", P.const 9));
  step 2 P.Abort;
  Core.Engine.begin_txn engine 3 ~level:Isolation.Level.Serializable;
  step 3 (P.Write ("y", P.const 6));
  step 3 P.Commit;
  match Core.Engine.wal engine with
  | None -> Alcotest.fail "locking engine must expose a WAL"
  | Some w ->
    let initial = Store.of_list [ ("x", 0); ("y", 0) ] in
    Alcotest.(check bool) "engine WAL recovers correctly" true
      (Recovery.recovery_correct ~initial w);
    Alcotest.(check store_eq) "recovered state matches engine"
      (Store.of_list (Core.Engine.final_state engine))
      (Recovery.recover ~initial w).Recovery.state

(* Property: logs of serial transactions (no P0 by construction) — with
   run-time aborts compensated and at most a trailing loser — always
   recover to the ideal state. *)
let gen_log =
  let open QCheck2.Gen in
  let key = oneofl [ "x"; "y"; "z" ] in
  pair
    (list_size (1 -- 6)
       (pair (list_size (1 -- 4) (pair key (0 -- 99))) bool))
    bool (* last transaction crashes in flight *)

let prop_serial_logs_recover =
  Support.qtest "serial (P0-free) logs recover correctly" ~count:300 gen_log
    (fun (txns, crash_last) ->
      let initial = Store.of_list [ ("x", 0); ("y", 0); ("z", 0) ] in
      let shadow = Store.copy initial in
      let w = Wal.create () in
      let n = List.length txns in
      List.iteri
        (fun i (updates, commit) ->
          let t = i + 1 in
          let is_last = i = n - 1 in
          Wal.append w (Wal.Begin t);
          let undo =
            List.map
              (fun (k, v) ->
                let before = Store.get shadow k in
                Wal.append w (Wal.Update { t; k; before; after = Some v });
                Store.put shadow k v;
                (k, before))
              updates
          in
          if is_last && crash_last then () (* in flight at the crash *)
          else if commit then Wal.append w (Wal.Commit t)
          else begin
            (* run-time rollback with compensation logging, newest first *)
            List.iter
              (fun (k, before) ->
                Wal.append w
                  (Wal.Update { t; k; before = Store.get shadow k; after = before });
                Store.restore shadow k before)
              (List.rev undo);
            Wal.append w (Wal.Abort t)
          end)
        txns;
      Recovery.recovery_correct ~initial w)

(* {2 Multiversion recovery: torn-tail semantics}

   The MV form of the restore-or-not rule: a version reaches the log as
   [Vinstall] and only becomes visible with its writer's [Vcommit]
   stamp, so a transaction whose installs are intact but whose stamp is
   torn (or missing) is in flight, and recovery discards the installs —
   nothing was ever visible, so there is nothing to restore. *)

module Vs = Storage.Version_store

let test_mv_unstamped_installs_discarded () =
  let initial = [ ("x", 0); ("y", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Vinstall { t = 1; k = "x"; value = Some 5 };
        Wal.Vcommit { t = 1; ts = 1 };
        Wal.Begin 2;
        Wal.Vinstall { t = 2; k = "y"; value = Some 9 } ]
  in
  Alcotest.(check (list int)) "stamped txn committed" [ 1 ] (Wal.committed w);
  Alcotest.(check (list int)) "unstamped installer in flight" [ 2 ]
    (Wal.losers w);
  let out = Recovery.recover_mv ~initial w in
  Alcotest.(check (list int)) "recovery reports it discarded" [ 2 ]
    out.Recovery.mv_undone;
  Alcotest.(check (option int)) "stamped install visible" (Some 5)
    (Vs.read_latest out.Recovery.vstate "x");
  Alcotest.(check (option int)) "unstamped install never visible" (Some 0)
    (Vs.read_latest out.Recovery.vstate "y");
  Alcotest.(check int) "clock recovered from the stamp" 1 out.Recovery.next_ts;
  Alcotest.(check bool) "matches the ideal" true
    (Recovery.mv_recovery_correct ~initial w)

(* Tearing the stamp itself off the tail: the installs are intact but
   the transaction never committed — same discard, by [losers]. *)
let test_mv_torn_stamp_is_loser () =
  let initial = [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Vinstall { t = 1; k = "x"; value = Some 5 };
        Wal.Vcommit { t = 1; ts = 1 } ]
  in
  let torn = Wal.torn_prefix w 3 in
  Alcotest.(check (list int)) "torn stamp means in flight" [ 1 ]
    (Wal.losers torn);
  Alcotest.(check (list int)) "and not committed" [] (Wal.committed torn);
  let out = Recovery.recover_mv ~initial torn in
  Alcotest.(check (option int)) "its version never became visible" (Some 0)
    (Vs.read_latest out.Recovery.vstate "x");
  Alcotest.(check bool) "recovers to the ideal" true
    (Recovery.mv_recovery_correct ~initial torn)

(* A logged Watermark replays the prune, and the watermark itself is
   recovered so post-crash snapshots cannot start below it. *)
let test_mv_watermark_replays_prune () =
  let initial = [ ("x", 0) ] in
  let w =
    log
      [ Wal.Begin 1;
        Wal.Vinstall { t = 1; k = "x"; value = Some 1 };
        Wal.Vcommit { t = 1; ts = 1 };
        Wal.Begin 2;
        Wal.Vinstall { t = 2; k = "x"; value = Some 2 };
        Wal.Vcommit { t = 2; ts = 2 };
        Wal.Watermark 2 ]
  in
  let out = Recovery.recover_mv ~initial w in
  Alcotest.(check int) "watermark recovered" 2 out.Recovery.watermark;
  Alcotest.(check int) "buried versions stay buried" 1
    (List.length (Vs.chain out.Recovery.vstate "x"));
  Alcotest.(check (option int)) "the survivor is the newest" (Some 2)
    (Vs.read_latest out.Recovery.vstate "x");
  Alcotest.(check bool) "incremental prune equals one final prune" true
    (Recovery.mv_recovery_correct ~initial w)

(* A leading Vcheckpoint replaces the initial rows as the replay base
   and carries the in-flight transactions it observed. *)
let test_mv_checkpoint_base () =
  let vs = Vs.of_list [ ("x", 0) ] in
  Vs.install vs ~writer:1 ~commit_ts:1 [ ("x", Some 3) ];
  let w =
    log
      [ Wal.Vcheckpoint
          { chains = Vs.chains vs; next_ts = 1; watermark = 0; active = [ 2 ] };
        Wal.Begin 3;
        Wal.Vinstall { t = 3; k = "x"; value = Some 7 };
        Wal.Vcommit { t = 3; ts = 2 } ]
  in
  Alcotest.(check (list int)) "carried active txn is a loser" [ 2 ]
    (Wal.losers w);
  let out = Recovery.recover_mv ~initial:[] w in
  Alcotest.(check (option int)) "replay stacks on the image chains" (Some 7)
    (Vs.read_latest out.Recovery.vstate "x");
  Alcotest.(check int) "image chain underneath" 3
    (List.length (Vs.chain out.Recovery.vstate "x"));
  Alcotest.(check bool) "checkpointed log recovers to the ideal" true
    (Recovery.mv_recovery_correct ~initial:[] w)

let suite =
  [
    Alcotest.test_case "losers" `Quick test_losers;
    Alcotest.test_case "replay" `Quick test_replay;
    Alcotest.test_case "clean recovery" `Quick test_recover_clean;
    Alcotest.test_case "P0 breaks before-image undo" `Quick
      test_p0_breaks_recovery;
    Alcotest.test_case "aborts are compensated" `Quick
      test_aborted_txn_compensated;
    Alcotest.test_case "engine WALs recover correctly" `Quick
      test_engine_wals_recover_correctly;
    Alcotest.test_case "MV: unstamped installs are discarded" `Quick
      test_mv_unstamped_installs_discarded;
    Alcotest.test_case "MV: a torn stamp leaves the txn in flight" `Quick
      test_mv_torn_stamp_is_loser;
    Alcotest.test_case "MV: watermark replays the prune" `Quick
      test_mv_watermark_replays_prune;
    Alcotest.test_case "MV: a leading Vcheckpoint is the replay base" `Quick
      test_mv_checkpoint_base;
    prop_serial_logs_recover;
  ]
