(* The wire front-end, live over loopback: a real server (scheduler
   domains, reader/writer threads, striped engine) driven by real
   sockets. The tests pin the session semantics the protocol promises —
   per-session levels land in the journal, writes commit atomically,
   malformed frames error and close without hurting other connections,
   an abruptly vanished client's locks are released, draining rejects
   new transactions — and the two pool-level satellites: the stop-flag
   drain and certifier batching equivalence. *)

module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Frontend = Server.Frontend
module Client = Server.Client
module Loadgen = Server.Loadgen
module P = Server.Protocol
module L = Isolation.Level
module Generators = Workload.Generators

(* Start a server on a free port, run [f port], stop, return
   (pool result, wire stats, f's result). *)
let with_server ?(workers = 2) ?(accounts = 16) ?(certify = false)
    ?(seed = 3) ?telemetry_port ?(telemetry_ready = fun _ -> ()) f =
  let stop = Atomic.make false in
  let port_box = Atomic.make 0 in
  let pool =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~seed ~certify ~oracle_window:32 ()
  in
  let cfg =
    Frontend.config ~port:0
      ~on_ready:(fun p -> Atomic.set port_box p)
      ?telemetry_port ~telemetry_ready ~drain_grace_s:3.0 ~stop ~pool
      ~family:`Locking ()
  in
  let out = ref None in
  let server = Thread.create (fun () -> out := Some (Frontend.serve cfg)) () in
  let rec await n =
    if Atomic.get port_box = 0 then
      if n > 500 then Alcotest.fail "server never came up"
      else begin
        Thread.delay 0.01;
        await (n + 1)
      end
  in
  await 0;
  let x = f (Atomic.get port_box) in
  Atomic.set stop true;
  Thread.join server;
  match !out with
  | Some (r, stats) -> (r, stats, x)
  | None -> Alcotest.fail "server produced no result"

let ok_or_fail what = function
  | Ok P.Ok_resp -> ()
  | Ok resp -> Alcotest.failf "%s: unexpected %a" what P.pp_response resp
  | Error e -> Alcotest.failf "%s: %s" what e

(* {2 Per-session levels land in the journal} *)

let test_levels_honored () =
  let r, stats, () =
    with_server (fun port ->
        let cl = Client.connect ~host:"127.0.0.1" ~port in
        (* two sessions on one connection, different declared levels *)
        ok_or_fail "open 1" (Client.request cl ~sid:1 P.Open);
        ok_or_fail "open 2" (Client.request cl ~sid:2 P.Open);
        ok_or_fail "level 1" (Client.request cl ~sid:1 (P.Set_level "serializable"));
        ok_or_fail "level 2" (Client.request cl ~sid:2 (P.Set_level "repeatable read"));
        (* a cross-family level is accepted as the declared level and
           executes at its in-family strengthening; a misspelled one is
           still refused *)
        ok_or_fail "snapshot declared on locking family"
          (Client.request cl ~sid:1 (P.Set_level "snapshot"));
        ok_or_fail "back to serializable"
          (Client.request cl ~sid:1 (P.Set_level "serializable"));
        (match Client.request cl ~sid:1 (P.Set_level "snapshto") with
        | Ok (P.Error { code; _ }) when code = P.err_unknown -> ()
        | other ->
          Alcotest.failf "unknown level accepted: %s"
            (match other with
            | Ok resp -> Fmt.str "%a" P.pp_response resp
            | Error e -> e));
        let txn sid name =
          ok_or_fail "begin"
            (Client.request cl ~sid
               (P.Begin { read_only = false; attempt = 1; name }));
          (match Client.request cl ~sid (P.Read "acct_000") with
          | Ok (P.Value _) -> ()
          | _ -> Alcotest.fail "read failed");
          ok_or_fail "write" (Client.request cl ~sid (P.Write ("acct_000", 7)));
          match Client.request cl ~sid P.Commit with
          | Ok (P.Committed | P.Aborted _) -> ()
          | _ -> Alcotest.fail "commit failed"
        in
        txn 1 "ser_txn";
        txn 2 "rr_txn";
        ok_or_fail "close 1" (Client.request cl ~sid:1 P.Close);
        ok_or_fail "close 2" (Client.request cl ~sid:2 P.Close);
        Client.close cl)
  in
  Alcotest.(check int) "no protocol errors" 0 stats.Frontend.protocol_errors;
  let find name =
    match
      List.find_opt
        (fun e -> e.Runtime.Recorder.name = name)
        r.Pool.journal
    with
    | Some e -> e
    | None -> Alcotest.failf "journal entry %s missing" name
  in
  Alcotest.(check string)
    "declared SERIALIZABLE journaled" (L.name L.Serializable)
    (L.name (find "ser_txn").Runtime.Recorder.level);
  Alcotest.(check string)
    "declared REPEATABLE READ journaled" (L.name L.Repeatable_read)
    (L.name (find "rr_txn").Runtime.Recorder.level)

(* {2 Committed writes are visible to later transactions} *)

let test_write_then_read_back () =
  let r, _, () =
    with_server (fun port ->
        let cl = Client.connect ~host:"127.0.0.1" ~port in
        ok_or_fail "open" (Client.request cl ~sid:1 P.Open);
        ok_or_fail "begin"
          (Client.request cl ~sid:1
             (P.Begin { read_only = false; attempt = 1; name = "w" }));
        ok_or_fail "write" (Client.request cl ~sid:1 (P.Write ("acct_003", 321)));
        (match Client.request cl ~sid:1 P.Commit with
        | Ok P.Committed -> ()
        | _ -> Alcotest.fail "uncontended commit failed");
        ok_or_fail "begin 2"
          (Client.request cl ~sid:1
             (P.Begin { read_only = true; attempt = 1; name = "r" }));
        (match Client.request cl ~sid:1 (P.Read "acct_003") with
        | Ok (P.Value (Some 321)) -> ()
        | Ok resp -> Alcotest.failf "read back: %a" P.pp_response resp
        | Error e -> Alcotest.fail e);
        (match Client.request cl ~sid:1 P.Commit with
        | Ok P.Committed -> ()
        | _ -> Alcotest.fail "read-only commit failed");
        ok_or_fail "close" (Client.request cl ~sid:1 P.Close);
        Client.close cl)
  in
  match List.assoc_opt "acct_003" r.Pool.final with
  | Some 321 -> ()
  | _ -> Alcotest.fail "committed write missing from final state"

(* {2 Malformed frames: clean error, other connections unharmed} *)

let test_malformed_frame () =
  let _, stats, () =
    with_server (fun port ->
        (* connection 1 sends garbage after a valid open *)
        let bad = Client.connect ~host:"127.0.0.1" ~port in
        ok_or_fail "open" (Client.request bad ~sid:1 P.Open);
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let garbage = Bytes.make 13 '\xEE' in
        Bytes.set_int32_be garbage 0 9l (* valid length, junk payload *);
        let n = Unix.write fd garbage 0 13 in
        Alcotest.(check int) "wrote the frame" 13 n;
        (* the server answers with a malformed error, then closes *)
        let buf = Bytes.create 1024 in
        let got = Unix.read fd buf 0 1024 in
        Alcotest.(check bool) "an error frame came back" true (got > 4);
        let payload = Bytes.sub buf 4 (got - 4) in
        (match P.decode_response payload with
        | Ok (_, _, P.Error { code; _ }) ->
          Alcotest.(check int) "malformed error code" P.err_malformed code
        | other ->
          Alcotest.failf "expected malformed error, got %s"
            (match other with
            | Ok (_, _, resp) -> Fmt.str "%a" P.pp_response resp
            | Error e -> e));
        Alcotest.(check int) "then EOF" 0 (Unix.read fd buf 0 1024);
        Unix.close fd;
        (* the healthy connection still works *)
        ok_or_fail "begin after garbage"
          (Client.request bad ~sid:1
             (P.Begin { read_only = false; attempt = 1; name = "ok" }));
        (match Client.request bad ~sid:1 P.Commit with
        | Ok P.Committed -> ()
        | _ -> Alcotest.fail "healthy connection broken by the other's garbage");
        Client.close bad)
  in
  Alcotest.(check bool)
    "protocol error counted" true
    (stats.Frontend.protocol_errors >= 1)

(* {2 An abruptly vanished client releases its locks} *)

let test_disconnect_releases_locks () =
  let r, _, () =
    with_server (fun port ->
        (* session A takes a write lock and the client dies *)
        let a = Client.connect ~host:"127.0.0.1" ~port in
        ok_or_fail "open a" (Client.request a ~sid:1 P.Open);
        ok_or_fail "begin a"
          (Client.request a ~sid:1
             (P.Begin { read_only = false; attempt = 1; name = "orphan" }));
        ok_or_fail "write a" (Client.request a ~sid:1 (P.Write ("acct_001", 5)));
        Client.close a (* no COMMIT, no CLOSE: just gone *);
        (* session B needs the same lock; it must get through once the
           server reaps the orphan *)
        let b = Client.connect ~host:"127.0.0.1" ~port in
        ok_or_fail "open b" (Client.request b ~sid:1 P.Open);
        let rec attempt n =
          if n > 20 then Alcotest.fail "orphaned lock never released"
          else begin
            ok_or_fail "begin b"
              (Client.request b ~sid:1
                 (P.Begin { read_only = false; attempt = n; name = "survivor" }));
            ok_or_fail "write b"
              (Client.request b ~sid:1 (P.Write ("acct_001", 6)));
            match Client.request ~timeout_s:30.0 b ~sid:1 P.Commit with
            | Ok P.Committed -> ()
            | Ok (P.Aborted _) ->
              Thread.delay 0.05;
              attempt (n + 1)
            | _ -> Alcotest.fail "survivor commit errored"
          end
        in
        attempt 1;
        ok_or_fail "close b" (Client.request b ~sid:1 P.Close);
        Client.close b)
  in
  (* the orphan was aborted, not committed *)
  let orphan =
    List.find_opt (fun e -> e.Runtime.Recorder.name = "orphan") r.Pool.journal
  in
  (match orphan with
  | Some { Runtime.Recorder.outcome = Runtime.Recorder.Aborted _; _ } -> ()
  | Some _ -> Alcotest.fail "orphan committed?"
  | None -> Alcotest.fail "orphan never journaled");
  match List.assoc_opt "acct_001" r.Pool.final with
  | Some 6 -> ()
  | v ->
    Alcotest.failf "survivor's write lost (acct_001 = %s)"
      (match v with Some n -> string_of_int n | None -> "absent")

(* {2 Certified serving over the wire} *)

let test_certify_over_wire () =
  let r, stats, lg =
    with_server ~workers:4 ~accounts:8 ~certify:true (fun port ->
        Loadgen.run
          (Loadgen.config ~port ~sessions:24 ~txns_per_session:4
             ~mix:Generators.Hotspot ~accounts:8 ~hot:4
             ~levels:[ (L.Read_committed, 1.0) ]
             ~seed:5 ()))
  in
  Alcotest.(check int) "no wire protocol errors" 0 stats.Frontend.protocol_errors;
  Alcotest.(check int) "no client protocol errors" 0 lg.Loadgen.protocol_errors;
  Alcotest.(check bool) "some transactions committed" true (lg.Loadgen.committed > 0);
  Alcotest.(check bool)
    "committed projection serializable (certified, even at RC)" true
    (Option.get r.Pool.oracle).Oracle.serializable

(* {2 Live telemetry: STATS over the wire and the HTTP exposition} *)

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path) in
  ignore (Unix.write fd req 0 (Bytes.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      read_all ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
  in
  read_all ();
  Unix.close fd;
  Buffer.contents buf

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let test_telemetry_live () =
  let module W = Telemetry.Window in
  let module J = Trace.Json in
  let tport = Atomic.make 0 in
  let r, stats, (lg, final_committed, expo) =
    with_server ~workers:4 ~accounts:8 ~certify:true ~telemetry_port:0
      ~telemetry_ready:(fun p -> Atomic.set tport p)
      (fun port ->
        (* real load from a thread; scrape both endpoints mid-run *)
        let lg_out = ref None in
        let lg_thread =
          Thread.create
            (fun () ->
              lg_out :=
                Some
                  (Loadgen.run
                     (Loadgen.config ~port ~sessions:16 ~txns_per_session:6
                        ~mix:Generators.Hotspot ~accounts:8 ~hot:4
                        ~levels:
                          [ (L.Read_committed, 1.0); (L.Serializable, 1.0) ]
                        ~seed:7 ())))
            ()
        in
        let cl = Client.connect ~host:"127.0.0.1" ~port in
        let scrape () =
          match Client.request cl ~sid:0 P.Stats with
          | Ok (P.Stats_resp body) -> (
            match J.parse body with
            | Ok j -> j
            | Error e -> Alcotest.failf "STATS JSON: %a" J.pp_error e)
          | Ok resp -> Alcotest.failf "STATS: unexpected %a" P.pp_response resp
          | Error e -> Alcotest.failf "STATS: %s" e
        in
        let sample j =
          match Option.bind (J.member "metrics" j) W.of_json with
          | Some s -> s
          | None -> Alcotest.fail "STATS metrics member unparseable"
        in
        let s0 = sample (scrape ()) in
        Thread.delay 0.2;
        let j1 = scrape () in
        let s1 = sample j1 in
        Alcotest.(check bool)
          "live committed monotone over the wire" true
          (s1.W.committed >= s0.W.committed);
        (* the report carries the server-side sections too *)
        Alcotest.(check bool)
          "scheduler section present" true
          (J.member "scheduler" j1 <> None);
        Alcotest.(check bool)
          "certifier section present" true
          (J.member "certifier" j1 <> None);
        (* the HTTP exposition answers while the run is in flight *)
        let expo = http_get ~port:(Atomic.get tport) "/metrics" in
        Thread.join lg_thread;
        let lg = Option.get !lg_out in
        (* after the load has fully drained, the live counter has
           caught up with the client's own count exactly: a COMMITTED
           reply is sent only after the commit is recorded *)
        let sf = sample (scrape ()) in
        Client.close cl;
        (lg, sf.W.committed, expo))
  in
  Alcotest.(check int) "no wire protocol errors" 0 stats.Frontend.protocol_errors;
  Alcotest.(check int) "no client protocol errors" 0 lg.Loadgen.protocol_errors;
  Alcotest.(check bool) "some transactions committed" true
    (lg.Loadgen.committed > 0);
  Alcotest.(check int)
    "post-drain STATS committed matches loadgen" lg.Loadgen.committed
    final_committed;
  Alcotest.(check int)
    "final result metrics agree" lg.Loadgen.committed
    r.Pool.metrics.Runtime.Metrics.committed;
  (* exposition shape: an HTTP 200 carrying the known families *)
  Alcotest.(check bool) "HTTP 200" true (contains expo "HTTP/1.0 200 OK");
  Alcotest.(check bool) "content type" true
    (contains expo "text/plain; version=0.0.4");
  List.iter
    (fun family ->
      Alcotest.(check bool) (family ^ " present") true (contains expo family))
    [
      "# TYPE isolation_lab_committed_total counter";
      "# TYPE isolation_lab_throughput_tps gauge";
      "isolation_lab_certifier_graph_nodes";
      "isolation_lab_scheduler_sessions_active";
      "isolation_lab_server_conns_total";
    ]

(* {2 Draining rejects new transactions} *)

let test_draining_rejects () =
  let stop = Atomic.make false in
  let port_box = Atomic.make 0 in
  let pool =
    Pool.config ~workers:2 ~initial:(Generators.bank_accounts 8) ~seed:9 ()
  in
  let cfg =
    Frontend.config ~port:0
      ~on_ready:(fun p -> Atomic.set port_box p)
      ~drain_grace_s:2.0 ~stop ~pool ~family:`Locking ()
  in
  let out = ref None in
  let server = Thread.create (fun () -> out := Some (Frontend.serve cfg)) () in
  let rec await n =
    if Atomic.get port_box = 0 then
      if n > 500 then Alcotest.fail "server never came up"
      else begin
        Thread.delay 0.01;
        await (n + 1)
      end
  in
  await 0;
  let cl = Client.connect ~host:"127.0.0.1" ~port:(Atomic.get port_box) in
  ok_or_fail "open" (Client.request cl ~sid:1 P.Open);
  (* commit one transaction while the server is healthy *)
  ok_or_fail "begin"
    (Client.request cl ~sid:1 (P.Begin { read_only = false; attempt = 1; name = "pre" }));
  (match Client.request cl ~sid:1 P.Commit with
  | Ok P.Committed -> ()
  | _ -> Alcotest.fail "healthy commit failed");
  (* flip the drain flag; the accept loop notices within its 100ms poll *)
  Atomic.set stop true;
  Thread.delay 0.3;
  (match Client.request cl ~sid:1 (P.Begin { read_only = false; attempt = 1; name = "late" })
   with
  | Ok (P.Error { code; _ }) when code = P.err_draining -> ()
  | Ok resp ->
    Alcotest.failf "BEGIN while draining: %a (wanted DRAINING error)"
      P.pp_response resp
  | Error _ -> () (* connection already severed: also a valid drain *));
  Client.close cl;
  Thread.join server;
  match !out with
  | Some (r, _) ->
    Alcotest.(check bool)
      "pre-drain txn journaled" true
      (List.exists (fun e -> e.Runtime.Recorder.name = "pre") r.Pool.journal)
  | None -> Alcotest.fail "server produced no result"

(* {2 Pool drain flag (batch runner)} *)

let test_pool_stop_drains () =
  let stop = Atomic.make false in
  let cfg =
    Pool.config ~workers:4
      ~initial:(Generators.bank_accounts 8)
      ~think_us:500. ~seed:13 ~stop ()
  in
  let gen i =
    let p =
      Generators.stress_program Generators.Hotspot ~seed:13 ~accounts:8 ~hot:2
        ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Read_committed p
  in
  let stopper =
    Thread.create
      (fun () ->
        Thread.delay 0.05;
        Atomic.set stop true)
      ()
  in
  (* far more work than 50ms can finish: the run must return early,
     complete (journal) every attempt it started, and stay checkable *)
  let r = Pool.run cfg (Array.init 5000 gen) in
  Thread.join stopper;
  let m = r.Pool.metrics in
  let done_ =
    m.Runtime.Metrics.committed + m.Runtime.Metrics.aborted_total
  in
  Alcotest.(check bool) "drained early (not all 5000 ran)" true (done_ < 5000);
  Alcotest.(check bool) "made some progress first" true (done_ > 0);
  Alcotest.(check bool)
    "history well-formed after drain" true
    (match (Option.get r.Pool.oracle).Oracle.well_formed with
    | Ok () -> true
    | Error _ -> false)

(* {2 Certifier batching equivalence} *)

let test_certify_batch_equivalent () =
  (* single worker: identical schedules, so batched and inline feeds
     must produce identical certifier accounting, not just verdicts *)
  let run ~certify_batch =
    let cfg =
      Pool.config ~workers:1
        ~initial:(Generators.bank_accounts 8)
        ~seed:21 ~certify:true ~certify_batch ()
    in
    let gen i =
      let p =
        Generators.stress_program Generators.Mixed ~seed:21 ~accounts:8 ~hot:4
          ~ops:5 ~index:i
      in
      Pool.job ~name:p.Core.Program.name ~level:L.Read_committed p
    in
    Pool.run cfg (Array.init 64 gen)
  in
  let a = run ~certify_batch:true and b = run ~certify_batch:false in
  let s r =
    match r.Pool.certifier with
    | Some s -> s
    | None -> Alcotest.fail "certifier summary missing"
  in
  let sa = s a and sb = s b in
  Alcotest.(check bool) "batched serializable" true sa.Runtime.Certifier.serializable;
  Alcotest.(check bool) "inline serializable" true sb.Runtime.Certifier.serializable;
  Alcotest.(check int)
    "same wr edges" sa.Runtime.Certifier.edges_wr sb.Runtime.Certifier.edges_wr;
  Alcotest.(check int)
    "same ww edges" sa.Runtime.Certifier.edges_ww sb.Runtime.Certifier.edges_ww;
  Alcotest.(check int)
    "same rw edges" sa.Runtime.Certifier.edges_rw sb.Runtime.Certifier.edges_rw;
  Alcotest.(check int)
    "same dooms" sa.Runtime.Certifier.dooms sb.Runtime.Certifier.dooms

let suite =
  [
    Alcotest.test_case "per-session levels land in the journal" `Slow
      test_levels_honored;
    Alcotest.test_case "committed writes read back over the wire" `Slow
      test_write_then_read_back;
    Alcotest.test_case "malformed frame: clean error, isolation" `Slow
      test_malformed_frame;
    Alcotest.test_case "abrupt disconnect releases locks" `Slow
      test_disconnect_releases_locks;
    Alcotest.test_case "certified serving over the wire" `Slow
      test_certify_over_wire;
    Alcotest.test_case "live telemetry: STATS and the HTTP exposition" `Slow
      test_telemetry_live;
    Alcotest.test_case "draining rejects new transactions" `Slow
      test_draining_rejects;
    Alcotest.test_case "pool stop flag drains the batch runner" `Slow
      test_pool_stop_drains;
    Alcotest.test_case "certifier batching is accounting-equivalent" `Quick
      test_certify_batch_equivalent;
  ]
