(* The tracing layer: ring-buffer flight recorder semantics, span
   reconstruction from hand-built event streams, the Chrome trace_event
   export (valid JSON, balanced B/E pairs, lossless round trip), and
   anomaly provenance — the oracle's witnesses mapped back onto the
   recorded interleaving of a real READ COMMITTED lost-update run. *)

module Event = Trace.Event
module Ring = Trace.Ring
module Sink = Trace.Sink
module Span = Trace.Span
module Chrome = Trace.Chrome
module Json = Trace.Json
module Render = Trace.Render
module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Generators = Workload.Generators
module L = Isolation.Level
module Ph = Phenomena.Phenomenon

let mk ?(tid = 7) ?(worker = 2) ts kind =
  { Event.ts_ns = ts; tid; worker; kind }

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.record r (mk i Event.Commit)
  done;
  Alcotest.(check int) "written counts every record" 10 (Ring.written r);
  Alcotest.(check int) "dropped = written - capacity" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "newest survive, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun (e : Event.t) -> e.ts_ns) (Ring.to_list r))

let test_ring_under_capacity () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 3 do
    Ring.record r (mk i Event.Commit)
  done;
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "all retained in order" [ 1; 2; 3 ]
    (List.map (fun (e : Event.t) -> e.ts_ns) (Ring.to_list r))

(* A hand-built committed attempt: one blocked step (with its lock wait),
   one successful step, commit. *)
let hand_built =
  [
    mk 0
      (Event.Attempt_begin
         { job = 3; name = "inc"; attempt = 2; level = "SERIALIZABLE" });
    mk 10 (Event.Step_begin { op = "read x" });
    mk 20
      (Event.Step_end
         { op = "read x"; outcome = Event.Blocked [ 9 ]; hpos0 = 5; hpos1 = 5 });
    mk 120 (Event.Lock_wait { slept_ns = 100 });
    mk 130 (Event.Step_begin { op = "read x" });
    mk 135 (Event.Lock_grant { req = "S(x)"; upgrade = false });
    mk 140
      (Event.Step_end
         { op = "read x"; outcome = Event.Progress; hpos0 = 5; hpos1 = 6 });
    mk 200 Event.Commit;
  ]

let test_span_reconstruction () =
  match Span.of_events hand_built with
  | [ s ] ->
    Alcotest.(check int) "tid" 7 s.Span.tid;
    Alcotest.(check int) "job" 3 s.Span.job;
    Alcotest.(check int) "attempt" 2 s.Span.attempt;
    Alcotest.(check string) "level" "SERIALIZABLE" s.Span.level;
    Alcotest.(check int) "worker" 2 s.Span.worker;
    Alcotest.(check bool) "committed" true (s.Span.outcome = Span.Committed);
    Alcotest.(check int) "steps include blocked tries" 2 s.Span.steps;
    Alcotest.(check int) "one blocked step" 1 s.Span.blocked_steps;
    Alcotest.(check int) "lock wait from the sleep event" 100
      s.Span.lock_wait_ns;
    Alcotest.(check int) "wall = finish - start" 200 (Span.wall_ns s);
    Alcotest.(check int) "exec = wall - lock wait" 100 (Span.exec_ns s)
  | spans ->
    Alcotest.failf "expected one span, got %d" (List.length spans)

let test_span_retry_overhead () =
  let failed =
    [
      mk ~tid:4 0
        (Event.Attempt_begin
           { job = 1; name = "inc"; attempt = 1; level = "SERIALIZABLE" });
      mk ~tid:4 50 (Event.Abort { reason = "deadlock_victim" });
      mk ~tid:4 60 (Event.Retry_backoff { slept_ns = 40; next_attempt = 2 });
      mk ~tid:5 100
        (Event.Attempt_begin
           { job = 1; name = "inc"; attempt = 2; level = "SERIALIZABLE" });
      mk ~tid:5 180 Event.Commit;
    ]
  in
  let spans = Span.of_events failed in
  Alcotest.(check int) "two attempts, two spans" 2 (List.length spans);
  (* The failed attempt's wall (50) plus its restart backoff (40); the
     committed attempt charges nothing. *)
  Alcotest.(check int) "retry overhead" 90 (Span.retry_overhead_ns spans);
  (match Span.find spans 4 with
  | Some s ->
    Alcotest.(check bool) "backoff does not extend the attempt" true
      (Span.wall_ns s = 50)
  | None -> Alcotest.fail "span for tid 4 missing")

let meta =
  Chrome.meta ~tool:"test" ~level:"SERIALIZABLE" ~mix:"hotspot" ~workers:2
    ~seed:1 ~history:"r1[x=1] c1" ()

let test_chrome_valid_json () =
  let s = Chrome.to_string meta hand_built in
  match Json.parse s with
  | Error e -> Alcotest.failf "export is not valid JSON: %a" Json.pp_error e
  | Ok (Json.List entries) ->
    (* Every B opened on a thread lane must be closed by an E. *)
    let opens = Hashtbl.create 8 in
    List.iter
      (fun entry ->
        let ph =
          Option.bind (Json.member "ph" entry) Json.to_string_opt
        and lane =
          ( Option.bind (Json.member "pid" entry) Json.to_int_opt,
            Option.bind (Json.member "tid" entry) Json.to_int_opt )
        in
        match ph with
        | Some "B" ->
          Hashtbl.replace opens lane
            (1 + Option.value ~default:0 (Hashtbl.find_opt opens lane))
        | Some "E" ->
          let depth = Option.value ~default:0 (Hashtbl.find_opt opens lane) in
          Alcotest.(check bool) "E closes an open B" true (depth > 0);
          Hashtbl.replace opens lane (depth - 1)
        | _ -> ())
      entries;
    Hashtbl.iter
      (fun _ depth ->
        Alcotest.(check int) "every B is closed" 0 depth)
      opens
  | Ok _ -> Alcotest.fail "export is not a JSON array"

let test_chrome_round_trip () =
  let s = Chrome.to_string meta hand_built in
  match Chrome.parse s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (m, events) ->
    Alcotest.(check string) "level survives" "SERIALIZABLE" m.Chrome.level;
    Alcotest.(check string) "history survives" "r1[x=1] c1" m.Chrome.history;
    Alcotest.(check int) "every event survives" (List.length hand_built)
      (List.length events);
    Alcotest.(check bool) "payloads survive" true
      (List.for_all2
         (fun (a : Event.t) (b : Event.t) ->
           a.tid = b.tid && a.worker = b.worker && a.kind = b.kind)
         hand_built events)

(* A real run: READ COMMITTED over one hot key loses updates; the trace
   must let us name the transactions behind the oracle's witness and find
   the wall-clock event for every witness position. Any single run may
   serialize by luck, so hunt over seeds. *)
let rc_lost_update_run () =
  let accounts = 8 in
  let rec hunt = function
    | [] -> None
    | seed :: rest ->
      let sink = Sink.create ~workers:4 () in
      let cfg =
        Pool.config ~workers:4
          ~initial:(Generators.bank_accounts accounts)
          ~think_us:100. ~seed ~oracle_phenomena:[ Ph.P4 ] ~trace:sink ()
      in
      let jobs =
        Array.init 64 (fun i ->
            let p =
              Generators.stress_program Generators.Hotspot ~seed ~accounts
                ~hot:1 ~ops:4 ~index:i
            in
            Pool.job ~name:p.Core.Program.name ~level:L.Read_committed p)
      in
      let r = Pool.run cfg jobs in
      if (Option.get r.Pool.oracle).Oracle.witnesses <> [] then Some r else hunt rest
  in
  hunt [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_provenance_names_transactions () =
  match rc_lost_update_run () with
  | None -> Alcotest.fail "no seed produced a P4 witness"
  | Some r ->
    let w = List.hd (Option.get r.Pool.oracle).Oracle.witnesses in
    let out =
      Fmt.str "%a"
        (fun ppf w ->
          Render.provenance ~events:r.Pool.events ppf
            ~history:r.Pool.history w)
        w
    in
    let contains sub =
      let n = String.length out and m = String.length sub in
      let rec at i = i + m <= n && (String.sub out i m = sub || at (i + 1)) in
      at 0
    in
    (* The rendering must name the actual witness transactions and mark
       their operations. *)
    Alcotest.(check bool) "names the T1-role transaction" true
      (contains (Printf.sprintf "T%d" w.Phenomena.Detect.t1));
    Alcotest.(check bool) "names the T2-role transaction" true
      (contains (Printf.sprintf "T%d" w.Phenomena.Detect.t2));
    Alcotest.(check bool) "marks witness roles" true (contains "witness");
    Alcotest.(check bool) "shows dependency edges" true
      (contains "dependency edges");
    (* Every witness position maps back to the step event that emitted
       it, and that event belongs to the acting transaction. *)
    List.iter
      (fun pos ->
        match Render.event_at_position r.Pool.events pos with
        | None -> Alcotest.failf "no trace event covers position %d" pos
        | Some e ->
          let action = List.nth r.Pool.history pos in
          Alcotest.(check int)
            (Printf.sprintf "event at h%d belongs to the acting txn" pos)
            (History.Action.txn action) e.Event.tid)
      w.Phenomena.Detect.positions

let test_lock_table_upgrades () =
  let open Locking.Lock_table in
  let t = create () in
  let w k = Write_item { k; before = None; after = None } in
  ignore (acquire t ~owner:1 ~tag:Long (Read_item "x"));
  ignore (acquire t ~owner:2 ~tag:Long (Read_item "x"));
  (* Both readers now request the write: the canonical upgrade deadlock.
     Both requests are refused, and both must still count as upgrades. *)
  (match acquire t ~owner:1 ~tag:Long (w "x") with
  | Conflict holders -> Alcotest.(check (list int)) "blocked by T2" [ 2 ] holders
  | Granted -> Alcotest.fail "T1's upgrade should conflict with T2's S lock");
  (match acquire t ~owner:2 ~tag:Long (w "x") with
  | Conflict _ -> ()
  | Granted -> Alcotest.fail "T2's upgrade should conflict with T1's S lock");
  let s = stats t in
  Alcotest.(check int) "both refused upgrades counted" 2 s.upgrades;
  Alcotest.(check int) "both refusals counted" 2 s.conflicts;
  (* A write on a key the owner does not yet read-cover is not an
     upgrade. *)
  ignore (acquire t ~owner:1 ~tag:Long (w "y"));
  Alcotest.(check int) "fresh write is no upgrade" 2 (stats t).upgrades

let suite =
  [
    Alcotest.test_case "ring: wraparound keeps newest, counts dropped" `Quick
      test_ring_wraparound;
    Alcotest.test_case "ring: under capacity drops nothing" `Quick
      test_ring_under_capacity;
    Alcotest.test_case "span: reconstruction from hand-built events" `Quick
      test_span_reconstruction;
    Alcotest.test_case "span: retry overhead charges failed attempts" `Quick
      test_span_retry_overhead;
    Alcotest.test_case "chrome: export is valid JSON with balanced B/E"
      `Quick test_chrome_valid_json;
    Alcotest.test_case "chrome: lossless round trip" `Quick
      test_chrome_round_trip;
    Alcotest.test_case
      "provenance: READ COMMITTED lost update names its transactions" `Quick
      test_provenance_names_transactions;
    Alcotest.test_case "lock table: upgrade requests are counted" `Quick
      test_lock_table_upgrades;
  ]
