(* The multicore runtime: pool, metrics, stripes, backoff and the
   serializability oracle, exercised with real Domain parallelism.

   Concurrency tests assert invariants that hold for *every*
   interleaving (the oracle verdict, value conservation, metrics
   accounting), never a specific schedule. The one probabilistic test —
   READ COMMITTED actually losing an update — retries over seeds, since
   any single parallel run may happen to serialize. *)

module Pool = Runtime.Pool
module Oracle = Runtime.Oracle
module Metrics = Runtime.Metrics
module Stripes = Runtime.Stripes
module Backoff = Runtime.Backoff
module Recorder = Runtime.Recorder
module Generators = Workload.Generators
module L = Isolation.Level
module Ph = Phenomena.Phenomenon

let accounts = 8
let initial_balance = 100

let stress_jobs ~level ~mix ~seed ~hot n =
  Array.init n (fun i ->
      let p = Generators.stress_program mix ~seed ~accounts ~hot ~ops:4 ~index:i in
      Pool.job ~name:p.Core.Program.name ~level p)

let run ~level ~mix ?(seed = 11) ?(workers = 4) ?(hot = 2) n =
  let cfg =
    Pool.config ~workers
      ~initial:(Generators.bank_accounts accounts)
      ~think_us:50. ~seed ()
  in
  Pool.run cfg (stress_jobs ~level ~mix ~seed ~hot n)

(* Committed increments of [k] recorded in the journal; under a correct
   engine the final balance must reflect exactly these. *)
let committed_incs journal k =
  List.length
    (List.filter
       (fun (e : Recorder.entry) ->
         e.outcome = Recorder.Committed && e.name = "inc:" ^ k)
       journal)

let check_conservation (r : Pool.result) =
  List.iter
    (fun (k, v) ->
      Alcotest.(check int)
        (Printf.sprintf "balance of %s = initial + committed increments" k)
        (initial_balance + committed_incs r.journal k)
        v)
    r.final

let test_serializable_hotspot () =
  let r = run ~level:L.Serializable ~mix:Generators.Hotspot 48 in
  Alcotest.(check bool) "history well-formed" true
    ((Option.get r.oracle).Oracle.well_formed = Ok ());
  Alcotest.(check bool) "2PL run is pattern-free" true
    (Oracle.pattern_free (Option.get r.oracle));
  Alcotest.(check int) "every job eventually commits" 48
    r.metrics.Metrics.committed;
  Alcotest.(check int) "no job gave up" 0 r.metrics.Metrics.giveups;
  check_conservation r;
  (* Journal and metrics agree on attempt accounting. *)
  let journal_commits =
    List.length
      (List.filter
         (fun (e : Recorder.entry) -> e.outcome = Recorder.Committed)
         r.journal)
  in
  Alcotest.(check int) "journal commits = metrics commits" journal_commits
    r.metrics.Metrics.committed

let test_snapshot_hotspot () =
  let r = run ~level:L.Snapshot ~mix:Generators.Hotspot 48 in
  Alcotest.(check bool) "SI run is anomaly-free" true (Oracle.clean (Option.get r.oracle));
  Alcotest.(check bool) "analyzed as multiversion" true
    (Option.get r.oracle).Oracle.multiversion;
  (* First-Committer-Wins means every committed increment survives. *)
  check_conservation r

let test_ssi_and_to_clean () =
  List.iter
    (fun level ->
      let r = run ~level ~mix:Generators.Hotspot 32 in
      Alcotest.(check bool)
        (L.name level ^ " promises serializability")
        true (Oracle.clean (Option.get r.oracle)))
    [ L.Serializable_snapshot; L.Timestamp_ordering ]

(* READ COMMITTED under a single hot key loses updates; the oracle must
   catch it in the recorded history. Any one run may serialize by luck,
   so hunt over seeds — failure needs every seed to dodge P4. *)
let test_read_committed_loses_updates () =
  let found =
    List.exists
      (fun seed ->
        let cfg =
          Pool.config ~workers:4
            ~initial:(Generators.bank_accounts accounts)
            ~think_us:100. ~seed
            ~oracle_phenomena:[ Ph.P4 ] ()
        in
        let r =
          Pool.run cfg
            (stress_jobs ~level:L.Read_committed ~mix:Generators.Hotspot ~seed
               ~hot:1 64)
        in
        List.mem_assoc Ph.P4 (Option.get r.Pool.oracle).Oracle.phenomena)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "P4 observed in at least one seed" true found

let test_run_for_deadline () =
  let gen i =
    let p =
      Generators.stress_program Generators.Transfer ~seed:3 ~accounts ~hot:2
        ~ops:4 ~index:i
    in
    Pool.job ~name:p.Core.Program.name ~level:L.Serializable p
  in
  let cfg =
    Pool.config ~workers:2
      ~initial:(Generators.bank_accounts accounts)
      ~think_us:20. ~seed:3 ()
  in
  let r = Pool.run_for cfg ~duration_s:0.05 ~gen in
  Alcotest.(check bool) "made progress" true (r.metrics.Metrics.committed > 0);
  Alcotest.(check bool) "well-formed" true
    ((Option.get r.oracle).Oracle.well_formed = Ok ());
  Alcotest.(check bool) "pattern-free" true (Oracle.pattern_free (Option.get r.oracle))

let test_stripes_counter_parallel () =
  let c = Stripes.Counter.create () in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stripes.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "sharded counter sums exactly" (4 * per_domain)
    (Stripes.Counter.sum c)

let test_stripes_key_mapping () =
  let s = Stripes.create 8 in
  let i = Stripes.stripe_of_key s "acct_000" in
  Alcotest.(check int) "stable stripe for a key" i
    (Stripes.stripe_of_key s "acct_000");
  Alcotest.(check bool) "stripe in range" true (i >= 0 && i < Stripes.size s)

let test_backoff_counts_and_caps () =
  let rng = Random.State.make [| 42 |] in
  let bo =
    Backoff.create ~rng { Backoff.base_us = 1.; cap_us = 4.; multiplier = 2. }
  in
  for _ = 1 to 5 do
    Backoff.wait bo
  done;
  Alcotest.(check int) "wait count" 5 (Backoff.waits bo);
  Backoff.reset bo;
  Backoff.wait bo;
  Alcotest.(check int) "count survives reset" 6 (Backoff.waits bo)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.start m;
  Metrics.record_commit m ~latency_ns:1_000_000;
  Metrics.record_abort m Core.Engine.Deadlock_victim;
  Metrics.record_retry m;
  Metrics.stop m;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "one commit" 1 s.Metrics.committed;
  Alcotest.(check int) "one abort" 1 s.Metrics.aborted_total;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  let json = Metrics.to_json ~extra:[ ("level", "\"x\"") ] s in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " in JSON") true (contains json field))
    [ "committed"; "throughput"; "lat_p99_ms"; "deadlock_victim"; "level" ]

let suite =
  [
    Alcotest.test_case "serializable hotspot: pattern-free + conservation"
      `Quick test_serializable_hotspot;
    Alcotest.test_case "snapshot hotspot: clean + conservation" `Quick
      test_snapshot_hotspot;
    Alcotest.test_case "SSI and T/O stay clean" `Quick test_ssi_and_to_clean;
    Alcotest.test_case "read committed loses updates (oracle sees P4)" `Quick
      test_read_committed_loses_updates;
    Alcotest.test_case "run_for: deadline-bounded run" `Quick
      test_run_for_deadline;
    Alcotest.test_case "stripes: sharded counter is exact" `Quick
      test_stripes_counter_parallel;
    Alcotest.test_case "stripes: key mapping is stable" `Quick
      test_stripes_key_mapping;
    Alcotest.test_case "backoff: counts and reset" `Quick
      test_backoff_counts_and_caps;
    Alcotest.test_case "metrics: snapshot and JSON" `Quick test_metrics_json;
  ]
