(* Long-running property fuzzer: hammers the engines with random
   workloads and schedules, checking the guarantees each isolation level
   owes — far beyond the qcheck budgets in the test suite.

     dune exec fuzz/main.exe -- 100000     # number of seeds (default 20000)

   Checks, per seed:
   - every locking level never exhibits its Table 4 Not-Possible phenomena;
   - SERIALIZABLE under next-key locking stays conflict-serializable;
   - Snapshot Isolation obeys the snapshot-read rule and
     First-Committer-Wins (under both conflict-detection policies) and
     never blocks;
   - Serializable SI histories are one-copy serializable;
   - timestamp-ordering histories are serializable and deadlock-free. *)

module P = Core.Program
module L = Isolation.Level
module Spec = Isolation.Spec
module Executor = Core.Executor
module Generators = Workload.Generators

let keys = [ "x"; "y"; "z" ]
let initial = [ ("x", 10); ("y", 20); ("z", 30) ]

let workload seed =
  let rand = Random.State.make [| seed |] in
  let txns = 2 + Random.State.int rand 2 in
  let programs = Generators.random_programs ~rand ~keys ~txns ~ops:4 () in
  let schedule = Generators.random_schedule ~rand programs in
  (programs, schedule)

let run level ?(fuw = false) ?(nk = false) (programs, schedule) =
  let cfg =
    Executor.config ~initial
      ~predicates:[ Storage.Predicate.all ]
      ~first_updater_wins:fuw ~next_key_locking:nk
      (List.map (fun _ -> level) programs)
  in
  Executor.run cfg programs ~schedule

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  let fails = ref 0 in
  let report fmt = Format.kasprintf (fun s -> incr fails; print_endline s) fmt in
  for seed = 0 to n - 1 do
    let w = workload seed in
    List.iter
      (fun level ->
        let r = run level w in
        List.iter
          (fun p ->
            if Phenomena.Detect.occurs p r.Executor.history then
              report "FORBIDDEN %s exhibits %s (seed %d)" (L.name level)
                (Phenomena.Phenomenon.name p) seed)
          (Spec.forbidden level))
      Locking.Protocol.locking_levels;
    let r = run L.Serializable ~nk:true w in
    if not (History.Conflict.is_serializable r.Executor.history) then
      report "NEXT-KEY SERIALIZABLE not serializable (seed %d)" seed;
    List.iter
      (fun fuw ->
        let r = run L.Snapshot ~fuw w in
        if
          not
            (History.Mv.snapshot_reads_respected r.Executor.history
            && History.Mv.first_committer_wins_respected r.Executor.history)
        then report "SI rules violated (fuw %b, seed %d)" fuw seed)
      [ false; true ];
    let r = run L.Snapshot w in
    if r.Executor.blocked_attempts > 0 then
      report "SI blocked (seed %d)" seed;
    let r = run L.Serializable_snapshot w in
    if not (History.Mv.is_one_copy_serializable r.Executor.history) then
      report "SSI not one-copy serializable (seed %d)" seed;
    let r = run L.Timestamp_ordering w in
    if
      not
        (History.Conflict.is_serializable r.Executor.history
        && r.Executor.deadlock_aborts = 0)
    then report "T/O not serializable or deadlocked (seed %d)" seed;
    ()
  done;
  Printf.printf "fuzz: %d seeds, %d failures\n" n !fails;
  exit (if !fails = 0 then 0 else 1)
