(* An in-memory B+ tree: the ordered index a database store sits on.

   All rows live in leaves; internal nodes hold separator keys. Leaves
   are chained for cheap range scans, which is also what makes next-key
   locking natural: the successor of any key is one leaf probe away.

   The tree keeps every node (except the root) at least half full:
   inserts split full nodes upward; deletes borrow from or merge with a
   sibling. Keys are strings, values are polymorphic. *)

let order = 8 (* max children of an internal node; max order-1 keys *)
let max_keys = order - 1
let min_keys = max_keys / 2

type 'v node =
  | Leaf of 'v leaf_data
  | Internal of 'v internal_data

and 'v leaf_data = {
  mutable keys : string array;
  mutable lvals : 'v array;
  mutable next : 'v leaf_data option; (* leaf chain, ascending *)
}

and 'v internal_data = {
  mutable seps : string array;       (* separator keys, length = children-1 *)
  mutable children : 'v node array;
}

type 'v t = {
  mutable root : 'v node;
  mutable size : int;
}

let create () = { root = Leaf { keys = [||]; lvals = [||]; next = None }; size = 0 }

let length t = t.size

(* Position of the first key >= [k] in a sorted array. *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to follow for [k]: the first separator > k ... children are
   laid out so child i holds keys in [seps.(i-1), seps.(i)). *)
let child_index seps k =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if seps.(mid) <= k then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_leaf node k =
  match node with
  | Leaf l -> l
  | Internal i -> find_leaf i.children.(child_index i.seps k) k

let find t k =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && l.keys.(i) = k then Some l.lvals.(i)
  else None

let mem t k = find t k <> None

(* {2 Insertion} *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* Result of inserting into a subtree: either it fit, or the node split
   into (left, separator, right). *)
type 'v split = No_split | Split of string * 'v node

let rec insert_node node k v =
  match node with
  | Leaf l ->
    let i = lower_bound l.keys k in
    if i < Array.length l.keys && l.keys.(i) = k then begin
      l.lvals.(i) <- v;
      (false, No_split)
    end
    else begin
      l.keys <- array_insert l.keys i k;
      l.lvals <- array_insert l.lvals i v;
      if Array.length l.keys <= max_keys then (true, No_split)
      else begin
        (* Split the leaf: the right half moves to a new leaf; the
           separator is the right leaf's first key. *)
        let n = Array.length l.keys in
        let mid = n / 2 in
        let right =
          { keys = Array.sub l.keys mid (n - mid);
            lvals = Array.sub l.lvals mid (n - mid);
            next = l.next }
        in
        l.keys <- Array.sub l.keys 0 mid;
        l.lvals <- Array.sub l.lvals 0 mid;
        l.next <- Some right;
        (true, Split (right.keys.(0), Leaf right))
      end
    end
  | Internal node_data ->
    let ci = child_index node_data.seps k in
    let added, split = insert_node node_data.children.(ci) k v in
    (match split with
    | No_split -> ()
    | Split (sep, right) ->
      node_data.seps <- array_insert node_data.seps ci sep;
      node_data.children <- array_insert node_data.children (ci + 1) right);
    if Array.length node_data.seps <= max_keys then (added, No_split)
    else begin
      (* Split the internal node: the middle separator moves up. *)
      let n = Array.length node_data.seps in
      let mid = n / 2 in
      let up = node_data.seps.(mid) in
      let right =
        Internal
          { seps = Array.sub node_data.seps (mid + 1) (n - mid - 1);
            children = Array.sub node_data.children (mid + 1) (n - mid) }
      in
      node_data.seps <- Array.sub node_data.seps 0 mid;
      node_data.children <- Array.sub node_data.children 0 (mid + 1);
      (added, Split (up, right))
    end

let insert t k v =
  let added, split = insert_node t.root k v in
  (match split with
  | No_split -> ()
  | Split (sep, right) ->
    t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] });
  if added then t.size <- t.size + 1

(* {2 Deletion} *)

let leaf_underflows l = Array.length l.keys < min_keys
let internal_underflows i = Array.length i.seps < min_keys

(* Rebalance child [ci] of [parent] after a deletion left it underfull:
   borrow from a sibling if it can spare a key, otherwise merge. *)
let rebalance (parent : 'v internal_data) ci =
  let merge_leaves li ri =
    (* Merge right leaf into left, drop the separator. *)
    match (parent.children.(li), parent.children.(ri)) with
    | Leaf l, Leaf r ->
      l.keys <- Array.append l.keys r.keys;
      l.lvals <- Array.append l.lvals r.lvals;
      l.next <- r.next;
      parent.seps <- array_remove parent.seps li;
      parent.children <- array_remove parent.children ri
    | _ -> assert false
  in
  let merge_internals li ri =
    match (parent.children.(li), parent.children.(ri)) with
    | Internal l, Internal r ->
      l.seps <- Array.concat [ l.seps; [| parent.seps.(li) |]; r.seps ];
      l.children <- Array.append l.children r.children;
      parent.seps <- array_remove parent.seps li;
      parent.children <- array_remove parent.children ri
    | _ -> assert false
  in
  match parent.children.(ci) with
  | Leaf l -> (
    let left_sibling = if ci > 0 then Some (ci - 1) else None in
    let right_sibling =
      if ci < Array.length parent.children - 1 then Some (ci + 1) else None
    in
    let borrow_from_left li =
      match parent.children.(li) with
      | Leaf sib when Array.length sib.keys > min_keys ->
        let n = Array.length sib.keys in
        l.keys <- array_insert l.keys 0 sib.keys.(n - 1);
        l.lvals <- array_insert l.lvals 0 sib.lvals.(n - 1);
        sib.keys <- Array.sub sib.keys 0 (n - 1);
        sib.lvals <- Array.sub sib.lvals 0 (n - 1);
        parent.seps.(li) <- l.keys.(0);
        true
      | _ -> false
    in
    let borrow_from_right ri =
      match parent.children.(ri) with
      | Leaf sib when Array.length sib.keys > min_keys ->
        l.keys <- Array.append l.keys [| sib.keys.(0) |];
        l.lvals <- Array.append l.lvals [| sib.lvals.(0) |];
        sib.keys <- array_remove sib.keys 0;
        sib.lvals <- array_remove sib.lvals 0;
        parent.seps.(ci) <- sib.keys.(0);
        true
      | _ -> false
    in
    match (left_sibling, right_sibling) with
    | Some li, _ when borrow_from_left li -> ()
    | _, Some ri when borrow_from_right ri -> ()
    | Some li, _ -> merge_leaves li ci
    | _, Some ri -> merge_leaves ci ri
    | None, None -> ())
  | Internal i -> (
    let left_sibling = if ci > 0 then Some (ci - 1) else None in
    let right_sibling =
      if ci < Array.length parent.children - 1 then Some (ci + 1) else None
    in
    let borrow_from_left li =
      match parent.children.(li) with
      | Internal sib when Array.length sib.seps > min_keys ->
        let n = Array.length sib.seps in
        i.seps <- array_insert i.seps 0 parent.seps.(li);
        i.children <- array_insert i.children 0 sib.children.(n);
        parent.seps.(li) <- sib.seps.(n - 1);
        sib.seps <- Array.sub sib.seps 0 (n - 1);
        sib.children <- Array.sub sib.children 0 n;
        true
      | _ -> false
    in
    let borrow_from_right ri =
      match parent.children.(ri) with
      | Internal sib when Array.length sib.seps > min_keys ->
        i.seps <- Array.append i.seps [| parent.seps.(ci) |];
        i.children <- Array.append i.children [| sib.children.(0) |];
        parent.seps.(ci) <- sib.seps.(0);
        sib.seps <- array_remove sib.seps 0;
        sib.children <- array_remove sib.children 0;
        true
      | _ -> false
    in
    match (left_sibling, right_sibling) with
    | Some li, _ when borrow_from_left li -> ()
    | _, Some ri when borrow_from_right ri -> ()
    | Some li, _ -> merge_internals li ci
    | _, Some ri -> merge_internals ci ri
    | None, None -> ())

let rec remove_node node k =
  match node with
  | Leaf l ->
    let i = lower_bound l.keys k in
    if i < Array.length l.keys && l.keys.(i) = k then begin
      l.keys <- array_remove l.keys i;
      l.lvals <- array_remove l.lvals i;
      (true, leaf_underflows l)
    end
    else (false, false)
  | Internal node_data ->
    let ci = child_index node_data.seps k in
    let removed, underflow = remove_node node_data.children.(ci) k in
    if underflow then rebalance node_data ci;
    (removed, internal_underflows node_data)

let remove t k =
  let removed, _ = remove_node t.root k in
  (* Collapse a root that lost all separators. *)
  (match t.root with
  | Internal i when Array.length i.seps = 0 -> t.root <- i.children.(0)
  | Internal _ | Leaf _ -> ());
  if removed then t.size <- t.size - 1;
  removed

(* {2 Iteration and successor queries} *)

let leftmost_leaf node =
  let rec go = function
    | Leaf l -> l
    | Internal i -> go i.children.(0)
  in
  go node

(* Fold over all bindings in ascending key order via the leaf chain. *)
let fold t ~init ~f =
  let rec leaves acc (l : _ leaf_data) =
    let acc = ref acc in
    for i = 0 to Array.length l.keys - 1 do
      acc := f !acc l.keys.(i) l.lvals.(i)
    done;
    match l.next with Some next -> leaves !acc next | None -> !acc
  in
  leaves init (leftmost_leaf t.root)

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let iter t ~f = fold t ~init:() ~f:(fun () k v -> f k v)

(* The smallest binding with key >= [k]. *)
let successor t k =
  let rec from_leaf (l : _ leaf_data) =
    let i = lower_bound l.keys k in
    if i < Array.length l.keys then Some (l.keys.(i), l.lvals.(i))
    else match l.next with Some next -> from_leaf next | None -> None
  in
  from_leaf (find_leaf t.root k)

(* All bindings with lo <= key < hi (hi = None means unbounded). *)
let range t ~lo ~hi =
  let rec from_leaf acc (l : _ leaf_data) =
    let n = Array.length l.keys in
    let i = lower_bound l.keys lo in
    let rec take acc i =
      if i >= n then
        match l.next with Some next -> from_leaf acc next | None -> acc
      else
        let k = l.keys.(i) in
        match hi with
        | Some hi when k >= hi -> acc
        | _ -> take ((k, l.lvals.(i)) :: acc) (i + 1)
    in
    take acc i
  in
  List.rev (from_leaf [] (find_leaf t.root lo))

let of_list bindings =
  let t = create () in
  List.iter (fun (k, v) -> insert t k v) bindings;
  t

let copy t = of_list (to_list t)

(* {2 Structural invariants, for the test suite} *)

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal i -> 1 + go i.children.(0)
  in
  go t.root

let check_invariants t =
  let rec check node ~is_root ~lo ~hi =
    match node with
    | Leaf l ->
      let n = Array.length l.keys in
      if (not is_root) && n < min_keys then failwith "leaf underfull";
      if n > max_keys then failwith "leaf overfull";
      Array.iteri
        (fun i k ->
          if i > 0 && l.keys.(i - 1) >= k then failwith "leaf keys unsorted";
          (match lo with Some lo when k < lo -> failwith "key below bound" | _ -> ());
          match hi with Some hi when k >= hi -> failwith "key above bound" | _ -> ())
        l.keys;
      1
    | Internal i ->
      let n = Array.length i.seps in
      if (not is_root) && n < min_keys then failwith "internal underfull";
      if n > max_keys then failwith "internal overfull";
      if Array.length i.children <> n + 1 then failwith "children arity";
      Array.iteri
        (fun j s -> if j > 0 && i.seps.(j - 1) >= s then failwith "seps unsorted")
        i.seps;
      let depths =
        Array.to_list
          (Array.mapi
             (fun j child ->
               let lo' = if j = 0 then lo else Some i.seps.(j - 1) in
               let hi' = if j = n then hi else Some i.seps.(j) in
               check child ~is_root:false ~lo:lo' ~hi:hi')
             i.children)
      in
      (match List.sort_uniq compare depths with
      | [ d ] -> d + 1
      | _ -> failwith "uneven depth")
  in
  ignore (check t.root ~is_root:true ~lo:None ~hi:None);
  (* The leaf chain covers exactly the tree's bindings, in order. *)
  let listed = to_list t in
  if List.length listed <> t.size then failwith "size mismatch";
  if List.sort compare listed <> listed then failwith "chain unsorted"
