(** Single-version store: the database a locking scheduler updates in
    place. Rows have explicit presence, so inserts, deletes and predicate
    scans over present rows are all representable. *)

type key = History.Action.key
type value = History.Action.value
type t

val create : unit -> t
val of_list : (key * value) list -> t
val get : t -> key -> value option
val mem : t -> key -> bool
val put : t -> key -> value -> unit
val delete : t -> key -> unit

val restore : t -> key -> value option -> unit
(** Restore a row to a previous state ([None] removes it) — the undo
    primitive. *)

val to_list : t -> (key * value) list
(** Rows sorted by key. *)

val keys : t -> key list
val next_key_geq : t -> key -> key option
(** The smallest present key [>= k] — the "next key" that gap locking
    guards. *)

val scan : t -> Predicate.t -> (key * value) list
val copy : t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
