(* Single-version store: the database a locking scheduler updates in
   place. Rows are (key, value) with explicit presence, so inserts and
   deletes are representable and predicate scans see exactly the present
   rows.

   Backed by the B+ tree, so ordered scans and the successor queries that
   next-key locking relies on are index operations, not sorts. *)

type key = History.Action.key
type value = History.Action.value

type t = value Btree.t

let create () : t = Btree.create ()

let of_list rows =
  let s = create () in
  List.iter (fun (k, v) -> Btree.insert s k v) rows;
  s

let get (s : t) k = Btree.find s k
let mem (s : t) k = Btree.mem s k
let put (s : t) k v = Btree.insert s k v
let delete (s : t) k = ignore (Btree.remove s k)

(* Restore a row to a previous state, as undo does: [None] removes it. *)
let restore (s : t) k = function
  | None -> delete s k
  | Some v -> put s k v

let to_list (s : t) = Btree.to_list s
let keys s = List.map fst (to_list s)

(* The smallest present key greater than or equal to [k] — the "next key"
   that gap (next-key) locking guards. *)
let next_key_geq (s : t) k = Option.map fst (Btree.successor s k)

let scan (s : t) (p : Predicate.t) =
  (* Range predicates scan only their index range; others scan all. *)
  match Predicate.range_bounds p with
  | Some (lo, hi) ->
    List.filter (fun (k, v) -> p.Predicate.satisfies k v) (Btree.range s ~lo ~hi)
  | None -> List.filter (fun (k, v) -> p.Predicate.satisfies k v) (to_list s)

let copy (s : t) = Btree.copy s
let equal (a : t) (b : t) = to_list a = to_list b

let pp ppf s =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int))
    (to_list s)
