(** First-class predicates — the paper's [<search condition>]s (§2.3).

    A predicate covers all data items satisfying it, including phantoms: a
    write affects a predicate if membership holds or differs on either side
    of the write. *)

type key = History.Action.key
type value = History.Action.value

type t = {
  name : string;
  satisfies : key -> value -> bool;
  range : (key * key option) option;
      (** key range [lo, hi) when the predicate is one ([None] upper bound
          is unbounded); enables next-key locking as an alternative
          phantom guard *)
}

val make : name:string -> (key -> value -> bool) -> t
val name : t -> string

val range_bounds : t -> (key * key option) option
(** The key range [lo, hi) covered, when the predicate is a range (item
    predicates, prefixes and explicit ranges are; value predicates are
    not). *)

val matches_row : t -> key -> value option -> bool
(** [None] (absent row) satisfies no predicate. *)

val affected_by_write : t -> key -> before:value option -> after:value option -> bool
(** Whether a write of the key, taking the row from [before] to [after]
    (inserts have [before = None], deletes [after = None]), affects the
    predicate. *)

val item : key -> t
(** The item lock as a predicate naming one record (§2.3). *)

val all : t

val prefix_successor : string -> string option
(** The least string greater than every string with the given prefix, or
    [None] when unbounded. *)

val key_prefix : name:string -> string -> t

val key_range : name:string -> lo:key -> hi:key option -> t
(** Rows with [lo <= key < hi]. *)

val key_in : name:string -> key list -> t
val value_range : name:string -> lo:value -> hi:value -> t
val conj : name:string -> t -> t -> t
val pp : t Fmt.t
