lib/storage/version_store.mli: Fmt History Predicate
