lib/storage/storage.ml: Btree Predicate Recovery Store Version_store Wal
