lib/storage/wal.ml: Fmt History List
