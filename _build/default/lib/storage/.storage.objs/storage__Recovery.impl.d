lib/storage/recovery.ml: List Store Wal
