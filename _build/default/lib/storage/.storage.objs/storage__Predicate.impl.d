lib/storage/predicate.ml: Char Fmt History List String
