lib/storage/store.ml: Btree Fmt History List Option Predicate
