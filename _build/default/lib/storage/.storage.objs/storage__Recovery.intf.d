lib/storage/recovery.mli: Store Wal
