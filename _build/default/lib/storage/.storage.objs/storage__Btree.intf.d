lib/storage/btree.mli:
