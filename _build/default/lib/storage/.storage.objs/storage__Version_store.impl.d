lib/storage/version_store.ml: Btree Fmt History List Option Predicate
