lib/storage/store.mli: Fmt History Predicate
