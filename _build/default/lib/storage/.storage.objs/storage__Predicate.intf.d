lib/storage/predicate.mli: Fmt History
