lib/storage/wal.mli: Fmt History
