(** An in-memory B+ tree over string keys: the ordered index the store
    sits on. Leaves are chained, so range scans and successor queries —
    the operations next-key locking depends on — are cheap.

    Every node except the root stays at least half full; inserts split,
    deletes borrow from or merge with a sibling. *)

type 'v t

val create : unit -> 'v t
val of_list : (string * 'v) list -> 'v t
val length : 'v t -> int
val find : 'v t -> string -> 'v option
val mem : 'v t -> string -> bool

val insert : 'v t -> string -> 'v -> unit
(** Insert or overwrite. *)

val remove : 'v t -> string -> bool
(** Returns whether the key was present. *)

val successor : 'v t -> string -> (string * 'v) option
(** The smallest binding with key [>= k]. *)

val range : 'v t -> lo:string -> hi:string option -> (string * 'v) list
(** Bindings with [lo <= key < hi], ascending ([hi = None] unbounded). *)

val fold : 'v t -> init:'a -> f:('a -> string -> 'v -> 'a) -> 'a
(** Ascending key order. *)

val iter : 'v t -> f:(string -> 'v -> unit) -> unit
val to_list : 'v t -> (string * 'v) list
val copy : 'v t -> 'v t

val height : 'v t -> int
(** Number of node levels from the root to the leaves. *)

val check_invariants : 'v t -> unit
(** Validate sortedness, occupancy, uniform depth, arity and the leaf
    chain. @raise Failure describing the violated invariant. *)
