(** Write-ahead log with before/after images, making the paper's recovery
    argument for P0 (§3) executable. *)

type key = History.Action.key
type value = History.Action.value
type txn = History.Action.txn

type record =
  | Begin of txn
  | Update of { t : txn; k : key; before : value option; after : value option }
  | Commit of txn
  | Abort of txn

val pp_record : record Fmt.t

type t

val create : unit -> t
val append : t -> record -> unit
val records : t -> record list
(** In append order. *)

val length : t -> int
val committed : t -> txn list
val aborted : t -> txn list

val losers : t -> txn list
(** Transactions with a [Begin] but no terminal record — in-flight at the
    crash. *)

val pp : t Fmt.t
