(* First-class predicates — the paper's <search condition>s (§2.3).

   A predicate covers all data items satisfying it, including phantom items
   not currently in the database. Because the store maps keys to integer
   values, a predicate is a decidable test over (key, value); a row that is
   absent never satisfies a predicate, and a write *affects* a predicate if
   membership holds or differs on either side of the write — exactly the
   paper's "any tuples an INSERT, UPDATE, or DELETE would cause to satisfy
   the predicate". *)

type key = History.Action.key
type value = History.Action.value

type t = {
  name : string;
  satisfies : key -> value -> bool;
  range : (key * key option) option;
      (* key range [lo, hi) when the predicate is one; [None] upper bound
         means unbounded. Enables next-key locking as an alternative
         phantom guard. *)
}

let make ~name satisfies = { name; satisfies; range = None }
let name p = p.name
let range_bounds p = p.range

let matches_row p k = function
  | None -> false (* absent rows satisfy no predicate *)
  | Some v -> p.satisfies k v

(* Does a write of [k] taking the row from [before] to [after] affect the
   predicate? (§2.3: the lock covers present and phantom data items.) *)
let affected_by_write p k ~before ~after =
  matches_row p k before || matches_row p k after

(* An item lock is a predicate lock naming the specific record (§2.3). *)
let item k =
  { name = "Item(" ^ k ^ ")";
    satisfies = (fun k' _ -> String.equal k k');
    range = Some (k, Some (k ^ "\x00")) }

let all = { name = "All"; satisfies = (fun _ _ -> true); range = None }

(* The next string after [prefix] in lexicographic order, for expressing a
   prefix as the key range [prefix, successor). *)
let prefix_successor prefix =
  let n = String.length prefix in
  let rec bump i =
    if i < 0 then None
    else if prefix.[i] = '\xff' then bump (i - 1)
    else
      Some
        (String.sub prefix 0 i
        ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1)))
  in
  if n = 0 then None else bump (n - 1)

let key_prefix ~name prefix =
  { name;
    satisfies =
      (fun k _ ->
        String.length k >= String.length prefix
        && String.equal (String.sub k 0 (String.length prefix)) prefix);
    range = Some (prefix, prefix_successor prefix) }

(* The key range [lo, hi); [hi = None] means unbounded above. *)
let key_range ~name ~lo ~hi =
  { name;
    satisfies =
      (fun k _ -> lo <= k && match hi with Some hi -> k < hi | None -> true);
    range = Some (lo, hi) }

let key_in ~name keys =
  { name; satisfies = (fun k _ -> List.mem k keys); range = None }

let value_range ~name ~lo ~hi =
  { name; satisfies = (fun _ v -> lo <= v && v <= hi); range = None }

(* Conjunction, for predicates like "employees with positive hours". *)
let conj ~name p q =
  { name; satisfies = (fun k v -> p.satisfies k v && q.satisfies k v);
    range = p.range }

let pp ppf p = Fmt.string ppf p.name
