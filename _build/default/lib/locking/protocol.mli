(** Lock protocols: the rows of the paper's Table 2 (degrees of consistency
    and locking isolation levels in terms of lock scope, mode and
    duration). *)

type duration = No_lock | Short | Long

val pp_duration : duration Fmt.t

type phantom_guard =
  | Predicate_locks  (** the paper's §2.3 predicate locks *)
  | Next_key_locks
      (** ARIES/KVL-style: lock the scanned rows plus the next key beyond
          the range; inserts and deletes lock their gap's next key *)

type t = {
  level : Isolation.Level.t;
  item_read : duration;
  pred_read : duration;
  item_write : duration;  (** [Long] except Degree 0 *)
  cursor_hold : bool;     (** hold read lock on current of cursor (§4.1) *)
  phantom_guard : phantom_guard;
}

val for_level : Isolation.Level.t -> t option
(** [None] for the multiversion levels (Snapshot, Oracle Read
    Consistency). *)

val for_level_exn : Isolation.Level.t -> t
val locking_levels : Isolation.Level.t list

val with_next_key : t -> t
(** The same protocol with next-key locking as its phantom guard. *)

val is_two_phase_well_formed : t -> bool
(** Long, well-formed read and write locks on items and predicates — the
    fundamental serialization theorem's hypothesis. True only for
    SERIALIZABLE (Degree 3). *)

val describe : t -> string * string
(** Table 2's (read-lock column, write-lock column) prose. *)

val pp : t Fmt.t
