(** Lock-discipline analysis over the lock table's audit log: the paper's
    §2.3 two-phase property, checked against what the engine actually
    did. *)

type txn = History.Action.txn

val events_of : txn -> Lock_table.event list -> Lock_table.event list
(** One transaction's grants and releases, oldest first. *)

val two_phase : Lock_table.event list -> txn -> bool
(** "Does not request any new locks after releasing some lock." *)

val lock_point : Lock_table.event list -> txn -> int option
(** Index of the transaction's last grant within its own events — where a
    two-phase transaction logically serializes. *)

val summary : Lock_table.event list -> txn -> int * int
(** (locks granted, locks released). *)

val all_two_phase : Lock_table.event list -> bool
