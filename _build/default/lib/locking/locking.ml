(* Umbrella module of the [locking] library: the lock table (Share and
   Exclusive locks on items and predicates, §2.3) and the lock protocols
   of Table 2. *)

module Lock_table = Lock_table
module Protocol = Protocol
module Discipline = Discipline
