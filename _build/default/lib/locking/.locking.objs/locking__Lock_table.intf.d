lib/locking/lock_table.mli: Fmt History Storage
