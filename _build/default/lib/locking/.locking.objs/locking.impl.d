lib/locking/locking.ml: Discipline Lock_table Protocol
