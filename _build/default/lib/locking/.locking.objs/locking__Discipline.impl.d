lib/locking/discipline.ml: History List Lock_table
