lib/locking/protocol.ml: Fmt Isolation List
