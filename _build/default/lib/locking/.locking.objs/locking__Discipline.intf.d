lib/locking/discipline.mli: History Lock_table
