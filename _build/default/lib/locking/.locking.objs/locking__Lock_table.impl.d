lib/locking/lock_table.ml: Fmt History List Storage
