lib/locking/protocol.mli: Fmt Isolation
