(* Lock-discipline analysis over the lock table's audit log — the
   paper's §2.3 vocabulary made checkable:

   "A transaction has two-phase writes (reads) if it does not set a new
   Write (Read) lock on a data item after releasing a Write (Read) lock.
   A transaction exhibits two-phase locking if it does not request any
   new locks after releasing some lock."

   The fundamental serialization theorem rests on well-formed two-phase
   behavior; these analyses verify, from the recorded grants and
   releases, that the SERIALIZABLE protocol actually behaves two-phase
   while the weaker protocols (short read locks) do not. Well-formedness
   itself is enforced by the engine's construction: every access acquires
   its lock first. *)

type txn = History.Action.txn

(* A transaction's lock events, oldest first. *)
let events_of owner log =
  List.filter
    (function
      | Lock_table.Acquired a -> a.owner = owner
      | Lock_table.Released r -> r.owner = owner)
    log

(* Two-phase locking: no grant after a release. *)
let two_phase log owner =
  let rec scan released = function
    | [] -> true
    | Lock_table.Acquired _ :: _ when released -> false
    | Lock_table.Acquired _ :: rest -> scan released rest
    | Lock_table.Released _ :: rest -> scan true rest
  in
  scan false (events_of owner log)

(* The lock point: the index (within the transaction's own events) of its
   last grant — where a two-phase transaction logically serializes. *)
let lock_point log owner =
  let rec last i best = function
    | [] -> best
    | Lock_table.Acquired _ :: rest -> last (i + 1) (Some i) rest
    | Lock_table.Released _ :: rest -> last (i + 1) best rest
  in
  last 0 None (events_of owner log)

(* Counts of grants and releases, for reporting. *)
let summary log owner =
  List.fold_left
    (fun (acquired, released) e ->
      match e with
      | Lock_table.Acquired _ -> (acquired + 1, released)
      | Lock_table.Released r -> (acquired, released + r.count))
    (0, 0) (events_of owner log)

(* Every transaction in the log behaved two-phase. *)
let all_two_phase log =
  let owners =
    List.sort_uniq compare
      (List.map
         (function
           | Lock_table.Acquired a -> a.owner
           | Lock_table.Released r -> r.owner)
         log)
  in
  List.for_all (two_phase log) owners
