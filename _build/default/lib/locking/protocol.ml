(* Lock protocols: the rows of the paper's Table 2.

   A protocol fixes, for each class of access, whether a lock is taken and
   for how long it is held. Write locks are always well-formed; only
   Degree 0 releases them before end of transaction ([GLPT] required only
   action atomicity there). Cursor Stability additionally holds the read
   lock on the current item of a cursor until the cursor moves. *)

type duration = No_lock | Short | Long

(* How predicate reads are protected against phantoms: by predicate locks
   (the paper's §2.3 mechanism) or by next-key locks on the scanned rows
   and the gap beyond them (the ARIES/KVL-style mechanism real B-tree
   engines use). *)
type phantom_guard = Predicate_locks | Next_key_locks

let pp_duration ppf = function
  | No_lock -> Fmt.string ppf "none required"
  | Short -> Fmt.string ppf "short duration"
  | Long -> Fmt.string ppf "long duration"

type t = {
  level : Isolation.Level.t;
  item_read : duration;
  pred_read : duration;
  item_write : duration; (* locks on items written; Long except Degree 0 *)
  cursor_hold : bool;    (* hold read lock on current of cursor (§4.1) *)
  phantom_guard : phantom_guard;
}

(* Locking levels of Table 2. Snapshot Isolation and Oracle Read
   Consistency are multiversion mechanisms, not lock protocols. *)
let for_level (level : Isolation.Level.t) =
  match level with
  | Degree_0 ->
    Some { level; item_read = No_lock; pred_read = No_lock;
           item_write = Short; cursor_hold = false; phantom_guard = Predicate_locks }
  | Read_uncommitted ->
    Some { level; item_read = No_lock; pred_read = No_lock;
           item_write = Long; cursor_hold = false; phantom_guard = Predicate_locks }
  | Read_committed ->
    Some { level; item_read = Short; pred_read = Short;
           item_write = Long; cursor_hold = false; phantom_guard = Predicate_locks }
  | Cursor_stability ->
    Some { level; item_read = Short; pred_read = Short;
           item_write = Long; cursor_hold = true; phantom_guard = Predicate_locks }
  | Repeatable_read ->
    Some { level; item_read = Long; pred_read = Short;
           item_write = Long; cursor_hold = false; phantom_guard = Predicate_locks }
  | Serializable ->
    Some { level; item_read = Long; pred_read = Long;
           item_write = Long; cursor_hold = false; phantom_guard = Predicate_locks }
  | Snapshot | Oracle_read_consistency | Serializable_snapshot
  | Timestamp_ordering ->
    None

let for_level_exn level =
  match for_level level with
  | Some p -> p
  | None ->
    invalid_arg
      (Fmt.str "Protocol.for_level_exn: %s is not a locking level"
         (Isolation.Level.name level))

let locking_levels = List.filter (fun l -> for_level l <> None) Isolation.Level.all

(* The same protocol with next-key locking as its phantom guard. *)
let with_next_key p = { p with phantom_guard = Next_key_locks }

(* Is the protocol two-phase and well-formed on both reads and writes —
   i.e. does it guarantee serializability by the fundamental theorem? *)
let is_two_phase_well_formed p =
  p.item_read = Long && p.pred_read = Long && p.item_write = Long

let describe p =
  let read_desc =
    match (p.item_read, p.pred_read, p.cursor_hold) with
    | No_lock, No_lock, _ -> "none required"
    | Short, Short, false -> "well-formed reads, short duration read locks (both)"
    | Short, Short, true ->
      "well-formed reads, read locks held on current of cursor, short \
       duration read predicate locks"
    | Long, Short, _ ->
      "well-formed reads, long duration data-item read locks, short \
       duration read predicate locks"
    | Long, Long, _ -> "well-formed reads, long duration read locks (both)"
    | _ -> Fmt.str "item reads: %a, predicate reads: %a" pp_duration p.item_read
             pp_duration p.pred_read
  in
  let write_desc =
    match p.item_write with
    | Short -> "well-formed writes (short duration write locks)"
    | Long -> "well-formed writes, long duration write locks"
    | No_lock -> "no write locks"
  in
  (read_desc, write_desc)

let pp ppf p =
  let reads, writes = describe p in
  Fmt.pf ppf "%s: reads %s; writes %s" (Isolation.Level.name p.level) reads writes
