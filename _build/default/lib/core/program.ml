(* Transaction programs: the scripted form of the transactions the paper's
   histories interleave. A program is a straight-line sequence of database
   operations; computed values are expressions over the transaction's own
   earlier reads, so a bank transfer reads a balance and writes a function
   of what it read — exactly what makes lost updates and skew observable. *)

type key = History.Action.key
type value = History.Action.value

(* What a transaction has observed so far. Most recent observations
   first. *)
type env = {
  reads : (key * value option) list;
  scans : (string * (key * value) list) list;
}

let empty_env = { reads = []; scans = [] }

let observe_read env k v = { env with reads = (k, v) :: env.reads }
let observe_scan env name rows = { env with scans = (name, rows) :: env.scans }

(* The most recent read of [k]; raises if the program never read it. *)
let read_result env k =
  match List.assoc_opt k env.reads with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Program.read_result: %s was never read" k)

let value_of env k =
  match read_result env k with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Program.value_of: %s read as absent" k)

let value_or env k ~default =
  match List.assoc_opt k env.reads with
  | Some (Some v) -> v
  | Some None | None -> default

let scan_rows env name =
  match List.assoc_opt name env.scans with
  | Some rows -> rows
  | None -> invalid_arg (Fmt.str "Program.scan_rows: %s was never scanned" name)

let scan_count env name = List.length (scan_rows env name)
let scan_sum env name = List.fold_left (fun acc (_, v) -> acc + v) 0 (scan_rows env name)

type expr = env -> value

let const n : expr = fun _ -> n
let read_plus k n : expr = fun env -> value_of env k + n
let read_value k : expr = fun env -> value_of env k

type op =
  | Read of key
  | Write of key * expr
  | Insert of key * expr
  | Delete of key
  | Scan of Storage.Predicate.t
  | Open_cursor of { cursor : string; pred : Storage.Predicate.t; for_update : bool }
  | Fetch of string
  | Cursor_write of string * expr
  | Close_cursor of string
  | Commit
  | Abort

let pp_op ppf = function
  | Read k -> Fmt.pf ppf "read %s" k
  | Write (k, _) -> Fmt.pf ppf "write %s" k
  | Insert (k, _) -> Fmt.pf ppf "insert %s" k
  | Delete k -> Fmt.pf ppf "delete %s" k
  | Scan p -> Fmt.pf ppf "scan %a" Storage.Predicate.pp p
  | Open_cursor { cursor; pred; for_update } ->
    Fmt.pf ppf "open cursor %s on %a%s" cursor Storage.Predicate.pp pred
      (if for_update then " for update" else "")
  | Fetch c -> Fmt.pf ppf "fetch %s" c
  | Cursor_write (c, _) -> Fmt.pf ppf "update current of cursor %s" c
  | Close_cursor c -> Fmt.pf ppf "close cursor %s" c
  | Commit -> Fmt.string ppf "commit"
  | Abort -> Fmt.string ppf "abort"

type t = {
  name : string;
  ops : op list;
}

let make ?(name = "txn") ops = { name; ops }

let length p = List.length p.ops

(* Ensure the program terminates explicitly; used by the executor to
   auto-commit programs that fall off the end. *)
let terminated p =
  match List.rev p.ops with
  | (Commit | Abort) :: _ -> true
  | _ -> false

let pp ppf p =
  Fmt.pf ppf "%s: %a" p.name Fmt.(list ~sep:(any "; ") pp_op) p.ops
