(* Deterministic scheduler: drives a set of transaction programs through
   the engine under an explicit interleaving, with waits-for deadlock
   detection.

   A schedule is a sequence of transaction ids; each entry is one attempt
   to execute that transaction's next operation. Attempts that block do
   not consume the operation — the blocked transaction waits and the
   attempt records a waits-for edge; a cycle aborts the youngest
   transaction in it. After the explicit schedule is exhausted the
   executor drains round-robin until every transaction terminates, so
   every schedule yields a complete history. Everything is deterministic:
   the same programs, levels and schedule always produce the same
   history. *)

module Action = History.Action
module Level = Isolation.Level
module Digraph = History.Digraph

type txn = Action.txn

type status = Committed | Aborted of Engine.abort_reason

let pp_status ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%a)" Engine.pp_abort_reason r

type config = {
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  levels : Level.t list; (* one per program; transaction ids are 1-based *)
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  read_only : bool list; (* per program; empty means none *)
}

let config ?(initial = []) ?(predicates = []) ?(first_updater_wins = false)
    ?(next_key_locking = false) ?(update_locks = false) ?(read_only = [])
    levels =
  { initial; predicates; levels; first_updater_wins; next_key_locking;
    update_locks; read_only }

type result = {
  history : History.t;
  final : (Action.key * Action.value) list;
  statuses : (txn * status) list;
  envs : (txn * Program.env) list;
  deadlock_aborts : int;
  blocked_attempts : int;
}

let committed_txns r =
  List.filter_map (fun (t, s) -> if s = Committed then Some t else None) r.statuses

exception Stuck of string

let run cfg programs ~schedule =
  let n = List.length programs in
  if List.length cfg.levels <> n then
    invalid_arg "Executor.run: one isolation level per program required";
  let levels = Array.of_list cfg.levels in
  let ops =
    Array.of_list
      (List.map
         (fun p ->
           let base = p.Program.ops in
           Array.of_list
             (if Program.terminated p then base else base @ [ Program.Commit ]))
         programs)
  in
  let engine =
    Engine.create_for_levels ~initial:cfg.initial ~predicates:cfg.predicates
      ~first_updater_wins:cfg.first_updater_wins
      ~next_key_locking:cfg.next_key_locking ~update_locks:cfg.update_locks
      ~levels:cfg.levels ()
  in
  let pc = Array.make n 0 in
  let begun = Array.make n false in
  let waits : (txn, txn list) Hashtbl.t = Hashtbl.create 8 in
  let deadlock_aborts = ref 0 in
  let blocked_attempts = ref 0 in
  let finished tid =
    pc.(tid - 1) >= Array.length ops.(tid - 1)
    || (begun.(tid - 1) && Engine.status engine tid <> Engine.Active)
  in
  let waits_cycle () =
    let g = Digraph.create () in
    Hashtbl.iter
      (fun t holders -> List.iter (fun h -> Digraph.add_edge g t h) holders)
      waits;
    Digraph.find_cycle g
  in
  (* One attempt at [tid]'s next operation. Returns true if the engine
     state changed (progress was made somewhere, including via a deadlock
     abort). *)
  let attempt tid =
    if tid < 1 || tid > n then
      invalid_arg (Fmt.str "Executor.run: schedule names unknown transaction %d" tid);
    if finished tid then false
    else begin
      if not begun.(tid - 1) then begin
        let read_only =
          match List.nth_opt cfg.read_only (tid - 1) with
          | Some flag -> flag
          | None -> false
        in
        Engine.begin_txn ~read_only engine tid ~level:levels.(tid - 1);
        begun.(tid - 1) <- true
      end;
      match Engine.step engine tid ops.(tid - 1).(pc.(tid - 1)) with
      | Engine.Progress ->
        Hashtbl.remove waits tid;
        pc.(tid - 1) <- pc.(tid - 1) + 1;
        true
      | Engine.Finished ->
        Hashtbl.remove waits tid;
        pc.(tid - 1) <- Array.length ops.(tid - 1);
        true
      | Engine.Blocked holders -> (
        incr blocked_attempts;
        Hashtbl.replace waits tid holders;
        match waits_cycle () with
        | None -> false
        | Some cycle ->
          (* Abort the youngest transaction in the cycle. *)
          let victim = List.fold_left max min_int cycle in
          Engine.abort_txn engine victim;
          incr deadlock_aborts;
          Hashtbl.remove waits victim;
          true)
    end
  in
  List.iter (fun tid -> ignore (attempt tid)) schedule;
  (* Drain: round-robin until every transaction terminates. Each full pass
     must make progress — if none does, every active transaction waits on
     an active transaction and the per-block cycle check would have fired,
     so a stuck pass indicates an engine bug. *)
  let all_tids = List.init n (fun i -> i + 1) in
  let rec drain guard =
    if List.exists (fun tid -> not (finished tid)) all_tids then begin
      if guard > 100_000 then raise (Stuck "Executor.run: drain did not converge");
      let progressed =
        List.fold_left (fun acc tid -> attempt tid || acc) false all_tids
      in
      if not progressed then
        raise (Stuck "Executor.run: no progress and no deadlock cycle");
      drain (guard + 1)
    end
  in
  drain 0;
  let statuses =
    List.map
      (fun tid ->
        match Engine.status engine tid with
        | Engine.Committed -> (tid, Committed)
        | Engine.Aborted r -> (tid, Aborted r)
        | Engine.Active -> raise (Stuck "Executor.run: active transaction after drain"))
      all_tids
  in
  {
    history = Engine.trace engine;
    final = Engine.final_state engine;
    statuses;
    envs = List.map (fun tid -> (tid, Engine.env engine tid)) all_tids;
    deadlock_aborts = !deadlock_aborts;
    blocked_attempts = !blocked_attempts;
  }

(* Run under the trivial serial schedule: T1 to completion, then T2, ... *)
let run_serial cfg programs =
  let schedule =
    List.concat
      (List.mapi
         (fun i p -> List.init (Program.length p + 1) (fun _ -> i + 1))
         programs)
  in
  run cfg programs ~schedule
