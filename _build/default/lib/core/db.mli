(** Session-oriented database API — the library's face for applications.

    A [Db.t] owns one engine (locking or multiversion); sessions are
    transactions begun at a chosen isolation level and driven by direct
    calls. There is no hidden concurrency: an operation either succeeds,
    reports the transactions it is blocked behind (the caller decides what
    to run next and then retries), or reports that the transaction was
    rolled back (deadlock victim, First-Committer-Wins, ...). *)

module Action = History.Action
module Level = Isolation.Level

type key = Action.key
type value = Action.value
type t

val open_db :
  ?initial:(key * value) list ->
  ?predicates:Storage.Predicate.t list ->
  ?multiversion:bool ->
  ?first_updater_wins:bool ->
  unit ->
  t
(** [multiversion] selects the engine family: locking (Table 2 levels) or
    multiversion (Snapshot, Oracle Read Consistency). *)

type tx

val begin_tx : ?read_only:bool -> t -> level:Level.t -> tx
(** [read_only] transactions read the committed snapshot as of begin —
    lock-free even on a locking database (the Multiversion Mixed Method)
    — and may not write. *)

val begin_tx_at : t -> level:Level.t -> start_ts:int -> tx
(** Time travel (§4.2): multiversion databases only. *)

val tid : tx -> Action.txn

type 'a outcome =
  | Ok of 'a
  | Blocked of Action.txn list
      (** blocked behind these transactions; retry after they finish *)
  | Rolled_back of Engine.abort_reason

val read : tx -> key -> value option outcome
val write : tx -> key -> value -> unit outcome
val insert : tx -> key -> value -> unit outcome
val delete : tx -> key -> unit outcome
val scan : tx -> Storage.Predicate.t -> (key * value) list outcome
val open_cursor : ?cursor:string -> ?for_update:bool -> tx -> Storage.Predicate.t -> unit outcome

val fetch : ?cursor:string -> tx -> (key * value) option outcome
(** [Ok None] when the cursor has moved past its last row. *)

val cursor_write : ?cursor:string -> tx -> value -> unit outcome
val close_cursor : ?cursor:string -> tx -> unit outcome
val commit : tx -> unit outcome
val abort : tx -> unit outcome
val status : tx -> [ `Active | `Committed | `Aborted of Engine.abort_reason ]

val history : t -> History.t
(** The history executed so far, in the paper's notation. *)

val state : t -> (key * value) list
val wal : t -> Storage.Wal.t option
val version_store : t -> Storage.Version_store.t option
