(* Umbrella module of the [core] library: transaction programs, the
   locking and multiversion engines, the unified engine, the deterministic
   executor, and the session-oriented Db API. *)

module Program = Program
module Lock_engine = Lock_engine
module Mv_engine = Mv_engine
module To_engine = To_engine
module Engine = Engine
module Executor = Executor
module Db = Db
