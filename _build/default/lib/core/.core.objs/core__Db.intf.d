lib/core/db.mli: Engine History Isolation Storage
