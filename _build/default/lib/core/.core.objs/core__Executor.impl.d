lib/core/executor.ml: Array Engine Fmt Hashtbl History Isolation List Program Storage
