lib/core/engine.mli: Fmt History Isolation Locking Program Storage
