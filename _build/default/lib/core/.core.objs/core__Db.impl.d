lib/core/db.ml: Engine History Isolation List Program Storage
