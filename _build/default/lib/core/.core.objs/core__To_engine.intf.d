lib/core/to_engine.mli: History Program Storage
