lib/core/lock_engine.ml: Fmt Hashtbl History List Locking Option Program Storage
