lib/core/mv_engine.ml: Fmt Hashtbl History List Locking Program Storage
