lib/core/mv_engine.mli: History Program Storage
