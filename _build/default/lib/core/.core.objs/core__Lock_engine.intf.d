lib/core/lock_engine.mli: History Isolation Locking Program Storage
