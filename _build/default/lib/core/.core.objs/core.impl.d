lib/core/core.ml: Db Engine Executor Lock_engine Mv_engine Program To_engine
