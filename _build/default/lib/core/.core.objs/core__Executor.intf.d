lib/core/executor.mli: Engine Fmt History Isolation Program Storage
