lib/core/program.mli: Fmt History Storage
