lib/core/engine.ml: Fmt History Isolation List Lock_engine Mv_engine Storage To_engine
