lib/core/to_engine.ml: Fmt Hashtbl History List Program Storage
