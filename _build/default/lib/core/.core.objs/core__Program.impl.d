lib/core/program.ml: Fmt History List Storage
