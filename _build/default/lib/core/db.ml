(* Session-oriented database API — the face of the library for
   applications and the examples. A [Db.t] owns one engine; sessions are
   transactions begun at a chosen isolation level and driven by direct
   calls. Operations either succeed, report the transactions they are
   blocked behind (the caller decides what to run next — there is no
   hidden concurrency), or report that the transaction was aborted (e.g.
   by First-Committer-Wins at commit). *)

module Action = History.Action
module Level = Isolation.Level
module Predicate = Storage.Predicate

type key = Action.key
type value = Action.value

type t = {
  engine : Engine.t;
  mutable next_tid : int;
}

let open_db ?(initial = []) ?(predicates = []) ?(multiversion = false)
    ?(first_updater_wins = false) () =
  let family = if multiversion then `Mv else `Locking in
  { engine = Engine.create ~initial ~predicates ~first_updater_wins ~family ();
    next_tid = 0 }

type tx = { db : t; tid : Action.txn }

let begin_tx ?read_only db ~level =
  db.next_tid <- db.next_tid + 1;
  Engine.begin_txn ?read_only db.engine db.next_tid ~level;
  { db; tid = db.next_tid }

let begin_tx_at db ~level ~start_ts =
  db.next_tid <- db.next_tid + 1;
  Engine.begin_txn_at db.engine db.next_tid ~level ~start_ts;
  { db; tid = db.next_tid }

let tid tx = tx.tid

type 'a outcome =
  | Ok of 'a
  | Blocked of Action.txn list
  | Rolled_back of Engine.abort_reason

let run_op tx op ~extract =
  match Engine.step tx.db.engine tx.tid op with
  | Engine.Progress -> (
    match Engine.status tx.db.engine tx.tid with
    | Engine.Aborted r -> Rolled_back r
    | Engine.Active | Engine.Committed ->
      Ok (extract (Engine.env tx.db.engine tx.tid)))
  | Engine.Blocked holders -> Blocked holders
  | Engine.Finished -> (
    match Engine.status tx.db.engine tx.tid with
    | Engine.Aborted r -> Rolled_back r
    | Engine.Committed | Engine.Active -> Rolled_back Engine.User_abort)

let read tx k = run_op tx (Program.Read k) ~extract:(fun env -> Program.read_result env k)
let write tx k v = run_op tx (Program.Write (k, Program.const v)) ~extract:ignore
let insert tx k v = run_op tx (Program.Insert (k, Program.const v)) ~extract:ignore
let delete tx k = run_op tx (Program.Delete k) ~extract:ignore

let scan tx p =
  run_op tx (Program.Scan p) ~extract:(fun env ->
      Program.scan_rows env (Predicate.name p))

let open_cursor ?(cursor = "c0") ?(for_update = false) tx p =
  run_op tx (Program.Open_cursor { cursor; pred = p; for_update }) ~extract:ignore

(* Fetch returns the fetched row, or [None] when the cursor moved past the
   end (in which case no read is observed). *)
let fetch ?(cursor = "c0") tx =
  let reads_before =
    match Engine.status tx.db.engine tx.tid with
    | Engine.Active -> List.length (Engine.env tx.db.engine tx.tid).Program.reads
    | Engine.Committed | Engine.Aborted _ -> 0
  in
  run_op tx (Program.Fetch cursor) ~extract:(fun env ->
      if List.length env.Program.reads > reads_before then
        match env.Program.reads with
        | (k, Some v) :: _ -> Some (k, v)
        | (_, None) :: _ | [] -> None
      else None)

let cursor_write ?(cursor = "c0") tx v =
  run_op tx (Program.Cursor_write (cursor, Program.const v)) ~extract:ignore

let close_cursor ?(cursor = "c0") tx =
  run_op tx (Program.Close_cursor cursor) ~extract:ignore
let commit tx = run_op tx Program.Commit ~extract:ignore

(* An explicit rollback succeeding is an [Ok], not a failure report. *)
let abort tx =
  match Engine.step tx.db.engine tx.tid Program.Abort with
  | Engine.Progress -> Ok ()
  | Engine.Blocked holders -> Blocked holders
  | Engine.Finished -> Rolled_back Engine.User_abort

let status tx =
  match Engine.status tx.db.engine tx.tid with
  | Engine.Active -> `Active
  | Engine.Committed -> `Committed
  | Engine.Aborted r -> `Aborted r

let history db = Engine.trace db.engine
let state db = Engine.final_state db.engine
let wal db = Engine.wal db.engine
let version_store db = Engine.version_store db.engine
