(** Deterministic scheduler over the engine.

    A schedule is a sequence of transaction ids; each entry is one attempt
    at that transaction's next operation. Blocked attempts do not consume
    the operation; waits-for cycles abort the youngest transaction in the
    cycle. After the explicit schedule, a round-robin drain completes
    every transaction, so every schedule yields a complete history. The
    same inputs always produce the same history. *)

module Action = History.Action
module Level = Isolation.Level

type txn = Action.txn

type status = Committed | Aborted of Engine.abort_reason

val pp_status : status Fmt.t

type config = {
  initial : (Action.key * Action.value) list;
  predicates : Storage.Predicate.t list;
  levels : Level.t list;  (** one per program; transaction ids are 1-based *)
  first_updater_wins : bool;
  next_key_locking : bool;
  update_locks : bool;
  read_only : bool list;  (** per program; missing entries default to false *)
}

val config :
  ?initial:(Action.key * Action.value) list ->
  ?predicates:Storage.Predicate.t list ->
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?read_only:bool list ->
  Level.t list ->
  config

type result = {
  history : History.t;
  final : (Action.key * Action.value) list;
  statuses : (txn * status) list;
  envs : (txn * Program.env) list;
  deadlock_aborts : int;
  blocked_attempts : int;
}

val committed_txns : result -> txn list

exception Stuck of string
(** Raised only on engine bugs: an execution that can make no progress
    without a waits-for cycle. *)

val run : config -> Program.t list -> schedule:txn list -> result

val run_serial : config -> Program.t list -> result
(** The trivial serial schedule: each program runs to completion in
    turn. *)
