(** Transaction programs: scripted transactions whose interleavings the
    engines execute. Computed values are expressions over the
    transaction's own earlier reads, which is what makes lost updates and
    skew observable. *)

type key = History.Action.key
type value = History.Action.value

(** What a transaction has observed so far (most recent first). *)
type env = {
  reads : (key * value option) list;
  scans : (string * (key * value) list) list;
}

val empty_env : env
val observe_read : env -> key -> value option -> env
val observe_scan : env -> string -> (key * value) list -> env

val read_result : env -> key -> value option
(** Most recent read of the key. @raise Invalid_argument if never read. *)

val value_of : env -> key -> value
(** @raise Invalid_argument if never read or read as absent. *)

val value_or : env -> key -> default:value -> value

val scan_rows : env -> string -> (key * value) list
(** Most recent scan of the named predicate.
    @raise Invalid_argument if never scanned. *)

val scan_count : env -> string -> int
val scan_sum : env -> string -> value

type expr = env -> value

val const : value -> expr
val read_plus : key -> value -> expr
(** The value last read for the key, plus a constant — bank-transfer
    arithmetic. *)

val read_value : key -> expr

type op =
  | Read of key
  | Write of key * expr
  | Insert of key * expr
  | Delete of key
  | Scan of Storage.Predicate.t
  | Open_cursor of { cursor : string; pred : Storage.Predicate.t; for_update : bool }
      (** open a named cursor; [for_update] makes fetches take Write locks
          under Oracle Read Consistency (updatable cursors), and is ignored
          by the locking engine, whose cursor locking is fixed by the
          protocol *)
  | Fetch of string         (** advance the cursor and read (the paper's rc) *)
  | Cursor_write of string * expr  (** update the current row (the paper's wc) *)
  | Close_cursor of string
  | Commit
  | Abort

val pp_op : op Fmt.t

type t = { name : string; ops : op list }

val make : ?name:string -> op list -> t
val length : t -> int

val terminated : t -> bool
(** Does the program end in an explicit Commit or Abort? *)

val pp : t Fmt.t
