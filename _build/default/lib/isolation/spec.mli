(** The paper's defining matrices as data: Table 1 (original ANSI levels vs
    the three original phenomena), Table 3 (proposed levels vs P0–P3) and
    Table 4 (isolation types vs the eight phenomena), plus extension rows
    for Degree 0 and Oracle Read Consistency from the paper's prose. *)

type possibility = Not_possible | Sometimes_possible | Possible

val pp_possibility : possibility Fmt.t

val rank : possibility -> int
(** 0 for Not Possible, 1 for Sometimes, 2 for Possible: the lattice's
    per-coordinate weakness order. *)

(** {1 Table 1 — the original ANSI SQL levels} *)

type ansi_level =
  | Ansi_read_uncommitted
  | Ansi_read_committed
  | Ansi_repeatable_read
  | Anomaly_serializable

val ansi_levels : ansi_level list
val ansi_level_name : ansi_level -> string
val table1_columns : Phenomena.Phenomenon.t list

val table1 : ansi_level -> Phenomena.Phenomenon.t -> possibility
(** @raise Invalid_argument outside the P1/P2/P3 columns. *)

val ansi_forbidden : ansi_level -> Phenomena.Phenomenon.t list
(** The strict anomalies each ANSI level forbids — the under-constrained
    reading the paper attacks with H1–H3. *)

(** {1 Table 3 — proposed phenomena-based levels} *)

val table3_rows : Level.t list
val table3_columns : Phenomena.Phenomenon.t list

val table3 : Level.t -> Phenomena.Phenomenon.t -> possibility
(** @raise Invalid_argument outside Table 3's rows/columns. *)

(** {1 Table 4 — isolation types vs the eight phenomena} *)

val table4 : Level.t -> Phenomena.Phenomenon.t -> possibility
(** Defined on every level and every phenomenon (strict anomalies inherit
    from their broad counterpart, except Snapshot precludes A1–A3 outright
    per Remark 10). *)

val table4_matrix :
  unit -> (Level.t * (Phenomena.Phenomenon.t * possibility) list) list

val forbidden : Level.t -> Phenomena.Phenomenon.t list
(** Phenomena the level must never exhibit (its Not-Possible cells). *)
