lib/isolation/level.mli: Fmt
