lib/isolation/isolation.ml: Lattice Level Spec
