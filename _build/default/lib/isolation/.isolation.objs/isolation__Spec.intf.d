lib/isolation/spec.mli: Fmt Level Phenomena
