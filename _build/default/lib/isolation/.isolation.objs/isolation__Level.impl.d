lib/isolation/level.ml: Fmt String
