lib/isolation/spec.ml: Fmt Level List Phenomena
