lib/isolation/lattice.mli: Fmt Level Phenomena
