lib/isolation/lattice.ml: Buffer Fmt Level List Phenomena Spec String
