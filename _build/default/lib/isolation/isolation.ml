(* Umbrella module of the [isolation] library: the paper's isolation
   levels, its defining matrices (Tables 1, 3, 4) and the strength
   hierarchy (Figure 2). *)

module Level = Level
module Spec = Spec
module Lattice = Lattice
