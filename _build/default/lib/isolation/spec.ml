(* The paper's defining matrices, as data.

   Table 1: the original ANSI SQL levels in terms of the three original
   phenomena. Table 3: the proposed levels in terms of P0-P3. Table 4: the
   full characterization of isolation types by the eight phenomena. These
   are the paper's claimed ground truth; the simulator regenerates them
   empirically and the benches diff the two. *)

type possibility = Not_possible | Sometimes_possible | Possible

let pp_possibility ppf = function
  | Not_possible -> Fmt.string ppf "Not Possible"
  | Sometimes_possible -> Fmt.string ppf "Sometimes Possible"
  | Possible -> Fmt.string ppf "Possible"

(* Strictness rank used by the lattice: a level permitting a phenomenon in
   more circumstances is weaker on that coordinate. *)
let rank = function Not_possible -> 0 | Sometimes_possible -> 1 | Possible -> 2

(* ANSI SQL isolation levels of Table 1, defined only by the three original
   phenomena (and lacking P0 — the paper's Remark 3 complaint). *)
type ansi_level =
  | Ansi_read_uncommitted
  | Ansi_read_committed
  | Ansi_repeatable_read
  | Anomaly_serializable

let ansi_levels =
  [ Ansi_read_uncommitted; Ansi_read_committed; Ansi_repeatable_read;
    Anomaly_serializable ]

let ansi_level_name = function
  | Ansi_read_uncommitted -> "ANSI READ UNCOMMITTED"
  | Ansi_read_committed -> "ANSI READ COMMITTED"
  | Ansi_repeatable_read -> "ANSI REPEATABLE READ"
  | Anomaly_serializable -> "ANOMALY SERIALIZABLE"

let table1_columns = Phenomena.Phenomenon.[ P1; P2; P3 ]

let table1 level (p : Phenomena.Phenomenon.t) =
  match (level, p) with
  | Ansi_read_uncommitted, (P1 | P2 | P3) -> Possible
  | Ansi_read_committed, P1 -> Not_possible
  | Ansi_read_committed, (P2 | P3) -> Possible
  | Ansi_repeatable_read, (P1 | P2) -> Not_possible
  | Ansi_repeatable_read, P3 -> Possible
  | Anomaly_serializable, (P1 | P2 | P3) -> Not_possible
  | _ -> invalid_arg "Spec.table1: only P1, P2, P3 are columns of Table 1"

let table3_rows =
  Level.[ Read_uncommitted; Read_committed; Repeatable_read; Serializable ]

let table3_columns = Phenomena.Phenomenon.[ P0; P1; P2; P3 ]

let table3 (level : Level.t) (p : Phenomena.Phenomenon.t) =
  match (level, p) with
  | (Read_uncommitted | Read_committed | Repeatable_read | Serializable), P0 ->
    Not_possible
  | Read_uncommitted, (P1 | P2 | P3) -> Possible
  | Read_committed, P1 -> Not_possible
  | Read_committed, (P2 | P3) -> Possible
  | Repeatable_read, (P1 | P2) -> Not_possible
  | Repeatable_read, P3 -> Possible
  | Serializable, (P1 | P2 | P3) -> Not_possible
  | _ -> invalid_arg "Spec.table3: level or phenomenon outside Table 3"

(* Table 4: isolation types characterized by the possible anomalies.
   Oracle Read Consistency and Degree 0 are extension rows from the
   paper's prose (§4.3 and [GLPT]). The strict anomalies A1-A3 inherit
   from the broad phenomenon of the same number, except that Snapshot
   Isolation precludes A1-A3 outright (Remark 10) while sometimes
   allowing P3. *)
let rec table4 (level : Level.t) (p : Phenomena.Phenomenon.t) =
  match (level, p) with
  (* Degree 0 provides only action atomicity: everything is possible,
     including dirty writes. *)
  | Degree_0, _ -> Possible
  (* Serializable SI validates its read set at commit: nothing at all is
     possible (extension row; not in the paper). *)
  | (Serializable_snapshot | Timestamp_ordering), _ -> Not_possible
  (* P0 is precluded at every other level (Remark 3). *)
  | _, P0 -> Not_possible
  | Read_uncommitted, (P1 | P4C | P4 | P2 | P3 | A5A | A5B) -> Possible
  | Read_committed, P1 -> Not_possible
  | Read_committed, (P4C | P4 | P2 | P3 | A5A | A5B) -> Possible
  | Cursor_stability, (P1 | P4C) -> Not_possible
  | Cursor_stability, (P4 | P2) -> Sometimes_possible
  | Cursor_stability, (P3 | A5A) -> Possible
  | Cursor_stability, A5B -> Sometimes_possible
  | Repeatable_read, (P1 | P4C | P4 | P2 | A5A | A5B) -> Not_possible
  | Repeatable_read, P3 -> Possible
  | Snapshot, (P1 | P4C | P4 | P2 | A5A) -> Not_possible
  | Snapshot, P3 -> Sometimes_possible
  | Snapshot, A5B -> Possible
  | Snapshot, (A1 | A2 | A3) -> Not_possible
  | Serializable, (P1 | P4C | P4 | P2 | P3 | A5A | A5B) -> Not_possible
  | Oracle_read_consistency, (P1 | P4C) -> Not_possible
  | Oracle_read_consistency, (P4 | P2 | P3 | A5A | A5B) -> Possible
  | level, A1 -> table4 level Phenomena.Phenomenon.P1
  | level, A2 -> table4 level Phenomena.Phenomenon.P2
  | level, A3 -> table4 level Phenomena.Phenomenon.P3

let table4_matrix () =
  List.map
    (fun level ->
      (level, List.map (fun p -> (p, table4 level p)) Phenomena.Phenomenon.table4))
    Level.table4_rows

(* Phenomena a level must never exhibit: the Not_possible cells. *)
let forbidden level =
  List.filter
    (fun p -> table4 level p = Not_possible)
    Phenomena.Phenomenon.all

(* ANSI Table-1 levels forbid only the strict anomalies (this is the
   paper's reading in Section 3 when it exhibits H1-H3). *)
let ansi_forbidden = function
  | Ansi_read_uncommitted -> []
  | Ansi_read_committed -> [ Phenomena.Phenomenon.A1 ]
  | Ansi_repeatable_read -> Phenomena.Phenomenon.[ A1; A2 ]
  | Anomaly_serializable -> Phenomena.Phenomenon.[ A1; A2; A3 ]
