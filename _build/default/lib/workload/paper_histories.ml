(* The paper's example histories, transcribed verbatim from the text, with
   the phenomena the paper says they do and do not exhibit. Tests and the
   Table-1 bench replay these through the detectors. *)

module P = Phenomena.Phenomenon

type t = {
  name : string;
  text : string; (* the paper's notation, as printed *)
  history : History.t;
  exhibits : P.t list;     (* phenomena the paper says occur *)
  avoids : P.t list;       (* phenomena the paper stresses do NOT occur *)
  serializable : bool;
  section : string;
}

let make name ~text ~exhibits ~avoids ~serializable ~section =
  { name; text; history = History.of_string text; exhibits; avoids;
    serializable; section }

(* H1: inconsistent analysis — violates P1 but none of A1, A2, A3 (§3). *)
let h1 =
  make "H1"
    ~text:"r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1"
    ~exhibits:[ P.P1 ]
    ~avoids:[ P.A1; P.A2; P.A3 ]
    ~serializable:false ~section:"3"

(* H2: inconsistent analysis without dirty reads — violates P2, not A2. *)
let h2 =
  make "H2"
    ~text:"r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1"
    ~exhibits:[ P.P2; P.A5A ]
    ~avoids:[ P.P1; P.A2 ]
    ~serializable:false ~section:"3"

(* H3: phantom via a dependent aggregate — violates P3, not A3. *)
let h3 =
  make "H3"
    ~text:"r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1"
    ~exhibits:[ P.P3 ]
    ~avoids:[ P.A3 ]
    ~serializable:false ~section:"3"

(* H4: lost update (§4.1). *)
let h4 =
  make "H4"
    ~text:"r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1"
    ~exhibits:[ P.P4; P.P2 ]
    ~avoids:[ P.P0; P.P1 ]
    ~serializable:false ~section:"4.1"

(* H5: write skew (§4.2). *)
let h5 =
  make "H5"
    ~text:"r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2"
    ~exhibits:[ P.A5B; P.P2 ]
    ~avoids:[ P.P0; P.P1; P.P4 ]
    ~serializable:false ~section:"4.2"

(* H1 under Snapshot Isolation: the same action sequence as a multiversion
   history, whose dataflows are serializable (§4.2). *)
let h1_si =
  make "H1.SI"
    ~text:"r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1"
    ~exhibits:[] ~avoids:[] ~serializable:true ~section:"4.2"

(* The paper's single-valued mapping of H1.SI. *)
let h1_si_sv =
  make "H1.SI.SV"
    ~text:"r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1"
    ~exhibits:[] ~avoids:[ P.P1; P.P2 ] ~serializable:true ~section:"4.2"

(* The §3 dirty-write consistency violation: both transactions write x and
   y; T1's change to y and T2's to x both survive. *)
let p0_example =
  make "P0-example"
    ~text:"w1[x] w2[x] w2[y] c2 w1[y] c1"
    ~exhibits:[ P.P0 ] ~avoids:[] ~serializable:false ~section:"3"

let all = [ h1; h2; h3; h4; h5; h1_si; h1_si_sv; p0_example ]
