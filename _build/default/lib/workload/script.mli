(** A tiny concrete syntax for transaction programs, used by the command
    line: transactions separated by ['|'], statements by [';'] —
    [r x; w y += 40 | r x; r y]. See the implementation header for the
    full statement list. *)

type error = { statement : string; message : string }

val pp_error : error Fmt.t

val parse : string -> (Core.Program.t list, error) result
(** Parse a workload: one program per ['|']-separated section. *)

val predicates_of : Core.Program.t list -> Storage.Predicate.t list
(** The distinct predicates the workload scans (for trace annotation). *)

val parse_initial : string -> ((string * int) list, error) result
(** Parse initial rows: ["x=50, y=50"]. *)
