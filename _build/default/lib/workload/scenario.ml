(* Scenarios: adversarial transaction programs, one or more per
   phenomenon, with a verdict telling whether a given execution actually
   exhibited the anomaly.

   A cell of the paper's Table 4 says whether a phenomenon is possible at
   an isolation level; the simulator decides a cell by running every
   interleaving of the phenomenon's scenarios under that level and asking
   the verdict. "Sometimes Possible" cells are exactly the ones whose
   scenarios disagree — e.g. Cursor Stability prevents lost updates on
   cursor access but not on plain reads. *)

module P = Phenomena.Phenomenon
module Executor = Core.Executor
module Program = Core.Program

type t = {
  id : string;
  phenomenon : P.t;
  description : string;
  initial : (string * int) list;
  predicates : Storage.Predicate.t list;
  programs : Program.t list;
  exhibits : Executor.result -> bool;
}

(* {2 Verdict helpers} *)

let committed r tid = List.assoc_opt tid r.Executor.statuses = Some Executor.Committed

let all_committed r =
  List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses

let env_of r tid =
  match List.assoc_opt tid r.Executor.envs with
  | Some env -> env
  | None -> Program.empty_env

(* All values a transaction read for a key, oldest first. *)
let reads_of r tid k =
  List.rev
    (List.filter_map
       (fun (k', v) -> if k' = k then Some v else None)
       (env_of r tid).Program.reads)

let last_read r tid k =
  match List.rev (reads_of r tid k) with v :: _ -> v | [] -> None

(* All row sets a transaction saw for a named predicate, oldest first. *)
let scans_of r tid name =
  List.rev
    (List.filter_map
       (fun (n, rows) -> if n = name then Some rows else None)
       (env_of r tid).Program.scans)

let final_value r k = List.assoc_opt k r.Executor.final

let final_sum ?(prefix = "") r =
  List.fold_left
    (fun acc (k, v) ->
      if String.length k >= String.length prefix
         && String.sub k 0 (String.length prefix) = prefix
      then acc + v
      else acc)
    0 r.Executor.final

(* Did the transaction observe two different values for the key? *)
let unrepeatable_read r tid k =
  match reads_of r tid k with
  | [] | [ _ ] -> false
  | first :: rest -> List.exists (fun v -> v <> first) rest

(* Did the transaction see two different row sets for the predicate? *)
let unrepeatable_scan r tid name =
  match scans_of r tid name with
  | [] | [ _ ] -> false
  | first :: rest ->
    let keys rows = List.sort compare (List.map fst rows) in
    List.exists (fun rows -> keys rows <> keys first) rest

let pp ppf s =
  Fmt.pf ppf "%s (%s): %s" s.id (P.name s.phenomenon) s.description
