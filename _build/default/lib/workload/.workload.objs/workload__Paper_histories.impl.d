lib/workload/paper_histories.ml: History Phenomena
