lib/workload/catalog.ml: Core Executor List Phenomena Scenario Storage
