lib/workload/generators.ml: Array Core Fun List Printf Random Storage
