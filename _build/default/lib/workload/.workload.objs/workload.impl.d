lib/workload/workload.ml: Catalog Generators Paper_histories Scenario Script
