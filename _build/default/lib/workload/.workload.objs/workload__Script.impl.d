lib/workload/script.ml: Core Fmt List Printf Result Storage String
