lib/workload/script.mli: Core Fmt Storage
