lib/workload/scenario.ml: Core Fmt List Phenomena Storage String
