(* The scenario catalog: executable forms of every anomaly the paper
   names, mostly transcribed from its own example histories (H1-H5, the
   §4.2 job-task phantom, the §3 P0 consistency and recovery arguments).

   Scenario T1 plays the template's T1 role; T2 the interfering role. *)

module P = Phenomena.Phenomenon
module Program = Core.Program
module Predicate = Storage.Predicate

open Scenario

let item k = Predicate.item k

(* A conditional withdrawal: take [amount] from [k] only if the sum of the
   previously read [x] and [y] covers it — the constraint-preserving
   transaction of the paper's H5 discussion. If the condition fails the
   write is a no-op rewrite of the old value. *)
let withdraw_if_covered ~x ~y ~from_ amount env =
  let sum = Program.value_of env x + Program.value_of env y in
  let current = Program.value_of env from_ in
  if sum >= amount then current - amount else current

(* P0 — the paper's two arguments that dirty writes must be outlawed. *)

let p0_cross_write =
  {
    id = "P0/cross-write";
    phenomenon = P.P0;
    description =
      "T1 writes x=1,y=1 and T2 writes x=2,y=2; interleaved dirty writes \
       can violate the constraint x = y (paper §3)";
    initial = [ ("x", 0); ("y", 0) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"ones"
          [ Program.Write ("x", Program.const 1);
            Program.Write ("y", Program.const 1); Program.Commit ];
        Program.make ~name:"twos"
          [ Program.Write ("x", Program.const 2);
            Program.Write ("y", Program.const 2); Program.Commit ];
      ];
    exhibits =
      (fun r -> all_committed r && final_value r "x" <> final_value r "y");
  }

let p0_undo =
  {
    id = "P0/undo";
    phenomenon = P.P0;
    description =
      "w1[x] w2[x] a1: rolling T1 back by restoring its before-image wipes \
       out T2's committed update (paper §3)";
    initial = [ ("x", 0) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"aborter"
          [ Program.Write ("x", Program.const 1); Program.Abort ];
        Program.make ~name:"writer"
          [ Program.Write ("x", Program.const 2); Program.Commit ];
      ];
    exhibits = (fun r -> committed r 2 && final_value r "x" <> Some 2);
  }

(* P1 / A1 — dirty read: T2 reads a value that is later rolled back. *)

let p1_dirty_read =
  {
    id = "P1/dirty-read";
    phenomenon = P.P1;
    description =
      "T1 writes x=10 and aborts; T2 reads x in between and commits having \
       seen a value that never existed";
    initial = [ ("x", 100) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"aborter"
          [ Program.Write ("x", Program.const 10); Program.Abort ];
        Program.make ~name:"reader" [ Program.Read "x"; Program.Commit ];
      ];
    exhibits = (fun r -> committed r 2 && last_read r 2 "x" = Some 10);
  }

let a1 = { p1_dirty_read with id = "A1/dirty-read"; phenomenon = P.A1 }

(* P1 — inconsistent analysis, the paper's H1: T2 need not read dirty data
   that aborts; reading mid-transfer is enough to see a broken invariant. *)

let p1_inconsistent_analysis =
  {
    id = "P1/H1";
    phenomenon = P.P1;
    description =
      "the paper's H1: T1 transfers 40 from x to y; T2 reads both mid-flight \
       and sees total 60 instead of 100";
    initial = [ ("x", 50); ("y", 50) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"transfer"
          [ Program.Read "x"; Program.Write ("x", Program.read_plus "x" (-40));
            Program.Read "y"; Program.Write ("y", Program.read_plus "y" 40);
            Program.Commit ];
        Program.make ~name:"audit"
          [ Program.Read "x"; Program.Read "y"; Program.Commit ];
      ];
    exhibits =
      (fun r ->
        committed r 2
        &&
        match (last_read r 2 "x", last_read r 2 "y") with
        | Some x, Some y -> x + y = 60
        | _ -> false);
  }

(* P2 / A2 — fuzzy read: the same transaction reads an item twice. *)

let p2_reread =
  {
    id = "P2/reread";
    phenomenon = P.P2;
    description =
      "T1 reads x twice; T2 updates x and commits in between; T1's reads \
       disagree";
    initial = [ ("x", 50) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"rereader"
          [ Program.Read "x"; Program.Read "x"; Program.Commit ];
        Program.make ~name:"updater"
          [ Program.Write ("x", Program.const 60); Program.Commit ];
      ];
    exhibits = (fun r -> committed r 1 && unrepeatable_read r 1 "x");
  }

let p2_cursored =
  {
    id = "P2/cursored";
    phenomenon = P.P2;
    description =
      "T1 reads x twice through cursors (the §4.1 stability technique); \
       under Cursor Stability the held cursor blocks the update";
    initial = [ ("x", 50) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"rereader"
          [
            Program.Open_cursor { cursor = "c1"; pred = item "x"; for_update = false };
            Program.Fetch "c1";
            Program.Open_cursor { cursor = "c2"; pred = item "x"; for_update = false };
            Program.Fetch "c2";
            Program.Commit;
          ];
        Program.make ~name:"updater"
          [ Program.Write ("x", Program.const 60); Program.Commit ];
      ];
    exhibits = (fun r -> committed r 1 && unrepeatable_read r 1 "x");
  }

let a2 = { p2_reread with id = "A2/reread"; phenomenon = P.A2 }

(* P3 / A3 — phantoms. *)

let employees = Predicate.key_prefix ~name:"Employees" "emp_"
let tasks = Predicate.key_prefix ~name:"Tasks" "task_"

(* Add a 1-hour task only if the hours just scanned leave room under the
   8-hour constraint; otherwise insert a 0-hour task (a no-op w.r.t. the
   constraint). A serial execution therefore never breaks it. *)
let add_hour_if_room env =
  if Program.scan_sum env "Tasks" <= 7 then 1 else 0

let p3_rescan =
  {
    id = "P3/rescan";
    phenomenon = P.P3;
    description =
      "T1 evaluates the Employees predicate twice; T2 inserts a matching \
       row and commits in between; T1 sees a phantom";
    initial = [ ("emp_a", 1); ("emp_b", 1) ];
    predicates = [ employees ];
    programs =
      [
        Program.make ~name:"scanner"
          [ Program.Scan employees; Program.Scan employees; Program.Commit ];
        Program.make ~name:"hirer"
          [ Program.Insert ("emp_c", Program.const 1); Program.Commit ];
      ];
    exhibits = (fun r -> committed r 1 && unrepeatable_scan r 1 "Employees");
  }

let p3_constraint =
  {
    id = "P3/constraint";
    phenomenon = P.P3;
    description =
      "the §4.2 job-task scenario: both transactions check that total task \
       hours stay <= 8 and each inserts a 1-hour task; disjoint inserts \
       evade First-Committer-Wins and break the constraint";
    initial = [ ("task_a", 3); ("task_b", 4) ];
    predicates = [ tasks ];
    programs =
      [
        Program.make ~name:"adder1"
          [ Program.Scan tasks;
            Program.Insert ("task_x", add_hour_if_room); Program.Commit ];
        Program.make ~name:"adder2"
          [ Program.Scan tasks;
            Program.Insert ("task_y", add_hour_if_room); Program.Commit ];
      ];
    exhibits = (fun r -> all_committed r && final_sum ~prefix:"task_" r > 8);
  }

let a3 = { p3_rescan with id = "A3/rescan"; phenomenon = P.A3 }

(* The paper's H3 verbatim: T1 lists the active employees and then checks
   the company's headcount register z; T2 hires someone and bumps z in
   between. T1 sees a register that disagrees with the list it just
   read — a phantom without any re-evaluation of the predicate. *)
let p3_aggregate =
  {
    id = "P3/H3-aggregate";
    phenomenon = P.P3;
    description =
      "the paper's H3: T1 scans Employees then reads the headcount z; T2        inserts an employee and increments z in between; T1's two facts        disagree";
    initial = [ ("emp_a", 1); ("emp_b", 1); ("z", 2) ];
    predicates = [ employees ];
    programs =
      [
        Program.make ~name:"auditor"
          [ Program.Scan employees; Program.Read "z"; Program.Commit ];
        Program.make ~name:"hirer"
          [ Program.Insert ("emp_c", Program.const 1);
            Program.Write ("z", Program.const 3); Program.Commit ];
      ];
    exhibits =
      (fun r ->
        committed r 1
        &&
        match (scans_of r 1 "Employees", last_read r 1 "z") with
        | [ rows ], Some z -> List.length rows <> z
        | _ -> false);
  }

(* P4 — lost update, the paper's H4, plus the cursor variants of §4.1. *)

let p4_plain =
  {
    id = "P4/plain";
    phenomenon = P.P4;
    description =
      "the paper's H4: both transactions add to x from a prior read; a \
       lost update leaves x at 120 or 130 instead of 150";
    initial = [ ("x", 100) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"add30"
          [ Program.Read "x"; Program.Write ("x", Program.read_plus "x" 30);
            Program.Commit ];
        Program.make ~name:"add20"
          [ Program.Read "x"; Program.Write ("x", Program.read_plus "x" 20);
            Program.Commit ];
      ];
    exhibits =
      (fun r ->
        all_committed r
        && final_value r "x" <> Some 150
        && Phenomena.Detect.occurs P.P4 r.Executor.history);
  }

let cursor_add ~name ~for_update amount =
  Program.make ~name
    [
      Program.Open_cursor { cursor = "c"; pred = item "x"; for_update };
      Program.Fetch "c";
      Program.Cursor_write ("c", Program.read_plus "x" amount);
      Program.Commit;
    ]

let p4_cursor =
  {
    id = "P4/cursor";
    phenomenon = P.P4;
    description =
      "H4 with both transactions accessing x through cursors: Cursor \
       Stability's held cursor locks force a deadlock instead of a loss, \
       plain READ COMMITTED still loses an update";
    initial = [ ("x", 100) ];
    predicates = [];
    programs =
      [ cursor_add ~name:"add30" ~for_update:false 30;
        cursor_add ~name:"add20" ~for_update:false 20 ];
    exhibits =
      (fun r ->
        all_committed r
        && final_value r "x" <> Some 150
        && Phenomena.Detect.occurs P.P4 r.Executor.history);
  }

let p4c =
  {
    id = "P4C/cursor";
    phenomenon = P.P4C;
    description =
      "rc1[x]...w2[x]...wc1[x]: lost cursor update; prevented by Cursor \
       Stability and by Oracle's updatable cursors (for-update fetch locks)";
    initial = [ ("x", 100) ];
    predicates = [];
    programs =
      [
        cursor_add ~name:"add30" ~for_update:true 30;
        Program.make ~name:"add20"
          [ Program.Read "x"; Program.Write ("x", Program.read_plus "x" 20);
            Program.Commit ];
      ];
    exhibits =
      (fun r ->
        all_committed r
        && final_value r "x" <> Some 150
        && Phenomena.Detect.occurs P.P4C r.Executor.history);
  }

(* A5A — read skew, the paper's H2. *)

let a5a =
  {
    id = "A5A/read-skew";
    phenomenon = P.A5A;
    description =
      "the paper's H2: T2 transfers 40 from x to y; T1 reads x before and \
       y after and sees total 140";
    initial = [ ("x", 50); ("y", 50) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"audit"
          [ Program.Read "x"; Program.Read "y"; Program.Commit ];
        Program.make ~name:"transfer"
          [ Program.Read "x"; Program.Read "y";
            Program.Write ("x", Program.read_plus "x" (-40));
            Program.Write ("y", Program.read_plus "y" 40); Program.Commit ];
      ];
    exhibits =
      (fun r ->
        committed r 1
        &&
        match (last_read r 1 "x", last_read r 1 "y") with
        | Some x, Some y -> x + y <> 100
        | _ -> false);
  }

(* A5B — write skew, the paper's H5 with the bank constraint x + y >= 0:
   each transaction withdraws 90 only if the joint balance covers it. *)

let skew_withdraw ~name ~from_ =
  Program.make ~name
    [
      Program.Read "x"; Program.Read "y";
      Program.Write (from_, withdraw_if_covered ~x:"x" ~y:"y" ~from_ 90);
      Program.Commit;
    ]

let a5b_plain =
  {
    id = "A5B/write-skew";
    phenomenon = P.A5B;
    description =
      "the paper's H5: both transactions verify x + y >= 90 and withdraw \
       90 from different accounts; the constraint x + y >= 0 breaks";
    initial = [ ("x", 50); ("y", 50) ];
    predicates = [];
    programs =
      [ skew_withdraw ~name:"withdraw-y" ~from_:"y";
        skew_withdraw ~name:"withdraw-x" ~from_:"x" ];
    exhibits =
      (fun r ->
        all_committed r
        &&
        match (final_value r "x", final_value r "y") with
        | Some x, Some y -> x + y < 0
        | _ -> false);
  }

(* The §4.1 multiple-cursor technique: holding a cursor on each item
   parlays Cursor Stability into repeatable-read-like protection. *)
let skew_withdraw_cursored ~name ~from_ =
  Program.make ~name
    [
      Program.Open_cursor { cursor = "cx"; pred = item "x"; for_update = false };
      Program.Fetch "cx";
      Program.Open_cursor { cursor = "cy"; pred = item "y"; for_update = false };
      Program.Fetch "cy";
      Program.Cursor_write
        ((if from_ = "x" then "cx" else "cy"),
         withdraw_if_covered ~x:"x" ~y:"y" ~from_ 90);
      Program.Commit;
    ]

let a5b_multi_cursor =
  {
    a5b_plain with
    id = "A5B/multi-cursor";
    description =
      "H5 with both items held by cursors (§4.1's multiple-cursor \
       technique): Cursor Stability then behaves like REPEATABLE READ";
    programs =
      [ skew_withdraw_cursored ~name:"withdraw-y" ~from_:"y";
        skew_withdraw_cursored ~name:"withdraw-x" ~from_:"x" ];
  }

(* The read-only transaction anomaly (Fekete, O'Neil & O'Neil 2004) —
   the famous successor result to this paper: under Snapshot Isolation
   even a READ-ONLY transaction can observe a state incompatible with
   every serial order. T2 starts a withdrawal against the joint balance
   (with a penalty if it would go negative), T1 deposits into savings and
   commits, a read-only audit T3 then sees the deposit but not the
   withdrawal — yet the withdrawal commits WITH the penalty computed
   before the deposit. No serial order explains all three views. *)
let a5b_read_only_anomaly =
  {
    id = "A5B/read-only";
    phenomenon = P.A5B;
    description =
      "Fekete/O'Neil/O'Neil read-only transaction anomaly: an audit sees        the deposit but not the withdrawal, while the withdrawal pays a        penalty that the deposit should have averted";
    initial = [ ("x", 0); ("y", 0) ];
    predicates = [];
    programs =
      [
        Program.make ~name:"withdraw"
          [
            Program.Read "x"; Program.Read "y";
            Program.Write
              ( "x",
                fun env ->
                  let x = Program.value_of env "x"
                  and y = Program.value_of env "y" in
                  if x + y - 10 < 0 then x - 11 else x - 10 );
            Program.Commit;
          ];
        Program.make ~name:"deposit"
          [ Program.Read "y"; Program.Write ("y", Program.read_plus "y" 20);
            Program.Commit ];
        Program.make ~name:"audit"
          [ Program.Read "x"; Program.Read "y"; Program.Commit ];
      ];
    exhibits =
      (fun r ->
        all_committed r
        && last_read r 3 "x" = Some 0
        && last_read r 3 "y" = Some 20
        && final_value r "x" = Some (-11));
  }

(* The full catalog, and the scenarios classifying each Table-4 column. *)

let all =
  [
    p0_cross_write; p0_undo; p1_dirty_read; p1_inconsistent_analysis; a1;
    p2_reread; p2_cursored; a2; p3_rescan; p3_constraint; p3_aggregate; a3;
    p4_plain;
    p4_cursor; p4c; a5a; a5b_plain; a5b_multi_cursor; a5b_read_only_anomaly;
  ]

let for_phenomenon p = List.filter (fun s -> s.phenomenon = p) all
