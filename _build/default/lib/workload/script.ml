(* A tiny concrete syntax for transaction programs, so the command line
   (and quick experiments) can express workloads without writing OCaml:

     r x; w y += 40 | r x; r y; commit

   Transactions are separated by '|', statements by ';'. Statements:

     r KEY              read
     w KEY = N          write the constant N
     w KEY += N         read KEY and write KEY + N   (w KEY -= N likewise)
     ins KEY = N        insert
     del KEY            delete
     scan PREFIX*       scan keys with the given prefix ('*' alone = all)
     open CUR PREFIX*   open cursor CUR over the prefix
     openu CUR PREFIX*  the same, for update
     fetch CUR          fetch the cursor's next row
     wc CUR = N         update the current row of CUR
     close CUR          close the cursor
     commit / abort     terminate (programs without one auto-commit)

   Also parses initial-state assignments: "x=50, y=50". *)

module Program = Core.Program
module Predicate = Storage.Predicate

type error = { statement : string; message : string }

let pp_error ppf e = Fmt.pf ppf "in %S: %s" e.statement e.message

let fail statement fmt =
  Fmt.kstr (fun message -> Error { statement; message }) fmt

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let scan_predicate spec =
  if spec = "*" then Predicate.all
  else if String.length spec > 0 && spec.[String.length spec - 1] = '*' then
    let prefix = String.sub spec 0 (String.length spec - 1) in
    Predicate.key_prefix ~name:(prefix ^ "*") prefix
  else Predicate.item spec

let parse_int statement s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> fail statement "expected an integer, found %S" s

(* One statement -> the operations it expands to. *)
let parse_statement statement =
  let ( let* ) = Result.bind in
  match tokens statement with
  | [] -> Ok []
  | [ "r"; k ] -> Ok [ Program.Read k ]
  | [ "w"; k; "="; n ] ->
    let* n = parse_int statement n in
    Ok [ Program.Write (k, Program.const n) ]
  | [ "w"; k; "+="; n ] ->
    let* n = parse_int statement n in
    Ok [ Program.Read k; Program.Write (k, Program.read_plus k n) ]
  | [ "w"; k; "-="; n ] ->
    let* n = parse_int statement n in
    Ok [ Program.Read k; Program.Write (k, Program.read_plus k (-n)) ]
  | [ "ins"; k; "="; n ] ->
    let* n = parse_int statement n in
    Ok [ Program.Insert (k, Program.const n) ]
  | [ "del"; k ] -> Ok [ Program.Delete k ]
  | [ "scan"; spec ] -> Ok [ Program.Scan (scan_predicate spec) ]
  | [ "open"; cur; spec ] ->
    Ok [ Program.Open_cursor { cursor = cur; pred = scan_predicate spec; for_update = false } ]
  | [ "openu"; cur; spec ] ->
    Ok [ Program.Open_cursor { cursor = cur; pred = scan_predicate spec; for_update = true } ]
  | [ "fetch"; cur ] -> Ok [ Program.Fetch cur ]
  | [ "wc"; cur; "="; n ] ->
    let* n = parse_int statement n in
    Ok [ Program.Cursor_write (cur, Program.const n) ]
  | [ "close"; cur ] -> Ok [ Program.Close_cursor cur ]
  | [ "commit" ] -> Ok [ Program.Commit ]
  | [ "abort" ] -> Ok [ Program.Abort ]
  | _ -> fail statement "unrecognized statement"

let parse_program i text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | stmt :: rest -> (
      match parse_statement stmt with
      | Ok ops -> go (List.rev_append ops acc) rest
      | Error _ as e -> e)
  in
  match go [] (String.split_on_char ';' text) with
  | Ok ops -> Ok (Program.make ~name:(Printf.sprintf "T%d" (i + 1)) ops)
  | Error _ as e -> e

(* "r x; w y += 40 | r x; r y" -> the transaction programs. *)
let parse text =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | prog :: rest -> (
      match parse_program i prog with
      | Ok p -> go (i + 1) (p :: acc) rest
      | Error _ as e -> e)
  in
  go 0 [] (String.split_on_char '|' text)

(* The predicates a parsed workload scans, for trace annotation. *)
let predicates_of programs =
  List.concat_map
    (fun p ->
      List.filter_map
        (function
          | Program.Scan pred | Program.Open_cursor { pred; _ } -> Some pred
          | _ -> None)
        p.Program.ops)
    programs
  |> List.fold_left
       (fun acc p ->
         if List.exists (fun q -> Predicate.name q = Predicate.name p) acc then acc
         else p :: acc)
       []
  |> List.rev

(* "x=50, y=50" -> the initial rows. *)
let parse_initial text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | binding :: rest -> (
      let binding = String.trim binding in
      if binding = "" then go acc rest
      else
        match String.split_on_char '=' binding with
        | [ k; v ] -> (
          match int_of_string_opt (String.trim v) with
          | Some n -> go ((String.trim k, n) :: acc) rest
          | None -> fail binding "expected KEY=INT")
        | _ -> fail binding "expected KEY=INT")
  in
  go [] (String.split_on_char ',' text)
