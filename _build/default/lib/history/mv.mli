(** Multiversion (MV) histories (§4.2 of the paper; [BHG] Chapter 5).

    Writes create versions named by their transaction; reads name the
    version observed ([r1[x0=50]]). This module provides the multiversion
    serialization graph test, the two defining rules of Snapshot Isolation,
    and the paper's mapping of SI histories to single-valued histories. *)

val is_mv : Hist.t -> bool
(** Does any action carry an explicit version annotation? *)

val interval : Hist.t -> Action.txn -> (int * int) option
(** [(first action position, termination position)] of a transaction;
    the right end is the history length while the transaction is active. *)

val version_order : Hist.t -> Action.key -> Action.version list
(** Committed writers of a key in commit order, preceded by the initial
    version [0]. *)

val read_version : Hist.t -> int -> Action.read -> Action.version
(** The version a read at the given position observes: its explicit
    annotation, else the reader's own prior write, else the latest version
    committed before the read. *)

val mvsg : Hist.t -> Digraph.t
(** The multiversion serialization graph over committed transactions (node
    0 is the virtual initial transaction). *)

val is_one_copy_serializable : Hist.t -> bool
val mvsg_cycle : Hist.t -> Action.txn list option

val snapshot_reads_respected : Hist.t -> bool
(** The SI read rule, existentially as the paper states it: for each
    transaction there is a snapshot point no later than its first read
    from which every read not satisfied by its own writes observes the
    latest committed version. *)

val first_committer_wins_respected : Hist.t -> bool
(** No two committed transactions with overlapping execution intervals wrote
    the same item — the SI commit rule (§4.2). *)

val si_to_single_version : Hist.t -> Hist.t
(** The paper's SI-to-single-valued mapping: reads move to the transaction's
    first-action point, writes to just before its termination; version
    annotations are stripped. Maps the paper's H1.SI to H1.SI.SV. *)
