(** Directed graphs over [int] nodes: cycle detection with witness,
    topological sort, strongly-connected components.

    Used for dependency graphs of histories (serializability testing) and
    for waits-for graphs (deadlock detection). *)

type t

val create : unit -> t
val add_node : t -> int -> unit
val add_edge : t -> int -> int -> unit
val mem_edge : t -> int -> int -> bool

val nodes : t -> int list
(** All nodes, sorted ascending. *)

val succs : t -> int -> int list
(** Successors of a node, sorted ascending. *)

val edges : t -> (int * int) list
(** All edges [(src, dst)]. *)

val find_cycle : t -> int list option
(** [find_cycle g] is [Some [n1; ...; nk]] where [n1 -> ... -> nk -> n1] is a
    cycle in [g], or [None] if [g] is acyclic. *)

val is_acyclic : t -> bool

val topological_sort : t -> int list option
(** A topological order of the nodes, or [None] if the graph is cyclic. *)

val sccs : t -> int list list
(** Strongly-connected components, in reverse topological order of the
    condensation. *)
