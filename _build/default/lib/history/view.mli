(** View equivalence and view serializability ([BHG] Chapter 5, the
    equivalence notion behind the paper's multiversion-to-single-version
    mapping).

    The decision procedure brute-forces serial orders and is meant for
    the small histories of this repository. Predicate reads count as
    reads of each item they matched. *)

val reads_from : Hist.t -> (Action.txn * Action.key * Action.txn) list
(** One [(reader, key, writer)] triple per read of the committed
    projection, in history order; writer 0 is the initial state. *)

val final_writes : Hist.t -> (Action.key * Action.txn) list
(** The last committed writer of each key. *)

val view_equivalent : Hist.t -> Hist.t -> bool
(** Same committed transactions, same reads-from relation, same final
    writers. *)

val view_serialization_order : Hist.t -> Action.txn list option
(** A serial order of the committed transactions to which the history is
    view equivalent, if any.
    @raise Invalid_argument beyond {!max_txns_for_search} transactions. *)

val is_view_serializable : Hist.t -> bool

val max_txns_for_search : int
