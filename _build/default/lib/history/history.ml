(* Umbrella module of the [history] library: the formal model of
   transaction histories from §2 of "A Critique of ANSI SQL Isolation
   Levels" — actions, the shorthand notation, dependency graphs,
   serializability, and multiversion analysis. *)

module Action = Action
module Parser = Parser
module Digraph = Digraph
module Conflict = Conflict
module Mv = Mv
module View = View
module Recoverability = Recoverability
include Hist
