(** Dependency graphs and conflict-serializability (§2.1 of the paper).

    Nodes are committed transactions; conflicting ordered action pairs
    contribute edges. A history is serializable iff the graph is acyclic. *)

type dep = Write_write | Write_read | Read_write

val pp_dep : dep Fmt.t

type edge = {
  src : Action.txn;
  dst : Action.txn;
  dep : dep;
  src_action : Action.t;
  dst_action : Action.t;
}

val pp_edge : edge Fmt.t

val edges : Hist.t -> edge list
(** Dependency edges among committed transactions, in history order of the
    earlier action. *)

val graph : Hist.t -> Digraph.t

val cycle : Hist.t -> Action.txn list option
(** A cycle in the dependency graph, witnessing non-serializability. *)

val is_serializable : Hist.t -> bool

val serialization_order : Hist.t -> Action.txn list option
(** An equivalent serial order of the committed transactions, when one
    exists. *)

val equivalent : Hist.t -> Hist.t -> bool
(** Same committed transactions and same dependency graph (§2.1). *)

val to_dot : Hist.t -> string
(** The dependency graph in Graphviz dot syntax. *)

val serial_history : Hist.t -> Action.txn list -> Hist.t
(** The history executing the committed transactions of the input one at a
    time in the given order. *)

val equivalent_serial : Hist.t -> Hist.t option
(** An equivalent serial history, when the history is serializable. *)
