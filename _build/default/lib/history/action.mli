(** Actions of transaction histories, in the paper's vocabulary (§2.2).

    An action is a read, a write (covering inserts, updates and deletes), a
    predicate read (the paper's [r1[P]]), or a transaction termination
    (commit / abort). Cursor reads and writes ([rc1[x]], [wc1[x]], §4.1) are
    reads/writes flagged as going through a cursor. *)

type txn = int
(** Transaction identifiers; the paper's subscripts ([r1], [w2], ...). *)

type key = string
(** Data items. The paper's broad interpretation — a row, a page, a table —
    is represented uniformly as a named item. *)

type value = int

type version = int
(** Versions are identified by the transaction that wrote them; version [0]
    is the initial database state, matching the paper's [x0]. *)

type write_kind = Update | Insert | Delete

type read = {
  rt : txn;
  rk : key;
  rver : version option;  (** explicit version, for multiversion histories *)
  rval : value option;    (** observed value, when recorded *)
  rcursor : bool;         (** read through a cursor: the paper's [rc] *)
}

type write = {
  wt : txn;
  wk : key;
  wver : version option;
  wval : value option;    (** value written, when recorded *)
  wkind : write_kind;
  wpreds : string list;   (** names of predicates this write affects *)
  wcursor : bool;         (** write through a cursor: the paper's [wc] *)
}

type pred_read = {
  pt : txn;
  pname : string;
  pkeys : key list;       (** data items matched when the predicate was read *)
}

type t =
  | Read of read
  | Write of write
  | Pred_read of pred_read
  | Commit of txn
  | Abort of txn

(** {1 Constructors} *)

val read : ?ver:version -> ?value:value -> ?cursor:bool -> txn -> key -> t

val write :
  ?ver:version ->
  ?value:value ->
  ?kind:write_kind ->
  ?preds:string list ->
  ?cursor:bool ->
  txn ->
  key ->
  t

val pred_read : ?keys:key list -> txn -> string -> t
val commit : txn -> t
val abort : txn -> t

(** {1 Accessors} *)

val txn : t -> txn
val is_termination : t -> bool

val key : t -> key option
(** The data item touched, if any ([None] for predicate reads and
    terminations). *)

val conflicts : t -> t -> bool
(** [conflicts a b] per §2.1: distinct transactions, same data item (or a
    predicate covering the item), at least one write. Symmetric. *)

(** {1 Printing} *)

val pp : t Fmt.t
(** Prints the paper's shorthand: [r1[x]], [w1[x1=10]], [r1[P]],
    [w2[insert y to P]], [rc1[x]], [c1], [a1]. *)

val to_string : t -> string
val equal : t -> t -> bool
