(* Multiversion (MV) histories (§4.2, [BHG] Chapter 5).

   In an MV history each write of item x by transaction Ti creates version
   x_i, and each read names the version it observed (version 0 being the
   initial database state). This module decides whether such a history is
   one-copy serializable via the multiversion serialization graph, checks
   the two defining rules of Snapshot Isolation (snapshot reads and
   First-Committer-Wins), and implements the paper's mapping of SI
   histories to single-valued histories (H1.SI -> H1.SI.SV). *)

let is_mv h =
  List.exists
    (function
      | Action.Read r -> r.rver <> None
      | Action.Write w -> w.wver <> None
      | _ -> false)
    h

let indexed h = Array.of_list h

(* Position of the first action and of the commit of each committed txn. *)
let interval h t =
  let arr = indexed h in
  let start = ref None and stop = ref None in
  Array.iteri
    (fun i a ->
      if Action.txn a = t then begin
        if !start = None then start := Some i;
        if Action.is_termination a then stop := Some i
      end)
    arr;
  match (!start, !stop) with
  | Some s, Some e -> Some (s, e)
  | Some s, None -> Some (s, Array.length arr)
  | None, _ -> None

(* Committed writers of [k], in commit order; the initial version 0 first. *)
let version_order h k =
  let committed = Hist.committed h in
  let writers =
    List.filter
      (fun t ->
        List.exists
          (function Action.Write w -> w.wk = k | _ -> false)
          (Hist.actions_of t h))
      committed
  in
  let commit_pos t = Option.value ~default:max_int (Hist.termination_pos h t) in
  0 :: List.sort (fun a b -> compare (commit_pos a) (commit_pos b)) writers

(* The version a read observes: its explicit annotation if present;
   otherwise the reader's own prior write, if any; otherwise the latest
   version committed before the read's position. *)
let read_version h pos (r : Action.read) =
  match r.rver with
  | Some v -> v
  | None ->
    let arr = indexed h in
    let own = ref None and last_committed = ref 0 in
    for i = 0 to pos - 1 do
      match arr.(i) with
      | Action.Write w when w.wk = r.rk && w.wt = r.rt -> own := Some w.wt
      | Action.Commit t ->
        (* t's write of rk, if it made one before committing, is now the
           latest committed version. *)
        let wrote =
          List.exists
            (function Action.Write w -> w.wk = r.rk && w.wt = t | _ -> false)
            (Array.to_list (Array.sub arr 0 i))
        in
        if wrote then last_committed := t
      | _ -> ()
    done;
    Option.value ~default:!last_committed !own

(* Multiversion serialization graph: node 0 is the virtual transaction that
   installed all initial versions.
   - Ti -> Tj when Tj reads a version Ti wrote (wr);
   - Ti -> Tj when x_i precedes x_j in the version order (ww);
   - Tk -> Tj when Tk reads x_i and x_j is a later version (rw). *)
let mvsg h =
  let hc = Hist.project_committed h in
  let g = Digraph.create () in
  Digraph.add_node g 0;
  List.iter (fun t -> Digraph.add_node g t) (Hist.committed h);
  let keys = Hist.keys hc in
  let orders = List.map (fun k -> (k, version_order hc k)) keys in
  let order_of k = Option.value ~default:[ 0 ] (List.assoc_opt k orders) in
  (* ww edges: consecutive versions. *)
  List.iter
    (fun (_, order) ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          Digraph.add_edge g a b;
          pairs rest
        | [ _ ] | [] -> ()
      in
      pairs order)
    orders;
  (* wr and rw edges from each committed read. *)
  List.iteri
    (fun pos a ->
      match a with
      | Action.Read r ->
        let i = read_version hc pos r in
        if i <> r.rt then Digraph.add_edge g i r.rt;
        let rec later = function
          | [] -> ()
          | v :: rest ->
            if v <> i then later rest
            else
              List.iter
                (fun j -> if j <> r.rt then Digraph.add_edge g r.rt j)
                rest
        in
        later (order_of r.rk)
      | _ -> ())
    hc;
  g

let is_one_copy_serializable h = Digraph.is_acyclic (mvsg h)
let mvsg_cycle h = Digraph.find_cycle (mvsg h)

(* Snapshot-read rule. The paper allows the Start-Timestamp to be "any
   time before the transaction's first Read", so the rule is existential:
   for each transaction there must be a single snapshot point, no later
   than its first read, from which every read (not satisfied by its own
   prior writes) observes the latest committed version. *)
let snapshot_reads_respected h =
  let arr = indexed h in
  (* Latest writer of [k] committed strictly before position [s]. *)
  let committed_version_before k s =
    let version = ref 0 in
    Array.iteri
      (fun i a ->
        if i < s then
          match a with
          | Action.Commit t ->
            let wrote =
              Array.exists
                (function Action.Write w -> w.wk = k && w.wt = t | _ -> false)
                (Array.sub arr 0 i)
            in
            if wrote then version := t
          | _ -> ())
      arr;
    !version
  in
  let check_txn t =
    let external_reads =
      Array.to_list arr
      |> List.mapi (fun i a -> (i, a))
      |> List.filter_map (fun (pos, a) ->
             match a with
             | Action.Read r when r.rt = t ->
               let observed = read_version h pos r in
               if observed = t then None (* satisfied by an own write *)
               else Some (pos, r.rk, observed)
             | _ -> None)
    in
    match external_reads with
    | [] -> true
    | (first_pos, _, _) :: _ ->
      let consistent_at s =
        List.for_all
          (fun (_, k, observed) -> committed_version_before k s = observed)
          external_reads
      in
      let rec try_points s = s <= first_pos && (consistent_at s || try_points (s + 1)) in
      try_points 0
  in
  List.for_all check_txn (Hist.txns h)

(* First-Committer-Wins: no two committed transactions with overlapping
   execution intervals both wrote the same data item (§4.2). *)
let first_committer_wins_respected h =
  let committed = Hist.committed h in
  let writes t =
    List.filter_map
      (function Action.Write w when w.wt = t -> Some w.wk | _ -> None)
      h
    |> List.sort_uniq compare
  in
  let overlaps t1 t2 =
    match (interval h t1, interval h t2) with
    | Some (s1, e1), Some (s2, e2) -> s1 < e2 && s2 < e1
    | _ -> false
  in
  let rec check = function
    | [] -> true
    | t1 :: rest ->
      List.for_all
        (fun t2 ->
          (not (overlaps t1 t2))
          || List.for_all (fun k -> not (List.mem k (writes t2))) (writes t1))
        rest
      && check rest
  in
  check committed

(* The paper's SI -> single-valued mapping: each transaction's reads are
   emitted at the point of its first action (its snapshot) and its writes
   immediately before its termination, preserving per-transaction order
   within each group and stripping version annotations. Applied to H1.SI
   this yields exactly the paper's H1.SI.SV. *)
let si_to_single_version h =
  let strip = function
    | Action.Read r -> Action.Read { r with rver = None }
    | Action.Write w -> Action.Write { w with wver = None }
    | a -> a
  in
  let reads_of t =
    List.filter_map
      (function
        | (Action.Read r : Action.t) when r.rt = t -> Some (strip (Action.Read r))
        | Action.Pred_read p when p.pt = t -> Some (Action.Pred_read p)
        | _ -> None)
      h
  in
  let writes_of t =
    List.filter_map
      (function
        | (Action.Write w : Action.t) when w.wt = t -> Some (strip (Action.Write w))
        | _ -> None)
      h
  in
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun a ->
      let t = Action.txn a in
      let first =
        if Hashtbl.mem seen t then []
        else begin
          Hashtbl.replace seen t ();
          reads_of t
        end
      in
      match a with
      | Action.Commit _ -> first @ writes_of t @ [ a ]
      | Action.Abort _ -> first @ [ a ]
      | _ -> first)
    h
