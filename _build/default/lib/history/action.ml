(* Actions of transaction histories, in the paper's vocabulary (§2.2):
   reads, writes (inserts, updates, deletes), predicate reads, cursor reads
   and writes, commits and aborts. The printer emits the paper's shorthand
   notation ("w1[x] r2[x=50] r1[P] w2[y in P] rc1[x] c1 a2"). *)

type txn = int
type key = string
type value = int

(* Versions identify the transaction that wrote them; version 0 denotes the
   initial (pre-history) database state, matching the paper's "x0". *)
type version = int

type write_kind = Update | Insert | Delete

type read = {
  rt : txn;
  rk : key;
  rver : version option; (* explicit version, for multiversion histories *)
  rval : value option;   (* observed value, when recorded *)
  rcursor : bool;        (* read through a cursor: the paper's "rc" *)
}

type write = {
  wt : txn;
  wk : key;
  wver : version option;
  wval : value option;   (* value written, when recorded *)
  wkind : write_kind;
  wpreds : string list;  (* names of predicates this write affects *)
  wcursor : bool;        (* write through a cursor: the paper's "wc" *)
}

type pred_read = {
  pt : txn;
  pname : string;
  pkeys : key list;      (* data items matched by the predicate when read *)
}

type t =
  | Read of read
  | Write of write
  | Pred_read of pred_read
  | Commit of txn
  | Abort of txn

let read ?ver ?value ?(cursor = false) t k =
  Read { rt = t; rk = k; rver = ver; rval = value; rcursor = cursor }

let write ?ver ?value ?(kind = Update) ?(preds = []) ?(cursor = false) t k =
  Write
    { wt = t; wk = k; wver = ver; wval = value; wkind = kind; wpreds = preds;
      wcursor = cursor }

let pred_read ?(keys = []) t name = Pred_read { pt = t; pname = name; pkeys = keys }
let commit t = Commit t
let abort t = Abort t

let txn = function
  | Read r -> r.rt
  | Write w -> w.wt
  | Pred_read p -> p.pt
  | Commit t | Abort t -> t

let is_termination = function Commit _ | Abort _ -> true | _ -> false

let key = function
  | Read r -> Some r.rk
  | Write w -> Some w.wk
  | Pred_read _ | Commit _ | Abort _ -> None

(* Two actions conflict if they are by distinct transactions, touch the same
   data item (or a predicate covering the item), and at least one is a write
   (§2.1). Predicate reads conflict with writes that affect the predicate:
   either the write declares the predicate in [wpreds], or its key is among
   the items the predicate matched when it was read. *)
let conflicts a b =
  if txn a = txn b then false
  else
    let write_vs_pred (w : write) (p : pred_read) =
      List.mem p.pname w.wpreds || List.mem w.wk p.pkeys
    in
    match (a, b) with
    | Write w1, Write w2 -> w1.wk = w2.wk
    | Write w, Read r | Read r, Write w -> w.wk = r.rk
    | Write w, Pred_read p | Pred_read p, Write w -> write_vs_pred w p
    | Read _, Read _ | Read _, Pred_read _ | Pred_read _, Read _
    | Pred_read _, Pred_read _ ->
      false
    | (Commit _ | Abort _), _ | _, (Commit _ | Abort _) -> false

let pp_value_part ppf (ver, value) =
  (match ver with None -> () | Some v -> Fmt.pf ppf "%d" v);
  match value with None -> () | Some v -> Fmt.pf ppf "=%d" v

let pp ppf = function
  | Read r ->
    Fmt.pf ppf "r%s%d[%s%a]" (if r.rcursor then "c" else "") r.rt r.rk
      pp_value_part (r.rver, r.rval)
  | Write w -> (
    let prefix = if w.wcursor then "wc" else "w" in
    match (w.wkind, w.wpreds) with
    | Insert, p :: _ -> Fmt.pf ppf "%s%d[insert %s to %s]" prefix w.wt w.wk p
    | Delete, p :: _ -> Fmt.pf ppf "%s%d[delete %s from %s]" prefix w.wt w.wk p
    | Update, p :: _ -> Fmt.pf ppf "%s%d[%s in %s]" prefix w.wt w.wk p
    | (Insert | Delete | Update), [] ->
      Fmt.pf ppf "%s%d[%s%a]" prefix w.wt w.wk pp_value_part (w.wver, w.wval))
  | Pred_read p ->
    if p.pkeys = [] then Fmt.pf ppf "r%d[%s]" p.pt p.pname
    else Fmt.pf ppf "r%d[%s:{%s}]" p.pt p.pname (String.concat "," p.pkeys)
  | Commit t -> Fmt.pf ppf "c%d" t
  | Abort t -> Fmt.pf ppf "a%d" t

let to_string = Fmt.to_to_string pp

let equal (a : t) (b : t) = a = b
