(** Parser for the paper's shorthand history notation.

    Accepts the paper's histories verbatim, e.g.
    [H1: r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1] (without the
    label), multiversion subscripts ([r1[x0=50] w1[x1=10]]), predicate reads
    ([r1[P]], [r1[P:{e1,e2}]]), predicate-affecting writes
    ([w2[y in P]], [w2[insert y to P]], [w2[delete y from P]]), cursor
    actions ([rc1[x]], [wc1[x]]), and terminations ([c1], [a1]). Whitespace,
    commas and ellipses ([...]) separate actions. Item names are lowercase
    identifiers; trailing digits denote versions. *)

type error = { position : int; message : string }

val pp_error : error Fmt.t

val parse : string -> (Action.t list, error) result
val parse_exn : string -> Action.t list
(** @raise Invalid_argument on malformed input. *)
