(* Directed graphs over integer-identified nodes, with the algorithms the
   rest of the library needs: cycle detection with an explicit witness,
   topological sort, and Tarjan's strongly-connected components. *)

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type t = {
  mutable nodes : Int_set.t;
  mutable succs : Int_set.t Int_map.t;
}

let create () = { nodes = Int_set.empty; succs = Int_map.empty }

let add_node g n = g.nodes <- Int_set.add n g.nodes

let add_edge g a b =
  add_node g a;
  add_node g b;
  let cur =
    match Int_map.find_opt a g.succs with
    | Some s -> s
    | None -> Int_set.empty
  in
  g.succs <- Int_map.add a (Int_set.add b cur) g.succs

let mem_edge g a b =
  match Int_map.find_opt a g.succs with
  | Some s -> Int_set.mem b s
  | None -> false

let nodes g = Int_set.elements g.nodes

let succs g n =
  match Int_map.find_opt n g.succs with
  | Some s -> Int_set.elements s
  | None -> []

let edges g =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) (succs g a)) (nodes g)

(* Depth-first search retaining the path, so a back edge yields the cycle
   itself rather than just its existence. *)
let find_cycle g =
  let state = Hashtbl.create 16 in
  (* state: 0 = unvisited (absent), 1 = on stack, 2 = done *)
  let rec dfs path n =
    match Hashtbl.find_opt state n with
    | Some 2 -> None
    | Some 1 ->
      (* [path] is most-recent-first; the cycle is n :: ... back to n. *)
      let rec take acc = function
        | [] -> acc
        | x :: rest -> if x = n then x :: acc else take (x :: acc) rest
      in
      Some (take [] path)
    | Some _ | None ->
      Hashtbl.replace state n 1;
      let rec loop = function
        | [] ->
          Hashtbl.replace state n 2;
          None
        | s :: rest -> (
          match dfs (n :: path) s with
          | Some _ as c -> c
          | None -> loop rest)
      in
      loop (succs g n)
  in
  let rec scan = function
    | [] -> None
    | n :: rest -> (
      match dfs [] n with Some _ as c -> c | None -> scan rest)
  in
  scan (nodes g)

let is_acyclic g = Option.is_none (find_cycle g)

let topological_sort g =
  match find_cycle g with
  | Some _ -> None
  | None ->
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec dfs n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.replace visited n ();
        List.iter dfs (succs g n);
        order := n :: !order
      end
    in
    List.iter dfs (nodes g);
    Some !order

(* Tarjan's algorithm. Returns components in reverse topological order of
   the condensation. *)
let sccs g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes g);
  !components
