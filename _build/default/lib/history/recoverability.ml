(* The classical recoverability hierarchy ([BHG] §1.3, Gray-Reuter):

     strict  <  avoids-cascading-aborts (ACA)  <  recoverable

   This is the other face of the paper's §3 argument. Prohibiting P1
   (dirty reads) is exactly what makes histories avoid cascading aborts;
   prohibiting P0 and P1 together is exactly strictness, which is what
   lets recovery undo transactions by restoring before-images — the
   paper's "even the weakest locking systems hold long duration write
   locks; otherwise their recovery systems would fail".

   Definitions over a history h (aborted transactions included; that is
   the point):

   - Tj *reads from* Ti when Tj reads a value whose last writer before the
     read is Ti (Ti <> Tj, Ti not yet undone at the read).
   - h is RECOVERABLE when, whenever Tj reads from Ti and Tj commits, Ti
     committed before Tj.
   - h AVOIDS CASCADING ABORTS when every read is from a transaction that
     had already committed at the time of the read (or from the reader).
   - h is STRICT when no item is read or overwritten — and no predicate
     evaluated over an affecting write — while the earlier writer is still
     active. (Extending strictness to predicate reads matches the broad
     reading of "data item" the detectors use for P1.) *)

(* The last writer of [k] before position [pos] that was still "standing"
   (not aborted before [pos]); None when the value is the initial one. *)
let last_writer_before h pos k =
  let arr = Array.of_list h in
  let aborted_before p t =
    let rec scan i = function
      | [] -> false
      | Action.Abort t' :: _ when t' = t && i < p -> true
      | _ :: rest -> scan (i + 1) rest
    in
    scan 0 h
  in
  let writer = ref None in
  for i = 0 to pos - 1 do
    match arr.(i) with
    | Action.Write w when w.wk = k ->
      if not (aborted_before pos w.wt) then writer := Some w.wt
    | _ -> ()
  done;
  !writer

(* The reads-from relation over the raw history (uncommitted writers
   included), as (reader, key, writer, read position). *)
let reads_from h =
  List.concat
    (List.mapi
       (fun pos a ->
         match a with
         | Action.Read r -> (
           match last_writer_before h pos r.rk with
           | Some w when w <> r.rt -> [ (r.rt, r.rk, w, pos) ]
           | _ -> [])
         | _ -> [])
       h)

let committed_before h pos t =
  match Hist.termination_pos h t with
  | Some p -> p < pos && List.mem t (Hist.committed h)
  | None -> false

let is_recoverable h =
  List.for_all
    (fun (reader, _, writer, _) ->
      if not (List.mem reader (Hist.committed h)) then true
      else
        match (Hist.termination_pos h writer, Hist.termination_pos h reader) with
        | Some wp, Some rp -> List.mem writer (Hist.committed h) && wp < rp
        | _ -> false)
    (reads_from h)

let avoids_cascading_aborts h =
  List.for_all
    (fun (_, _, writer, pos) -> committed_before h pos writer)
    (reads_from h)

(* Strictness: every read or write of [k] at position [pos] requires the
   previous writer of [k] (if any, other than the acting transaction) to
   have terminated before [pos]. *)
let is_strict h =
  let arr = Array.of_list h in
  let ok = ref true in
  Array.iteri
    (fun pos a ->
      let check t k =
        (* the last write of k before pos by another transaction, whether
           or not since aborted *)
        let prev = ref None in
        for i = 0 to pos - 1 do
          match arr.(i) with
          | Action.Write w when w.wk = k && w.wt <> t -> prev := Some w.wt
          | _ -> ()
        done;
        match !prev with
        | None -> ()
        | Some w -> (
          match Hist.termination_pos h w with
          | Some p when p < pos -> ()
          | _ -> ok := false)
      in
      let check_pred t (p : Action.pred_read) =
        Array.iteri
          (fun i b ->
            if i < pos then
              match b with
              | Action.Write w
                when w.wt <> t
                     && (List.mem p.pname w.wpreds || List.mem w.wk p.pkeys)
                -> (
                match Hist.termination_pos h w.wt with
                | Some q when q < pos -> ()
                | _ -> ok := false)
              | _ -> ())
          arr
      in
      match a with
      | Action.Read r -> check r.rt r.rk
      | Action.Write w -> check w.wt w.wk
      | Action.Pred_read p -> check_pred p.pt p
      | Action.Commit _ | Action.Abort _ -> ())
    arr;
  !ok

type cls = Not_recoverable | Recoverable | Aca | Strict

let classify h =
  if is_strict h then Strict
  else if avoids_cascading_aborts h then Aca
  else if is_recoverable h then Recoverable
  else Not_recoverable

let class_name = function
  | Not_recoverable -> "not recoverable"
  | Recoverable -> "recoverable (RC)"
  | Aca -> "avoids cascading aborts (ACA)"
  | Strict -> "strict (ST)"

let pp_class ppf c = Fmt.string ppf (class_name c)
