(* Histories: linear orderings of the actions of a set of transactions
   (§2.1). A history is just the list of actions in execution order;
   this module provides construction, projection and well-formedness. *)

type t = Action.t list

let of_string = Parser.parse_exn
let pp = Fmt.list ~sep:(Fmt.any " ") Action.pp
let to_string = Fmt.to_to_string pp

let txns h =
  List.sort_uniq compare (List.map Action.txn h)

let committed h =
  List.filter_map (function Action.Commit t -> Some t | _ -> None) h
  |> List.sort_uniq compare

let aborted h =
  List.filter_map (function Action.Abort t -> Some t | _ -> None) h
  |> List.sort_uniq compare

let active h =
  let ended = committed h @ aborted h in
  List.filter (fun t -> not (List.mem t ended)) (txns h)

let is_complete h = active h = []

let actions_of t h = List.filter (fun a -> Action.txn a = t) h

let project txns_to_keep h =
  List.filter (fun a -> List.mem (Action.txn a) txns_to_keep) h

let project_committed h = project (committed h) h

(* A history is well-formed when every transaction terminates at most once
   and performs no action after terminating. *)
let well_formed h =
  let ended = Hashtbl.create 8 in
  let rec check = function
    | [] -> Ok ()
    | a :: rest ->
      let t = Action.txn a in
      if Hashtbl.mem ended t then
        Error (Fmt.str "transaction %d acts after terminating: %a" t Action.pp a)
      else begin
        if Action.is_termination a then Hashtbl.replace ended t ();
        check rest
      end
  in
  check h

(* Positions of all actions of a transaction, and of its termination. *)
let positions h =
  List.mapi (fun i a -> (i, a)) h

let termination_pos h t =
  let rec find i = function
    | [] -> None
    | a :: rest -> (
      match a with
      | (Action.Commit t' | Action.Abort t') when t' = t -> Some i
      | _ -> find (i + 1) rest)
  in
  find 0 h

let keys h =
  List.filter_map Action.key h |> List.sort_uniq compare
