(** Histories: linear orderings of the actions of a set of transactions
    (§2.1 of the paper). *)

type t = Action.t list

val of_string : string -> t
(** Parse the paper's shorthand notation. @raise Invalid_argument on
    malformed input; see {!Parser.parse} for a non-raising variant. *)

val pp : t Fmt.t
val to_string : t -> string

val txns : t -> Action.txn list
(** Distinct transactions appearing in the history, ascending. *)

val committed : t -> Action.txn list
val aborted : t -> Action.txn list

val active : t -> Action.txn list
(** Transactions with no commit or abort in the history. *)

val is_complete : t -> bool
(** Every transaction has terminated. *)

val actions_of : Action.txn -> t -> Action.t list
val project : Action.txn list -> t -> t
val project_committed : t -> t

val well_formed : t -> (unit, string) result
(** Every transaction terminates at most once and performs no action after
    terminating. *)

val positions : t -> (int * Action.t) list
(** Actions paired with their 0-based position. *)

val termination_pos : t -> Action.txn -> int option
val keys : t -> Action.key list
