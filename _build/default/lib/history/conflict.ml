(* Dependency graphs and conflict-serializability (§2.1).

   Nodes are the committed transactions of the history; if action op1 of T1
   conflicts with and precedes action op2 of T2, the pair contributes an
   edge T1 -> T2. A history is (conflict-)serializable iff its dependency
   graph is acyclic; a topological order is then an equivalent serial
   execution. *)

type dep = Write_write | Write_read | Read_write

let pp_dep ppf = function
  | Write_write -> Fmt.string ppf "ww"
  | Write_read -> Fmt.string ppf "wr"
  | Read_write -> Fmt.string ppf "rw"

type edge = {
  src : Action.txn;
  dst : Action.txn;
  dep : dep;
  src_action : Action.t;
  dst_action : Action.t;
}

let pp_edge ppf e =
  Fmt.pf ppf "T%d -%a-> T%d (%a, %a)" e.src pp_dep e.dep e.dst Action.pp
    e.src_action Action.pp e.dst_action

let classify a b =
  match (a, b) with
  | Action.Write _, Action.Write _ -> Write_write
  | Action.Write _, (Action.Read _ | Action.Pred_read _) -> Write_read
  | (Action.Read _ | Action.Pred_read _), Action.Write _ -> Read_write
  | _ -> assert false (* only called on conflicting pairs *)

let edges h =
  let h = Hist.project_committed h in
  let arr = Array.of_list h in
  let n = Array.length arr in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if Action.conflicts a b then
        acc :=
          { src = Action.txn a;
            dst = Action.txn b;
            dep = classify a b;
            src_action = a;
            dst_action = b }
          :: !acc
    done
  done;
  List.rev !acc

let graph h =
  let g = Digraph.create () in
  List.iter (fun t -> Digraph.add_node g t) (Hist.committed h);
  List.iter (fun e -> Digraph.add_edge g e.src e.dst) (edges h);
  g

let cycle h = Digraph.find_cycle (graph h)
let is_serializable h = Digraph.is_acyclic (graph h)
let serialization_order h = Digraph.topological_sort (graph h)

(* Two histories are equivalent when they have the same committed
   transactions and the same dependency graph (§2.1). *)
let equivalent h1 h2 =
  Hist.committed h1 = Hist.committed h2
  &&
  let edge_set h =
    List.sort_uniq compare (List.map (fun e -> (e.src, e.dst, e.dep)) (edges h))
  in
  edge_set h1 = edge_set h2

(* The serial history executing the committed transactions of [h] one at a
   time in the given order. *)
let serial_history h order =
  List.concat_map (fun t -> Hist.actions_of t (Hist.project_committed h)) order

(* Graphviz rendering of the dependency graph, for papers and debugging:
   nodes are committed transactions, edges carry their dependency kind and
   the item. *)
let to_dot h =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph dependencies {\n  rankdir=LR;\n";
  List.iter
    (fun t -> Buffer.add_string b (Fmt.str "  T%d [shape=circle];\n" t))
    (Hist.committed h);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Fmt.str "  T%d -> T%d [label=\"%a:%s\"];\n" e.src e.dst pp_dep e.dep
           (Option.value ~default:"?" (Action.key e.src_action))))
    (edges h);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Serializability by definition: equivalent to some serial history. For
   conflict-based equivalence this coincides with graph acyclicity; we expose
   it to let tests confirm the Serializability Theorem on small histories. *)
let equivalent_serial h =
  match serialization_order h with
  | None -> None
  | Some order ->
    let s = serial_history h order in
    if equivalent h s then Some s else None
