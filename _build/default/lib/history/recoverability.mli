(** The classical recoverability hierarchy ([BHG] §1.3):
    strict ⊂ avoids-cascading-aborts ⊂ recoverable.

    The other face of the paper's §3 recovery argument: prohibiting P1 is
    avoiding cascading aborts; prohibiting P0 and P1 together is
    strictness, which is what makes before-image undo sound. *)

val reads_from : Hist.t -> (Action.txn * Action.key * Action.txn * int) list
(** [(reader, key, writer, read position)] over the raw history,
    uncommitted writers included. *)

val is_recoverable : Hist.t -> bool
(** Every committed reader's writers committed first. *)

val avoids_cascading_aborts : Hist.t -> bool
(** Every read is from a transaction already committed at the read. *)

val is_strict : Hist.t -> bool
(** No item is read or overwritten — and no predicate evaluated over an
    affecting write — while the earlier writer is still active. *)

type cls = Not_recoverable | Recoverable | Aca | Strict

val classify : Hist.t -> cls
(** The strongest class the history satisfies. *)

val class_name : cls -> string
val pp_class : cls Fmt.t
