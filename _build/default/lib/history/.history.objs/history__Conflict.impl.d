lib/history/conflict.ml: Action Array Buffer Digraph Fmt Hist List Option
