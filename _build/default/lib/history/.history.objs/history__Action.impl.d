lib/history/action.ml: Fmt List String
