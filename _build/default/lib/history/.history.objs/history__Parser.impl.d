lib/history/parser.ml: Action Fmt List String
