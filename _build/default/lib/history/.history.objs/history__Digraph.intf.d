lib/history/digraph.mli:
