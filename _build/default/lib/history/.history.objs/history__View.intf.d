lib/history/view.mli: Action Hist
