lib/history/mv.ml: Action Array Digraph Hashtbl Hist List Option
