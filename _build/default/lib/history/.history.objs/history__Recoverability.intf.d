lib/history/recoverability.mli: Action Fmt Hist
