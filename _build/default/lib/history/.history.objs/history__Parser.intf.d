lib/history/parser.mli: Action Fmt
