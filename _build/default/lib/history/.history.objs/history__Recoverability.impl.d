lib/history/recoverability.ml: Action Array Fmt Hist List
