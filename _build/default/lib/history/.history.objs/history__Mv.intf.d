lib/history/mv.mli: Action Digraph Hist
