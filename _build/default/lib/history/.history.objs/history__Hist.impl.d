lib/history/hist.ml: Action Fmt Hashtbl List Parser
