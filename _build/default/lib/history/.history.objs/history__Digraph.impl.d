lib/history/digraph.ml: Hashtbl Int List Map Option Set
