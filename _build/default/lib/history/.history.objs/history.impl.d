lib/history/history.ml: Action Conflict Digraph Hist Mv Parser Recoverability View
