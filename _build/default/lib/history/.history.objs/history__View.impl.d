lib/history/view.ml: Action Conflict Fmt Hist List
