lib/history/conflict.mli: Action Digraph Fmt Hist
