lib/history/hist.mli: Action Fmt
