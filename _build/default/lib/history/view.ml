(* View equivalence and view serializability ([BHG] Chapter 5 — the
   equivalence notion behind the paper's MV-to-SV mapping).

   Two histories are view equivalent when they have the same committed
   transactions, the same reads-from relation (each read observes the
   same writer's value) and the same final writer per item. A history is
   view serializable when it is view equivalent to some serial history of
   its committed transactions. View serializability strictly contains
   conflict serializability: blind writes can make a history view- but
   not conflict-serializable.

   The decision procedure is NP-complete in general; this implementation
   brute-forces the permutations of committed transactions and is
   intended for the small histories of this repository (it refuses more
   than [max_txns_for_search] transactions). Predicate reads are treated
   as reads of each item they matched. *)

let max_txns_for_search = 8

(* The writer whose value a read at position [pos] observes: the latest
   write of the key before [pos] (0 = the initial database state). *)
let writer_seen h pos k =
  let rec scan i latest = function
    | [] -> latest
    | a :: rest ->
      if i >= pos then latest
      else
        scan (i + 1)
          (match a with
          | Action.Write w when w.wk = k -> w.wt
          | _ -> latest)
          rest
  in
  scan 0 0 h

(* The reads-from relation of the committed projection: one triple
   (reader, key, writer) per read, in history order. *)
let reads_from h =
  let hc = Hist.project_committed h in
  List.concat
    (List.mapi
       (fun pos a ->
         match a with
         | Action.Read r -> [ (r.rt, r.rk, writer_seen hc pos r.rk) ]
         | Action.Pred_read p ->
           List.map (fun k -> (p.pt, k, writer_seen hc pos k)) p.pkeys
         | _ -> [])
       hc)

(* The last committed writer of each key (those define the final state). *)
let final_writes h =
  let hc = Hist.project_committed h in
  List.map
    (fun k -> (k, writer_seen hc (List.length hc) k))
    (Hist.keys hc)

let view_equivalent h1 h2 =
  Hist.committed h1 = Hist.committed h2
  && List.sort compare (reads_from h1) = List.sort compare (reads_from h2)
  && final_writes h1 = final_writes h2

(* All permutations of a list (n! — callers bound n). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))
      l

let view_serialization_order h =
  let committed = Hist.committed h in
  if List.length committed > max_txns_for_search then
    invalid_arg
      (Fmt.str "View.view_serialization_order: more than %d transactions"
         max_txns_for_search);
  List.find_opt
    (fun order -> view_equivalent h (Conflict.serial_history h order))
    (permutations committed)

let is_view_serializable h = view_serialization_order h <> None
