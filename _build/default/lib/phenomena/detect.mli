(** Executable detectors for the paper's phenomena and anomalies.

    Broad interpretations (P0–P3) fire as soon as the offending pattern
    appears while the template's T1 is still active; strict interpretations
    (A1–A3) also require the terminations the ANSI English demands. A5A
    accepts T2's two writes in either order (the anomaly does not depend on
    it); everything else follows the paper's templates literally. *)

type witness = {
  phenomenon : Phenomenon.t;
  t1 : History.Action.txn;  (** the template's T1 role *)
  t2 : History.Action.txn;
  positions : int list;     (** positions of the matched actions, ascending *)
  note : string;
}

val pp_witness : witness Fmt.t

val detect : Phenomenon.t -> History.t -> witness list
(** All instances of the phenomenon in the history. *)

val occurs : Phenomenon.t -> History.t -> bool
val exhibited : History.t -> Phenomenon.t list
val matrix : History.t -> (Phenomenon.t * bool) list
