(** The phenomena and anomalies named by the paper: the broad
    interpretations P0–P3 (Remark 5), the strict ANSI interpretations
    A1–A3, the lost-update anomalies P4/P4C (§4.1) and the
    constraint-violation anomalies A5A/A5B (§4.2). *)

type t = P0 | P1 | P2 | P3 | A1 | A2 | A3 | P4 | P4C | A5A | A5B

val all : t list

val table4 : t list
(** The eight columns of the paper's Table 4, in its order:
    P0, P1, P4C, P4, P2, P3, A5A, A5B. *)

val name : t -> string
val long_name : t -> string

val formula : t -> string
(** The history template exactly as printed in the paper. *)

val is_strict : t -> bool
(** True for the strict ANSI interpretations A1–A3. *)

val of_string : string -> t option
val pp : t Fmt.t
val compare : t -> t -> int
val equal : t -> t -> bool
