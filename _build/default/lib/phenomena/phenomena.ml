(* Umbrella module of the [phenomena] library: the paper's phenomena and
   anomalies (P0-P4, P4C, A1-A3, A5A, A5B) and their history detectors. *)

module Phenomenon = Phenomenon
module Detect = Detect
