lib/phenomena/phenomenon.mli: Fmt
