lib/phenomena/phenomenon.ml: Fmt String
