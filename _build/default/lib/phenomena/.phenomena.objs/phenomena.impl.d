lib/phenomena/phenomena.ml: Detect Phenomenon
