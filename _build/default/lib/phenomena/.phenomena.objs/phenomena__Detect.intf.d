lib/phenomena/detect.mli: Fmt History Phenomenon
