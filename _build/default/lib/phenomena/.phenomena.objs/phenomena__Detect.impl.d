lib/phenomena/detect.ml: Array Fmt Hashtbl History List Option Phenomenon String
