(* The phenomena and anomalies named by the paper.

   P0-P3 are the broad ("phenomenon") interpretations the paper argues for
   (Remark 4, Remark 5); A1-A3 are the strict ("anomaly") interpretations
   of the ANSI English; P4/P4C are the lost-update anomalies of §4.1; A5A
   and A5B are the constraint-violation anomalies of §4.2. *)

type t = P0 | P1 | P2 | P3 | A1 | A2 | A3 | P4 | P4C | A5A | A5B

let all = [ P0; P1; P2; P3; A1; A2; A3; P4; P4C; A5A; A5B ]

(* The eight columns of the paper's Table 4, in its order. *)
let table4 = [ P0; P1; P4C; P4; P2; P3; A5A; A5B ]

let name = function
  | P0 -> "P0"
  | P1 -> "P1"
  | P2 -> "P2"
  | P3 -> "P3"
  | A1 -> "A1"
  | A2 -> "A2"
  | A3 -> "A3"
  | P4 -> "P4"
  | P4C -> "P4C"
  | A5A -> "A5A"
  | A5B -> "A5B"

let long_name = function
  | P0 -> "Dirty Write"
  | P1 -> "Dirty Read"
  | P2 -> "Fuzzy Read"
  | P3 -> "Phantom"
  | A1 -> "Dirty Read (strict)"
  | A2 -> "Fuzzy Read (strict)"
  | A3 -> "Phantom (strict)"
  | P4 -> "Lost Update"
  | P4C -> "Cursor Lost Update"
  | A5A -> "Read Skew"
  | A5B -> "Write Skew"

(* The history templates as printed in the paper (Remark 5 and §§4.1-4.2). *)
let formula = function
  | P0 -> "w1[x]...w2[x]...(c1 or a1)"
  | P1 -> "w1[x]...r2[x]...(c1 or a1)"
  | P2 -> "r1[x]...w2[x]...(c1 or a1)"
  | P3 -> "r1[P]...w2[y in P]...(c1 or a1)"
  | A1 -> "w1[x]...r2[x]...(a1 and c2 in any order)"
  | A2 -> "r1[x]...w2[x]...c2...r1[x]...c1"
  | A3 -> "r1[P]...w2[y in P]...c2...r1[P]...c1"
  | P4 -> "r1[x]...w2[x]...w1[x]...c1"
  | P4C -> "rc1[x]...w2[x]...w1[x]...c1"
  | A5A -> "r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)"
  | A5B -> "r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)"

let is_strict = function A1 | A2 | A3 -> true | _ -> false

let of_string s =
  match String.uppercase_ascii s with
  | "P0" -> Some P0
  | "P1" -> Some P1
  | "P2" -> Some P2
  | "P3" -> Some P3
  | "A1" -> Some A1
  | "A2" -> Some A2
  | "A3" -> Some A3
  | "P4" -> Some P4
  | "P4C" -> Some P4C
  | "A5A" -> Some A5A
  | "A5B" -> Some A5B
  | _ -> None

let pp ppf p = Fmt.string ppf (name p)
let compare = compare
let equal (a : t) b = a = b
