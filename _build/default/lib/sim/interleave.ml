(* Exhaustive interleaving enumeration.

   A schedule for the executor is a merge of the programs' attempt
   sequences (one attempt per operation, plus one for the auto-commit).
   Enumerating every merge explores every reachable history of the
   deterministic engine: attempts are its only source of nondeterminism. *)

(* All merges of [k] sequences with the given lengths, as 1-based stream
   indices. The count is the multinomial coefficient. *)
let merges sizes =
  let rec go remaining =
    if List.for_all (fun r -> r = 0) remaining then [ [] ]
    else
      List.concat
        (List.mapi
           (fun i r ->
             if r = 0 then []
             else
               let remaining' =
                 List.mapi (fun j r' -> if i = j then r' - 1 else r') remaining
               in
               List.map (fun rest -> (i + 1) :: rest) (go remaining'))
           remaining)
  in
  go sizes

let count sizes =
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
  fact (List.fold_left ( + ) 0 sizes)
  / List.fold_left (fun acc s -> acc * fact s) 1 sizes

(* Attempt-sequence sizes for a program list: one per op plus the
   auto-commit the executor appends to unterminated programs. *)
let sizes_of_programs programs =
  List.map
    (fun p ->
      Core.Program.length p + if Core.Program.terminated p then 0 else 1)
    programs

(* Iterate over merges without materializing the whole list; [f] may stop
   the search early by returning [true] ("found"). Returns whether any
   merge satisfied [f], and how many were visited. *)
let exists_merge sizes f =
  let visited = ref 0 in
  let rec go remaining prefix =
    if List.for_all (fun r -> r = 0) remaining then begin
      incr visited;
      f (List.rev prefix)
    end
    else
      let rec try_streams i = function
        | [] -> false
        | r :: rest ->
          (r > 0
          &&
          let remaining' =
            List.mapi (fun j r' -> if j = i then r' - 1 else r') remaining
          in
          go remaining' ((i + 1) :: prefix))
          || try_streams (i + 1) rest
      in
      try_streams 0 remaining
  in
  let found = go sizes [] in
  (found, !visited)

(* Run [f] on every merge, collecting how many satisfied it. *)
let count_merges sizes f =
  let total = ref 0 and hits = ref 0 in
  let rec go remaining prefix =
    if List.for_all (fun r -> r = 0) remaining then begin
      incr total;
      if f (List.rev prefix) then incr hits
    end
    else
      List.iteri
        (fun i r ->
          if r > 0 then
            let remaining' =
              List.mapi (fun j r' -> if j = i then r' - 1 else r') remaining
            in
            go remaining' ((i + 1) :: prefix))
        remaining
  in
  go sizes [];
  (!hits, !total)
