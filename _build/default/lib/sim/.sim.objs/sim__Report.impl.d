lib/sim/report.ml: Classify Isolation List Phenomena String
