lib/sim/interleave.mli: Core
