lib/sim/interleave.ml: Core List
