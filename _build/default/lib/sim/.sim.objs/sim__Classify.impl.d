lib/sim/classify.ml: Core Fmt Interleave Isolation List Phenomena Workload
