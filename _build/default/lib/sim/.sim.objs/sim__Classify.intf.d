lib/sim/classify.mli: Fmt Isolation Phenomena Workload
