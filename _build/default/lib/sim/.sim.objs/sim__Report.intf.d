lib/sim/report.mli: Classify Isolation Phenomena
