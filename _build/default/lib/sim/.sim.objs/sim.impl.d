lib/sim/sim.ml: Classify Interleave Report
