(* Umbrella module of the [sim] library: exhaustive interleaving
   enumeration, the empirical Table 3/4 classifier, and table rendering. *)

module Interleave = Interleave
module Classify = Classify
module Report = Report
