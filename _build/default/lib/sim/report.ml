(* Plain-text table rendering for the benches: fixed-width columns, a
   header rule, one row per isolation level. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~headers ~rows =
  let columns = List.length headers in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length (List.nth headers i))
          rows)
  in
  let line cells =
    String.concat "  " (List.map2 pad widths cells)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: rule :: List.map line rows) ^ "\n"

let possibility_cell = function
  | Isolation.Spec.Not_possible -> "Not Possible"
  | Isolation.Spec.Sometimes_possible -> "Sometimes"
  | Isolation.Spec.Possible -> "Possible"

(* Render an empirical table (from Classify) with phenomenon columns. *)
let render_classified table =
  match table with
  | [] -> ""
  | (_, first_row) :: _ ->
    let headers =
      "Isolation level"
      :: List.map
           (fun c -> Phenomena.Phenomenon.name c.Classify.phenomenon)
           first_row
    in
    let rows =
      List.map
        (fun (level, cells) ->
          Isolation.Level.name level
          :: List.map (fun c -> possibility_cell c.Classify.verdict) cells)
        table
    in
    render ~headers ~rows

(* Render a specification table for side-by-side comparison. *)
let render_spec ~levels ~columns lookup =
  let headers =
    "Isolation level" :: List.map Phenomena.Phenomenon.name columns
  in
  let rows =
    List.map
      (fun level ->
        Isolation.Level.name level
        :: List.map (fun p -> possibility_cell (lookup level p)) columns)
      levels
  in
  render ~headers ~rows
