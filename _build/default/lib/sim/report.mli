(** Plain-text table rendering for the benches. *)

val render : headers:string list -> rows:string list list -> string

val possibility_cell : Isolation.Spec.possibility -> string

val render_classified : (Isolation.Level.t * Classify.cell list) list -> string
(** An empirical table from {!Classify} as fixed-width text. *)

val render_spec :
  levels:Isolation.Level.t list ->
  columns:Phenomena.Phenomenon.t list ->
  (Isolation.Level.t -> Phenomena.Phenomenon.t -> Isolation.Spec.possibility) ->
  string
(** A specification matrix (e.g. {!Isolation.Spec.table4}) as text. *)
