(* The empirical isolation classifier: regenerates the paper's Table 4 by
   brute force. A cell (level, phenomenon) is decided by running every
   interleaving of each of the phenomenon's scenarios with all programs at
   that level and asking the scenario's verdict whether the anomaly
   materialized:

     - no scenario can exhibit it          -> Not Possible
     - every scenario can exhibit it       -> Possible
     - some can, some cannot               -> Sometimes Possible

   which is exactly the paper's usage: Cursor Stability's "Sometimes
   Possible" lost updates are possible on plain reads and impossible
   through a held cursor. *)

module P = Phenomena.Phenomenon
module Level = Isolation.Level
module Spec = Isolation.Spec
module Executor = Core.Executor
module Scenario = Workload.Scenario

type scenario_outcome = {
  scenario : Scenario.t;
  possible : bool;        (* some interleaving exhibits the anomaly *)
  witness : int list option; (* a schedule that exhibits it *)
  explored : int;         (* interleavings examined *)
}

type cell = {
  level : Level.t;
  phenomenon : P.t;
  outcomes : scenario_outcome list;
  verdict : Spec.possibility;
}

(* Run one scenario under one level across all interleavings. *)
let run_scenario ?(first_updater_wins = false) ?(next_key_locking = false)
    level (s : Scenario.t) =
  let cfg =
    Executor.config ~initial:s.initial ~predicates:s.predicates
      ~first_updater_wins ~next_key_locking
      (List.map (fun _ -> level) s.programs)
  in
  let sizes = Interleave.sizes_of_programs s.programs in
  let witness = ref None in
  let found, explored =
    Interleave.exists_merge sizes (fun schedule ->
        let r = Executor.run cfg s.programs ~schedule in
        if s.exhibits r then begin
          witness := Some schedule;
          true
        end
        else false)
  in
  { scenario = s; possible = found; witness = !witness; explored }

let verdict_of_outcomes outcomes =
  match outcomes with
  | [] -> invalid_arg "Classify: no scenarios for phenomenon"
  | _ ->
    let possibles = List.filter (fun o -> o.possible) outcomes in
    if possibles = [] then Spec.Not_possible
    else if List.length possibles = List.length outcomes then Spec.Possible
    else Spec.Sometimes_possible

let cell ?first_updater_wins ?next_key_locking level phenomenon =
  let outcomes =
    List.map
      (run_scenario ?first_updater_wins ?next_key_locking level)
      (Workload.Catalog.for_phenomenon phenomenon)
  in
  { level; phenomenon; outcomes; verdict = verdict_of_outcomes outcomes }

(* A full empirical row, over Table 4's columns. *)
let row ?first_updater_wins ?next_key_locking ?(columns = P.table4) level =
  List.map (cell ?first_updater_wins ?next_key_locking level) columns

(* The empirical Table 4 (optionally with extension rows). *)
let table4 ?first_updater_wins ?next_key_locking ?(levels = Level.table4_rows) () =
  List.map (fun l -> (l, row ?first_updater_wins ?next_key_locking l)) levels

(* The empirical Table 3: the four proposed ANSI levels against P0-P3. *)
let table3 ?first_updater_wins ?next_key_locking () =
  List.map
    (fun l ->
      (l, row ?first_updater_wins ?next_key_locking ~columns:Spec.table3_columns l))
    Spec.table3_rows

(* Compare an empirical table against the paper's specification. *)
type mismatch = {
  m_level : Level.t;
  m_phenomenon : P.t;
  expected : Spec.possibility;
  got : Spec.possibility;
}

let pp_mismatch ppf m =
  Fmt.pf ppf "%s / %s: paper says %a, measured %a" (Level.name m.m_level)
    (P.name m.m_phenomenon) Spec.pp_possibility m.expected Spec.pp_possibility
    m.got

let diff_with_spec table =
  List.concat_map
    (fun (level, cells) ->
      List.filter_map
        (fun c ->
          let expected = Spec.table4 level c.phenomenon in
          if expected = c.verdict then None
          else
            Some
              { m_level = level; m_phenomenon = c.phenomenon; expected;
                got = c.verdict })
        cells)
    table
