(** Exhaustive interleaving enumeration: every merge of the programs'
    attempt sequences, which — the engine being deterministic — explores
    every reachable history. *)

val merges : int list -> int list list
(** All merges of sequences with the given lengths, as 1-based stream
    indices. *)

val count : int list -> int
(** The multinomial coefficient: how many merges exist. *)

val sizes_of_programs : Core.Program.t list -> int list
(** Attempt counts per program (operations plus auto-commit). *)

val exists_merge : int list -> (int list -> bool) -> bool * int
(** [exists_merge sizes f] searches merges until [f] holds, returning
    (found, merges visited). *)

val count_merges : int list -> (int list -> bool) -> int * int
(** [(hits, total)] over all merges. *)
