(** The empirical isolation classifier: regenerates Table 4 (and Table 3)
    by exhausting the interleavings of each phenomenon's scenarios under
    each isolation level and asking the scenarios' verdicts. *)

module P = Phenomena.Phenomenon
module Level = Isolation.Level
module Spec = Isolation.Spec

type scenario_outcome = {
  scenario : Workload.Scenario.t;
  possible : bool;            (** some interleaving exhibits the anomaly *)
  witness : int list option;  (** a schedule that exhibits it *)
  explored : int;             (** interleavings examined *)
}

type cell = {
  level : Level.t;
  phenomenon : P.t;
  outcomes : scenario_outcome list;
  verdict : Spec.possibility;
}

val run_scenario :
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  Level.t ->
  Workload.Scenario.t ->
  scenario_outcome

val cell :
  ?first_updater_wins:bool -> ?next_key_locking:bool -> Level.t -> P.t -> cell

val row :
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?columns:P.t list ->
  Level.t ->
  cell list

val table4 :
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?levels:Level.t list ->
  unit ->
  (Level.t * cell list) list

val table3 :
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  unit ->
  (Level.t * cell list) list

type mismatch = {
  m_level : Level.t;
  m_phenomenon : P.t;
  expected : Spec.possibility;
  got : Spec.possibility;
}

val pp_mismatch : mismatch Fmt.t

val diff_with_spec : (Level.t * cell list) list -> mismatch list
(** Cells where the empirical verdict differs from the paper's matrix
    (expected to be empty). *)
