examples/bank_audit.ml: Core Hashtbl History Isolation List Printf Sim String Workload
