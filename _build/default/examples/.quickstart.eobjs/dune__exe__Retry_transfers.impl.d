examples/retry_transfers.ml: Core Isolation List Printf Random String
