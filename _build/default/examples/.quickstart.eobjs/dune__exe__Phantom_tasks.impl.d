examples/phantom_tasks.ml: Core History Isolation List Printf Sim Storage String
