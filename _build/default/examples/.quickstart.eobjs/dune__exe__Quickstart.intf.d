examples/quickstart.mli:
