examples/quickstart.ml: Core Fmt Format History Isolation List Phenomena Printf String
