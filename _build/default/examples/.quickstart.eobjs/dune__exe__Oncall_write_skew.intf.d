examples/oncall_write_skew.mli:
