examples/oncall_write_skew.ml: Core History Isolation List Phenomena Printf Sim
