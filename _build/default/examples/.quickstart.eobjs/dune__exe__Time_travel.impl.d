examples/time_travel.ml: Core Fmt Isolation List Printf Storage String
