examples/phantom_tasks.mli:
