examples/retry_transfers.mli:
