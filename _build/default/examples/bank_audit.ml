(* Inconsistent analysis (the paper's H1 and H2): an auditor sums two
   account balances while a transfer is in flight. Depending on the
   isolation level, the audit sees 100 (correct), 60 (dirty read, H1), or
   140 (read skew, H2).

     dune exec examples/bank_audit.exe *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor

let transfer =
  P.make ~name:"transfer"
    [ P.Read "checking"; P.Write ("checking", P.read_plus "checking" (-40));
      P.Read "savings"; P.Write ("savings", P.read_plus "savings" 40);
      P.Commit ]

let audit =
  P.make ~name:"audit" [ P.Read "checking"; P.Read "savings"; P.Commit ]

let initial = [ ("checking", 50); ("savings", 50) ]

(* The audit's view under one interleaving at one level. *)
let audit_view level schedule =
  let cfg = Executor.config ~initial [ level; level ] in
  let r = Executor.run cfg [ transfer; audit ] ~schedule in
  match
    ( Workload.Scenario.last_read r 2 "checking",
      Workload.Scenario.last_read r 2 "savings" )
  with
  | Some c, Some s -> (c + s, r)
  | _ -> (0, Executor.run cfg [ transfer; audit ] ~schedule)

(* Sweep every interleaving and report the audit totals each level can
   produce. *)
let totals_per_level level =
  let sizes = Sim.Interleave.sizes_of_programs [ transfer; audit ] in
  let totals = Hashtbl.create 4 in
  let _, explored =
    Sim.Interleave.exists_merge sizes (fun schedule ->
        let total, _ = audit_view level schedule in
        Hashtbl.replace totals total ();
        false)
  in
  let seen = Hashtbl.fold (fun t () acc -> t :: acc) totals [] in
  (List.sort compare seen, explored)

let () =
  Printf.printf
    "The bank invariant says checking + savings = 100. A transfer moves 40\n\
     while an audit sums the two accounts. Possible audit totals, over all\n\
     interleavings:\n\n";
  List.iter
    (fun level ->
      let totals, explored = totals_per_level level in
      Printf.printf "  %-26s %-18s (%d interleavings)\n" (L.name level)
        (String.concat ", " (List.map string_of_int totals))
        explored)
    [ L.Read_uncommitted; L.Read_committed; L.Repeatable_read;
      L.Serializable; L.Snapshot; L.Oracle_read_consistency ];
  Printf.printf
    "\n\
     100 is the consistent answer. 60 is the paper's H1 (the audit read the\n\
     debited checking account before the credit committed - a dirty read).\n\
     140 is the paper's H2 (read skew: checking before the transfer,\n\
     savings after it committed). REPEATABLE READ, SERIALIZABLE and the\n\
     multiversion levels only ever answer 100.\n\n";
  (* A read-only audit (the [BHG] Multiversion Mixed Method) gets the
     consistent answer on a locking database without ever blocking. *)
  let ro_totals =
    let sizes = Sim.Interleave.sizes_of_programs [ transfer; audit ] in
    let totals = Hashtbl.create 4 in
    let blocked = ref 0 in
    let _ =
      Sim.Interleave.exists_merge sizes (fun schedule ->
          let cfg =
            Executor.config ~initial ~read_only:[ false; true ]
              [ L.Serializable; L.Serializable ]
          in
          let r = Executor.run cfg [ transfer; audit ] ~schedule in
          blocked := !blocked + r.Executor.blocked_attempts;
          (match
             ( Workload.Scenario.last_read r 2 "checking",
               Workload.Scenario.last_read r 2 "savings" )
           with
          | Some c, Some s -> Hashtbl.replace totals (c + s) ()
          | _ -> ());
          false)
    in
    (List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) totals []),
     !blocked)
  in
  let totals, blocked = ro_totals in
  Printf.printf
    "A READ-ONLY audit at SERIALIZABLE (the Multiversion Mixed Method)\n\
     answers %s across all interleavings, with %d blocked attempts.\n\n"
    (String.concat ", " (List.map string_of_int totals))
    blocked;
  (* Show the two famous bad histories concretely. *)
  let dirty_total, dirty = audit_view L.Read_uncommitted [ 1; 1; 2; 2; 2; 1; 1; 1 ] in
  Printf.printf "H1 live at READ UNCOMMITTED (audit total %d):\n  %s\n" dirty_total
    (History.to_string dirty.Executor.history);
  let skew_total, skew = audit_view L.Read_committed [ 2; 1; 1; 1; 1; 1; 2; 2 ] in
  Printf.printf "H2 live at READ COMMITTED (audit total %d):\n  %s\n" skew_total
    (History.to_string skew.Executor.history)
