(* Phantoms under Snapshot Isolation: the paper's §4.2 job-task scenario.
   A project's tasks may total at most 8 hours. Two planners each scan the
   task list, see 7 hours, and insert a 1-hour task. The inserts touch
   different rows, so First-Committer-Wins lets both commit: 9 hours.
   Predicate locks (SERIALIZABLE) are the only cure.

     dune exec examples/phantom_tasks.exe *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor
module Predicate = Storage.Predicate

let tasks = Predicate.key_prefix ~name:"Tasks" "task_"

let add_task key =
  P.make ~name:("add-" ^ key)
    [
      P.Scan tasks;
      P.Insert
        (key, fun env -> if P.scan_sum env "Tasks" <= 7 then 1 else 0);
      P.Commit;
    ]

let initial = [ ("task_design", 3); ("task_review", 4) ]

let run level schedule =
  let cfg = Executor.config ~initial ~predicates:[ tasks ] [ level; level ] in
  Executor.run cfg [ add_task "task_docs"; add_task "task_tests" ] ~schedule

let total final =
  List.fold_left
    (fun acc (k, v) ->
      if String.length k >= 5 && String.sub k 0 5 = "task_" then acc + v else acc)
    0 final

let worst_case level =
  let programs = [ add_task "task_docs"; add_task "task_tests" ] in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let worst = ref 0 in
  let _ =
    Sim.Interleave.count_merges sizes (fun schedule ->
        let r = run level schedule in
        worst := max !worst (total r.Executor.final);
        false)
  in
  !worst

let () =
  Printf.printf
    "Constraint: total task hours <= 8. Current total: 7. Two planners\n\
     each scan the tasks and insert a 1-hour task if there is room.\n\n";
  List.iter
    (fun level ->
      let worst = worst_case level in
      Printf.printf "  %-26s worst-case total %d hours%s\n" (L.name level)
        worst
        (if worst > 8 then "   <- PHANTOM BROKE THE CONSTRAINT" else ""))
    [ L.Read_committed; L.Repeatable_read; L.Snapshot; L.Serializable ];
  Printf.printf "\nThe phantom, live under Snapshot Isolation:\n";
  let r = run L.Snapshot [ 1; 2; 1; 2; 1; 2 ] in
  Printf.printf "  %s\n" (History.to_string r.Executor.history);
  Printf.printf "  final: %s (total %d)\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.Executor.final))
    (total r.Executor.final);
  Printf.printf
    "\n\
     Note the asymmetry the paper highlights in Remark 9 and Table 4:\n\
     Snapshot Isolation never shows a phantom to a RE-READ (A3 impossible -\n\
     each scan sees the same snapshot), yet the predicate constraint still\n\
     breaks (P3 'Sometimes Possible'). REPEATABLE READ is exactly the\n\
     opposite: its re-scans can see phantoms, but its long item locks stop\n\
     the write-skew flavors. Only SERIALIZABLE's long predicate locks close\n\
     the scenario completely.\n";
  (* Also show SERIALIZABLE resolving it: one planner deadlocks/waits and
     re-checks, finding no room. *)
  let r = run L.Serializable [ 1; 2; 1; 2; 1; 2 ] in
  Printf.printf "\nSERIALIZABLE on the same schedule:\n  %s\n  final total: %d\n"
    (History.to_string r.Executor.history)
    (total r.Executor.final)
