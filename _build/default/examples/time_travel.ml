(* Time travel (paper §4.2): "Snapshot Isolation gives the freedom to run
   transactions with very old timestamps, thereby allowing them to do time
   travel — taking a historical perspective of the database — while never
   blocking or being blocked by writes."

   A price feed is updated continuously; analysts open read-only
   transactions pinned at past timestamps and reconstruct history, while
   an update transaction with an old snapshot gets aborted the moment it
   tries to write the present.

     dune exec examples/time_travel.exe *)

module Db = Core.Db
module L = Isolation.Level

let ok = function
  | Db.Ok v -> v
  | Db.Blocked _ -> failwith "unexpected blocking in a multiversion database"
  | Db.Rolled_back r ->
    failwith (Fmt.str "rolled back: %a" Core.Engine.pp_abort_reason r)

let () =
  let db = Db.open_db ~initial:[ ("price", 100) ] ~multiversion:true () in
  (* Five committed price updates: timestamps 1..5. *)
  let prices = [ 101; 105; 98; 110; 120 ] in
  List.iter
    (fun p ->
      let tx = Db.begin_tx db ~level:L.Snapshot in
      ok (Db.write tx "price" p);
      ok (Db.commit tx))
    prices;
  Printf.printf "committed price history: 100 (ts0) %s\n\n"
    (String.concat " "
       (List.mapi (fun i p -> Printf.sprintf "%d (ts%d)" p (i + 1)) prices));
  (* Reconstruct the series by reading at each historical timestamp. *)
  Printf.printf "time-travel reads:\n";
  for ts = 0 to 5 do
    let tx = Db.begin_tx_at db ~level:L.Snapshot ~start_ts:ts in
    match ok (Db.read tx "price") with
    | Some v -> Printf.printf "  as of ts%d the price was %d\n" ts v
    | None -> Printf.printf "  as of ts%d the price did not exist\n" ts
  done;
  (* A historical reader is never blocked by a concurrent writer... *)
  let writer = Db.begin_tx db ~level:L.Snapshot in
  ok (Db.write writer "price" 130);
  let analyst = Db.begin_tx_at db ~level:L.Snapshot ~start_ts:2 in
  (match ok (Db.read analyst "price") with
  | Some v ->
    Printf.printf
      "\nwith an uncommitted write in flight, the ts2 analyst still reads %d\n\
       without blocking\n"
      v
  | None -> assert false);
  ok (Db.commit writer);
  (* ...but an old transaction that tries to UPDATE the present dies. *)
  let stale = Db.begin_tx_at db ~level:L.Snapshot ~start_ts:2 in
  ok (Db.write stale "price" 1);
  (match Db.commit stale with
  | Db.Rolled_back Core.Engine.First_committer_wins ->
    Printf.printf
      "\na ts2 transaction updating the price is aborted at commit\n\
       (First-Committer-Wins): \"update transactions with very old\n\
       timestamps would abort if they tried to update any data item that\n\
       had been updated by more recent transactions\" (paper section 4.2)\n"
  | _ -> failwith "expected a First-Committer-Wins abort");
  (* The version store retains the full lineage. *)
  match Db.version_store db with
  | None -> assert false
  | Some vs ->
    Printf.printf "\nversion chain for \"price\" (newest first):\n";
    List.iter
      (fun v ->
        Printf.printf "  ts%-2d -> %s (written by T%d)\n"
          v.Storage.Version_store.commit_ts
          (match v.Storage.Version_store.value with
          | Some x -> string_of_int x
          | None -> "deleted")
          v.Storage.Version_store.writer)
      (Storage.Version_store.chain vs "price")
