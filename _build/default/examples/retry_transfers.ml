(* The application-side pattern for optimistic isolation: retry loops.

   Under Snapshot Isolation, conflicting commits die by
   First-Committer-Wins instead of waiting; real applications wrap their
   transactions in a retry loop. This example runs *batches of concurrent
   transfers* — every transaction in a batch reads its snapshot before
   any of them commits — so write-write conflicts genuinely occur, the
   losers are retried, and the total-balance invariant still survives.

     dune exec examples/retry_transfers.exe *)

module Db = Core.Db
module L = Isolation.Level

let accounts = 6
let account i = Printf.sprintf "acct%d" i
let initial = List.init accounts (fun i -> (account i, 100))
let total_expected = 100 * accounts

type transfer = { src : string; dst : string; amount : int }

(* Execute one batch concurrently: begin and read all transactions first,
   then write, then commit each. Returns the transfers that were rolled
   back by First-Committer-Wins and must be retried. *)
let run_batch db batch =
  let sessions =
    List.map
      (fun t ->
        let tx = Db.begin_tx db ~level:L.Snapshot in
        let read k =
          match Db.read tx k with Db.Ok (Some v) -> v | _ -> 0
        in
        (t, tx, read t.src, read t.dst))
      batch
  in
  List.iter
    (fun (t, tx, s, d) ->
      if s >= t.amount then begin
        ignore (Db.write tx t.src (s - t.amount));
        ignore (Db.write tx t.dst (d + t.amount))
      end)
    sessions;
  List.filter_map
    (fun (t, tx, s, _) ->
      if s < t.amount then begin
        ignore (Db.abort tx);
        None (* insufficient funds: drop, not a conflict *)
      end
      else
        match Db.commit tx with
        | Db.Ok () -> None
        | Db.Rolled_back Core.Engine.First_committer_wins -> Some t
        | Db.Rolled_back _ | Db.Blocked _ -> Some t)
    sessions

let () =
  let db = Db.open_db ~initial ~multiversion:true () in
  let rand = Random.State.make [| 2026 |] in
  let n_transfers = 120 and batch_size = 8 in
  let transfers =
    List.init n_transfers (fun _ ->
        let src = Random.State.int rand accounts in
        let dst = (src + 1 + Random.State.int rand (accounts - 1)) mod accounts in
        { src = account src; dst = account dst;
          amount = 1 + Random.State.int rand 20 })
  in
  let retries = ref 0 and rounds = ref 0 in
  let rec drain pending =
    if pending <> [] && !rounds < 1000 then begin
      incr rounds;
      let rec batches = function
        | [] -> []
        | work ->
          let batch = List.filteri (fun i _ -> i < batch_size) work in
          let rest = List.filteri (fun i _ -> i >= batch_size) work in
          run_batch db batch @ batches rest
      in
      let failed = batches pending in
      retries := !retries + List.length failed;
      drain failed
    end
  in
  drain transfers;
  let final = Db.state db in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 final in
  Printf.printf
    "%d transfers over %d accounts, run %d at a time under Snapshot\n\
     Isolation with a retry loop:\n"
    n_transfers accounts batch_size;
  Printf.printf "  rounds: %d   retries after First-Committer-Wins: %d\n"
    !rounds !retries;
  Printf.printf "  final balances: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) final));
  Printf.printf "  total = %d (expected %d) -> invariant %s\n" total
    total_expected
    (if total = total_expected then "PRESERVED" else "BROKEN");
  Printf.printf
    "\nNo transaction ever blocked; every write-write conflict surfaced as\n\
     a First-Committer-Wins rollback and was re-run on a fresh snapshot -\n\
     the section 4.2 trade for short, minimally conflicting updates.\n";
  assert (total = total_expected)
