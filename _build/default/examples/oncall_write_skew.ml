(* Write skew (the paper's A5B / H5), in its classic clinical guise: at
   least one doctor must stay on call. Two doctors each check the roster
   and, seeing two on call, both sign off. Under Snapshot Isolation both
   transactions commit from the same snapshot and the ward is left empty;
   SERIALIZABLE and REPEATABLE READ prevent it.

     dune exec examples/oncall_write_skew.exe *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor

(* 1 = on call, 0 = off. A doctor signs off only if the other is on. *)
let sign_off ~self ~other =
  P.make ~name:(self ^ "-signs-off")
    [
      P.Read "alice"; P.Read "bob";
      P.Write
        ( self,
          fun env ->
            if P.value_of env other = 1 then 0 else P.value_of env self );
      P.Commit;
    ]

let initial = [ ("alice", 1); ("bob", 1) ]

let on_call final =
  List.assoc "alice" final + List.assoc "bob" final

let run level schedule =
  let cfg = Executor.config ~initial [ level; level ] in
  Executor.run cfg
    [ sign_off ~self:"alice" ~other:"bob"; sign_off ~self:"bob" ~other:"alice" ]
    ~schedule

(* Across every interleaving: can the ward be left with nobody on call? *)
let worst_case level =
  let programs =
    [ sign_off ~self:"alice" ~other:"bob"; sign_off ~self:"bob" ~other:"alice" ]
  in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let worst = ref 2 and aborts = ref 0 and runs = ref 0 in
  let _ =
    Sim.Interleave.count_merges sizes (fun schedule ->
        let r = run level schedule in
        incr runs;
        worst := min !worst (on_call r.Executor.final);
        aborts :=
          !aborts
          + List.length
              (List.filter (fun (_, s) -> s <> Executor.Committed) r.Executor.statuses);
        false)
  in
  (!worst, !aborts, !runs)

let () =
  Printf.printf
    "Hospital rule: at least one of Alice and Bob must be on call.\n\
     Both are on call; both try to sign off after checking the roster.\n\n";
  List.iter
    (fun level ->
      let worst, aborts, runs = worst_case level in
      Printf.printf
        "  %-26s worst case %d on call   (%d aborts across %d interleavings)%s\n"
        (L.name level) worst aborts runs
        (if worst = 0 then "   <- WRITE SKEW" else ""))
    [ L.Read_committed; L.Repeatable_read; L.Serializable; L.Snapshot ];
  Printf.printf "\nThe skew, live under Snapshot Isolation:\n";
  let r = run L.Snapshot [ 1; 1; 2; 2; 1; 2; 1; 2 ] in
  Printf.printf "  %s\n" (History.to_string r.Executor.history);
  Printf.printf "  final roster: alice=%d bob=%d\n"
    (List.assoc "alice" r.Executor.final)
    (List.assoc "bob" r.Executor.final);
  Printf.printf "  write skew (A5B) detected: %b\n"
    (Phenomena.Detect.occurs Phenomena.Phenomenon.A5B r.Executor.history);
  Printf.printf
    "\n\
     Why SI misses it: each doctor's transaction is individually correct\n\
     and First-Committer-Wins only compares WRITE sets - Alice wrote only\n\
     her row, Bob only his. The paper uses exactly this shape (H5) to show\n\
     REPEATABLE READ and Snapshot Isolation are incomparable (Remark 9).\n"
