(* Quickstart: open a database, run concurrent sessions at different
   isolation levels, and watch the anomalies the paper names appear and
   disappear as the level is raised.

     dune exec examples/quickstart.exe *)

module Db = Core.Db
module L = Isolation.Level

let ok = function
  | Db.Ok v -> v
  | Db.Blocked holders ->
    failwith
      (Printf.sprintf "blocked behind %s"
         (String.concat "," (List.map string_of_int holders)))
  | Db.Rolled_back r -> failwith (Fmt.str "rolled back: %a" Core.Engine.pp_abort_reason r)

let section title = Printf.printf "\n== %s ==\n" title

(* A dirty read (P1): T2 reads T1's uncommitted deposit, which is then
   rolled back — T2 acted on money that never existed. *)
let dirty_read_demo level =
  let db = Db.open_db ~initial:[ ("savings", 100) ] () in
  let t1 = Db.begin_tx db ~level in
  let t2 = Db.begin_tx db ~level in
  ignore (Db.write t1 "savings" 1000);
  let seen =
    match Db.read t2 "savings" with
    | Db.Ok v -> Fmt.str "read %a" Fmt.(option int) v
    | Db.Blocked _ -> "blocked until T1 finishes"
    | Db.Rolled_back _ -> "rolled back"
  in

  ignore (Db.abort t1);
  (* If T2 blocked, it can retry now that T1 is gone. *)
  let seen =
    if seen = "blocked until T1 finishes" then
      match Db.read t2 "savings" with
      | Db.Ok v -> Fmt.str "%s; then read %a" seen Fmt.(option int) v
      | Db.Blocked _ | Db.Rolled_back _ -> seen
    else seen
  in
  ignore (Db.commit t2);
  Printf.printf "%-18s T1 deposits 900 (uncommitted), T2 %s, T1 aborts\n"
    (L.name level) seen;
  Printf.printf "%18s history: %s\n" "" (History.to_string (Db.history db))

(* First-committer-wins (Snapshot Isolation): two concurrent updates of
   the same row cannot both commit, so no update is ever lost. *)
let snapshot_demo () =
  section "Snapshot Isolation: First-Committer-Wins (paper section 4.2)";
  let db = Db.open_db ~initial:[ ("counter", 0) ] ~multiversion:true () in
  let t1 = Db.begin_tx db ~level:L.Snapshot in
  let t2 = Db.begin_tx db ~level:L.Snapshot in
  let v1 = ok (Db.read t1 "counter") and v2 = ok (Db.read t2 "counter") in
  Printf.printf "T1 and T2 both read counter = %s / %s (no blocking, ever)\n"
    (Fmt.str "%a" Fmt.(option int) v1)
    (Fmt.str "%a" Fmt.(option int) v2);
  ignore (Db.write t1 "counter" 1);
  ignore (Db.write t2 "counter" 1);
  ignore (Db.commit t1);
  (match Db.commit t2 with
  | Db.Rolled_back Core.Engine.First_committer_wins ->
    Printf.printf "T1 committed; T2 was aborted by First-Committer-Wins\n"
  | _ -> Printf.printf "unexpected: T2 was not aborted\n");
  Printf.printf "history: %s\n" (History.to_string (Db.history db))

(* Analyzing histories directly: parse the paper's notation and ask which
   phenomena occur. *)
let analysis_demo () =
  section "History analysis: the paper's H1 in one call";
  let h1 = History.of_string "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" in
  Printf.printf "H1 = %s\n" (History.to_string h1);
  Printf.printf "serializable: %b\n" (History.Conflict.is_serializable h1);
  List.iter
    (fun w -> Format.printf "  %a@." Phenomena.Detect.pp_witness w)
    (List.concat_map
       (fun p -> Phenomena.Detect.detect p h1)
       Phenomena.Phenomenon.all)

let () =
  section "Dirty reads (P1) across isolation levels (paper Table 4, column P1)";
  List.iter dirty_read_demo
    [ L.Read_uncommitted; L.Read_committed; L.Serializable ];
  snapshot_demo ();
  analysis_demo ()
