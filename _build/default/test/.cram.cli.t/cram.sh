  $ isolation_lab analyze "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1"
  $ isolation_lab analyze "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1"
  $ isolation_lab run --level "read uncommitted" --init "x=50, y=50" --schedule 1112221111 "r x; w x -= 40; r y; w y += 40 | r x; r y"
  $ isolation_lab run --level si --init "x=50, y=50" --schedule 1112221111 "r x; w x -= 40; r y; w y += 40 | r x; r y"
  $ isolation_lab classify --level "cursor stability" -p P4
  $ isolation_lab analyze "r1[x"
  $ isolation_lab run --level bogus "r x"
