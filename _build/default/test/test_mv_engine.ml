(* Behavioral tests for the multiversion engine: Snapshot Isolation's
   read and commit rules, First-Updater-Wins, Oracle Read Consistency's
   per-statement snapshots and first-writer-wins locks, and time travel. *)

module P = Core.Program
module L = Isolation.Level
module Ph = Phenomena.Phenomenon
module Executor = Core.Executor
module Predicate = Storage.Predicate

let run = Support.run

let test_si_reads_snapshot () =
  (* T2 reads x twice around T1's committed update: both reads see the
     snapshot value. *)
  let t1 = P.make [ P.Write ("x", P.const 9); P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Read "x"; P.Commit ] in
  let r = run ~initial:[ ("x", 1) ] L.Snapshot [ t1; t2 ] [ 2; 1; 1; 2; 2 ] in
  Alcotest.(check bool) "reads are repeatable" false
    (Workload.Scenario.unrepeatable_read r 2 "x");
  Alcotest.(check int) "reads never block" 0 r.Executor.blocked_attempts

let test_si_sees_own_writes () =
  let t = P.make [ P.Write ("x", P.const 7); P.Read "x"; P.Commit ] in
  let r = run ~initial:[ ("x", 1) ] L.Snapshot [ t ] [ 1; 1; 1 ] in
  Alcotest.(check (option (option int))) "own write visible"
    (Some (Some 7))
    (Workload.Scenario.last_read r 1 "x" |> Option.some)

let test_si_fcw_aborts_second_committer () =
  let u amount = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" amount); P.Commit ] in
  let r =
    run ~initial:[ ("x", 100) ] L.Snapshot [ u 30; u 20 ] [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check Support.exec_status) "T2 commits first" Executor.Committed
    (List.assoc 2 r.Executor.statuses);
  Alcotest.(check Support.exec_status) "T1 aborted by FCW"
    (Executor.Aborted Core.Engine.First_committer_wins)
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check (option int)) "no lost update" (Some 120)
    (List.assoc_opt "x" r.Executor.final)

let test_si_disjoint_writes_both_commit () =
  let t1 = P.make [ P.Write ("x", P.const 1); P.Commit ] in
  let t2 = P.make [ P.Write ("y", P.const 2); P.Commit ] in
  let r = run ~initial:[ ("x", 0); ("y", 0) ] L.Snapshot [ t1; t2 ] [ 1; 2; 1; 2 ] in
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses)

let test_si_write_skew_materializes () =
  let skew from_ =
    P.make
      [ P.Read "x"; P.Read "y";
        P.Write
          ( from_,
            fun env ->
              if P.value_of env "x" + P.value_of env "y" >= 90 then
                P.value_of env from_ - 90
              else P.value_of env from_ );
        P.Commit ]
  in
  let r =
    run ~initial:[ ("x", 50); ("y", 50) ] L.Snapshot [ skew "y"; skew "x" ]
      [ 1; 1; 2; 2; 1; 2; 1; 2 ]
  in
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses);
  Alcotest.(check bool) "constraint x+y >= 0 broken" true
    (List.assoc "x" r.Executor.final + List.assoc "y" r.Executor.final < 0);
  Alcotest.(check bool) "A5B in the trace" true
    (Phenomena.Detect.occurs Ph.A5B r.Executor.history)

let test_fuw_aborts_at_write_time () =
  let u amount = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" amount); P.Commit ] in
  (* T2 updates and commits entirely inside T1's lifetime; T1 then tries
     to write and dies immediately (not at commit). *)
  let r =
    run ~initial:[ ("x", 100) ] ~first_updater_wins:true L.Snapshot
      [ u 30; u 20 ] [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check Support.exec_status) "T1 aborted by FUW"
    (Executor.Aborted Core.Engine.First_updater_wins)
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check (option int)) "T2's update stands" (Some 120)
    (List.assoc_opt "x" r.Executor.final)

let test_fuw_blocks_behind_active_writer () =
  let t1 = P.make [ P.Write ("x", P.const 1); P.Commit ] in
  let t2 = P.make [ P.Write ("x", P.const 2); P.Commit ] in
  let r =
    run ~initial:[ ("x", 0) ] ~first_updater_wins:true L.Snapshot [ t1; t2 ]
      [ 1; 2; 2; 1; 2 ]
  in
  Alcotest.(check bool) "the second writer waited" true
    (r.Executor.blocked_attempts > 0);
  (* After T1 commits, T2's retried write sees the conflict and aborts. *)
  Alcotest.(check Support.exec_status) "T2 aborted by FUW"
    (Executor.Aborted Core.Engine.First_updater_wins)
    (List.assoc 2 r.Executor.statuses)

let test_oracle_statement_level_reads () =
  (* Oracle Read Consistency: the second read (a new statement) sees the
     committed update — P2 observable, unlike SI. *)
  let t1 = P.make [ P.Read "x"; P.Read "x"; P.Commit ] in
  let t2 = P.make [ P.Write ("x", P.const 9); P.Commit ] in
  let sched = [ 1; 2; 2; 1; 1 ] in
  let orc = run ~initial:[ ("x", 1) ] L.Oracle_read_consistency [ t1; t2 ] sched in
  Alcotest.(check bool) "fuzzy read under Read Consistency" true
    (Workload.Scenario.unrepeatable_read orc 1 "x");
  let si = run ~initial:[ ("x", 1) ] L.Snapshot [ t1; t2 ] sched in
  Alcotest.(check bool) "repeatable under SI" false
    (Workload.Scenario.unrepeatable_read si 1 "x")

let test_oracle_first_writer_wins_allows_lost_update () =
  let u amount = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" amount); P.Commit ] in
  let r =
    run ~initial:[ ("x", 100) ] L.Oracle_read_consistency [ u 30; u 20 ]
      [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses);
  Alcotest.(check (option int)) "T2's update is lost (P4)" (Some 130)
    (List.assoc_opt "x" r.Executor.final)

let test_oracle_for_update_cursor_prevents_p4c () =
  let t1 =
    P.make
      [
        P.Open_cursor { cursor = "c"; pred = Predicate.item "x"; for_update = true };
        P.Fetch "c";
        P.Cursor_write ("c", P.read_plus "x" 30);
        P.Commit;
      ]
  in
  let t2 = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" 20); P.Commit ] in
  let r =
    run ~initial:[ ("x", 100) ] L.Oracle_read_consistency [ t1; t2 ]
      [ 1; 1; 2; 2; 1; 1; 2 ]
  in
  Alcotest.(check bool) "no P4C" false
    (Phenomena.Detect.occurs Ph.P4C r.Executor.history)

let test_si_no_phantom_on_rescan () =
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let inserter = P.make [ P.Insert ("emp_new", P.const 1); P.Commit ] in
  let r =
    run ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] L.Snapshot
      [ scanner; inserter ] [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "scans agree under SI" false
    (Workload.Scenario.unrepeatable_scan r 1 "Emp")

let test_si_insert_visible_to_own_scan () =
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let t = P.make [ P.Insert ("emp_new", P.const 1); P.Scan emp; P.Commit ] in
  let r = run ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] L.Snapshot [ t ] [ 1; 1; 1 ] in
  match Workload.Scenario.scans_of r 1 "Emp" with
  | [ rows ] ->
    Alcotest.(check (list (pair string int)))
      "own insert visible" [ ("emp_a", 1); ("emp_new", 1) ] rows
  | _ -> Alcotest.fail "expected exactly one scan"

let test_si_delete_installs_tombstone () =
  let t1 = P.make [ P.Delete "x"; P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Commit ] in
  (* T2 starts after T1 commits: sees the deletion. *)
  let r = run ~initial:[ ("x", 5) ] L.Snapshot [ t1; t2 ] [ 1; 1; 2; 2 ] in
  Alcotest.(check (option (option int))) "read sees absence" (Some None)
    (Some (Workload.Scenario.last_read r 2 "x"));
  Alcotest.(check (list (pair string int))) "final state empty" []
    r.Executor.final

(* Serializable SI (the extension level): commit-time read validation
   kills write skew, read skew and the job-task phantom while keeping
   SI's never-blocking reads. *)
let test_ssi_prevents_write_skew () =
  let skew from_ =
    P.make
      [ P.Read "x"; P.Read "y";
        P.Write
          ( from_,
            fun env ->
              if P.value_of env "x" + P.value_of env "y" >= 90 then
                P.value_of env from_ - 90
              else P.value_of env from_ );
        P.Commit ]
  in
  let r =
    run ~initial:[ ("x", 50); ("y", 50) ] L.Serializable_snapshot
      [ skew "y"; skew "x" ] [ 1; 1; 2; 2; 1; 2; 1; 2 ]
  in
  Alcotest.(check Support.exec_status) "second committer fails validation"
    (Executor.Aborted Core.Engine.Serialization_failure)
    (List.assoc 2 r.Executor.statuses);
  Alcotest.(check bool) "constraint preserved" true
    (List.assoc "x" r.Executor.final + List.assoc "y" r.Executor.final >= 0);
  Alcotest.(check int) "reads still never block" 0 r.Executor.blocked_attempts

let test_ssi_prevents_predicate_phantom () =
  let tasks = Predicate.key_prefix ~name:"Tasks" "task_" in
  let add key =
    P.make
      [ P.Scan tasks;
        P.Insert (key, fun env -> if P.scan_sum env "Tasks" <= 7 then 1 else 0);
        P.Commit ]
  in
  let r =
    run
      ~initial:[ ("task_a", 3); ("task_b", 4) ]
      ~predicates:[ tasks ] L.Serializable_snapshot
      [ add "task_x"; add "task_y" ] [ 1; 2; 1; 2; 1; 2 ]
  in
  Alcotest.(check Support.exec_status) "phantom insert fails validation"
    (Executor.Aborted Core.Engine.Serialization_failure)
    (List.assoc 2 r.Executor.statuses);
  let total =
    List.fold_left
      (fun acc (k, v) ->
        if String.length k >= 5 && String.sub k 0 5 = "task_" then acc + v
        else acc)
      0 r.Executor.final
  in
  Alcotest.(check int) "hours constraint holds" 8 total

let test_ssi_read_only_never_aborts () =
  (* A pure reader concurrent with a writer that commits first: the reader
     reads its snapshot and must still fail validation only if it commits
     AFTER a conflicting write... which it does here; the point of SSI vs
     plain serializability checks is precision, so verify the abort is
     exactly when required: reader finishing before the writer commits is
     fine. *)
  let reader = P.make [ P.Read "x"; P.Read "y"; P.Commit ] in
  let writer = P.make [ P.Write ("x", P.const 9); P.Commit ] in
  (* Reader commits before the writer: no conflict. *)
  let r1 =
    run ~initial:[ ("x", 1); ("y", 2) ] L.Serializable_snapshot
      [ reader; writer ] [ 1; 2; 1; 1; 2 ]
  in
  Alcotest.(check bool) "reader first: both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r1.Executor.statuses);
  (* Writer commits inside the reader's window: the reader's validation
     fails (conservative SSI aborts on the rw-antidependency). *)
  let r2 =
    run ~initial:[ ("x", 1); ("y", 2) ] L.Serializable_snapshot
      [ reader; writer ] [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check Support.exec_status) "reader aborted after concurrent commit"
    (Executor.Aborted Core.Engine.Serialization_failure)
    (List.assoc 1 r2.Executor.statuses)

(* Time travel (§4.2): a read-only transaction with an old Start-Timestamp
   sees the historical database and never blocks. *)
let test_time_travel () =
  let db =
    Core.Db.open_db ~initial:[ ("x", 1) ] ~multiversion:true ()
  in
  let w = Core.Db.begin_tx db ~level:L.Snapshot in
  assert (Core.Db.write w "x" 2 = Core.Db.Ok ());
  assert (Core.Db.commit w = Core.Db.Ok ());
  let w2 = Core.Db.begin_tx db ~level:L.Snapshot in
  assert (Core.Db.write w2 "x" 3 = Core.Db.Ok ());
  assert (Core.Db.commit w2 = Core.Db.Ok ());
  let historical = Core.Db.begin_tx_at db ~level:L.Snapshot ~start_ts:1 in
  (match Core.Db.read historical "x" with
  | Core.Db.Ok (Some v) -> Alcotest.(check int) "sees x as of ts 1" 2 v
  | _ -> Alcotest.fail "historical read failed");
  let ancient = Core.Db.begin_tx_at db ~level:L.Snapshot ~start_ts:0 in
  match Core.Db.read ancient "x" with
  | Core.Db.Ok (Some v) -> Alcotest.(check int) "sees the initial x" 1 v
  | _ -> Alcotest.fail "ancient read failed"

(* An update transaction with a very old timestamp aborts if it touches
   anything updated since (§4.2). *)
let test_time_travel_update_aborts () =
  let db = Core.Db.open_db ~initial:[ ("x", 1) ] ~multiversion:true () in
  let w = Core.Db.begin_tx db ~level:L.Snapshot in
  assert (Core.Db.write w "x" 2 = Core.Db.Ok ());
  assert (Core.Db.commit w = Core.Db.Ok ());
  let old = Core.Db.begin_tx_at db ~level:L.Snapshot ~start_ts:0 in
  assert (Core.Db.write old "x" 9 = Core.Db.Ok ());
  match Core.Db.commit old with
  | Core.Db.Rolled_back Core.Engine.First_committer_wins -> ()
  | _ -> Alcotest.fail "expected a First-Committer-Wins abort"

(* Version garbage collection: a vacuum with no active transactions keeps
   one version per key; reads at or above the horizon are unchanged. *)
let test_vacuum () =
  let e = Core.Mv_engine.create ~initial:[ ("x", 0) ] ~predicates:[] () in
  let module VS = Storage.Version_store in
  for i = 1 to 5 do
    Core.Mv_engine.begin_txn e i ~level:Core.Mv_engine.Snapshot_isolation;
    ignore (Core.Mv_engine.step e i (P.Write ("x", P.const i)));
    ignore (Core.Mv_engine.step e i P.Commit)
  done;
  let vs = Core.Mv_engine.version_store e in
  Alcotest.(check int) "six versions before" 6 (VS.version_count vs);
  (* An active reader pins its snapshot. *)
  Core.Mv_engine.begin_txn_at e 10 ~level:Core.Mv_engine.Snapshot_isolation
    ~start_ts:3;
  let dropped = Core.Mv_engine.vacuum e in
  Alcotest.(check int) "dropped below the pinned snapshot" 3 dropped;
  (match Core.Mv_engine.step e 10 (P.Read "x") with
  | Core.Mv_engine.Progress -> ()
  | _ -> Alcotest.fail "pinned reader must proceed");
  Alcotest.(check (option (option int))) "pinned reader still sees ts3"
    (Some (Some 3))
    (Some (Core.Program.read_result (Core.Mv_engine.env e 10) "x"));
  ignore (Core.Mv_engine.step e 10 P.Commit);
  (* With nothing active, everything but the latest goes. *)
  let dropped = Core.Mv_engine.vacuum e in
  Alcotest.(check int) "rest dropped" 2 dropped;
  Alcotest.(check int) "one version left" 1 (VS.version_count vs);
  Alcotest.(check (option int)) "latest value intact" (Some 5)
    (VS.read_at vs ~ts:5 "x")

let test_prune_preserves_horizon_reads () =
  let module VS = Storage.Version_store in
  let vs = VS.of_list [ ("x", 0); ("y", 0) ] in
  VS.install vs ~writer:1 ~commit_ts:1 [ ("x", Some 1) ];
  VS.install vs ~writer:2 ~commit_ts:2 [ ("x", Some 2); ("y", None) ];
  VS.install vs ~writer:3 ~commit_ts:3 [ ("x", Some 3) ];
  let before =
    List.map (fun ts -> (VS.read_at vs ~ts "x", VS.read_at vs ~ts "y")) [ 2; 3 ]
  in
  ignore (VS.prune vs ~horizon:2);
  let after =
    List.map (fun ts -> (VS.read_at vs ~ts "x", VS.read_at vs ~ts "y")) [ 2; 3 ]
  in
  Alcotest.(check (list (pair (option int) (option int))))
    "reads at and above the horizon unchanged" before after

let suite =
  [
    Alcotest.test_case "vacuum" `Quick test_vacuum;
    Alcotest.test_case "prune preserves horizon reads" `Quick
      test_prune_preserves_horizon_reads;
    Alcotest.test_case "SI reads its snapshot" `Quick test_si_reads_snapshot;
    Alcotest.test_case "SI sees its own writes" `Quick test_si_sees_own_writes;
    Alcotest.test_case "First-Committer-Wins" `Quick
      test_si_fcw_aborts_second_committer;
    Alcotest.test_case "disjoint writers both commit" `Quick
      test_si_disjoint_writes_both_commit;
    Alcotest.test_case "write skew materializes (H5)" `Quick
      test_si_write_skew_materializes;
    Alcotest.test_case "First-Updater-Wins aborts at write" `Quick
      test_fuw_aborts_at_write_time;
    Alcotest.test_case "First-Updater-Wins blocks behind writer" `Quick
      test_fuw_blocks_behind_active_writer;
    Alcotest.test_case "Oracle statement-level reads" `Quick
      test_oracle_statement_level_reads;
    Alcotest.test_case "Oracle first-writer-wins allows P4" `Quick
      test_oracle_first_writer_wins_allows_lost_update;
    Alcotest.test_case "Oracle for-update cursor prevents P4C" `Quick
      test_oracle_for_update_cursor_prevents_p4c;
    Alcotest.test_case "SI rescans see no phantoms" `Quick
      test_si_no_phantom_on_rescan;
    Alcotest.test_case "own inserts visible to scans" `Quick
      test_si_insert_visible_to_own_scan;
    Alcotest.test_case "deletes install tombstones" `Quick
      test_si_delete_installs_tombstone;
    Alcotest.test_case "SSI prevents write skew" `Quick
      test_ssi_prevents_write_skew;
    Alcotest.test_case "SSI prevents predicate phantoms" `Quick
      test_ssi_prevents_predicate_phantom;
    Alcotest.test_case "SSI validation timing" `Quick
      test_ssi_read_only_never_aborts;
    Alcotest.test_case "time travel" `Quick test_time_travel;
    Alcotest.test_case "time-travel updates abort" `Quick
      test_time_travel_update_aborts;
  ]
