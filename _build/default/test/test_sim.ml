(* Tests for the simulator's interleaving enumeration and table
   rendering. *)

module I = Sim.Interleave

let test_merge_counts () =
  List.iter
    (fun sizes ->
      let merges = I.merges sizes in
      Alcotest.(check int)
        (Fmt.str "count [%s]" (String.concat ";" (List.map string_of_int sizes)))
        (I.count sizes) (List.length merges))
    [ [ 1 ]; [ 2; 2 ]; [ 3; 2 ]; [ 2; 2; 2 ]; [ 4; 4 ] ]

let test_merges_distinct () =
  let merges = I.merges [ 3; 3 ] in
  Alcotest.(check int) "all distinct" (List.length merges)
    (List.length (List.sort_uniq compare merges))

let test_merges_multiplicities () =
  List.iter
    (fun merge ->
      let count x = List.length (List.filter (( = ) x) merge) in
      Alcotest.(check int) "stream 1 appears twice" 2 (count 1);
      Alcotest.(check int) "stream 2 appears three times" 3 (count 2))
    (I.merges [ 2; 3 ])

let test_merges_lexicographic_cover () =
  (* The serial orders are among the merges. *)
  let merges = I.merges [ 2; 2 ] in
  Alcotest.(check bool) "1122 present" true (List.mem [ 1; 1; 2; 2 ] merges);
  Alcotest.(check bool) "2211 present" true (List.mem [ 2; 2; 1; 1 ] merges)

let test_exists_merge_early_exit () =
  let found, visited = I.exists_merge [ 3; 3 ] (fun m -> List.hd m = 1) in
  Alcotest.(check bool) "found" true found;
  Alcotest.(check int) "stopped at the first merge" 1 visited

let test_exists_merge_exhausts_on_failure () =
  let found, visited = I.exists_merge [ 3; 3 ] (fun _ -> false) in
  Alcotest.(check bool) "not found" false found;
  Alcotest.(check int) "visited all" (I.count [ 3; 3 ]) visited

let test_count_merges () =
  (* Merges of [2;2] beginning with stream 1: C(3,1) = 3. *)
  let hits, total = I.count_merges [ 2; 2 ] (fun m -> List.hd m = 1) in
  Alcotest.(check int) "total" 6 total;
  Alcotest.(check int) "hits" 3 hits

let test_sizes_of_programs () =
  let module P = Core.Program in
  let explicit = P.make [ P.Read "x"; P.Commit ] in
  let implicit = P.make [ P.Read "x" ] in
  Alcotest.(check (list int))
    "auto-commit counted" [ 2; 2 ]
    (I.sizes_of_programs [ explicit; implicit ])

let test_render_alignment () =
  let out =
    Sim.Report.render ~headers:[ "a"; "bb" ]
      ~rows:[ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  match lines with
  | [ header; rule; r1; r2 ] ->
    Alcotest.(check int) "all lines equal width" 1
      (List.length
         (List.sort_uniq compare
            (List.map String.length [ header; rule; r1; r2 ])))
  | _ -> Alcotest.fail "expected four lines"

let test_possibility_cells () =
  Alcotest.(check string) "not possible" "Not Possible"
    (Sim.Report.possibility_cell Isolation.Spec.Not_possible);
  Alcotest.(check string) "sometimes" "Sometimes"
    (Sim.Report.possibility_cell Isolation.Spec.Sometimes_possible)

let prop_merge_count_formula =
  Support.qtest "merge count matches the multinomial" ~count:100
    QCheck2.Gen.(list_size (1 -- 3) (1 -- 4))
    (fun sizes -> List.length (I.merges sizes) = I.count sizes)

let suite =
  [
    Alcotest.test_case "merge counts" `Quick test_merge_counts;
    Alcotest.test_case "merges distinct" `Quick test_merges_distinct;
    Alcotest.test_case "merge multiplicities" `Quick test_merges_multiplicities;
    Alcotest.test_case "serial orders covered" `Quick
      test_merges_lexicographic_cover;
    Alcotest.test_case "exists_merge early exit" `Quick
      test_exists_merge_early_exit;
    Alcotest.test_case "exists_merge exhausts" `Quick
      test_exists_merge_exhausts_on_failure;
    Alcotest.test_case "count_merges" `Quick test_count_merges;
    Alcotest.test_case "sizes_of_programs" `Quick test_sizes_of_programs;
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "possibility cells" `Quick test_possibility_cells;
    prop_merge_count_formula;
  ]
