(* Tests for the session-oriented Db API. *)

module Db = Core.Db
module L = Isolation.Level
module Predicate = Storage.Predicate

let ok = function
  | Db.Ok v -> v
  | Db.Blocked _ -> Alcotest.fail "unexpectedly blocked"
  | Db.Rolled_back _ -> Alcotest.fail "unexpectedly rolled back"

let test_basic_session () =
  let db = Db.open_db ~initial:[ ("x", 1) ] () in
  let tx = Db.begin_tx db ~level:L.Serializable in
  Alcotest.(check (option int)) "read initial" (Some 1) (ok (Db.read tx "x"));
  ok (Db.write tx "x" 2);
  Alcotest.(check (option int)) "read own write" (Some 2) (ok (Db.read tx "x"));
  ok (Db.commit tx);
  Alcotest.(check bool) "committed" true (Db.status tx = `Committed);
  Alcotest.(check (list (pair string int))) "state" [ ("x", 2) ] (Db.state db)

let test_blocked_then_retry () =
  let db = Db.open_db ~initial:[ ("x", 0) ] () in
  let t1 = Db.begin_tx db ~level:L.Serializable in
  let t2 = Db.begin_tx db ~level:L.Serializable in
  ok (Db.write t1 "x" 1);
  (match Db.write t2 "x" 2 with
  | Db.Blocked holders ->
    Alcotest.(check (list int)) "blocked on T1" [ Db.tid t1 ] holders
  | _ -> Alcotest.fail "expected to block");
  ok (Db.commit t1);
  ok (Db.write t2 "x" 2);
  ok (Db.commit t2);
  Alcotest.(check (list (pair string int))) "state" [ ("x", 2) ] (Db.state db)

let test_scan_and_insert () =
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let db = Db.open_db ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] () in
  let tx = Db.begin_tx db ~level:L.Serializable in
  Alcotest.(check (list (pair string int)))
    "initial scan" [ ("emp_a", 1) ] (ok (Db.scan tx emp));
  ok (Db.insert tx "emp_b" 2);
  Alcotest.(check (list (pair string int)))
    "scan after insert"
    [ ("emp_a", 1); ("emp_b", 2) ]
    (ok (Db.scan tx emp));
  ok (Db.delete tx "emp_a");
  Alcotest.(check (list (pair string int)))
    "scan after delete" [ ("emp_b", 2) ] (ok (Db.scan tx emp));
  ok (Db.commit tx)

let test_cursor_walkthrough () =
  let all = Predicate.key_prefix ~name:"All" "" in
  let db = Db.open_db ~initial:[ ("a", 1); ("b", 2) ] () in
  let tx = Db.begin_tx db ~level:L.Cursor_stability in
  ok (Db.open_cursor tx all);
  Alcotest.(check (option (pair string int))) "first row" (Some ("a", 1))
    (ok (Db.fetch tx));
  ok (Db.cursor_write tx 10);
  Alcotest.(check (option (pair string int))) "second row" (Some ("b", 2))
    (ok (Db.fetch tx));
  Alcotest.(check (option (pair string int))) "past the end" None
    (ok (Db.fetch tx));
  ok (Db.close_cursor tx);
  ok (Db.commit tx);
  Alcotest.(check (list (pair string int)))
    "cursor update applied"
    [ ("a", 10); ("b", 2) ]
    (Db.state db)

let test_rollback () =
  let db = Db.open_db ~initial:[ ("x", 1) ] () in
  let tx = Db.begin_tx db ~level:L.Read_committed in
  ok (Db.write tx "x" 9);
  ok (Db.abort tx);
  (match Db.status tx with
  | `Aborted Core.Engine.User_abort -> ()
  | _ -> Alcotest.fail "expected user abort");
  Alcotest.(check (list (pair string int))) "rolled back" [ ("x", 1) ] (Db.state db)

let test_fcw_reported () =
  let db = Db.open_db ~initial:[ ("x", 0) ] ~multiversion:true () in
  let t1 = Db.begin_tx db ~level:L.Snapshot in
  let t2 = Db.begin_tx db ~level:L.Snapshot in
  ok (Db.write t1 "x" 1);
  ok (Db.write t2 "x" 2);
  ok (Db.commit t1);
  (match Db.commit t2 with
  | Db.Rolled_back Core.Engine.First_committer_wins -> ()
  | _ -> Alcotest.fail "expected First-Committer-Wins");
  Alcotest.(check (list (pair string int))) "first committer's value" [ ("x", 1) ]
    (Db.state db)

let test_operations_after_end_rejected () =
  let db = Db.open_db ~initial:[ ("x", 0) ] () in
  let tx = Db.begin_tx db ~level:L.Serializable in
  ok (Db.commit tx);
  match Db.read tx "x" with
  | Db.Rolled_back _ -> ()
  | _ -> Alcotest.fail "reads after commit must be rejected"

let test_history_is_recorded () =
  let db = Db.open_db ~initial:[ ("x", 0) ] () in
  let t1 = Db.begin_tx db ~level:L.Read_uncommitted in
  let t2 = Db.begin_tx db ~level:L.Read_uncommitted in
  ok (Db.write t1 "x" 1);
  ignore (Db.read t2 "x");
  ok (Db.commit t2);
  ok (Db.abort t1);
  Alcotest.(check string)
    "the A1 history in the paper's notation"
    "w1[x=1] r2[x=1] c2 a1"
    (String.concat " "
       (List.map History.Action.to_string (Db.history db)))

let suite =
  [
    Alcotest.test_case "basic session" `Quick test_basic_session;
    Alcotest.test_case "blocked then retry" `Quick test_blocked_then_retry;
    Alcotest.test_case "scan, insert, delete" `Quick test_scan_and_insert;
    Alcotest.test_case "cursor walkthrough" `Quick test_cursor_walkthrough;
    Alcotest.test_case "rollback" `Quick test_rollback;
    Alcotest.test_case "First-Committer-Wins reported" `Quick test_fcw_reported;
    Alcotest.test_case "operations after end rejected" `Quick
      test_operations_after_end_rejected;
    Alcotest.test_case "history recorded in paper notation" `Quick
      test_history_is_recorded;
  ]
