(* Property-based tests over random workloads and schedules: the
   fundamental serialization theorem for the two-phase locking level, the
   per-level forbidden-phenomena guarantees of Table 4, Snapshot
   Isolation's two defining rules, and end-to-end determinism. *)

module P = Core.Program
module L = Isolation.Level
module Spec = Isolation.Spec
module Executor = Core.Executor
module Generators = Workload.Generators
module Predicate = Storage.Predicate

let keys = [ "x"; "y"; "z" ]
let initial = [ ("x", 10); ("y", 20); ("z", 30) ]

(* Deterministic pseudo-random workload from a qcheck-supplied seed. *)
let workload_of_seed ?allow_abort seed =
  let rand = Random.State.make [| seed |] in
  let txns = 2 + Random.State.int rand 2 in
  let programs =
    Generators.random_programs ?allow_abort ~rand ~keys ~txns ~ops:4 ()
  in
  let schedule = Generators.random_schedule ~rand programs in
  (programs, schedule)

let run_at level ?(predicates = [ Predicate.all ]) ?first_updater_wins
    (programs, schedule) =
  let cfg =
    Executor.config ~initial ~predicates ?first_updater_wins
      (List.map (fun _ -> level) programs)
  in
  Executor.run cfg programs ~schedule

let seed_gen = QCheck2.Gen.(0 -- 1_000_000)

(* The fundamental serialization theorem: every history produced by
   well-formed two-phase locking (SERIALIZABLE) is conflict-serializable
   and exhibits no phenomenon at all. *)
let prop_2pl_serializable =
  Support.qtest "2PL histories are serializable" ~count:300 seed_gen
    (fun seed ->
      let r = run_at L.Serializable (workload_of_seed seed) in
      History.Conflict.is_serializable r.Executor.history
      && Phenomena.Detect.exhibited r.Executor.history = [])

(* Each locking level never exhibits its Table-4 Not-Possible phenomena
   (the single-version detectors are exact on locking traces). *)
let prop_locking_levels_respect_forbidden =
  Support.qtest "locking levels respect their forbidden sets" ~count:200
    QCheck2.Gen.(pair seed_gen (oneofl Locking.Protocol.locking_levels))
    (fun (seed, level) ->
      let r = run_at level (workload_of_seed seed) in
      List.for_all
        (fun p -> not (Phenomena.Detect.occurs p r.Executor.history))
        (Spec.forbidden level))

(* Snapshot Isolation's two rules hold on every SI trace, under both
   conflict-detection policies. *)
let prop_si_rules =
  Support.qtest "SI traces obey snapshot reads and FCW" ~count:300
    QCheck2.Gen.(pair seed_gen bool)
    (fun (seed, fuw) ->
      let r = run_at L.Snapshot ~first_updater_wins:fuw (workload_of_seed seed) in
      History.Mv.snapshot_reads_respected r.Executor.history
      && History.Mv.first_committer_wins_respected r.Executor.history)

(* SI reads are repeatable: a transaction that never writes a key sees a
   single value for it throughout. *)
let prop_si_repeatable_reads =
  Support.qtest "SI reads are repeatable" ~count:300 seed_gen
    (fun seed ->
      let programs, schedule = workload_of_seed seed in
      let r = run_at L.Snapshot (programs, schedule) in
      List.for_all
        (fun (tid, env) ->
          let wrote k =
            List.exists
              (function
                | History.Action.Write w -> w.History.Action.wt = tid && w.History.Action.wk = k
                | _ -> false)
              r.Executor.history
          in
          List.for_all
            (fun k ->
              wrote k
              ||
              match
                List.filter_map
                  (fun (k', v) -> if k' = k then Some v else None)
                  env.P.reads
              with
              | [] | [ _ ] -> true
              | first :: rest -> List.for_all (( = ) first) rest)
            keys)
        r.Executor.envs)

(* Oracle Read Consistency also precludes dirty reads: every value read
   was committed at some point (or the reader's own). *)
let prop_oracle_no_dirty_reads =
  Support.qtest "Read Consistency never reads uncommitted data" ~count:200
    seed_gen
    (fun seed ->
      let r = run_at L.Oracle_read_consistency (workload_of_seed seed) in
      (* On MV traces, a dirty read would be a read of a version whose
         writer had not committed by the read's position. *)
      let arr = Array.of_list r.Executor.history in
      Array.to_list arr
      |> List.mapi (fun i a -> (i, a))
      |> List.for_all (fun (i, a) ->
             match a with
             | History.Action.Read rd -> (
               match rd.History.Action.rver with
               | None | Some 0 -> true
               | Some w ->
                 w = rd.History.Action.rt
                 || Array.exists
                      (function
                        | History.Action.Commit t -> t = w
                        | _ -> false)
                      (Array.sub arr 0 i))
             | _ -> true))

(* §4.2's headline claim as a universal property: nothing ever blocks
   under Snapshot Isolation with First-Committer-Wins — not reads, not
   writes, not commits. *)
let prop_si_never_blocks =
  Support.qtest "Snapshot Isolation never blocks" ~count:300 seed_gen
    (fun seed ->
      let r = run_at L.Snapshot (workload_of_seed seed) in
      r.Executor.blocked_attempts = 0 && r.Executor.deadlock_aborts = 0)

(* Phantom guards are interchangeable at SERIALIZABLE: under either
   predicate locks or next-key locking, a committed transaction's repeated
   scans of a (range) predicate always agree. *)
let prop_serializable_scans_stable =
  Support.qtest "SERIALIZABLE rescans agree under both phantom guards"
    ~count:150
    QCheck2.Gen.(pair seed_gen bool)
    (fun (seed, next_key) ->
      let rand = Random.State.make [| seed |] in
      let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
      let scanner =
        P.make [ P.Scan emp; P.Read "x"; P.Scan emp; P.Commit ]
      in
      let writers =
        List.init 2 (fun i ->
            let k = Printf.sprintf "emp_%c" (Char.chr (Char.code 'a' + i)) in
            match Random.State.int rand 3 with
            | 0 -> P.make [ P.Insert (k, P.const 1); P.Commit ]
            | 1 -> P.make [ P.Delete k; P.Commit ]
            | _ -> P.make [ P.Write ("x", P.const (Random.State.int rand 50)); P.Commit ])
      in
      let programs = scanner :: writers in
      let schedule = Generators.random_schedule ~rand programs in
      let cfg =
        Executor.config
          ~initial:[ ("emp_a", 1); ("x", 0); ("zz_sentinel", 0) ]
          ~predicates:[ emp ] ~next_key_locking:next_key
          (List.map (fun _ -> L.Serializable) programs)
      in
      let r = Executor.run cfg programs ~schedule in
      (not (List.mem_assoc 1 r.Executor.statuses
            && List.assoc 1 r.Executor.statuses = Executor.Committed))
      || not (Workload.Scenario.unrepeatable_scan r 1 "Emp"))

(* The extension level: every history committed under Serializable SI is
   one-copy serializable (the whole point of commit-time validation). *)
let prop_ssi_one_copy_serializable =
  Support.qtest "Serializable SI histories are one-copy serializable"
    ~count:300 seed_gen
    (fun seed ->
      let r = run_at L.Serializable_snapshot (workload_of_seed seed) in
      History.Mv.is_one_copy_serializable r.Executor.history
      && History.Mv.snapshot_reads_respected r.Executor.history
      && History.Mv.first_committer_wins_respected r.Executor.history)

(* Money conservation: transfer-only workloads preserve the total balance
   under SERIALIZABLE (2PL + rollback) and under Snapshot Isolation
   (First-Committer-Wins), whatever the schedule. *)
let transfer_workload seed =
  let rand = Random.State.make [| seed |] in
  let accounts = 4 in
  let programs =
    List.init 3 (fun _ ->
        Generators.transfer_program ~rand ~accounts ~amount:(1 + Random.State.int rand 9))
  in
  let schedule = Generators.random_schedule ~rand programs in
  (Generators.bank_accounts accounts, programs, schedule)

let total final = List.fold_left (fun acc (_, v) -> acc + v) 0 final

let prop_conservation =
  Support.qtest "transfers conserve the total balance (SER and SI)" ~count:300
    QCheck2.Gen.(pair seed_gen bool)
    (fun (seed, si) ->
      let initial, programs, schedule = transfer_workload seed in
      let level = if si then L.Snapshot else L.Serializable in
      let cfg =
        Executor.config ~initial (List.map (fun _ -> level) programs)
      in
      let r = Executor.run cfg programs ~schedule in
      total r.Executor.final = total initial)

(* ...and READ COMMITTED does not: some schedule loses an update. *)
let test_rc_breaks_conservation () =
  let exception Found in
  try
    for seed = 0 to 500 do
      let initial, programs, schedule = transfer_workload seed in
      let cfg =
        Executor.config ~initial (List.map (fun _ -> L.Read_committed) programs)
      in
      let r = Executor.run cfg programs ~schedule in
      if total r.Executor.final <> total initial then raise Found
    done;
    Alcotest.fail "expected READ COMMITTED to lose an update somewhere"
  with Found -> ()

(* End-to-end determinism: identical inputs yield identical histories,
   states and statuses, for both engine families. *)
let prop_determinism =
  Support.qtest "execution is deterministic" ~count:200
    QCheck2.Gen.(pair seed_gen bool)
    (fun (seed, multiversion) ->
      let level = if multiversion then L.Snapshot else L.Repeatable_read in
      let w = workload_of_seed seed in
      let a = run_at level w and b = run_at level w in
      a.Executor.history = b.Executor.history
      && a.Executor.final = b.Executor.final
      && a.Executor.statuses = b.Executor.statuses)

(* Aborted transactions leave no trace in the final state: running with
   user aborts is equivalent to running only the committed programs'
   effects (checked via the locking engine's WAL-ideal state). *)
let prop_schedules_are_merges =
  Support.qtest "random schedules are merges of attempt sequences" ~count:200
    seed_gen
    (fun seed ->
      let programs, schedule = workload_of_seed seed in
      let counts = Array.make (List.length programs) 0 in
      List.iter (fun t -> counts.(t - 1) <- counts.(t - 1) + 1) schedule;
      List.for_all2
        (fun p c -> c = P.length p + 1)
        programs (Array.to_list counts))

(* Serial executions at any level produce serializable histories with no
   anomalies — levels only differ under concurrency. *)
let prop_serial_always_clean =
  Support.qtest "serial executions are clean at every level" ~count:150
    QCheck2.Gen.(pair seed_gen (oneofl L.all))
    (fun (seed, level) ->
      let programs, _ = workload_of_seed ~allow_abort:false seed in
      let cfg =
        Executor.config ~initial ~predicates:[ Predicate.all ]
          (List.map (fun _ -> level) programs)
      in
      let r = Executor.run_serial cfg programs in
      let sv =
        if History.Mv.is_mv r.Executor.history then
          History.Mv.si_to_single_version r.Executor.history
        else r.Executor.history
      in
      History.Conflict.is_serializable sv)

let suite =
  [
    prop_2pl_serializable;
    prop_locking_levels_respect_forbidden;
    prop_si_rules;
    prop_si_repeatable_reads;
    prop_oracle_no_dirty_reads;
    prop_ssi_one_copy_serializable;
    prop_si_never_blocks;
    prop_serializable_scans_stable;
    prop_conservation;
    Alcotest.test_case "READ COMMITTED loses an update somewhere" `Quick
      test_rc_breaks_conservation;
    prop_determinism;
    prop_schedules_are_merges;
    prop_serial_always_clean;
  ]
