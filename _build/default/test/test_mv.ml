(* Tests for multiversion history analysis: the SI-to-single-version
   mapping, the multiversion serialization graph, and the two defining
   rules of Snapshot Isolation. *)

module Mv = History.Mv

let h = Support.h

let h1_si = "r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1"

let test_is_mv () =
  Alcotest.(check bool) "H1.SI is multiversion" true (Mv.is_mv (h h1_si));
  Alcotest.(check bool) "H1 is single-version" false
    (Mv.is_mv (h "r1[x=50] w1[x=10] c1"))

(* The paper's own mapping: H1.SI maps exactly to H1.SI.SV. *)
let test_si_to_sv_is_papers () =
  Alcotest.(check Support.history)
    "H1.SI -> H1.SI.SV"
    (h "r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1")
    (Mv.si_to_single_version (h h1_si))

let test_si_sv_serializable () =
  Alcotest.(check bool)
    "the mapped history is serializable" true
    (History.Conflict.is_serializable (Mv.si_to_single_version (h h1_si)))

let test_mvsg_h1si () =
  Alcotest.(check bool) "H1.SI is one-copy serializable" true
    (Mv.is_one_copy_serializable (h h1_si))

let test_mvsg_write_skew_cycle () =
  (* H5 read versions are the initial ones; the rw edges form a cycle. *)
  let h5 =
    h "r1[x0=50] r1[y0=50] r2[x0=50] r2[y0=50] w1[y1=-40] w2[x2=-40] c1 c2"
  in
  Alcotest.(check bool) "write skew is not one-copy serializable" false
    (Mv.is_one_copy_serializable h5);
  match Mv.mvsg_cycle h5 with
  | None -> Alcotest.fail "expected an MVSG cycle"
  | Some nodes ->
    Alcotest.(check bool) "cycle spans T1 and T2" true
      (List.mem 1 nodes && List.mem 2 nodes)

let test_version_order () =
  let hist = h "w1[x1=1] c1 w2[x2=2] c2" in
  Alcotest.(check (list int)) "version order" [ 0; 1; 2 ]
    (Mv.version_order hist "x")

let test_version_order_commit_order_not_write_order () =
  (* T2 writes first but commits second. *)
  let hist = h "w2[x2=2] w1[x1=1] c1 c2" in
  Alcotest.(check (list int)) "commit order governs" [ 0; 1; 2 ]
    (Mv.version_order hist "x")

let test_read_version_explicit () =
  let hist = h "w1[x1=1] c1 r2[x1=1] c2" in
  Alcotest.(check bool) "snapshot reads ok" true (Mv.snapshot_reads_respected hist)

let test_snapshot_reads_violation () =
  (* T2 starts before T1 commits but reads T1's version: not a snapshot
     read (T2's snapshot predates T1's commit). *)
  let hist = h "r2[y0=0] w1[x1=1] c1 r2[x1=1] c2" in
  Alcotest.(check bool) "reading a post-snapshot version is flagged" false
    (Mv.snapshot_reads_respected hist)

let test_snapshot_reads_own_write () =
  let hist = h "w1[x1=5] r1[x1=5] c1" in
  Alcotest.(check bool) "own writes are visible" true
    (Mv.snapshot_reads_respected hist)

let test_fcw_ok () =
  (* Sequential writers of x: intervals do not overlap. *)
  let hist = h "w1[x1=1] c1 w2[x2=2] c2" in
  Alcotest.(check bool) "sequential writers pass" true
    (Mv.first_committer_wins_respected hist)

let test_fcw_violation () =
  (* Concurrent committed writers of the same item. *)
  let hist = h "w1[x1=1] w2[x2=2] c1 c2" in
  Alcotest.(check bool) "concurrent writers flagged" false
    (Mv.first_committer_wins_respected hist)

let test_fcw_aborted_writer_ok () =
  let hist = h "w1[x1=1] w2[x2=2] a1 c2" in
  Alcotest.(check bool) "aborted writer is no conflict" true
    (Mv.first_committer_wins_respected hist)

let test_fcw_disjoint_items_ok () =
  let hist = h "w1[x1=1] w2[y2=2] c1 c2" in
  Alcotest.(check bool) "disjoint write sets pass" true
    (Mv.first_committer_wins_respected hist)

(* Every trace the SI engine produces satisfies both SI rules and, for H4,
   aborts the second committer. *)
let test_si_engine_trace_obeys_rules () =
  let module P = Core.Program in
  let u amount =
    P.make
      [ P.Read "x"; P.Write ("x", P.read_plus "x" amount); P.Commit ]
  in
  let r =
    Support.run ~initial:[ ("x", 100) ] Isolation.Level.Snapshot
      [ u 30; u 20 ] [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "snapshot reads" true
    (Mv.snapshot_reads_respected r.Core.Executor.history);
  Alcotest.(check bool) "first-committer-wins" true
    (Mv.first_committer_wins_respected r.Core.Executor.history)

let suite =
  [
    Alcotest.test_case "is_mv" `Quick test_is_mv;
    Alcotest.test_case "SI mapping matches the paper" `Quick
      test_si_to_sv_is_papers;
    Alcotest.test_case "mapped history is serializable" `Quick
      test_si_sv_serializable;
    Alcotest.test_case "H1.SI one-copy serializable" `Quick test_mvsg_h1si;
    Alcotest.test_case "write skew has an MVSG cycle" `Quick
      test_mvsg_write_skew_cycle;
    Alcotest.test_case "version order" `Quick test_version_order;
    Alcotest.test_case "version order follows commits" `Quick
      test_version_order_commit_order_not_write_order;
    Alcotest.test_case "explicit read versions" `Quick test_read_version_explicit;
    Alcotest.test_case "post-snapshot reads flagged" `Quick
      test_snapshot_reads_violation;
    Alcotest.test_case "own writes visible" `Quick test_snapshot_reads_own_write;
    Alcotest.test_case "FCW: sequential writers pass" `Quick test_fcw_ok;
    Alcotest.test_case "FCW: concurrent writers flagged" `Quick test_fcw_violation;
    Alcotest.test_case "FCW: aborted writer ignored" `Quick
      test_fcw_aborted_writer_ok;
    Alcotest.test_case "FCW: disjoint write sets pass" `Quick
      test_fcw_disjoint_items_ok;
    Alcotest.test_case "SI engine traces obey both rules" `Quick
      test_si_engine_trace_obeys_rules;
  ]
