(* Tests for the Hist operations: transaction sets, projections,
   well-formedness. *)

let h = Support.h

let test_txns () =
  let hist = h "r1[x] w2[y] r3[z] c1 c2 a3" in
  Alcotest.(check (list int)) "txns" [ 1; 2; 3 ] (History.txns hist);
  Alcotest.(check (list int)) "committed" [ 1; 2 ] (History.committed hist);
  Alcotest.(check (list int)) "aborted" [ 3 ] (History.aborted hist);
  Alcotest.(check (list int)) "active" [] (History.active hist);
  Alcotest.(check bool) "complete" true (History.is_complete hist)

let test_active () =
  let hist = h "r1[x] w2[y] c2" in
  Alcotest.(check (list int)) "active" [ 1 ] (History.active hist);
  Alcotest.(check bool) "incomplete" false (History.is_complete hist)

let test_actions_of () =
  let hist = h "r1[x] w2[y] r1[y] c1 c2" in
  Alcotest.(check Support.history)
    "T1's actions"
    (h "r1[x] r1[y] c1")
    (History.actions_of 1 hist)

let test_project_committed () =
  let hist = h "w1[x] r2[x] a1 c2" in
  Alcotest.(check Support.history)
    "committed projection"
    (h "r2[x] c2")
    (History.project_committed hist)

let test_well_formed_ok () =
  Alcotest.(check bool)
    "well-formed" true
    (Result.is_ok (History.well_formed (h "r1[x] c1 r2[x] c2")))

let test_act_after_commit_rejected () =
  Alcotest.(check bool)
    "action after commit" true
    (Result.is_error (History.well_formed (h "c1 r1[x]")))

let test_double_termination_rejected () =
  Alcotest.(check bool)
    "double termination" true
    (Result.is_error (History.well_formed (h "r1[x] c1 a1")))

let test_termination_pos () =
  let hist = h "r1[x] w2[y] c2 c1" in
  Alcotest.(check (option int)) "T2 ends at 2" (Some 2)
    (History.termination_pos hist 2);
  Alcotest.(check (option int)) "T1 ends at 3" (Some 3)
    (History.termination_pos hist 1);
  Alcotest.(check (option int)) "T9 never ends" None
    (History.termination_pos hist 9)

let test_keys () =
  Alcotest.(check (list string))
    "keys" [ "x"; "y" ]
    (History.keys (h "r1[x] w2[y] r1[P] c1 c2"))

let suite =
  [
    Alcotest.test_case "transaction sets" `Quick test_txns;
    Alcotest.test_case "active transactions" `Quick test_active;
    Alcotest.test_case "actions of one transaction" `Quick test_actions_of;
    Alcotest.test_case "committed projection" `Quick test_project_committed;
    Alcotest.test_case "well-formed accepted" `Quick test_well_formed_ok;
    Alcotest.test_case "action after commit rejected" `Quick
      test_act_after_commit_rejected;
    Alcotest.test_case "double termination rejected" `Quick
      test_double_termination_rejected;
    Alcotest.test_case "termination positions" `Quick test_termination_pos;
    Alcotest.test_case "keys" `Quick test_keys;
  ]
