(* Tests for next-key (gap) locking — the ARIES/KVL-style alternative to
   the paper's predicate locks. Same phantom guarantees on range
   predicates, different precision: next-key locking can block writes
   outside the predicate (false conflicts on shared gaps), while
   predicate locks are exact. *)

module P = Core.Program
module L = Isolation.Level
module Ph = Phenomena.Phenomenon
module Executor = Core.Executor
module Predicate = Storage.Predicate

let run_nk ?(initial = []) ?(predicates = []) level programs schedule =
  let cfg =
    Executor.config ~initial ~predicates ~next_key_locking:true
      (List.map (fun _ -> level) programs)
  in
  Executor.run cfg programs ~schedule

let emp = Predicate.key_prefix ~name:"Emp" "emp_"

let test_prefix_successor () =
  Alcotest.(check (option string)) "emp_ bumps" (Some "emp`")
    (Predicate.prefix_successor "emp_");
  Alcotest.(check (option string)) "a bumps" (Some "b")
    (Predicate.prefix_successor "a");
  Alcotest.(check (option string)) "empty is unbounded" None
    (Predicate.prefix_successor "");
  Alcotest.(check (option string)) "trailing 0xff carries" (Some "b")
    (Predicate.prefix_successor "a\xff")

let test_range_bounds () =
  Alcotest.(check (option (pair string (option string))))
    "prefix range"
    (Some ("emp_", Some "emp`"))
    (Predicate.range_bounds emp);
  Alcotest.(check (option (pair string (option string))))
    "item range"
    (Some ("x", Some "x\x00"))
    (Predicate.range_bounds (Predicate.item "x"));
  Alcotest.(check (option (pair string (option string))))
    "value predicates have no range" None
    (Predicate.range_bounds (Predicate.value_range ~name:"V" ~lo:0 ~hi:9))

let test_next_key_geq () =
  let s = Storage.Store.of_list [ ("b", 1); ("d", 2) ] in
  Alcotest.(check (option string)) "geq a" (Some "b")
    (Storage.Store.next_key_geq s "a");
  Alcotest.(check (option string)) "geq b" (Some "b")
    (Storage.Store.next_key_geq s "b");
  Alcotest.(check (option string)) "geq c" (Some "d")
    (Storage.Store.next_key_geq s "c");
  Alcotest.(check (option string)) "geq e" None
    (Storage.Store.next_key_geq s "e")

(* Phantom insert into a scanned range blocks under next-key SERIALIZABLE,
   exactly as it does under predicate locks. *)
let test_phantom_insert_blocks () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let inserter = P.make [ P.Insert ("emp_c", P.const 1); P.Commit ] in
  let r =
    run_nk
      ~initial:[ ("emp_a", 1); ("emp_b", 1) ]
      ~predicates:[ emp ] L.Serializable [ scanner; inserter ]
      [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "insert waited" true (r.Executor.blocked_attempts > 0);
  Alcotest.(check bool) "no phantom" false
    (Phenomena.Detect.occurs Ph.A3 r.Executor.history)

(* A write beyond the guarded gap proceeds without blocking. *)
let test_disjoint_insert_proceeds () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  (* zzz_sentinel bounds the scan's gap guard, so inserting after it is
     outside every locked gap. *)
  let inserter = P.make [ P.Insert ("zzz_x", P.const 1); P.Commit ] in
  let r =
    run_nk
      ~initial:[ ("emp_a", 1); ("zzz_sentinel", 0) ]
      ~predicates:[ emp ] L.Serializable [ scanner; inserter ]
      [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check int) "no blocking" 0 r.Executor.blocked_attempts

(* The imprecision: an insert below the range whose successor is a locked
   row is blocked by next-key locking but sails through predicate locks. *)
let test_false_conflict_vs_predicate_locks () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let inserter = P.make [ P.Insert ("aaa", P.const 1); P.Commit ] in
  let initial = [ ("emp_a", 1) ] in
  let sched = [ 1; 2; 2; 1; 1 ] in
  let nk =
    run_nk ~initial ~predicates:[ emp ] L.Serializable [ scanner; inserter ]
      sched
  in
  Alcotest.(check bool) "next-key blocks the unrelated insert" true
    (nk.Executor.blocked_attempts > 0);
  let cfg =
    Executor.config ~initial ~predicates:[ emp ]
      [ L.Serializable; L.Serializable ]
  in
  let pl = Executor.run cfg [ scanner; inserter ] ~schedule:sched in
  Alcotest.(check int) "predicate locks admit it" 0 pl.Executor.blocked_attempts

(* Deletes merge a gap, so they also conflict with a covering scan. *)
let test_phantom_delete_blocks () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let deleter = P.make [ P.Delete "emp_a"; P.Commit ] in
  let r =
    run_nk
      ~initial:[ ("emp_a", 1); ("emp_b", 1) ]
      ~predicates:[ emp ] L.Serializable [ scanner; deleter ]
      [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "delete waited" true (r.Executor.blocked_attempts > 0);
  Alcotest.(check bool) "scans agree" false
    (Workload.Scenario.unrepeatable_scan r 1 "Emp")

(* Plain updates (no presence change) of a scanned row still conflict via
   the row lock itself. *)
let test_update_of_scanned_row_blocks () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let updater = P.make [ P.Write ("emp_a", P.const 9); P.Commit ] in
  let r =
    run_nk
      ~initial:[ ("emp_a", 1) ]
      ~predicates:[ emp ] L.Serializable [ scanner; updater ]
      [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "update waited" true (r.Executor.blocked_attempts > 0);
  Alcotest.(check bool) "no fuzzy scan" false
    (Workload.Scenario.unrepeatable_scan r 1 "Emp")

(* The classifier's P3 cells are identical under both phantom guards for
   range predicates: Not Possible at SERIALIZABLE, Possible at
   REPEATABLE READ (whose next-key locks are short-lived like its
   predicate locks would be... in Table 2 RR takes only short predicate
   locks, and the next-key guard inherits that duration). *)
let test_p3_classification_under_next_key () =
  List.iter
    (fun (level, expected) ->
      let c = Sim.Classify.cell ~next_key_locking:true level Ph.P3 in
      Alcotest.(check Support.possibility)
        (Fmt.str "P3 at %s under next-key locking" (L.name level))
        expected c.Sim.Classify.verdict)
    [
      (L.Serializable, Isolation.Spec.Not_possible);
      (L.Repeatable_read, Isolation.Spec.Possible);
      (L.Read_committed, Isolation.Spec.Possible);
    ]

(* The full Table 3 is reproduced under the next-key guard as well. *)
let test_table3_under_next_key () =
  let diffs =
    Sim.Classify.diff_with_spec (Sim.Classify.table3 ~next_key_locking:true ())
  in
  if diffs <> [] then
    Alcotest.failf "next-key Table 3 diverges:@.%a"
      Fmt.(list ~sep:sp Sim.Classify.pp_mismatch)
      diffs

let suite =
  [
    Alcotest.test_case "prefix successor" `Quick test_prefix_successor;
    Alcotest.test_case "range bounds" `Quick test_range_bounds;
    Alcotest.test_case "next_key_geq" `Quick test_next_key_geq;
    Alcotest.test_case "phantom insert blocks" `Quick test_phantom_insert_blocks;
    Alcotest.test_case "disjoint insert proceeds" `Quick
      test_disjoint_insert_proceeds;
    Alcotest.test_case "false conflict vs predicate locks" `Quick
      test_false_conflict_vs_predicate_locks;
    Alcotest.test_case "phantom delete blocks" `Quick test_phantom_delete_blocks;
    Alcotest.test_case "update of scanned row blocks" `Quick
      test_update_of_scanned_row_blocks;
    Alcotest.test_case "P3 classification under next-key" `Slow
      test_p3_classification_under_next_key;
    Alcotest.test_case "Table 3 under next-key" `Slow
      test_table3_under_next_key;
  ]
