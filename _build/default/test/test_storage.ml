(* Tests for the storage substrate: predicates, the single-version store,
   and the multiversion store. *)

module Predicate = Storage.Predicate
module Store = Storage.Store
module VS = Storage.Version_store

let emp = Predicate.key_prefix ~name:"Emp" "emp_"

let test_predicate_matching () =
  Alcotest.(check bool) "prefix matches" true (Predicate.matches_row emp "emp_a" (Some 1));
  Alcotest.(check bool) "prefix rejects" false (Predicate.matches_row emp "task_a" (Some 1));
  Alcotest.(check bool) "absent row never matches" false
    (Predicate.matches_row emp "emp_a" None)

let test_predicate_phantom_rule () =
  (* An insert creating a matching row affects the predicate, as does a
     delete removing one and an update moving a row across the boundary. *)
  Alcotest.(check bool) "insert into predicate" true
    (Predicate.affected_by_write emp "emp_x" ~before:None ~after:(Some 1));
  Alcotest.(check bool) "delete from predicate" true
    (Predicate.affected_by_write emp "emp_x" ~before:(Some 1) ~after:None);
  Alcotest.(check bool) "unrelated write" false
    (Predicate.affected_by_write emp "task_x" ~before:None ~after:(Some 1));
  let positive = Predicate.value_range ~name:"Pos" ~lo:1 ~hi:max_int in
  Alcotest.(check bool) "update entering the range" true
    (Predicate.affected_by_write positive "k" ~before:(Some 0) ~after:(Some 5));
  Alcotest.(check bool) "update staying outside" false
    (Predicate.affected_by_write positive "k" ~before:(Some 0) ~after:(Some (-1)))

let test_item_predicate () =
  let p = Predicate.item "x" in
  Alcotest.(check bool) "covers its record" true
    (Predicate.affected_by_write p "x" ~before:(Some 1) ~after:(Some 2));
  Alcotest.(check bool) "ignores others" false
    (Predicate.affected_by_write p "y" ~before:(Some 1) ~after:(Some 2))

let test_conj () =
  let p =
    Predicate.conj ~name:"PosEmp" emp
      (Predicate.value_range ~name:"Pos" ~lo:1 ~hi:max_int)
  in
  Alcotest.(check bool) "both hold" true (Predicate.matches_row p "emp_a" (Some 1));
  Alcotest.(check bool) "value fails" false (Predicate.matches_row p "emp_a" (Some 0))

let test_store_crud () =
  let s = Store.of_list [ ("x", 1); ("y", 2) ] in
  Alcotest.(check (option int)) "get x" (Some 1) (Store.get s "x");
  Store.put s "x" 10;
  Alcotest.(check (option int)) "updated" (Some 10) (Store.get s "x");
  Store.delete s "y";
  Alcotest.(check (option int)) "deleted" None (Store.get s "y");
  Store.restore s "y" (Some 2);
  Alcotest.(check (option int)) "restored" (Some 2) (Store.get s "y");
  Store.restore s "x" None;
  Alcotest.(check bool) "restore None removes" false (Store.mem s "x")

let test_store_scan_sorted () =
  let s = Store.of_list [ ("emp_b", 2); ("emp_a", 1); ("task_c", 3) ] in
  Alcotest.(check (list (pair string int)))
    "scan is sorted and filtered"
    [ ("emp_a", 1); ("emp_b", 2) ]
    (Store.scan s emp)

let test_store_copy_isolated () =
  let s = Store.of_list [ ("x", 1) ] in
  let c = Store.copy s in
  Store.put s "x" 9;
  Alcotest.(check (option int)) "copy unchanged" (Some 1) (Store.get c "x")

let test_version_store_snapshots () =
  let vs = VS.of_list [ ("x", 50) ] in
  VS.install vs ~writer:1 ~commit_ts:1 [ ("x", Some 10) ];
  VS.install vs ~writer:2 ~commit_ts:2 [ ("x", Some 99); ("y", Some 7) ];
  Alcotest.(check (option int)) "read at 0" (Some 50) (VS.read_at vs ~ts:0 "x");
  Alcotest.(check (option int)) "read at 1" (Some 10) (VS.read_at vs ~ts:1 "x");
  Alcotest.(check (option int)) "read at 2" (Some 99) (VS.read_at vs ~ts:2 "x");
  Alcotest.(check (option int)) "y invisible at 1" None (VS.read_at vs ~ts:1 "y");
  Alcotest.(check (option int)) "y visible at 2" (Some 7) (VS.read_at vs ~ts:2 "y")

let test_version_store_tombstones () =
  let vs = VS.of_list [ ("x", 50) ] in
  VS.install vs ~writer:1 ~commit_ts:1 [ ("x", None) ];
  Alcotest.(check (option int)) "visible before delete" (Some 50)
    (VS.read_at vs ~ts:0 "x");
  Alcotest.(check (option int)) "tombstoned after" None (VS.read_at vs ~ts:1 "x");
  Alcotest.(check (list (pair string int))) "snapshot skips tombstones" []
    (VS.snapshot_at vs ~ts:1)

let test_version_store_scan_at () =
  let vs = VS.of_list [ ("emp_a", 1) ] in
  VS.install vs ~writer:1 ~commit_ts:1 [ ("emp_b", Some 1) ];
  Alcotest.(check (list (pair string int)))
    "scan at 0" [ ("emp_a", 1) ] (VS.scan_at vs ~ts:0 emp);
  Alcotest.(check (list (pair string int)))
    "scan at 1" [ ("emp_a", 1); ("emp_b", 1) ] (VS.scan_at vs ~ts:1 emp)

let test_committed_after () =
  let vs = VS.of_list [ ("x", 50) ] in
  VS.install vs ~writer:1 ~commit_ts:3 [ ("x", Some 10) ];
  Alcotest.(check bool) "conflict for ts 1" true (VS.committed_after vs ~ts:1 "x");
  Alcotest.(check bool) "no conflict for ts 3" false (VS.committed_after vs ~ts:3 "x");
  Alcotest.(check bool) "unknown key has no conflict" false
    (VS.committed_after vs ~ts:0 "zzz")

let test_writer_at () =
  let vs = VS.of_list [ ("x", 50) ] in
  VS.install vs ~writer:4 ~commit_ts:2 [ ("x", Some 10) ];
  Alcotest.(check (option int)) "initial writer is 0" (Some 0)
    (VS.writer_at vs ~ts:0 "x");
  Alcotest.(check (option int)) "writer at 2" (Some 4) (VS.writer_at vs ~ts:2 "x")

(* Property: reading at increasing timestamps walks the committed history
   of the key monotonically (never sees an older version later). *)
let prop_version_reads_consistent =
  Support.qtest "version chains respect timestamps" ~count:200
    QCheck2.Gen.(list_size (1 -- 15) (pair (1 -- 3) (opt (0 -- 100))))
    (fun installs ->
      let vs = VS.of_list [ ("x", 0) ] in
      List.iteri
        (fun i (w, v) -> VS.install vs ~writer:w ~commit_ts:(i + 1) [ ("x", v) ])
        installs;
      (* read_at ts equals the last install at or before ts *)
      List.for_all
        (fun ts ->
          let expected =
            List.fold_left
              (fun acc (i, (_, v)) -> if i + 1 <= ts then v else acc)
              (Some 0)
              (List.mapi (fun i x -> (i, x)) installs)
          in
          VS.read_at vs ~ts "x" = expected)
        (List.init (List.length installs + 1) Fun.id))

let suite =
  [
    Alcotest.test_case "predicate matching" `Quick test_predicate_matching;
    Alcotest.test_case "phantom rule" `Quick test_predicate_phantom_rule;
    Alcotest.test_case "item predicate" `Quick test_item_predicate;
    Alcotest.test_case "conjunction" `Quick test_conj;
    Alcotest.test_case "store CRUD and restore" `Quick test_store_crud;
    Alcotest.test_case "scan sorted and filtered" `Quick test_store_scan_sorted;
    Alcotest.test_case "copy is isolated" `Quick test_store_copy_isolated;
    Alcotest.test_case "version snapshots" `Quick test_version_store_snapshots;
    Alcotest.test_case "tombstones" `Quick test_version_store_tombstones;
    Alcotest.test_case "scan at timestamp" `Quick test_version_store_scan_at;
    Alcotest.test_case "committed_after (FCW test)" `Quick test_committed_after;
    Alcotest.test_case "writer_at" `Quick test_writer_at;
    prop_version_reads_consistent;
  ]
