(* Shared helpers for the test suites: Alcotest testables for library
   types and shorthand constructors. *)

let action = Alcotest.testable History.Action.pp History.Action.equal
let history = Alcotest.list action

let phenomenon =
  Alcotest.testable Phenomena.Phenomenon.pp Phenomena.Phenomenon.equal

let level = Alcotest.testable Isolation.Level.pp Isolation.Level.equal

let possibility =
  Alcotest.testable Isolation.Spec.pp_possibility (fun a b -> a = b)

let exec_status =
  Alcotest.testable Core.Executor.pp_status (fun a b -> a = b)

let h = History.of_string

(* Run programs at uniform [level] under a schedule. *)
let run ?(initial = []) ?(predicates = []) ?(first_updater_wins = false) level
    programs schedule =
  let cfg =
    Core.Executor.config ~initial ~predicates ~first_updater_wins
      (List.map (fun _ -> level) programs)
  in
  Core.Executor.run cfg programs ~schedule

(* Run with one level per program. *)
let run_mixed ?(initial = []) ?(predicates = []) levels programs schedule =
  let cfg = Core.Executor.config ~initial ~predicates levels in
  Core.Executor.run cfg programs ~schedule

let check_exhibits ~name history expected =
  Alcotest.(check (list phenomenon))
    name
    (List.sort compare expected)
    (List.sort compare
       (List.filter
          (fun p -> List.mem p expected)
          (Phenomena.Detect.exhibited history)))

(* Substring test for rendered-output checks. *)
let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* qcheck-to-alcotest bridge. *)
let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)
