(* Tests for the Multiversion Mixed Method ([BHG]; the paper's §4.2 notes
   Snapshot Isolation "extends the Multiversion Mixed Method, which
   allowed snapshot reads by read-only transactions"): on the locking
   engine, a transaction declared read-only reads the committed snapshot
   as of its begin, takes no locks, and cannot write. *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor
module Predicate = Storage.Predicate
module Scenario = Workload.Scenario

let run ?read_only level programs schedule =
  let cfg =
    Executor.config
      ~initial:[ ("x", 50); ("y", 50) ]
      ?read_only
      (List.map (fun _ -> level) programs)
  in
  Executor.run cfg programs ~schedule

let transfer =
  P.make ~name:"transfer"
    [ P.Read "x"; P.Write ("x", P.read_plus "x" (-40));
      P.Read "y"; P.Write ("y", P.read_plus "y" 40); P.Commit ]

let audit = P.make ~name:"audit" [ P.Read "x"; P.Read "y"; P.Commit ]

(* The H1 interleaving: a locked audit would block or read dirty; a
   read-only audit reads its snapshot, never blocks, and sums to 100. *)
let test_audit_consistent_and_unblocked () =
  let r =
    run ~read_only:[ false; true ] L.Serializable [ transfer; audit ]
      [ 1; 1; 2; 2; 2; 1; 1; 1 ]
  in
  Alcotest.(check int) "audit never blocks" 0 r.Executor.blocked_attempts;
  (match (Scenario.last_read r 2 "x", Scenario.last_read r 2 "y") with
  | Some x, Some y -> Alcotest.(check int) "consistent total" 100 (x + y)
  | _ -> Alcotest.fail "audit reads missing");
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses)

(* ...and symmetrically it never blocks the writer. *)
let test_writer_unblocked_by_audit () =
  let r =
    run ~read_only:[ true; false ] L.Serializable [ audit; transfer ]
      [ 1; 2; 2; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check int) "nothing blocks" 0 r.Executor.blocked_attempts

(* Exhaustive: across every interleaving, a read-only audit of the
   transfer workload always sums to 100 and never blocks, while the
   resulting mixed trace stays one-copy serializable. *)
let test_exhaustive_consistency () =
  let programs = [ transfer; audit ] in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let bad, total =
    Sim.Interleave.count_merges sizes (fun schedule ->
        let r = run ~read_only:[ false; true ] L.Serializable programs schedule in
        let consistent =
          match (Scenario.last_read r 2 "x", Scenario.last_read r 2 "y") with
          | Some x, Some y -> x + y = 100
          | _ -> false
        in
        not
          (consistent
          && r.Executor.blocked_attempts = 0
          && History.Mv.is_one_copy_serializable r.Executor.history))
  in
  Alcotest.(check int) "no bad interleaving" 0 bad;
  Alcotest.(check bool) "explored all" true (total = Sim.Interleave.count sizes)

(* Writes from a read-only transaction are rejected. *)
let test_read_only_writes_rejected () =
  let db = Core.Db.open_db ~initial:[ ("x", 1) ] () in
  let tx = Core.Db.begin_tx ~read_only:true db ~level:L.Serializable in
  (match Core.Db.read tx "x" with
  | Core.Db.Ok (Some 1) -> ()
  | _ -> Alcotest.fail "read-only read failed");
  Alcotest.(check bool) "write raises" true
    (try
       ignore (Core.Db.write tx "x" 9);
       false
     with Invalid_argument _ -> true)

(* The snapshot is pinned at begin: later commits stay invisible. *)
let test_snapshot_pinned_at_begin () =
  let db = Core.Db.open_db ~initial:[ ("x", 1) ] () in
  let ro = Core.Db.begin_tx ~read_only:true db ~level:L.Serializable in
  let w = Core.Db.begin_tx db ~level:L.Serializable in
  (match Core.Db.write w "x" 2 with Core.Db.Ok () -> () | _ -> Alcotest.fail "write");
  (match Core.Db.commit w with Core.Db.Ok () -> () | _ -> Alcotest.fail "commit");
  (match Core.Db.read ro "x" with
  | Core.Db.Ok (Some v) -> Alcotest.(check int) "still sees 1" 1 v
  | _ -> Alcotest.fail "read");
  (* A read-only transaction begun after the commit sees 2. *)
  let ro2 = Core.Db.begin_tx ~read_only:true db ~level:L.Serializable in
  match Core.Db.read ro2 "x" with
  | Core.Db.Ok (Some v) -> Alcotest.(check int) "fresh snapshot sees 2" 2 v
  | _ -> Alcotest.fail "read"

(* Snapshot scans see committed predicate membership as of begin. *)
let test_snapshot_scans () =
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let db = Core.Db.open_db ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] () in
  let ro = Core.Db.begin_tx ~read_only:true db ~level:L.Serializable in
  let w = Core.Db.begin_tx db ~level:L.Serializable in
  (match Core.Db.insert w "emp_b" 1 with Core.Db.Ok () -> () | _ -> Alcotest.fail "insert");
  (match Core.Db.commit w with Core.Db.Ok () -> () | _ -> Alcotest.fail "commit");
  match Core.Db.scan ro emp with
  | Core.Db.Ok rows ->
    Alcotest.(check (list (pair string int)))
      "no phantom in the snapshot" [ ("emp_a", 1) ] rows
  | _ -> Alcotest.fail "scan"

(* Rollbacks leave no trace in the version history: a snapshot taken after
   an abort sees the pre-abort state. *)
let test_aborts_invisible_to_snapshots () =
  let db = Core.Db.open_db ~initial:[ ("x", 1) ] () in
  let w = Core.Db.begin_tx db ~level:L.Serializable in
  (match Core.Db.write w "x" 99 with Core.Db.Ok () -> () | _ -> Alcotest.fail "write");
  (match Core.Db.abort w with Core.Db.Ok () -> () | _ -> Alcotest.fail "abort");
  let ro = Core.Db.begin_tx ~read_only:true db ~level:L.Serializable in
  match Core.Db.read ro "x" with
  | Core.Db.Ok (Some v) -> Alcotest.(check int) "aborted write invisible" 1 v
  | _ -> Alcotest.fail "read"

let suite =
  [
    Alcotest.test_case "audit: consistent and unblocked" `Quick
      test_audit_consistent_and_unblocked;
    Alcotest.test_case "writer unblocked by audit" `Quick
      test_writer_unblocked_by_audit;
    Alcotest.test_case "exhaustive consistency" `Quick
      test_exhaustive_consistency;
    Alcotest.test_case "read-only writes rejected" `Quick
      test_read_only_writes_rejected;
    Alcotest.test_case "snapshot pinned at begin" `Quick
      test_snapshot_pinned_at_begin;
    Alcotest.test_case "snapshot scans" `Quick test_snapshot_scans;
    Alcotest.test_case "aborts invisible to snapshots" `Quick
      test_aborts_invisible_to_snapshots;
  ]
