(* Tests for dependency graphs and conflict-serializability, anchored on
   the paper's example histories. *)

module C = History.Conflict

let h = Support.h

let serializable name text expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected (C.is_serializable (h text)))

let test_paper_single_version =
  [
    serializable "H1 is non-serializable"
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" false;
    serializable "H2 is non-serializable"
      "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1" false;
    serializable "H3 is non-serializable"
      "r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1" false;
    serializable "H4 is non-serializable"
      "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1" false;
    serializable "H5 is non-serializable"
      "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2" false;
    serializable "H1.SI.SV is serializable"
      "r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1" true;
    serializable "serial history is serializable" "r1[x] w1[y] c1 r2[y] w2[x] c2"
      true;
    serializable "read-only interleaving is serializable"
      "r1[x] r2[x] r1[y] r2[y] c1 c2" true;
  ]

let test_aborted_txns_ignored () =
  (* Dependency graphs are over committed transactions only. *)
  let hist = h "w1[x] r2[x] w2[x] a1 c2" in
  Alcotest.(check bool) "aborted writer ignored" true (C.is_serializable hist)

let test_edges_h4 () =
  let hist = h "r1[x] r2[x] w2[x] c2 w1[x] c1" in
  let edges =
    List.sort_uniq compare
      (List.map (fun e -> (e.C.src, e.C.dst, e.C.dep)) (C.edges hist))
  in
  Alcotest.(check int) "three dependency edges" 3 (List.length edges);
  Alcotest.(check bool) "T1 rw T2" true (List.mem (1, 2, C.Read_write) edges);
  Alcotest.(check bool) "T2 ww T1" true (List.mem (2, 1, C.Write_write) edges);
  Alcotest.(check bool) "T2 rw T1" true (List.mem (2, 1, C.Read_write) edges)

let test_predicate_conflict_edges () =
  let hist = h "r1[P] w2[insert y to P] c2 c1" in
  let edges = List.map (fun e -> (e.C.src, e.C.dst)) (C.edges hist) in
  Alcotest.(check (list (pair int int))) "pred rw edge" [ (1, 2) ] edges

let test_cycle_witness () =
  (* H5's rw-rw cycle *)
  let h5 = h "r1[x] r1[y] r2[x] r2[y] w1[y] w2[x] c1 c2" in
  match C.cycle h5 with
  | None -> Alcotest.fail "expected a cycle in H5"
  | Some nodes ->
    Alcotest.(check (list int)) "cycle over T1,T2" [ 1; 2 ]
      (List.sort compare nodes)

let test_serialization_order () =
  let hist = h "r1[x] w1[x] c1 r2[x] w2[x] c2" in
  Alcotest.(check (option (list int)))
    "serial order T1 T2" (Some [ 1; 2 ])
    (C.serialization_order hist)

let test_equivalent_serial () =
  let hist = h "r1[x] r2[y] w1[y] c1 w2[z] c2" in
  (* rw: r2[y] -> w1[y], so T2 must precede T1 *)
  match C.equivalent_serial hist with
  | None -> Alcotest.fail "expected an equivalent serial history"
  | Some serial ->
    Alcotest.(check bool) "serial is serializable" true (C.is_serializable serial);
    Alcotest.(check bool) "equivalent" true (C.equivalent hist serial)

let test_equivalence_reflexive () =
  let hist = h "r1[x] w2[x] c1 c2" in
  Alcotest.(check bool) "reflexive" true (C.equivalent hist hist)

let test_inequivalence () =
  let h1 = h "r1[x] w2[x] c1 c2" in
  let h2 = h "w2[x] r1[x] c1 c2" in
  Alcotest.(check bool) "different dataflow" false (C.equivalent h1 h2)

(* The Serializability Theorem, empirically: no serializable history
   exhibits any of the ANSI phenomena's strict anomalies... conversely we
   check that serial histories never exhibit broad phenomena either. *)
let test_serial_exhibits_nothing () =
  let serial = h "r1[x] w1[x] r1[P] c1 r2[x] w2[x] c2 w3[y in P] c3" in
  Alcotest.(check (list Support.phenomenon))
    "no phenomena in a serial history" []
    (Phenomena.Detect.exhibited serial)

let test_to_dot () =
  let dot = C.to_dot (h "r1[x] w2[x] c2 w1[x] c1") in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true
        (Support.contains_substring ~sub dot))
    [ "digraph"; "T1 -> T2"; "T2 -> T1"; "rw:x"; "ww:x" ]

let suite =
  test_paper_single_version
  @ [
      Alcotest.test_case "aborted transactions are ignored" `Quick
        test_aborted_txns_ignored;
      Alcotest.test_case "H4 dependency edges" `Quick test_edges_h4;
      Alcotest.test_case "predicate conflict edges" `Quick
        test_predicate_conflict_edges;
      Alcotest.test_case "cycle witness for H5" `Quick test_cycle_witness;
      Alcotest.test_case "serialization order" `Quick test_serialization_order;
      Alcotest.test_case "equivalent serial history" `Quick
        test_equivalent_serial;
      Alcotest.test_case "equivalence is reflexive" `Quick
        test_equivalence_reflexive;
      Alcotest.test_case "reordered conflicts are inequivalent" `Quick
        test_inequivalence;
      Alcotest.test_case "serial histories exhibit no phenomena" `Quick
        test_serial_exhibits_nothing;
      Alcotest.test_case "dot rendering" `Quick test_to_dot;
    ]
