(* Behavioral tests for the locking scheduler, one per signature behavior
   of the Table 2 protocols: dirty reads at READ UNCOMMITTED, read locks
   at READ COMMITTED, cursor holds at Cursor Stability, long read locks at
   REPEATABLE READ, predicate locks at SERIALIZABLE, rollback, deadlocks
   and mixed levels. *)

module P = Core.Program
module L = Isolation.Level
module Ph = Phenomena.Phenomenon
module Executor = Core.Executor
module Predicate = Storage.Predicate

let run = Support.run
let run_mixed = Support.run_mixed

let writer_then_abort =
  P.make ~name:"writer" [ P.Write ("x", P.const 10); P.Abort ]

let reader = P.make ~name:"reader" [ P.Read "x"; P.Commit ]

let test_dirty_read_at_ru () =
  let r =
    run ~initial:[ ("x", 1) ] L.Read_uncommitted [ writer_then_abort; reader ]
      [ 1; 2; 2; 1 ]
  in
  Alcotest.(check bool) "P1 occurs" true
    (Phenomena.Detect.occurs Ph.P1 r.Executor.history);
  Alcotest.(check (list (pair string int))) "abort restored x" [ ("x", 1) ]
    r.Executor.final

let test_no_dirty_read_at_rc () =
  let r =
    run ~initial:[ ("x", 1) ] L.Read_committed [ writer_then_abort; reader ]
      [ 1; 2; 2; 1 ]
  in
  Alcotest.(check bool) "P1 prevented" false
    (Phenomena.Detect.occurs Ph.P1 r.Executor.history);
  Alcotest.(check bool) "the read blocked at least once" true
    (r.Executor.blocked_attempts > 0)

let test_fuzzy_read_at_rc_not_rr () =
  let rereader = P.make [ P.Read "x"; P.Read "x"; P.Commit ] in
  let updater = P.make [ P.Write ("x", P.const 9); P.Commit ] in
  let sched = [ 1; 2; 2; 1; 1 ] in
  let rc = run ~initial:[ ("x", 1) ] L.Read_committed [ rereader; updater ] sched in
  Alcotest.(check bool) "A2 at READ COMMITTED" true
    (Phenomena.Detect.occurs Ph.A2 rc.Executor.history);
  let rr = run ~initial:[ ("x", 1) ] L.Repeatable_read [ rereader; updater ] sched in
  Alcotest.(check bool) "no A2 at REPEATABLE READ" false
    (Phenomena.Detect.occurs Ph.A2 rr.Executor.history)

let emp = Predicate.key_prefix ~name:"Emp" "emp_"

let test_phantom_at_rr_not_ser () =
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let inserter = P.make [ P.Insert ("emp_new", P.const 1); P.Commit ] in
  let sched = [ 1; 2; 2; 1; 1 ] in
  let rr =
    run ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] L.Repeatable_read
      [ scanner; inserter ] sched
  in
  Alcotest.(check bool) "A3 at REPEATABLE READ" true
    (Phenomena.Detect.occurs Ph.A3 rr.Executor.history);
  let ser =
    run ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] L.Serializable
      [ scanner; inserter ] sched
  in
  Alcotest.(check bool) "no A3 at SERIALIZABLE" false
    (Phenomena.Detect.occurs Ph.A3 ser.Executor.history)

let test_degree0_dirty_write_breaks_constraint () =
  let ones = P.make [ P.Write ("x", P.const 1); P.Write ("y", P.const 1); P.Commit ] in
  let twos = P.make [ P.Write ("x", P.const 2); P.Write ("y", P.const 2); P.Commit ] in
  (* w1[x] w2[x] w2[y] c2 w1[y] c1 — the paper's example. *)
  let d0 =
    run ~initial:[ ("x", 0); ("y", 0) ] L.Degree_0 [ ones; twos ]
      [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "x <> y under Degree 0" true
    (List.assoc "x" d0.Executor.final <> List.assoc "y" d0.Executor.final);
  let ru =
    run ~initial:[ ("x", 0); ("y", 0) ] L.Read_uncommitted [ ones; twos ]
      [ 1; 2; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "x = y under Degree 1 long write locks" true
    (List.assoc "x" ru.Executor.final = List.assoc "y" ru.Executor.final)

let test_deadlock_detected_and_victim_aborted () =
  let t1 = P.make [ P.Read "x"; P.Write ("y", P.const 1); P.Commit ] in
  let t2 = P.make [ P.Read "y"; P.Write ("x", P.const 2); P.Commit ] in
  let r =
    run ~initial:[ ("x", 0); ("y", 0) ] L.Serializable [ t1; t2 ]
      [ 1; 2; 1; 2; 1; 2 ]
  in
  Alcotest.(check int) "one deadlock" 1 r.Executor.deadlock_aborts;
  Alcotest.(check Support.exec_status) "the younger transaction is the victim"
    (Executor.Aborted Core.Engine.Deadlock_victim)
    (List.assoc 2 r.Executor.statuses);
  Alcotest.(check Support.exec_status) "the other commits" Executor.Committed
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check bool) "resulting history is serializable" true
    (History.Conflict.is_serializable r.Executor.history)

let test_abort_rolls_back_inserts_and_deletes () =
  let t =
    P.make
      [ P.Insert ("new", P.const 5); P.Delete "x";
        P.Write ("y", P.const 99); P.Abort ]
  in
  let r = run ~initial:[ ("x", 1); ("y", 2) ] L.Serializable [ t ] [ 1; 1; 1; 1 ] in
  Alcotest.(check (list (pair string int)))
    "all effects undone"
    [ ("x", 1); ("y", 2) ]
    r.Executor.final

let cursor_add amount =
  P.make
    [
      P.Open_cursor { cursor = "c"; pred = Predicate.item "x"; for_update = false };
      P.Fetch "c";
      P.Cursor_write ("c", P.read_plus "x" amount);
      P.Commit;
    ]

(* Both transactions access x through cursors. Under Cursor Stability the
   held cursor locks turn the lost update into a deadlock: the victim
   aborts and no committed update is lost. Under READ COMMITTED the same
   schedule silently loses an update. *)
let test_cursor_stability_holds_current_row () =
  let sched = [ 1; 1; 2; 2; 1; 2; 1; 2 ] in
  let cs =
    run ~initial:[ ("x", 100) ] L.Cursor_stability
      [ cursor_add 30; cursor_add 20 ] sched
  in
  Alcotest.(check bool) "no lost update under CS" false
    (Phenomena.Detect.occurs Ph.P4 cs.Executor.history);
  Alcotest.(check bool) "the conflict surfaced as blocking or deadlock" true
    (cs.Executor.blocked_attempts > 0);
  let rc =
    run ~initial:[ ("x", 100) ] L.Read_committed
      [ cursor_add 30; cursor_add 20 ] sched
  in
  Alcotest.(check bool) "lost update under RC" true
    (Phenomena.Detect.occurs Ph.P4 rc.Executor.history);
  Alcotest.(check bool) "an update is lost" true
    (List.assoc_opt "x" rc.Executor.final <> Some 150)

let test_cursor_lock_released_on_move () =
  let scan_all = Predicate.key_prefix ~name:"All" "" in
  let t1 =
    P.make
      [
        P.Open_cursor { cursor = "c"; pred = scan_all; for_update = false };
        P.Fetch "c"; (* on x *)
        P.Fetch "c"; (* moves to y, releasing x *)
        P.Commit;
      ]
  in
  let t2 = P.make [ P.Write ("x", P.const 77); P.Commit ] in
  (* T2 writes x after T1's cursor has moved on to y: no blocking. *)
  let r =
    run ~initial:[ ("x", 1); ("y", 2) ] L.Cursor_stability [ t1; t2 ]
      [ 1; 1; 1; 2; 2; 1 ]
  in
  Alcotest.(check int) "no blocking after the move" 0 r.Executor.blocked_attempts;
  Alcotest.(check (option int)) "write applied" (Some 77)
    (List.assoc_opt "x" r.Executor.final)

let test_mixed_levels_in_one_execution () =
  (* T1 runs SERIALIZABLE, T2 READ UNCOMMITTED: T2 sees T1's uncommitted
     write even though T1 is fully protected. *)
  let t1 = P.make [ P.Write ("x", P.const 5); P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Commit ] in
  let r =
    run_mixed ~initial:[ ("x", 0) ]
      [ L.Serializable; L.Read_uncommitted ]
      [ t1; t2 ] [ 1; 2; 2; 1 ]
  in
  Alcotest.(check bool) "dirty read by the weak transaction" true
    (Phenomena.Detect.occurs Ph.P1 r.Executor.history)

let test_auto_commit_appended () =
  let t = P.make [ P.Write ("x", P.const 3) ] in
  let r = run ~initial:[ ("x", 0) ] L.Serializable [ t ] [ 1 ] in
  Alcotest.(check Support.exec_status) "auto-committed" Executor.Committed
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check (option int)) "write persisted" (Some 3)
    (List.assoc_opt "x" r.Executor.final)

let test_determinism () =
  let rand = Random.State.make [| 42 |] in
  let programs =
    Workload.Generators.random_programs ~rand ~keys:[ "x"; "y"; "z" ] ~txns:3
      ~ops:5 ()
  in
  let schedule = Workload.Generators.random_schedule ~rand programs in
  let go () =
    run ~initial:[ ("x", 0); ("y", 0); ("z", 0) ] L.Serializable programs
      schedule
  in
  let a = go () and b = go () in
  Alcotest.(check Support.history) "same history" a.Executor.history b.Executor.history;
  Alcotest.(check (list (pair string int))) "same final state" a.Executor.final
    b.Executor.final

let suite =
  [
    Alcotest.test_case "dirty read at READ UNCOMMITTED" `Quick
      test_dirty_read_at_ru;
    Alcotest.test_case "no dirty read at READ COMMITTED" `Quick
      test_no_dirty_read_at_rc;
    Alcotest.test_case "fuzzy read: RC yes, RR no" `Quick
      test_fuzzy_read_at_rc_not_rr;
    Alcotest.test_case "phantom: RR yes, SERIALIZABLE no" `Quick
      test_phantom_at_rr_not_ser;
    Alcotest.test_case "Degree 0 dirty writes break x=y" `Quick
      test_degree0_dirty_write_breaks_constraint;
    Alcotest.test_case "deadlock detection and victim" `Quick
      test_deadlock_detected_and_victim_aborted;
    Alcotest.test_case "abort rolls back inserts and deletes" `Quick
      test_abort_rolls_back_inserts_and_deletes;
    Alcotest.test_case "Cursor Stability holds the current row" `Quick
      test_cursor_stability_holds_current_row;
    Alcotest.test_case "cursor lock released on move" `Quick
      test_cursor_lock_released_on_move;
    Alcotest.test_case "mixed levels in one execution" `Quick
      test_mixed_levels_in_one_execution;
    Alcotest.test_case "auto-commit" `Quick test_auto_commit_appended;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
