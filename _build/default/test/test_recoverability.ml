(* Tests for the recoverability hierarchy, and its correspondence with
   the paper's P0/P1: engines that forbid dirty reads produce
   cascade-free histories, engines that also forbid dirty writes produce
   strict ones, and Degree 0 can produce unrecoverable ones. *)

module R = History.Recoverability
module P = Core.Program
module L = Isolation.Level

let h = Support.h

let cls = Alcotest.testable R.pp_class ( = )

(* Handwritten classics: *)
let test_classics () =
  (* Reader of uncommitted data commits after its writer: recoverable but
     cascading. *)
  Alcotest.(check cls) "cascading" R.Recoverable
    (R.classify (h "w1[x] r2[x] c1 c2"));
  (* Reader commits before its writer: not even recoverable. *)
  Alcotest.(check cls) "unrecoverable" R.Not_recoverable
    (R.classify (h "w1[x] r2[x] c2 c1"));
  (* Reads only committed data, but overwrites uncommitted data: ACA, not
     strict. *)
  Alcotest.(check cls) "ACA but not strict" R.Aca
    (R.classify (h "w1[x] w2[x] c1 c2"));
  (* Everything waits for writers to finish: strict. *)
  Alcotest.(check cls) "strict" R.Strict
    (R.classify (h "w1[x] c1 r2[x] w2[x] c2"));
  (* The paper's undo dilemma history is not strict. *)
  Alcotest.(check bool) "w1 w2 a1 is not strict" false
    (R.is_strict (h "w1[x] w2[x] a1 c2"))

let test_reads_from_skips_aborted_writers () =
  (* After T1 aborts, its write no longer defines the value T2 reads. *)
  let hist = h "w1[x] a1 r2[x] c2" in
  Alcotest.(check int) "no reads-from edge" 0 (List.length (R.reads_from hist));
  Alcotest.(check cls) "strict" R.Strict (R.classify hist)

(* Engine correspondence. *)
let run_level level programs schedule = Support.run ~initial:[ ("x", 0); ("y", 0) ] level programs schedule

let writer_then_abort = P.make [ P.Write ("x", P.const 1); P.Abort ]
let reader = P.make [ P.Read "x"; P.Commit ]

let test_ru_allows_cascading () =
  let r = run_level L.Read_uncommitted [ writer_then_abort; reader ] [ 1; 2; 2; 1 ] in
  Alcotest.(check bool) "not cascade-free" false
    (R.avoids_cascading_aborts r.Core.Executor.history);
  Alcotest.(check bool) "still recoverable? no: reader committed first" false
    (R.is_recoverable r.Core.Executor.history)

let test_rc_is_strict () =
  let r = run_level L.Read_committed [ writer_then_abort; reader ] [ 1; 2; 2; 1 ] in
  Alcotest.(check cls) "strict at READ COMMITTED" R.Strict
    (R.classify r.Core.Executor.history)

let test_degree0_not_strict () =
  let w1 = P.make [ P.Write ("x", P.const 1); P.Commit ] in
  let w2 = P.make [ P.Write ("x", P.const 2); P.Commit ] in
  let r = run_level L.Degree_0 [ w1; w2 ] [ 1; 2; 1; 2 ] in
  Alcotest.(check bool) "dirty writes break strictness" false
    (R.is_strict r.Core.Executor.history)

(* Property: every locking level from READ COMMITTED up produces strict
   histories on random workloads — the paper's Remark 3 rationale. *)
let prop_rc_and_up_strict =
  Support.qtest "RC and stronger locking levels are strict" ~count:200
    QCheck2.Gen.(
      pair (0 -- 1_000_000)
        (oneofl
           L.[ Read_committed; Cursor_stability; Repeatable_read; Serializable ]))
    (fun (seed, level) ->
      let rand = Random.State.make [| seed |] in
      let programs =
        Workload.Generators.random_programs ~rand ~keys:[ "x"; "y"; "z" ]
          ~txns:3 ~ops:4 ()
      in
      let schedule = Workload.Generators.random_schedule ~rand programs in
      let r =
        Support.run
          ~initial:[ ("x", 1); ("y", 2); ("z", 3) ]
          level programs schedule
      in
      R.is_strict r.Core.Executor.history)

(* Degree 1 (long write locks, no read locks): cascading reads possible,
   but histories stay recoverable or better only if readers commit after
   their writers — which RU does not enforce, so we only assert writes
   are strict (no dirty writes). *)
let prop_ru_no_dirty_writes =
  Support.qtest "READ UNCOMMITTED never has dirty writes" ~count:200
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let programs =
        Workload.Generators.random_programs ~rand ~keys:[ "x"; "y" ] ~txns:3
          ~ops:4 ()
      in
      let schedule = Workload.Generators.random_schedule ~rand programs in
      let r =
        Support.run ~initial:[ ("x", 1); ("y", 2) ] L.Read_uncommitted
          programs schedule
      in
      not (Phenomena.Detect.occurs Phenomena.Phenomenon.P0 r.Core.Executor.history))

let suite =
  [
      Alcotest.test_case "classic classifications" `Quick test_classics;
      Alcotest.test_case "aborted writers invisible to reads-from" `Quick
        test_reads_from_skips_aborted_writers;
      Alcotest.test_case "READ UNCOMMITTED allows cascading" `Quick
        test_ru_allows_cascading;
      Alcotest.test_case "READ COMMITTED is strict" `Quick test_rc_is_strict;
      Alcotest.test_case "Degree 0 is not strict" `Quick test_degree0_not_strict;
      prop_rc_and_up_strict;
      prop_ru_no_dirty_writes;
    ]
