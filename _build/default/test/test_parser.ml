(* Tests for the shorthand-notation parser: the paper's histories parse
   verbatim, printing round-trips, and malformed input is rejected. *)

module A = History.Action

let parses name text expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check Support.history) name expected (History.of_string text))

let test_simple_actions =
  parses "reads, writes, terminations" "w1[x] r2[x] c1 a2"
    [ A.write 1 "x"; A.read 2 "x"; A.commit 1; A.abort 2 ]

let test_values =
  parses "values and negatives" "r1[x=50] w1[y=-40]"
    [ A.read ~value:50 1 "x"; A.write ~value:(-40) 1 "y" ]

let test_versions =
  parses "multiversion subscripts" "r1[x0=50] w1[x1=10]"
    [ A.read ~ver:0 ~value:50 1 "x"; A.write ~ver:1 ~value:10 1 "x" ]

let test_predicates =
  parses "predicate read and phantom write" "r1[P] w2[insert y to P]"
    [ A.pred_read 1 "P"; A.write ~kind:A.Insert ~preds:[ "P" ] 2 "y" ]

let test_predicate_keys =
  parses "predicate read with matched items" "r1[Emp:{a,b}]"
    [ A.pred_read ~keys:[ "a"; "b" ] 1 "Emp" ]

let test_update_in_predicate =
  parses "update within a predicate" "w2[y in P]"
    [ A.write ~preds:[ "P" ] 2 "y" ]

let test_delete_from_predicate =
  parses "delete from a predicate" "w2[delete y from P]"
    [ A.write ~kind:A.Delete ~preds:[ "P" ] 2 "y" ]

let test_cursor_ops =
  parses "cursor read and write" "rc1[x] wc1[x]"
    [ A.read ~cursor:true 1 "x"; A.write ~cursor:true 1 "x" ]

let test_ellipses =
  parses "the paper's ellipsis separators" "w1[x]...r2[x]...c1"
    [ A.write 1 "x"; A.read 2 "x"; A.commit 1 ]

let test_abutting =
  parses "actions without separators" "r1[x=50]w1[x=10]c1"
    [ A.read ~value:50 1 "x"; A.write ~value:10 1 "x"; A.commit 1 ]

let test_multidigit_txn =
  parses "multi-digit transaction ids" "w12[x] c12"
    [ A.write 12 "x"; A.commit 12 ]

(* Every paper history must parse and round-trip through the printer. *)
let test_paper_histories_roundtrip () =
  List.iter
    (fun ph ->
      let once = ph.Workload.Paper_histories.history in
      let again = History.of_string (History.to_string once) in
      Alcotest.(check Support.history)
        (ph.Workload.Paper_histories.name ^ " round-trips")
        once again)
    Workload.Paper_histories.all

let rejects name text =
  Alcotest.test_case name `Quick (fun () ->
      match History.Parser.parse text with
      | Ok actions ->
        Alcotest.failf "expected a parse error, got %a" History.pp actions
      | Error _ -> ())

let test_errors =
  [
    rejects "missing bracket" "r1[x";
    rejects "missing txn number" "r[x]";
    rejects "empty item" "r1[]";
    rejects "stray character" "r1[x] ? c1";
    rejects "cursor predicate read" "rc1[P]";
    rejects "insert without item" "w1[insert]";
    rejects "bad predicate keys" "r1[P:{a,}]";
  ]

(* Property: printing any action list and re-parsing is the identity. *)
let gen_action =
  let open QCheck2.Gen in
  let txn = 1 -- 5 in
  let key = oneofl [ "x"; "y"; "z"; "acct" ] in
  let value = opt (-100 -- 100) in
  oneof
    [
      (let* t = txn and* k = key and* v = value and* c = bool in
       return (A.read ?value:v ~cursor:c t k));
      (let* t = txn and* k = key and* v = value and* c = bool in
       return (A.write ?value:v ~cursor:c t k));
      (let* t = txn and* k = key and* v = 0 -- 3 in
       return (A.read ~ver:v ?value:None t k));
      (let* t = txn and* k = key in
       return (A.write ~kind:A.Insert ~preds:[ "P" ] t k));
      (let* t = txn and* k = key in
       return (A.write ~kind:A.Delete ~preds:[ "P" ] t k));
      (let* t = txn in
       return (A.pred_read t "P"));
      (let* t = txn and* ks = list_size (1 -- 3) key in
       return (A.pred_read ~keys:(List.sort_uniq compare ks) t "Emp"));
      (let* t = txn in
       return (A.commit t));
      (let* t = txn in
       return (A.abort t));
    ]

let prop_roundtrip =
  Support.qtest "print/parse round-trip" ~count:500
    QCheck2.Gen.(list_size (0 -- 20) gen_action)
    (fun actions ->
      History.of_string (History.to_string actions) = actions)

(* Totality: [Parser.parse] never raises on arbitrary input — it returns
   [Ok] or [Error]. *)
let prop_parser_total =
  Support.qtest "parser is total" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (0 -- 40))
    (fun input ->
      match History.Parser.parse input with Ok _ | Error _ -> true)

let suite =
  [
    test_simple_actions;
    test_values;
    test_versions;
    test_predicates;
    test_predicate_keys;
    test_update_in_predicate;
    test_delete_from_predicate;
    test_cursor_ops;
    test_ellipses;
    test_abutting;
    test_multidigit_txn;
    Alcotest.test_case "paper histories round-trip" `Quick
      test_paper_histories_roundtrip;
  ]
  @ test_errors
  @ [ prop_roundtrip; prop_parser_total ]
