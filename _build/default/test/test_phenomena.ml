(* Tests for the phenomenon detectors, anchored on the paper's §3 and §4
   arguments: each example history exhibits exactly the phenomena the
   paper says, and the strict/broad distinction separates as claimed. *)

module P = Phenomena.Phenomenon
module D = Phenomena.Detect

let h = Support.h

let occurs name text p expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected (D.occurs p (h text)))

(* The paper's central §3 argument: H1 violates P1 but none of the strict
   anomalies; H2 separates P2 from A2; H3 separates P3 from A3. *)
let test_paper_argument =
  [
    occurs "H1 violates P1"
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" P.P1 true;
    occurs "H1 does not violate A1"
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" P.A1 false;
    occurs "H1 does not violate A2"
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" P.A2 false;
    occurs "H1 does not violate A3"
      "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" P.A3 false;
    occurs "H2 violates P2"
      "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1" P.P2 true;
    occurs "H2 does not violate P1"
      "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1" P.P1 false;
    occurs "H2 does not violate A2"
      "r1[x=50]r2[x=50]w2[x=10]r2[y=50]w2[y=90]c2r1[y=90]c1" P.A2 false;
    occurs "H3 violates P3" "r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1"
      P.P3 true;
    occurs "H3 does not violate A3"
      "r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1" P.A3 false;
  ]

let test_p0 =
  [
    occurs "dirty write detected" "w1[x] w2[x] c2 c1" P.P0 true;
    occurs "sequential writes are clean" "w1[x] c1 w2[x] c2" P.P0 false;
    occurs "same-transaction rewrites are clean" "w1[x] w1[x] c1" P.P0 false;
    occurs "the paper's P0 example" "w1[x] w2[x] w2[y] c2 w1[y] c1" P.P0 true;
  ]

let test_p1_a1 =
  [
    occurs "dirty read detected" "w1[x] r2[x] c2 c1" P.P1 true;
    occurs "read after commit is clean" "w1[x] c1 r2[x] c2" P.P1 false;
    occurs "A1 needs abort and commit" "w1[x] r2[x] c2 a1" P.A1 true;
    occurs "A1 absent when writer commits" "w1[x] r2[x] c2 c1" P.A1 false;
    occurs "A1 absent when reader aborts" "w1[x] r2[x] a2 a1" P.A1 false;
    occurs "cursor reads count as reads" "w1[x] rc2[x] c2 c1" P.P1 true;
    occurs "dirty predicate read" "w1[insert y to P] r2[P] c2 c1" P.P1 true;
    occurs "predicate read after commit is clean"
      "w1[insert y to P] c1 r2[P] c2" P.P1 false;
  ]

let test_p2_a2 =
  [
    occurs "fuzzy read detected" "r1[x] w2[x] c2 c1" P.P2 true;
    occurs "write after reader ends is clean" "r1[x] c1 w2[x] c2" P.P2 false;
    occurs "A2 needs the reread" "r1[x] w2[x] c2 r1[x] c1" P.A2 true;
    occurs "A2 absent without reread" "r1[x] w2[x] c2 c1" P.A2 false;
    occurs "A2 absent when writer uncommitted at reread"
      "r1[x] w2[x] r1[x] c1 c2" P.A2 false;
  ]

let test_p3_a3 =
  [
    occurs "phantom write detected" "r1[P] w2[insert y to P] c1 c2" P.P3 true;
    occurs "write touching matched item is a phantom" "r1[P:{x}] w2[x] c1 c2"
      P.P3 true;
    occurs "unrelated write is clean" "r1[P] w2[z] c1 c2" P.P3 false;
    occurs "A3 needs the re-evaluation" "r1[P] w2[insert y to P] c2 r1[P] c1"
      P.A3 true;
    occurs "A3 absent without re-evaluation" "r1[P] w2[insert y to P] c2 c1"
      P.A3 false;
    occurs "deletes are phantoms too" "r1[P] w2[delete y from P] c1 c2" P.P3
      true;
  ]

let test_p4 =
  [
    occurs "H4 lost update" "r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1"
      P.P4 true;
    occurs "no loss when T1 reads after" "w2[x] c2 r1[x] w1[x] c1" P.P4 false;
    occurs "P4 needs T1 to commit" "r1[x] w2[x] w1[x] a1 c2" P.P4 false;
    occurs "P4C needs a cursor read" "r1[x] w2[x] w1[x] c1 c2" P.P4C false;
    occurs "P4C on cursor reads" "rc1[x] w2[x] w1[x] c1 c2" P.P4C true;
    occurs "P4C with cursor write" "rc1[x] w2[x] wc1[x] c1 c2" P.P4C true;
  ]

let test_a5 =
  [
    occurs "read skew" "r1[x] w2[x] w2[y] c2 r1[y] c1" P.A5A true;
    occurs "read skew with writes reordered" "r1[x] w2[y] w2[x] c2 r1[y] c1"
      P.A5A true;
    occurs "no skew when T1 reads both first" "r1[x] r1[y] w2[x] w2[y] c2 c1"
      P.A5A false;
    occurs "no skew on a single item" "r1[x] w2[x] c2 r1[x] c1" P.A5A false;
    occurs "write skew (H5)"
      "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2" P.A5B
      true;
    occurs "write skew needs both commits"
      "r1[x] r2[y] w1[y] w2[x] a1 c2" P.A5B false;
    occurs "parallel disjoint updates are not skew"
      "r1[x] r2[y] w1[x] w2[y] c1 c2" P.A5B false;
  ]

(* Table-driven check of every paper history against its annotations. *)
let test_paper_histories () =
  List.iter
    (fun ph ->
      let open Workload.Paper_histories in
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Fmt.str "%s exhibits %s" ph.name (P.name p))
            true
            (D.occurs p ph.history))
        ph.exhibits;
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Fmt.str "%s avoids %s" ph.name (P.name p))
            false
            (D.occurs p ph.history))
        ph.avoids)
    Workload.Paper_histories.all

let test_witness_positions_sorted () =
  let hist = h "r1[x] w2[x] c2 r1[x] c1" in
  List.iter
    (fun w ->
      let sorted = List.sort compare w.D.positions in
      Alcotest.(check (list int)) "positions ascending" sorted w.D.positions)
    (D.detect P.A2 hist)

let test_formula_strings () =
  Alcotest.(check string)
    "P0 formula" "w1[x]...w2[x]...(c1 or a1)" (P.formula P.P0);
  Alcotest.(check string)
    "A5B formula" "r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)"
    (P.formula P.A5B)

let test_metadata () =
  Alcotest.(check int) "eleven phenomena" 11 (List.length P.all);
  Alcotest.(check int) "eight Table 4 columns" 8 (List.length P.table4);
  List.iter
    (fun p ->
      Alcotest.(check (option Support.phenomenon))
        ("of_string/name round-trip for " ^ P.name p)
        (Some p)
        (P.of_string (P.name p)))
    P.all

let suite =
  test_paper_argument @ test_p0 @ test_p1_a1 @ test_p2_a2 @ test_p3_a3
  @ test_p4 @ test_a5
  @ [
      Alcotest.test_case "paper history annotations" `Quick test_paper_histories;
      Alcotest.test_case "witness positions sorted" `Quick
        test_witness_positions_sorted;
      Alcotest.test_case "formula strings" `Quick test_formula_strings;
      Alcotest.test_case "metadata" `Quick test_metadata;
    ]
