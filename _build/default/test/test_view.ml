(* Tests for view equivalence and view serializability. *)

module V = History.View

let h = Support.h

let test_reads_from () =
  let hist = h "w1[x] c1 r2[x] w2[x] r2[x] c2" in
  Alcotest.(check (list (triple int string int)))
    "reads-from triples"
    [ (2, "x", 1); (2, "x", 2) ]
    (V.reads_from hist)

let test_reads_from_initial () =
  let hist = h "r1[x] c1" in
  Alcotest.(check (list (triple int string int)))
    "reads initial state"
    [ (1, "x", 0) ]
    (V.reads_from hist)

let test_pred_reads_counted () =
  let hist = h "w1[a] c1 r2[P:{a,b}] c2" in
  Alcotest.(check (list (triple int string int)))
    "predicate reads expand to their matched items"
    [ (2, "a", 1); (2, "b", 0) ]
    (V.reads_from hist)

let test_final_writes () =
  let hist = h "w1[x] w2[x] w1[y] c1 c2" in
  Alcotest.(check (list (pair string int)))
    "final writers"
    [ ("x", 2); ("y", 1) ]
    (V.final_writes hist)

let test_aborted_writes_ignored () =
  let hist = h "w1[x] a1 w2[x] c2" in
  Alcotest.(check (list (pair string int)))
    "aborted final write ignored"
    [ ("x", 2) ]
    (V.final_writes hist)

let test_view_equivalent_reflexive () =
  let hist = h "r1[x] w2[x] c1 c2" in
  Alcotest.(check bool) "reflexive" true (V.view_equivalent hist hist)

(* The textbook separator: blind writes make this view-serializable
   (serial order T1 T2 T3) but not conflict-serializable. *)
let test_view_but_not_conflict () =
  let hist = h "r1[x] w2[x] c2 w1[x] c1 w3[x] c3" in
  Alcotest.(check bool) "not conflict-serializable" false
    (History.Conflict.is_serializable hist);
  Alcotest.(check bool) "view-serializable" true (V.is_view_serializable hist);
  Alcotest.(check (option (list int)))
    "the serial witness" (Some [ 1; 2; 3 ])
    (V.view_serialization_order hist)

let test_h5_not_view_serializable () =
  let h5 = h "r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2" in
  Alcotest.(check bool) "write skew fails view test too" false
    (V.is_view_serializable h5)

let test_h1_not_view_serializable () =
  let h1 = h "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1" in
  Alcotest.(check bool) "H1 fails view test" false (V.is_view_serializable h1)

let test_serial_is_view_serializable () =
  let hist = h "r1[x] w1[y] c1 r2[y] w2[x] c2" in
  Alcotest.(check bool) "serial history passes" true
    (V.is_view_serializable hist)

let test_too_many_txns_rejected () =
  let hist =
    h "w1[x] c1 w2[x] c2 w3[x] c3 w4[x] c4 w5[x] c5 w6[x] c6 w7[x] c7 w8[x] c8 w9[x] c9"
  in
  Alcotest.(check bool) "search bound enforced" true
    (try
       ignore (V.is_view_serializable hist);
       false
     with Invalid_argument _ -> true)

(* Property: conflict serializability implies view serializability on
   random (small) single-version histories. *)
let gen_history =
  let open QCheck2.Gen in
  let action =
    let* t = 1 -- 3 and* k = oneofl [ "x"; "y" ] and* w = bool in
    return (if w then History.Action.write t k else History.Action.read t k)
  in
  let* body = list_size (0 -- 10) action in
  (* Commit every transaction at the end, in random relative order. *)
  let* order = oneofl [ [ 1; 2; 3 ]; [ 3; 2; 1 ]; [ 2; 1; 3 ] ] in
  return (body @ List.map History.Action.commit order)

let prop_conflict_implies_view =
  Support.qtest "conflict-serializable implies view-serializable" ~count:300
    gen_history
    (fun hist ->
      (not (History.Conflict.is_serializable hist))
      || V.is_view_serializable hist)

(* Property: the conflict-equivalent serial history, when one exists, is
   also view equivalent. *)
let prop_conflict_equivalent_serial_is_view_equivalent =
  Support.qtest "conflict-equivalent serial order is view equivalent"
    ~count:300 gen_history
    (fun hist ->
      match History.Conflict.serialization_order hist with
      | None -> true
      | Some order ->
        V.view_equivalent hist (History.Conflict.serial_history hist order))

let suite =
  [
    Alcotest.test_case "reads-from" `Quick test_reads_from;
    Alcotest.test_case "reads from initial state" `Quick test_reads_from_initial;
    Alcotest.test_case "predicate reads counted" `Quick test_pred_reads_counted;
    Alcotest.test_case "final writes" `Quick test_final_writes;
    Alcotest.test_case "aborted writes ignored" `Quick
      test_aborted_writes_ignored;
    Alcotest.test_case "view equivalence reflexive" `Quick
      test_view_equivalent_reflexive;
    Alcotest.test_case "view- but not conflict-serializable" `Quick
      test_view_but_not_conflict;
    Alcotest.test_case "H5 fails the view test" `Quick
      test_h5_not_view_serializable;
    Alcotest.test_case "H1 fails the view test" `Quick
      test_h1_not_view_serializable;
    Alcotest.test_case "serial histories pass" `Quick
      test_serial_is_view_serializable;
    Alcotest.test_case "search bound" `Quick test_too_many_txns_rejected;
    prop_conflict_implies_view;
    prop_conflict_equivalent_serial_is_view_equivalent;
  ]
