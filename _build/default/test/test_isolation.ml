(* Tests for the isolation-level framework: the spec matrices transcribe
   the paper's tables, and the lattice proves the paper's remarks. *)

module L = Isolation.Level
module Spec = Isolation.Spec
module Lattice = Isolation.Lattice
module P = Phenomena.Phenomenon

let check_cell name level p expected =
  Alcotest.(check Support.possibility) name expected (Spec.table4 level p)

let test_table1 () =
  Alcotest.(check Support.possibility)
    "ANSI RC forbids P1" Spec.Not_possible
    (Spec.table1 Spec.Ansi_read_committed P.P1);
  Alcotest.(check Support.possibility)
    "ANSI RR allows P3" Spec.Possible
    (Spec.table1 Spec.Ansi_repeatable_read P.P3);
  Alcotest.(check Support.possibility)
    "ANOMALY SERIALIZABLE forbids P3" Spec.Not_possible
    (Spec.table1 Spec.Anomaly_serializable P.P3);
  Alcotest.check_raises "P0 is not a Table 1 column"
    (Invalid_argument "Spec.table1: only P1, P2, P3 are columns of Table 1")
    (fun () -> ignore (Spec.table1 Spec.Ansi_read_committed P.P0))

let test_table3_has_p0 () =
  List.iter
    (fun level ->
      Alcotest.(check Support.possibility)
        (L.name level ^ " forbids P0 in Table 3")
        Spec.Not_possible (Spec.table3 level P.P0))
    Spec.table3_rows

let test_table4_signature_cells () =
  check_cell "RU allows dirty reads" L.Read_uncommitted P.P1 Spec.Possible;
  check_cell "RC forbids dirty reads" L.Read_committed P.P1 Spec.Not_possible;
  check_cell "CS lost update sometimes" L.Cursor_stability P.P4
    Spec.Sometimes_possible;
  check_cell "CS cursor lost update never" L.Cursor_stability P.P4C
    Spec.Not_possible;
  check_cell "RR allows phantoms" L.Repeatable_read P.P3 Spec.Possible;
  check_cell "SI phantom sometimes" L.Snapshot P.P3 Spec.Sometimes_possible;
  check_cell "SI allows write skew" L.Snapshot P.A5B Spec.Possible;
  check_cell "SI forbids read skew" L.Snapshot P.A5A Spec.Not_possible;
  check_cell "SI forbids strict phantom A3" L.Snapshot P.A3 Spec.Not_possible;
  check_cell "SERIALIZABLE forbids everything" L.Serializable P.A5B
    Spec.Not_possible;
  check_cell "Oracle RC forbids cursor lost updates"
    L.Oracle_read_consistency P.P4C Spec.Not_possible;
  check_cell "Oracle RC allows lost updates" L.Oracle_read_consistency P.P4
    Spec.Possible;
  check_cell "Degree 0 allows dirty writes" L.Degree_0 P.P0 Spec.Possible

let test_forbidden_serializable () =
  Alcotest.(check (list Support.phenomenon))
    "SERIALIZABLE forbids all phenomena" P.all
    (Spec.forbidden L.Serializable)

let test_ansi_forbidden () =
  Alcotest.(check (list Support.phenomenon))
    "ANOMALY SERIALIZABLE forbids only the strict anomalies"
    [ P.A1; P.A2; P.A3 ]
    (Spec.ansi_forbidden Spec.Anomaly_serializable)

(* Remarks 1, 7, 8, 9 (the ordering claims), plus the implied Remark 10. *)
let test_remarks () =
  Alcotest.(check bool) "Remark 1: RU << RC << RR << SER" true (Lattice.remark_1 ());
  Alcotest.(check bool) "Remark 7: RC << CS << RR" true (Lattice.remark_7 ());
  Alcotest.(check bool) "Remark 8: RC << SI" true (Lattice.remark_8 ());
  Alcotest.(check bool) "Remark 9: RR incomparable with SI" true
    (Lattice.remark_9 ())

(* Remark 10: Snapshot Isolation forbids all three strict anomalies, so it
   is stronger than ANOMALY SERIALIZABLE (which forbids only those). *)
let test_remark_10 () =
  List.iter
    (fun p ->
      Alcotest.(check Support.possibility)
        ("SI forbids " ^ P.name p)
        Spec.Not_possible (Spec.table4 L.Snapshot p))
    (Spec.ansi_forbidden Spec.Anomaly_serializable);
  (* ...and SI additionally forbids phenomena ANOMALY SERIALIZABLE does
     not mention, e.g. P0 and P4. *)
  Alcotest.(check bool) "SI forbids more than A1-A3" true
    (Spec.table4 L.Snapshot P.P4 = Spec.Not_possible
    && not (List.mem P.P4 (Spec.ansi_forbidden Spec.Anomaly_serializable)))

let test_relation_properties () =
  (* The strength relation is a partial order on the eight levels:
     reflexively equivalent, antisymmetric, transitive. *)
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (L.name l ^ " == itself")
        true
        (Lattice.compare_levels l l = Lattice.Equivalent))
    L.all;
  List.iter
    (fun l1 ->
      List.iter
        (fun l2 ->
          match (Lattice.compare_levels l1 l2, Lattice.compare_levels l2 l1) with
          | Lattice.Weaker, Lattice.Stronger
          | Lattice.Stronger, Lattice.Weaker
          | Lattice.Equivalent, Lattice.Equivalent
          | Lattice.Incomparable, Lattice.Incomparable ->
            ()
          | _ -> Alcotest.failf "asymmetric relation between %s and %s"
                   (L.name l1) (L.name l2))
        L.all)
    L.all;
  List.iter
    (fun l1 ->
      List.iter
        (fun l2 ->
          List.iter
            (fun l3 ->
              if Lattice.weaker l1 l2 && Lattice.weaker l2 l3 then
                Alcotest.(check bool)
                  (Fmt.str "transitive: %s << %s << %s" (L.name l1) (L.name l2)
                     (L.name l3))
                  true (Lattice.weaker l1 l3))
            L.all)
        L.all)
    L.all

let test_figure2_edges_consistent () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Fmt.str "%a consistent" Lattice.pp_edge e)
        true (Lattice.edge_consistent e))
    Lattice.figure2_paper_edges

let test_hasse_edges_are_covers () =
  let edges = Lattice.hasse () in
  Alcotest.(check bool) "hasse is non-empty" true (edges <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Fmt.str "%a is a strict order pair" Lattice.pp_edge e)
        true
        (Lattice.weaker e.Lattice.lower e.Lattice.upper);
      List.iter
        (fun mid ->
          if
            Lattice.weaker e.Lattice.lower mid
            && Lattice.weaker mid e.Lattice.upper
          then Alcotest.failf "%a is not a cover" Lattice.pp_edge e)
        L.all)
    edges

let test_incomparable_pairs_include_rr_si () =
  let pairs = Lattice.incomparable_pairs () in
  Alcotest.(check bool) "RR >><< SI is reported" true
    (List.exists
       (fun (a, b, _, _) ->
         (a = L.Repeatable_read && b = L.Snapshot)
         || (a = L.Snapshot && b = L.Repeatable_read))
       pairs)

let test_level_metadata () =
  Alcotest.(check int) "ten levels" 10 (List.length L.all);
  Alcotest.(check (option int)) "SER is degree 3" (Some 3) (L.degree L.Serializable);
  Alcotest.(check (option int)) "CS has no degree" None (L.degree L.Cursor_stability);
  List.iter
    (fun l ->
      Alcotest.(check (option Support.level))
        ("of_string/name round-trip for " ^ L.name l)
        (Some l)
        (L.of_string (L.name l)))
    L.all;
  Alcotest.(check bool) "SI is multiversion" true (L.is_multiversion L.Snapshot);
  Alcotest.(check bool) "SSI is multiversion" true
    (L.is_multiversion L.Serializable_snapshot);
  Alcotest.(check bool) "SER is not multiversion" false
    (L.is_multiversion L.Serializable)

let test_render_figure_mentions_all_levels () =
  let fig = Lattice.render_figure () in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " appears in Figure 2")
        true
        (Support.contains_substring ~sub:name fig))
    [ "Serializable"; "Repeatable Read"; "Snapshot"; "Cursor Stability";
      "Oracle Read Consistency"; "Read Committed"; "Read Uncommitted";
      "Degree 0" ]

let suite =
  [
    Alcotest.test_case "Table 1" `Quick test_table1;
    Alcotest.test_case "Table 3 includes P0" `Quick test_table3_has_p0;
    Alcotest.test_case "Table 4 signature cells" `Quick test_table4_signature_cells;
    Alcotest.test_case "SERIALIZABLE forbids everything" `Quick
      test_forbidden_serializable;
    Alcotest.test_case "ANSI forbidden sets" `Quick test_ansi_forbidden;
    Alcotest.test_case "Remarks 1, 7, 8, 9" `Quick test_remarks;
    Alcotest.test_case "Remark 10" `Quick test_remark_10;
    Alcotest.test_case "strength relation is a partial order" `Quick
      test_relation_properties;
    Alcotest.test_case "Figure 2 paper edges consistent" `Quick
      test_figure2_edges_consistent;
    Alcotest.test_case "Hasse edges are covers" `Quick test_hasse_edges_are_covers;
    Alcotest.test_case "RR and SI are incomparable" `Quick
      test_incomparable_pairs_include_rr_si;
    Alcotest.test_case "level metadata" `Quick test_level_metadata;
    Alcotest.test_case "Figure 2 rendering" `Quick
      test_render_figure_mentions_all_levels;
  ]
