(* Unit and property tests for History.Digraph: cycle detection with
   witnesses, topological sorting, strongly connected components. *)

module G = History.Digraph

let graph edges =
  let g = G.create () in
  List.iter (fun (a, b) -> G.add_edge g a b) edges;
  g

let test_empty () =
  let g = G.create () in
  Alcotest.(check (list int)) "no nodes" [] (G.nodes g);
  Alcotest.(check bool) "acyclic" true (G.is_acyclic g);
  Alcotest.(check (option (list int))) "topo" (Some []) (G.topological_sort g)

let test_single_node () =
  let g = G.create () in
  G.add_node g 7;
  Alcotest.(check (list int)) "one node" [ 7 ] (G.nodes g);
  Alcotest.(check bool) "acyclic" true (G.is_acyclic g)

let test_self_loop () =
  let g = graph [ (1, 1) ] in
  Alcotest.(check bool) "cyclic" false (G.is_acyclic g);
  Alcotest.(check (option (list int))) "cycle is [1]" (Some [ 1 ]) (G.find_cycle g)

let test_chain_acyclic () =
  let g = graph [ (1, 2); (2, 3); (3, 4) ] in
  Alcotest.(check bool) "acyclic" true (G.is_acyclic g);
  Alcotest.(check (option (list int)))
    "topo order" (Some [ 1; 2; 3; 4 ]) (G.topological_sort g)

let test_two_cycle () =
  let g = graph [ (1, 2); (2, 1) ] in
  match G.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    Alcotest.(check (list int)) "cycle nodes" [ 1; 2 ] (List.sort compare cycle)

let test_cycle_witness_is_real () =
  let g = graph [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5) ] in
  match G.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    let n = List.length cycle in
    Alcotest.(check bool) "non-empty" true (n > 0);
    List.iteri
      (fun i a ->
        let b = List.nth cycle ((i + 1) mod n) in
        Alcotest.(check bool)
          (Printf.sprintf "edge %d->%d exists" a b)
          true (G.mem_edge g a b))
      cycle

let test_diamond_topo () =
  let g = graph [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  match G.topological_sort g with
  | None -> Alcotest.fail "expected acyclic"
  | Some order ->
    let pos x =
      let rec find i = function
        | [] -> Alcotest.fail "missing node"
        | y :: rest -> if x = y then i else find (i + 1) rest
      in
      find 0 order
    in
    List.iter
      (fun (a, b) ->
        Alcotest.(check bool)
          (Printf.sprintf "%d before %d" a b)
          true
          (pos a < pos b))
      (G.edges g)

let test_sccs () =
  let g = graph [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 3); (4, 5) ] in
  let sccs = List.map (List.sort compare) (G.sccs g) in
  let sorted = List.sort compare sccs in
  Alcotest.(check (list (list int)))
    "components" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ] sorted

let test_sccs_acyclic_all_singletons () =
  let g = graph [ (1, 2); (2, 3); (1, 3) ] in
  Alcotest.(check (list (list int)))
    "singletons"
    [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.sort compare (G.sccs g))

(* Property: a graph is acyclic iff all SCCs are singletons without self
   loops, and topological_sort succeeds exactly on acyclic graphs. *)
let gen_edges =
  QCheck2.Gen.(list_size (0 -- 30) (pair (1 -- 8) (1 -- 8)))

let prop_topo_iff_acyclic =
  Support.qtest "topological_sort succeeds iff acyclic" ~count:500 gen_edges
    (fun edges ->
      let g = graph edges in
      (G.topological_sort g <> None) = G.is_acyclic g)

let prop_cycle_witness_valid =
  Support.qtest "find_cycle returns a real cycle" ~count:500 gen_edges
    (fun edges ->
      let g = graph edges in
      match G.find_cycle g with
      | None -> true
      | Some cycle ->
        let n = List.length cycle in
        n > 0
        && List.for_all
             (fun i ->
               G.mem_edge g (List.nth cycle i) (List.nth cycle ((i + 1) mod n)))
             (List.init n Fun.id))

let prop_topo_respects_edges =
  Support.qtest "topological order respects every edge" ~count:500 gen_edges
    (fun edges ->
      let g = graph edges in
      match G.topological_sort g with
      | None -> true
      | Some order ->
        let pos = Hashtbl.create 16 in
        List.iteri (fun i x -> Hashtbl.replace pos x i) order;
        List.for_all
          (fun (a, b) -> Hashtbl.find pos a < Hashtbl.find pos b)
          (G.edges g))

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "single node" `Quick test_single_node;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "chain is acyclic" `Quick test_chain_acyclic;
    Alcotest.test_case "two-node cycle" `Quick test_two_cycle;
    Alcotest.test_case "cycle witness has real edges" `Quick test_cycle_witness_is_real;
    Alcotest.test_case "diamond topological order" `Quick test_diamond_topo;
    Alcotest.test_case "strongly connected components" `Quick test_sccs;
    Alcotest.test_case "acyclic sccs are singletons" `Quick test_sccs_acyclic_all_singletons;
    prop_topo_iff_acyclic;
    prop_cycle_witness_valid;
    prop_topo_respects_edges;
  ]
