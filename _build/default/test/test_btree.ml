(* Tests for the B+ tree index: unit cases on splits and merges, and
   model-based property tests against a sorted association list. *)

module B = Storage.Btree

let key i = Printf.sprintf "k%04d" i

let test_empty () =
  let t : int B.t = B.create () in
  Alcotest.(check int) "empty" 0 (B.length t);
  Alcotest.(check (option int)) "find" None (B.find t "x");
  Alcotest.(check (list (pair string int))) "to_list" [] (B.to_list t);
  Alcotest.(check (option (pair string int))) "successor" None (B.successor t "");
  B.check_invariants t

let test_insert_find () =
  let t = B.create () in
  B.insert t "b" 2;
  B.insert t "a" 1;
  B.insert t "c" 3;
  Alcotest.(check (option int)) "a" (Some 1) (B.find t "a");
  Alcotest.(check (option int)) "b" (Some 2) (B.find t "b");
  Alcotest.(check (option int)) "missing" None (B.find t "zz");
  Alcotest.(check (list (pair string int)))
    "sorted" [ ("a", 1); ("b", 2); ("c", 3) ] (B.to_list t);
  B.check_invariants t

let test_overwrite () =
  let t = B.create () in
  B.insert t "a" 1;
  B.insert t "a" 9;
  Alcotest.(check int) "size stays 1" 1 (B.length t);
  Alcotest.(check (option int)) "overwritten" (Some 9) (B.find t "a")

let test_splits_grow_height () =
  let t = B.create () in
  for i = 1 to 200 do
    B.insert t (key i) i;
    B.check_invariants t
  done;
  Alcotest.(check bool) "height grew" true (B.height t > 1);
  Alcotest.(check int) "size" 200 (B.length t);
  for i = 1 to 200 do
    Alcotest.(check (option int)) (key i) (Some i) (B.find t (key i))
  done

let test_remove_and_merge () =
  let t = B.create () in
  for i = 1 to 100 do
    B.insert t (key i) i
  done;
  (* Remove everything in an order that exercises borrows and merges. *)
  List.iter
    (fun i ->
      Alcotest.(check bool) "removed" true (B.remove t (key i));
      B.check_invariants t)
    (List.init 100 (fun i -> if i mod 2 = 0 then i / 2 + 1 else 100 - (i / 2)));
  Alcotest.(check int) "empty again" 0 (B.length t);
  Alcotest.(check bool) "remove missing" false (B.remove t "nope")

let test_successor () =
  let t = B.of_list [ ("b", 1); ("d", 2); ("f", 3) ] in
  Alcotest.(check (option (pair string int))) "geq a" (Some ("b", 1)) (B.successor t "a");
  Alcotest.(check (option (pair string int))) "geq b" (Some ("b", 1)) (B.successor t "b");
  Alcotest.(check (option (pair string int))) "geq c" (Some ("d", 2)) (B.successor t "c");
  Alcotest.(check (option (pair string int))) "geq g" None (B.successor t "g")

let test_range () =
  let t = B.of_list (List.init 20 (fun i -> (key i, i))) in
  Alcotest.(check (list (pair string int)))
    "bounded range"
    [ (key 5, 5); (key 6, 6); (key 7, 7) ]
    (B.range t ~lo:(key 5) ~hi:(Some (key 8)));
  Alcotest.(check int) "unbounded tail" 5
    (List.length (B.range t ~lo:(key 15) ~hi:None));
  Alcotest.(check (list (pair string int))) "empty range" []
    (B.range t ~lo:"zzz" ~hi:None)

let test_copy_isolated () =
  let t = B.of_list [ ("a", 1) ] in
  let c = B.copy t in
  B.insert t "a" 9;
  B.insert t "b" 2;
  Alcotest.(check (option int)) "copy unchanged" (Some 1) (B.find c "a");
  Alcotest.(check bool) "copy lacks b" false (B.mem c "b")

(* Model-based property: a random command sequence applied to the tree
   and to a sorted association list agree, with invariants preserved
   throughout. *)
let gen_commands =
  let open QCheck2.Gen in
  let k = map key (0 -- 60) in
  list_size (0 -- 400)
    (oneof
       [
         map2 (fun k v -> `Insert (k, v)) k (0 -- 1000);
         map (fun k -> `Remove k) k;
         map (fun k -> `Find k) k;
         map (fun k -> `Successor k) k;
         map2 (fun lo hi -> `Range (lo, hi)) k (opt k);
       ])

let prop_model =
  Support.qtest "B+ tree agrees with the list model" ~count:200 gen_commands
    (fun commands ->
      let t = B.create () in
      let model = ref [] in
      List.for_all
        (fun cmd ->
          let ok =
            match cmd with
            | `Insert (k, v) ->
              B.insert t k v;
              model := (k, v) :: List.remove_assoc k !model;
              true
            | `Remove k ->
              let was = List.mem_assoc k !model in
              model := List.remove_assoc k !model;
              B.remove t k = was
            | `Find k -> B.find t k = List.assoc_opt k !model
            | `Successor k ->
              let expected =
                List.filter (fun (k', _) -> k' >= k) !model
                |> List.sort compare
                |> function
                | [] -> None
                | x :: _ -> Some x
              in
              B.successor t k = expected
            | `Range (lo, hi) ->
              let expected =
                List.filter
                  (fun (k, _) ->
                    k >= lo && match hi with Some hi -> k < hi | None -> true)
                  !model
                |> List.sort compare
              in
              B.range t ~lo ~hi = expected
          in
          B.check_invariants t;
          ok && B.to_list t = List.sort compare !model
          && B.length t = List.length !model)
        commands)

(* Height stays logarithmic: 1000 keys fit in few levels. *)
let test_height_bound () =
  let t = B.of_list (List.init 1000 (fun i -> (key i, i))) in
  Alcotest.(check bool) "height <= 6" true (B.height t <= 6);
  B.check_invariants t

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert and find" `Quick test_insert_find;
    Alcotest.test_case "overwrite" `Quick test_overwrite;
    Alcotest.test_case "splits grow height" `Quick test_splits_grow_height;
    Alcotest.test_case "remove with borrows and merges" `Quick
      test_remove_and_merge;
    Alcotest.test_case "successor" `Quick test_successor;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
    Alcotest.test_case "height bound" `Quick test_height_bound;
    prop_model;
  ]
