(* Sanity tests for the scenario catalog: serial executions never exhibit
   any anomaly (each scenario's programs are individually correct), every
   scenario is exhibitable at the weakest applicable level, and no
   scenario is exhibitable at SERIALIZABLE. *)

module L = Isolation.Level
module Executor = Core.Executor
module Scenario = Workload.Scenario
module Catalog = Workload.Catalog

let serial_clean (s : Scenario.t) () =
  (* Run serially in both orders; a correct scenario never reports its
     anomaly from a serial execution at any level. *)
  List.iter
    (fun level ->
      let cfg =
        Executor.config ~initial:s.initial ~predicates:s.predicates
          (List.map (fun _ -> level) s.programs)
      in
      let r = Executor.run_serial cfg s.programs in
      Alcotest.(check bool)
        (Fmt.str "%s clean in serial order at %s" s.id (L.name level))
        false (s.exhibits r);
      (* reversed order *)
      let rev_programs = List.rev s.programs in
      let r' = Executor.run_serial cfg rev_programs in
      (* The verdict references transaction ids, so rebuild the scenario
         with reversed roles only when symmetric; instead simply check
         that a serial run of the reversed program list under a fresh
         config also stays clean for id-agnostic verdicts. *)
      ignore r')
    [ L.Degree_0; L.Read_uncommitted; L.Serializable; L.Snapshot ]

let exhibitable_at_weakest (s : Scenario.t) () =
  (* Degree 0 (locking) — or Snapshot for the write-skew scenarios that
     target multiversion behavior — must exhibit every anomaly. *)
  let weakest =
    match s.phenomenon with
    | Phenomena.Phenomenon.A5B -> L.Snapshot
    | _ -> L.Degree_0
  in
  let outcome = Sim.Classify.run_scenario weakest s in
  Alcotest.(check bool)
    (Fmt.str "%s exhibitable at %s" s.id (L.name weakest))
    true outcome.Sim.Classify.possible

let never_at_serializable (s : Scenario.t) () =
  List.iter
    (fun level ->
      let outcome = Sim.Classify.run_scenario level s in
      Alcotest.(check bool)
        (Fmt.str "%s impossible at %s" s.id (L.name level))
        false outcome.Sim.Classify.possible)
    [ L.Serializable; L.Serializable_snapshot ]

let witness_schedules_replayable (s : Scenario.t) () =
  (* If a witness schedule is reported, replaying it re-exhibits the
     anomaly (determinism end-to-end). *)
  let outcome = Sim.Classify.run_scenario L.Read_uncommitted s in
  match outcome.Sim.Classify.witness with
  | None -> ()
  | Some schedule ->
    let cfg =
      Executor.config ~initial:s.initial ~predicates:s.predicates
        (List.map (fun _ -> L.Read_uncommitted) s.programs)
    in
    let r = Executor.run cfg s.programs ~schedule in
    Alcotest.(check bool)
      (Fmt.str "%s witness replays" s.id)
      true (s.exhibits r)

let per_scenario mk =
  List.map
    (fun (s : Scenario.t) ->
      Alcotest.test_case s.id `Quick (mk s))
    Catalog.all

let test_catalog_covers_all_phenomena () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Phenomena.Phenomenon.name p ^ " has scenarios")
        true
        (Catalog.for_phenomenon p <> []))
    Phenomena.Phenomenon.all

let suite =
  List.map
    (fun (s : Scenario.t) ->
      Alcotest.test_case (s.id ^ " serial-clean") `Quick (serial_clean s))
    Catalog.all
  @ per_scenario exhibitable_at_weakest
  @ per_scenario never_at_serializable
  @ per_scenario witness_schedules_replayable
  @ [
      Alcotest.test_case "catalog covers all phenomena" `Quick
        test_catalog_covers_all_phenomena;
    ]
