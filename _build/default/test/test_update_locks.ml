(* Tests for U-mode (update) locks: the classical cure for upgrade
   deadlocks on for-update cursors. With U locks, two for-update fetches
   of the same row serialize by blocking; without them, the S-then-X
   upgrade produces a deadlock and a victim. *)

module P = Core.Program
module L = Isolation.Level
module LT = Locking.Lock_table
module Executor = Core.Executor
module Predicate = Storage.Predicate

let granted = function LT.Granted -> true | LT.Conflict _ -> false

let test_u_lock_compatibility () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (LT.Update_item "x")));
  Alcotest.(check bool) "U compatible with S" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (LT.Read_item "x")));
  Alcotest.(check bool) "U excludes U" false
    (granted (LT.acquire t ~owner:3 ~tag:LT.Long (LT.Update_item "x")));
  Alcotest.(check bool) "U excludes X" false
    (granted
       (LT.acquire t ~owner:3 ~tag:LT.Long
          (LT.Write_item { k = "x"; before = None; after = None })))

let test_u_upgrade_waits_for_readers () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (LT.Update_item "x")));
  assert (granted (LT.acquire t ~owner:2 ~tag:LT.Long (LT.Read_item "x")));
  (* The U holder's upgrade to X must wait for the reader... *)
  Alcotest.(check bool) "upgrade blocked by reader" false
    (granted
       (LT.acquire t ~owner:1 ~tag:LT.Long
          (LT.Write_item { k = "x"; before = None; after = None })));
  LT.release_all t ~owner:2;
  (* ...and proceeds once the reader is gone. *)
  Alcotest.(check bool) "upgrade proceeds" true
    (granted
       (LT.acquire t ~owner:1 ~tag:LT.Long
          (LT.Write_item { k = "x"; before = None; after = None })))

let cursor_add amount =
  P.make
    [
      P.Open_cursor { cursor = "c"; pred = Predicate.item "x"; for_update = true };
      P.Fetch "c";
      P.Cursor_write ("c", P.read_plus "x" amount);
      P.Commit;
    ]

let run ?(update_locks = false) level schedule =
  let cfg =
    Executor.config ~initial:[ ("x", 100) ] ~update_locks [ level; level ]
  in
  Executor.run cfg [ cursor_add 30; cursor_add 20 ] ~schedule

(* The contended schedule: both transactions fetch before either writes. *)
let contended = [ 1; 1; 2; 2; 1; 2; 1; 2 ]

let test_without_u_locks_deadlocks () =
  let r = run ~update_locks:false L.Repeatable_read contended in
  Alcotest.(check int) "upgrade deadlock" 1 r.Executor.deadlock_aborts;
  Alcotest.(check bool) "a victim was aborted" true
    (List.exists (fun (_, s) -> s <> Executor.Committed) r.Executor.statuses)

let test_with_u_locks_blocks_instead () =
  let r = run ~update_locks:true L.Repeatable_read contended in
  Alcotest.(check int) "no deadlock" 0 r.Executor.deadlock_aborts;
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses);
  Alcotest.(check (option int)) "no lost update either" (Some 150)
    (List.assoc_opt "x" r.Executor.final)

(* Exhaustively: with U locks, no interleaving of the contended pair ever
   deadlocks or loses an update at REPEATABLE READ. *)
let test_u_locks_exhaustive () =
  let programs = [ cursor_add 30; cursor_add 20 ] in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let bad, total =
    Sim.Interleave.count_merges sizes (fun schedule ->
        let r = run ~update_locks:true L.Repeatable_read schedule in
        r.Executor.deadlock_aborts > 0
        || List.assoc_opt "x" r.Executor.final <> Some 150)
  in
  Alcotest.(check int) "no bad interleaving" 0 bad;
  Alcotest.(check bool) "explored all" true (total = Sim.Interleave.count sizes)

(* U locks still allow plain readers through while the row is marked. *)
let test_u_lock_readers_pass () =
  let reader = P.make [ P.Read "x"; P.Commit ] in
  let cfg =
    Executor.config ~initial:[ ("x", 100) ] ~update_locks:true
      [ L.Repeatable_read; L.Read_committed ]
  in
  let r =
    Executor.run cfg [ cursor_add 30; reader ] ~schedule:[ 1; 1; 2; 2; 1; 1 ]
  in
  (* The reader's S lock is granted under T1's U lock. *)
  Alcotest.(check (option int)) "reader saw the pre-update value" (Some 100)
    (Workload.Scenario.last_read r 2 "x");
  Alcotest.(check int) "reader never blocked" 0 r.Executor.blocked_attempts

let suite =
  [
    Alcotest.test_case "U compatibility matrix" `Quick test_u_lock_compatibility;
    Alcotest.test_case "U upgrade waits for readers" `Quick
      test_u_upgrade_waits_for_readers;
    Alcotest.test_case "without U locks: upgrade deadlock" `Quick
      test_without_u_locks_deadlocks;
    Alcotest.test_case "with U locks: blocking, both commit" `Quick
      test_with_u_locks_blocks_instead;
    Alcotest.test_case "U locks exhaustively deadlock-free" `Quick
      test_u_locks_exhaustive;
    Alcotest.test_case "readers pass under U" `Quick test_u_lock_readers_pass;
  ]
