(* Tests for lock-discipline analysis: the SERIALIZABLE protocol behaves
   two-phase on real executions (the hypothesis of the fundamental
   serialization theorem), while protocols with short read locks do not. *)

module P = Core.Program
module L = Isolation.Level
module LT = Locking.Lock_table
module D = Locking.Discipline

let run_engine level ops_list =
  let engine =
    Core.Engine.create
      ~initial:[ ("x", 0); ("y", 0); ("z", 0) ]
      ~predicates:[] ~family:`Locking ()
  in
  List.iteri
    (fun i ops ->
      let tid = i + 1 in
      Core.Engine.begin_txn engine tid ~level;
      List.iter (fun op -> ignore (Core.Engine.step engine tid op)) ops)
    ops_list;
  Option.get (Core.Engine.lock_events engine)

let reader_writer_ops =
  [ [ P.Read "x"; P.Read "y"; P.Write ("z", P.const 1); P.Commit ] ]

let test_serializable_is_two_phase () =
  let log = run_engine L.Serializable reader_writer_ops in
  Alcotest.(check bool) "two-phase" true (D.two_phase log 1);
  Alcotest.(check bool) "whole log two-phase" true (D.all_two_phase log)

let test_read_committed_is_not_two_phase () =
  (* Short read locks: acquire S(x), release it, then acquire S(y) — a new
     lock after a release. *)
  let log = run_engine L.Read_committed reader_writer_ops in
  Alcotest.(check bool) "not two-phase" false (D.two_phase log 1)

let test_repeatable_read_items_two_phase () =
  (* Long item read locks keep RR two-phase on pure item accesses... *)
  let log = run_engine L.Repeatable_read reader_writer_ops in
  Alcotest.(check bool) "two-phase on items" true (D.two_phase log 1);
  (* ...but a predicate scan's short lock breaks the property. *)
  let with_scan =
    [ [ P.Scan (Storage.Predicate.key_prefix ~name:"All" "");
        P.Read "x"; P.Commit ] ]
  in
  let log = run_engine L.Repeatable_read with_scan in
  Alcotest.(check bool) "scan then read is not two-phase" false
    (D.two_phase log 1)

let test_lock_point () =
  let log = run_engine L.Serializable reader_writer_ops in
  match D.lock_point log 1 with
  | Some i ->
    (* Three grants (S x, S y, X z) at indices 0,1,2; then the terminal
       release. *)
    Alcotest.(check int) "lock point at the last grant" 2 i
  | None -> Alcotest.fail "expected a lock point"

let test_summary_balances () =
  let log = run_engine L.Serializable reader_writer_ops in
  let acquired, released = D.summary log 1 in
  Alcotest.(check int) "three grants" 3 acquired;
  Alcotest.(check int) "all released at commit" 3 released

let test_degree0_releases_everything_early () =
  let log =
    run_engine L.Degree_0
      [ [ P.Write ("x", P.const 1); P.Write ("y", P.const 1); P.Commit ] ]
  in
  (* Short write locks: grant, release, grant, release — not two-phase. *)
  Alcotest.(check bool) "Degree 0 is not two-phase" false (D.two_phase log 1)

(* Property: random workloads at SERIALIZABLE always produce a two-phase
   log (and hence, by the fundamental theorem tested elsewhere, a
   serializable history). *)
let prop_serializable_two_phase =
  Support.qtest "SERIALIZABLE runs are two-phase" ~count:200
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let programs =
        Workload.Generators.random_programs ~rand ~keys:[ "x"; "y"; "z" ]
          ~txns:3 ~ops:4 ()
      in
      let schedule = Workload.Generators.random_schedule ~rand programs in
      ignore schedule;
      (* The executor does not expose its engine, so drive one directly. *)
      let engine =
        Core.Engine.create
          ~initial:[ ("x", 0); ("y", 0); ("z", 0) ]
          ~predicates:[] ~family:`Locking ()
      in
      let pcs = Array.make 3 0 in
      let opses =
        Array.of_list
          (List.map
             (fun p ->
               Array.of_list
                 (p.P.ops @ if P.terminated p then [] else [ P.Commit ]))
             programs)
      in
      Array.iteri
        (fun i _ -> Core.Engine.begin_txn engine (i + 1) ~level:L.Serializable)
        pcs;
      (* Drive round-robin ignoring blocking, with a simple deadlock
         breaker: if nobody advances in a pass, abort the highest active. *)
      let rec drive guard =
        let active =
          List.filter
            (fun tid -> Core.Engine.status engine tid = Core.Engine.Active)
            [ 1; 2; 3 ]
        in
        if active <> [] && guard < 10_000 then begin
          let progressed =
            List.fold_left
              (fun acc tid ->
                if pcs.(tid - 1) < Array.length opses.(tid - 1) then
                  match Core.Engine.step engine tid opses.(tid - 1).(pcs.(tid - 1)) with
                  | Core.Engine.Progress | Core.Engine.Finished ->
                    pcs.(tid - 1) <- pcs.(tid - 1) + 1;
                    true
                  | Core.Engine.Blocked _ -> acc
                else acc)
              false active
          in
          if not progressed then
            Core.Engine.abort_txn engine (List.fold_left max 0 active);
          drive (guard + 1)
        end
      in
      drive 0;
      match Core.Engine.lock_events engine with
      | Some log -> D.all_two_phase log
      | None -> false)

let suite =
  [
    Alcotest.test_case "SERIALIZABLE is two-phase" `Quick
      test_serializable_is_two_phase;
    Alcotest.test_case "READ COMMITTED is not" `Quick
      test_read_committed_is_not_two_phase;
    Alcotest.test_case "REPEATABLE READ: items yes, predicates no" `Quick
      test_repeatable_read_items_two_phase;
    Alcotest.test_case "lock point" `Quick test_lock_point;
    Alcotest.test_case "summary balances" `Quick test_summary_balances;
    Alcotest.test_case "Degree 0 is not two-phase" `Quick
      test_degree0_releases_everything_early;
    prop_serializable_two_phase;
  ]
