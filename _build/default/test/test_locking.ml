(* Tests for the lock table (conflict rules, upgrades, durations,
   phantom-aware predicate locks) and the Table 2 protocol data. *)

module LT = Locking.Lock_table
module Protocol = Locking.Protocol
module Predicate = Storage.Predicate
module L = Isolation.Level

let emp = Predicate.key_prefix ~name:"Emp" "emp_"

let read k = LT.Read_item k
let write ?before ?after k = LT.Write_item { k; before; after }

let granted = function LT.Granted -> true | LT.Conflict _ -> false

let test_share_compatible () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (read "x")));
  Alcotest.(check bool) "S-S compatible" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (read "x")))

let test_write_conflicts () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write "x")));
  (match LT.acquire t ~owner:2 ~tag:LT.Long (read "x") with
  | LT.Conflict [ 1 ] -> ()
  | _ -> Alcotest.fail "X blocks S with holder T1");
  match LT.acquire t ~owner:2 ~tag:LT.Long (write "x") with
  | LT.Conflict [ 1 ] -> ()
  | _ -> Alcotest.fail "X blocks X with holder T1"

let test_different_items_independent () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write "x")));
  Alcotest.(check bool) "disjoint items" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write "y")))

let test_reentrant_and_upgrade () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (read "x")));
  Alcotest.(check bool) "re-entrant read" true
    (granted (LT.acquire t ~owner:1 ~tag:LT.Long (read "x")));
  Alcotest.(check bool) "upgrade with no other holder" true
    (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write "x")));
  (* Once upgraded, another reader is blocked. *)
  Alcotest.(check bool) "upgraded lock blocks" false
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (read "x")))

let test_upgrade_blocked_by_other_reader () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (read "x")));
  assert (granted (LT.acquire t ~owner:2 ~tag:LT.Long (read "x")));
  match LT.acquire t ~owner:1 ~tag:LT.Long (write "x") with
  | LT.Conflict [ 2 ] -> ()
  | _ -> Alcotest.fail "upgrade must wait for the other reader"

let test_predicate_phantom_conflicts () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (LT.Read_pred emp)));
  (* An insert of a matching row is a phantom: it conflicts. *)
  Alcotest.(check bool) "phantom insert blocked" false
    (granted
       (LT.acquire t ~owner:2 ~tag:LT.Long (write ~after:1 "emp_new")));
  (* A write that never matches the predicate does not. *)
  Alcotest.(check bool) "unrelated write allowed" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write ~after:1 "task_q")));
  (* A delete of a matching row is also a phantom. *)
  Alcotest.(check bool) "matching delete blocked" false
    (granted (LT.acquire t ~owner:3 ~tag:LT.Long (write ~before:1 "emp_old")))

let test_predicate_read_vs_item_read () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (LT.Read_pred emp)));
  Alcotest.(check bool) "predicate S and item S compatible" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (read "emp_a")))

(* Regression: a transaction's second write of the same key carries new
   before/after images; predicate-lock conflict checks must see them.
   (Found by the 2PL-serializability property: a delete of an absent row
   followed by an insert of the same key left only the no-op delete's
   images in the lock table, so a predicate scan slid past the insert.) *)
let test_second_write_updates_images () =
  let t = LT.create () in
  (* T1 "deletes" an absent row (affects no predicate)... *)
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write "emp_q")));
  (* ...then inserts it, which DOES affect the Emp predicate. *)
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write ~after:1 "emp_q")));
  Alcotest.(check bool) "scan now conflicts with the insert" false
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (LT.Read_pred emp)))

let test_release_by_tag () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Short (read "x")));
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (read "y")));
  LT.release t ~owner:1 ~tag:LT.Short;
  Alcotest.(check bool) "short released" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write "x")));
  Alcotest.(check bool) "long still held" false
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write "y")))

let test_cursor_tags_are_per_cursor () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:(LT.Cursor "ca") (read "x")));
  assert (granted (LT.acquire t ~owner:1 ~tag:(LT.Cursor "cb") (read "y")));
  LT.release t ~owner:1 ~tag:(LT.Cursor "ca");
  Alcotest.(check bool) "ca's lock released" true
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write "x")));
  Alcotest.(check bool) "cb's lock still held" false
    (granted (LT.acquire t ~owner:2 ~tag:LT.Long (write "y")))

let test_release_all () =
  let t = LT.create () in
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Long (write "x")));
  assert (granted (LT.acquire t ~owner:1 ~tag:LT.Short (read "y")));
  LT.release_all t ~owner:1;
  Alcotest.(check bool) "empty after release_all" true (LT.is_empty t)

let test_conflict_symmetry () =
  let reqs =
    [ read "x"; read "y"; write "x"; write ~after:1 "emp_a";
      LT.Read_pred emp ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "symmetric" (LT.requests_conflict a b)
            (LT.requests_conflict b a))
        reqs)
    reqs

(* Table 2's rows. *)
let test_protocol_rows () =
  let check level ~item_read ~pred_read ~item_write ~cursor_hold =
    let p = Protocol.for_level_exn level in
    Alcotest.(check bool)
      (L.name level ^ " row matches Table 2")
      true
      (p.Protocol.item_read = item_read
      && p.Protocol.pred_read = pred_read
      && p.Protocol.item_write = item_write
      && p.Protocol.cursor_hold = cursor_hold)
  in
  check L.Degree_0 ~item_read:Protocol.No_lock ~pred_read:Protocol.No_lock
    ~item_write:Protocol.Short ~cursor_hold:false;
  check L.Read_uncommitted ~item_read:Protocol.No_lock
    ~pred_read:Protocol.No_lock ~item_write:Protocol.Long ~cursor_hold:false;
  check L.Read_committed ~item_read:Protocol.Short ~pred_read:Protocol.Short
    ~item_write:Protocol.Long ~cursor_hold:false;
  check L.Cursor_stability ~item_read:Protocol.Short
    ~pred_read:Protocol.Short ~item_write:Protocol.Long ~cursor_hold:true;
  check L.Repeatable_read ~item_read:Protocol.Long ~pred_read:Protocol.Short
    ~item_write:Protocol.Long ~cursor_hold:false;
  check L.Serializable ~item_read:Protocol.Long ~pred_read:Protocol.Long
    ~item_write:Protocol.Long ~cursor_hold:false

let test_protocol_multiversion_excluded () =
  Alcotest.(check bool) "SI has no lock protocol" true
    (Protocol.for_level L.Snapshot = None);
  Alcotest.(check bool) "Oracle RC has no lock protocol" true
    (Protocol.for_level L.Oracle_read_consistency = None)

let test_two_phase_well_formed () =
  List.iter
    (fun level ->
      let p = Protocol.for_level_exn level in
      Alcotest.(check bool)
        (L.name level ^ " 2PL-well-formed iff SERIALIZABLE")
        (level = L.Serializable)
        (Protocol.is_two_phase_well_formed p))
    Protocol.locking_levels

let suite =
  [
    Alcotest.test_case "share locks are compatible" `Quick test_share_compatible;
    Alcotest.test_case "write locks conflict" `Quick test_write_conflicts;
    Alcotest.test_case "different items independent" `Quick
      test_different_items_independent;
    Alcotest.test_case "re-entrancy and upgrade" `Quick test_reentrant_and_upgrade;
    Alcotest.test_case "upgrade blocked by other reader" `Quick
      test_upgrade_blocked_by_other_reader;
    Alcotest.test_case "predicate locks cover phantoms" `Quick
      test_predicate_phantom_conflicts;
    Alcotest.test_case "predicate S vs item S" `Quick
      test_predicate_read_vs_item_read;
    Alcotest.test_case "second write refreshes lock images" `Quick
      test_second_write_updates_images;
    Alcotest.test_case "release by duration tag" `Quick test_release_by_tag;
    Alcotest.test_case "cursor tags are per cursor" `Quick
      test_cursor_tags_are_per_cursor;
    Alcotest.test_case "release all" `Quick test_release_all;
    Alcotest.test_case "conflict symmetry" `Quick test_conflict_symmetry;
    Alcotest.test_case "Table 2 protocol rows" `Quick test_protocol_rows;
    Alcotest.test_case "multiversion levels have no protocol" `Quick
      test_protocol_multiversion_excluded;
    Alcotest.test_case "2PL well-formedness" `Quick test_two_phase_well_formed;
  ]
