test/test_db.ml: Alcotest Core History Isolation List Storage String
