test/test_executor.ml: Alcotest Core History Isolation List Sim Support
