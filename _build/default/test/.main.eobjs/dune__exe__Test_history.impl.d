test/test_history.ml: Alcotest History Result Support
