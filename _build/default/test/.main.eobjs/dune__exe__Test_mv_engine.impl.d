test/test_mv_engine.ml: Alcotest Core Isolation List Option Phenomena Storage String Support Workload
