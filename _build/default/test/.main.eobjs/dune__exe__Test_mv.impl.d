test/test_mv.ml: Alcotest Core History Isolation List Support
