test/test_lock_engine.ml: Alcotest Core History Isolation List Phenomena Random Storage Support Workload
