test/support.ml: Alcotest Core History Isolation List Phenomena QCheck2 QCheck_alcotest String
