test/main.mli:
