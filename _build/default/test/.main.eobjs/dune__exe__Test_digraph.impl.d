test/test_digraph.ml: Alcotest Fun Hashtbl History List Printf QCheck2 Support
