test/test_recoverability.ml: Alcotest Core History Isolation List Phenomena QCheck2 Random Support Workload
