test/test_storage.ml: Alcotest Fun List QCheck2 Storage Support
