test/test_btree.ml: Alcotest List Printf QCheck2 Storage Support
