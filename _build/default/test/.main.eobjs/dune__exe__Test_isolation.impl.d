test/test_isolation.ml: Alcotest Fmt Isolation List Phenomena Support
