test/test_to_engine.ml: Alcotest Core History Isolation List Phenomena QCheck2 Random Storage Support Workload
