test/test_properties.ml: Alcotest Array Char Core History Isolation List Locking Phenomena Printf QCheck2 Random Storage Support Workload
