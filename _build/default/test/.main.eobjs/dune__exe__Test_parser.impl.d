test/test_parser.ml: Alcotest History List QCheck2 Support Workload
