test/test_script.ml: Alcotest Core Isolation List Phenomena Storage Workload
