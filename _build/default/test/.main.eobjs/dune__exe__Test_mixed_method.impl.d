test/test_mixed_method.ml: Alcotest Core History Isolation List Sim Storage Workload
