test/test_update_locks.ml: Alcotest Core Isolation List Locking Sim Storage Workload
