test/test_conflict.ml: Alcotest History List Phenomena Support
