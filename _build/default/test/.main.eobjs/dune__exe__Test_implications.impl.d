test/test_implications.ml: History List Phenomena QCheck2 Support
