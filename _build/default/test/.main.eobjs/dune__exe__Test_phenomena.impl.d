test/test_phenomena.ml: Alcotest Fmt List Phenomena Support Workload
