test/test_sim.ml: Alcotest Core Fmt Isolation List QCheck2 Sim String Support
