test/test_classify.ml: Alcotest Fmt Isolation List Phenomena Sim Support
