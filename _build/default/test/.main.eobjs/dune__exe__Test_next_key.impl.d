test/test_next_key.ml: Alcotest Core Fmt Isolation List Phenomena Sim Storage Support Workload
