test/test_discipline.ml: Alcotest Array Core Isolation List Locking Option QCheck2 Random Storage Support Workload
