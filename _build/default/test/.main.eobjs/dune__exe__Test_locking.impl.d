test/test_locking.ml: Alcotest Isolation List Locking Storage
