test/test_edge_cases.ml: Alcotest Core History Isolation List Storage Support Workload
