test/test_recovery.ml: Alcotest Core Isolation List QCheck2 Storage Support
