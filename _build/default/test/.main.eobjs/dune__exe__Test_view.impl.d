test/test_view.ml: Alcotest History List QCheck2 Support
