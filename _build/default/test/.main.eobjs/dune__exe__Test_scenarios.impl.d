test/test_scenarios.ml: Alcotest Core Fmt Isolation List Phenomena Sim Workload
