(* Tests for the mini workload script syntax. *)

module S = Workload.Script
module P = Core.Program

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected script error: %a" S.pp_error e

let ops text =
  match ok (S.parse text) with
  | [ p ] -> p.P.ops
  | ps -> Alcotest.failf "expected one program, got %d" (List.length ps)

let op_shape = function
  | P.Read k -> "r " ^ k
  | P.Write (k, _) -> "w " ^ k
  | P.Insert (k, _) -> "ins " ^ k
  | P.Delete k -> "del " ^ k
  | P.Scan p -> "scan " ^ Storage.Predicate.name p
  | P.Open_cursor { cursor; for_update; _ } ->
    (if for_update then "openu " else "open ") ^ cursor
  | P.Fetch c -> "fetch " ^ c
  | P.Cursor_write (c, _) -> "wc " ^ c
  | P.Close_cursor c -> "close " ^ c
  | P.Commit -> "commit"
  | P.Abort -> "abort"

let shapes text = List.map op_shape (ops text)

let test_reads_writes () =
  Alcotest.(check (list string))
    "plain ops"
    [ "r x"; "w x"; "commit" ]
    (shapes "r x; w x = 5; commit")

let test_increment_desugars () =
  Alcotest.(check (list string))
    "+= reads first"
    [ "r y"; "w y" ]
    (shapes "w y += 40");
  Alcotest.(check (list string))
    "-= reads first"
    [ "r y"; "w y" ]
    (shapes "w y -= 40")

let test_insert_delete_scan () =
  Alcotest.(check (list string))
    "ins/del/scan"
    [ "ins k"; "del k"; "scan emp_*"; "scan All" ]
    (shapes "ins k = 1; del k; scan emp_*; scan *")

let test_cursors () =
  Alcotest.(check (list string))
    "cursor ops"
    [ "open c"; "openu d"; "fetch c"; "wc c"; "close c" ]
    (shapes "open c emp_*; openu d x; fetch c; wc c = 9; close c")

let test_multiple_programs () =
  let ps = ok (S.parse "r x | w x = 1; commit | abort") in
  Alcotest.(check int) "three programs" 3 (List.length ps);
  Alcotest.(check (list string)) "names" [ "T1"; "T2"; "T3" ]
    (List.map (fun p -> p.P.name) ps)

let test_whitespace_tolerant () =
  Alcotest.(check (list string))
    "extra whitespace"
    [ "r x"; "commit" ]
    (shapes "  r   x ;;  commit ; ")

let test_errors () =
  List.iter
    (fun text ->
      match S.parse text with
      | Ok _ -> Alcotest.failf "expected error for %S" text
      | Error _ -> ())
    [ "frobnicate x"; "w x = notanint"; "r"; "wc c 9" ]

let test_predicates_of () =
  let ps = ok (S.parse "scan emp_*; r x | scan emp_*; scan task_*") in
  Alcotest.(check (list string))
    "distinct scan predicates"
    [ "emp_*"; "task_*" ]
    (List.map Storage.Predicate.name (S.predicates_of ps))

let test_parse_initial () =
  Alcotest.(check (list (pair string int)))
    "rows"
    [ ("x", 50); ("y", 50) ]
    (ok (S.parse_initial "x=50, y=50"));
  Alcotest.(check (list (pair string int))) "empty" [] (ok (S.parse_initial ""));
  match S.parse_initial "x=oops" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

(* End to end: the scripted H1 shape reproduces the dirty-read anomaly. *)
let test_end_to_end () =
  let programs = ok (S.parse "r x; w x -= 40; r y; w y += 40 | r x; r y") in
  let cfg =
    Core.Executor.config
      ~initial:(ok (S.parse_initial "x=50, y=50"))
      [ Isolation.Level.Read_uncommitted; Isolation.Level.Read_uncommitted ]
  in
  (* Schedule T2's reads between T1's write of x and write of y. Each
     transaction has 7 and 3 attempts respectively ('+='/'-=' desugar to
     read-then-write, plus auto-commit). *)
  let r =
    Core.Executor.run cfg programs ~schedule:[ 1; 1; 1; 2; 2; 2; 1; 1; 1; 1 ]
  in
  Alcotest.(check bool) "dirty read observed" true
    (Phenomena.Detect.occurs Phenomena.Phenomenon.P1 r.Core.Executor.history)

let suite =
  [
    Alcotest.test_case "reads and writes" `Quick test_reads_writes;
    Alcotest.test_case "increments desugar" `Quick test_increment_desugars;
    Alcotest.test_case "insert, delete, scan" `Quick test_insert_delete_scan;
    Alcotest.test_case "cursors" `Quick test_cursors;
    Alcotest.test_case "multiple programs" `Quick test_multiple_programs;
    Alcotest.test_case "whitespace tolerant" `Quick test_whitespace_tolerant;
    Alcotest.test_case "errors rejected" `Quick test_errors;
    Alcotest.test_case "predicates_of" `Quick test_predicates_of;
    Alcotest.test_case "parse_initial" `Quick test_parse_initial;
    Alcotest.test_case "end to end" `Quick test_end_to_end;
  ]
