(* Tests for the strict timestamp-ordering scheduler: lock-free
   serializability with Too_late aborts instead of blocking, strict reads
   behind uncommitted writers, no deadlocks ever, and phantom safety via
   the membership guard. *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor
module Predicate = Storage.Predicate

let run ?(initial = [ ("x", 0); ("y", 0) ]) ?(predicates = []) programs schedule =
  let cfg =
    Executor.config ~initial ~predicates
      (List.map (fun _ -> L.Timestamp_ordering) programs)
  in
  Executor.run cfg programs ~schedule

let test_late_write_aborts () =
  (* T1 (older) writes x after T2 (younger) read it: T1 is too late. *)
  let t1 = P.make [ P.Read "y"; P.Write ("x", P.const 1); P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Commit ] in
  let r = run [ t1; t2 ] [ 1; 2; 2; 1; 1 ] in
  Alcotest.(check Support.exec_status) "T1 aborted too-late"
    (Executor.Aborted Core.Engine.Too_late)
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check Support.exec_status) "T2 committed" Executor.Committed
    (List.assoc 2 r.Executor.statuses)

let test_timestamp_order_respected () =
  (* Accesses in timestamp order sail through without blocking. *)
  let t1 = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" 1); P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" 1); P.Commit ] in
  let r = run [ t1; t2 ] [ 1; 1; 1; 2; 2; 2 ] in
  Alcotest.(check bool) "both commit" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses);
  Alcotest.(check (option int)) "both increments applied" (Some 2)
    (List.assoc_opt "x" r.Executor.final)

let test_strict_reads_wait () =
  (* T2 must not read T1's uncommitted write; it waits and then sees the
     committed value. *)
  let t1 = P.make [ P.Write ("x", P.const 7); P.Commit ] in
  let t2 = P.make [ P.Read "x"; P.Commit ] in
  let r = run [ t1; t2 ] [ 1; 2; 2; 1; 1; 2 ] in
  Alcotest.(check bool) "the read waited" true (r.Executor.blocked_attempts > 0);
  Alcotest.(check (option (option int))) "read the committed value"
    (Some (Some 7))
    (Some (Workload.Scenario.last_read r 2 "x"));
  Alcotest.(check bool) "no dirty read in the trace" false
    (Phenomena.Detect.occurs Phenomena.Phenomenon.P1 r.Executor.history)

let test_aborted_write_rolled_back () =
  let t1 = P.make [ P.Write ("x", P.const 9); P.Abort ] in
  let r = run [ t1 ] [ 1; 1 ] in
  Alcotest.(check (option int)) "before-image restored" (Some 0)
    (List.assoc_opt "x" r.Executor.final)

let test_phantom_guard () =
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let scanner = P.make [ P.Scan emp; P.Scan emp; P.Commit ] in
  let inserter = P.make [ P.Insert ("emp_new", P.const 1); P.Commit ] in
  (* Older scanner, younger inserter, insert interleaved between the two
     scans: T/O aborts somebody rather than show a phantom. *)
  let r =
    run ~initial:[ ("emp_a", 1) ] ~predicates:[ emp ] [ scanner; inserter ]
      [ 1; 2; 2; 1; 1 ]
  in
  Alcotest.(check bool) "no phantom" false
    (Workload.Scenario.unrepeatable_scan r 1 "Emp");
  (* ...and the insert (younger, after the scan) is the one that survives
     or aborts too-late depending on order; either way serializable: *)
  Alcotest.(check bool) "serializable" true
    (History.Conflict.is_serializable r.Executor.history)

(* Property: timestamp ordering is serializable and deadlock-free on
   random workloads, and none of the actual anomalies occur. Note the
   deliberate contrast with two-phase locking: T/O does NOT forbid the
   broad phenomena (a younger writer may overwrite what an older active
   reader saw — the P2 pattern — because the reader is doomed to abort or
   to serialize before the writer anyway). Forbidding the broad phenomena
   is the paper's characterization of LOCKING; it is sufficient for
   serializability, not necessary. *)
let prop_to_serializable =
  Support.qtest "T/O histories are serializable and deadlock-free" ~count:300
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let programs =
        Workload.Generators.random_programs ~rand ~keys:[ "x"; "y"; "z" ]
          ~txns:3 ~ops:4 ()
      in
      let schedule = Workload.Generators.random_schedule ~rand programs in
      let r =
        run ~initial:[ ("x", 1); ("y", 2); ("z", 3) ]
          ~predicates:[ Predicate.all ] programs schedule
      in
      let module Ph = Phenomena.Phenomenon in
      r.Executor.deadlock_aborts = 0
      && History.Conflict.is_serializable r.Executor.history
      && List.for_all
           (fun p -> not (Phenomena.Detect.occurs p r.Executor.history))
           [ Ph.A1; Ph.A2; Ph.A3; Ph.P4; Ph.P4C; Ph.A5A; Ph.A5B ])

(* The serialization order is the timestamp order: committed transactions
   topologically sort by their begin order. *)
let prop_to_serializes_in_timestamp_order =
  Support.qtest "T/O serializes in timestamp order" ~count:300
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let programs =
        Workload.Generators.random_programs ~allow_abort:false ~rand
          ~keys:[ "x"; "y" ] ~txns:3 ~ops:3 ()
      in
      let schedule = Workload.Generators.random_schedule ~rand programs in
      let r =
        run ~initial:[ ("x", 1); ("y", 2) ] ~predicates:[ Predicate.all ]
          programs schedule
      in
      (* Begin order = order of first attempt in the schedule (the
         executor begins transactions lazily). Committed transactions
         must admit that order as a serial order. *)
      let begin_order =
        List.fold_left
          (fun acc tid -> if List.mem tid acc then acc else tid :: acc)
          [] schedule
        |> List.rev
      in
      let committed = Executor.committed_txns r in
      let order = List.filter (fun t -> List.mem t committed) begin_order in
      History.Conflict.equivalent r.Executor.history
        (History.Conflict.serial_history r.Executor.history order))

let suite =
  [
    Alcotest.test_case "late write aborts" `Quick test_late_write_aborts;
    Alcotest.test_case "timestamp order respected" `Quick
      test_timestamp_order_respected;
    Alcotest.test_case "strict reads wait" `Quick test_strict_reads_wait;
    Alcotest.test_case "aborts roll back" `Quick test_aborted_write_rolled_back;
    Alcotest.test_case "phantom guard" `Quick test_phantom_guard;
    prop_to_serializable;
    prop_to_serializes_in_timestamp_order;
  ]
