(* Corner-case tests across the engines: absent rows, empty cursors,
   multi-key commits, upgrade deadlocks, three-party deadlocks, repeated
   writes, mixed multiversion levels, and Degree 0's unsound rollback. *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor
module Predicate = Storage.Predicate

let run = Support.run
let run_mixed = Support.run_mixed

let test_absent_rows () =
  let t =
    P.make
      [ P.Read "ghost";            (* absent: observed as None *)
        P.Delete "ghost";          (* deleting an absent row is a no-op *)
        P.Write ("ghost", P.const 5); (* writing creates it *)
        P.Read "ghost"; P.Commit ]
  in
  let r = run L.Serializable [ t ] [ 1; 1; 1; 1; 1 ] in
  Alcotest.(check (list (pair string int))) "created" [ ("ghost", 5) ]
    r.Executor.final;
  match Workload.Scenario.reads_of r 1 "ghost" with
  | [ None; Some 5 ] -> ()
  | _ -> Alcotest.fail "expected absent then 5"

let test_empty_cursor () =
  let nothing = Predicate.key_prefix ~name:"None" "zzz_" in
  let t =
    P.make
      [
        P.Open_cursor { cursor = "c"; pred = nothing; for_update = false };
        P.Fetch "c"; P.Fetch "c"; P.Close_cursor "c"; P.Commit;
      ]
  in
  let r = run ~initial:[ ("a", 1) ] L.Cursor_stability [ t ] [ 1; 1; 1; 1; 1 ] in
  Alcotest.(check Support.exec_status) "commits cleanly" Executor.Committed
    (List.assoc 1 r.Executor.statuses)

let test_cursor_write_without_fetch_raises () =
  let t =
    P.make
      [
        P.Open_cursor { cursor = "c"; pred = Predicate.all; for_update = false };
        P.Cursor_write ("c", P.const 1); P.Commit;
      ]
  in
  Alcotest.(check bool) "invalid cursor write rejected" true
    (try
       ignore (run ~initial:[ ("a", 1) ] L.Serializable [ t ] [ 1; 1; 1 ]);
       false
     with Invalid_argument _ -> true)

let test_fetch_without_open_raises () =
  let t = P.make [ P.Fetch "nope"; P.Commit ] in
  Alcotest.(check bool) "fetch without open rejected" true
    (try
       ignore (run L.Serializable [ t ] [ 1; 1 ]);
       false
     with Invalid_argument _ -> true)

let test_unread_expr_raises () =
  let t = P.make [ P.Write ("x", P.read_plus "never_read" 1); P.Commit ] in
  Alcotest.(check bool) "expression over unread key rejected" true
    (try
       ignore (run ~initial:[ ("x", 0) ] L.Serializable [ t ] [ 1; 1 ]);
       false
     with Invalid_argument _ -> true)

(* Two readers both upgrading to a write on the same item: the classic
   upgrade deadlock. *)
let test_upgrade_deadlock () =
  let u = P.make [ P.Read "x"; P.Write ("x", P.read_plus "x" 1); P.Commit ] in
  let r =
    run ~initial:[ ("x", 0) ] L.Repeatable_read [ u; u ] [ 1; 2; 1; 2; 1; 2 ]
  in
  Alcotest.(check int) "one deadlock" 1 r.Executor.deadlock_aborts;
  Alcotest.(check (option int)) "survivor's increment applied" (Some 1)
    (List.assoc_opt "x" r.Executor.final)

(* A three-party deadlock cycle: T1 -> T2 -> T3 -> T1. *)
let test_three_party_deadlock () =
  let t a b = P.make [ P.Read a; P.Write (b, P.const 1); P.Commit ] in
  let r =
    run
      ~initial:[ ("x", 0); ("y", 0); ("z", 0) ]
      L.Serializable
      [ t "x" "y"; t "y" "z"; t "z" "x" ]
      [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ]
  in
  Alcotest.(check bool) "at least one deadlock" true (r.Executor.deadlock_aborts >= 1);
  Alcotest.(check bool) "someone commits" true
    (List.exists (fun (_, s) -> s = Executor.Committed) r.Executor.statuses);
  Alcotest.(check bool) "resulting history serializable" true
    (History.Conflict.is_serializable r.Executor.history)

(* Writing the same item twice and aborting restores the original value. *)
let test_double_write_undo () =
  let t =
    P.make
      [ P.Write ("x", P.const 1); P.Write ("x", P.const 2); P.Abort ]
  in
  let r = run ~initial:[ ("x", 7) ] L.Serializable [ t ] [ 1; 1; 1 ] in
  Alcotest.(check (option int)) "original restored" (Some 7)
    (List.assoc_opt "x" r.Executor.final)

(* Insert then delete in one transaction leaves nothing, under both
   families. *)
let test_insert_then_delete () =
  let t = P.make [ P.Insert ("k", P.const 1); P.Delete "k"; P.Commit ] in
  List.iter
    (fun level ->
      let r = run level [ t ] [ 1; 1; 1 ] in
      Alcotest.(check (list (pair string int)))
        ("nothing remains at " ^ L.name level)
        [] r.Executor.final)
    [ L.Serializable; L.Snapshot ]

(* A snapshot scan excludes the transaction's own deletions. *)
let test_scan_excludes_own_delete () =
  let all = Predicate.key_prefix ~name:"All" "" in
  let t = P.make [ P.Delete "a"; P.Scan all; P.Commit ] in
  let r = run ~initial:[ ("a", 1); ("b", 2) ] L.Snapshot [ t ] [ 1; 1; 1 ] in
  match Workload.Scenario.scans_of r 1 "All" with
  | [ rows ] ->
    Alcotest.(check (list (pair string int))) "own delete hidden" [ ("b", 2) ] rows
  | _ -> Alcotest.fail "expected one scan"

(* Snapshot Isolation and Oracle Read Consistency mix in one execution. *)
let test_mixed_mv_levels () =
  let rereader = P.make [ P.Read "x"; P.Read "x"; P.Commit ] in
  let writer = P.make [ P.Write ("x", P.const 9); P.Commit ] in
  let r =
    run_mixed ~initial:[ ("x", 1) ]
      [ L.Snapshot; L.Serializable_snapshot; L.Oracle_read_consistency ]
      [ rereader; P.make [ P.Read "y"; P.Commit ]; writer ]
      [ 1; 3; 3; 1; 1; 2; 2 ]
  in
  Alcotest.(check bool) "SI reader repeats its read" false
    (Workload.Scenario.unrepeatable_read r 1 "x");
  Alcotest.(check bool) "all terminate" true
    (List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses)

(* Degree 0's short write locks make rollback unsound: T1's abort restores
   its before-image over T2's committed update — the engine-level twin of
   the recovery demonstration. *)
let test_degree0_unsound_rollback () =
  let t1 = P.make [ P.Write ("x", P.const 1); P.Abort ] in
  let t2 = P.make [ P.Write ("x", P.const 2); P.Commit ] in
  let r = run ~initial:[ ("x", 0) ] L.Degree_0 [ t1; t2 ] [ 1; 2; 2; 1 ] in
  Alcotest.(check Support.exec_status) "T2 committed" Executor.Committed
    (List.assoc 2 r.Executor.statuses);
  Alcotest.(check (option int)) "T2's committed update wiped out" (Some 0)
    (List.assoc_opt "x" r.Executor.final)

(* ...and the same interleaving at READ UNCOMMITTED (long write locks) is
   sound. *)
let test_degree1_sound_rollback () =
  let t1 = P.make [ P.Write ("x", P.const 1); P.Abort ] in
  let t2 = P.make [ P.Write ("x", P.const 2); P.Commit ] in
  let r = run ~initial:[ ("x", 0) ] L.Read_uncommitted [ t1; t2 ] [ 1; 2; 2; 1 ] in
  Alcotest.(check (option int)) "T2's update survives" (Some 2)
    (List.assoc_opt "x" r.Executor.final)

(* Multi-key commits install all versions at one timestamp. *)
let test_multikey_commit_atomic_visibility () =
  let writer =
    P.make
      [ P.Write ("x", P.const 1); P.Write ("y", P.const 1); P.Commit ]
  in
  let reader = P.make [ P.Read "x"; P.Read "y"; P.Commit ] in
  (* The reader starts mid-write but, reading its snapshot, sees neither
     (never one of the two). *)
  let r =
    run ~initial:[ ("x", 0); ("y", 0) ] L.Snapshot [ writer; reader ]
      [ 1; 2; 1; 1; 2; 2 ]
  in
  (match
     ( Workload.Scenario.last_read r 2 "x",
       Workload.Scenario.last_read r 2 "y" )
   with
  | Some x, Some y ->
    Alcotest.(check bool) "all-or-nothing visibility" true
      ((x = 0 && y = 0) || (x = 1 && y = 1))
  | _ -> Alcotest.fail "reads missing");
  (* And a reader starting after the commit sees both. *)
  let r2 =
    run ~initial:[ ("x", 0); ("y", 0) ] L.Snapshot [ writer; reader ]
      [ 1; 1; 1; 1; 2; 2; 2 ]
  in
  Alcotest.(check (option int)) "x visible" (Some 1)
    (Workload.Scenario.last_read r2 2 "x");
  Alcotest.(check (option int)) "y visible" (Some 1)
    (Workload.Scenario.last_read r2 2 "y")

(* The same transaction re-reading through its own cursor after an update
   sees the updated value (locking engine re-reads rows at fetch time). *)
let test_cursor_sees_own_update () =
  let t =
    P.make
      [
        P.Write ("a", P.const 42);
        P.Open_cursor { cursor = "c"; pred = Predicate.item "a"; for_update = false };
        P.Fetch "c";
        P.Commit;
      ]
  in
  let r = run ~initial:[ ("a", 1) ] L.Serializable [ t ] [ 1; 1; 1; 1 ] in
  Alcotest.(check (option int)) "fetch sees own write" (Some 42)
    (Workload.Scenario.last_read r 1 "a")

let suite =
  [
    Alcotest.test_case "absent rows" `Quick test_absent_rows;
    Alcotest.test_case "empty cursor" `Quick test_empty_cursor;
    Alcotest.test_case "cursor write without fetch" `Quick
      test_cursor_write_without_fetch_raises;
    Alcotest.test_case "fetch without open" `Quick test_fetch_without_open_raises;
    Alcotest.test_case "expression over unread key" `Quick test_unread_expr_raises;
    Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
    Alcotest.test_case "three-party deadlock" `Quick test_three_party_deadlock;
    Alcotest.test_case "double write undo" `Quick test_double_write_undo;
    Alcotest.test_case "insert then delete" `Quick test_insert_then_delete;
    Alcotest.test_case "scan excludes own delete" `Quick
      test_scan_excludes_own_delete;
    Alcotest.test_case "mixed multiversion levels" `Quick test_mixed_mv_levels;
    Alcotest.test_case "Degree 0 rollback is unsound" `Quick
      test_degree0_unsound_rollback;
    Alcotest.test_case "Degree 1 rollback is sound" `Quick
      test_degree1_sound_rollback;
    Alcotest.test_case "multi-key commit atomic visibility" `Quick
      test_multikey_commit_atomic_visibility;
    Alcotest.test_case "cursor sees own update" `Quick test_cursor_sees_own_update;
  ]
