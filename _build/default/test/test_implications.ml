(* The paper's implication structure among phenomena, as properties over
   random well-formed histories:

   - strict anomalies imply their broad phenomena (A1=>P1, A2=>P2, A3=>P3);
   - "forbidding P2 also precludes P4" (§4.1), and P4C is a special case
     of P4;
   - "neither A5A nor A5B could arise in histories where P2 is precluded"
     (§4.2);
   - dirty reads and dirty writes are exactly what breaks the classical
     recovery classes: P1-free histories avoid cascading aborts, and
     P0+P1-free histories are strict. *)

module P = Phenomena.Phenomenon
module D = Phenomena.Detect
module A = History.Action
module R = History.Recoverability

(* Random well-formed histories: a shuffle of per-transaction action
   sequences, each ending in commit or abort. *)
let gen_history =
  let open QCheck2.Gen in
  let body t =
    let action =
      let* k = oneofl [ "x"; "y" ] in
      let* kind = 0 -- 3 in
      return
        (match kind with
        | 0 -> A.read t k
        | 1 -> A.write t k
        | 2 -> A.pred_read ~keys:[ k ] t "P"
        | _ -> A.write ~kind:A.Insert ~preds:[ "P" ] t k)
    in
    let* ops = list_size (1 -- 5) action in
    let* commits = frequency [ (4, return true); (1, return false) ] in
    return (ops @ [ (if commits then A.commit t else A.abort t) ])
  in
  let* t1 = body 1 and* t2 = body 2 and* t3 = body 3 in
  (* Interleave by random merge. *)
  let rec merge acc streams =
    let live = List.filter (fun s -> s <> []) streams in
    if live = [] then return (List.rev acc)
    else
      let* i = 0 -- (List.length live - 1) in
      match List.nth live i with
      | a :: rest ->
        merge (a :: acc)
          (List.mapi (fun j s -> if j = i then rest else s)
             (List.map (fun s -> s) live))
      | [] -> assert false
  in
  merge [] [ t1; t2; t3 ]

let implies name ~premise ~conclusion =
  Support.qtest name ~count:500 gen_history (fun h ->
      (not (premise h)) || conclusion h)

let occurs p h = D.occurs p h

let prop_strict_imply_broad =
  [
    implies "A1 implies P1" ~premise:(occurs P.A1) ~conclusion:(occurs P.P1);
    implies "A2 implies P2" ~premise:(occurs P.A2) ~conclusion:(occurs P.P2);
    implies "A3 implies P3" ~premise:(occurs P.A3) ~conclusion:(occurs P.P3);
  ]

let prop_lost_update_chain =
  [
    implies "P4C implies P4" ~premise:(occurs P.P4C) ~conclusion:(occurs P.P4);
    implies "P4 implies P2 (paper 4.1)" ~premise:(occurs P.P4)
      ~conclusion:(occurs P.P2);
  ]

let prop_skew_implies_p2 =
  [
    implies "A5A implies P2 (paper 4.2)" ~premise:(occurs P.A5A)
      ~conclusion:(occurs P.P2);
    implies "A5B implies P2 (paper 4.2)" ~premise:(occurs P.A5B)
      ~conclusion:(occurs P.P2);
  ]

let prop_recovery_correspondence =
  [
    implies "P1-free histories avoid cascading aborts"
      ~premise:(fun h -> not (occurs P.P1 h))
      ~conclusion:R.avoids_cascading_aborts;
    implies "P0+P1-free histories are strict"
      ~premise:(fun h -> not (occurs P.P0 h || occurs P.P1 h))
      ~conclusion:R.is_strict;
    implies "strict histories are P0-free and P1-free" ~premise:R.is_strict
      ~conclusion:(fun h -> not (occurs P.P0 h || occurs P.P1 h));
  ]

(* Remark: complete, phenomenon-free histories are serializable — the
   converse of the Serializability Theorem direction the paper leans on
   (forbidding P0-P3 yields Locking SERIALIZABLE behavior). Note this
   needs predicate reads accounted, which the generator includes. *)
let prop_phenomenon_free_serializable =
  implies "P0..P3-free complete histories are serializable"
    ~premise:(fun h ->
      History.is_complete h
      && not (occurs P.P0 h || occurs P.P1 h || occurs P.P2 h || occurs P.P3 h))
    ~conclusion:History.Conflict.is_serializable

let suite =
  prop_strict_imply_broad @ prop_lost_update_chain @ prop_skew_implies_p2
  @ prop_recovery_correspondence
  @ [ prop_phenomenon_free_serializable ]
