(* Tests for the deterministic executor: schedules, draining, serial
   runs, status reporting and input validation. *)

module P = Core.Program
module L = Isolation.Level
module Executor = Core.Executor

let t_inc k = P.make [ P.Read k; P.Write (k, P.read_plus k 1); P.Commit ]

let test_serial_run () =
  let cfg = Executor.config ~initial:[ ("x", 0) ] [ L.Serializable; L.Serializable ] in
  let r = Executor.run_serial cfg [ t_inc "x"; t_inc "x" ] in
  Alcotest.(check (option int)) "both increments applied" (Some 2)
    (List.assoc_opt "x" r.Executor.final);
  Alcotest.(check int) "no blocking in serial execution" 0
    r.Executor.blocked_attempts;
  Alcotest.(check bool) "serializable" true
    (History.Conflict.is_serializable r.Executor.history)

let test_empty_schedule_drains () =
  let cfg = Executor.config ~initial:[ ("x", 0) ] [ L.Serializable ] in
  let r = Executor.run cfg [ t_inc "x" ] ~schedule:[] in
  Alcotest.(check Support.exec_status) "completed via drain"
    Executor.Committed
    (List.assoc 1 r.Executor.statuses)

let test_over_long_schedule_harmless () =
  let cfg = Executor.config ~initial:[ ("x", 0) ] [ L.Serializable ] in
  let r = Executor.run cfg [ t_inc "x" ] ~schedule:[ 1; 1; 1; 1; 1; 1; 1; 1; 1 ] in
  Alcotest.(check (option int)) "executed once" (Some 1)
    (List.assoc_opt "x" r.Executor.final)

let test_unknown_txn_rejected () =
  let cfg = Executor.config [ L.Serializable ] in
  Alcotest.check_raises "schedule mentions unknown transaction"
    (Invalid_argument "Executor.run: schedule names unknown transaction 7")
    (fun () -> ignore (Executor.run cfg [ t_inc "x" ] ~schedule:[ 7 ]))

let test_level_count_mismatch_rejected () =
  let cfg = Executor.config [ L.Serializable ] in
  Alcotest.check_raises "levels must match programs"
    (Invalid_argument "Executor.run: one isolation level per program required")
    (fun () -> ignore (Executor.run cfg [ t_inc "x"; t_inc "y" ] ~schedule:[]))

let test_mixed_families_rejected () =
  let cfg = Executor.config [ L.Serializable; L.Snapshot ] in
  Alcotest.(check bool) "locking + multiversion rejected" true
    (try
       ignore (Executor.run cfg [ t_inc "x"; t_inc "y" ] ~schedule:[]);
       false
     with Invalid_argument _ -> true)

let test_user_abort_status () =
  let t = P.make [ P.Write ("x", P.const 5); P.Abort ] in
  let cfg = Executor.config ~initial:[ ("x", 0) ] [ L.Serializable ] in
  let r = Executor.run cfg [ t ] ~schedule:[ 1; 1 ] in
  Alcotest.(check Support.exec_status) "user abort reported"
    (Executor.Aborted Core.Engine.User_abort)
    (List.assoc 1 r.Executor.statuses);
  Alcotest.(check (option int)) "rolled back" (Some 0)
    (List.assoc_opt "x" r.Executor.final)

let test_committed_txns_helper () =
  let t_abort = P.make [ P.Read "x"; P.Abort ] in
  let cfg =
    Executor.config ~initial:[ ("x", 0) ] [ L.Serializable; L.Serializable ]
  in
  let r = Executor.run_serial cfg [ t_inc "x"; t_abort ] in
  Alcotest.(check (list int)) "only T1 committed" [ 1 ]
    (Executor.committed_txns r)

let test_blocked_counts () =
  let t1 = P.make [ P.Write ("x", P.const 1); P.Commit ] in
  let t2 = P.make [ P.Write ("x", P.const 2); P.Commit ] in
  let cfg =
    Executor.config ~initial:[ ("x", 0) ] [ L.Serializable; L.Serializable ]
  in
  let r = Executor.run cfg [ t1; t2 ] ~schedule:[ 1; 2; 2; 2; 1; 1 ] in
  Alcotest.(check bool) "contention counted" true (r.Executor.blocked_attempts > 0);
  Alcotest.(check (option int)) "last committer's value stands" (Some 2)
    (List.assoc_opt "x" r.Executor.final)

(* Every interleaving of the three-transaction increment workload ends
   with all transactions committed and the counter at 3 — 2PL never loses
   updates, whatever the schedule. *)
let test_all_interleavings_of_increments () =
  let programs = [ t_inc "x"; t_inc "x"; t_inc "x" ] in
  let cfg =
    Executor.config ~initial:[ ("x", 0) ]
      [ L.Serializable; L.Serializable; L.Serializable ]
  in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let bad, total =
    Sim.Interleave.count_merges sizes (fun schedule ->
        let r = Executor.run cfg programs ~schedule in
        List.assoc_opt "x" r.Executor.final <> Some 3
        && Executor.committed_txns r = [ 1; 2; 3 ])
  in
  Alcotest.(check int) "no schedule loses an increment with all commits" 0 bad;
  Alcotest.(check bool) "explored many schedules" true (total > 1000)

let suite =
  [
    Alcotest.test_case "serial run" `Quick test_serial_run;
    Alcotest.test_case "empty schedule drains" `Quick test_empty_schedule_drains;
    Alcotest.test_case "over-long schedule harmless" `Quick
      test_over_long_schedule_harmless;
    Alcotest.test_case "unknown transaction rejected" `Quick
      test_unknown_txn_rejected;
    Alcotest.test_case "level count mismatch rejected" `Quick
      test_level_count_mismatch_rejected;
    Alcotest.test_case "mixed families rejected" `Quick
      test_mixed_families_rejected;
    Alcotest.test_case "user abort status" `Quick test_user_abort_status;
    Alcotest.test_case "committed_txns" `Quick test_committed_txns_helper;
    Alcotest.test_case "blocked attempts counted" `Quick test_blocked_counts;
    Alcotest.test_case "all increment interleavings conserve the counter"
      `Slow test_all_interleavings_of_increments;
  ]
