(* The reproduction sections of the bench harness: one per table and
   figure of the paper, each printing the paper's matrix next to the
   empirically regenerated one and demonstrating the claims on live
   engines. *)

module P = Phenomena.Phenomenon
module L = Isolation.Level
module Spec = Isolation.Spec
module Lattice = Isolation.Lattice
module Classify = Sim.Classify
module Report = Sim.Report
module Executor = Core.Executor
module PH = Workload.Paper_histories

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub title = Printf.printf "\n-- %s --\n" title

(* Table 1: the original ANSI matrix, and the §3 demonstration that its
   strict reading under-constrains: H1-H3 are non-serializable histories
   that ANOMALY SERIALIZABLE admits. *)
let table1 () =
  header "TABLE 1 - ANSI SQL isolation levels, original three phenomena";
  let headers = "Isolation level" :: List.map P.name Spec.table1_columns in
  let rows =
    List.map
      (fun l ->
        Spec.ansi_level_name l
        :: List.map
             (fun p -> Report.possibility_cell (Spec.table1 l p))
             Spec.table1_columns)
      Spec.ansi_levels
  in
  print_string (Report.render ~headers ~rows);
  sub "why the strict (anomaly) reading fails (paper section 3)";
  List.iter
    (fun ph ->
      let hist = ph.PH.history in
      let strict = List.filter P.is_strict (Phenomena.Detect.exhibited hist) in
      let admitted_by =
        List.filter
          (fun l ->
            List.for_all
              (fun p -> not (Phenomena.Detect.occurs p hist))
              (Spec.ansi_forbidden l))
          Spec.ansi_levels
      in
      Printf.printf
        "%s: %s\n  serializable: %b; strict anomalies present: %s\n  admitted under the strict reading by: %s\n"
        ph.PH.name ph.PH.text
        (History.Conflict.is_serializable hist)
        (if strict = [] then "none" else String.concat ", " (List.map P.name strict))
        (String.concat ", " (List.map Spec.ansi_level_name admitted_by)))
    [ PH.h1; PH.h2; PH.h3 ];
  Printf.printf
    "=> every ANSI level including ANOMALY SERIALIZABLE admits these\n   non-serializable histories; the broad interpretations (P1, P2, P3)\n   exclude them (Remark 4).\n"

(* Table 2: the lock protocols, printed as the paper words them, and the
   check that each locking level's empirical anomaly row matches Table 4
   (Remark 6: the lock protocols and the phenomena definitions agree). *)
let table2 () =
  header "TABLE 2 - degrees of consistency and locking isolation levels";
  let headers = [ "Consistency level"; "Read locks"; "Write locks" ] in
  let rows =
    List.map
      (fun level ->
        let p = Locking.Protocol.for_level_exn level in
        let reads, writes = Locking.Protocol.describe p in
        let name =
          match L.degree level with
          | Some d -> Printf.sprintf "Degree %d = %s" d (L.name level)
          | None -> L.name level
        in
        [ name; reads; writes ])
      Locking.Protocol.locking_levels
  in
  print_string (Report.render ~headers ~rows);
  sub "two-phase discipline, observed from the lock audit log";
  let module Pr = Core.Program in
  List.iter
    (fun level ->
      let engine =
        Core.Engine.create ~initial:[ ("x", 0); ("y", 0); ("z", 0) ]
          ~predicates:[] ~family:`Locking ()
      in
      Core.Engine.begin_txn engine 1 ~level;
      List.iter
        (fun op -> ignore (Core.Engine.step engine 1 op))
        [ Pr.Read "x"; Pr.Scan Storage.Predicate.all; Pr.Read "y";
          Pr.Write ("z", Pr.const 1); Pr.Commit ];
      let log = Option.get (Core.Engine.lock_events engine) in
      let acquired, released = Locking.Discipline.summary log 1 in
      Printf.printf
        "  %-26s two-phase: %-5b (%d locks granted, %d released; theorem          hypothesis holds only for SERIALIZABLE)\n"
        (L.name level)
        (Locking.Discipline.two_phase log 1)
        acquired released)
    Locking.Protocol.locking_levels;
  sub "Remark 6: lock protocols realize exactly the phenomena-based levels";
  let table = Classify.table4 ~levels:Locking.Protocol.locking_levels () in
  print_string (Report.render_classified table);
  let diffs = Classify.diff_with_spec table in
  Printf.printf "cells diverging from the paper: %d\n" (List.length diffs);
  List.iter (fun m -> Format.printf "  %a@." Classify.pp_mismatch m) diffs

(* Table 3: the proposed phenomena-based levels, spec vs empirical. *)
let table3 () =
  header "TABLE 3 - proposed ANSI isolation levels (P0 added, broad readings)";
  sub "paper";
  print_string
    (Report.render_spec ~levels:Spec.table3_rows ~columns:Spec.table3_columns
       Spec.table3);
  sub "measured (every interleaving of every scenario, real engines)";
  let table = Classify.table3 () in
  print_string (Report.render_classified table);
  let diffs = Classify.diff_with_spec table in
  Printf.printf "cells diverging from the paper: %d\n" (List.length diffs)

(* Table 4: the full characterization, spec vs empirical, with scenario
   evidence for the Sometimes cells and a witness schedule each. *)
let table4 () =
  header "TABLE 4 - isolation types characterized by possible anomalies";
  sub "paper";
  print_string
    (Report.render_spec ~levels:L.all ~columns:P.table4 Spec.table4);
  sub "measured (every interleaving of every scenario, real engines)";
  let table = Classify.table4 ~levels:L.all () in
  print_string (Report.render_classified table);
  let diffs = Classify.diff_with_spec table in
  Printf.printf "cells diverging from the paper: %d\n" (List.length diffs);
  List.iter (fun m -> Format.printf "  %a@." Classify.pp_mismatch m) diffs;
  sub "evidence for the Sometimes-Possible cells";
  List.iter
    (fun (level, p) ->
      let c = Classify.cell level p in
      Printf.printf "%s / %s:\n" (L.name level) (P.name p);
      List.iter
        (fun o ->
          Printf.printf "  %-18s %-12s (%d interleavings%s)\n"
            o.Classify.scenario.Workload.Scenario.id
            (if o.Classify.possible then "exhibited" else "impossible")
            o.Classify.explored
            (match o.Classify.witness with
            | Some s ->
              "; witness schedule " ^ String.concat "" (List.map string_of_int s)
            | None -> ""))
        c.Classify.outcomes)
    [ (L.Cursor_stability, P.P4); (L.Cursor_stability, P.P2);
      (L.Cursor_stability, P.A5B); (L.Snapshot, P.P3) ]

(* Figure 2: the isolation hierarchy. *)
let figure2 () =
  header "FIGURE 2 - the isolation hierarchy";
  print_string (Lattice.render_figure ());
  sub "computed Hasse diagram (cell-dominance order)";
  List.iter (fun e -> Format.printf "  %a@." Lattice.pp_edge e) (Lattice.hasse ());
  sub "paper's drawn edges, checked against the computed order";
  List.iter
    (fun e ->
      Format.printf "  %a  consistent=%b@." Lattice.pp_edge e
        (Lattice.edge_consistent e))
    Lattice.figure2_paper_edges;
  sub "incomparable pairs (the paper's >><<)";
  List.iter
    (fun (a, b, only_a, only_b) ->
      Format.printf "  %s >><< %s   (%s uniquely forbids %s; %s uniquely forbids %s)@."
        (L.name a) (L.name b) (L.name a)
        (String.concat "," (List.map P.name only_a))
        (L.name b)
        (String.concat "," (List.map P.name only_b)))
    (Lattice.incomparable_pairs ());
  Printf.printf "Remark 1: %b  Remark 7: %b  Remark 8: %b  Remark 9: %b\n"
    (Lattice.remark_1 ()) (Lattice.remark_7 ()) (Lattice.remark_8 ())
    (Lattice.remark_9 ())

(* The example histories, verbatim, with detector verdicts; H1 and H4 are
   also re-executed live on the engines. *)
let histories () =
  header "EXAMPLE HISTORIES (paper sections 3, 4.1, 4.2)";
  List.iter
    (fun ph ->
      let hist = ph.PH.history in
      let serializable =
        if History.Mv.is_mv hist then History.Mv.is_one_copy_serializable hist
        else History.Conflict.is_serializable hist
      in
      Printf.printf "%-10s %s\n  exhibits: %-18s serializable: %b\n" ph.PH.name
        ph.PH.text
        (match Phenomena.Detect.exhibited hist with
        | [] -> "nothing"
        | ps -> String.concat "," (List.map P.name ps))
        serializable)
    PH.all;
  sub "H1 re-executed live";
  let module Pr = Core.Program in
  let transfer =
    Pr.make ~name:"transfer"
      [ Pr.Read "x"; Pr.Write ("x", Pr.read_plus "x" (-40));
        Pr.Read "y"; Pr.Write ("y", Pr.read_plus "y" 40); Pr.Commit ]
  in
  let audit = Pr.make ~name:"audit" [ Pr.Read "x"; Pr.Read "y"; Pr.Commit ] in
  let sched = [ 1; 1; 2; 2; 2; 1; 1; 1 ] in
  List.iter
    (fun level ->
      let cfg =
        Executor.config ~initial:[ ("x", 50); ("y", 50) ] [ level; level ]
      in
      let r = Executor.run cfg [ transfer; audit ] ~schedule:sched in
      Printf.printf "  %-26s %s\n" (L.name level)
        (History.to_string r.Executor.history
        |> String.map (function '\n' -> ' ' | c -> c)))
    [ L.Read_uncommitted; L.Read_committed; L.Snapshot ];
  Printf.printf
    "  (READ UNCOMMITTED reproduces H1; Snapshot reproduces H1.SI; READ\n   COMMITTED's blocking forces a serializable order.)\n";
  sub "the SI mapping (section 4.2)";
  Printf.printf "  H1.SI      %s\n" (History.to_string PH.h1_si.PH.history
    |> String.map (function '\n' -> ' ' | c -> c));
  Printf.printf "  mapped ->  %s\n"
    (History.to_string (History.Mv.si_to_single_version PH.h1_si.PH.history)
    |> String.map (function '\n' -> ' ' | c -> c));
  Printf.printf "  paper's    %s\n" PH.h1_si_sv.PH.text

(* The §3 recovery argument, executed. *)
let recovery () =
  header "RECOVERY - why P0 must be outlawed (paper section 3)";
  let module Store = Storage.Store in
  let module Wal = Storage.Wal in
  let module Recovery = Storage.Recovery in
  let initial = Store.of_list [ ("x", 0) ] in
  let w = Wal.create () in
  List.iter (Wal.append w)
    [ Wal.Begin 1;
      Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
      Wal.Begin 2;
      Wal.Update { t = 2; k = "x"; before = Some 1; after = Some 2 };
      Wal.Commit 2 ];
  Format.printf "log: %a@." Wal.pp w;
  Format.printf "ideal post-crash state:      %a@." Store.pp
    (Recovery.ideal_state ~initial w);
  Format.printf "before-image undo recovers:  %a@." Store.pp
    (Recovery.recover ~initial w).Recovery.state;
  Format.printf "recovery correct: %b  (dirty write w1[x] w2[x] poisons undo)@."
    (Recovery.recovery_correct ~initial w);
  let clean = Wal.create () in
  List.iter (Wal.append clean)
    [ Wal.Begin 1;
      Wal.Update { t = 1; k = "x"; before = Some 0; after = Some 1 };
      Wal.Commit 1;
      Wal.Begin 2;
      Wal.Update { t = 2; k = "x"; before = Some 1; after = Some 2 } ];
  Format.printf
    "with long write locks (no P0) the same crash recovers correctly: %b@."
    (Recovery.recovery_correct ~initial clean);
  sub "the recoverability hierarchy view of the same point";
  List.iter
    (fun (label, text) ->
      let hist = History.of_string text in
      Printf.printf "  %-28s %-22s -> %s\n" label text
        (History.Recoverability.class_name
           (History.Recoverability.classify hist)))
    [
      ("serial", "w1[x] c1 r2[x] w2[x] c2");
      ("dirty write (P0)", "w1[x] w2[x] c1 c2");
      ("dirty read (P1)", "w1[x] r2[x] c1 c2");
      ("dirty read, bad order", "w1[x] r2[x] c2 c1");
    ];
  Printf.printf
    "  (forbidding P1 = avoiding cascading aborts; forbidding P0 and P1 =\n\
    \   strictness, the hypothesis of before-image recovery)\n"

(* First-Committer-Wins vs First-Updater-Wins ablation. *)
let ablation () =
  header "ABLATION - First-Committer-Wins vs First-Updater-Wins (SI)";
  let u amount =
    let module Pr = Core.Program in
    Pr.make [ Pr.Read "x"; Pr.Write ("x", Pr.read_plus "x" amount); Pr.Commit ]
  in
  let programs = [ u 30; u 20 ] in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let stats fuw =
    let aborts = ref 0 and blocked = ref 0 and runs = ref 0 in
    let _, _ =
      Sim.Interleave.count_merges sizes (fun schedule ->
          let cfg =
            Executor.config ~initial:[ ("x", 100) ] ~first_updater_wins:fuw
              [ L.Snapshot; L.Snapshot ]
          in
          let r = Executor.run cfg programs ~schedule in
          incr runs;
          blocked := !blocked + r.Executor.blocked_attempts;
          aborts :=
            !aborts
            + List.length
                (List.filter (fun (_, s) -> s <> Executor.Committed) r.Executor.statuses);
          false)
    in
    (!runs, !aborts, !blocked)
  in
  let runs, fcw_aborts, fcw_blocked = stats false in
  let _, fuw_aborts, fuw_blocked = stats true in
  Printf.printf
    "H4 contention, all %d interleavings:\n\
    \  First-Committer-Wins: %d aborts, %d blocked attempts (conflicts die at commit)\n\
    \  First-Updater-Wins:   %d aborts, %d blocked attempts (conflicts die or wait at write)\n\
     Both policies admit the same Table 4 row (see tests); they differ only\n\
     in when the conflict surfaces.\n"
    runs fcw_aborts fcw_blocked fuw_aborts fuw_blocked

(* U-mode update locks vs plain S-then-X upgrades on for-update
   cursors. *)
let update_locks () =
  header "ABLATION 3 - for-update cursors: U locks vs upgrade deadlocks";
  let module Pr = Core.Program in
  let module Predicate = Storage.Predicate in
  let cursor_add amount =
    Pr.make
      [
        Pr.Open_cursor { cursor = "c"; pred = Predicate.item "x"; for_update = true };
        Pr.Fetch "c";
        Pr.Cursor_write ("c", Pr.read_plus "x" amount);
        Pr.Commit;
      ]
  in
  let programs = [ cursor_add 30; cursor_add 20 ] in
  let sizes = Sim.Interleave.sizes_of_programs programs in
  let stats u =
    let deadlocks = ref 0 and blocked = ref 0 and lost = ref 0 and runs = ref 0 in
    let _ =
      Sim.Interleave.count_merges sizes (fun schedule ->
          let cfg =
            Executor.config ~initial:[ ("x", 100) ] ~update_locks:u
              [ L.Repeatable_read; L.Repeatable_read ]
          in
          let r = Executor.run cfg programs ~schedule in
          incr runs;
          deadlocks := !deadlocks + r.Executor.deadlock_aborts;
          blocked := !blocked + r.Executor.blocked_attempts;
          if
            List.for_all (fun (_, s) -> s = Executor.Committed) r.Executor.statuses
            && List.assoc_opt "x" r.Executor.final <> Some 150
          then incr lost;
          false)
    in
    (!runs, !deadlocks, !blocked, !lost)
  in
  let runs, d0, b0, l0 = stats false in
  let _, d1, b1, l1 = stats true in
  Printf.printf
    "two for-update cursor increments of the same row at REPEATABLE READ,
     all %d interleavings:
    \  S-then-X upgrades: %3d deadlock aborts, %4d blocked attempts, %d lost updates
    \  U-mode locks:      %3d deadlock aborts, %4d blocked attempts, %d lost updates
     => U locks convert every upgrade deadlock into simple blocking; both
    \   variants preserve the update (150).
"
    runs d0 b0 l0 d1 b1 l1

(* Predicate locks vs next-key locks: same guarantees on range
   predicates, different precision. *)
let phantom_guards () =
  header "ABLATION 2 - phantom guards: predicate locks vs next-key locks";
  let module Pr = Core.Program in
  let module Predicate = Storage.Predicate in
  let emp = Predicate.key_prefix ~name:"Emp" "emp_" in
  let scanner = Pr.make [ Pr.Scan emp; Pr.Scan emp; Pr.Commit ] in
  let run ~next_key inserter =
    let programs = [ scanner; inserter ] in
    let sizes = Sim.Interleave.sizes_of_programs programs in
    let blocked = ref 0 and phantoms = ref 0 and runs = ref 0 in
    let _ =
      Sim.Interleave.count_merges sizes (fun schedule ->
          let cfg =
            Executor.config
              ~initial:[ ("emp_a", 1); ("emp_b", 1); ("zzz_sentinel", 0) ]
              ~predicates:[ emp ] ~next_key_locking:next_key
              [ L.Serializable; L.Serializable ]
          in
          let r = Executor.run cfg programs ~schedule in
          incr runs;
          blocked := !blocked + r.Executor.blocked_attempts;
          if Phenomena.Detect.occurs Phenomena.Phenomenon.A3 r.Executor.history
          then incr phantoms;
          false)
    in
    (!runs, !blocked, !phantoms)
  in
  let matching = Pr.make [ Pr.Insert ("emp_c", Pr.const 1); Pr.Commit ] in
  let unrelated = Pr.make [ Pr.Insert ("aaa", Pr.const 1); Pr.Commit ] in
  Printf.printf
    "SERIALIZABLE scanners vs inserters, all interleavings; an insert
     matching the scanned predicate must block either way, but next-key
     locking also blocks unrelated inserts whose successor row is locked:

";
  List.iter
    (fun (label, inserter) ->
      let _, pl_blocked, pl_phantoms = run ~next_key:false inserter in
      let runs, nk_blocked, nk_phantoms = run ~next_key:true inserter in
      Printf.printf
        "  %-24s predicate locks: %4d blocked, %d phantoms | next-key: %4d blocked, %d phantoms  (%d interleavings)
"
        label pl_blocked pl_phantoms nk_blocked nk_phantoms runs)
    [ ("insert inside range", matching); ("insert outside range", unrelated) ];
  Printf.printf
    "=> both guards exclude phantoms entirely; predicate locks are exact
    \   (this engine can evaluate any predicate), next-key locking is what
    \   a B-tree engine can actually implement and pays false conflicts.
"

let all () =
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  figure2 ();
  histories ();
  recovery ();
  ablation ();
  phantom_guards ();
  update_locks ()
