bench/perf.ml: Analyze Array Bechamel Benchmark Core Hashtbl Isolation List Measure Printf Random Sections Staged Storage Test Time Toolkit Workload
