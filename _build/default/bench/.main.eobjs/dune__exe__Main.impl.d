bench/main.ml: Array List Perf Printf Sections Sys
