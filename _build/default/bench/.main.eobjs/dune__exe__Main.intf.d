bench/main.mli:
