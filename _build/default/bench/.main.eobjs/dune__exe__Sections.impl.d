bench/sections.ml: Core Format History Isolation List Locking Option Phenomena Printf Sim Storage String Workload
