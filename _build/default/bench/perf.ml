(* Performance sections: bechamel micro-benchmarks of the engines and the
   §4.2 qualitative claims measured as workload statistics.

   The paper's §4.2 makes three measurable claims about Snapshot
   Isolation:
     1. a transaction "is never blocked attempting a read" — readers do
        not block writers and writers do not block readers;
     2. its optimistic approach has "a clear concurrency advantage for
        read-only transactions";
     3. "it probably isn't good for long-running update transactions
        competing with high-contention short transactions, since the
        long-running transactions are unlikely to be the first writer of
        everything they write, and so will probably be aborted".
   Each is checked below, 2PL SERIALIZABLE vs Snapshot Isolation. *)

open Bechamel

module L = Isolation.Level
module Executor = Core.Executor
module Generators = Workload.Generators

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let benchmark_and_print tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"perf" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Analyze.OLS.estimates result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square result with Some r -> r | None -> nan
      in
      rows := (name, ns, r2) :: !rows)
    results;
  List.iter
    (fun (name, ns, r2) ->
      Printf.printf "  %-44s %12.1f ns/run   (r^2 %.3f)\n" name ns r2)
    (List.sort compare !rows)

let run_workload ?(first_updater_wins = false) ?read_only level programs
    schedule ~accounts =
  let cfg =
    Executor.config
      ~initial:(Generators.bank_accounts accounts)
      ~first_updater_wins ?read_only
      (List.map (fun _ -> level) programs)
  in
  Executor.run cfg programs ~schedule

(* Claim 1 & 2: a long read-only audit against short transfers. *)
let readers_vs_writers () =
  Sections.header "PERF 1 - readers vs writers (SI never blocks reads, section 4.2)";
  let accounts = 24 and writers = 12 in
  let trials = 50 in
  let stats ?read_only label level =
    let blocked = ref 0 and deadlocks = ref 0 and aborted = ref 0 in
    for seed = 1 to trials do
      let rand = Random.State.make [| seed |] in
      let programs = Generators.read_heavy ~rand ~accounts ~writers in
      let schedule = Generators.random_schedule ~rand programs in
      let r = run_workload ?read_only level programs schedule ~accounts in
      blocked := !blocked + r.Executor.blocked_attempts;
      deadlocks := !deadlocks + r.Executor.deadlock_aborts;
      aborted :=
        !aborted
        + List.length
            (List.filter (fun (_, s) -> s <> Executor.Committed) r.Executor.statuses)
    done;
    Printf.printf "  %-34s blocked attempts %5d   deadlocks %3d   aborted txns %3d\n"
      label !blocked !deadlocks !aborted
  in
  Printf.printf
    "%d random schedules of 1 audit (%d reads) + %d transfers, per level:\n"
    trials accounts writers;
  List.iter
    (fun level -> stats (L.name level) level)
    [ L.Serializable; L.Repeatable_read; L.Read_committed; L.Snapshot ];
  (* The [BHG] Multiversion Mixed Method: 2PL writers, snapshot audit. *)
  stats "SERIALIZABLE + read-only audit"
    ~read_only:(true :: List.init writers (fun _ -> false))
    L.Serializable;
  Printf.printf
    "=> under 2PL the audit's read locks collide with every transfer;\n\
    \   under Snapshot Isolation nothing ever blocks (claim 1) and the\n\
    \   read-only audit always commits against its snapshot (claim 2).\n";
  (* Wall-clock cost of the same workload. *)
  let rand = Random.State.make [| 7 |] in
  let programs = Generators.read_heavy ~rand ~accounts ~writers in
  let schedule = Generators.random_schedule ~rand programs in
  let test level =
    Test.make
      ~name:("read-heavy/" ^ L.name level)
      (Staged.stage (fun () ->
           ignore (run_workload level programs schedule ~accounts)))
  in
  benchmark_and_print [ test L.Serializable; test L.Snapshot ]

(* Claim 3: a long update transaction against short contended updates. *)
let long_vs_short () =
  Sections.header
    "PERF 2 - long update transaction vs short contended updates (section 4.2)";
  let accounts = 8 and touches = 8 and writers = 10 in
  let trials = 100 in
  let stats ?first_updater_wins level =
    let long_aborted = ref 0 and blocked = ref 0 and any_aborted = ref 0 in
    for seed = 1 to trials do
      let rand = Random.State.make [| seed |] in
      let programs = Generators.long_vs_short ~rand ~accounts ~touches ~writers in
      let schedule = Generators.random_schedule ~rand programs in
      let r = run_workload ?first_updater_wins level programs schedule ~accounts in
      if List.assoc 1 r.Executor.statuses <> Executor.Committed then
        incr long_aborted;
      blocked := !blocked + r.Executor.blocked_attempts;
      any_aborted :=
        !any_aborted
        + List.length
            (List.filter (fun (_, s) -> s <> Executor.Committed) r.Executor.statuses)
    done;
    (!long_aborted, !blocked, !any_aborted)
  in
  Printf.printf
    "%d random schedules of 1 long update (%d writes) + %d short updates:\n"
    trials touches writers;
  List.iter
    (fun (label, level, fuw) ->
      let long_aborted, blocked, any = stats ?first_updater_wins:fuw level in
      Printf.printf
        "  %-32s long txn aborted %3d/%d   blocked attempts %6d   total aborts %4d\n"
        label long_aborted trials blocked any)
    [
      ("SERIALIZABLE (2PL)", L.Serializable, None);
      ("Snapshot (first-committer-wins)", L.Snapshot, None);
      ("Snapshot (first-updater-wins)", L.Snapshot, Some true);
      ("Serializable SI (validation)", L.Serializable_snapshot, None);
      ("Oracle Read Consistency", L.Oracle_read_consistency, None);
      ("Timestamp Ordering (T/O)", L.Timestamp_ordering, None);
    ];
  Printf.printf
    "=> the long transaction almost never survives First-Committer-Wins in\n\
    \   this regime (claim 3); under 2PL it survives by blocking everyone,\n\
    \   and under first-writer-wins locking it survives by losing updates.\n"

(* Raw engine operation costs. *)
let engine_microbench () =
  Sections.header "PERF 3 - engine operation costs (bechamel)";
  let accounts = 64 in
  let module P = Core.Program in
  let deposit i =
    P.make
      [ P.Read (Generators.account (i mod accounts));
        P.Write (Generators.account (i mod accounts),
                 P.read_plus (Generators.account (i mod accounts)) 1);
        P.Commit ]
  in
  let programs = List.init 16 deposit in
  let serial_schedule =
    List.concat (List.mapi (fun i p -> List.init (P.length p) (fun _ -> i + 1)) programs)
  in
  let test name level =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore
             (run_workload level programs serial_schedule ~accounts)))
  in
  benchmark_and_print
    [
      test "16 serial updates/locking SERIALIZABLE" L.Serializable;
      test "16 serial updates/locking READ COMMITTED" L.Read_committed;
      test "16 serial updates/Snapshot Isolation" L.Snapshot;
      test "16 serial updates/Oracle Read Consistency" L.Oracle_read_consistency;
    ]

(* Index microbenchmarks: the B+ tree against the workloads the engines
   put on it. *)
let btree_microbench () =
  Sections.header "PERF 3b - B+ tree index operations (bechamel)";
  let n = 1_000 in
  let keys = Array.init n (fun i -> Printf.sprintf "k%06d" (i * 7919 mod n)) in
  let prebuilt = Storage.Btree.of_list (Array.to_list (Array.map (fun k -> (k, 1)) keys)) in
  benchmark_and_print
    [
      Test.make ~name:"btree/insert 1k"
        (Staged.stage (fun () ->
             let t = Storage.Btree.create () in
             Array.iter (fun k -> Storage.Btree.insert t k 1) keys));
      Test.make ~name:"btree/find 1k"
        (Staged.stage (fun () ->
             Array.iter (fun k -> ignore (Storage.Btree.find prebuilt k)) keys));
      Test.make ~name:"btree/successor 1k"
        (Staged.stage (fun () ->
             Array.iter
               (fun k -> ignore (Storage.Btree.successor prebuilt k))
               keys));
      Test.make ~name:"btree/range scan 10%"
        (Staged.stage (fun () ->
             ignore
               (Storage.Btree.range prebuilt ~lo:"k000100"
                  ~hi:(Some "k000200"))));
    ]

(* A figure-style series: contention vs writer count, 2PL vs SI. *)
let scaling_series () =
  Sections.header
    "PERF 4 - contention scaling series (blocked attempts / aborts vs writers)";
  let accounts = 16 and trials = 20 in
  Printf.printf
    "%d random schedules per point; 1 audit + N transfers over %d accounts\n\n"
    trials accounts;
  Printf.printf
    "  writers | 2PL blocked | 2PL deadlocks | SI blocked | SI FCW aborts\n";
  Printf.printf
    "  --------+-------------+---------------+------------+--------------\n";
  List.iter
    (fun writers ->
      let stats level =
        let blocked = ref 0 and deadlocks = ref 0 and aborts = ref 0 in
        for seed = 1 to trials do
          let rand = Random.State.make [| (writers * 1000) + seed |] in
          let programs = Generators.read_heavy ~rand ~accounts ~writers in
          let schedule = Generators.random_schedule ~rand programs in
          let r = run_workload level programs schedule ~accounts in
          blocked := !blocked + r.Executor.blocked_attempts;
          deadlocks := !deadlocks + r.Executor.deadlock_aborts;
          aborts :=
            !aborts
            + List.length
                (List.filter
                   (fun (_, s) -> s <> Executor.Committed)
                   r.Executor.statuses)
            - r.Executor.deadlock_aborts
        done;
        (!blocked, !deadlocks, !aborts)
      in
      let b2, d2, _ = stats L.Serializable in
      let bs, _, fcw = stats L.Snapshot in
      Printf.printf "  %7d | %11d | %13d | %10d | %13d\n" writers b2 d2 bs fcw)
    [ 2; 4; 8; 16; 24 ];
  Printf.printf
    "=> 2PL contention (blocking, deadlocks) grows with writer count while\n\
    \   SI never blocks; SI pays in First-Committer-Wins aborts instead,\n\
    \   which also grow with write-write contention.\n"

let all () =
  readers_vs_writers ();
  long_vs_short ();
  engine_microbench ();
  btree_microbench ();
  scaling_series ()
