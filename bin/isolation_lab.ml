(* isolation_lab: command-line laboratory for the paper's isolation
   theory.

     isolation_lab analyze "r1[x=50]w1[x=10]r2[x=10]r2[y=50]c2 r1[y=50]w1[y=90]c1"
     isolation_lab classify --level "snapshot" --phenomenon P3
     isolation_lab scenario P4/plain --level "read committed"
     isolation_lab levels
     isolation_lab figure *)

open Cmdliner

module L = Isolation.Level
module P = Phenomena.Phenomenon
module Executor = Core.Executor

(* {2 Arguments} *)

let level_conv =
  let parse s =
    match L.of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown isolation level %S" s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (L.name l))

let phenomenon_conv =
  let parse s =
    match P.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown phenomenon %S" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (P.name p))

let level_arg =
  Arg.(
    value
    & opt level_conv L.Serializable
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Isolation level: degree 0, read uncommitted, read committed, \
           cursor stability, repeatable read, snapshot, oracle, \
           serializable.")

(* Weighted level mixes ("rc=3,si=1,serializable=1") go through the
   workload library's shared parser — one parser, one error message, for
   stress, chaos and loadgen alike. *)
let mix_spec_or_exit spec =
  match Workload.Mix.parse spec with
  | Ok m -> m
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 1

let levels_spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "levels" ] ~docv:"SPEC"
        ~doc:
          "Weighted per-transaction isolation-level mix, comma-separated \
           level[=weight] (e.g. \"rc=70,si=25,serializable=5\"). Overrides \
           $(b,--level): each transaction draws a declared level from the \
           mix and executes at that level's strengthening onto the mix's \
           majority engine family, and the run is judged by the \
           per-transaction mixed criterion — a transaction counts as harmed \
           (and, with $(b,--certify), is aborted) only by cycles whose \
           phenomena its own declared level forbids.")

(* {2 analyze} *)

let analyze dot history_text =
  match History.Parser.parse history_text with
  | Error e ->
    Fmt.epr "parse error %a@." History.Parser.pp_error e;
    exit 1
  | Ok h ->
    Format.printf "history: %s@." (History.to_string h);
    Format.printf "transactions: %s  committed: %s  aborted: %s@."
      (String.concat "," (List.map string_of_int (History.txns h)))
      (String.concat "," (List.map string_of_int (History.committed h)))
      (String.concat "," (List.map string_of_int (History.aborted h)));
    (match History.well_formed h with
    | Ok () -> ()
    | Error msg -> Format.printf "NOT WELL-FORMED: %s@." msg);
    if History.Mv.is_mv h then begin
      Format.printf "multiversion history@.";
      Format.printf "  one-copy serializable: %b@."
        (History.Mv.is_one_copy_serializable h);
      (match History.Mv.mvsg_cycle h with
      | Some cycle ->
        Format.printf "  MVSG cycle: %s@."
          (String.concat " -> " (List.map (fun t -> "T" ^ string_of_int t) cycle))
      | None -> ());
      Format.printf "  snapshot reads respected: %b@."
        (History.Mv.snapshot_reads_respected h);
      Format.printf "  first-committer-wins respected: %b@."
        (History.Mv.first_committer_wins_respected h);
      Format.printf "  single-valued mapping: %s@."
        (History.to_string (History.Mv.si_to_single_version h))
    end
    else begin
      Format.printf "serializable: %b@." (History.Conflict.is_serializable h);
      (match History.Conflict.cycle h with
      | Some cycle ->
        Format.printf "  dependency cycle: %s@."
          (String.concat " -> " (List.map (fun t -> "T" ^ string_of_int t) cycle))
      | None -> ());
      (match History.Conflict.serialization_order h with
      | Some order ->
        Format.printf "  equivalent serial order: %s@."
          (String.concat " " (List.map (fun t -> "T" ^ string_of_int t) order))
      | None -> ())
    end;
    if not (History.Mv.is_mv h) then
      Format.printf "recoverability: %a@." History.Recoverability.pp_class
        (History.Recoverability.classify h);
    let witnesses =
      List.concat_map (fun p -> Phenomena.Detect.detect p h) P.all
    in
    if witnesses = [] then Format.printf "phenomena: none@."
    else begin
      Format.printf "phenomena:@.";
      List.iter (fun w -> Format.printf "  %a@." Phenomena.Detect.pp_witness w) witnesses
    end;
    if dot then begin
      Format.printf "@.dependency graph (dot):@.";
      print_string (History.Conflict.to_dot h)
    end

let analyze_cmd =
  let history_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HISTORY" ~doc:"History in the paper's shorthand notation.")
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Also print the dependency graph in Graphviz dot syntax.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a history: serializability, phenomena, MV properties.")
    Term.(const analyze $ dot_arg $ history_arg)

(* {2 classify} *)

let classify level phenomenon fuw =
  let c = Sim.Classify.cell ~first_updater_wins:fuw level phenomenon in
  Format.printf "%s / %s (%s): %a@." (L.name level) (P.name phenomenon)
    (P.long_name phenomenon) Isolation.Spec.pp_possibility c.Sim.Classify.verdict;
  Format.printf "paper says: %a@." Isolation.Spec.pp_possibility
    (Isolation.Spec.table4 level phenomenon);
  List.iter
    (fun o ->
      Format.printf "  scenario %-18s %-10s (%d interleavings examined)@."
        o.Sim.Classify.scenario.Workload.Scenario.id
        (if o.Sim.Classify.possible then "exhibited" else "impossible")
        o.Sim.Classify.explored;
      match o.Sim.Classify.witness with
      | Some schedule ->
        let s = o.Sim.Classify.scenario in
        let cfg =
          Executor.config ~initial:s.Workload.Scenario.initial
            ~predicates:s.Workload.Scenario.predicates ~first_updater_wins:fuw
            (List.map (fun _ -> level) s.Workload.Scenario.programs)
        in
        let r = Executor.run cfg s.Workload.Scenario.programs ~schedule in
        Format.printf "    witness schedule: %s@."
          (String.concat "" (List.map string_of_int schedule));
        Format.printf "    witness history:  %s@."
          (History.to_string r.Executor.history)
      | None -> ())
    c.Sim.Classify.outcomes

let classify_cmd =
  let phenomenon_arg =
    Arg.(
      required
      & opt (some phenomenon_conv) None
      & info [ "p"; "phenomenon" ] ~docv:"PHENOMENON"
          ~doc:"Phenomenon: P0, P1, P2, P3, P4, P4C, A1, A2, A3, A5A, A5B.")
  in
  let fuw_arg =
    Arg.(
      value & flag
      & info [ "first-updater-wins" ]
          ~doc:"Use the First-Updater-Wins variant of Snapshot Isolation.")
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Decide whether a phenomenon is possible at an isolation level by \
          exhausting every interleaving of its scenarios.")
    Term.(const classify $ level_arg $ phenomenon_arg $ fuw_arg)

(* {2 scenario} *)

let run_scenario id level schedule_opt =
  match
    List.find_opt
      (fun s -> s.Workload.Scenario.id = id)
      Workload.Catalog.all
  with
  | None ->
    Fmt.epr "unknown scenario %S; available:@." id;
    List.iter
      (fun s -> Fmt.epr "  %-18s %s@." s.Workload.Scenario.id s.Workload.Scenario.description)
      Workload.Catalog.all;
    exit 1
  | Some s ->
    Format.printf "%a@." Workload.Scenario.pp s;
    let cfg =
      Executor.config ~initial:s.initial ~predicates:s.predicates
        (List.map (fun _ -> level) s.programs)
    in
    let schedule =
      match schedule_opt with
      | Some digits ->
        List.init (String.length digits) (fun i ->
            Char.code digits.[i] - Char.code '0')
      | None ->
        (* Find an exhibiting schedule if one exists, else run serially. *)
        let outcome = Sim.Classify.run_scenario level s in
        (match outcome.Sim.Classify.witness with
        | Some w -> w
        | None ->
          List.concat
            (List.mapi
               (fun i p ->
                 List.init (Core.Program.length p + 1) (fun _ -> i + 1))
               s.programs))
    in
    let r = Executor.run cfg s.programs ~schedule in
    Format.printf "schedule: %s@."
      (String.concat "" (List.map string_of_int schedule));
    Format.printf "history:  %s@." (History.to_string r.Executor.history);
    Format.printf "final:    %s@."
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.Executor.final));
    List.iter
      (fun (t, st) -> Format.printf "T%d %a@." t Executor.pp_status st)
      r.Executor.statuses;
    Format.printf "anomaly exhibited: %b@." (s.exhibits r)

let scenario_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario id, e.g. P4/plain.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "schedule" ] ~docv:"DIGITS"
          ~doc:"Explicit schedule as transaction digits, e.g. 121122.")
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Run a catalog scenario at a level (with a witness schedule by default).")
    Term.(const run_scenario $ id_arg $ level_arg $ schedule_arg)

(* {2 run — ad-hoc workloads in the mini script syntax} *)

let run_script level init_text schedule_opt script_text =
  let fatal pp e =
    Fmt.epr "%a@." pp e;
    exit 1
  in
  let programs =
    match Workload.Script.parse script_text with
    | Ok ps -> ps
    | Error e -> fatal Workload.Script.pp_error e
  in
  let initial =
    match Workload.Script.parse_initial init_text with
    | Ok rows -> rows
    | Error e -> fatal Workload.Script.pp_error e
  in
  let cfg =
    Executor.config ~initial
      ~predicates:(Workload.Script.predicates_of programs)
      (List.map (fun _ -> level) programs)
  in
  let schedule =
    match schedule_opt with
    | Some digits ->
      List.init (String.length digits) (fun i ->
          Char.code digits.[i] - Char.code '0')
    | None ->
      (* Default: a round-robin interleaving, one operation per turn. *)
      let sizes = List.map (fun p -> Core.Program.length p + 1) programs in
      let n = List.length programs in
      List.concat
        (List.init
           (List.fold_left max 0 sizes)
           (fun _ -> List.init n (fun i -> i + 1)))
  in
  let r = Executor.run cfg programs ~schedule in
  Format.printf "level:    %s@." (L.name level);
  Format.printf "history:  %s@." (History.to_string r.Executor.history);
  Format.printf "final:    %s@."
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.Executor.final));
  List.iter
    (fun (t, st) -> Format.printf "T%d %a@." t Executor.pp_status st)
    r.Executor.statuses;
  Format.printf "blocked attempts: %d   deadlocks: %d@."
    r.Executor.blocked_attempts r.Executor.deadlock_aborts;
  (match Phenomena.Detect.exhibited r.Executor.history with
  | [] -> Format.printf "phenomena: none@."
  | ps ->
    Format.printf "phenomena: %s@."
      (String.concat ", " (List.map P.name ps)));
  let serializable =
    if History.Mv.is_mv r.Executor.history then
      History.Mv.is_one_copy_serializable r.Executor.history
    else History.Conflict.is_serializable r.Executor.history
  in
  Format.printf "serializable: %b@." serializable

let run_cmd =
  let script_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Workload in the mini syntax: transactions separated by '|', \
             statements by ';' - e.g.: r x; w y += 40 | r x; r y")
  in
  let init_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "init" ] ~docv:"ROWS" ~doc:"Initial rows, e.g. x=50, y=50")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "schedule" ] ~docv:"DIGITS"
          ~doc:"Interleaving as transaction digits (default round-robin).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run an ad-hoc workload at an isolation level and analyze the history.")
    Term.(const run_script $ level_arg $ init_arg $ schedule_arg $ script_arg)

(* {2 stress — the multicore runtime with its live oracle} *)

(* Wire SIGINT to the pool's drain flag: the first Ctrl-C finishes
   in-flight transactions, takes no new work, and still reports (trace,
   journal, oracle all intact); a second Ctrl-C kills the process. *)
let drain_on_sigint () =
  let stop = Atomic.make false in
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            if Atomic.get stop then Stdlib.exit 130
            else begin
              Atomic.set stop true;
              prerr_endline
                "draining: finishing in-flight transactions (Ctrl-C again to \
                 kill)"
            end))
   with Invalid_argument _ -> ());
  stop

(* Above this many transactions the full engine trace (and the
   polynomial oracle over it) stops being tenable; stress flips to the
   out-of-core pipeline unless --history forces it back on. *)
let out_of_core_threshold = 65_536

(* A fresh scratch directory under the system temp dir, for spilled
   journals of runs the user gave no --wal-dir. *)
let scratch_dir label =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "isolation_lab_%s_%d" label (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let wal_json_of (w : Storage.Wal.stats) =
  let hist =
    String.concat ","
      (List.map (fun (le, n) -> Printf.sprintf "\"%d\":%d" le n)
         w.Storage.Wal.w_batch_hist)
  in
  Printf.sprintf
    "{\"records\":%d,\"segments\":%d,\"disk_bytes\":%d,\"syncs\":%d,\"checkpoints\":%d,\"truncated_segments\":%d,\"batch_hist\":{%s}}"
    w.Storage.Wal.w_records w.Storage.Wal.w_segments
    w.Storage.Wal.w_disk_bytes w.Storage.Wal.w_syncs
    w.Storage.Wal.w_checkpoints w.Storage.Wal.w_truncated_segments hist

let stress workers level levels_spec mix_name txns duration accounts hot ops
    think seed fuw stripes coarse oracle_window certify wal_dir
    checkpoint_every history json_path trace_path telemetry_path =
  let mix =
    match Workload.Generators.mix_of_string mix_name with
    | Some m -> m
    | None ->
      Fmt.epr "unknown mix %S; available: %s@." mix_name
        (String.concat ", "
           (List.map Workload.Generators.mix_name Workload.Generators.all_mixes));
      exit 1
  in
  (* --levels: a mixed-isolation run. One engine family (the mix's
     weight plurality) executes everything; each transaction keeps the
     level it declared and runs at its in-family strengthening. *)
  let lmix = Option.map mix_spec_or_exit levels_spec in
  let lfam = Option.map Workload.Mix.family lmix in
  let criterion =
    if lmix = None then Runtime.Certifier.Serializability
    else Runtime.Certifier.Mixed
  in
  let gen i =
    let p =
      Workload.Generators.stress_program mix ~seed ~accounts ~hot ~ops ~index:i
    in
    match (lmix, lfam) with
    | Some m, Some fam ->
      let declared = Workload.Mix.draw m ~seed ~index:i in
      Runtime.Pool.job ~name:p.Core.Program.name ~declared
        ~level:(Isolation.Lattice.strengthen declared fam)
        p
    | _ -> Runtime.Pool.job ~name:p.Core.Program.name ~level p
  in
  let sink =
    match trace_path with
    | None -> None
    | Some _ -> Some (Trace.Sink.create ~workers:(max 1 workers) ())
  in
  let stop = drain_on_sigint () in
  (* Out-of-core decision: huge fixed-count runs drop the trace — the
     engine logs to its (checkpoint-truncated) WAL, the recorder spills
     its journal, and the online certifier carries the serializability
     verdict the oracle would otherwise give. *)
  let keep_history =
    match history with
    | Some b -> b
    | None -> duration <> None || txns <= out_of_core_threshold
  in
  let spill_dir =
    if keep_history then None else Some (scratch_dir "journal")
  in
  let cfg =
    Runtime.Pool.config ~workers
      ~initial:(Workload.Generators.bank_accounts accounts)
      ~first_updater_wins:fuw ~stripes ~coarse ?oracle_window ~think_us:think
      ~seed ?trace:sink ~certify ~criterion ?family:lfam ?wal_dir
      ~checkpoint_every ~keep_history ?spill_dir ~stop ()
  in
  if not keep_history then
    Format.printf
      "out-of-core: history off (%d txns > %d); checkpoints every %d \
       commits, journal spills to %s%s@."
      txns out_of_core_threshold checkpoint_every
      (Option.value ~default:"(memory)" spill_dir)
      (match wal_dir with
      | Some d -> Printf.sprintf ", wal segments in %s" d
      | None -> "");
  Format.printf
    "stress: %d workers, %s, mix %s, %s, %d accounts (%d hot), think \
     %.0fus, seed %d, %s@."
    cfg.Runtime.Pool.workers
    (match lmix with
    | Some m -> "levels " ^ Workload.Mix.to_string m ^ " (mixed criterion)"
    | None -> "level " ^ L.name level)
    (Workload.Generators.mix_name mix)
    (match duration with
    | Some d -> Printf.sprintf "%.2fs deadline" d
    | None -> Printf.sprintf "%d transactions" txns)
    accounts hot think seed
    (if coarse then "coarse latch"
     else Printf.sprintf "%d stripes" cfg.Runtime.Pool.stripes);
  (* --telemetry: a sampler thread scrapes the live runtime reading
     every second and appends Prometheus exposition blocks, one per
     scrape, so a run leaves a greppable time series behind. *)
  let telemetry_stop = ref false in
  let telemetry_threads = ref [] in
  let monitor =
    match telemetry_path with
    | None -> None
    | Some path ->
      Some
        (fun sampler ->
          let th =
            Thread.create
              (fun () ->
                Out_channel.with_open_text path (fun oc ->
                    let scrape () =
                      let live = sampler () in
                      Printf.fprintf oc "# scrape %.6f\n%s\n"
                        live.Runtime.Pool.at
                        (Telemetry.Report.to_prometheus
                           (Telemetry.Report.make live));
                      flush oc
                    in
                    scrape ();
                    (* the t=0 baseline; even a sub-second run leaves a
                       well-formed series *)
                    while not !telemetry_stop do
                      (* nap in 0.1s steps so the final join is prompt;
                         the loop body still cuts one last scrape after
                         the drain *)
                      let rec nap k =
                        if k > 0 && not !telemetry_stop then begin
                          Thread.delay 0.1;
                          nap (k - 1)
                        end
                      in
                      nap 10;
                      scrape ()
                    done))
              ()
          in
          telemetry_threads := th :: !telemetry_threads)
  in
  let r =
    match duration with
    | Some d -> Runtime.Pool.run_for ?monitor cfg ~duration_s:d ~gen
    | None -> Runtime.Pool.run_n ?monitor cfg ~txns ~gen
  in
  telemetry_stop := true;
  List.iter Thread.join !telemetry_threads;
  (match telemetry_path with
  | Some path -> Format.printf "telemetry time series written to %s@." path
  | None -> ());
  Format.printf "%a@." Runtime.Metrics.pp r.Runtime.Pool.metrics;
  (match r.Runtime.Pool.lock_stats with
  | Some s ->
    Format.printf "lock table: %d grants, %d conflicts, %d releases, %d upgrades@."
      s.Locking.Lock_table.grants s.Locking.Lock_table.conflicts
      s.Locking.Lock_table.releases s.Locking.Lock_table.upgrades
  | None -> ());
  let mem = Runtime.Sysmem.read () in
  Format.printf "memory: %a@." Runtime.Sysmem.pp mem;
  let wal_stats = Option.map Storage.Wal.stats r.Runtime.Pool.wal in
  (match wal_stats with
  | Some w
    when w.Storage.Wal.w_syncs > 0 || w.Storage.Wal.w_checkpoints > 0 ->
    Format.printf
      "wal: %d live records, %d segments (%d bytes on disk), %d fsync \
       batches, %d checkpoints, %d segments truncated@."
      w.Storage.Wal.w_records w.Storage.Wal.w_segments
      w.Storage.Wal.w_disk_bytes w.Storage.Wal.w_syncs
      w.Storage.Wal.w_checkpoints w.Storage.Wal.w_truncated_segments
  | _ -> ());
  let oracle = r.Runtime.Pool.oracle in
  (match oracle with
  | None ->
    Format.printf
      "oracle: skipped (out-of-core run keeps no history; the online \
       certifier carries the verdict)@."
  | Some oracle ->
    Format.printf "%a@." Runtime.Oracle.pp oracle;
    Format.printf "oracle verdict: %s@."
      (if Runtime.Oracle.pattern_free oracle then
         "CLEAN (no anomalies, no phenomenon patterns)"
       else if Runtime.Oracle.clean oracle then
         "CLEAN (serializable; pattern templates admitted, as a non-locking \
          scheduler may)"
       else if Runtime.Oracle.anomalies oracle = [] then
         "NOT SERIALIZABLE (dependency cycle outside the named anomaly \
          templates)"
       else "ANOMALIES DETECTED"));
  (match r.Runtime.Pool.mixed with
  | Some mx -> Format.printf "%a@." Runtime.Oracle.pp_mixed mx
  | None -> ());
  (match r.Runtime.Pool.certifier with
  | Some s ->
    Format.printf "%a@." Runtime.Certifier.pp_summary s;
    List.iteri
      (fun i v ->
        if i < 5 then
          Format.printf "  %a@." Runtime.Certifier.pp_violation v)
      s.Runtime.Certifier.violations
  | None -> ());
  let level_label =
    match lmix with
    | Some m -> Workload.Mix.to_string m
    | None -> L.name level
  in
  (match trace_path with
  | Some path ->
    let tmeta =
      Trace.Chrome.meta ~tool:"isolation_lab stress" ~level:level_label
        ~mix:(Workload.Generators.mix_name mix) ~workers ~seed
        ~history:(Trace.Render.history_line r.Runtime.Pool.history)
        ~dropped:r.Runtime.Pool.events_dropped ()
    in
    Trace.Chrome.write_file path tmeta r.Runtime.Pool.events;
    Format.printf "trace: %d events (%d dropped) written to %s@."
      (List.length r.Runtime.Pool.events)
      r.Runtime.Pool.events_dropped path
  | None -> ());
  (match
     Option.map (fun o -> o.Runtime.Oracle.witnesses) oracle
     |> Option.value ~default:[]
   with
  | [] -> ()
  | ws ->
    Format.printf "@.anomaly provenance:@.";
    List.iter
      (fun w ->
        Trace.Render.provenance ~events:r.Runtime.Pool.events
          Format.std_formatter ~history:r.Runtime.Pool.history w;
        Format.printf "@.")
      ws);
  (match json_path with
  | Some path ->
    let lock_json =
      match r.Runtime.Pool.lock_stats with
      | None -> ""
      | Some s ->
        Printf.sprintf
          ",\"lock_table\":{\"grants\":%d,\"conflicts\":%d,\"releases\":%d,\"upgrades\":%d}"
          s.Locking.Lock_table.grants s.Locking.Lock_table.conflicts
          s.Locking.Lock_table.releases s.Locking.Lock_table.upgrades
    in
    let certifier_json =
      match r.Runtime.Pool.certifier with
      | None -> ""
      | Some s -> ",\"certifier\":" ^ Runtime.Certifier.to_json s
    in
    let oracle_json =
      match oracle with
      | None -> ""
      | Some o -> ",\"oracle\":" ^ Runtime.Oracle.to_json o
    in
    let mixed_json =
      match r.Runtime.Pool.mixed with
      | None -> ""
      | Some mx -> ",\"mixed\":" ^ Runtime.Oracle.mixed_to_json mx
    in
    let wal_json =
      match wal_stats with
      | None -> ""
      | Some w -> ",\"wal\":" ^ wal_json_of w
    in
    let json =
      Printf.sprintf
        "{\"level\":%S,\"mix\":%S,\"workers\":%d,\"txns\":%d,\"metrics\":%s,\"memory\":%s%s%s%s%s%s}"
        level_label
        (Workload.Generators.mix_name mix)
        workers txns
        (Runtime.Metrics.to_json r.Runtime.Pool.metrics)
        (Runtime.Sysmem.to_json mem) oracle_json mixed_json lock_json
        certifier_json wal_json
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc json;
        Out_channel.output_string oc "\n");
    Format.printf "metrics written to %s@." path
  | None -> ());
  (* Levels that promise serializability turn the oracle into an
     assertion: a dirty history is an engine bug, not a workload fact.
     2PL SERIALIZABLE must be pattern-free — locking prevents the very
     templates; SSI and T/O admit patterns but must show no anomaly.
     --certify adds its own promise at *any* level: the certifier dooms
     cycle closers before they commit, so the committed projection must
     come back acyclic (anomalies that need no cycle — e.g. a dirty
     read whose writer aborts — are still observed and reported). *)
  let assertion =
    match oracle with
    | None -> None (* no history kept; the certifier below decides *)
    | Some o -> (
      match (lmix, level) with
      | Some _, _ ->
        (* mixed run: no single-level promise to assert — the per-victim
           verdict is reported, and --certify's promise (mixed_ok) is
           judged below *)
        None
      | None, L.Serializable -> Some (Runtime.Oracle.pattern_free o)
      | None, (L.Serializable_snapshot | L.Timestamp_ordering) ->
        Some (Runtime.Oracle.clean o)
      | None, _ -> None)
  in
  (* --certify's promise is judged by the online certifier itself: its
     finalized verdict is exact on the committed projection whether or
     not a history was kept for the oracle. Under the mixed criterion
     the promise is mixed_ok — every transaction got the protection its
     declared level demands — not global serializability. *)
  let certify_ok =
    (not certify)
    || (match r.Runtime.Pool.certifier with
       | Some s ->
         if criterion = Runtime.Certifier.Mixed then
           s.Runtime.Certifier.mixed_ok
         else s.Runtime.Certifier.serializable
       | None -> true)
  in
  match assertion with
  | Some false -> exit 1
  | _ -> if not certify_ok then exit 1

let stress_cmd =
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let mix_arg =
    Arg.(
      value & opt string "hotspot"
      & info [ "m"; "mix" ] ~docv:"MIX"
          ~doc:"Workload mix: transfer, hotspot, read-heavy, mixed.")
  in
  let txns_arg =
    Arg.(
      value & opt int 256
      & info [ "n"; "txns" ] ~docv:"N"
          ~doc:
            "Transactions to run (ignored with --duration). The post-run \
             oracle is polynomial in history size; thousands of \
             transactions make it slow.")
  in
  let duration_arg =
    Arg.(
      value & opt (some float) None
      & info [ "d"; "duration" ] ~docv:"SECONDS"
          ~doc:"Run until the deadline instead of a fixed transaction count.")
  in
  let accounts_arg =
    Arg.(
      value & opt int 16
      & info [ "accounts" ] ~docv:"N" ~doc:"Rows in the bank table.")
  in
  let hot_arg =
    Arg.(
      value & opt int 4
      & info [ "hot" ] ~docv:"N"
          ~doc:"Size of the contended key set for the hotspot mix.")
  in
  let ops_arg =
    Arg.(
      value & opt int 6
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per mixed-mix transaction.")
  in
  let think_arg =
    Arg.(
      value & opt float 100.
      & info [ "think" ] ~docv:"MICROSECONDS"
          ~doc:
            "Mean think time between a transaction's statements. This is \
             what makes transactions overlap; 0 measures raw serial \
             engine throughput.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload and backoff-jitter seed.")
  in
  let fuw_arg =
    Arg.(
      value & flag
      & info [ "first-updater-wins" ]
          ~doc:"Use the First-Updater-Wins variant of Snapshot Isolation.")
  in
  let stripes_arg =
    Arg.(
      value & opt int Runtime.Pool.default_stripes
      & info [ "stripes" ] ~docv:"N"
          ~doc:
            "Key stripes for the striped execution path (locking engines; \
             one extra stripe serializes predicate locking). Each engine \
             step takes only the stripes its footprint touches.")
  in
  let coarse_arg =
    Arg.(
      value & flag
      & info [ "coarse" ]
          ~doc:
            "Serialize every engine step under one coarse latch (a single \
             stripe with every footprint widened to the whole store) — the \
             pre-striping behavior, kept as the comparison baseline.")
  in
  let oracle_window_arg =
    Arg.(
      value & opt (some int) None
      & info [ "oracle-window" ] ~docv:"N"
          ~doc:
            "Run the post-run anomaly detectors over sliding N-transaction \
             windows instead of the whole history (reports stay sound; \
             counts become per-window lower bounds). Serializability is \
             still decided on the full history by an incremental-graph \
             replay, so cross-window cycles are never missed. Makes long \
             runs checkable.")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Certify serializability online: feed every recorded action to \
             the incremental dependency graph and abort a transaction the \
             moment its action closes a cycle, before it can commit. Works \
             at any isolation level — anomalies are certified away rather \
             than observed; the run fails if the committed projection still \
             has a cycle. Adds certifier_aborts to the metrics, dep_edge / \
             dep_cycle events to the trace, and a certifier section (with \
             per-kind wr/ww/rw edge counts) to the JSON.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write metrics and the oracle verdict as JSON.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a structured event trace (attempts, engine steps, lock \
             traffic, backoff sleeps, deadlocks) and write it as Chrome \
             trace_event JSON — loadable in chrome://tracing or Perfetto, \
             and re-renderable with $(b,isolation_lab explain).")
  in
  let telemetry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Scrape the live runtime once a second while the run is in \
             flight and append each reading as a Prometheus text-format \
             block (separated by $(b,# scrape) timestamp comments) — a \
             time series of the run, not just its final totals.")
  in
  let wal_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Keep the locking engine's write-ahead log in segmented files \
             under DIR (created if missing) instead of in memory. Commit \
             records reach the disk through group commit: one fsync covers \
             every commit that queued behind it.")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 10_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Commits between WAL checkpoints (0 = never). A checkpoint \
             logs the committed store image plus the undo journals of the \
             in-flight transactions and truncates everything older, so \
             the log stays bounded however long the run.")
  in
  let history_arg =
    Arg.(
      value & opt (some bool) None
      & info [ "history" ] ~docv:"BOOL"
          ~doc:
            "Keep the full engine trace and run the post-run oracle over \
             it. Defaults to true up to 65536 transactions (and for \
             --duration runs), false above — the out-of-core mode, where \
             the attempt journal spills to disk and the online certifier \
             ($(b,--certify)) carries the serializability verdict.")
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Drive the engines with concurrent worker domains and check the \
          recorded history with the serializability oracle.")
    Term.(
      const stress $ workers_arg $ level_arg $ levels_spec_arg $ mix_arg
      $ txns_arg $ duration_arg $ accounts_arg $ hot_arg $ ops_arg $ think_arg
      $ seed_arg $ fuw_arg $ stripes_arg $ coarse_arg $ oracle_window_arg
      $ certify_arg $ wal_dir_arg $ checkpoint_arg $ history_arg $ json_arg
      $ trace_arg $ telemetry_arg)

(* {2 chaos — stress under deterministic fault injection} *)

let chaos workers level levels_spec mix_name txns accounts hot ops think seed
    fuw stripes coarse oracle_window certify faults stall_us deadline_ms
    watchdog_ms crash_points crash_sample json_path trace_path =
  let mix =
    match Workload.Generators.mix_of_string mix_name with
    | Some m -> m
    | None ->
      Fmt.epr "unknown mix %S; available: %s@." mix_name
        (String.concat ", "
           (List.map Workload.Generators.mix_name Workload.Generators.all_mixes));
      exit 1
  in
  if faults < 0. || faults > 1. then begin
    Fmt.epr "--faults must be in [0, 1]@.";
    exit 1
  end;
  (* --levels: same mixed-isolation shape as stress — one engine family
     (weight plurality), per-transaction declared levels, the mixed
     criterion for the verdict. *)
  let lmix = Option.map mix_spec_or_exit levels_spec in
  let lfam = Option.map Workload.Mix.family lmix in
  let criterion =
    if lmix = None then Runtime.Certifier.Serializability
    else Runtime.Certifier.Mixed
  in
  let gen i =
    let p =
      Workload.Generators.stress_program mix ~seed ~accounts ~hot ~ops ~index:i
    in
    match (lmix, lfam) with
    | Some m, Some fam ->
      let declared = Workload.Mix.draw m ~seed ~index:i in
      Runtime.Pool.job ~name:p.Core.Program.name ~declared
        ~level:(Isolation.Lattice.strengthen declared fam)
        p
    | _ -> Runtime.Pool.job ~name:p.Core.Program.name ~level p
  in
  let sink =
    match trace_path with
    | None -> None
    | Some _ -> Some (Trace.Sink.create ~workers:(max 1 workers) ())
  in
  let plan =
    if faults <= 0. then None
    else
      (* Stalls must fit inside the deadline budget, or every stalled
         attempt blows its deadline and the run never drains. *)
      let stall_us =
        match (stall_us, deadline_ms) with
        | Some us, _ -> us
        | None, Some d -> Float.min 2000. (d *. 1000. /. 4.)
        | None, None -> 2000.
      in
      Some (Fault.Plan.chaos ~stall_us ~rate:faults ~seed ())
  in
  let initial = Workload.Generators.bank_accounts accounts in
  let stop = drain_on_sigint () in
  let cfg =
    Runtime.Pool.config ~workers ~initial ~first_updater_wins:fuw ~stripes
      ~coarse ?oracle_window ~certify ~criterion ?family:lfam ~think_us:think
      ~seed ?trace:sink ?fault:plan
      ?deadline_us:(Option.map (fun ms -> ms *. 1000.) deadline_ms)
      ?watchdog_us:(Option.map (fun ms -> ms *. 1000.) watchdog_ms)
      ~stop ()
  in
  Format.printf
    "chaos: %d workers, %s, mix %s, %d transactions, fault rate %g, \
     %s deadline, %s watchdog, seed %d@."
    cfg.Runtime.Pool.workers
    (match lmix with
    | Some m -> "levels " ^ Workload.Mix.to_string m ^ " (mixed criterion)"
    | None -> "level " ^ L.name level)
    (Workload.Generators.mix_name mix)
    txns faults
    (match deadline_ms with
    | Some d -> Printf.sprintf "%.1fms" d
    | None -> "no")
    (match watchdog_ms with
    | Some w -> Printf.sprintf "%.1fms" w
    | None -> "no")
    seed;
  let r = Runtime.Pool.run cfg (Array.init txns gen) in
  let m = r.Runtime.Pool.metrics in
  Format.printf "%a@." Runtime.Metrics.pp m;
  (match plan with
  | Some p ->
    Format.printf "faults injected: %d (%s)@." (Fault.Plan.total p)
      (String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%s %d" k n)
            (Fault.Plan.injected p)))
  | None -> Format.printf "faults injected: none (rate 0)@.");
  let oracle = (Option.get r.Runtime.Pool.oracle) in
  Format.printf "%a@." Runtime.Oracle.pp oracle;
  Format.printf "oracle verdict: %s@."
    (if Runtime.Oracle.pattern_free oracle then
       "CLEAN (no anomalies, no phenomenon patterns)"
     else if Runtime.Oracle.clean oracle then
       "CLEAN (serializable; pattern templates admitted, as a non-locking \
        scheduler may)"
     else if Runtime.Oracle.anomalies oracle = [] then
       "NOT SERIALIZABLE (dependency cycle outside the named anomaly \
        templates)"
     else "ANOMALIES DETECTED");
  (match r.Runtime.Pool.mixed with
  | Some mx -> Format.printf "%a@." Runtime.Oracle.pp_mixed mx
  | None -> ());
  (match r.Runtime.Pool.certifier with
  | Some s ->
    Format.printf "%a@." Runtime.Certifier.pp_summary s;
    List.iteri
      (fun i v ->
        if i < 5 then
          Format.printf "  %a@." Runtime.Certifier.pp_violation v)
      s.Runtime.Certifier.violations
  | None -> ());
  (* Conservation check: the surviving store must equal a replay of the
     WAL's committed transactions over the initial state — no committed
     effect lost, none duplicated, nothing from an aborted attempt. The
     locking and timestamp engines replay single-version records; the
     multiversion engine replays the versioned record set and compares
     latest visible rows. *)
  let family =
    match lfam with
    | Some f -> f
    | None -> Core.Engine.family_of_levels [ level ]
  in
  let initial_store = Storage.Store.of_list initial in
  let effects_ok =
    match r.Runtime.Pool.wal with
    | None -> None
    | Some wal ->
      let ok =
        match family with
        | `Mv ->
          let ideal = Storage.Recovery.ideal_mv ~initial wal in
          List.sort compare (Storage.Version_store.to_latest_list ideal)
          = List.sort compare r.Runtime.Pool.final
        | `Locking | `Timestamp ->
          let ideal = Storage.Recovery.ideal_state ~initial:initial_store wal in
          Storage.Store.equal (Storage.Store.of_list r.Runtime.Pool.final) ideal
      in
      Format.printf "committed effects: %s@."
        (if ok then "CONSERVED (final state = committed WAL replay)"
         else "LOST OR DUPLICATED (final state differs from committed WAL \
               replay)");
      Some ok
  in
  (* P0-free levels must recover at every crash point; a Degree 0 run
     admitting dirty writes is *expected* to fail somewhere — that is the
     paper's §3 argument made executable. *)
  (* With a mix, the crash assertion only applies if *every* declared
     level forbids P0: one Degree-0 transaction in the mix already makes
     unrecoverable crash points the expected finding. *)
  let p0_free =
    match lmix with
    | Some m ->
      List.for_all
        (fun l -> List.mem P.P0 (Isolation.Spec.forbidden l))
        (Workload.Mix.levels m)
    | None -> List.mem P.P0 (Isolation.Spec.forbidden level)
  in
  let crash_report =
    match (crash_points, r.Runtime.Pool.wal) with
    | false, _ -> None
    | true, None -> None (* unreachable: every family logs *)
    | true, Some wal ->
      let report =
        match family with
        | `Mv ->
          Fault.Crash.enumerate_mv ?sample:crash_sample ~seed ~initial wal
        | `Locking | `Timestamp ->
          Fault.Crash.enumerate ?sample:crash_sample ~seed
            ~initial:initial_store wal
      in
      Format.printf "%a@." Fault.Crash.pp report;
      if (not (Fault.Crash.ok report)) && not p0_free then
        Format.printf
          "  (expected: %s admits P0, so before-image undo is unsound — \
           the paper's section 3 dilemma)@."
          (match lmix with
          | Some m -> "the mix " ^ Workload.Mix.to_string m
          | None -> L.name level);
      Some report
  in
  (match trace_path with
  | Some path ->
    (match (sink, crash_report) with
    | Some s, Some rep ->
      Trace.Sink.emit_external s ~worker:0 ~tid:0
        (Trace.Event.Crash_replay
           {
             points = rep.Fault.Crash.points + rep.Fault.Crash.torn_points;
             torn = rep.Fault.Crash.torn_points;
             failures = List.length rep.Fault.Crash.failures;
           })
    | _ -> ());
    let events =
      match sink with Some s -> Trace.Sink.events s | None -> r.Runtime.Pool.events
    in
    let tmeta =
      Trace.Chrome.meta ~tool:"isolation_lab chaos"
        ~level:
          (match lmix with
          | Some m -> Workload.Mix.to_string m
          | None -> L.name level)
        ~mix:(Workload.Generators.mix_name mix) ~workers ~seed
        ~history:(Trace.Render.history_line r.Runtime.Pool.history)
        ~dropped:r.Runtime.Pool.events_dropped ()
    in
    Trace.Chrome.write_file path tmeta events;
    Format.printf "trace: %d events (%d dropped) written to %s@."
      (List.length events) r.Runtime.Pool.events_dropped path
  | None -> ());
  (match json_path with
  | Some path ->
    let fault_json =
      match plan with
      | None -> "{}"
      | Some p ->
        Printf.sprintf "{%s}"
          (String.concat ","
             (List.map
                (fun (k, n) -> Printf.sprintf "%S:%d" k n)
                (Fault.Plan.injected p)))
    in
    let chaos_json =
      Printf.sprintf
        "{\"fault_rate\":%g,\"faults_injected\":%d,\"by_class\":%s,\"deadline_exceeded\":%d,\"watchdog_kicks\":%d,\"effects_ok\":%s,\"crash_points\":%s}"
        faults m.Runtime.Metrics.faults_injected fault_json
        m.Runtime.Metrics.deadline_exceeded m.Runtime.Metrics.watchdog_kicks
        (match effects_ok with
        | Some b -> string_of_bool b
        | None -> "null")
        (match crash_report with
        | Some rep -> Fault.Crash.to_json rep
        | None -> "null")
    in
    let certifier_json =
      match r.Runtime.Pool.certifier with
      | None -> ""
      | Some s -> ",\"certifier\":" ^ Runtime.Certifier.to_json s
    in
    let json =
      Printf.sprintf
        "{\"level\":%S,\"mix\":%S,\"workers\":%d,\"metrics\":%s,\"memory\":%s,\"oracle\":%s%s%s,\"chaos\":%s}"
        (match lmix with
        | Some mx -> Workload.Mix.to_string mx
        | None -> L.name level)
        (Workload.Generators.mix_name mix)
        workers
        (Runtime.Metrics.to_json m)
        (Runtime.Sysmem.to_json (Runtime.Sysmem.read ()))
        (Runtime.Oracle.to_json oracle)
        (match r.Runtime.Pool.mixed with
        | Some mx -> ",\"mixed\":" ^ Runtime.Oracle.mixed_to_json mx
        | None -> "")
        certifier_json chaos_json
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc json;
        Out_channel.output_string oc "\n");
    Format.printf "metrics written to %s@." path
  | None -> ());
  (* Failure conditions: a serializable-level oracle violation, lost or
     duplicated committed effects, or a crash point a P0-free level
     failed to recover from. Degree 0 crash failures are the expected
     finding, not an error. *)
  let oracle_ok =
    match lmix with
    | Some _ ->
      (* Under a mixed criterion, single-level assertions do not apply:
         harm is judged per victim and only enforced by --certify. *)
      true
    | None -> (
      match level with
      | L.Serializable -> Runtime.Oracle.pattern_free oracle
      | L.Serializable_snapshot | L.Timestamp_ordering ->
        Runtime.Oracle.clean oracle
      | _ -> true)
  in
  let effects_fine = match effects_ok with Some false -> false | _ -> true in
  let crash_fine =
    match crash_report with
    | Some rep when p0_free -> Fault.Crash.ok rep
    | _ -> true
  in
  let certify_ok =
    (not certify)
    ||
    match criterion with
    | Runtime.Certifier.Mixed -> (
      match r.Runtime.Pool.certifier with
      | Some s -> s.Runtime.Certifier.mixed_ok
      | None -> oracle.Runtime.Oracle.serializable)
    | Runtime.Certifier.Serializability -> oracle.Runtime.Oracle.serializable
  in
  if not (oracle_ok && effects_fine && crash_fine && certify_ok) then exit 1

let chaos_cmd =
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let mix_arg =
    Arg.(
      value & opt string "hotspot"
      & info [ "m"; "mix" ] ~docv:"MIX"
          ~doc:"Workload mix: transfer, hotspot, read-heavy, mixed.")
  in
  let txns_arg =
    Arg.(
      value & opt int 128
      & info [ "n"; "txns" ] ~docv:"N" ~doc:"Transactions to run.")
  in
  let accounts_arg =
    Arg.(
      value & opt int 16
      & info [ "accounts" ] ~docv:"N" ~doc:"Rows in the bank table.")
  in
  let hot_arg =
    Arg.(
      value & opt int 4
      & info [ "hot" ] ~docv:"N"
          ~doc:"Size of the contended key set for the hotspot mix.")
  in
  let ops_arg =
    Arg.(
      value & opt int 6
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per mixed-mix transaction.")
  in
  let think_arg =
    Arg.(
      value & opt float 100.
      & info [ "think" ] ~docv:"MICROSECONDS"
          ~doc:"Mean think time between a transaction's statements.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seeds the workload, the backoff jitter and every fault \
             decision: the same seed injects the same faults at the same \
             transactions regardless of interleaving.")
  in
  let fuw_arg =
    Arg.(
      value & flag
      & info [ "first-updater-wins" ]
          ~doc:"Use the First-Updater-Wins variant of Snapshot Isolation.")
  in
  let stripes_arg =
    Arg.(
      value & opt int Runtime.Pool.default_stripes
      & info [ "stripes" ] ~docv:"N"
          ~doc:"Key stripes for the striped execution path.")
  in
  let coarse_arg =
    Arg.(
      value & flag
      & info [ "coarse" ] ~doc:"Serialize every engine step under one latch.")
  in
  let oracle_window_arg =
    Arg.(
      value & opt (some int) None
      & info [ "oracle-window" ] ~docv:"N"
          ~doc:
            "Run the post-run anomaly detectors over sliding N-transaction \
             windows; serializability is still decided on the full history \
             by an incremental-graph replay.")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Certify serializability online: abort a transaction the moment \
             one of its actions closes a dependency cycle. The run fails if \
             the committed projection still has a cycle.")
  in
  let faults_arg =
    Arg.(
      value & opt float 0.05
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Fault rate in [0,1]: worker stalls and torn commits fire at \
             RATE per injection point, spurious step failures and forced \
             deadlock victims at RATE/2. 0 disables injection.")
  in
  let stall_us_arg =
    Arg.(
      value & opt (some float) None
      & info [ "stall-us" ] ~docv:"MICROSECONDS"
          ~doc:
            "Injected stall length. Default 2000, clamped to a quarter of \
             the deadline so stalled attempts can still commit.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-attempt wall-clock budget: an attempt past it aborts \
             itself gracefully and the job retries.")
  in
  let watchdog_arg =
    Arg.(
      value & opt (some float) (Some 25.)
      & info [ "watchdog-ms" ] ~docv:"MS"
          ~doc:
            "Stuck-worker threshold for the watchdog domain (report-only). \
             Default 25ms; pass 0 to disable.")
  in
  let crash_points_arg =
    Arg.(
      value & flag
      & info [ "crash-points" ]
          ~doc:
            "After the run, replay recovery at every WAL prefix and every \
             torn mid-record tail, checking each crash image against the \
             committed-only ideal state (single-version engines) or the \
             committed-stamped version store (multiversion family).")
  in
  let crash_sample_arg =
    Arg.(
      value & opt (some int) None
      & info [ "crash-sample" ] ~docv:"N"
          ~doc:
            "With --crash-points, check at most N seeded-random points per \
             category (clean prefixes, torn tails) instead of all of them. \
             The empty prefix, the full log and every torn Commit/Abort \
             record are always checked; the draw is deterministic in \
             --seed. Turns the O(n^2) exhaustive replay into O(N n) for \
             long logs.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write metrics, the oracle verdict and the chaos section \
             (fault counts, effects conservation, crash-point report) as \
             JSON.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the structured event trace — including fault_inject, \
             deadline_exceeded, watchdog and crash_replay events — as \
             Chrome trace_event JSON.")
  in
  let watchdog_term =
    Term.(
      const (fun w -> match w with Some t when t <= 0. -> None | w -> w)
      $ watchdog_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Stress the engines under deterministic seeded fault injection — \
          worker stalls, spurious failures, forced deadlock victims, torn \
          WAL commits, transaction deadlines — then check that the oracle \
          is clean, committed effects are conserved, and (with \
          $(b,--crash-points)) recovery succeeds at every crash point.")
    Term.(
      const chaos $ workers_arg $ level_arg $ levels_spec_arg $ mix_arg
      $ txns_arg
      $ accounts_arg $ hot_arg $ ops_arg $ think_arg $ seed_arg $ fuw_arg
      $ stripes_arg $ coarse_arg $ oracle_window_arg $ certify_arg
      $ faults_arg $ stall_us_arg $ deadline_arg $ watchdog_term
      $ crash_points_arg $ crash_sample_arg $ json_arg $ trace_arg)

(* {2 explain — re-render a recorded trace} *)

let explain file txn show_log limit =
  match Trace.Chrome.read_file file with
  | Error e ->
    Fmt.epr "explain: %s@." e;
    exit 1
  | Ok (meta, events) ->
    let spans = Trace.Span.of_events events in
    Format.printf "%s: level %s, mix %s, %d workers, seed %d@."
      meta.Trace.Chrome.tool meta.Trace.Chrome.level meta.Trace.Chrome.mix
      meta.Trace.Chrome.workers meta.Trace.Chrome.seed;
    if meta.Trace.Chrome.dropped > 0 then
      Format.printf
        "flight recorder dropped %d events; the oldest timelines may be \
         truncated@."
        meta.Trace.Chrome.dropped;
    let history =
      match History.Parser.parse meta.Trace.Chrome.history with
      | Ok h -> Some h
      | Error _ -> None
    in
    (match txn with
    | Some tid -> (
      match Trace.Span.find spans tid with
      | None ->
        Fmt.epr "explain: no transaction %d in the trace@." tid;
        exit 1
      | Some span -> Format.printf "%a@." Trace.Render.transaction span)
    | None ->
      Format.printf "%d events, %d transaction attempts, retry overhead \
                     %.3fms@."
        (List.length events) (List.length spans)
        (float (Trace.Span.retry_overhead_ns spans) /. 1e6);
      (match history with
      | Some h -> Format.printf "history: %s@." (Trace.Render.history_line h)
      | None -> ());
      Format.printf "%a@." Trace.Render.timeline spans;
      if show_log then
        Format.printf "%a@."
          (fun ppf -> Trace.Render.event_log ?limit ppf)
          events;
      (* Anomaly view: re-run the oracle on the embedded history and map
         each witness back onto the recorded interleaving. *)
      match history with
      | None ->
        Format.printf
          "no parseable history in the trace file; skipping the anomaly \
           check@."
      | Some h ->
        let oracle = Runtime.Oracle.check h in
        (match Runtime.Oracle.anomalies oracle with
        | [] ->
          Format.printf "oracle: %s@."
            (if Runtime.Oracle.clean oracle then "serializable, no anomalies"
             else "NOT SERIALIZABLE (dependency cycle outside the named \
                   anomaly templates)")
        | anoms ->
          Format.printf "oracle: anomalies detected: %s@."
            (String.concat ", "
               (List.map
                  (fun (p, n) -> Printf.sprintf "%s x%d" (P.name p) n)
                  anoms)));
        (* Certifier provenance: when the run was traced with --certify,
           each dep_cycle event records which dependency-edge class (wr,
           ww or rw) would have closed a cycle, and on whom. *)
        (match
           List.filter_map
             (fun (e : Trace.Event.t) ->
               match e.Trace.Event.kind with
               | Trace.Event.Dep_cycle { cycle; dep; src; dst; victim_level } ->
                 Some (cycle, dep, src, dst, victim_level)
               | _ -> None)
             events
         with
        | [] -> ()
        | cycles ->
          let shown_max = 10 in
          Format.printf "@.certified cycles (closing edge class):@.";
          List.iteri
            (fun i (cycle, dep, src, dst, victim_level) ->
              if i < shown_max then
                Format.printf "  %s: closed by %s edge T%d -> T%d%s@."
                  (String.concat " -> "
                     (List.map (fun t -> "T" ^ string_of_int t) cycle))
                  dep src dst
                  (match victim_level with
                  | None -> ""
                  | Some l -> " (victim declared " ^ l ^ ")"))
            cycles;
          let n = List.length cycles in
          if n > shown_max then
            Format.printf "  ... and %d more@." (n - shown_max));
        match oracle.Runtime.Oracle.witnesses with
        | [] -> ()
        | ws ->
          Format.printf "@.anomaly provenance:@.";
          List.iter
            (fun w ->
              Trace.Render.provenance ~events Format.std_formatter ~history:h
                w;
              Format.printf "@.")
            ws)

(* {2 serve / loadgen — the wire-protocol front-end} *)

let family_of_string = function
  | "locking" | "lock" -> Some `Locking
  | "mv" | "multiversion" | "snapshot" -> Some `Mv
  | "timestamp" | "to" | "t/o" -> Some `Timestamp
  | _ -> None

let family_name = function
  | `Locking -> "locking"
  | `Mv -> "multiversion"
  | `Timestamp -> "timestamp"

let serve workers family_str level criterion_str port host accounts stripes
    coarse certify certify_batch oracle_window wal_dir checkpoint_every history
    duration drain_grace seed disconnect_rate trace_path json_path
    telemetry_port =
  let family =
    match family_of_string (String.lowercase_ascii family_str) with
    | Some f -> f
    | None ->
      Fmt.epr "unknown engine family %S (locking, mv, timestamp)@." family_str;
      exit 1
  in
  let criterion =
    match String.lowercase_ascii criterion_str with
    | "serializable" | "serializability" | "ser" ->
      Runtime.Certifier.Serializability
    | "mixed" -> Runtime.Certifier.Mixed
    | other ->
      Fmt.epr "unknown criterion %S (serializable, mixed)@." other;
      exit 1
  in
  if L.family level <> family then begin
    Fmt.epr "default level %s needs the %s family, not %s@." (L.name level)
      (family_name (L.family level))
      (family_name family);
    exit 1
  end;
  if disconnect_rate < 0. || disconnect_rate > 1. then begin
    Fmt.epr "--disconnect-rate must be in [0, 1]@.";
    exit 1
  end;
  let sink =
    match trace_path with
    | None -> None
    | Some _ -> Some (Trace.Sink.create ~workers:(max 1 workers) ())
  in
  let fault =
    if disconnect_rate <= 0. then None
    else Some (Fault.Plan.create ~disconnect_rate ~seed ())
  in
  let stop = drain_on_sigint () in
  let oracle_window = if oracle_window = 0 then None else Some oracle_window in
  (* Long-lived servers can outgrow any in-memory history: --history \
     false drops the trace and the post-run oracle (the online certifier \
     still certifies when --certify) and spills the attempt journal. *)
  let keep_history = Option.value ~default:true history in
  let spill_dir =
    if keep_history then None else Some (scratch_dir "serve_journal")
  in
  let pool =
    Runtime.Pool.config ~workers
      ~initial:(Workload.Generators.bank_accounts accounts)
      ~stripes ~coarse ~certify ~certify_batch ~criterion ?oracle_window ~seed
      ?trace:sink ?fault ?wal_dir ~checkpoint_every ~keep_history ?spill_dir ()
  in
  let cfg =
    Server.Frontend.config ~host ~port ~default_level:level
      ~drain_grace_s:drain_grace ?duration_s:duration ~stop
      ~on_ready:(fun p ->
        Format.printf
          "serving on %s:%d (%d workers, %s family, default %s%s%s)@." host p
          workers (family_name family) (L.name level)
          (if certify then ", certified" else "")
          (if criterion = Runtime.Certifier.Mixed then ", mixed criterion"
           else "");
        Format.print_flush ())
      ?telemetry_port
      ~telemetry_ready:(fun p ->
        Format.printf "telemetry on http://%s:%d/metrics@." host p;
        Format.print_flush ())
      ~pool ~family ()
  in
  let r, stats = Server.Frontend.serve cfg in
  Format.printf "%a@." Server.Frontend.pp_stats stats;
  Format.printf "%a@." Runtime.Metrics.pp r.Runtime.Pool.metrics;
  Format.printf "memory: %a@." Runtime.Sysmem.pp (Runtime.Sysmem.read ());
  (match r.Runtime.Pool.oracle with
  | Some o -> Format.printf "%a@." Runtime.Oracle.pp o
  | None ->
    Format.printf
      "oracle: skipped (--history false; the online certifier carries the \
       verdict)@.");
  (match r.Runtime.Pool.mixed with
  | Some mx -> Format.printf "%a@." Runtime.Oracle.pp_mixed mx
  | None -> ());
  (match r.Runtime.Pool.certifier with
  | Some s -> Format.printf "%a@." Runtime.Certifier.pp_summary s
  | None -> ());
  (match trace_path with
  | Some path ->
    let tmeta =
      Trace.Chrome.meta ~tool:"isolation_lab serve" ~level:(L.name level)
        ~mix:"wire" ~workers ~seed
        ~history:(Trace.Render.history_line r.Runtime.Pool.history)
        ~dropped:r.Runtime.Pool.events_dropped ()
    in
    Trace.Chrome.write_file path tmeta r.Runtime.Pool.events;
    Format.printf "trace: %d events (%d dropped) written to %s@."
      (List.length r.Runtime.Pool.events)
      r.Runtime.Pool.events_dropped path
  | None -> ());
  (match json_path with
  | Some path ->
    let certifier_json =
      match r.Runtime.Pool.certifier with
      | None -> ""
      | Some s -> ",\"certifier\":" ^ Runtime.Certifier.to_json s
    in
    let oracle_json =
      match r.Runtime.Pool.oracle with
      | None -> ""
      | Some o -> ",\"oracle\":" ^ Runtime.Oracle.to_json o
    in
    let mixed_json =
      match r.Runtime.Pool.mixed with
      | None -> ""
      | Some mx -> ",\"mixed\":" ^ Runtime.Oracle.mixed_to_json mx
    in
    let json =
      Printf.sprintf
        "{\"family\":%S,\"default_level\":%S,\"criterion\":%S,\"workers\":%d,\"server\":{\"conns\":%d,\"sessions\":%d,\"frames\":%d,\"protocol_errors\":%d,\"disconnects\":%d},\"metrics\":%s,\"memory\":%s%s%s%s}"
        (family_name family) (L.name level)
        (match criterion with
        | Runtime.Certifier.Mixed -> "mixed"
        | Runtime.Certifier.Serializability -> "serializable")
        workers stats.Server.Frontend.conns stats.Server.Frontend.sessions
        stats.Server.Frontend.frames stats.Server.Frontend.protocol_errors
        stats.Server.Frontend.disconnects
        (Runtime.Metrics.to_json r.Runtime.Pool.metrics)
        (Runtime.Sysmem.to_json (Runtime.Sysmem.read ()))
        oracle_json mixed_json certifier_json
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc json;
        Out_channel.output_string oc "\n");
    Format.printf "server report written to %s@." path
  | None -> ());
  (* --certify is a promise at any level: the committed projection must
     come back acyclic under the chosen criterion — fully acyclic for
     serializability, free of forbidden-for-the-victim cycles for mixed.
     The certifier's own finalized verdict judges it, so the promise
     holds with or without a kept history. *)
  let certified_ok =
    match r.Runtime.Pool.certifier with
    | Some s -> (
      match criterion with
      | Runtime.Certifier.Mixed -> s.Runtime.Certifier.mixed_ok
      | Runtime.Certifier.Serializability -> s.Runtime.Certifier.serializable)
    | None -> (
      match r.Runtime.Pool.oracle with
      | Some o -> o.Runtime.Oracle.serializable
      | None -> true)
  in
  if certify && not certified_ok then exit 1

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Worker domains pumping sessions (sessions may far exceed N).")
  in
  let family_arg =
    Arg.(
      value & opt string "locking"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Engine family: locking, mv (multiversion) or timestamp. \
             Sessions may SET any level within the family.")
  in
  let level_arg =
    Arg.(
      value & opt level_conv L.Read_committed
      & info [ "l"; "level" ] ~docv:"LEVEL"
          ~doc:"Default isolation level for sessions that never SET one.")
  in
  let criterion_arg =
    Arg.(
      value & opt string "serializable"
      & info [ "criterion" ] ~docv:"CRITERION"
          ~doc:
            "Correctness criterion for $(b,--certify): $(b,serializable) \
             dooms every transaction on a closing cycle; $(b,mixed) judges \
             each cycle against the victim's declared level (Table 4) and \
             aborts only transactions whose own level forbids the structure.")
  in
  let port_arg =
    Arg.(
      value & opt int 7654
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port (0 picks one).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address.")
  in
  let accounts_arg =
    Arg.(
      value & opt int 16
      & info [ "accounts" ] ~docv:"N" ~doc:"Rows in the initial bank table.")
  in
  let stripes_arg =
    Arg.(
      value & opt int Runtime.Pool.default_stripes
      & info [ "stripes" ] ~docv:"N" ~doc:"Key stripes (locking engines).")
  in
  let coarse_arg =
    Arg.(
      value & flag
      & info [ "coarse" ] ~doc:"Single coarse latch instead of stripes.")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Certify serializability online; doomed transactions abort \
             before commit and the run fails if the committed projection \
             has a cycle.")
  in
  let certify_batch_arg =
    Arg.(
      value & opt bool true
      & info [ "certify-batch" ] ~docv:"BOOL"
          ~doc:
            "Batch certifier edge offers outside the engine trace lock \
             (default true; false restores the unbatched feed).")
  in
  let oracle_window_arg =
    Arg.(
      value & opt int 64
      & info [ "oracle-window" ] ~docv:"N"
          ~doc:
            "Sliding window for the post-run anomaly detectors (0 = whole \
             history; the default keeps long serving runs checkable).")
  in
  let duration_arg =
    Arg.(
      value & opt (some float) None
      & info [ "d"; "duration" ] ~docv:"SECONDS"
          ~doc:"Serve for this long, then drain (default: until SIGINT).")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 2.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"Grace for in-flight transactions during shutdown.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Backoff-jitter and fault seed.")
  in
  let disconnect_arg =
    Arg.(
      value & opt float 0.
      & info [ "disconnect-rate" ] ~docv:"RATE"
          ~doc:
            "Per-frame probability of an injected connection sever \
             (deterministic, seeded): open transactions on the connection \
             abort and drain through client retry.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the structured event trace (sessions, parks, engine \
             steps) as Chrome trace_event JSON.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write wire stats, metrics and the oracle verdict as JSON.")
  in
  let telemetry_port_arg =
    Arg.(
      value & opt (some int) None
      & info [ "telemetry-port" ] ~docv:"PORT"
          ~doc:
            "Also serve a Prometheus text exposition of the live metrics \
             over HTTP on this port (0 picks one). The same snapshot \
             answers the wire protocol's STATS admin op — see \
             $(b,isolation_lab top).")
  in
  let wal_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Segmented on-disk WAL under DIR; commits group-commit their \
             fsyncs (see $(b,isolation_lab stress)).")
  in
  let checkpoint_arg =
    Arg.(
      value & opt int 10_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Commits between WAL checkpoints (0 = never).")
  in
  let history_arg =
    Arg.(
      value & opt (some bool) None
      & info [ "history" ] ~docv:"BOOL"
          ~doc:
            "Keep the full engine trace for the shutdown oracle (default \
             true). false is the out-of-core mode for long serving runs: \
             no trace, journal spilled to disk, the online certifier \
             ($(b,--certify)) carries the serializability verdict.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the wire protocol: sessions declare isolation levels, \
          transactions multiplex over the worker-domain pool, and the \
          recorded history is oracle-checked at shutdown.")
    Term.(
      const serve $ workers_arg $ family_arg $ level_arg $ criterion_arg
      $ port_arg $ host_arg
      $ accounts_arg $ stripes_arg $ coarse_arg $ certify_arg
      $ certify_batch_arg $ oracle_window_arg $ wal_dir_arg $ checkpoint_arg
      $ history_arg $ duration_arg $ drain_grace_arg $ seed_arg
      $ disconnect_arg $ trace_arg $ json_arg $ telemetry_port_arg)

let loadgen host port preset sessions conns txns mix_name levels_str accounts
    hot ops think seed max_attempts json_path progress =
  (* Presets override the shape knobs; everything else (mix, levels,
     seed, ...) still applies. "1m" is the out-of-core acceptance run:
     10^6 transactions against a server started with --history false and
     a --wal-dir, where the WAL checkpoints, the journal spills and RSS
     stays flat — the progress line reports commits-vs-total and the
     generator's RSS each interval. *)
  let sessions, txns, progress =
    match preset with
    | None -> (sessions, txns, progress)
    | Some "1m" ->
      (500, 2_000, if progress > 0. then progress else 5.)
    | Some p ->
      Fmt.epr "unknown --preset %S; available: 1m@." p;
      exit 1
  in
  let mix =
    match Workload.Generators.mix_of_string mix_name with
    | Some m -> m
    | None ->
      Fmt.epr "unknown mix %S; available: %s@." mix_name
        (String.concat ", "
           (List.map Workload.Generators.mix_name Workload.Generators.all_mixes));
      exit 1
  in
  let levels =
    match Workload.Mix.parse levels_str with
    | Ok m -> m
    | Error msg ->
      Fmt.epr "%s@." msg;
      exit 1
  in
  let cfg =
    Server.Loadgen.config ~host ~port ~sessions ?conns ~txns_per_session:txns
      ~mix ~levels ~accounts ~hot ~ops ~think_us:think ~seed ~max_attempts
      ~progress_s:progress ()
  in
  Format.printf
    "loadgen: %d sessions over %d connections -> %s:%d, %d txns/session, mix \
     %s, levels %s, seed %d@."
    sessions cfg.Server.Loadgen.conns host port txns
    (Workload.Generators.mix_name mix)
    (Workload.Mix.to_string levels)
    seed;
  Format.print_flush ();
  let st = Server.Loadgen.run cfg in
  Format.printf "%a@." Server.Loadgen.pp_stats st;
  (match json_path with
  | Some path ->
    let json =
      Printf.sprintf
        "{\"sessions\":%d,\"committed\":%d,\"aborted\":%d,\"giveups\":%d,\"draining_rejects\":%d,\"protocol_errors\":%d,\"requests\":%d,\"wall_s\":%.3f,\"throughput\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f}"
        st.Server.Loadgen.sessions st.Server.Loadgen.committed
        st.Server.Loadgen.aborted st.Server.Loadgen.giveups
        st.Server.Loadgen.draining_rejects st.Server.Loadgen.protocol_errors
        st.Server.Loadgen.requests st.Server.Loadgen.wall_s
        st.Server.Loadgen.throughput st.Server.Loadgen.p50_ms
        st.Server.Loadgen.p95_ms st.Server.Loadgen.p99_ms
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc json;
        Out_channel.output_string oc "\n");
    Format.printf "loadgen report written to %s@." path
  | None -> ());
  if st.Server.Loadgen.protocol_errors > 0 then exit 1

let loadgen_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(
      value & opt int 7654
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let preset_arg =
    Arg.(
      value & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Canned run shapes. \"1m\": one million transactions (500 \
             sessions x 2000 txns, progress every 5s with an RSS \
             reading) — pair it with a server started out-of-core \
             ($(b,serve --history false --wal-dir ...)) to exercise the \
             whole spilled pipeline. Overrides --sessions/--txns.")
  in
  let sessions_arg =
    Arg.(
      value & opt int 64
      & info [ "s"; "sessions" ] ~docv:"N" ~doc:"Concurrent client sessions.")
  in
  let conns_arg =
    Arg.(
      value & opt (some int) None
      & info [ "conns" ] ~docv:"N"
          ~doc:
            "Sockets to spread the sessions over (default min(sessions, \
             32)); each socket pipelines its sessions' requests.")
  in
  let txns_arg =
    Arg.(
      value & opt int 10
      & info [ "n"; "txns" ] ~docv:"N" ~doc:"Transactions per session.")
  in
  let mix_arg =
    Arg.(
      value & opt string "hotspot"
      & info [ "m"; "mix" ] ~docv:"MIX"
          ~doc:"Workload mix: transfer, hotspot, read-heavy, mixed.")
  in
  let levels_arg =
    Arg.(
      value & opt string "rc"
      & info [ "levels" ] ~docv:"SPEC"
          ~doc:
            "Weighted per-session isolation levels, comma-separated \
             level[=weight] (e.g. \"rc=1,serializable=1\"). Each session \
             draws one and declares it with SET LEVEL.")
  in
  let accounts_arg =
    Arg.(
      value & opt int 16
      & info [ "accounts" ] ~docv:"N" ~doc:"Rows in the bank table.")
  in
  let hot_arg =
    Arg.(
      value & opt int 4
      & info [ "hot" ] ~docv:"N" ~doc:"Contended key set for hotspot.")
  in
  let ops_arg =
    Arg.(
      value & opt int 6
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per mixed-mix transaction.")
  in
  let think_arg =
    Arg.(
      value & opt float 0.
      & info [ "think" ] ~docv:"MICROSECONDS"
          ~doc:"Mean client think time between requests.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed (same programs as \
                                           the in-process stress harness).")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int 10
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Client-side retry budget per transaction.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the run report as JSON.")
  in
  let progress_arg =
    Arg.(
      value & opt float 0.
      & info [ "progress" ] ~docv:"SECONDS"
          ~doc:
            "Print an interval line (commit rate, aborts, retries) to \
             stderr this often while driving; 0 disables.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running server with N wire sessions; exits non-zero on \
          any protocol error.")
    Term.(
      const loadgen $ host_arg $ port_arg $ preset_arg $ sessions_arg
      $ conns_arg $ txns_arg $ mix_arg $ levels_arg $ accounts_arg $ hot_arg
      $ ops_arg $ think_arg $ seed_arg $ max_attempts_arg $ json_arg
      $ progress_arg)

(* {2 top — live dashboard against a running server} *)

let top host port interval once =
  let module P = Server.Protocol in
  let module J = Trace.Json in
  let module W = Telemetry.Window in
  let cl =
    try Server.Client.connect ~host ~port
    with Unix.Unix_error (e, _, _) ->
      Fmt.epr "top: cannot connect to %s:%d: %s@." host port
        (Unix.error_message e);
      exit 1
  in
  let seen = ref false in
  let scrape () =
    match Server.Client.request ~timeout_s:5.0 cl ~sid:0 P.Stats with
    | Ok (P.Stats_resp body) -> (
      match J.parse body with
      | Ok j ->
        seen := true;
        j
      | Error e ->
        Fmt.epr "top: bad STATS JSON: %a@." J.pp_error e;
        exit 1)
    | Ok _ ->
      Fmt.epr "top: unexpected reply to STATS@.";
      exit 1
    | Error msg ->
      if !seen then begin
        (* the server drained away mid-watch; that is a normal ending *)
        Fmt.pr "top: server gone (%s)@." msg;
        exit 0
      end
      else begin
        Fmt.epr "top: %s@." msg;
        exit 1
      end
  in
  let num sec k =
    Option.value ~default:0
      (Option.bind (Option.bind sec (J.member k)) J.to_int_opt)
  in
  let fnum sec k =
    Option.value ~default:0.
      (Option.bind (Option.bind sec (J.member k)) J.to_float_opt)
  in
  let render ?prev j =
    let b = Buffer.create 1024 in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string b s;
          Buffer.add_char b '\n')
        fmt
    in
    let sample = Option.bind (J.member "metrics" j) W.of_json in
    let cert = J.member "certifier" j in
    let sched = J.member "scheduler" j in
    let srv = J.member "server" j in
    let draining =
      Option.value ~default:false
        (Option.bind (Option.bind srv (J.member "draining")) J.to_bool_opt)
    in
    let clock =
      let tm = Unix.localtime (fnum (Some j) "at") in
      Printf.sprintf "%02d:%02d:%02d" tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
    in
    line "isolation_lab top — %s:%d — %s%s" host port clock
      (if draining then "  DRAINING" else "");
    (match sample with
    | None -> line "  (malformed metrics section)"
    | Some s ->
      line
        "  totals    committed %d  aborted %d  retries %d  giveups %d  \
         deadlocks %d  dooms %d"
        s.W.committed s.W.aborted s.W.retries s.W.giveups s.W.deadlocks
        s.W.certifier_aborts;
      (match prev with
      | None -> if not once then line "  interval  (first scrape)"
      | Some p ->
        let r = W.delta p s in
        line "  interval  %s" (Fmt.str "%a" W.pp_rates r);
        if r.W.d_aborted_by <> [] then
          line "  aborts    %s"
            (String.concat "  "
               (List.map
                  (fun (k, n) -> Printf.sprintf "%s %d" k n)
                  r.W.d_aborted_by)));
      if s.W.per_level <> [] then begin
        line "  by level";
        List.iter
          (fun (slug, c, a, d) ->
            line "    %-24s committed %-8d aborted %-8d doomed %d" slug c a d)
          s.W.per_level
      end);
    (match cert with
    | None -> ()
    | Some _ ->
      line
        "  certifier nodes %d  edges %d  queue %d  pending %d  cycles %d  \
         dooms %d  misses %d  tolerated %d"
        (num cert "nodes") (num cert "edges") (num cert "queue")
        (num cert "pending") (num cert "cycles") (num cert "dooms")
        (num cert "misses") (num cert "tolerated");
      let prune = Option.bind cert (J.member "prune") in
      if num prune "passes" > 0 then
        line "  pruned    %d nodes  %d eras  over %d passes"
          (num prune "nodes") (num prune "eras") (num prune "passes"));
    (match sched with
    | None -> ()
    | Some _ ->
      line
        "  scheduler runnable %d  parked %d  active %d  wakes %d  wake wait \
         mean %.0fus max %.0fus"
        (num sched "runnable") (num sched "parked")
        (num sched "sessions_active") (num sched "wakes")
        (fnum sched "wake_wait_mean_us")
        (fnum sched "wake_wait_max_us"));
    (match srv with
    | None -> ()
    | Some _ ->
      line "  server    conns %d  sessions %d  frames %d  proto_errs %d"
        (num srv "conns") (num srv "sessions") (num srv "frames")
        (num srv "protocol_errors"));
    line "  storage   wal %d records  history %d actions"
      (num (Some j) "wal_entries")
      (num (Some j) "history_len");
    (match J.member "wal" j with
    | None -> ()
    | Some _ as wal ->
      line
        "  wal       %d segments  %d bytes on disk  %d fsync batches  %d \
         checkpoints  %d truncated"
        (num wal "segments") (num wal "disk_bytes") (num wal "syncs")
        (num wal "checkpoints")
        (num wal "truncated_segments"));
    Buffer.contents b
  in
  if once then begin
    print_string (render (scrape ()));
    exit 0
  end
  else begin
    let rec loop prev =
      let j = scrape () in
      let sample = Option.bind (J.member "metrics" j) W.of_json in
      print_string "\027[2J\027[H";
      print_string (render ?prev j);
      flush stdout;
      Unix.sleepf (Float.max 0.1 interval);
      loop (match sample with Some _ -> sample | None -> prev)
    in
    loop None
  end

let top_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(
      value & opt int 7654
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "i"; "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print a single report and exit (no screen clearing; for \
             scripts and CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running server: polls the wire protocol's \
          STATS admin op and renders interval commit/abort rates, the \
          abort mix, per-level counts, and certifier, scheduler and \
          connection gauges.")
    Term.(const top $ host_arg $ port_arg $ interval_arg $ once_arg)

let explain_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by stress --trace.")
  in
  let txn_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "t"; "txn" ] ~docv:"TID"
          ~doc:"Show one transaction attempt's full timeline and events.")
  in
  let log_arg =
    Arg.(
      value & flag
      & info [ "log" ] ~doc:"Also print the merged event log.")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"With --log, print only the newest N events.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-render a recorded trace: per-transaction timelines with phase \
          breakdowns, the paper-notation history, and — when the embedded \
          history exhibits anomalies — the annotated interleaving excerpt \
          behind each oracle witness.")
    Term.(const explain $ file_arg $ txn_arg $ log_arg $ limit_arg)

(* {2 scenarios / histories} *)

let list_scenarios () =
  List.iter
    (fun s ->
      Format.printf "%-18s (%s)  %s@." s.Workload.Scenario.id
        (P.name s.Workload.Scenario.phenomenon)
        s.Workload.Scenario.description)
    Workload.Catalog.all

let scenarios_cmd =
  Cmd.v
    (Cmd.info "scenarios" ~doc:"List the scenario catalog.")
    Term.(const list_scenarios $ const ())

let list_histories () =
  List.iter
    (fun ph ->
      let open Workload.Paper_histories in
      Format.printf "%-10s (section %s)  %s@." ph.name ph.section ph.text;
      Format.printf "  exhibits: %s@."
        (match Phenomena.Detect.exhibited ph.history with
        | [] -> "nothing"
        | ps -> String.concat ", " (List.map P.name ps)))
    Workload.Paper_histories.all

let histories_cmd =
  Cmd.v
    (Cmd.info "histories" ~doc:"List the paper's example histories verbatim.")
    Term.(const list_histories $ const ())

(* {2 levels / figure} *)

let levels () =
  List.iter
    (fun l ->
      Format.printf "%-26s" (L.name l);
      (match L.degree l with
      | Some d -> Format.printf " degree %d;" d
      | None -> ());
      if L.is_multiversion l then Format.printf " multiversion;";
      Format.printf " forbids: %s@."
        (String.concat ","
           (List.map P.name (Isolation.Spec.forbidden l))))
    L.all

let levels_cmd =
  Cmd.v (Cmd.info "levels" ~doc:"List the isolation levels and what they forbid.")
    Term.(const levels $ const ())

let figure () = print_string (Isolation.Lattice.render_figure ())

let figure_cmd =
  Cmd.v (Cmd.info "figure" ~doc:"Render the paper's Figure 2 hierarchy.")
    Term.(const figure $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "isolation_lab" ~version:"1.0.0"
       ~doc:
         "A laboratory for 'A Critique of ANSI SQL Isolation Levels' \
          (Berenson et al., SIGMOD 1995).")
    [ analyze_cmd; run_cmd; classify_cmd; scenario_cmd; stress_cmd;
      chaos_cmd; serve_cmd; loadgen_cmd; top_cmd; explain_cmd; scenarios_cmd;
      histories_cmd; levels_cmd; figure_cmd ]

let () = exit (Cmd.eval main_cmd)
