(* The trace event vocabulary: everything the runtime does on behalf of a
   transaction, as timestamped facts. One event is one record; the hot
   path allocates the record and nothing else (the ring buffer it lands
   in is preallocated).

   Events speak in transaction ids, worker indices and history
   positions, because those are the coordinates the oracle's witnesses
   use: [Step_end.hpos0 .. hpos1) is the half-open range of positions
   this step appended to the engine trace, which is what lets anomaly
   provenance map a witness operation back to the exact moment (and
   worker) that executed it. *)

type outcome = Progress | Blocked of int list | Finished

type kind =
  | Attempt_begin of { job : int; name : string; attempt : int; level : string }
      (* a fresh transaction id started executing a job's program *)
  | Step_begin of { op : string }
      (* about to take the execution latch for one engine step *)
  | Step_end of { op : string; outcome : outcome; hpos0 : int; hpos1 : int }
      (* the step returned; [hpos0..hpos1) are the history positions it
         emitted (empty when blocked) *)
  | Lock_grant of { req : string; upgrade : bool }
  | Lock_conflict of { req : string; upgrade : bool; holders : int list }
  | Lock_release of { count : int }
  | Lock_wait of { slept_ns : int }
      (* slept outside the latch after a Blocked step, before retrying *)
  | Stripe_wait of { stripe : int }
      (* found a stripe mutex held by another worker while acquiring the
         step's stripe set (striped execution contention) *)
  | Retry_backoff of { slept_ns : int; next_attempt : int }
      (* slept between attempts after a system abort; attributed to the
         failed attempt's tid *)
  | Deadlock_victim of { cycle : int list }
      (* this tid was chosen as the victim that broke [cycle] *)
  | Stall_restart
      (* the worker aborted its own transaction after exhausting blocked
         retries of one operation (starvation safety valve) *)
  | Fault_inject of { klass : string }
      (* the fault plan fired here: "stall" | "step_fail" | "victim" |
         "torn_commit" *)
  | Deadline_exceeded of { elapsed_ns : int; budget_ns : int }
      (* the attempt blew its deadline and aborted itself *)
  | Watchdog of { worker : int; stalled_ns : int }
      (* the watchdog saw [worker] make no progress for [stalled_ns];
         attributed to the stuck worker's current tid *)
  | Crash_replay of { points : int; torn : int; failures : int }
      (* crash-point enumeration ran over the WAL after the run *)
  | Dep_edge of { src : int; dst : int; dep : string }
      (* the certifier added src -> dst to the dependency graph;
         [dep] is "wr" | "ww" | "rw" (the rw are anti-dependencies) *)
  | Dep_cycle of {
      cycle : int list;
      dep : string;
      src : int;
      dst : int;
      victim_level : string option;
    }
      (* the [src -> dst] edge of class [dep] would have closed [cycle];
         attributed to the transaction whose action offered the edge.
         Under the mixed criterion [victim_level] is the declared level
         of the doomed (or first harmed) member *)
  | Conn_open of { conn : int }
      (* the server accepted connection [conn] *)
  | Conn_close of { conn : int; reason : string }
      (* the connection ended: "eof" | "protocol_error" | "fault" |
         "drain" *)
  | Session_open of { conn : int; session : int }
      (* a session was opened on [conn]; attributed tid 0 until its
         first transaction begins *)
  | Session_close of { session : int; txns : int }
      (* the session closed after completing [txns] transactions *)
  | Session_park of { session : int }
      (* the session left its worker: blocked on a lock or backing off,
         to resume when its timer expires *)
  | Session_resume of { session : int }
      (* a worker picked the parked session back up *)
  | Commit
  | Abort of { reason : string }

type t = { ts_ns : int; tid : int; worker : int; kind : kind }

let tag = function
  | Attempt_begin _ -> "attempt"
  | Step_begin _ -> "step_begin"
  | Step_end _ -> "step_end"
  | Lock_grant _ -> "lock_grant"
  | Lock_conflict _ -> "lock_conflict"
  | Lock_release _ -> "lock_release"
  | Lock_wait _ -> "lock_wait"
  | Stripe_wait _ -> "stripe_wait"
  | Retry_backoff _ -> "retry_backoff"
  | Deadlock_victim _ -> "deadlock"
  | Stall_restart -> "stall"
  | Fault_inject _ -> "fault_inject"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Watchdog _ -> "watchdog"
  | Crash_replay _ -> "crash_replay"
  | Dep_edge _ -> "dep_edge"
  | Dep_cycle _ -> "dep_cycle"
  | Conn_open _ -> "conn_open"
  | Conn_close _ -> "conn_close"
  | Session_open _ -> "session_open"
  | Session_close _ -> "session_close"
  | Session_park _ -> "session_park"
  | Session_resume _ -> "session_resume"
  | Commit -> "commit"
  | Abort _ -> "abort"

let pp_outcome ppf = function
  | Progress -> Fmt.string ppf "progress"
  | Blocked holders ->
    Fmt.pf ppf "blocked by %a"
      Fmt.(list ~sep:comma (fun ppf t -> Fmt.pf ppf "T%d" t))
      holders
  | Finished -> Fmt.string ppf "finished"

let pp_kind ppf = function
  | Attempt_begin { job; name; attempt; level } ->
    Fmt.pf ppf "begin %s (job %d, attempt %d, %s)" name job attempt level
  | Step_begin { op } -> Fmt.pf ppf "step %s" op
  | Step_end { op; outcome; hpos0; hpos1 } ->
    Fmt.pf ppf "step %s -> %a" op pp_outcome outcome;
    if hpos1 > hpos0 then
      Fmt.pf ppf " [h%d%s]" hpos0
        (if hpos1 > hpos0 + 1 then Printf.sprintf "-%d" (hpos1 - 1) else "")
  | Lock_grant { req; upgrade } ->
    Fmt.pf ppf "lock grant %s%s" req (if upgrade then " (upgrade)" else "")
  | Lock_conflict { req; upgrade; holders } ->
    Fmt.pf ppf "lock conflict %s%s held by %a" req
      (if upgrade then " (upgrade)" else "")
      Fmt.(list ~sep:comma (fun ppf t -> Fmt.pf ppf "T%d" t))
      holders
  | Lock_release { count } -> Fmt.pf ppf "released %d locks" count
  | Lock_wait { slept_ns } ->
    Fmt.pf ppf "lock wait %.1fus" (float slept_ns /. 1e3)
  | Stripe_wait { stripe } -> Fmt.pf ppf "stripe %d contended" stripe
  | Retry_backoff { slept_ns; next_attempt } ->
    Fmt.pf ppf "retry backoff %.1fus before attempt %d"
      (float slept_ns /. 1e3)
      next_attempt
  | Deadlock_victim { cycle } ->
    Fmt.pf ppf "deadlock victim (cycle %s)"
      (String.concat " -> " (List.map (fun t -> "T" ^ string_of_int t) cycle))
  | Stall_restart -> Fmt.string ppf "stall: self-restart"
  | Fault_inject { klass } -> Fmt.pf ppf "fault injected (%s)" klass
  | Deadline_exceeded { elapsed_ns; budget_ns } ->
    Fmt.pf ppf "deadline exceeded (%.1fms of %.1fms budget)"
      (float elapsed_ns /. 1e6) (float budget_ns /. 1e6)
  | Watchdog { worker; stalled_ns } ->
    Fmt.pf ppf "watchdog: worker %d stuck %.1fms" worker
      (float stalled_ns /. 1e6)
  | Crash_replay { points; torn; failures } ->
    Fmt.pf ppf "crash replay: %d prefixes + %d torn tails, %d unsound"
      points torn failures
  | Dep_edge { src; dst; dep } -> Fmt.pf ppf "dep %s T%d -> T%d" dep src dst
  | Dep_cycle { cycle; dep; src; dst; victim_level } ->
    Fmt.pf ppf "dep cycle closed by %s T%d -> T%d (%s)%a" dep src dst
      (String.concat " -> " (List.map (fun t -> "T" ^ string_of_int t) cycle))
      (fun ppf -> function
        | None -> ()
        | Some l -> Fmt.pf ppf " victim level %s" l)
      victim_level
  | Conn_open { conn } -> Fmt.pf ppf "connection %d open" conn
  | Conn_close { conn; reason } ->
    Fmt.pf ppf "connection %d closed (%s)" conn reason
  | Session_open { conn; session } ->
    Fmt.pf ppf "session %d open on connection %d" session conn
  | Session_close { session; txns } ->
    Fmt.pf ppf "session %d closed after %d txns" session txns
  | Session_park { session } -> Fmt.pf ppf "session %d parked" session
  | Session_resume { session } -> Fmt.pf ppf "session %d resumed" session
  | Commit -> Fmt.string ppf "commit"
  | Abort { reason } -> Fmt.pf ppf "abort (%s)" reason

let pp ppf e =
  Fmt.pf ppf "%10.3fms w%d T%-4d %a"
    (float e.ts_ns /. 1e6)
    e.worker e.tid pp_kind e.kind

(* {2 JSON round trip}

   Every event serializes its full payload into the [args] object of its
   Chrome trace_event, so a saved trace file is lossless: [explain]
   rebuilds the exact event list from [of_args]. *)

let ints xs = Json.List (List.map (fun i -> Json.Int i) xs)

let int_list j =
  match Json.to_list j with
  | Some xs -> List.filter_map Json.to_int_opt xs
  | None -> []

let outcome_to_json = function
  | Progress -> Json.String "progress"
  | Finished -> Json.String "finished"
  | Blocked holders -> ints holders

let outcome_of_json = function
  | Json.String "progress" -> Progress
  | Json.String "finished" -> Finished
  | j -> Blocked (int_list j)

let kind_args = function
  | Attempt_begin { job; name; attempt; level } ->
    [ ("job", Json.Int job); ("name", Json.String name);
      ("attempt", Json.Int attempt); ("level", Json.String level) ]
  | Step_begin { op } -> [ ("op", Json.String op) ]
  | Step_end { op; outcome; hpos0; hpos1 } ->
    [ ("op", Json.String op); ("outcome", outcome_to_json outcome);
      ("hpos0", Json.Int hpos0); ("hpos1", Json.Int hpos1) ]
  | Lock_grant { req; upgrade } ->
    [ ("req", Json.String req); ("upgrade", Json.Bool upgrade) ]
  | Lock_conflict { req; upgrade; holders } ->
    [ ("req", Json.String req); ("upgrade", Json.Bool upgrade);
      ("holders", ints holders) ]
  | Lock_release { count } -> [ ("count", Json.Int count) ]
  | Lock_wait { slept_ns } -> [ ("slept_ns", Json.Int slept_ns) ]
  | Stripe_wait { stripe } -> [ ("stripe", Json.Int stripe) ]
  | Retry_backoff { slept_ns; next_attempt } ->
    [ ("slept_ns", Json.Int slept_ns); ("next_attempt", Json.Int next_attempt) ]
  | Deadlock_victim { cycle } -> [ ("cycle", ints cycle) ]
  | Fault_inject { klass } -> [ ("klass", Json.String klass) ]
  | Deadline_exceeded { elapsed_ns; budget_ns } ->
    [ ("elapsed_ns", Json.Int elapsed_ns); ("budget_ns", Json.Int budget_ns) ]
  | Watchdog { worker; stalled_ns } ->
    [ ("stuck_worker", Json.Int worker); ("stalled_ns", Json.Int stalled_ns) ]
  | Crash_replay { points; torn; failures } ->
    [ ("points", Json.Int points); ("torn", Json.Int torn);
      ("failures", Json.Int failures) ]
  | Dep_edge { src; dst; dep } ->
    [ ("src", Json.Int src); ("dst", Json.Int dst); ("dep", Json.String dep) ]
  | Dep_cycle { cycle; dep; src; dst; victim_level } ->
    [ ("cycle", ints cycle); ("dep", Json.String dep);
      ("src", Json.Int src); ("dst", Json.Int dst) ]
    @ (match victim_level with
      | None -> []
      | Some l -> [ ("victim_level", Json.String l) ])
  | Conn_open { conn } -> [ ("conn", Json.Int conn) ]
  | Conn_close { conn; reason } ->
    [ ("conn", Json.Int conn); ("reason", Json.String reason) ]
  | Session_open { conn; session } ->
    [ ("conn", Json.Int conn); ("session", Json.Int session) ]
  | Session_close { session; txns } ->
    [ ("session", Json.Int session); ("txns", Json.Int txns) ]
  | Session_park { session } -> [ ("session", Json.Int session) ]
  | Session_resume { session } -> [ ("session", Json.Int session) ]
  | Stall_restart | Commit -> []
  | Abort { reason } -> [ ("reason", Json.String reason) ]

let to_args e =
  Json.Obj
    (("k", Json.String (tag e.kind))
     :: ("tid", Json.Int e.tid)
     :: ("worker", Json.Int e.worker)
     :: ("ts_ns", Json.Int e.ts_ns)
     :: kind_args e.kind)

let get_int ?(default = 0) k j =
  match Option.bind (Json.member k j) Json.to_int_opt with
  | Some n -> n
  | None -> default

let get_string ?(default = "") k j =
  match Option.bind (Json.member k j) Json.to_string_opt with
  | Some s -> s
  | None -> default

let get_bool k j =
  match Option.bind (Json.member k j) Json.to_bool_opt with
  | Some b -> b
  | None -> false

let get_ints k j =
  match Json.member k j with Some l -> int_list l | None -> []

let of_args j =
  match Option.bind (Json.member "k" j) Json.to_string_opt with
  | None -> None
  | Some tag ->
    let kind =
      match tag with
      | "attempt" ->
        Some
          (Attempt_begin
             { job = get_int "job" j; name = get_string "name" j;
               attempt = get_int "attempt" j; level = get_string "level" j })
      | "step_begin" -> Some (Step_begin { op = get_string "op" j })
      | "step_end" ->
        let outcome =
          match Json.member "outcome" j with
          | Some o -> outcome_of_json o
          | None -> Progress
        in
        Some
          (Step_end
             { op = get_string "op" j; outcome; hpos0 = get_int "hpos0" j;
               hpos1 = get_int "hpos1" j })
      | "lock_grant" ->
        Some
          (Lock_grant { req = get_string "req" j; upgrade = get_bool "upgrade" j })
      | "lock_conflict" ->
        Some
          (Lock_conflict
             { req = get_string "req" j; upgrade = get_bool "upgrade" j;
               holders = get_ints "holders" j })
      | "lock_release" -> Some (Lock_release { count = get_int "count" j })
      | "lock_wait" -> Some (Lock_wait { slept_ns = get_int "slept_ns" j })
      | "stripe_wait" -> Some (Stripe_wait { stripe = get_int "stripe" j })
      | "retry_backoff" ->
        Some
          (Retry_backoff
             { slept_ns = get_int "slept_ns" j;
               next_attempt = get_int "next_attempt" j })
      | "deadlock" -> Some (Deadlock_victim { cycle = get_ints "cycle" j })
      | "stall" -> Some Stall_restart
      | "fault_inject" -> Some (Fault_inject { klass = get_string "klass" j })
      | "deadline_exceeded" ->
        Some
          (Deadline_exceeded
             { elapsed_ns = get_int "elapsed_ns" j;
               budget_ns = get_int "budget_ns" j })
      | "watchdog" ->
        Some
          (Watchdog
             { worker = get_int "stuck_worker" j;
               stalled_ns = get_int "stalled_ns" j })
      | "crash_replay" ->
        Some
          (Crash_replay
             { points = get_int "points" j; torn = get_int "torn" j;
               failures = get_int "failures" j })
      | "dep_edge" ->
        Some
          (Dep_edge
             { src = get_int "src" j; dst = get_int "dst" j;
               dep = get_string "dep" j })
      | "dep_cycle" ->
        Some
          (Dep_cycle
             { cycle = get_ints "cycle" j; dep = get_string "dep" j;
               src = get_int "src" j; dst = get_int "dst" j;
               victim_level =
                 Option.bind (Json.member "victim_level" j) Json.to_string_opt
             })
      | "conn_open" -> Some (Conn_open { conn = get_int "conn" j })
      | "conn_close" ->
        Some
          (Conn_close { conn = get_int "conn" j; reason = get_string "reason" j })
      | "session_open" ->
        Some
          (Session_open { conn = get_int "conn" j; session = get_int "session" j })
      | "session_close" ->
        Some
          (Session_close { session = get_int "session" j; txns = get_int "txns" j })
      | "session_park" -> Some (Session_park { session = get_int "session" j })
      | "session_resume" ->
        Some (Session_resume { session = get_int "session" j })
      | "commit" -> Some Commit
      | "abort" -> Some (Abort { reason = get_string "reason" j })
      | _ -> None
    in
    Option.map
      (fun kind ->
        { ts_ns = get_int "ts_ns" j; tid = get_int "tid" j;
          worker = get_int "worker" j; kind })
      kind
