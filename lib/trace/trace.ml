(* Umbrella module of the [trace] library: structured event tracing for
   the runtime. {!Sink} is the write side — per-domain single-writer
   flight-recorder rings the worker pool emits {!Event}s into, never
   blocking and dropping (counted) rather than stalling. {!Span} folds
   the stream into per-transaction timelines with a phase breakdown;
   {!Chrome} exports/imports the lossless trace_event file; {!Render}
   prints timelines, paper-notation histories and anomaly provenance.
   {!Json} is the layer's own minimal JSON — the repository carries no
   JSON dependency. *)

module Json = Json
module Event = Event
module Ring = Ring
module Sink = Sink
module Span = Span
module Chrome = Chrome
module Render = Render
