(* A minimal JSON value type with a printer and a recursive-descent
   parser. The repository deliberately has no JSON dependency; the trace
   exporter needs to *write* Chrome trace_event files and [explain] needs
   to read them back, so this module implements just enough of RFC 8259
   for that round trip: the full value grammar, string escapes (including
   \uXXXX for the control range), and integer/float distinction. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | String s -> escape_string b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

(* {2 Parsing} *)

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "JSON error at offset %d: %s" e.position e.message

exception Fail of error

let fail pos fmt =
  Fmt.kstr (fun message -> raise (Fail { position = pos; message })) fmt

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> c.pos <- c.pos + 1
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> fail c.pos "expected '%c' but found '%c'" ch got
  | None -> fail c.pos "expected '%c' but found end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos "expected %s" word

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek c with
      | None -> fail c.pos "unterminated escape"
      | Some esc ->
        c.pos <- c.pos + 1;
        (match esc with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.input then
            fail c.pos "truncated \\u escape";
          let hex = String.sub c.input c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail c.pos "bad \\u escape %S" hex
          in
          (* Only the BMP-as-UTF-8 cases the writer produces are needed,
             but decode the general case anyway. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | other -> fail c.pos "unknown escape '\\%c'" other);
        go ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch when is_num_char ch -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.input start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "malformed number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail c.pos "expected ',' or '}' in object"
      in
      fields []
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elems (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List (List.rev (v :: acc))
        | _ -> fail c.pos "expected ',' or ']' in array"
      in
      elems []
    end
  | Some '"' ->
    c.pos <- c.pos + 1;
    String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos "unexpected character '%c'" ch

let parse input =
  let c = { input; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length input then
      Error { position = c.pos; message = "trailing garbage after value" }
    else Ok v
  | exception Fail e -> Error e

(* {2 Accessors} *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None
