(** The tracing endpoint the runtime writes into: one single-writer
    {!Ring} per worker domain, selected through domain-local storage so
    that callbacks that do not carry a worker index (the lock-table hook)
    still record into the attached domain's ring.

    Timestamps are nanoseconds relative to the sink's creation. Emitting
    never blocks: a full ring overwrites its oldest event, an unattached
    domain's event is dropped and counted as orphaned. *)

type t

val create : ?capacity_per_worker:int -> workers:int -> unit -> t
(** [capacity_per_worker] defaults to 65536 events (the flight-recorder
    window per worker). *)

val attach : t -> worker:int -> unit
(** Bind the calling domain to ring [worker]. Each worker calls this once
    at startup; a later {!attach} (or one from a different sink)
    supersedes the binding. *)

val emit : t -> tid:int -> Event.kind -> unit
(** Stamp and record an event on the calling domain's ring. *)

val emit_external : t -> worker:int -> tid:int -> Event.kind -> unit
(** Stamp and record an event from a domain that owns no ring (the
    watchdog, post-run bookkeeping) through a mutex-protected side
    channel merged into {!events}. [worker] is the lane the event is
    attributed to. Cold path — never used by workers. *)

val events : t -> Event.t list
(** The merged timeline (all rings, sorted by timestamp). Call only after
    the writer domains have been joined. *)

val written : t -> int
(** Total events recorded across rings, including overwritten ones. *)

val dropped : t -> int
(** Events lost: ring overwrites plus orphaned emits. *)
