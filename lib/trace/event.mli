(** The trace event vocabulary: the full transaction lifecycle as
    timestamped facts — attempt start, engine step begin/end, lock
    grant/conflict/release (via the {!Locking.Lock_table} hook), backoff
    sleeps, deadlock victim selection, commit/abort with reason.

    [Step_end] carries the half-open range [hpos0, hpos1) of history
    positions the step appended to the engine trace; that range is the
    bridge from the oracle's positional witnesses back to wall-clock
    moments and workers (anomaly provenance). *)

type outcome = Progress | Blocked of int list | Finished

type kind =
  | Attempt_begin of { job : int; name : string; attempt : int; level : string }
  | Step_begin of { op : string }
  | Step_end of { op : string; outcome : outcome; hpos0 : int; hpos1 : int }
  | Lock_grant of { req : string; upgrade : bool }
  | Lock_conflict of { req : string; upgrade : bool; holders : int list }
  | Lock_release of { count : int }
  | Lock_wait of { slept_ns : int }
      (** slept outside the latch after a Blocked step *)
  | Stripe_wait of { stripe : int }
      (** found a stripe mutex held by another worker while acquiring the
          step's stripe set (striped execution contention) *)
  | Retry_backoff of { slept_ns : int; next_attempt : int }
      (** slept between attempts; attributed to the failed attempt's tid *)
  | Deadlock_victim of { cycle : int list }
  | Stall_restart
  | Fault_inject of { klass : string }
      (** the fault plan fired: ["stall"], ["step_fail"], ["victim"] or
          ["torn_commit"] *)
  | Deadline_exceeded of { elapsed_ns : int; budget_ns : int }
      (** the attempt blew its deadline and aborted itself *)
  | Watchdog of { worker : int; stalled_ns : int }
      (** the watchdog saw [worker] make no step progress for
          [stalled_ns]; attributed to that worker's current tid *)
  | Crash_replay of { points : int; torn : int; failures : int }
      (** post-run crash-point enumeration over the WAL *)
  | Dep_edge of { src : int; dst : int; dep : string }
      (** the online certifier added a dependency edge [src -> dst];
          [dep] is ["wr"], ["ww"] or ["rw"] (anti-dependency) *)
  | Dep_cycle of {
      cycle : int list;
      dep : string;
      src : int;
      dst : int;
      victim_level : string option;
    }
      (** the [src -> dst] edge of class [dep] would have closed
          [cycle] (witness format of {!History.Digraph.find_cycle});
          attributed to the transaction whose action offered the edge.
          Under the mixed criterion [victim_level] names the declared
          level of the doomed (or first harmed) member *)
  | Conn_open of { conn : int }
      (** the server accepted connection [conn] *)
  | Conn_close of { conn : int; reason : string }
      (** the connection ended: ["eof"], ["protocol_error"], ["fault"]
          (injected drop) or ["drain"] *)
  | Session_open of { conn : int; session : int }
      (** a session opened on [conn]; attributed tid 0 until its first
          transaction begins *)
  | Session_close of { session : int; txns : int }
      (** the session closed after completing [txns] transactions *)
  | Session_park of { session : int }
      (** the session left its worker (blocked on a lock or backing off)
          to resume when its timer expires *)
  | Session_resume of { session : int }
      (** a worker picked the parked session back up *)
  | Commit
  | Abort of { reason : string }

type t = { ts_ns : int; tid : int; worker : int; kind : kind }

val tag : kind -> string
(** Stable machine-readable name, used as the [args.k] discriminator in
    exported files. *)

val pp : t Fmt.t
val pp_kind : kind Fmt.t
val pp_outcome : outcome Fmt.t

val to_args : t -> Json.t
(** Lossless encoding as a Chrome trace_event [args] object. *)

val of_args : Json.t -> t option
(** Inverse of {!to_args}; [None] for foreign/unknown events. *)

(** {2 Args helpers} — defaulted field lookups shared with {!Chrome}. *)

val get_int : ?default:int -> string -> Json.t -> int
val get_string : ?default:string -> string -> Json.t -> string
val get_bool : string -> Json.t -> bool
val get_ints : string -> Json.t -> int list
