(* Chrome trace_event export and re-import.

   The exported file is a top-level JSON array in the trace_event format,
   loadable in chrome://tracing and Perfetto: one lane per worker domain,
   duration (B/E) slices for transaction attempts and engine steps,
   complete (X) slices for the backoff sleeps, instant (i) events for
   lock traffic and deadlocks.

   The file is also this repository's *native* trace format: every event
   serializes its full payload into [args] (see {!Event.to_args}), and a
   metadata event carries the run's recorded history in the paper's
   notation plus the run configuration. [parse] inverts the export
   losslessly, which is what lets [isolation_lab explain] re-render — and
   re-run the oracle over — a saved trace with no other inputs. *)

type meta = {
  tool : string;
  level : string;
  mix : string;
  workers : int;
  seed : int;
  history : string; (* the engine trace in the paper's notation *)
  dropped : int;    (* events the flight recorder lost *)
}

let meta ?(tool = "isolation_lab") ?(level = "") ?(mix = "") ?(workers = 0)
    ?(seed = 0) ?(history = "") ?(dropped = 0) () =
  { tool; level; mix; workers; seed; history; dropped }

let meta_name = "isolation_lab.meta"

let us_of_ns ns = ns / 1_000

(* A short human label; everything lossless lives in args. *)
let name_of (e : Event.t) =
  match e.kind with
  | Event.Attempt_begin { name; attempt; _ } ->
    Printf.sprintf "T%d %s#%d" e.tid name attempt
  | Event.Step_begin { op } | Event.Step_end { op; _ } ->
    Printf.sprintf "T%d %s" e.tid op
  | Event.Lock_grant { req; _ } -> Printf.sprintf "T%d grant %s" e.tid req
  | Event.Lock_conflict { req; _ } -> Printf.sprintf "T%d conflict %s" e.tid req
  | Event.Lock_release _ -> Printf.sprintf "T%d release" e.tid
  | Event.Lock_wait _ -> Printf.sprintf "T%d lock wait" e.tid
  | Event.Stripe_wait { stripe } -> Printf.sprintf "T%d stripe %d wait" e.tid stripe
  | Event.Retry_backoff _ -> Printf.sprintf "T%d retry backoff" e.tid
  | Event.Deadlock_victim _ -> Printf.sprintf "T%d deadlock victim" e.tid
  | Event.Stall_restart -> Printf.sprintf "T%d stall" e.tid
  | Event.Fault_inject { klass } -> Printf.sprintf "T%d fault %s" e.tid klass
  | Event.Deadline_exceeded _ -> Printf.sprintf "T%d deadline" e.tid
  | Event.Watchdog { worker; _ } -> Printf.sprintf "watchdog w%d" worker
  | Event.Crash_replay _ -> "crash replay"
  | Event.Dep_edge { src; dst; dep } ->
    Printf.sprintf "dep %s T%d>T%d" dep src dst
  | Event.Dep_cycle { dep; _ } -> Printf.sprintf "T%d dep cycle (%s)" e.tid dep
  | Event.Conn_open { conn } -> Printf.sprintf "conn %d open" conn
  | Event.Conn_close { conn; reason } ->
    Printf.sprintf "conn %d close (%s)" conn reason
  | Event.Session_open { session; _ } -> Printf.sprintf "session %d open" session
  | Event.Session_close { session; _ } ->
    Printf.sprintf "session %d close" session
  | Event.Session_park { session } -> Printf.sprintf "session %d park" session
  | Event.Session_resume { session } ->
    Printf.sprintf "session %d resume" session
  | Event.Commit -> Printf.sprintf "T%d commit" e.tid
  | Event.Abort _ -> Printf.sprintf "T%d abort" e.tid

(* The trace_event phase for each kind. Attempts and steps become B/E
   slice pairs; sleeps become X slices spanning the time actually slept;
   the rest are thread-scoped instants. *)
let phase_of (e : Event.t) =
  match e.kind with
  | Event.Attempt_begin _ | Event.Step_begin _ -> `B
  | Event.Step_end _ | Event.Commit | Event.Abort _ -> `E
  | Event.Lock_wait { slept_ns } | Event.Retry_backoff { slept_ns; _ } ->
    `X slept_ns
  | Event.Lock_grant _ | Event.Lock_conflict _ | Event.Lock_release _
  | Event.Stripe_wait _ | Event.Deadlock_victim _ | Event.Stall_restart
  | Event.Fault_inject _ | Event.Deadline_exceeded _ | Event.Watchdog _
  | Event.Crash_replay _ | Event.Dep_edge _ | Event.Dep_cycle _
  | Event.Conn_open _ | Event.Conn_close _ | Event.Session_open _
  | Event.Session_close _ | Event.Session_park _ | Event.Session_resume _ ->
    `I

let event_to_json e =
  let base ph extra =
    Json.Obj
      (("name", Json.String (name_of e))
       :: ("ph", Json.String ph)
       :: ("pid", Json.Int 1)
       :: ("tid", Json.Int e.Event.worker)
       :: extra
       @ [ ("args", Event.to_args e) ])
  in
  match phase_of e with
  | `B -> base "B" [ ("ts", Json.Int (us_of_ns e.Event.ts_ns)) ]
  | `E -> base "E" [ ("ts", Json.Int (us_of_ns e.Event.ts_ns)) ]
  | `X dur_ns ->
    (* The event is stamped when the sleep ends; the slice starts then. *)
    base "X"
      [ ("ts", Json.Int (us_of_ns (e.Event.ts_ns - dur_ns)));
        ("dur", Json.Int (max 1 (us_of_ns dur_ns))) ]
  | `I ->
    base "i"
      [ ("ts", Json.Int (us_of_ns e.Event.ts_ns)); ("s", Json.String "t") ]

let meta_events m =
  Json.Obj
    [ ("name", Json.String "process_name"); ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.String m.tool) ]) ]
  :: Json.Obj
       [ ("name", Json.String meta_name); ("ph", Json.String "i");
         ("pid", Json.Int 1); ("tid", Json.Int 0); ("ts", Json.Int 0);
         ("s", Json.String "g");
         ( "args",
           Json.Obj
             [ ("tool", Json.String m.tool); ("level", Json.String m.level);
               ("mix", Json.String m.mix); ("workers", Json.Int m.workers);
               ("seed", Json.Int m.seed); ("history", Json.String m.history);
               ("dropped", Json.Int m.dropped) ] ) ]
  :: List.init (max 1 m.workers) (fun w ->
         Json.Obj
           [ ("name", Json.String "thread_name"); ("ph", Json.String "M");
             ("pid", Json.Int 1); ("tid", Json.Int w);
             ("args",
              Json.Obj [ ("name", Json.String (Printf.sprintf "worker %d" w)) ])
           ])

let to_json m events = Json.List (meta_events m @ List.map event_to_json events)
let to_string m events = Json.to_string (to_json m events)

let write_file path m events =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string m events);
      Out_channel.output_string oc "\n")

let parse_json j =
  let entries =
    match j with
    | Json.List xs -> Ok xs
    | Json.Obj _ as obj -> (
      (* Also accept the object form some tools re-save. *)
      match Option.bind (Json.member "traceEvents" obj) Json.to_list with
      | Some xs -> Ok xs
      | None -> Error "no traceEvents array")
    | _ -> Error "expected a trace_event array"
  in
  Result.map
    (fun entries ->
      let meta = ref (meta ()) in
      let events =
        List.filter_map
          (fun entry ->
            let name =
              Option.bind (Json.member "name" entry) Json.to_string_opt
            in
            let args = Json.member "args" entry in
            match (name, args) with
            | Some n, Some args when n = meta_name ->
              (meta :=
                 {
                   tool = Event.get_string ~default:"isolation_lab" "tool" args;
                   level = Event.get_string "level" args;
                   mix = Event.get_string "mix" args;
                   workers = Event.get_int "workers" args;
                   seed = Event.get_int "seed" args;
                   history = Event.get_string "history" args;
                   dropped = Event.get_int "dropped" args;
                 });
              None
            | _, Some args -> Event.of_args args
            | _ -> None)
          entries
      in
      let events =
        List.stable_sort
          (fun (a : Event.t) (b : Event.t) -> compare a.ts_ns b.ts_ns)
          events
      in
      (!meta, events))
    entries

let parse text =
  match Json.parse text with
  | Error e -> Error (Fmt.str "%a" Json.pp_error e)
  | Ok j -> parse_json j

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg
