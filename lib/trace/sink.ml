(* The runtime's tracing endpoint: one ring per worker domain, selected
   through domain-local storage so that code which does not know its
   worker index (the lock-table hook, running under the execution latch
   on whichever domain took it) still lands events in the right ring.

   Emit path: read the DLS slot, check it belongs to this sink (a sink id
   guards against stale bindings from a previous run on the same domain),
   stamp the clock, write into the single-writer ring. No locks anywhere;
   an unattached domain's events are counted as orphaned and dropped
   rather than ever blocking. *)

type t = {
  id : int;
  rings : Ring.t array; (* index = worker *)
  epoch_ns : int;       (* subtracted from every stamp: small, stable ts *)
  orphaned : int Atomic.t;
  (* Side channel for domains that own no ring (the watchdog): a
     mutex-protected list, merged into [events]. Cold path — a handful of
     events per run, never on a worker's hot path. *)
  ext_m : Mutex.t;
  mutable ext : Event.t list; (* newest first *)
}

let ids = Atomic.make 1

(* What the current domain is attached to: which sink, which worker. *)
let binding : (int * int * Ring.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let create ?(capacity_per_worker = 65536) ~workers () =
  {
    id = Atomic.fetch_and_add ids 1;
    rings =
      Array.init (max 1 workers) (fun _ -> Ring.create ~capacity:capacity_per_worker);
    epoch_ns = now_ns ();
    orphaned = Atomic.make 0;
    ext_m = Mutex.create ();
    ext = [];
  }

let attach t ~worker =
  let worker = worker mod Array.length t.rings in
  Domain.DLS.get binding := Some (t.id, worker, t.rings.(worker))

let emit t ~tid kind =
  match !(Domain.DLS.get binding) with
  | Some (id, worker, ring) when id = t.id ->
    Ring.record ring { Event.ts_ns = now_ns () - t.epoch_ns; tid; worker; kind }
  | _ -> Atomic.incr t.orphaned

(* For domains with no ring of their own — the watchdog, or post-run
   bookkeeping (crash-replay summaries). Never touches the single-writer
   rings, so it is safe from any domain at any time. *)
let emit_external t ~worker ~tid kind =
  let e = { Event.ts_ns = now_ns () - t.epoch_ns; tid; worker; kind } in
  Mutex.lock t.ext_m;
  t.ext <- e :: t.ext;
  Mutex.unlock t.ext_m

let dropped t =
  Array.fold_left (fun acc r -> acc + Ring.dropped r) (Atomic.get t.orphaned) t.rings

let written t = Array.fold_left (fun acc r -> acc + Ring.written r) 0 t.rings

(* Merge the per-worker rings and the external side channel into one
   global timeline. *)
let events t =
  let ext =
    Mutex.lock t.ext_m;
    let es = t.ext in
    Mutex.unlock t.ext_m;
    List.rev es
  in
  Array.to_list t.rings
  |> List.concat_map Ring.to_list
  |> (fun ring_events -> ring_events @ ext)
  |> List.stable_sort (fun (a : Event.t) (b : Event.t) ->
         compare a.ts_ns b.ts_ns)
