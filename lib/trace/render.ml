(* Text renderings of a trace: the global event log, per-transaction
   timelines with the phase breakdown, the compact one-line history in
   the paper's own notation, and — the piece the paper's argument turns
   on — anomaly provenance: given an oracle witness, the annotated
   excerpt of the history showing exactly the H1/H2/H3-style
   interleaving that occurred, the dependency edges that close the
   cycle, and (when trace events are available) the wall-clock moment
   and worker that executed each witness operation. *)

module A = History.Action
module P = Phenomena.Phenomenon
module Detect = Phenomena.Detect

let ms ns = float ns /. 1e6

(* {2 Event log and timelines} *)

let event_log ?(limit = max_int) ppf events =
  let n = List.length events in
  if n > limit then Fmt.pf ppf "(%d events; showing the last %d)@," n limit;
  let shown =
    if n <= limit then events
    else List.filteri (fun i _ -> i >= n - limit) events
  in
  List.iter (fun e -> Fmt.pf ppf "%a@," Event.pp e) shown

let pp_phase ppf (s : Span.t) =
  Fmt.pf ppf "exec %.3fms, lock wait %.3fms, retry backoff %.3fms"
    (ms (Span.exec_ns s))
    (ms s.Span.lock_wait_ns)
    (ms s.Span.retry_backoff_ns)

let timeline ppf spans =
  Fmt.pf ppf "@[<v>%-6s %-16s %3s %2s %9s %9s %8s %8s %6s %s@,"
    "txn" "job" "try" "w" "start_ms" "wall_ms" "exec_ms" "wait_ms" "steps"
    "outcome";
  List.iter
    (fun (s : Span.t) ->
      Fmt.pf ppf "T%-5d %-16s %3d %2d %9.3f %9.3f %8.3f %8.3f %6d %a%s@,"
        s.Span.tid
        (if s.Span.name = "" then "?" else s.Span.name)
        s.Span.attempt s.Span.worker (ms s.Span.start_ns)
        (ms (Span.wall_ns s))
        (ms (Span.exec_ns s))
        (ms s.Span.lock_wait_ns)
        s.Span.steps Span.pp_outcome s.Span.outcome
        (String.concat ""
           [
             (if s.Span.deadlock_victim then " [deadlock victim]" else "");
             (if s.Span.faults > 0 then
                Printf.sprintf " [faults %d]" s.Span.faults
              else "");
             (if s.Span.deadline_exceeded then " [deadline]" else "");
             (if s.Span.watchdog_kicks > 0 then " [watchdog]" else "");
           ])
    )
    spans;
  Fmt.pf ppf "@]"

let transaction ppf (s : Span.t) =
  Fmt.pf ppf "@[<v>T%d: job %d %S attempt %d on worker %d (%s)@,"
    s.Span.tid s.Span.job s.Span.name s.Span.attempt s.Span.worker
    (if s.Span.level = "" then "?" else s.Span.level);
  Fmt.pf ppf "  %a, wall %.3fms: %a@,"
    Span.pp_outcome s.Span.outcome
    (ms (Span.wall_ns s))
    pp_phase s;
  Fmt.pf ppf "  %d steps (%d blocked), %d lock conflicts@,"
    s.Span.steps s.Span.blocked_steps s.Span.lock_conflicts;
  List.iter (fun e -> Fmt.pf ppf "  %a@," Event.pp e) s.Span.events;
  Fmt.pf ppf "@]"

(* {2 The paper's notation} *)

let history_line h = History.to_string h

(* {2 Anomaly provenance} *)

(* The Step_end event whose emitted history range covers position [p]. *)
let event_at_position events p =
  List.find_opt
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Step_end { hpos0; hpos1; _ } -> hpos0 <= p && p < hpos1
      | _ -> false)
    events

(* Conflict-edge label in dependency vocabulary: the kind of dependency
   the earlier action induces on the later one. *)
let edge_label a b =
  let item =
    match A.key a with
    | Some k -> k
    | None -> (
      match a with A.Pred_read pr -> pr.A.pname | _ -> "?")
  in
  match (a, b) with
  | A.Write _, A.Write _ -> Printf.sprintf "ww[%s]" item
  | A.Write _, (A.Read _ | A.Pred_read _) -> Printf.sprintf "wr[%s]" item
  | (A.Read _ | A.Pred_read _), A.Write _ -> (
    match b with
    | A.Write w -> Printf.sprintf "rw[%s]" w.A.wk
    | _ -> Printf.sprintf "rw[%s]" item)
  | _ -> Printf.sprintf "conflict[%s]" item

let context = 2 (* history positions of context around the witness window *)

let provenance ?(events = []) ppf ~(history : History.t)
    (w : Detect.witness) =
  let arr = Array.of_list history in
  let n = Array.length arr in
  let minp = List.fold_left min max_int w.Detect.positions in
  let maxp = List.fold_left max 0 w.Detect.positions in
  let lo = max 0 (minp - context) and hi = min (n - 1) (maxp + context) in
  Fmt.pf ppf "@[<v>%s (%s): T%d is the template's T1, T%d is T2@,"
    (P.name w.Detect.phenomenon)
    (P.long_name w.Detect.phenomenon)
    w.Detect.t1 w.Detect.t2;
  if w.Detect.note <> "" then Fmt.pf ppf "  %s@," w.Detect.note;
  (* One line of the excerpt in the paper's notation. *)
  let excerpt =
    String.concat " "
      (List.init (hi - lo + 1) (fun i -> A.to_string arr.(lo + i)))
  in
  Fmt.pf ppf "  interleaving (h%d..h%d)%s:@,    %s%s@," lo hi
    (if lo > 0 then " after ..." else "")
    excerpt
    (if hi < n - 1 then " ..." else "");
  (* The annotated, per-position view. *)
  List.iter
    (fun p ->
      let a = arr.(p) in
      let marker =
        if not (List.mem p w.Detect.positions) then ""
        else if A.txn a = w.Detect.t1 then "  <-- witness (T1 role)"
        else if A.txn a = w.Detect.t2 then "  <-- witness (T2 role)"
        else "  <-- witness"
      in
      let timing =
        match event_at_position events p with
        | Some e ->
          Printf.sprintf "  @ %+.3fms on worker %d" (ms e.Event.ts_ns)
            e.Event.worker
        | None -> ""
      in
      Fmt.pf ppf "    h%-4d %-24s%s%s@," p (A.to_string a) timing marker)
    (List.init (hi - lo + 1) (fun i -> lo + i));
  (* Dependency edges between the witness transactions inside the window:
     the edges that close the cycle the anomaly is made of. *)
  let edges = ref [] in
  for i = lo to hi do
    for j = i + 1 to hi do
      let a = arr.(i) and b = arr.(j) in
      let ta = A.txn a and tb = A.txn b in
      if
        ta <> tb
        && List.mem ta [ w.Detect.t1; w.Detect.t2 ]
        && List.mem tb [ w.Detect.t1; w.Detect.t2 ]
        && A.conflicts a b
      then begin
        let label = Printf.sprintf "T%d --%s--> T%d" ta (edge_label a b) tb in
        if not (List.mem label !edges) then edges := label :: !edges
      end
    done
  done;
  (match List.rev !edges with
  | [] -> ()
  | edges ->
    Fmt.pf ppf "  dependency edges: %s@," (String.concat ", " edges));
  Fmt.pf ppf "@]"
