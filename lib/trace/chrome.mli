(** Chrome [trace_event] export (loadable in chrome://tracing and
    Perfetto) that doubles as the lossless native trace format: every
    event's full payload rides in [args], and a metadata event carries
    the run configuration plus the recorded history in the paper's
    notation, so {!parse} recovers everything [isolation_lab explain]
    needs from the file alone.

    Layout: one process, one lane per worker domain. Transaction attempts
    and engine steps are B/E slice pairs, backoff sleeps are X slices
    spanning the time slept, lock traffic and deadlocks are instants. *)

type meta = {
  tool : string;
  level : string;
  mix : string;
  workers : int;
  seed : int;
  history : string;
      (** the engine trace in the paper's notation — parseable by
          [History.Parser], which is how [explain] re-runs the oracle *)
  dropped : int;  (** events the flight recorder lost *)
}

val meta :
  ?tool:string ->
  ?level:string ->
  ?mix:string ->
  ?workers:int ->
  ?seed:int ->
  ?history:string ->
  ?dropped:int ->
  unit ->
  meta

val to_json : meta -> Event.t list -> Json.t
val to_string : meta -> Event.t list -> string
val write_file : string -> meta -> Event.t list -> unit

val parse : string -> (meta * Event.t list, string) result
(** Invert the export: accepts the array form this module writes and the
    [{"traceEvents": ...}] object form; foreign events are skipped. *)

val read_file : string -> (meta * Event.t list, string) result
