(** Spans: per-transaction timelines folded from the event stream, with
    the phase breakdown (execution vs lock wait vs retry backoff) that
    also feeds [Runtime.Metrics]'s phase histograms.

    Transaction ids are globally fresh in the runtime — one tid is one
    attempt — so a span is an attempt: which job, which try, on which
    worker, when, and where the time went. *)

type outcome = Committed | Aborted of string | Unfinished

type t = {
  tid : int;
  job : int;            (** -1 when the Attempt_begin event was dropped *)
  name : string;
  attempt : int;
  level : string;
  worker : int;
  start_ns : int;
  finish_ns : int;
  outcome : outcome;
  steps : int;          (** engine step attempts, including blocked retries *)
  blocked_steps : int;
  lock_wait_ns : int;   (** slept outside the latch after Blocked steps *)
  retry_backoff_ns : int;
      (** slept after this attempt failed, before the job's next attempt *)
  lock_conflicts : int;
  deadlock_victim : bool;
  faults : int;  (** fault-plan injections into this attempt *)
  deadline_exceeded : bool;  (** aborted for blowing its deadline *)
  watchdog_kicks : int;  (** watchdog sightings while this tid ran *)
  events : Event.t list;  (** this tid's events, oldest first *)
}

val wall_ns : t -> int
val exec_ns : t -> int
(** Wall time minus lock waits: engine work, latch waits and think time. *)

val pp_outcome : outcome Fmt.t

val of_events : Event.t list -> t list
(** Fold a merged timeline into spans, sorted by start time. Tolerates
    truncated streams (ring overwrote an attempt's early events). *)

val find : t list -> int -> t option

val retry_overhead_ns : t list -> int
(** Total time charged to retrying: failed attempts' wall time plus all
    restart backoff sleeps. *)
