(** Text renderings of a trace: the global event log, per-transaction
    timelines with phase breakdowns, the paper-notation history line, and
    anomaly provenance — the annotated interleaving excerpt for an
    oracle witness, with the dependency edges that close the cycle and
    (when events are available) the wall-clock moment and worker that
    executed each witness operation. *)

val event_log : ?limit:int -> Format.formatter -> Event.t list -> unit
(** The merged event stream, one line per event; with [limit], only the
    newest [limit] events. *)

val timeline : Format.formatter -> Span.t list -> unit
(** One row per transaction attempt: start, wall, exec/wait phase split,
    steps, outcome. *)

val transaction : Format.formatter -> Span.t -> unit
(** Full detail for one span: phase breakdown plus its event log. *)

val history_line : History.t -> string
(** The history in the paper's own shorthand ([r1[x] w2[y] c1 ...]). *)

val event_at_position : Event.t list -> int -> Event.t option
(** The [Step_end] event whose emitted history range covers the
    position — how witness positions map back to trace events. *)

val provenance :
  ?events:Event.t list ->
  Format.formatter ->
  history:History.t ->
  Phenomena.Detect.witness ->
  unit
(** Annotated excerpt for one witness: the interleaving window in paper
    notation, each position marked with its witness role, the dependency
    edges between the witness transactions, and per-operation timing when
    [events] covers the window. *)
