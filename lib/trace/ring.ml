(* A fixed-capacity single-writer flight recorder. The slot array is
   preallocated at creation, so recording an event is two writes and an
   increment — no allocation, no locks, no CAS. When the ring is full the
   oldest slot is overwritten: a flight recorder keeps the newest events
   and *counts* what it dropped, it never blocks the writer.

   One ring has exactly one writer (the pool gives each worker domain its
   own ring). Readers drain only after the writer's domain has been
   joined, so the join's happens-before makes the plain mutable fields
   safe to read. *)

type t = {
  capacity : int;
  slots : Event.t option array;
  mutable next : int; (* total events ever written; slot = next mod capacity *)
}

let create ~capacity =
  let capacity = max 1 capacity in
  { capacity; slots = Array.make capacity None; next = 0 }

let record t e =
  t.slots.(t.next mod t.capacity) <- Some e;
  t.next <- t.next + 1

let written t = t.next
let dropped t = max 0 (t.next - t.capacity)

(* Oldest surviving event first. *)
let to_list t =
  let first = dropped t in
  let rec go i acc =
    if i < first then acc
    else
      match t.slots.(i mod t.capacity) with
      | Some e -> go (i - 1) (e :: acc)
      | None -> acc
  in
  go (t.next - 1) []
