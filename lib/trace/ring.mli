(** A fixed-capacity, single-writer, overwrite-oldest event ring (flight
    recorder). Recording never allocates, locks or blocks; when full, the
    oldest event is overwritten and counted as dropped.

    Safety: one writer per ring. Drain with {!to_list} only after the
    writer's domain has been joined (the join provides the
    happens-before). *)

type t

val create : capacity:int -> t
val record : t -> Event.t -> unit

val written : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to overwriting: [max 0 (written - capacity)]. *)

val to_list : t -> Event.t list
(** The surviving (newest) events, oldest first. *)
