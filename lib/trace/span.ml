(* Spans: the per-transaction view of the event stream. Transaction ids
   are globally fresh in the runtime (a retried job is a new tid), so one
   tid is exactly one attempt and its events fold into one span.

   The phase breakdown partitions an attempt's wall time:

     wall = exec + lock_wait        (within the attempt)
     retry overhead = the whole wall time of failed attempts, plus the
                      restart backoff slept before the next attempt

   [lock_wait] is the time actually slept outside the latch after
   Blocked steps; [exec] is everything else (latch waits, engine work,
   think time). The runtime feeds the same numbers into
   [Runtime.Metrics]'s phase histograms as it records them; this module
   recomputes them from a saved event stream so [explain] can render the
   breakdown from a file alone. *)

type outcome = Committed | Aborted of string | Unfinished

type t = {
  tid : int;
  job : int;
  name : string;
  attempt : int;
  level : string;
  worker : int;
  start_ns : int;
  finish_ns : int;
  outcome : outcome;
  steps : int;            (* engine step attempts, including blocked ones *)
  blocked_steps : int;
  lock_wait_ns : int;     (* slept after Blocked steps *)
  retry_backoff_ns : int; (* slept after this attempt failed *)
  lock_conflicts : int;
  deadlock_victim : bool;
  faults : int;               (* fault-plan injections into this attempt *)
  deadline_exceeded : bool;   (* aborted for blowing its deadline *)
  watchdog_kicks : int;       (* watchdog sightings while this tid ran *)
  events : Event.t list;  (* this tid's events, oldest first *)
}

let wall_ns s = max 0 (s.finish_ns - s.start_ns)
let exec_ns s = max 0 (wall_ns s - s.lock_wait_ns)

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted r -> Fmt.pf ppf "aborted (%s)" r
  | Unfinished -> Fmt.string ppf "unfinished"

let of_events (events : Event.t list) =
  let tids = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match Hashtbl.find_opt tids e.tid with
      | Some es -> es := e :: !es
      | None ->
        Hashtbl.add tids e.tid (ref [ e ]);
        order := e.tid :: !order)
    events;
  List.rev_map
    (fun tid ->
      let events = List.rev !(Hashtbl.find tids tid) in
      let first = List.hd events in
      let init =
        {
          tid;
          job = -1;
          name = "";
          attempt = 0;
          level = "";
          worker = first.Event.worker;
          start_ns = first.Event.ts_ns;
          finish_ns = first.Event.ts_ns;
          outcome = Unfinished;
          steps = 0;
          blocked_steps = 0;
          lock_wait_ns = 0;
          retry_backoff_ns = 0;
          lock_conflicts = 0;
          deadlock_victim = false;
          faults = 0;
          deadline_exceeded = false;
          watchdog_kicks = 0;
          events;
        }
      in
      List.fold_left
        (fun s (e : Event.t) ->
          (* The retry backoff is slept after the attempt's terminal
             action; everything else extends the attempt's interval. *)
          let s =
            match e.kind with
            | Event.Retry_backoff _ -> s
            | _ -> { s with finish_ns = max s.finish_ns e.ts_ns }
          in
          match e.kind with
          | Event.Attempt_begin { job; name; attempt; level } ->
            { s with job; name; attempt; level; worker = e.worker;
              start_ns = e.ts_ns }
          | Event.Step_begin _ -> { s with steps = s.steps + 1 }
          | Event.Step_end { outcome = Event.Blocked _; _ } ->
            { s with blocked_steps = s.blocked_steps + 1 }
          | Event.Step_end _ -> s
          | Event.Lock_wait { slept_ns } ->
            { s with lock_wait_ns = s.lock_wait_ns + slept_ns }
          | Event.Retry_backoff { slept_ns; _ } ->
            { s with retry_backoff_ns = s.retry_backoff_ns + slept_ns }
          | Event.Lock_conflict _ ->
            { s with lock_conflicts = s.lock_conflicts + 1 }
          | Event.Deadlock_victim _ -> { s with deadlock_victim = true }
          | Event.Fault_inject _ -> { s with faults = s.faults + 1 }
          | Event.Deadline_exceeded _ -> { s with deadline_exceeded = true }
          | Event.Watchdog _ -> { s with watchdog_kicks = s.watchdog_kicks + 1 }
          | Event.Commit -> { s with outcome = Committed }
          | Event.Abort { reason } -> { s with outcome = Aborted reason }
          | Event.Lock_grant _ | Event.Lock_release _ | Event.Stripe_wait _
          | Event.Stall_restart | Event.Crash_replay _ | Event.Dep_edge _
          | Event.Dep_cycle _ | Event.Conn_open _ | Event.Conn_close _
          | Event.Session_open _ | Event.Session_close _
          | Event.Session_park _ | Event.Session_resume _ ->
            s)
        init events)
    !order
  |> List.sort (fun a b -> compare (a.start_ns, a.tid) (b.start_ns, b.tid))

let find spans tid = List.find_opt (fun s -> s.tid = tid) spans

(* Aggregate retry overhead chargeable to failed attempts. *)
let retry_overhead_ns spans =
  List.fold_left
    (fun acc s ->
      match s.outcome with
      | Committed -> acc + s.retry_backoff_ns
      | Aborted _ | Unfinished -> acc + wall_ns s + s.retry_backoff_ns)
    0 spans
