(** A minimal JSON value type, printer and parser — just enough of
    RFC 8259 to write Chrome [trace_event] files and read them back in
    [isolation_lab explain]. The repository carries no JSON dependency;
    this is the tracing layer's own. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

type error = { position : int; message : string }

val pp_error : error Fmt.t

val parse : string -> (t, error) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

(** {2 Accessors} — shallow, total lookups used by the trace reader. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** Accepts integral floats too (Chrome tools rewrite numbers freely). *)

val to_bool_opt : t -> bool option

val to_float_opt : t -> float option
(** Accepts ints too (JSON writers drop the fraction on whole numbers). *)
