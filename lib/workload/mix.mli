(** Weighted isolation-level mixes — the ["rc=3,si=1,serializable=0.5"]
    notation shared by [loadgen --levels], [stress --levels] and
    [chaos --levels]. *)

type t = (Isolation.Level.t * float) list
(** Declared distribution over levels; weights are relative. *)

val parse : string -> (t, string) result
(** Parse ["level[=weight],..."] (weights default to 1, must be
    positive). [Error] carries the one shared user-facing message. *)

val to_string : t -> string
(** Round-trippable rendering, [slug=weight] comma-joined. *)

val levels : t -> Isolation.Level.t list
(** The distinct declared levels, first-occurrence order. *)

val family : t -> [ `Locking | `Mv | `Timestamp ]
(** The engine family holding the most declared weight; ties break
    toward [`Locking]. Cross-family mixes execute each transaction at
    {!Isolation.Lattice.strengthen}[ declared (family mix)]. *)

val pick : t -> Random.State.t -> Isolation.Level.t
(** One weighted draw. *)

val draw : t -> seed:int -> index:int -> Isolation.Level.t
(** Deterministic declared level of transaction [index] under [seed] —
    a pure function, independent of worker scheduling. *)
