(* Random workload generators: arbitrary well-formed programs and
   schedules for property tests, and the parameterized workloads behind
   the §4.2 performance claims (readers never block under SI; long update
   transactions starve under First-Committer-Wins). *)

module Program = Core.Program
module Predicate = Storage.Predicate

let pick rand xs = List.nth xs (Random.State.int rand (List.length xs))

(* A random straight-line program over [keys]: reads, computed writes,
   inserts, deletes and predicate scans, ending in commit (or, rarely, a
   user abort). *)
let random_program ?(allow_abort = true) ~rand ~keys ~ops () =
  let scan_pred = Predicate.all in
  let rec build n acc read_keys =
    if n = 0 then List.rev (pick_end () :: acc)
    else
      let op =
        match Random.State.int rand 10 with
        | 0 | 1 | 2 | 3 ->
          let k = pick rand keys in
          `Read k
        | 4 | 5 | 6 ->
          let k = pick rand keys in
          `Write k
        | 7 -> `Insert (pick rand keys)
        | 8 -> `Delete (pick rand keys)
        | _ -> `Scan
      in
      match op with
      | `Read k -> build (n - 1) (Program.Read k :: acc) (k :: read_keys)
      | `Write k ->
        let expr =
          if List.mem k read_keys && Random.State.bool rand then begin
            (* Total even if the row was read as absent (e.g. deleted). *)
            let delta = Random.State.int rand 20 - 10 in
            fun env -> Program.value_or env k ~default:0 + delta
          end
          else Program.const (Random.State.int rand 100)
        in
        build (n - 1) (Program.Write (k, expr) :: acc) read_keys
      | `Insert k ->
        build (n - 1)
          (Program.Insert (k, Program.const (Random.State.int rand 100)) :: acc)
          read_keys
      | `Delete k -> build (n - 1) (Program.Delete k :: acc) read_keys
      | `Scan -> build (n - 1) (Program.Scan scan_pred :: acc) read_keys
  and pick_end () =
    if allow_abort && Random.State.int rand 10 = 0 then Program.Abort
    else Program.Commit
  in
  Program.make ~name:"random" (build ops [] [])

let random_programs ?allow_abort ~rand ~keys ~txns ~ops () =
  List.init txns (fun _ -> random_program ?allow_abort ~rand ~keys ~ops ())

(* A uniformly random merge of the programs' attempt sequences. One extra
   attempt per program covers the auto-commit. *)
let random_schedule ~rand programs =
  let remaining =
    Array.of_list (List.map (fun p -> Program.length p + 1) programs)
  in
  let total = Array.fold_left ( + ) 0 remaining in
  let rec draw acc left =
    if left = 0 then List.rev acc
    else begin
      let live =
        List.filter
          (fun i -> remaining.(i) > 0)
          (List.init (Array.length remaining) Fun.id)
      in
      let i = pick rand live in
      remaining.(i) <- remaining.(i) - 1;
      draw ((i + 1) :: acc) (left - 1)
    end
  in
  draw [] total

(* {2 Performance workloads (§4.2 claims)} *)

let account i = Printf.sprintf "acct_%03d" i

let bank_accounts n = List.init n (fun i -> (account i, 100))

(* A read-only audit sweeping all accounts. *)
let audit_program ~accounts =
  Program.make ~name:"audit"
    (List.init accounts (fun i -> Program.Read (account i)) @ [ Program.Commit ])

(* A short transfer between two random accounts. *)
let transfer_program ~rand ~accounts ~amount =
  let a = Random.State.int rand accounts in
  let b = (a + 1 + Random.State.int rand (max 1 (accounts - 1))) mod accounts in
  Program.make ~name:"transfer"
    [
      Program.Read (account a);
      Program.Write (account a, Program.read_plus (account a) (-amount));
      Program.Read (account b);
      Program.Write (account b, Program.read_plus (account b) amount);
      Program.Commit;
    ]

(* Read-heavy mix: one long audit and [writers] short transfers. Under
   two-phase locking the audit and the transfers block each other; under
   Snapshot Isolation the audit reads its snapshot and never blocks. *)
let read_heavy ~rand ~accounts ~writers =
  audit_program ~accounts
  :: List.init writers (fun _ -> transfer_program ~rand ~accounts ~amount:1)

(* One long update transaction touching [touches] accounts, competing with
   [writers] short high-contention updates on the same accounts — the
   §4.2 regime where the long transaction "is unlikely to be the first
   writer of everything it writes". *)
let long_vs_short ~rand ~accounts ~touches ~writers =
  let long =
    Program.make ~name:"long-update"
      (List.concat_map
         (fun i ->
           [ Program.Read (account i);
             Program.Write (account i, Program.read_plus (account i) 1) ])
         (List.init touches (fun i -> i mod accounts))
      @ [ Program.Commit ])
  in
  let short _ =
    let a = Random.State.int rand accounts in
    Program.make ~name:"short-update"
      [
        Program.Read (account a);
        Program.Write (account a, Program.read_plus (account a) (-1));
        Program.Commit;
      ]
  in
  long :: List.init writers short

(* {2 Stress mixes for the multicore runtime}

   Each mix is a pure function of (seed, index): program [index] of a
   stress run depends on nothing else, so the runtime's workers can
   generate jobs concurrently (and a rerun with the same seed offers the
   same work, even though the hardware will interleave it differently). *)

type mix = Transfer | Hotspot | Read_heavy | Mixed

let all_mixes = [ Transfer; Hotspot; Read_heavy; Mixed ]

let mix_name = function
  | Transfer -> "transfer"
  | Hotspot -> "hotspot"
  | Read_heavy -> "read-heavy"
  | Mixed -> "mixed"

let mix_of_string s =
  match String.lowercase_ascii s with
  | "transfer" -> Some Transfer
  | "hotspot" -> Some Hotspot
  | "read-heavy" | "read_heavy" | "readheavy" -> Some Read_heavy
  | "mixed" -> Some Mixed
  | _ -> None

(* An increment of one account drawn from the first [hot] — the
   contended read-modify-write that loses updates at weak levels. The
   program name carries the key so journals can be audited per key. *)
let increment_program ~rand ~accounts ~hot =
  let k = account (Random.State.int rand (max 1 (min hot accounts))) in
  Program.make ~name:(Printf.sprintf "inc:%s" k)
    [ Program.Read k; Program.Write (k, Program.read_plus k 1); Program.Commit ]

let stress_program mix ~seed ~accounts ~hot ~ops ~index =
  let rand = Random.State.make [| 0x57e55; seed; index |] in
  match mix with
  | Transfer -> transfer_program ~rand ~accounts ~amount:1
  | Hotspot -> increment_program ~rand ~accounts ~hot
  | Read_heavy ->
    if index mod 8 = 0 then audit_program ~accounts
    else transfer_program ~rand ~accounts ~amount:1
  | Mixed ->
    let keys = List.init accounts account in
    random_program ~allow_abort:false ~rand ~keys ~ops ()
