(* Umbrella module of the [workload] library: the paper's example
   histories, the scenario catalog classifying each phenomenon, and random
   workload generators. *)

module Scenario = Scenario
module Catalog = Catalog
module Paper_histories = Paper_histories
module Generators = Generators
module Mix = Mix
module Script = Script
