(* Weighted isolation-level mixes: the "rc=3,si=1,serializable=0.5"
   notation shared by [loadgen --levels], [stress --levels] and
   [chaos --levels]. One parser, one error message.

   A mix is a declared distribution over levels. The declared level is a
   per-transaction contract; when the mix spans engine families the run
   picks one engine (weight-plurality family) and executes each
   transaction at [Isolation.Lattice.strengthen declared family], which
   preserves every promise the declared level makes. *)

module Level = Isolation.Level

type t = (Level.t * float) list

let error_message s =
  Printf.sprintf
    "bad level mix %S: comma-separated level[=weight] with positive \
     weights, e.g. \"rc=3,si=1\""
    s

let parse s =
  let parts = String.split_on_char ',' (String.trim s) in
  let parse_one p =
    let name, w =
      match String.index_opt p '=' with
      | None -> (p, 1.0)
      | Some i -> (
        ( String.sub p 0 i,
          let ws = String.sub p (i + 1) (String.length p - i - 1) in
          match float_of_string_opt (String.trim ws) with
          | Some w when w > 0. -> w
          | _ -> -1. ))
    in
    match Level.of_string (String.trim name) with
    | Some l when w > 0. -> Some (l, w)
    | _ -> None
  in
  let entries = List.map parse_one parts in
  if entries = [] || List.exists Option.is_none entries then
    Error (error_message s)
  else Ok (List.filter_map Fun.id entries)

let to_string mix =
  String.concat ","
    (List.map (fun (l, w) -> Printf.sprintf "%s=%g" (Level.slug l) w) mix)

let levels mix =
  List.fold_left
    (fun acc (l, _) -> if List.mem l acc then acc else acc @ [ l ])
    [] mix

(* The engine family carrying the run: the one holding the most declared
   weight, ties broken toward locking (the paper's baseline engine). *)
let family mix =
  let weight f =
    List.fold_left
      (fun acc (l, w) -> if Level.family l = f then acc +. w else acc)
      0. mix
  in
  let lk = weight `Locking and mv = weight `Mv and ts = weight `Timestamp in
  if lk >= mv && lk >= ts then `Locking else if mv >= ts then `Mv else `Timestamp

let pick mix rng =
  match mix with
  | [] -> invalid_arg "Mix.pick: empty mix"
  | [ (l, _) ] -> l
  | mix ->
    let total = List.fold_left (fun a (_, w) -> a +. w) 0. mix in
    let x = Random.State.float rng total in
    let rec go acc = function
      | [] -> fst (List.hd mix)
      | (l, w) :: rest -> if x < acc +. w then l else go (acc +. w) rest
    in
    go 0. mix

(* Deterministic per-transaction draw: the declared level of transaction
   [index] under [seed], independent of scheduling — the same purity
   pattern as {!Generators.stress_program}. *)
let draw mix ~seed ~index =
  pick mix (Random.State.make [| 0x11f5; seed; index |])
