(** Interval telemetry: diff two cumulative readings into per-second
    rates and per-interval latency quantiles.

    All live reporters quote intervals through this one type: the
    in-process samplers build samples with {!of_snapshot}, the wire
    dashboard rebuilds them from STATS JSON with {!of_json}, and both
    feed {!delta}. Counters are cumulative and individually monotone
    (the {!Runtime.Metrics.snapshot} live contract), so a delta is
    meaningful mid-run; because the counter *set* is only approximately
    mutually consistent while workers record, every delta clamps at
    zero. *)

type sample = {
  at : float;  (** unix time the reading was cut *)
  committed : int;
  aborted : int;
  aborted_by : (string * int) list;
      (** abort-reason slug → cumulative count *)
  retries : int;
  giveups : int;
  deadlocks : int;
  stalls : int;
  certifier_aborts : int;
  per_level : (string * int * int * int) list;
      (** level slug → cumulative (committed, aborted, doomed) *)
  lat_hist : int array;
      (** cumulative log₂ latency bucket counts; [[||]] when the source
          carries no histogram (e.g. a loadgen-side sample) *)
}

val of_snapshot : Runtime.Metrics.snapshot -> sample

val of_json : Trace.Json.t -> sample option
(** Rebuild a sample from a {!Runtime.Metrics.to_json} object (the
    ["metrics"] member of a STATS reply). [None] if the object lacks
    [taken_at] or [committed]; other members default to zero/empty. *)

type rates = {
  interval_s : float;
  d_committed : int;
  d_aborted : int;
  d_aborted_by : (string * int) list;  (** non-zero deltas only *)
  d_retries : int;
  d_giveups : int;
  d_deadlocks : int;
  d_stalls : int;
  d_certifier_aborts : int;
  d_per_level : (string * int * int * int) list;
  commit_rate : float;  (** committed per second over the interval *)
  abort_rate : float;
  lat_p50_ms : float;
      (** latency quantiles of the *interval's* commits (histogram
          delta); 0 when no histogram or no commits *)
  lat_p99_ms : float;
}

val delta : sample -> sample -> rates
(** [delta older newer]. Negative raw deltas (possible only across
    samples of different runs) clamp to zero. *)

val pp_rates : rates Fmt.t
(** One compact interval line, as printed by [loadgen --progress]. *)
