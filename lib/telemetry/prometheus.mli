(** A minimal Prometheus text-exposition (0.0.4) writer — the
    telemetry layer's own encoder, like {!Trace.Json}: # HELP / # TYPE
    headers followed by [name{label="v"} value] sample lines. *)

type typ = Counter | Gauge
type t

val create : unit -> t

val family :
  t -> ?help:string -> typ:typ -> string -> ((string * string) list * float) list -> unit
(** Append one metric family: optional HELP, the TYPE header, then one
    sample line per (labels, value) pair. Label values are escaped per
    the format; emit each family name at most once per exposition. *)

val counter :
  t -> ?help:string -> string -> ((string * string) list * float) list -> unit

val gauge :
  t -> ?help:string -> string -> ((string * string) list * float) list -> unit

val to_string : t -> string
