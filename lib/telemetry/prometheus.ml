(* A minimal Prometheus text-exposition (version 0.0.4) writer, in the
   spirit of Trace.Json: the repository carries no metrics dependency,
   and the format is small — # HELP / # TYPE headers, then
   name{label="value"} number lines, families separated by their
   headers. Label values escape backslash, quote and newline, as the
   format requires. *)

type typ = Counter | Gauge

type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 1024 }

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Prometheus numbers are floats; render integral values without the
   fraction so the output stays diff-friendly and compact. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let family t ?help ~typ name samples =
  (match help with
  | Some h -> Buffer.add_string t.buf (Printf.sprintf "# HELP %s %s\n" name h)
  | None -> ());
  Buffer.add_string t.buf
    (Printf.sprintf "# TYPE %s %s\n" name
       (match typ with Counter -> "counter" | Gauge -> "gauge"));
  List.iter
    (fun (labels, v) ->
      let l =
        match labels with
        | [] -> ""
        | ls ->
          Printf.sprintf "{%s}"
            (String.concat ","
               (List.map
                  (fun (k, value) ->
                    Printf.sprintf "%s=\"%s\"" k (escape_label value))
                  ls))
      in
      Buffer.add_string t.buf
        (Printf.sprintf "%s%s %s\n" name l (number v)))
    samples

let counter t ?help name samples = family t ?help ~typ:Counter name samples
let gauge t ?help name samples = family t ?help ~typ:Gauge name samples
let to_string t = Buffer.contents t.buf
