(** The assembled live report: one scrape of a running system, rendered
    either as the STATS JSON object or as a Prometheus text exposition.

    The runtime side arrives as {!Runtime.Pool.live}; the server
    front-end contributes its own gauges through the plain-int records
    below (this module must not depend on [lib/server], which depends
    on it). *)

type scheduler = {
  runnable : int;  (** sessions queued for a worker right now *)
  parked : int;  (** sessions sleeping in the timer heap *)
  sessions_active : int;  (** sessions registered and not closed *)
  wakes : int;  (** cumulative ready-queue pops *)
  wake_wait_mean_us : float;  (** mean enqueue-to-run latency *)
  wake_wait_max_us : float;
}

type server = {
  conns : int;
  sessions : int;
  frames : int;
  protocol_errors : int;
  disconnects : int;
  draining : bool;
}

type t = {
  live : Runtime.Pool.live;
  scheduler : scheduler option;
  server : server option;
}

val make : ?scheduler:scheduler -> ?server:server -> Runtime.Pool.live -> t

val to_json : t -> string
(** One JSON object: [at], the {!Runtime.Metrics.to_json} object under
    ["metrics"] (which {!Window.of_json} reads back), then [certifier],
    [locks], [wal_entries], [history_len], [scheduler] and [server]
    sections as available. This is the STATS reply body. *)

val to_prometheus : t -> string
(** The same reading as a Prometheus text-format (0.0.4) exposition,
    metric names prefixed [isolation_lab_]. *)
