(* The assembled live report: everything one scrape of a running system
   says, in one value with two renderings (the STATS JSON object and
   the Prometheus exposition).

   Layering: this module depends only on the runtime, so the server
   front-end can *fill in* its own gauges (connection counts, scheduler
   occupancy) through plain-int records without a dependency cycle —
   the runtime side arrives as {!Runtime.Pool.live}. *)

module Metrics = Runtime.Metrics
module Pool = Runtime.Pool
module Certifier = Runtime.Certifier

type scheduler = {
  runnable : int;       (* sessions queued for a worker right now *)
  parked : int;         (* sessions sleeping in the timer heap *)
  sessions_active : int; (* sessions registered and not closed *)
  wakes : int;          (* cumulative ready-queue pops *)
  wake_wait_mean_us : float; (* mean enqueue-to-run latency *)
  wake_wait_max_us : float;
}

type server = {
  conns : int;
  sessions : int;
  frames : int;
  protocol_errors : int;
  disconnects : int;
  draining : bool;
}

type t = {
  live : Pool.live;
  scheduler : scheduler option;
  server : server option;
}

let make ?scheduler ?server live = { live; scheduler; server }

(* {2 JSON} *)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf {|{"at":%.6f|} t.live.Pool.at);
  Buffer.add_string b ",\"metrics\":";
  Buffer.add_string b (Metrics.to_json t.live.Pool.metrics);
  (match t.live.Pool.certifier with
  | None -> ()
  | Some (s : Certifier.stats) ->
    Buffer.add_string b
      (Printf.sprintf
         {|,"certifier":{"nodes":%d,"edges":%d,"queue":%d,"pending":%d,"dep_edges":{"wr":%d,"ww":%d,"rw":%d},"cycles":%d,"dooms":%d,"misses":%d,"tolerated":%d,"prune":{"passes":%d,"nodes":%d,"eras":%d}}|}
         s.s_nodes s.s_edges s.s_queue s.s_pending s.s_edges_wr s.s_edges_ww
         s.s_edges_rw s.s_cycles s.s_dooms s.s_misses s.s_tolerated
         s.s_prune_passes s.s_pruned_nodes s.s_pruned_eras));
  (match t.live.Pool.lock_stats with
  | None -> ()
  | Some (s : Locking.Lock_table.stats) ->
    Buffer.add_string b
      (Printf.sprintf
         {|,"locks":{"grants":%d,"conflicts":%d,"releases":%d,"upgrades":%d,"stripes":%d}|}
         s.grants s.conflicts s.releases s.upgrades t.live.Pool.lock_stripes));
  Buffer.add_string b
    (Printf.sprintf {|,"wal_entries":%d,"history_len":%d|}
       t.live.Pool.wal_entries t.live.Pool.history_len);
  (match t.live.Pool.wal_stats with
  | None -> ()
  | Some (w : Storage.Wal.stats) ->
    let hist =
      String.concat ","
        (List.map
           (fun (le, n) -> Printf.sprintf {|"%d":%d|} le n)
           w.Storage.Wal.w_batch_hist)
    in
    Buffer.add_string b
      (Printf.sprintf
         {|,"wal":{"records":%d,"segments":%d,"disk_bytes":%d,"syncs":%d,"checkpoints":%d,"truncated_segments":%d,"batch_hist":{%s}}|}
         w.Storage.Wal.w_records w.Storage.Wal.w_segments
         w.Storage.Wal.w_disk_bytes w.Storage.Wal.w_syncs
         w.Storage.Wal.w_checkpoints w.Storage.Wal.w_truncated_segments hist));
  (match t.scheduler with
  | None -> ()
  | Some s ->
    Buffer.add_string b
      (Printf.sprintf
         {|,"scheduler":{"runnable":%d,"parked":%d,"sessions_active":%d,"wakes":%d,"wake_wait_mean_us":%.1f,"wake_wait_max_us":%.1f}|}
         s.runnable s.parked s.sessions_active s.wakes s.wake_wait_mean_us
         s.wake_wait_max_us));
  (match t.server with
  | None -> ()
  | Some s ->
    Buffer.add_string b
      (Printf.sprintf
         {|,"server":{"conns":%d,"sessions":%d,"frames":%d,"protocol_errors":%d,"disconnects":%d,"draining":%b}|}
         s.conns s.sessions s.frames s.protocol_errors s.disconnects
         s.draining));
  Buffer.add_char b '}';
  Buffer.contents b

(* {2 Prometheus exposition} *)

let fi n = float_of_int n

let to_prometheus t =
  let p = Prometheus.create () in
  let m = t.live.Pool.metrics in
  Prometheus.counter p ~help:"Committed transactions"
    "isolation_lab_committed_total" [ ([], fi m.committed) ];
  Prometheus.counter p ~help:"Aborted transaction attempts by reason"
    "isolation_lab_aborted_total"
    (List.map
       (fun (r, n) -> ([ ("reason", Metrics.abort_reason_slug r) ], fi n))
       m.aborted);
  Prometheus.counter p "isolation_lab_retries_total" [ ([], fi m.retries) ];
  Prometheus.counter p "isolation_lab_giveups_total" [ ([], fi m.giveups) ];
  Prometheus.counter p "isolation_lab_deadlocks_total"
    [ ([], fi m.deadlocks) ];
  Prometheus.counter p "isolation_lab_stalls_total" [ ([], fi m.stalls) ];
  Prometheus.counter p ~help:"Blocked step attempts (lock waits)"
    "isolation_lab_lock_waits_total" [ ([], fi m.lock_waits) ];
  Prometheus.counter p ~help:"Transactions doomed by the online certifier"
    "isolation_lab_certifier_dooms_total" [ ([], fi m.certifier_aborts) ];
  if m.per_level <> [] then begin
    let level ls = [ ("level", Isolation.Level.slug ls.Metrics.level) ] in
    Prometheus.counter p ~help:"Commits by isolation level"
      "isolation_lab_level_committed_total"
      (List.map (fun ls -> (level ls, fi ls.Metrics.l_committed)) m.per_level);
    Prometheus.counter p ~help:"Aborts by isolation level"
      "isolation_lab_level_aborted_total"
      (List.map (fun ls -> (level ls, fi ls.Metrics.l_aborted)) m.per_level);
    Prometheus.counter p ~help:"Certifier dooms by isolation level"
      "isolation_lab_level_doomed_total"
      (List.map (fun ls -> (level ls, fi ls.Metrics.l_doomed)) m.per_level)
  end;
  Prometheus.gauge p ~help:"Committed per second since start"
    "isolation_lab_throughput_tps" [ ([], m.throughput) ];
  Prometheus.gauge p ~help:"Commit latency quantiles (lifetime)"
    "isolation_lab_latency_ms"
    [
      ([ ("quantile", "0.5") ], m.lat_p50_ms);
      ([ ("quantile", "0.9") ], m.lat_p90_ms);
      ([ ("quantile", "0.99") ], m.lat_p99_ms);
    ];
  Prometheus.counter p ~help:"Recorded history actions"
    "isolation_lab_history_actions_total"
    [ ([], fi t.live.Pool.history_len) ];
  Prometheus.counter p ~help:"WAL records written"
    "isolation_lab_wal_records_total" [ ([], fi t.live.Pool.wal_entries) ];
  (match t.live.Pool.wal_stats with
  | None -> ()
  | Some (w : Storage.Wal.stats) ->
    Prometheus.gauge p ~help:"Live WAL segment files"
      "isolation_lab_wal_segments" [ ([], fi w.Storage.Wal.w_segments) ];
    Prometheus.gauge p ~help:"Bytes across live WAL segments"
      "isolation_lab_wal_disk_bytes" [ ([], fi w.Storage.Wal.w_disk_bytes) ];
    Prometheus.counter p ~help:"Group-commit fsync batches"
      "isolation_lab_wal_syncs_total" [ ([], fi w.Storage.Wal.w_syncs) ];
    Prometheus.counter p ~help:"WAL checkpoints taken"
      "isolation_lab_wal_checkpoints_total"
      [ ([], fi w.Storage.Wal.w_checkpoints) ];
    Prometheus.counter p ~help:"Segments unlinked below checkpoints"
      "isolation_lab_wal_truncated_segments_total"
      [ ([], fi w.Storage.Wal.w_truncated_segments) ];
    if w.Storage.Wal.w_batch_hist <> [] then
      Prometheus.counter p
        ~help:"Group-commit fsyncs by commit-batch-size bucket"
        "isolation_lab_wal_commit_batches_total"
        (List.map
           (fun (le, n) -> ([ ("size_le", string_of_int le) ], fi n))
           w.Storage.Wal.w_batch_hist));
  (match t.live.Pool.lock_stats with
  | None -> ()
  | Some (s : Locking.Lock_table.stats) ->
    Prometheus.counter p "isolation_lab_lock_grants_total"
      [ ([], fi s.grants) ];
    Prometheus.counter p "isolation_lab_lock_conflicts_total"
      [ ([], fi s.conflicts) ];
    Prometheus.counter p "isolation_lab_lock_releases_total"
      [ ([], fi s.releases) ];
    Prometheus.counter p "isolation_lab_lock_upgrades_total"
      [ ([], fi s.upgrades) ];
    Prometheus.gauge p ~help:"Key stripes backing the lock table"
      "isolation_lab_lock_stripes" [ ([], fi t.live.Pool.lock_stripes) ]);
  (match t.live.Pool.certifier with
  | None -> ()
  | Some (s : Certifier.stats) ->
    Prometheus.gauge p ~help:"Certifier dependency-graph size"
      "isolation_lab_certifier_graph_nodes" [ ([], fi s.s_nodes) ];
    Prometheus.gauge p "isolation_lab_certifier_graph_edges"
      [ ([], fi s.s_edges) ];
    Prometheus.gauge p ~help:"Batched actions awaiting graph work"
      "isolation_lab_certifier_queue_depth" [ ([], fi s.s_queue) ];
    Prometheus.counter p ~help:"Dependency edges inserted by kind"
      "isolation_lab_certifier_edges_total"
      [
        ([ ("kind", "wr") ], fi s.s_edges_wr);
        ([ ("kind", "ww") ], fi s.s_edges_ww);
        ([ ("kind", "rw") ], fi s.s_edges_rw);
      ];
    Prometheus.counter p "isolation_lab_certifier_cycles_total"
      [ ([], fi s.s_cycles) ];
    Prometheus.counter p ~help:"Cycles with no active member left to doom"
      "isolation_lab_certifier_misses_total" [ ([], fi s.s_misses) ];
    Prometheus.counter p
      ~help:
        "Cycles every member's declared level permits (mixed criterion only)"
      "isolation_lab_certifier_tolerated_total" [ ([], fi s.s_tolerated) ];
    Prometheus.counter p ~help:"Era-pruning passes run"
      "isolation_lab_certifier_prune_passes_total"
      [ ([], fi s.s_prune_passes) ];
    Prometheus.counter p ~help:"Committed nodes retired by era pruning"
      "isolation_lab_certifier_pruned_nodes_total"
      [ ([], fi s.s_pruned_nodes) ];
    Prometheus.counter p ~help:"Settled era-stack entries trimmed"
      "isolation_lab_certifier_pruned_eras_total"
      [ ([], fi s.s_pruned_eras) ]);
  (match t.scheduler with
  | None -> ()
  | Some s ->
    Prometheus.gauge p ~help:"Sessions queued for a worker"
      "isolation_lab_scheduler_runnable" [ ([], fi s.runnable) ];
    Prometheus.gauge p ~help:"Sessions sleeping in the timer heap"
      "isolation_lab_scheduler_parked" [ ([], fi s.parked) ];
    Prometheus.gauge p "isolation_lab_scheduler_sessions_active"
      [ ([], fi s.sessions_active) ];
    Prometheus.counter p ~help:"Ready-queue pops"
      "isolation_lab_scheduler_wakes_total" [ ([], fi s.wakes) ];
    Prometheus.gauge p ~help:"Enqueue-to-run latency"
      "isolation_lab_scheduler_wake_wait_us"
      [
        ([ ("stat", "mean") ], s.wake_wait_mean_us);
        ([ ("stat", "max") ], s.wake_wait_max_us);
      ]);
  (match t.server with
  | None -> ()
  | Some s ->
    Prometheus.counter p "isolation_lab_server_conns_total"
      [ ([], fi s.conns) ];
    Prometheus.counter p "isolation_lab_server_sessions_total"
      [ ([], fi s.sessions) ];
    Prometheus.counter p "isolation_lab_server_frames_total"
      [ ([], fi s.frames) ];
    Prometheus.counter p "isolation_lab_server_protocol_errors_total"
      [ ([], fi s.protocol_errors) ];
    Prometheus.counter p ~help:"Injected connection severs"
      "isolation_lab_server_disconnects_total" [ ([], fi s.disconnects) ];
    Prometheus.gauge p ~help:"1 while draining"
      "isolation_lab_server_draining"
      [ ([], if s.draining then 1. else 0.) ]);
  Prometheus.to_string p
