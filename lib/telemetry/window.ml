(* Interval telemetry: diff two cumulative readings into what happened
   between them. Every consumer of live numbers — `stress --telemetry`,
   `loadgen --progress`, the `top` dashboard — quotes intervals, not
   lifetime totals, and they all go through this one type so the
   arithmetic (and its racy-tolerance caveats) lives in one place.

   A sample is deliberately compact and self-describing: it can be cut
   from a local {!Runtime.Metrics.snapshot} or rebuilt from the JSON a
   server's STATS reply carries, so the dashboard does the same math as
   the in-process reporters. *)

module J = Trace.Json
module Metrics = Runtime.Metrics

type sample = {
  at : float;
  committed : int;
  aborted : int;
  aborted_by : (string * int) list; (* reason slug -> cumulative count *)
  retries : int;
  giveups : int;
  deadlocks : int;
  stalls : int;
  certifier_aborts : int;
  per_level : (string * int * int * int) list;
      (* level slug -> cumulative committed, aborted, doomed *)
  lat_hist : int array; (* cumulative log2 bucket counts; may be [||] *)
}

let of_snapshot (s : Metrics.snapshot) =
  {
    at = s.taken_at;
    committed = s.committed;
    aborted = s.aborted_total;
    aborted_by =
      List.map (fun (r, n) -> (Metrics.abort_reason_slug r, n)) s.aborted;
    retries = s.retries;
    giveups = s.giveups;
    deadlocks = s.deadlocks;
    stalls = s.stalls;
    certifier_aborts = s.certifier_aborts;
    per_level =
      List.map
        (fun (l : Metrics.level_stats) ->
          (Isolation.Level.slug l.level, l.l_committed, l.l_aborted, l.l_doomed))
        s.per_level;
    lat_hist = s.lat_hist;
  }

(* Rebuild a sample from the [Metrics.to_json] object (the ["metrics"]
   member of a STATS reply). Total: a malformed or truncated object is
   [None], missing optional members default to empty. *)
let of_json j =
  let int k = Option.bind (J.member k j) J.to_int_opt in
  let zero k = Option.value ~default:0 (int k) in
  match (Option.bind (J.member "taken_at" j) J.to_float_opt, int "committed") with
  | None, _ | _, None -> None
  | Some at, Some committed ->
    let aborted_by =
      match J.member "aborted" j with
      | Some (J.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (J.to_int_opt v))
          fields
      | _ -> []
    in
    let per_level =
      match J.member "per_level" j with
      | Some (J.Obj fields) ->
        List.filter_map
          (fun (slug, v) ->
            let f k = Option.bind (J.member k v) J.to_int_opt in
            match (f "committed", f "aborted", f "doomed") with
            | Some c, Some a, Some d -> Some (slug, c, a, d)
            | _ -> None)
          fields
      | _ -> []
    in
    let lat_hist =
      match Option.bind (J.member "lat_hist" j) J.to_list with
      | Some xs ->
        Array.of_list
          (List.map (fun x -> Option.value ~default:0 (J.to_int_opt x)) xs)
      | None -> [||]
    in
    Some
      {
        at;
        committed;
        aborted = zero "aborted_total";
        aborted_by;
        retries = zero "retries";
        giveups = zero "giveups";
        deadlocks = zero "deadlocks";
        stalls = zero "stalls";
        certifier_aborts = zero "certifier_aborts";
        per_level;
        lat_hist;
      }

type rates = {
  interval_s : float;
  d_committed : int;
  d_aborted : int;
  d_aborted_by : (string * int) list; (* non-zero deltas only *)
  d_retries : int;
  d_giveups : int;
  d_deadlocks : int;
  d_stalls : int;
  d_certifier_aborts : int;
  d_per_level : (string * int * int * int) list;
  commit_rate : float;
  abort_rate : float;
  lat_p50_ms : float;
  lat_p99_ms : float;
}

(* Each cumulative counter is individually monotone, but two samples of
   a *set* of counters are only approximately mutually consistent while
   workers run ({!Runtime.Metrics.snapshot}'s live contract) — so every
   delta clamps at zero rather than trusting subtraction blindly. *)
let d a b = max 0 (b - a)

let assoc_delta older newer =
  List.filter_map
    (fun (k, n) ->
      let prev = Option.value ~default:0 (List.assoc_opt k older) in
      if n - prev > 0 then Some (k, n - prev) else None)
    newer

let delta (older : sample) (newer : sample) =
  let interval_s = Float.max 1e-9 (newer.at -. older.at) in
  let d_committed = d older.committed newer.committed in
  let d_aborted = d older.aborted newer.aborted in
  let hist =
    if Array.length newer.lat_hist = 0 then [||]
    else if Array.length older.lat_hist <> Array.length newer.lat_hist then
      newer.lat_hist (* first interval: the cumulative counts are the delta *)
    else Array.mapi (fun i n -> d older.lat_hist.(i) n) newer.lat_hist
  in
  let htotal = Array.fold_left ( + ) 0 hist in
  let d_per_level =
    List.filter_map
      (fun (slug, c, a, dm) ->
        let pc, pa, pd =
          match
            List.find_opt (fun (s, _, _, _) -> s = slug) older.per_level
          with
          | Some (_, pc, pa, pd) -> (pc, pa, pd)
          | None -> (0, 0, 0)
        in
        let c = d pc c and a = d pa a and dm = d pd dm in
        if c + a + dm > 0 then Some (slug, c, a, dm) else None)
      newer.per_level
  in
  {
    interval_s;
    d_committed;
    d_aborted;
    d_aborted_by = assoc_delta older.aborted_by newer.aborted_by;
    d_retries = d older.retries newer.retries;
    d_giveups = d older.giveups newer.giveups;
    d_deadlocks = d older.deadlocks newer.deadlocks;
    d_stalls = d older.stalls newer.stalls;
    d_certifier_aborts = d older.certifier_aborts newer.certifier_aborts;
    d_per_level;
    commit_rate = float d_committed /. interval_s;
    abort_rate = float d_aborted /. interval_s;
    lat_p50_ms = Metrics.hist_quantile hist htotal 0.50;
    lat_p99_ms = Metrics.hist_quantile hist htotal 0.99;
  }

let pp_rates ppf r =
  Fmt.pf ppf "%6.1f txn/s  committed %d  aborted %d" r.commit_rate r.d_committed
    r.d_aborted;
  if r.lat_p50_ms > 0. then
    Fmt.pf ppf "  p50 %.2fms p99 %.2fms" r.lat_p50_ms r.lat_p99_ms;
  if r.d_retries > 0 then Fmt.pf ppf "  retries %d" r.d_retries;
  if r.d_deadlocks > 0 then Fmt.pf ppf "  deadlocks %d" r.d_deadlocks;
  if r.d_certifier_aborts > 0 then
    Fmt.pf ppf "  dooms %d" r.d_certifier_aborts;
  if r.d_giveups > 0 then Fmt.pf ppf "  giveups %d" r.d_giveups
