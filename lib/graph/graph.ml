(* Umbrella module of the [graph] library: the shared incremental
   directed-graph engine. [Digraph] is a mutable, shard-hashed adjacency
   structure sized for transaction ids; [Incremental] maintains a
   topological order over one (Pearce–Kelly style) so that the edge that
   closes a cycle is detected — with its witness path — the moment it is
   offered, in time proportional to the affected region rather than the
   whole graph. Both the pool's waits-for deadlock detector and the
   runtime's online serializability certifier are built on it. *)

module Digraph = Digraph
module Incremental = Incremental
