(** Incremental cycle detection via online topological ordering
    (Pearce & Kelly, "A dynamic topological sort algorithm for directed
    acyclic graphs", JEA 2006).

    The structure maintains an acyclic digraph together with a priority
    [order_of] such that every edge [a -> b] has
    [order_of a < order_of b]. Inserting an edge that already respects
    the order is O(1); otherwise only the "affected region" — nodes with
    priorities between the endpoints' — is searched and reprioritised.
    An edge that would close a cycle is {e rejected}: the graph stays
    acyclic and the witness cycle is returned immediately, so consumers
    (deadlock detection, online certification) learn of the cycle at the
    exact edge that formed it.

    Deletions never disturb a valid order, so they are plain adjacency
    updates. All operations are serialised on an internal mutex and safe
    to call from multiple domains. *)

type t

val create : ?shards:int -> unit -> t

val add_node : t -> int -> unit

val add_edge : t -> int -> int -> [ `Ok | `Exists | `Cycle of int list ]
(** [add_edge t x y] inserts [x -> y], unless doing so would close a
    cycle — then the edge is {e not} inserted and [`Cycle [y; ...; x]]
    is returned: an existing path [y -> ... -> x] that the rejected edge
    [x -> y] would have closed, in [History.Digraph.find_cycle] witness
    format ([n1 -> ... -> nk -> n1]). A self-loop yields [`Cycle [x]];
    an edge already present yields [`Exists]. *)

val remove_edge : t -> int -> int -> unit
val remove_out_edges : t -> int -> unit

val remove_node : t -> int -> unit
(** Removes the node and all incident edges (a finished transaction). *)

val mem_edge : t -> int -> int -> bool
val succs : t -> int -> int list
val preds : t -> int -> int list
val nodes : t -> int list
val node_count : t -> int
val edge_count : t -> int

val order_of : t -> int -> int option
(** The node's current priority; [order_of a < order_of b] for every
    edge [a -> b]. Exposed for tests of the order-maintenance
    invariant. *)
