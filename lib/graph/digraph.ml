(* Shard-hashed mutable adjacency. A node's successor and predecessor
   sets live in the shard [id land mask]; an edge a->b touches shard(a)'s
   successors and shard(b)'s predecessors. Sharding keeps the hash tables
   small and independent as tids grow into the tens of thousands. *)

module Int_set = Set.Make (Int)

type shard = {
  succ : (int, Int_set.t) Hashtbl.t;
  pred : (int, Int_set.t) Hashtbl.t;
}

type t = { shards : shard array; mask : int; mutable edges : int }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(shards = 16) () =
  let n = pow2 (max 1 shards) 1 in
  {
    shards = Array.init n (fun _ ->
        { succ = Hashtbl.create 64; pred = Hashtbl.create 64 });
    mask = n - 1;
    edges = 0;
  }

let shard g n = g.shards.((n land max_int) land g.mask)

let add_node g n =
  let s = shard g n in
  if not (Hashtbl.mem s.succ n) then begin
    Hashtbl.replace s.succ n Int_set.empty;
    Hashtbl.replace s.pred n Int_set.empty
  end

let mem_node g n = Hashtbl.mem (shard g n).succ n

let succ_set g n =
  match Hashtbl.find_opt (shard g n).succ n with
  | Some s -> s
  | None -> Int_set.empty

let pred_set g n =
  match Hashtbl.find_opt (shard g n).pred n with
  | Some s -> s
  | None -> Int_set.empty

let mem_edge g a b = Int_set.mem b (succ_set g a)

let add_edge g a b =
  add_node g a;
  add_node g b;
  let sa = succ_set g a in
  if not (Int_set.mem b sa) then begin
    Hashtbl.replace (shard g a).succ a (Int_set.add b sa);
    Hashtbl.replace (shard g b).pred b (Int_set.add a (pred_set g b));
    g.edges <- g.edges + 1
  end

let remove_edge g a b =
  let sa = succ_set g a in
  if Int_set.mem b sa then begin
    Hashtbl.replace (shard g a).succ a (Int_set.remove b sa);
    Hashtbl.replace (shard g b).pred b (Int_set.remove a (pred_set g b));
    g.edges <- g.edges - 1
  end

let remove_out_edges g n =
  Int_set.iter (fun s -> remove_edge g n s) (succ_set g n)

let remove_node g n =
  if mem_node g n then begin
    remove_out_edges g n;
    Int_set.iter (fun p -> remove_edge g p n) (pred_set g n);
    Hashtbl.remove (shard g n).succ n;
    Hashtbl.remove (shard g n).pred n
  end

let succs g n = Int_set.elements (succ_set g n)
let preds g n = Int_set.elements (pred_set g n)

let nodes g =
  Array.fold_left
    (fun acc s -> Hashtbl.fold (fun n _ acc -> n :: acc) s.succ acc)
    [] g.shards
  |> List.sort compare

let node_count g =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s.succ) 0 g.shards

let edge_count g = g.edges
