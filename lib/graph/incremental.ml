(* Pearce–Kelly online topological order.

   Invariant: for every edge a->b in [g], [ord a < ord b]. Priorities are
   arbitrary distinct integers (not a dense 0..n-1 array), so node
   insertion and deletion never renumber anything.

   Inserting x->y when [ord x < ord y] already holds is O(1). Otherwise
   the affected region is ord in [ord y, ord x]: a forward search from y
   (which, by the invariant, can reach x only through that region) either
   reaches x — the cycle case, reported with the discovery-parent path as
   witness and the edge rejected — or collects the descendants F of y in
   the region; a backward search from x collects its ancestors B. B and F
   are disjoint (a shared node would itself witness a y ~> x path), and
   reassigning the pooled priorities to B then F, each in old relative
   order, restores the invariant with no node outside the region moved. *)

type t = {
  g : Digraph.t;
  ord : (int, int) Hashtbl.t;
  m : Mutex.t;
  mutable next : int;
}

let create ?shards () =
  {
    g = Digraph.create ?shards ();
    ord = Hashtbl.create 256;
    m = Mutex.create ();
    next = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let ensure_node t n =
  if not (Digraph.mem_node t.g n) then begin
    Digraph.add_node t.g n;
    Hashtbl.replace t.ord n t.next;
    t.next <- t.next + 1
  end

let ord t n = Hashtbl.find t.ord n

(* Forward DFS from [y] through the affected region (ord < ord x; the
   invariant bounds any y ~> x path inside it). Returns the witness path
   [y; ...; x] if x is reached, else the visited set F (including y). *)
let forward t ~x ~y ~ox =
  let visited = Hashtbl.create 16 in
  let parent = Hashtbl.create 16 in
  let rec dfs n =
    List.exists
      (fun w ->
        if w = x then begin
          Hashtbl.replace parent w n;
          true
        end
        else if (not (Hashtbl.mem visited w)) && ord t w < ox then begin
          Hashtbl.replace visited w ();
          Hashtbl.replace parent w n;
          dfs w
        end
        else false)
      (Digraph.succs t.g n)
  in
  Hashtbl.replace visited y ();
  if dfs y then begin
    let rec build acc n =
      if n = y then n :: acc else build (n :: acc) (Hashtbl.find parent n)
    in
    `Cycle (build [] x)
  end
  else `F (Hashtbl.fold (fun n () acc -> n :: acc) visited [])

(* Backward DFS from [x]: its ancestors inside the region (ord > ord y). *)
let backward t ~x ~oy =
  let visited = Hashtbl.create 16 in
  let rec dfs n =
    List.iter
      (fun w ->
        if (not (Hashtbl.mem visited w)) && ord t w > oy then begin
          Hashtbl.replace visited w ();
          dfs w
        end)
      (Digraph.preds t.g n)
  in
  Hashtbl.replace visited x ();
  dfs x;
  Hashtbl.fold (fun n () acc -> n :: acc) visited []

let reorder t ~b ~f =
  let by_ord ns = List.sort (fun a b -> compare (ord t a) (ord t b)) ns in
  let seq = by_ord b @ by_ord f in
  let pool = List.sort compare (List.map (ord t) seq) in
  List.iter2 (fun n o -> Hashtbl.replace t.ord n o) seq pool

let add_node t n = locked t (fun () -> ensure_node t n)

let add_edge t x y =
  locked t (fun () ->
      ensure_node t x;
      ensure_node t y;
      if x = y then `Cycle [ x ]
      else if Digraph.mem_edge t.g x y then `Exists
      else begin
        let ox = ord t x and oy = ord t y in
        if ox < oy then begin
          Digraph.add_edge t.g x y;
          `Ok
        end
        else
          match forward t ~x ~y ~ox with
          | `Cycle _ as c -> c
          | `F f ->
            reorder t ~b:(backward t ~x ~oy) ~f;
            Digraph.add_edge t.g x y;
            `Ok
      end)

let remove_edge t a b = locked t (fun () -> Digraph.remove_edge t.g a b)
let remove_out_edges t n = locked t (fun () -> Digraph.remove_out_edges t.g n)

let remove_node t n =
  locked t (fun () ->
      Digraph.remove_node t.g n;
      Hashtbl.remove t.ord n)

let mem_edge t a b = locked t (fun () -> Digraph.mem_edge t.g a b)
let succs t n = locked t (fun () -> Digraph.succs t.g n)
let preds t n = locked t (fun () -> Digraph.preds t.g n)
let nodes t = locked t (fun () -> Digraph.nodes t.g)
let node_count t = locked t (fun () -> Digraph.node_count t.g)
let edge_count t = locked t (fun () -> Digraph.edge_count t.g)
let order_of t n = locked t (fun () -> Hashtbl.find_opt t.ord n)
