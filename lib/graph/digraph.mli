(** Mutable directed graphs over integer-identified nodes (transaction
    ids), with adjacency stored in a fixed array of hash shards keyed by
    [id mod shards]. Unlike [History.Digraph] — an immutable analysis
    structure rebuilt per query — this one supports cheap edge and node
    deletion, so long-running consumers (the waits-for graph, the online
    certifier) can retire transactions as they finish.

    Not internally synchronised: callers that mutate from several domains
    must serialise access (as [Incremental] does). *)

type t

val create : ?shards:int -> unit -> t
(** [shards] is rounded up to a power of two; default 16. *)

val add_node : t -> int -> unit
(** Idempotent. *)

val add_edge : t -> int -> int -> unit
(** Adds both endpoints; idempotent on duplicate edges. *)

val remove_edge : t -> int -> int -> unit
val remove_out_edges : t -> int -> unit

val remove_node : t -> int -> unit
(** Removes the node and every edge incident to it. *)

val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool
val succs : t -> int -> int list
val preds : t -> int -> int list
val nodes : t -> int list
val node_count : t -> int
val edge_count : t -> int
