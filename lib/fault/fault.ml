(* Umbrella module of the [fault] library: deterministic seeded fault
   plans consulted by the runtime, and crash-point recovery enumeration
   over write-ahead logs. *)

module Plan = Plan
module Crash = Crash

(* The injection-point API, re-exported at the umbrella for call sites
   that read better as [Fault.point]. *)
let point = Plan.point
