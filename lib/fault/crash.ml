(* Crash-point enumeration: the adversarial form of the paper's §3
   recovery argument.

   A run's WAL has length n. A crash could have struck after any prefix
   of 0..n durable records, or mid-append of any record (a torn tail).
   [enumerate] replays before-image undo recovery at all 2n+1 crash
   images and checks each against the ideal state (committed after-images
   only). For a P0-free run every point must recover correctly — that is
   the durability-of-committed / rollback-of-losers guarantee, proved
   exhaustively rather than at one hand-picked point. Under Degree 0
   (short write locks admit P0) some prefix exhibits the paper's
   restore-or-not dilemma and shows up here as a failure.

   Each per-prefix check is linear in the prefix (Wal/Recovery use hashed
   membership), so the whole enumeration is O(n^2) — a few hundred
   milliseconds for the multi-thousand-record logs of a stress run. *)

module Store = Storage.Store
module Wal = Storage.Wal
module Recovery = Storage.Recovery

type failure = {
  point : int;            (* durable records at the crash *)
  torn : bool;            (* record [point] was torn mid-write *)
  undone : Wal.txn list;  (* losers recovery rolled back *)
}

type report = {
  records : int;      (* full log length *)
  points : int;       (* clean prefixes checked: records + 1 *)
  torn_points : int;  (* torn tails checked: records *)
  failures : failure list;
}

let check ~initial image ~point ~torn acc =
  if Recovery.recovery_correct ~initial image then acc
  else { point; torn; undone = (Recovery.recover ~initial image).undone } :: acc

let enumerate ~initial log =
  let n = Wal.length log in
  let acc = ref [] in
  for i = 0 to n do
    acc := check ~initial (Wal.prefix log i) ~point:i ~torn:false !acc
  done;
  for i = 1 to n do
    acc := check ~initial (Wal.torn_prefix log i) ~point:i ~torn:true !acc
  done;
  {
    records = n;
    points = n + 1;
    torn_points = n;
    failures = List.rev !acc;
  }

let ok r = r.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "crash after %d record%s%s: recovery wrong (undid %a)" f.point
    (if f.point = 1 then "" else "s")
    (if f.torn then " + torn tail" else "")
    Fmt.(list ~sep:(any ", ") (fmt "T%d"))
    f.undone

let pp ppf r =
  if ok r then
    Fmt.pf ppf
      "crash replay: %d prefixes + %d torn tails over %d records, all \
       recover to the ideal state"
      r.points r.torn_points r.records
  else begin
    let nf = List.length r.failures in
    let shown_max = 12 in
    let shown = List.filteri (fun i _ -> i < shown_max) r.failures in
    Fmt.pf ppf
      "@[<v>crash replay: %d prefixes + %d torn tails over %d records, %d \
       UNSOUND point%s:@,%a"
      r.points r.torn_points r.records nf
      (if nf = 1 then "" else "s")
      Fmt.(list ~sep:cut (fun ppf f -> pf ppf "  %a" pp_failure f))
      shown;
    if nf > shown_max then Fmt.pf ppf "@,  ... and %d more" (nf - shown_max);
    Fmt.pf ppf "@]"
  end

(* Hand-rolled JSON, matching the repo's other emitters. *)
let to_json r =
  let fail f =
    Printf.sprintf "{\"point\":%d,\"torn\":%b,\"undone\":[%s]}" f.point f.torn
      (String.concat "," (List.map string_of_int f.undone))
  in
  Printf.sprintf
    "{\"records\":%d,\"points\":%d,\"torn_points\":%d,\"ok\":%b,\
     \"failures\":[%s]}"
    r.records r.points r.torn_points (ok r)
    (String.concat "," (List.map fail r.failures))
