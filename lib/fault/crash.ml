(* Crash-point enumeration: the adversarial form of the paper's §3
   recovery argument.

   A run's WAL has length n. A crash could have struck after any prefix
   of 0..n durable records, or mid-append of any record (a torn tail).
   [enumerate] replays before-image undo recovery at all 2n+1 crash
   images and checks each against the ideal state (committed after-images
   only). For a P0-free run every point must recover correctly — that is
   the durability-of-committed / rollback-of-losers guarantee, proved
   exhaustively rather than at one hand-picked point. Under Degree 0
   (short write locks admit P0) some prefix exhibits the paper's
   restore-or-not dilemma and shows up here as a failure.

   Each per-prefix check is linear in the prefix (Wal/Recovery use hashed
   membership), so the whole enumeration is O(n^2) — a few hundred
   milliseconds for the multi-thousand-record logs of a stress run, but
   minutes past ~10^4 records. [?sample] caps the per-category budget
   with a seeded deterministic draw while always keeping the decisive
   points: the empty prefix, the full log, and every torn *terminal*
   record — a Commit or Abort cut off mid-write is exactly the §3
   dilemma (the transaction is still a loser and must be undone), so
   those points are never sampled away. *)

module Store = Storage.Store
module Wal = Storage.Wal
module Recovery = Storage.Recovery

type failure = {
  point : int;            (* durable records at the crash *)
  torn : bool;            (* record [point] was torn mid-write *)
  undone : Wal.txn list;  (* losers recovery rolled back *)
}

type report = {
  records : int;      (* full log length *)
  points : int;       (* clean prefixes checked: records + 1 *)
  torn_points : int;  (* torn tails checked: records *)
  failures : failure list;
}

let check ~initial image ~point ~torn acc =
  if Recovery.recovery_correct ~initial image then acc
  else { point; torn; undone = (Recovery.recover ~initial image).undone } :: acc

(* A seeded draw of [budget] points from [lo..hi] merged with the
   [required] ones — deterministic for a given (seed, range, budget), so
   a failing sampled run is replayable bit-for-bit. *)
let sample_points ~seed ~budget ~lo ~hi required =
  let span = hi - lo + 1 in
  if span <= 0 then []
  else if budget >= span then List.init span (fun i -> lo + i)
  else begin
    let rng = Random.State.make [| seed; 0xc4a5; lo; hi; budget |] in
    let picked = Hashtbl.create (budget * 2) in
    List.iter (fun p -> Hashtbl.replace picked p ()) required;
    let misses = ref 0 in
    while Hashtbl.length picked < budget + List.length required
          && !misses < budget * 16 do
      let p = lo + Random.State.int rng span in
      if Hashtbl.mem picked p then incr misses else Hashtbl.replace picked p ()
    done;
    List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) picked [])
  end

(* Point selection, shared by both families. [decisive] marks the
   records whose torn form is never sampled away: the terminal records
   (Commit/Abort for the single-version log, Vcommit/Abort for the
   multiversion one — a torn Vcommit is the torn-version-write case, the
   versions installed without their stamp). *)
let points_of ?sample ~seed ~decisive log =
  let n = Wal.length log in
  match sample with
  | None -> (List.init (n + 1) Fun.id, List.init n (fun i -> i + 1))
  | Some budget ->
    let budget = max 1 budget in
    let terminals =
      List.concat
        (List.mapi
           (fun i r -> if decisive r then [ i + 1 ] else [])
           (Wal.records log))
    in
    ( sample_points ~seed ~budget ~lo:0 ~hi:n [ 0; n ],
      sample_points ~seed:(seed + 1) ~budget ~lo:1 ~hi:n terminals )

let run_points ~check ~clean_points ~torn_points log =
  let acc = ref [] in
  List.iter
    (fun i -> acc := check (Wal.prefix log i) ~point:i ~torn:false !acc)
    clean_points;
  List.iter
    (fun i -> acc := check (Wal.torn_prefix log i) ~point:i ~torn:true !acc)
    torn_points;
  {
    records = Wal.length log;
    points = List.length clean_points;
    torn_points = List.length torn_points;
    failures = List.rev !acc;
  }

let enumerate ?sample ?(seed = 1) ~initial log =
  let clean_points, torn_points =
    (* Terminal records: a torn Commit/Abort is the §3 dilemma point. *)
    points_of ?sample ~seed log ~decisive:(function
      | Wal.Commit _ | Wal.Abort _ -> true
      | _ -> false)
  in
  run_points ~check:(check ~initial) ~clean_points ~torn_points log

(* The multiversion form: recovery is redo-only (Recovery.recover_mv) and
   the check compares exact version chains, watermark prunes included.
   [initial] is the run's initial rows (version 0), not a Store. *)
let check_mv ~initial image ~point ~torn acc =
  if Recovery.mv_recovery_correct ~initial image then acc
  else
    { point; torn; undone = (Recovery.recover_mv ~initial image).mv_undone }
    :: acc

let enumerate_mv ?sample ?(seed = 1) ~initial log =
  let clean_points, torn_points =
    points_of ?sample ~seed log ~decisive:(function
      | Wal.Vcommit _ | Wal.Abort _ -> true
      | _ -> false)
  in
  run_points ~check:(check_mv ~initial) ~clean_points ~torn_points log

let ok r = r.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "crash after %d record%s%s: recovery wrong (undid %a)" f.point
    (if f.point = 1 then "" else "s")
    (if f.torn then " + torn tail" else "")
    Fmt.(list ~sep:(any ", ") (fmt "T%d"))
    f.undone

let pp ppf r =
  if ok r then
    Fmt.pf ppf
      "crash replay: %d prefixes + %d torn tails over %d records, all \
       recover to the ideal state"
      r.points r.torn_points r.records
  else begin
    let nf = List.length r.failures in
    let shown_max = 12 in
    let shown = List.filteri (fun i _ -> i < shown_max) r.failures in
    Fmt.pf ppf
      "@[<v>crash replay: %d prefixes + %d torn tails over %d records, %d \
       UNSOUND point%s:@,%a"
      r.points r.torn_points r.records nf
      (if nf = 1 then "" else "s")
      Fmt.(list ~sep:cut (fun ppf f -> pf ppf "  %a" pp_failure f))
      shown;
    if nf > shown_max then Fmt.pf ppf "@,  ... and %d more" (nf - shown_max);
    Fmt.pf ppf "@]"
  end

(* Hand-rolled JSON, matching the repo's other emitters. *)
let to_json r =
  let fail f =
    Printf.sprintf "{\"point\":%d,\"torn\":%b,\"undone\":[%s]}" f.point f.torn
      (String.concat "," (List.map string_of_int f.undone))
  in
  Printf.sprintf
    "{\"records\":%d,\"points\":%d,\"torn_points\":%d,\"ok\":%b,\
     \"failures\":[%s]}"
    r.records r.points r.torn_points (ok r)
    (String.concat "," (List.map fail r.failures))
