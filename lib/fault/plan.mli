(** Deterministic, seeded fault plans.

    A plan answers, at every injection point the runtime consults,
    whether to fault and how. Decisions are pure functions of
    [(seed, tid, site)] — hashed coordinates, not a shared PRNG — so
    injected faults are reproducible under any thread interleaving.
    Retried attempts carry fresh transaction ids and so draw fresh
    decisions, letting a faulted workload drain through retry/backoff. *)

type action =
  | Stall of { us : float }
      (** hold the worker mid-transaction for [us] microseconds *)
  | Step_fail  (** spurious step failure: abort, runtime retries *)
  | Victim  (** force a deadlock-victim abort *)
  | Torn_commit
      (** the crash tears the Commit record off the WAL tail: the
          transaction rolls back and the attempt is retried *)
  | Disconnect
      (** sever the client connection mid-stream: the server aborts the
          connection's open transactions and closes the socket *)

type site =
  | Step of { seq : int }  (** before operation [seq] of the attempt *)
  | Commit  (** as the Commit record is logged *)
  | Frame of { seq : int }
      (** as frame [seq] arrives on a connection; consulted by the
          server with the connection id as [tid] *)

type t

val create :
  ?stall_rate:float ->
  ?stall_us:float ->
  ?step_fail_rate:float ->
  ?victim_rate:float ->
  ?torn_commit_rate:float ->
  ?disconnect_rate:float ->
  seed:int ->
  unit ->
  t
(** All rates default to [0.] (no injection); [stall_us] defaults to
    [2000.]. Raises [Invalid_argument] for a rate outside [0, 1]. *)

val chaos : ?stall_us:float -> rate:float -> seed:int -> unit -> t
(** One-knob preset used by [isolation_lab chaos]: stalls and torn
    commits at [rate], spurious failures and forced victims at
    [rate /. 2]. *)

val point : t -> tid:int -> site -> action option
(** Consult the plan at an injection point. Deterministic in
    [(seed, tid, site)]; bumps the per-class injected counter when it
    fires. At a [Step] site the classes are tried in order stall,
    step-fail, victim; a [Commit] site only ever yields [Torn_commit];
    a [Frame] site only ever yields [Disconnect]. *)

val injected : t -> (string * int) list
(** Per-class injected counts, in a stable order:
    [stall; step_fail; victim; torn_commit; disconnect]. *)

val total : t -> int
val klass : action -> string
(** Stable slug naming the action's class. *)

val pp : t Fmt.t
