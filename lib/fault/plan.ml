(* Deterministic, seeded fault plans.

   A plan decides, at every injection point the runtime consults, whether
   to inject a fault and which one. Decisions are pure functions of
   (seed, transaction id, step sequence): each consultation hashes its
   coordinates instead of drawing from a shared PRNG, so the faults a
   given transaction suffers do not depend on how the domains happened to
   interleave — a rerun with the same seed and the same transaction ids
   injects the same faults, no matter the schedule. Retried attempts run
   under fresh transaction ids and therefore draw fresh decisions, which
   is what lets a faulted workload eventually drain.

   The per-class counters are the plan's own account of what it injected;
   Runtime.Metrics counts the same events from the pool's side, and tests
   compare the two views. *)

type action =
  | Stall of { us : float }  (* hold the worker mid-transaction *)
  | Step_fail                (* spurious failure: abort, runtime retries *)
  | Victim                   (* force a deadlock-victim abort *)
  | Torn_commit              (* crash tears the Commit record off the WAL *)
  | Disconnect               (* sever the client connection mid-stream *)

type site =
  | Step of { seq : int }    (* before operation [seq] of the attempt *)
  | Commit                   (* as the Commit record is logged *)
  | Frame of { seq : int }   (* as frame [seq] arrives on a connection *)

type t = {
  seed : int;
  stall_rate : float;
  stall_us : float;
  step_fail_rate : float;
  victim_rate : float;
  torn_commit_rate : float;
  disconnect_rate : float;
  stalls : int Atomic.t;
  step_fails : int Atomic.t;
  victims : int Atomic.t;
  torn_commits : int Atomic.t;
  disconnects : int Atomic.t;
}

let create ?(stall_rate = 0.) ?(stall_us = 2000.) ?(step_fail_rate = 0.)
    ?(victim_rate = 0.) ?(torn_commit_rate = 0.) ?(disconnect_rate = 0.) ~seed
    () =
  let rate what r =
    if r < 0. || r > 1. then
      invalid_arg (Fmt.str "Fault.Plan.create: %s rate %g not in [0, 1]" what r)
  in
  rate "stall" stall_rate;
  rate "step_fail" step_fail_rate;
  rate "victim" victim_rate;
  rate "torn_commit" torn_commit_rate;
  rate "disconnect" disconnect_rate;
  {
    seed;
    stall_rate;
    stall_us;
    step_fail_rate;
    victim_rate;
    torn_commit_rate;
    disconnect_rate;
    stalls = Atomic.make 0;
    step_fails = Atomic.make 0;
    victims = Atomic.make 0;
    torn_commits = Atomic.make 0;
    disconnects = Atomic.make 0;
  }

(* The CLI's one-knob preset: [rate] drives every class, with victims and
   spurious failures at half weight so stalls (the class deadlines and the
   watchdog exist for) dominate. *)
let chaos ?(stall_us = 2000.) ~rate ~seed () =
  create ~stall_rate:rate ~stall_us ~step_fail_rate:(rate /. 2.)
    ~victim_rate:(rate /. 2.) ~torn_commit_rate:rate ~seed ()

(* Hashtbl.hash is a seeded MurmurHash over the structure; folding it to
   [0, 1) gives an interleaving-independent uniform draw per coordinate.
   The salt separates fault classes at the same site. *)
let draw t ~tid ~seq ~salt =
  float_of_int (Hashtbl.hash (t.seed, tid, seq, salt) land 0x3FFFFFFF)
  /. 1073741824.

let hit counter = Atomic.incr counter

let point t ~tid site =
  match site with
  | Commit ->
    if draw t ~tid ~seq:(-1) ~salt:3 < t.torn_commit_rate then begin
      hit t.torn_commits;
      Some Torn_commit
    end
    else None
  | Step { seq } ->
    if draw t ~tid ~seq ~salt:0 < t.stall_rate then begin
      hit t.stalls;
      Some (Stall { us = t.stall_us })
    end
    else if draw t ~tid ~seq ~salt:1 < t.step_fail_rate then begin
      hit t.step_fails;
      Some Step_fail
    end
    else if draw t ~tid ~seq ~salt:2 < t.victim_rate then begin
      hit t.victims;
      Some Victim
    end
    else None
  | Frame { seq } ->
    (* The server consults this per inbound frame, with the connection id
       standing in for [tid] — connection ids are as stable across reruns
       as transaction ids are. *)
    if draw t ~tid ~seq ~salt:4 < t.disconnect_rate then begin
      hit t.disconnects;
      Some Disconnect
    end
    else None

let injected t =
  [
    ("stall", Atomic.get t.stalls);
    ("step_fail", Atomic.get t.step_fails);
    ("victim", Atomic.get t.victims);
    ("torn_commit", Atomic.get t.torn_commits);
    ("disconnect", Atomic.get t.disconnects);
  ]

let total t = List.fold_left (fun acc (_, n) -> acc + n) 0 (injected t)

let klass = function
  | Stall _ -> "stall"
  | Step_fail -> "step_fail"
  | Victim -> "victim"
  | Torn_commit -> "torn_commit"
  | Disconnect -> "disconnect"

let pp ppf t =
  Fmt.pf ppf "faults[seed %d]: %a" t.seed
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    (injected t)
