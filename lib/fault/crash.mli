(** Crash-point enumeration: replay before-image undo recovery at every
    WAL prefix and every torn mid-record tail, checking each crash image
    against the ideal state. Passes exhaustively for P0-free runs;
    surfaces the paper's §3 restore-or-not dilemma as concrete failing
    crash points when dirty writes were admitted (Degree 0). *)

type failure = {
  point : int;  (** durable records at the crash *)
  torn : bool;  (** record [point] was torn mid-write *)
  undone : Storage.Wal.txn list;  (** losers recovery rolled back *)
}

type report = {
  records : int;  (** full log length *)
  points : int;  (** clean prefixes checked ([records + 1] if exhaustive) *)
  torn_points : int;  (** torn tails checked ([records] if exhaustive) *)
  failures : failure list;
}

val enumerate :
  ?sample:int -> ?seed:int -> initial:Storage.Store.t -> Storage.Wal.t -> report
(** Check crash images of [log]: every clean prefix and every torn tail
    when [sample] is [None] — [2 * length + 1] points, O(n²) in the log
    length (each per-prefix recovery is linear), which turns into
    minutes past ~10⁴ records.

    [sample = Some budget] caps each category (clean prefixes, torn
    tails) at [budget] points drawn by a deterministic generator from
    [seed] (default 1), on top of the always-checked decisive points:
    the empty prefix, the full log, and {e every} torn terminal
    (Commit/Abort) record — the §3 restore-or-not dilemma points, never
    sampled away. The [points] / [torn_points] counts record what was
    actually checked. *)

val enumerate_mv :
  ?sample:int ->
  ?seed:int ->
  initial:(Storage.Wal.key * Storage.Wal.value) list ->
  Storage.Wal.t ->
  report
(** The multiversion form of {!enumerate}, for logs written by the MV
    engine (Vinstall/Vcommit/Watermark/Vcheckpoint records). Each crash
    image runs {!Storage.Recovery.recover_mv} against
    {!Storage.Recovery.ideal_mv}, compared by exact version-chain
    equality — so a transaction's versions installed without their
    commit stamp (the torn version write) must have been discarded, and
    watermark prunes must replay exactly. [initial] is the run's initial
    rows (version 0 of each key). Sampling keeps every torn
    Vcommit/Abort point, the MV dilemma points. *)

val ok : report -> bool
val pp_failure : failure Fmt.t
val pp : report Fmt.t

val to_json : report -> string
(** One JSON object:
    [{"records":..,"points":..,"torn_points":..,"ok":..,"failures":[..]}]. *)
