(** Crash-point enumeration: replay before-image undo recovery at every
    WAL prefix and every torn mid-record tail, checking each crash image
    against the ideal state. Passes exhaustively for P0-free runs;
    surfaces the paper's §3 restore-or-not dilemma as concrete failing
    crash points when dirty writes were admitted (Degree 0). *)

type failure = {
  point : int;  (** durable records at the crash *)
  torn : bool;  (** record [point] was torn mid-write *)
  undone : Storage.Wal.txn list;  (** losers recovery rolled back *)
}

type report = {
  records : int;  (** full log length *)
  points : int;  (** clean prefixes checked: [records + 1] *)
  torn_points : int;  (** torn tails checked: [records] *)
  failures : failure list;
}

val enumerate : initial:Storage.Store.t -> Storage.Wal.t -> report
(** Check all [2 * length + 1] crash images of [log]. O(n²) in the log
    length; each per-prefix recovery is linear. *)

val ok : report -> bool
val pp_failure : failure Fmt.t
val pp : report Fmt.t

val to_json : report -> string
(** One JSON object:
    [{"records":..,"points":..,"torn_points":..,"ok":..,"failures":[..]}]. *)
