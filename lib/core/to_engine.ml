(* Strict timestamp-ordering (T/O) scheduler ([BHG] Chapter 4).

   The ANSI designers "sought a definition that would admit many
   different implementations, not just locking" (§2.2). This is the
   classic such implementation: no locks at all. Every transaction gets a
   startup timestamp; each item remembers the largest timestamp that read
   it (rts) and wrote it (wts), and operations that arrive "too late" —
   against an item already read or written by a younger transaction —
   abort instead of blocking:

     read  k by T:  abort if wts(k) > ts(T); wait while the latest write
                    of k is uncommitted (strictness — no dirty reads);
                    else read and raise rts(k).
     write k by T:  abort if rts(k) > ts(T) or wts(k) > ts(T); wait while
                    an uncommitted write of k is in place; else write in
                    place (before-image saved) and set wts(k).

   Waits only ever point from younger to older transactions, so no
   deadlock is possible; conflicts surface as Too_late aborts.

   Phantoms: scans read a virtual per-engine "membership" item, and any
   write that changes membership of a configured predicate (or any
   insert/delete) writes it. Phantom safety therefore requires declaring
   the predicates the workload scans, exactly as the trace annotation
   does; the configured predicates drive both. *)

module Action = History.Action
module Store = Storage.Store
module Predicate = Storage.Predicate
module Wal = Storage.Wal

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | Too_late
  | Fault_injected    (* injected by a fault plan *)
  | Deadline_exceeded (* transaction ran past its deadline *)
  | Certifier_abort   (* the online certifier doomed it: it closed a cycle *)

type status = Active | Committed | Aborted of abort_reason

type cursor = {
  mutable remaining : (key * value) list;
  mutable current : (key * value) option;
}

type txn_state = {
  tid : txn;
  ts : int;
  mutable status : status;
  mutable env : Program.env;
  mutable undo : (key * value option) list; (* before images, newest first *)
  mutable dirty : key list;                 (* keys with our uncommitted write *)
  cursors : (string, cursor) Hashtbl.t;
}

(* The virtual item guarding predicate membership. Its name cannot clash
   with real keys, which the program DSL builds from identifiers. *)
let membership_key = "\255<membership>"

type stamps = { mutable rts : int; mutable wts : int }

type t = {
  store : Store.t;
  stamps : (key, stamps) Hashtbl.t;
  writers : (key, txn) Hashtbl.t; (* uncommitted writer per key *)
  mutable clock : int;
  (* The T/O scheduler updates the store in place with before-image undo
     lists — exactly the lock engine's shape — so it logs the standard
     Begin/Update/Commit/Abort records and reuses the single-version
     recovery unchanged. Strictness (writes wait behind uncommitted
     writers) excludes P0, so before-image undo is sound. The virtual
     membership item only ever receives timestamps, never store writes,
     so it never reaches the log. *)
  wal : Wal.t;
  checkpoint_every : int;   (* commits between WAL checkpoints; 0 = never *)
  mutable commits_since_ckpt : int;
  retain_trace : bool;  (* keep the action list (out-of-core runs drop it) *)
  mutable trace : Action.t list; (* newest first *)
  mutable trace_len : int;       (* = List.length trace, O(1) for tracing *)
  txns : (txn, txn_state) Hashtbl.t;
  predicates : Predicate.t list;
  (* Trace observation hook; steps run single-threaded under every pool
     stripe, so the plain emit is already serialised. *)
  mutable trace_hook : (int -> Action.t -> unit) option;
  (* Torn-commit fault hook, consulted as the Commit record would be
     logged. *)
  mutable tear_commit : (txn -> bool) option;
}

type step_outcome = Progress | Blocked of txn list | Finished

let create ~initial ~predicates ?wal_dir ?wal_segment_bytes ?wal_group_commit
    ?(checkpoint_every = 0) ?(retain_trace = true) () =
  {
    store = Store.of_list initial;
    stamps = Hashtbl.create 32;
    writers = Hashtbl.create 8;
    clock = 0;
    wal =
      Wal.create ?dir:wal_dir ?segment_bytes:wal_segment_bytes
        ?group_commit:wal_group_commit ();
    checkpoint_every;
    commits_since_ckpt = 0;
    retain_trace;
    trace = [];
    trace_len = 0;
    txns = Hashtbl.create 8;
    predicates;
    trace_hook = None;
    tear_commit = None;
  }

let emit t action =
  if t.retain_trace then t.trace <- action :: t.trace;
  t.trace_len <- t.trace_len + 1;
  match t.trace_hook with
  | Some f -> f (t.trace_len - 1) action
  | None -> ()

let trace t = List.rev t.trace
let trace_len t = t.trace_len
let set_trace_hook t f = t.trace_hook <- Some f
let set_tear_hook t f = t.tear_commit <- Some f
let wal t = t.wal
let wal_sync t = Wal.sync t.wal

let state t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some st -> st
  | None -> invalid_arg (Fmt.str "To_engine: unknown transaction %d" tid)

let begin_txn t tid =
  t.clock <- t.clock + 1;
  Wal.append t.wal (Wal.Begin tid);
  Hashtbl.replace t.txns tid
    { tid; ts = t.clock; status = Active; env = Program.empty_env; undo = [];
      dirty = []; cursors = Hashtbl.create 2 }

let status t tid = (state t tid).status
let env t tid = (state t tid).env

let stamps_of t k =
  match Hashtbl.find_opt t.stamps k with
  | Some s -> s
  | None ->
    let s = { rts = 0; wts = 0 } in
    Hashtbl.replace t.stamps k s;
    s

let uncommitted_writer t st k =
  match Hashtbl.find_opt t.writers k with
  | Some w when w <> st.tid -> Some w
  | _ -> None

let finish_cleanup t st =
  List.iter (fun k -> Hashtbl.remove t.writers k) st.dirty;
  st.dirty <- [];
  Hashtbl.reset st.cursors

let rollback t st reason =
  (* Undo by restoring before-images, newest first, logging each restore
     as a compensation update so crash recovery can replay it. *)
  List.iter
    (fun (k, before) ->
      Wal.append t.wal
        (Wal.Update
           { t = st.tid; k; before = Store.get t.store k; after = before });
      Store.restore t.store k before)
    st.undo;
  st.undo <- [];
  Wal.append t.wal (Wal.Abort st.tid);
  st.status <- Aborted reason;
  finish_cleanup t st;
  emit t (Action.abort st.tid)

(* A read of [k]: too late if a younger transaction already wrote it;
   waits behind an uncommitted writer (strictness). *)
let timestamped_read t st k ~cursor =
  let s = stamps_of t k in
  if s.wts > st.ts then begin
    rollback t st Too_late;
    Progress
  end
  else
    match uncommitted_writer t st k with
    | Some w -> Blocked [ w ]
    | None ->
      s.rts <- max s.rts st.ts;
      let v = Store.get t.store k in
      st.env <- Program.observe_read st.env k v;
      emit t (Action.read ?value:v ~cursor st.tid k);
      Progress

let affected_predicates t k ~before ~after =
  List.filter_map
    (fun p ->
      if Predicate.affected_by_write p k ~before ~after then
        Some (Predicate.name p)
      else None)
    t.predicates

(* A write of [k]: too late against younger readers or writers of [k] —
   or, when the write changes predicate membership, against younger
   scanners (via the membership item). *)
let timestamped_write t st k ~after ~kind ~cursor =
  let before = Store.get t.store k in
  let presence_changes =
    match (before, after) with None, Some _ | Some _, None -> true | _ -> false
  in
  let preds = affected_predicates t k ~before ~after in
  let guards_membership = presence_changes || preds <> [] in
  let s = stamps_of t k in
  let m = stamps_of t membership_key in
  if
    s.rts > st.ts || s.wts > st.ts
    || (guards_membership && (m.rts > st.ts || m.wts > st.ts))
  then begin
    rollback t st Too_late;
    Progress
  end
  else
    match
      match uncommitted_writer t st k with
      | Some w -> Some w
      | None ->
        if guards_membership then uncommitted_writer t st membership_key
        else None
    with
    | Some w -> Blocked [ w ]
    | None ->
      (* Log before the in-place store write (WAL discipline); the
         membership item gets only stamps below, never a store write, so
         the log sees real keys only. *)
      Wal.append t.wal (Wal.Update { t = st.tid; k; before; after });
      st.undo <- (k, before) :: st.undo;
      (match after with
      | Some v -> Store.put t.store k v
      | None -> Store.delete t.store k);
      s.wts <- max s.wts st.ts;
      if not (List.mem k st.dirty) then begin
        st.dirty <- k :: st.dirty;
        Hashtbl.replace t.writers k st.tid
      end;
      if guards_membership then begin
        m.wts <- max m.wts st.ts;
        if not (List.mem membership_key st.dirty) then begin
          st.dirty <- membership_key :: st.dirty;
          Hashtbl.replace t.writers membership_key st.tid
        end
      end;
      emit t (Action.write ?value:after ~kind ~preds ~cursor st.tid k);
      Progress

(* A scan: a timestamped read of the membership item plus reads of every
   matched row (their rts rise, so updates to them conflict). *)
let timestamped_scan t st p ~open_cursor =
  let m = stamps_of t membership_key in
  if m.wts > st.ts then begin
    rollback t st Too_late;
    Progress
  end
  else
    match uncommitted_writer t st membership_key with
    | Some w -> Blocked [ w ]
    | None -> (
      let rows = Store.scan t.store p in
      (* Rows with uncommitted writes force a wait (strict reads). *)
      let blockers =
        List.filter_map (fun (k, _) -> uncommitted_writer t st k) rows
        |> List.sort_uniq compare
      in
      match blockers with
      | _ :: _ -> Blocked blockers
      | [] ->
        if List.exists (fun (k, _) -> (stamps_of t k).wts > st.ts) rows then begin
          rollback t st Too_late;
          Progress
        end
        else begin
          m.rts <- max m.rts st.ts;
          List.iter (fun (k, _) -> (stamps_of t k).rts <- max (stamps_of t k).rts st.ts) rows;
          st.env <- Program.observe_scan st.env (Predicate.name p) rows;
          if
            List.exists
              (fun q -> Predicate.name q = Predicate.name p)
              t.predicates
          then
            emit t
              (Action.pred_read ~keys:(List.map fst rows) st.tid
                 (Predicate.name p));
          (match open_cursor with
          | Some name ->
            Hashtbl.replace st.cursors name { remaining = rows; current = None }
          | None -> ());
          Progress
        end)

let do_fetch t st name =
  match Hashtbl.find_opt st.cursors name with
  | None -> invalid_arg "To_engine: fetch without an open cursor"
  | Some c -> (
    match c.remaining with
    | [] ->
      c.current <- None;
      Progress
    | (k, _) :: rest -> (
      match timestamped_read t st k ~cursor:true with
      | Progress when st.status = Active ->
        c.remaining <- rest;
        c.current <-
          (match Store.get t.store k with
          | Some v -> Some (k, v)
          | None -> None);
        Progress
      | outcome -> outcome))

(* Periodic WAL checkpoint, mirroring the lock engine: a commit step
   runs under every stripe, so the store image is consistent and no undo
   list is mid-mutation. Still-active transactions are carried with
   their undo journals so recovery can roll their pre-checkpoint writes
   out of the image. *)
let maybe_checkpoint t =
  if t.checkpoint_every > 0 then begin
    t.commits_since_ckpt <- t.commits_since_ckpt + 1;
    if t.commits_since_ckpt >= t.checkpoint_every then begin
      t.commits_since_ckpt <- 0;
      let image = Store.to_list t.store in
      let active =
        Hashtbl.fold
          (fun tid st acc ->
            if st.status = Active then (tid, st.undo) :: acc else acc)
          t.txns []
      in
      Wal.checkpoint t.wal ~image ~active
    end
  end

let do_commit t st =
  match t.tear_commit with
  | Some tear when tear st.tid ->
    (* The injected crash strikes as the Commit record is logged: it
       never became durable, so the transaction never committed. Roll
       back with compensation and let the runtime retry the attempt
       under a fresh tid. *)
    rollback t st Fault_injected;
    Progress
  | _ ->
    Wal.append t.wal (Wal.Commit st.tid);
    st.undo <- [];
    st.status <- Committed;
    finish_cleanup t st;
    emit t (Action.commit st.tid);
    maybe_checkpoint t;
    Progress

(* A tid the engine no longer knows (finished and forgotten) already
   reached a terminal status, so the abort is a no-op. *)
let abort_txn t tid ~reason =
  match Hashtbl.find_opt t.txns tid with
  | Some st when st.status = Active -> rollback t st reason
  | Some _ | None -> ()

let step t tid (op : Program.op) =
  let st = state t tid in
  match st.status with
  | Committed | Aborted _ -> Finished
  | Active -> (
    match op with
    | Program.Read k -> timestamped_read t st k ~cursor:false
    | Program.Write (k, expr) ->
      timestamped_write t st k ~after:(Some (expr st.env)) ~kind:Action.Update
        ~cursor:false
    | Program.Insert (k, expr) ->
      timestamped_write t st k ~after:(Some (expr st.env)) ~kind:Action.Insert
        ~cursor:false
    | Program.Delete k ->
      timestamped_write t st k ~after:None ~kind:Action.Delete ~cursor:false
    | Program.Scan p -> timestamped_scan t st p ~open_cursor:None
    | Program.Open_cursor { cursor; pred; for_update = _ } ->
      timestamped_scan t st pred ~open_cursor:(Some cursor)
    | Program.Fetch c -> do_fetch t st c
    | Program.Cursor_write (c, expr) -> (
      match Hashtbl.find_opt st.cursors c with
      | None | Some { current = None; _ } ->
        invalid_arg "To_engine: cursor write without a current row"
      | Some { current = Some (k, _); _ } ->
        timestamped_write t st k
          ~after:(Some (expr st.env))
          ~kind:Action.Update ~cursor:true)
    | Program.Close_cursor c ->
      Hashtbl.remove st.cursors c;
      Progress
    | Program.Commit -> do_commit t st
    | Program.Abort ->
      rollback t st User_abort;
      Progress)

let final_state t =
  List.filter (fun (k, _) -> k <> membership_key) (Store.to_list t.store)

(* Drop a finished transaction's state. The table is mutated by steps
   running under every stripe, so the pool routes this call through the
   same all-stripes exclusion. *)
let forget t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some st when st.status <> Active -> Hashtbl.remove t.txns tid
  | _ -> ()

let store t = t.store
