(** Strict timestamp-ordering scheduler ([BHG] Chapter 4): the classic
    lock-free serializable implementation the ANSI phenomena-based
    definitions were meant to admit (§2.2). Conflicts surface as
    [Too_late] aborts (younger transactions win items they touched
    first); strict reads wait behind uncommitted writers, and waits only
    ever point from younger to older, so deadlock is impossible.

    Phantom safety relies on a virtual membership item written by
    inserts, deletes and membership-changing updates of the configured
    predicates; declare the predicates the workload scans.

    Prefer the level-agnostic {!Engine} front end. *)

module Action = History.Action

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | Too_late
  | Fault_injected  (** injected by a fault plan *)
  | Deadline_exceeded  (** the transaction ran past its deadline *)
  | Certifier_abort
      (** the online certifier doomed it: one of its actions closed a
          dependency cycle *)
type status = Active | Committed | Aborted of abort_reason
type step_outcome = Progress | Blocked of txn list | Finished

type t

val create :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?retain_trace:bool ->
  unit ->
  t
(** The T/O scheduler updates its store in place with before-image undo
    lists — the lock engine's shape — so it logs the standard
    Begin/Update/Commit/Abort records and reuses the single-version
    {!Storage.Recovery} unchanged (strictness excludes P0, so
    before-image undo is sound). Out-of-core options mirror
    {!Lock_engine.create}: [wal_dir] (segmented on-disk log, with
    [wal_segment_bytes] and [wal_group_commit]), [checkpoint_every] > 0
    (checkpoint + truncate every that many commits), [retain_trace] =
    false (drop the in-memory action list; the trace hook and
    {!trace_len} still run). *)

val begin_txn : t -> txn -> unit
(** Assigns the transaction's (monotonic) timestamp. *)

val status : t -> txn -> status
val env : t -> txn -> Program.env
val step : t -> txn -> Program.op -> step_outcome
val abort_txn : t -> txn -> reason:abort_reason -> unit
val trace : t -> History.t

val trace_len : t -> int
(** Number of actions emitted so far (O(1)); see {!Lock_engine.trace_len}. *)

val set_trace_hook : t -> (int -> Action.t -> unit) -> unit
(** Trace observation hook, called with [(position, action)] on each
    append; see {!Lock_engine.set_trace_hook}. *)

val set_tear_hook : t -> (txn -> bool) -> unit
(** Install the torn-commit fault hook, consulted as the Commit record
    would be logged; see {!Lock_engine.set_tear_hook}. *)

val wal : t -> Storage.Wal.t

val wal_sync : t -> unit
(** Group-commit durability point ({!Storage.Wal.sync}). *)

val forget : t -> txn -> unit
(** Drop a finished transaction's state (no-op while active or for an
    unknown tid). Must run under the same all-stripes exclusion as the
    engine's steps. *)

val store : t -> Storage.Store.t
(** The single-version store (the virtual membership item never appears
    in it). *)

val final_state : t -> (key * value) list
