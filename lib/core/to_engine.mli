(** Strict timestamp-ordering scheduler ([BHG] Chapter 4): the classic
    lock-free serializable implementation the ANSI phenomena-based
    definitions were meant to admit (§2.2). Conflicts surface as
    [Too_late] aborts (younger transactions win items they touched
    first); strict reads wait behind uncommitted writers, and waits only
    ever point from younger to older, so deadlock is impossible.

    Phantom safety relies on a virtual membership item written by
    inserts, deletes and membership-changing updates of the configured
    predicates; declare the predicates the workload scans.

    Prefer the level-agnostic {!Engine} front end. *)

module Action = History.Action

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | Too_late
  | Fault_injected  (** injected by a fault plan *)
  | Deadline_exceeded  (** the transaction ran past its deadline *)
  | Certifier_abort
      (** the online certifier doomed it: one of its actions closed a
          dependency cycle *)
type status = Active | Committed | Aborted of abort_reason
type step_outcome = Progress | Blocked of txn list | Finished

type t

val create :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  unit ->
  t

val begin_txn : t -> txn -> unit
(** Assigns the transaction's (monotonic) timestamp. *)

val status : t -> txn -> status
val env : t -> txn -> Program.env
val step : t -> txn -> Program.op -> step_outcome
val abort_txn : t -> txn -> reason:abort_reason -> unit
val trace : t -> History.t

val trace_len : t -> int
(** Number of actions emitted so far (O(1)); see {!Lock_engine.trace_len}. *)

val set_trace_hook : t -> (int -> Action.t -> unit) -> unit
(** Trace observation hook, called with [(position, action)] on each
    append; see {!Lock_engine.set_trace_hook}. *)

val final_state : t -> (key * value) list
