(* The locking scheduler: executes transaction programs over a
   single-version store under the lock protocols of Table 2.

   Each transaction runs at its own protocol (mixed isolation levels within
   one execution, as in the paper's introduction). Every step either
   executes an operation — acquiring the locks its protocol prescribes,
   updating the store in place, logging before images to the WAL — or
   reports the transactions it is blocked on, leaving the operation to be
   retried. Aborts roll back by restoring before images. *)

module Action = History.Action
module Store = Storage.Store
module Version_store = Storage.Version_store
module Predicate = Storage.Predicate
module Wal = Storage.Wal
module Lock_table = Locking.Lock_table
module Protocol = Locking.Protocol

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason = User_abort | Deadlock_victim

type status = Active | Committed | Aborted of abort_reason

type cursor = {
  mutable remaining : (key * value) list;
  mutable current : (key * value) option;
  for_update : bool;
}

type txn_state = {
  tid : txn;
  protocol : Protocol.t;
  read_only : bool;      (* [BHG] Multiversion Mixed Method: snapshot reads *)
  snapshot_ts : int;     (* commit timestamp visible to a read-only txn *)
  mutable status : status;
  mutable env : Program.env;
  mutable undo : (key * value option) list; (* before images, newest first *)
  cursors : (string, cursor) Hashtbl.t;
}

type t = {
  store : Store.t;
  vstore : Version_store.t; (* committed versions, for read-only snapshots *)
  mutable commit_ts : int;
  locks : Lock_table.t;
  wal : Wal.t;
  mutable trace : Action.t list; (* newest first *)
  mutable trace_len : int;       (* = List.length trace, O(1) for tracing *)
  txns : (txn, txn_state) Hashtbl.t;
  predicates : Predicate.t list; (* annotated on writes for the detectors *)
  next_key_locking : bool;       (* phantom guard ablation *)
  update_locks : bool;           (* U locks on for-update fetches (ablation) *)
}

type step_outcome = Progress | Blocked of txn list | Finished

(* The virtual key after every real key, locked by scans of unbounded
   ranges and by inserts with no successor. *)
let infinity_key = "\255<infinity>"

let create ~initial ~predicates ?(next_key_locking = false)
    ?(update_locks = false) () =
  {
    store = Store.of_list initial;
    vstore = Version_store.of_list initial;
    commit_ts = 0;
    locks = Lock_table.create ();
    wal = Wal.create ();
    trace = [];
    trace_len = 0;
    txns = Hashtbl.create 8;
    predicates;
    next_key_locking;
    update_locks;
  }

let emit t action =
  t.trace <- action :: t.trace;
  t.trace_len <- t.trace_len + 1

let trace t = List.rev t.trace
let trace_len t = t.trace_len

let state t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some st -> st
  | None -> invalid_arg (Fmt.str "Lock_engine: unknown transaction %d" tid)

let begin_txn ?(read_only = false) t tid ~level =
  let protocol = Protocol.for_level_exn level in
  let protocol =
    if t.next_key_locking then Protocol.with_next_key protocol else protocol
  in
  Hashtbl.replace t.txns tid
    { tid; protocol; read_only; snapshot_ts = t.commit_ts; status = Active;
      env = Program.empty_env; undo = []; cursors = Hashtbl.create 2 };
  Wal.append t.wal (Wal.Begin tid)

let status t tid = (state t tid).status
let env t tid = (state t tid).env

let duration_tag = function
  | Protocol.Short -> Some Lock_table.Short
  | Protocol.Long -> Some Lock_table.Long
  | Protocol.No_lock -> None

(* Acquire a lock if the protocol calls for one; [`Granted] also covers
   "no lock required". *)
let acquire t st duration req =
  match duration_tag duration with
  | None -> Lock_table.Granted
  | Some tag -> Lock_table.acquire t.locks ~owner:st.tid ~tag req

let release_short t st = Lock_table.release t.locks ~owner:st.tid ~tag:Lock_table.Short

(* Predicates (from the configured set) that a write of [k] from [before]
   to [after] affects — the annotation the P3/A3 detectors consume. *)
let affected_predicates t k ~before ~after =
  List.filter_map
    (fun p ->
      if Predicate.affected_by_write p k ~before ~after then
        Some (Predicate.name p)
      else None)
    t.predicates

(* Read-only transactions read the committed snapshot as of their begin,
   lock-free — the Multiversion Mixed Method ([BHG]; the paper notes
   Snapshot Isolation extends it). *)
let snapshot_read t st k =
  let v, writer =
    match Version_store.version_at t.vstore ~ts:st.snapshot_ts k with
    | Some ver -> (ver.Version_store.value, ver.Version_store.writer)
    | None -> (None, 0)
  in
  st.env <- Program.observe_read st.env k v;
  emit t (Action.read ~ver:writer ?value:v st.tid k);
  Progress

let snapshot_scan t st p =
  let rows = Version_store.scan_at t.vstore ~ts:st.snapshot_ts p in
  st.env <- Program.observe_scan st.env (Predicate.name p) rows;
  if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
  then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
  Progress

let do_read t st k =
  if st.read_only then snapshot_read t st k
  else
  match acquire t st st.protocol.item_read (Lock_table.Read_item k) with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let v = Store.get t.store k in
    st.env <- Program.observe_read st.env k v;
    emit t (Action.read ?value:v st.tid k);
    if st.protocol.item_read = Protocol.Short then release_short t st;
    Progress

(* Under next-key locking, an insert or delete of [k] also takes a short
   Write lock on the next present key after [k] (or the virtual infinity
   key): splitting or merging a gap conflicts with any scan whose
   next-key guard covers that gap. *)
let acquire_gap_guard t st k ~before ~after =
  let presence_changes =
    match (before, after) with
    | None, Some _ | Some _, None -> true
    | _ -> false
  in
  if st.protocol.phantom_guard <> Protocol.Next_key_locks || not presence_changes
  then Lock_table.Granted
  else
    let gap_key =
      Option.value ~default:infinity_key
        (Store.next_key_geq t.store (k ^ "\x00"))
    in
    Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Short
      (Lock_table.Write_item { k = gap_key; before = None; after = None })

let do_write t st k ~after ~kind ~cursor =
  if st.read_only then
    invalid_arg "Lock_engine: read-only transactions cannot write";
  let before = Store.get t.store k in
  match acquire_gap_guard t st k ~before ~after with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
  match
    acquire t st st.protocol.item_write (Lock_table.Write_item { k; before; after })
  with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    Wal.append t.wal (Wal.Update { t = st.tid; k; before; after });
    st.undo <- (k, before) :: st.undo;
    (match after with
    | Some v -> Store.put t.store k v
    | None -> Store.delete t.store k);
    let preds = affected_predicates t k ~before ~after in
    emit t (Action.write ?value:after ~kind ~preds ~cursor st.tid k);
    if st.protocol.item_write = Protocol.Short then release_short t st;
    Progress

(* The scan-side phantom guard. With predicate locks, one Read lock on
   the predicate; with next-key locks (and a range predicate), Read locks
   on every matched row plus the next key at or beyond the range's upper
   bound, which guards the gaps a phantom insert would have to split.
   Non-range predicates fall back to predicate locks. *)
let acquire_scan_guard t st p rows =
  match
    (st.protocol.phantom_guard, Predicate.range_bounds p, st.protocol.pred_read)
  with
  | _, _, Protocol.No_lock -> Lock_table.Granted
  | Protocol.Next_key_locks, Some (_, hi), duration -> (
    let tag =
      match duration with
      | Protocol.Short -> Lock_table.Short
      | Protocol.Long | Protocol.No_lock -> Lock_table.Long
    in
    let guard_key =
      match hi with
      | Some hi ->
        Option.value ~default:infinity_key (Store.next_key_geq t.store hi)
      | None -> infinity_key
    in
    let targets = List.map fst rows @ [ guard_key ] in
    let rec lock_all = function
      | [] -> Lock_table.Granted
      | k :: rest -> (
        match
          Lock_table.acquire t.locks ~owner:st.tid ~tag (Lock_table.Read_item k)
        with
        | Lock_table.Granted -> lock_all rest
        | Lock_table.Conflict _ as c -> c)
    in
    lock_all targets)
  | Protocol.Next_key_locks, None, duration | Protocol.Predicate_locks, _, duration
    ->
    acquire t st duration (Lock_table.Read_pred p)

let do_scan t st p =
  if st.read_only then snapshot_scan t st p
  else
  let rows = Store.scan t.store p in
  match acquire_scan_guard t st p rows with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let rows = Store.scan t.store p in
    st.env <- Program.observe_scan st.env (Predicate.name p) rows;
    (* Only configured predicates are annotated in the trace, so scenario
       classification is driven by the workload's declared predicates. *)
    if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
    then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
    if st.protocol.pred_read = Protocol.Short then release_short t st;
    Progress

let do_open_cursor t st name ~for_update p =
  let rows0 = Store.scan t.store p in
  match acquire_scan_guard t st p rows0 with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let rows = Store.scan t.store p in
    Hashtbl.replace st.cursors name
      { remaining = rows; current = None; for_update };
    st.env <- Program.observe_scan st.env (Predicate.name p) rows;
    if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
    then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
    if st.protocol.pred_read = Protocol.Short then release_short t st;
    Progress

let do_fetch t st name =
  match Hashtbl.find_opt st.cursors name with
  | None -> invalid_arg "Lock_engine: fetch without an open cursor"
  | Some c -> (
    match c.remaining with
    | [] ->
      (* Moving past the end releases the hold on the previous row. *)
      if st.protocol.cursor_hold then
        Lock_table.release t.locks ~owner:st.tid ~tag:(Lock_table.Cursor name);
      c.current <- None;
      Progress
    | (k, _stale) :: rest ->
      (* The row is re-read from the store at fetch time; the value seen at
         open-cursor time may be stale at weak levels. A for-update fetch
         takes a long U lock when the engine runs with update locks. *)
      let u_mode = t.update_locks && c.for_update in
      let tag =
        if u_mode then Some Lock_table.Long
        else if st.protocol.cursor_hold then Some (Lock_table.Cursor name)
        else duration_tag st.protocol.item_read
      in
      let verdict =
        match tag with
        | None -> Lock_table.Granted
        | Some tag ->
          (* Cursor Stability releases the previous row's lock when the
             cursor moves; done before acquiring the next row's lock. *)
          if st.protocol.cursor_hold && not u_mode then
            Lock_table.release t.locks ~owner:st.tid ~tag:(Lock_table.Cursor name);
          Lock_table.acquire t.locks ~owner:st.tid ~tag
            (if u_mode then Lock_table.Update_item k else Lock_table.Read_item k)
      in
      match verdict with
      | Lock_table.Conflict holders -> Blocked holders
      | Lock_table.Granted ->
        let v = Store.get t.store k in
        c.remaining <- rest;
        c.current <- (match v with Some v -> Some (k, v) | None -> None);
        st.env <- Program.observe_read st.env k v;
        emit t (Action.read ?value:v ~cursor:true st.tid k);
        if (not st.protocol.cursor_hold) && st.protocol.item_read = Protocol.Short
        then release_short t st;
        Progress)

let do_cursor_write t st name expr =
  match Hashtbl.find_opt st.cursors name with
  | None | Some { current = None; _ } ->
    invalid_arg "Lock_engine: cursor write without a current row"
  | Some { current = Some (k, _); _ } ->
    let after = Some (expr st.env) in
    (* Write locks on the updated row are always long (Table 2). *)
    let before = Store.get t.store k in
    (match
       Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Long
         (Lock_table.Write_item { k; before; after })
     with
    | Lock_table.Conflict holders -> Blocked holders
    | Lock_table.Granted ->
      Wal.append t.wal (Wal.Update { t = st.tid; k; before; after });
      st.undo <- (k, before) :: st.undo;
      (match after with Some v -> Store.put t.store k v | None -> ());
      let preds = affected_predicates t k ~before ~after in
      emit t (Action.write ?value:after ~kind:Action.Update ~preds ~cursor:true st.tid k);
      Progress)

let finish t st =
  Lock_table.release_all t.locks ~owner:st.tid;
  Hashtbl.reset st.cursors

(* The distinct keys a transaction wrote, with their current (commit-time)
   values — its after-image set, installed as committed versions so
   read-only snapshots can see past states. *)
let write_set t st =
  List.fold_left
    (fun acc (k, _) ->
      if List.mem_assoc k acc then acc else (k, Store.get t.store k) :: acc)
    [] st.undo

let do_commit t st =
  Wal.append t.wal (Wal.Commit st.tid);
  (match write_set t st with
  | [] -> ()
  | writes ->
    t.commit_ts <- t.commit_ts + 1;
    Version_store.install t.vstore ~writer:st.tid ~commit_ts:t.commit_ts writes);
  st.status <- Committed;
  finish t st;
  emit t (Action.commit st.tid);
  Progress

let rollback t st reason =
  (* Undo by restoring before-images, newest first, logging each restore
     as a compensation update so crash recovery can replay it. *)
  List.iter
    (fun (k, before) ->
      Wal.append t.wal
        (Wal.Update { t = st.tid; k; before = Store.get t.store k; after = before });
      Store.restore t.store k before)
    st.undo;
  st.undo <- [];
  Wal.append t.wal (Wal.Abort st.tid);
  st.status <- Aborted reason;
  finish t st;
  emit t (Action.abort st.tid)

let do_abort t st reason =
  rollback t st reason;
  Progress

(* Abort initiated from outside the program — deadlock victim. *)
let abort_txn t tid ~reason =
  let st = state t tid in
  match st.status with Active -> rollback t st reason | Committed | Aborted _ -> ()

let step t tid (op : Program.op) =
  let st = state t tid in
  match st.status with
  | Committed | Aborted _ -> Finished
  | Active -> (
    match op with
    | Program.Read k -> do_read t st k
    | Program.Write (k, expr) ->
      do_write t st k ~after:(Some (expr st.env)) ~kind:Action.Update ~cursor:false
    | Program.Insert (k, expr) ->
      do_write t st k ~after:(Some (expr st.env)) ~kind:Action.Insert ~cursor:false
    | Program.Delete k ->
      do_write t st k ~after:None ~kind:Action.Delete ~cursor:false
    | Program.Scan p -> do_scan t st p
    | Program.Open_cursor { cursor; pred; for_update } ->
      do_open_cursor t st cursor ~for_update pred
    | Program.Fetch c -> do_fetch t st c
    | Program.Cursor_write (c, expr) -> do_cursor_write t st c expr
    | Program.Close_cursor c ->
      if st.protocol.cursor_hold then
        Lock_table.release t.locks ~owner:st.tid ~tag:(Lock_table.Cursor c);
      Hashtbl.remove st.cursors c;
      Progress
    | Program.Commit -> do_commit t st
    | Program.Abort -> do_abort t st User_abort)

let final_state t = Store.to_list t.store
let wal t = t.wal
let store t = t.store
let lock_events t = Lock_table.events t.locks
let lock_stats t = Lock_table.stats t.locks
let set_lock_hook t f = Lock_table.set_hook t.locks f
