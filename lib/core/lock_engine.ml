(* The locking scheduler: executes transaction programs over a
   single-version store under the lock protocols of Table 2.

   Each transaction runs at its own protocol (mixed isolation levels within
   one execution, as in the paper's introduction). Every step either
   executes an operation — acquiring the locks its protocol prescribes,
   updating the store in place, logging before images to the WAL — or
   reports the transactions it is blocked on, leaving the operation to be
   retried. Aborts roll back by restoring before images. *)

module Action = History.Action
module Store = Storage.Store
module Version_store = Storage.Version_store
module Predicate = Storage.Predicate
module Wal = Storage.Wal
module Lock_table = Locking.Lock_table
module Protocol = Locking.Protocol

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | Fault_injected      (* injected by a fault plan (spurious failure, torn commit) *)
  | Deadline_exceeded   (* transaction ran past its deadline *)
  | Certifier_abort     (* the online certifier doomed it: it closed a dependency cycle *)

type status = Active | Committed | Aborted of abort_reason

type cursor = {
  mutable remaining : (key * value) list;
  mutable current : (key * value) option;
  for_update : bool;
}

type txn_state = {
  tid : txn;
  protocol : Protocol.t;
  read_only : bool;      (* [BHG] Multiversion Mixed Method: snapshot reads *)
  snapshot_ts : int;     (* commit timestamp visible to a read-only txn *)
  mutable status : status;
  mutable env : Program.env;
  mutable undo : (key * value option) list; (* before images, newest first *)
  cursors : (string, cursor) Hashtbl.t;
}

(* Shared state under striped execution. The pool guarantees that a step
   holds the stripe mutexes of every shard it touches (store shards, lock
   buckets), so those need no further protection. What transactions of
   *disjoint* footprints still share is protected here: the WAL has its
   own mutex, the trace has [trace_m], and [reg_m] covers the transaction
   registry together with [commit_ts] and the version store installs that
   must be atomic with respect to a beginner reading its snapshot
   timestamp. The registry itself is a tid-indexed array behind an
   [Atomic]: lookups — the per-step hot path, and the deadlock detector
   peeking at a victim — are lock-free; only [begin_txn] mutates it. *)
type t = {
  store : Store.t;
  vstore : Version_store.t; (* committed versions, for read-only snapshots *)
  mutable commit_ts : int;  (* under reg_m *)
  locks : Lock_table.t;
  wal : Wal.t;
  checkpoint_every : int;   (* commits between WAL checkpoints; 0 = never *)
  mutable commits_since_ckpt : int; (* under all stripes (commit footprint) *)
  retain_trace : bool;      (* keep the action list (out-of-core runs drop it) *)
  mutable trace : Action.t list; (* newest first; under trace_m *)
  trace_m : Mutex.t;
  trace_len : int Atomic.t;      (* = List.length trace, O(1) for tracing *)
  reg_m : Mutex.t;
  slots : txn_state option array Atomic.t; (* tid-indexed; grown by begin *)
  predicates : Predicate.t list; (* annotated on writes for the detectors *)
  next_key_locking : bool;       (* phantom guard ablation *)
  update_locks : bool;           (* U locks on for-update fetches (ablation) *)
  (* Fault-injection hook consulted as the Commit record would be logged:
     [true] means the simulated crash tore the record off the WAL tail,
     so the transaction never committed and rolls back instead. Set once
     before workers spawn; read on worker domains. *)
  mutable tear_commit : (txn -> bool) option;
  (* Trace observation hook, called with (position, action) inside
     [trace_m] as each action is appended — a serialised, history-ordered
     action stream for the online certifier. Set once before workers
     spawn; must only take leaf locks of its own. *)
  mutable trace_hook : (int -> Action.t -> unit) option;
}

type step_outcome = Progress | Blocked of txn list | Finished

(* The virtual key after every real key, locked by scans of unbounded
   ranges and by inserts with no successor. *)
let infinity_key = "\255<infinity>"

let create ~initial ~predicates ?(stripes = 1) ?(audit = true)
    ?(next_key_locking = false) ?(update_locks = false) ?wal_dir
    ?wal_segment_bytes ?wal_group_commit ?(checkpoint_every = 0)
    ?(retain_trace = true) () =
  let stripes = max 1 stripes in
  {
    store = Store.of_list ~shards:stripes initial;
    vstore = Version_store.of_list initial;
    commit_ts = 0;
    locks = Lock_table.create ~stripes ~audit ();
    wal = Wal.create ?dir:wal_dir ?segment_bytes:wal_segment_bytes
        ?group_commit:wal_group_commit ();
    checkpoint_every;
    commits_since_ckpt = 0;
    retain_trace;
    trace = [];
    trace_m = Mutex.create ();
    trace_len = Atomic.make 0;
    reg_m = Mutex.create ();
    slots = Atomic.make (Array.make 8 None);
    predicates;
    next_key_locking;
    update_locks;
    tear_commit = None;
    trace_hook = None;
  }

let emit t action =
  Mutex.lock t.trace_m;
  if t.retain_trace then t.trace <- action :: t.trace;
  Atomic.incr t.trace_len;
  (match t.trace_hook with
  | Some f -> f (Atomic.get t.trace_len - 1) action
  | None -> ());
  Mutex.unlock t.trace_m

let trace t =
  Mutex.lock t.trace_m;
  let tr = t.trace in
  Mutex.unlock t.trace_m;
  List.rev tr

let trace_len t = Atomic.get t.trace_len

let find_state t tid =
  let a = Atomic.get t.slots in
  if tid >= 0 && tid < Array.length a then a.(tid) else None

let state t tid =
  match find_state t tid with
  | Some st -> st
  | None -> invalid_arg (Fmt.str "Lock_engine: unknown transaction %d" tid)

let begin_txn ?(read_only = false) t tid ~level =
  if tid < 0 then invalid_arg "Lock_engine: negative transaction id";
  let protocol = Protocol.for_level_exn level in
  let protocol =
    if t.next_key_locking then Protocol.with_next_key protocol else protocol
  in
  Mutex.lock t.reg_m;
  let a = Atomic.get t.slots in
  let a =
    if tid < Array.length a then a
    else begin
      let b = Array.make (max (tid + 1) (2 * Array.length a)) None in
      Array.blit a 0 b 0 (Array.length a);
      Atomic.set t.slots b;
      b
    end
  in
  a.(tid) <-
    Some
      { tid; protocol; read_only; snapshot_ts = t.commit_ts; status = Active;
        env = Program.empty_env; undo = []; cursors = Hashtbl.create 2 };
  Mutex.unlock t.reg_m;
  Wal.append t.wal (Wal.Begin tid)

let status t tid = (state t tid).status
let env t tid = (state t tid).env

let duration_tag = function
  | Protocol.Short -> Some Lock_table.Short
  | Protocol.Long -> Some Lock_table.Long
  | Protocol.No_lock -> None

(* Acquire a lock if the protocol calls for one; [`Granted] also covers
   "no lock required". *)
let acquire t st duration req =
  match duration_tag duration with
  | None -> Lock_table.Granted
  | Some tag -> Lock_table.acquire t.locks ~owner:st.tid ~tag req

(* Step-local releases are scoped to the buckets the step's footprint
   covers — exactly the stripes the caller holds. [scope = None] (single
   stripe, or an all-stripes step) sweeps every bucket. *)
let release_short ?scope t st =
  Lock_table.release ?scope t.locks ~owner:st.tid ~tag:Lock_table.Short

(* Predicates (from the configured set) that a write of [k] from [before]
   to [after] affects — the annotation the P3/A3 detectors consume. *)
let affected_predicates t k ~before ~after =
  List.filter_map
    (fun p ->
      if Predicate.affected_by_write p k ~before ~after then
        Some (Predicate.name p)
      else None)
    t.predicates

(* Read-only transactions read the committed snapshot as of their begin,
   lock-free — the Multiversion Mixed Method ([BHG]; the paper notes
   Snapshot Isolation extends it). *)
let snapshot_read t st k =
  let v, writer =
    match Version_store.version_at t.vstore ~ts:st.snapshot_ts k with
    | Some ver -> (ver.Version_store.value, ver.Version_store.writer)
    | None -> (None, 0)
  in
  st.env <- Program.observe_read st.env k v;
  emit t (Action.read ~ver:writer ?value:v st.tid k);
  Progress

let snapshot_scan t st p =
  let rows = Version_store.scan_at t.vstore ~ts:st.snapshot_ts p in
  st.env <- Program.observe_scan st.env (Predicate.name p) rows;
  if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
  then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
  Progress

let do_read ?scope t st k =
  if st.read_only then snapshot_read t st k
  else
  match acquire t st st.protocol.item_read (Lock_table.Read_item k) with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let v = Store.get t.store k in
    st.env <- Program.observe_read st.env k v;
    emit t (Action.read ?value:v st.tid k);
    if st.protocol.item_read = Protocol.Short then release_short ?scope t st;
    Progress

(* Under next-key locking, an insert or delete of [k] also takes a short
   Write lock on the next present key after [k] (or the virtual infinity
   key): splitting or merging a gap conflicts with any scan whose
   next-key guard covers that gap. *)
let acquire_gap_guard t st k ~before ~after =
  let presence_changes =
    match (before, after) with
    | None, Some _ | Some _, None -> true
    | _ -> false
  in
  if st.protocol.phantom_guard <> Protocol.Next_key_locks || not presence_changes
  then Lock_table.Granted
  else
    let gap_key =
      Option.value ~default:infinity_key
        (Store.next_key_geq t.store (k ^ "\x00"))
    in
    Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Short
      (Lock_table.Write_item { k = gap_key; before = None; after = None })

let do_write ?scope t st k ~after ~kind ~cursor =
  if st.read_only then
    invalid_arg "Lock_engine: read-only transactions cannot write";
  let before = Store.get t.store k in
  match acquire_gap_guard t st k ~before ~after with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
  match
    acquire t st st.protocol.item_write (Lock_table.Write_item { k; before; after })
  with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    Wal.append t.wal (Wal.Update { t = st.tid; k; before; after });
    st.undo <- (k, before) :: st.undo;
    (match after with
    | Some v -> Store.put t.store k v
    | None -> Store.delete t.store k);
    let preds = affected_predicates t k ~before ~after in
    emit t (Action.write ?value:after ~kind ~preds ~cursor st.tid k);
    if st.protocol.item_write = Protocol.Short then release_short ?scope t st;
    Progress

(* The scan-side phantom guard. With predicate locks, one Read lock on
   the predicate; with next-key locks (and a range predicate), Read locks
   on every matched row plus the next key at or beyond the range's upper
   bound, which guards the gaps a phantom insert would have to split.
   Non-range predicates fall back to predicate locks. *)
let acquire_scan_guard t st p rows =
  match
    (st.protocol.phantom_guard, Predicate.range_bounds p, st.protocol.pred_read)
  with
  | _, _, Protocol.No_lock -> Lock_table.Granted
  | Protocol.Next_key_locks, Some (_, hi), duration -> (
    let tag =
      match duration with
      | Protocol.Short -> Lock_table.Short
      | Protocol.Long | Protocol.No_lock -> Lock_table.Long
    in
    let guard_key =
      match hi with
      | Some hi ->
        Option.value ~default:infinity_key (Store.next_key_geq t.store hi)
      | None -> infinity_key
    in
    let targets = List.map fst rows @ [ guard_key ] in
    let rec lock_all = function
      | [] -> Lock_table.Granted
      | k :: rest -> (
        match
          Lock_table.acquire t.locks ~owner:st.tid ~tag (Lock_table.Read_item k)
        with
        | Lock_table.Granted -> lock_all rest
        | Lock_table.Conflict _ as c -> c)
    in
    lock_all targets)
  | Protocol.Next_key_locks, None, duration | Protocol.Predicate_locks, _, duration
    ->
    acquire t st duration (Lock_table.Read_pred p)

let do_scan t st p =
  if st.read_only then snapshot_scan t st p
  else
  let rows = Store.scan t.store p in
  match acquire_scan_guard t st p rows with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let rows = Store.scan t.store p in
    st.env <- Program.observe_scan st.env (Predicate.name p) rows;
    (* Only configured predicates are annotated in the trace, so scenario
       classification is driven by the workload's declared predicates. *)
    if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
    then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
    if st.protocol.pred_read = Protocol.Short then release_short t st;
    Progress

let do_open_cursor t st name ~for_update p =
  let rows0 = Store.scan t.store p in
  match acquire_scan_guard t st p rows0 with
  | Lock_table.Conflict holders -> Blocked holders
  | Lock_table.Granted ->
    let rows = Store.scan t.store p in
    Hashtbl.replace st.cursors name
      { remaining = rows; current = None; for_update };
    st.env <- Program.observe_scan st.env (Predicate.name p) rows;
    if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
    then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
    if st.protocol.pred_read = Protocol.Short then release_short t st;
    Progress

let do_fetch ?scope t st name =
  match Hashtbl.find_opt st.cursors name with
  | None -> invalid_arg "Lock_engine: fetch without an open cursor"
  | Some c -> (
    match c.remaining with
    | [] ->
      (* Moving past the end releases the hold on the previous row. *)
      if st.protocol.cursor_hold then
        Lock_table.release ?scope t.locks ~owner:st.tid
          ~tag:(Lock_table.Cursor name);
      c.current <- None;
      Progress
    | (k, _stale) :: rest ->
      (* The row is re-read from the store at fetch time; the value seen at
         open-cursor time may be stale at weak levels. A for-update fetch
         takes a long U lock when the engine runs with update locks. *)
      let u_mode = t.update_locks && c.for_update in
      let tag =
        if u_mode then Some Lock_table.Long
        else if st.protocol.cursor_hold then Some (Lock_table.Cursor name)
        else duration_tag st.protocol.item_read
      in
      let verdict =
        match tag with
        | None -> Lock_table.Granted
        | Some tag ->
          (* Cursor Stability releases the previous row's lock when the
             cursor moves; done before acquiring the next row's lock. The
             footprint (and so [scope]) covers the previous row's bucket. *)
          if st.protocol.cursor_hold && not u_mode then
            Lock_table.release ?scope t.locks ~owner:st.tid
              ~tag:(Lock_table.Cursor name);
          Lock_table.acquire t.locks ~owner:st.tid ~tag
            (if u_mode then Lock_table.Update_item k else Lock_table.Read_item k)
      in
      match verdict with
      | Lock_table.Conflict holders -> Blocked holders
      | Lock_table.Granted ->
        let v = Store.get t.store k in
        c.remaining <- rest;
        c.current <- (match v with Some v -> Some (k, v) | None -> None);
        st.env <- Program.observe_read st.env k v;
        emit t (Action.read ?value:v ~cursor:true st.tid k);
        if (not st.protocol.cursor_hold) && st.protocol.item_read = Protocol.Short
        then release_short ?scope t st;
        Progress)

let do_cursor_write t st name expr =
  match Hashtbl.find_opt st.cursors name with
  | None | Some { current = None; _ } ->
    invalid_arg "Lock_engine: cursor write without a current row"
  | Some { current = Some (k, _); _ } ->
    let after = Some (expr st.env) in
    (* Write locks on the updated row are always long (Table 2). *)
    let before = Store.get t.store k in
    (match
       Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Long
         (Lock_table.Write_item { k; before; after })
     with
    | Lock_table.Conflict holders -> Blocked holders
    | Lock_table.Granted ->
      Wal.append t.wal (Wal.Update { t = st.tid; k; before; after });
      st.undo <- (k, before) :: st.undo;
      (match after with Some v -> Store.put t.store k v | None -> ());
      let preds = affected_predicates t k ~before ~after in
      emit t (Action.write ?value:after ~kind:Action.Update ~preds ~cursor:true st.tid k);
      Progress)

let finish t st =
  Lock_table.release_all t.locks ~owner:st.tid;
  Hashtbl.reset st.cursors

(* The distinct keys a transaction wrote, with their current (commit-time)
   values — its after-image set, installed as committed versions so
   read-only snapshots can see past states. *)
let write_set t st =
  List.fold_left
    (fun acc (k, _) ->
      if List.mem_assoc k acc then acc else (k, Store.get t.store k) :: acc)
    [] st.undo

let rollback t st reason =
  (* Undo by restoring before-images, newest first, logging each restore
     as a compensation update so crash recovery can replay it. *)
  List.iter
    (fun (k, before) ->
      Wal.append t.wal
        (Wal.Update { t = st.tid; k; before = Store.get t.store k; after = before });
      Store.restore t.store k before)
    st.undo;
  st.undo <- [];
  Wal.append t.wal (Wal.Abort st.tid);
  st.status <- Aborted reason;
  finish t st;
  emit t (Action.abort st.tid)

let do_commit t st =
  match t.tear_commit with
  | Some tear when tear st.tid ->
    (* The injected crash strikes as the Commit record is logged: the
       record never became durable, so the transaction never committed.
       Roll back with compensation — the same before-image undo a
       recovery manager would run — and let the runtime retry the
       attempt under a fresh tid. *)
    rollback t st Fault_injected;
    Progress
  | _ ->
  Wal.append t.wal (Wal.Commit st.tid);
  (match write_set t st with
  | [] -> ()
  | writes ->
    (* Atomic w.r.t. a beginner reading its snapshot timestamp: the bump
       and the install publish together or not at all. *)
    Mutex.lock t.reg_m;
    t.commit_ts <- t.commit_ts + 1;
    Version_store.install t.vstore ~writer:st.tid ~commit_ts:t.commit_ts writes;
    Mutex.unlock t.reg_m);
  st.status <- Committed;
  finish t st;
  emit t (Action.commit st.tid);
  (* Periodic WAL checkpoint. A commit step's footprint is [All], so every
     stripe is held here: the store image is consistent and no undo list
     is mid-mutation. Still-active transactions are carried with their
     undo journals so recovery can roll their pre-checkpoint writes out of
     the image. *)
  if t.checkpoint_every > 0 then begin
    t.commits_since_ckpt <- t.commits_since_ckpt + 1;
    if t.commits_since_ckpt >= t.checkpoint_every then begin
      t.commits_since_ckpt <- 0;
      let image = Store.to_list t.store in
      Mutex.lock t.reg_m;
      let slots = Atomic.get t.slots in
      let active = ref [] in
      let horizon = ref t.commit_ts in
      Array.iter
        (function
          | Some st when st.status = Active ->
            active := (st.tid, st.undo) :: !active;
            if st.snapshot_ts < !horizon then horizon := st.snapshot_ts
          | _ -> ())
        slots;
      (* Checkpoint cadence is also the version-store GC cadence: no
         live snapshot reads below the oldest active snapshot_ts, so
         versions visible only there are unreachable. Without this the
         store grows by one version per committed write forever. *)
      ignore (Version_store.prune t.vstore ~horizon:!horizon : int);
      Mutex.unlock t.reg_m;
      Wal.checkpoint t.wal ~image ~active:!active
    end
  end;
  Progress

let do_abort t st reason =
  rollback t st reason;
  Progress

(* Abort initiated from outside the program — deadlock victim. A tid the
   engine no longer knows (finished and forgotten) already reached a
   terminal status, so the abort is a no-op, same as Committed/Aborted. *)
let abort_txn t tid ~reason =
  match find_state t tid with
  | Some st when st.status = Active -> rollback t st reason
  | Some _ | None -> ()

(* Release a finished transaction's slot. Tids are dense and never
   reused, so without this the slot array retains every txn_state (env,
   undo tail, cursor table) for the whole run — the dominant resident
   cost of a 10^6-txn out-of-core run. Only terminal transactions are
   dropped; the guard makes a racing forget of a tid that was never
   begun (or is somehow still active) harmless. [reg_m] orders the write
   against the array growth in [begin_txn]. *)
let forget t tid =
  Mutex.lock t.reg_m;
  let a = Atomic.get t.slots in
  (if tid >= 0 && tid < Array.length a then
     match a.(tid) with
     | Some st when st.status <> Active -> a.(tid) <- None
     | _ -> ());
  Mutex.unlock t.reg_m

(* Which shards (store shards, lock buckets, stripe mutexes) a step of
   [op] touches. [All] is the conservative answer — the pool then holds
   every stripe, which is exactly the coarse latch. [Keys] names the data
   keys, plus whether the step reaches the predicate bucket (writers must
   see predicate readers — the phantom rule).

   The analysis runs on the owning worker before the step, reading only
   owner-local state (protocol, cursors), and is conservative:
   - next-key locking takes gap guards on *successor* keys found by
     cross-shard queries, so those engines always execute under [All];
   - read-only transactions read the shared version store, mutated by
     committers, so they too run under [All] (their reads are lock-free
     in the 2PL sense, not in the memory sense);
   - scans, cursor opens, commits and aborts touch every shard.

   Item reads and writes additionally *read* the predicate bucket during
   conflict checks without it being in their footprint when [pred=false]:
   that is safe because every predicate-bucket mutation happens under
   [All], which excludes any concurrent step. *)
type footprint = All | Keys of { keys : key list; pred : bool }

let footprint t tid (op : Program.op) =
  if t.next_key_locking then All
  else
    match find_state t tid with
    | None -> All
    | Some st -> (
      if st.read_only then All
      else
        match op with
        | Program.Read k -> Keys { keys = [ k ]; pred = false }
        | Program.Write (k, _) | Program.Insert (k, _) | Program.Delete k ->
          Keys { keys = [ k ]; pred = true }
        | Program.Scan _ | Program.Open_cursor _ -> All
        | Program.Fetch c -> (
          match Hashtbl.find_opt st.cursors c with
          | None -> All
          | Some cur ->
            (* The previous row (its cursor lock is released) and the row
               the fetch moves to. *)
            let prev = match cur.current with Some (k, _) -> [ k ] | None -> [] in
            let next = match cur.remaining with (k, _) :: _ -> [ k ] | [] -> [] in
            Keys { keys = prev @ next; pred = false })
        | Program.Cursor_write (c, _) -> (
          match Hashtbl.find_opt st.cursors c with
          | Some { current = Some (k, _); _ } -> Keys { keys = [ k ]; pred = true }
          | _ -> All)
        | Program.Close_cursor c -> (
          match Hashtbl.find_opt st.cursors c with
          | Some { current = Some (k, _); _ } -> Keys { keys = [ k ]; pred = false }
          | _ -> Keys { keys = []; pred = false })
        | Program.Commit | Program.Abort -> All)

(* The lock-bucket release scope matching a footprint: [None] means every
   bucket (legal only because [All] steps hold every stripe). *)
let scope_of_footprint t = function
  | All -> None
  | Keys { keys; pred } ->
    let buckets =
      List.sort_uniq compare (List.map (Lock_table.bucket_of_key t.locks) keys)
    in
    Some (if pred then buckets @ [ Lock_table.pred_bucket t.locks ] else buckets)

let step t tid (op : Program.op) =
  let st = state t tid in
  match st.status with
  | Committed | Aborted _ -> Finished
  | Active -> (
    let scope = scope_of_footprint t (footprint t tid op) in
    match op with
    | Program.Read k -> do_read ?scope t st k
    | Program.Write (k, expr) ->
      do_write ?scope t st k ~after:(Some (expr st.env)) ~kind:Action.Update
        ~cursor:false
    | Program.Insert (k, expr) ->
      do_write ?scope t st k ~after:(Some (expr st.env)) ~kind:Action.Insert
        ~cursor:false
    | Program.Delete k ->
      do_write ?scope t st k ~after:None ~kind:Action.Delete ~cursor:false
    | Program.Scan p -> do_scan t st p
    | Program.Open_cursor { cursor; pred; for_update } ->
      do_open_cursor t st cursor ~for_update pred
    | Program.Fetch c -> do_fetch ?scope t st c
    | Program.Cursor_write (c, expr) -> do_cursor_write t st c expr
    | Program.Close_cursor c ->
      if st.protocol.cursor_hold then
        Lock_table.release ?scope t.locks ~owner:st.tid ~tag:(Lock_table.Cursor c);
      Hashtbl.remove st.cursors c;
      Progress
    | Program.Commit -> do_commit t st
    | Program.Abort -> do_abort t st User_abort)

let stripes t = Lock_table.stripes t.locks
let final_state t = Store.to_list t.store
let wal t = t.wal

(* Group-commit durability point: called by the runtime after the commit
   step returns and its stripes are released, so concurrent committers
   batch into one fsync instead of serialising it inside the critical
   section. *)
let wal_sync t = Wal.sync t.wal
let store t = t.store
let lock_events t = Lock_table.events t.locks
let lock_stats t = Lock_table.stats t.locks
let set_lock_hook t f = Lock_table.set_hook t.locks f
let set_tear_hook t f = t.tear_commit <- Some f
let set_trace_hook t f = t.trace_hook <- Some f
