(** The multiversion engine: Snapshot Isolation with First-Committer-Wins
    (§4.2), its First-Updater-Wins ablation, and Oracle Read Consistency
    (§4.3, per-statement snapshots with first-writer-wins write locks).

    Prefer the level-agnostic {!Engine} front end; this module is exposed
    for tests and for direct access to the version store. *)

module Action = History.Action

type txn = Action.txn
type key = Action.key
type value = Action.value

type mv_level =
  | Snapshot_isolation
  | Read_consistency
  | Serializable_snapshot
      (** SI plus commit-time read validation (conservative SSI) *)

type abort_reason =
  | User_abort
  | Deadlock_victim
  | First_committer_wins
  | First_updater_wins
  | Serialization_failure
      (** commit-time read validation failed (Serializable SI) *)
  | Fault_injected  (** injected by a fault plan *)
  | Deadline_exceeded  (** the transaction ran past its deadline *)
  | Certifier_abort
      (** the online certifier doomed it: one of its actions closed a
          dependency cycle *)

type status = Active | Committed | Aborted of abort_reason
type step_outcome = Progress | Blocked of txn list | Finished

type t

val create :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  ?first_updater_wins:bool ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?retain_trace:bool ->
  unit ->
  t
(** Out-of-core options, mirroring {!Lock_engine.create}: [wal_dir] puts
    the versioned WAL on disk (segmented; [wal_segment_bytes],
    [wal_group_commit] pass through to {!Storage.Wal.create});
    [checkpoint_every] > 0 writes a {!Storage.Wal.record.Vcheckpoint} —
    vacuuming first, then truncating the log behind the image — every
    that many commits; [retain_trace] = false drops the in-memory action
    list (the trace hook and {!trace_len} still run). *)

val begin_txn : ?read_only:bool -> t -> txn -> level:mv_level -> unit
(** Takes the snapshot (Start-Timestamp) now. [read_only] transactions'
    writes raise. *)

val begin_txn_at : t -> txn -> level:mv_level -> start_ts:Storage.Version_store.ts -> unit
(** Time travel (§4.2): begin with an explicit old Start-Timestamp. *)

val is_read_only : t -> txn -> bool

val status : t -> txn -> status
val env : t -> txn -> Program.env
val step : t -> txn -> Program.op -> step_outcome
val abort_txn : t -> txn -> reason:abort_reason -> unit
val trace : t -> History.t

val trace_len : t -> int
(** Number of actions emitted so far (O(1)); see {!Lock_engine.trace_len}. *)

val set_lock_hook : t -> (Locking.Lock_table.hook -> unit) -> unit
(** Observation hook on the engine's write-lock table (used only by the
    Read Consistency protocol's updatable cursors). *)

val set_trace_hook : t -> (int -> Action.t -> unit) -> unit
(** Trace observation hook, called with [(position, action)] on each
    append; see {!Lock_engine.set_trace_hook}. *)

val set_tear_hook : t -> (txn -> bool) -> unit
(** Install the torn-commit fault hook, consulted as the
    {!Storage.Wal.record.Vcommit} stamp would be logged. Returning
    [true] simulates a crash tearing the stamp off the WAL tail after
    the Vinstalls made it: the versions never became visible and the
    transaction never committed — it rolls back (status
    [Aborted Fault_injected]) and the runtime retries the attempt.
    Install before workers spawn. *)

val set_prune_hook : t -> ((key * txn) list -> unit) -> unit
(** Install the vacuum observation hook, called with the (key, writer)
    pairs of the versions each vacuum buried — under the same
    all-stripes exclusion the commit step runs in. The certifier retires
    its version-order entries on exactly these. *)

val wal : t -> Storage.Wal.t
(** The versioned write-ahead log. *)

val wal_sync : t -> unit
(** Group-commit durability point ({!Storage.Wal.sync}); the runtime
    calls it after a commit step returns and its stripes are released. *)

val forget : t -> txn -> unit
(** Drop a finished transaction's state (no-op while active or for an
    unknown tid). Must run under the same all-stripes exclusion as the
    engine's steps — the runtime routes it through its aux-exclusion
    path. *)

val final_state : t -> (key * value) list
val version_store : t -> Storage.Version_store.t
val now : t -> Storage.Version_store.ts
(** The last commit timestamp issued. *)

val oldest_active_snapshot : t -> Storage.Version_store.ts
(** The oldest Start-Timestamp among active transactions (or the current
    timestamp when none are active). *)

val vacuum : t -> int
(** Version garbage collection: discard versions no active or future
    snapshot can observe; returns how many versions were dropped. Logs a
    {!Storage.Wal.record.Watermark} so recovery replays the prune, and
    feeds the buried versions to the prune hook. Explicit time-travel
    reads older than the oldest active snapshot are no longer served
    correctly after a vacuum. *)
