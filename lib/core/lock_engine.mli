(** The locking scheduler: transaction programs over a single-version
    store under the lock protocols of Table 2, with per-transaction
    isolation levels, WAL logging and before-image rollback.

    Prefer the level-agnostic {!Engine} front end; this module is exposed
    for tests and for direct access to the WAL and store. *)

module Action = History.Action

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | Fault_injected
      (** injected by a fault plan: spurious step failure or torn commit *)
  | Deadline_exceeded  (** the transaction ran past its deadline *)
  | Certifier_abort
      (** the online certifier doomed it: one of its actions closed a
          dependency cycle *)

type status = Active | Committed | Aborted of abort_reason
type step_outcome = Progress | Blocked of txn list | Finished

type t

val create :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  ?stripes:int ->
  ?audit:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?retain_trace:bool ->
  unit ->
  t
(** [stripes] (default 1) shards the store and the lock table by key hash
    for the runtime's striped execution; the engine itself stays
    lock-free on the striped paths and relies on the caller holding the
    stripes named by {!footprint}. [audit] (default true) keeps the lock
    table's audit log; striped callers turn it off so the hot path shares
    no list. [next_key_locking] swaps the predicate-lock phantom guard
    for ARIES/KVL-style next-key locking on range predicates.
    [update_locks] makes for-update fetches take long U locks, trading
    upgrade deadlocks for blocking.

    Out-of-core options: [wal_dir] puts the WAL on disk (segmented, see
    {!Storage.Wal.create}; [wal_segment_bytes], [wal_group_commit] pass
    through); [checkpoint_every] > 0 writes a WAL checkpoint — and
    truncates the log behind it — every that many commits (both
    backends); [retain_trace] = false drops the in-memory action list
    (the trace hook and {!trace_len} still run) for runs too large to
    materialize a history. *)

(** The shards a step touches: [All] — hold every stripe (scans, cursor
    opens, commits, aborts, read-only snapshot reads, and everything
    under next-key locking) — or the named data [keys] plus, for writers,
    the predicate bucket. *)
type footprint = All | Keys of { keys : key list; pred : bool }

val footprint : t -> txn -> Program.op -> footprint
(** Computed on the owning worker before the step, from owner-local state
    only. Conservative: whenever in doubt the answer is [All]. *)

val begin_txn : ?read_only:bool -> t -> txn -> level:Isolation.Level.t -> unit
(** [read_only] runs the transaction by the Multiversion Mixed Method
    ([BHG]): lock-free reads of the committed snapshot as of begin; its
    writes raise. @raise Invalid_argument for multiversion levels. *)

val status : t -> txn -> status
val env : t -> txn -> Program.env
val step : t -> txn -> Program.op -> step_outcome
val abort_txn : t -> txn -> reason:abort_reason -> unit

val forget : t -> txn -> unit
(** Drop a finished transaction's slot (no-op while it is still active,
    or for a tid never begun). Serialised against {!begin_txn}'s slot
    array growth by the registration mutex. *)

val trace : t -> History.t

val trace_len : t -> int
(** Number of actions emitted so far (O(1)) — the instrumentation point
    the runtime's tracer uses to tag each step with the history
    positions it produced. *)

val stripes : t -> int
(** The shard count this engine was created with. *)

val final_state : t -> (key * value) list
val wal : t -> Storage.Wal.t

val wal_sync : t -> unit
(** Make every WAL record appended so far durable ({!Storage.Wal.sync} —
    group commit). The runtime calls it after a commit step returns and
    its stripes are released, so concurrent committers share one fsync. *)

val store : t -> Storage.Store.t

val lock_events : t -> Locking.Lock_table.event list
(** The lock table's audit log, for discipline analysis. *)

val lock_stats : t -> Locking.Lock_table.stats
(** Cumulative grant/conflict/release/upgrade counters. *)

val set_lock_hook : t -> (Locking.Lock_table.hook -> unit) -> unit
(** Install the lock table's observation hook (see
    {!Locking.Lock_table.set_hook}); the runtime's tracer uses it to put
    lock grants/conflicts/releases on per-transaction timelines. *)

val set_tear_hook : t -> (txn -> bool) -> unit
(** Install the torn-commit fault hook, consulted as the Commit record
    would be logged. Returning [true] simulates a crash tearing the
    record off the WAL tail: the transaction never committed — it rolls
    back with compensation (status [Aborted Fault_injected]) and the
    runtime retries the attempt. Install before workers spawn. *)

val set_trace_hook : t -> (int -> Action.t -> unit) -> unit
(** Install a trace observation hook, called with [(position, action)]
    under the trace mutex as each action is appended — a serialised,
    history-ordered feed for the online certifier. Install before
    workers spawn; the hook must only take leaf locks of its own. *)
