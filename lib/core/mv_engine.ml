(* The multiversion engine: Snapshot Isolation (§4.2) and Oracle Read
   Consistency (§4.3) over a version store.

   Snapshot Isolation: a transaction reads from the snapshot of committed
   data as of its Start-Timestamp (plus its own writes), never blocks on
   reads, buffers its writes privately, and commits only if no concurrent
   transaction committed a write of an item it also wrote —
   First-Committer-Wins. The First-Updater-Wins ablation (how PostgreSQL
   implements SI) detects the same conflicts at write time: a write aborts
   immediately if a conflicting write committed since the snapshot, and
   blocks behind a concurrent uncommitted writer.

   Oracle Read Consistency: every statement reads the committed state as
   of its own start (the start timestamp advances per statement); writes
   take long Write locks on rows — first-writer-wins — and cursors are
   updatable (fetch locks the row), which is what makes P4C impossible
   while plain lost updates (P4) remain possible. *)

module Action = History.Action
module Version_store = Storage.Version_store
module Predicate = Storage.Predicate
module Wal = Storage.Wal
module Lock_table = Locking.Lock_table

type txn = Action.txn
type key = Action.key
type value = Action.value

type mv_level = Snapshot_isolation | Read_consistency | Serializable_snapshot

type abort_reason =
  | User_abort
  | Deadlock_victim
  | First_committer_wins
  | First_updater_wins
  | Serialization_failure (* SSI commit-time read validation *)
  | Fault_injected        (* injected by a fault plan *)
  | Deadline_exceeded     (* transaction ran past its deadline *)
  | Certifier_abort       (* the online certifier doomed it: it closed a cycle *)

type status = Active | Committed | Aborted of abort_reason

type cursor = {
  mutable remaining : (key * value) list;
  mutable current : (key * value) option;
}

type cursor_state = {
  c : cursor;
  for_update : bool;
}

type txn_state = {
  tid : txn;
  level : mv_level;
  read_only : bool;
  mutable start_ts : Version_store.ts;
  mutable status : status;
  mutable env : Program.env;
  mutable writes : (key * value option) list; (* newest first; None deletes *)
  mutable read_keys : key list;               (* items read, for validation *)
  mutable read_preds : Predicate.t list;      (* predicates read, for validation *)
  cursors : (string, cursor_state) Hashtbl.t;
}

type t = {
  vstore : Version_store.t;
  mutable now : Version_store.ts; (* last commit timestamp issued *)
  locks : Lock_table.t;           (* write locks, Read Consistency only *)
  wal : Wal.t;                    (* versioned records: the MV crash model *)
  checkpoint_every : int;         (* commits between Vcheckpoints; 0 = never *)
  mutable commits_since_ckpt : int;
  retain_trace : bool;   (* keep the action list (out-of-core runs drop it) *)
  mutable trace : Action.t list;  (* newest first *)
  mutable trace_len : int;        (* = List.length trace, O(1) for tracing *)
  txns : (txn, txn_state) Hashtbl.t;
  predicates : Predicate.t list;
  first_updater_wins : bool;      (* SI write-conflict timing ablation *)
  (* Trace observation hook, called with (position, action) on each
     append. Steps of this engine run single-threaded under every stripe
     of the pool, so the plain emit is already serialised. *)
  mutable trace_hook : (int -> Action.t -> unit) option;
  (* Torn-commit fault hook, consulted as the Vcommit stamp would be
     logged: the Vinstalls made it to the log, the stamp did not. *)
  mutable tear_commit : (txn -> bool) option;
  (* Prune observation hook, called with the (key, writer) pairs each
     vacuum buried — the certifier retires its version-order entries on
     exactly these. *)
  mutable prune_hook : ((key * txn) list -> unit) option;
}

type step_outcome = Progress | Blocked of txn list | Finished

let create ~initial ~predicates ?(first_updater_wins = false) ?wal_dir
    ?wal_segment_bytes ?wal_group_commit ?(checkpoint_every = 0)
    ?(retain_trace = true) () =
  {
    vstore = Version_store.of_list initial;
    now = 0;
    locks = Lock_table.create ();
    wal =
      Wal.create ?dir:wal_dir ?segment_bytes:wal_segment_bytes
        ?group_commit:wal_group_commit ();
    checkpoint_every;
    commits_since_ckpt = 0;
    retain_trace;
    trace = [];
    trace_len = 0;
    txns = Hashtbl.create 8;
    predicates;
    first_updater_wins;
    trace_hook = None;
    tear_commit = None;
    prune_hook = None;
  }

let emit t action =
  if t.retain_trace then t.trace <- action :: t.trace;
  t.trace_len <- t.trace_len + 1;
  match t.trace_hook with
  | Some f -> f (t.trace_len - 1) action
  | None -> ()

let trace t = List.rev t.trace
let trace_len t = t.trace_len
let set_lock_hook t f = Lock_table.set_hook t.locks f
let set_trace_hook t f = t.trace_hook <- Some f
let set_tear_hook t f = t.tear_commit <- Some f
let set_prune_hook t f = t.prune_hook <- Some f
let wal t = t.wal
let wal_sync t = Wal.sync t.wal

let state t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some st -> st
  | None -> invalid_arg (Fmt.str "Mv_engine: unknown transaction %d" tid)

let begin_txn ?(read_only = false) t tid ~level =
  Wal.append t.wal (Wal.Begin tid);
  Hashtbl.replace t.txns tid
    { tid; level; read_only; start_ts = t.now; status = Active;
      env = Program.empty_env; writes = []; read_keys = []; read_preds = [];
      cursors = Hashtbl.create 2 }

(* Time travel (§4.2): start a transaction with an old Start-Timestamp. *)
let begin_txn_at t tid ~level ~start_ts =
  begin_txn t tid ~level;
  (state t tid).start_ts <- start_ts

let is_read_only t tid = (state t tid).read_only

let status t tid = (state t tid).status
let env t tid = (state t tid).env

(* The timestamp a read by [st] uses: SI reads at the transaction's
   snapshot; Read Consistency advances the read timestamp each statement. *)
let read_ts t st =
  match st.level with
  | Snapshot_isolation | Serializable_snapshot -> st.start_ts
  | Read_consistency -> t.now

let own_write st k = List.assoc_opt k st.writes

(* Read through the transaction's own writes, then the snapshot. Returns
   the value and the version's writer (for the MV trace annotation). *)
let read_visible t st k =
  match own_write st k with
  | Some v -> (v, st.tid)
  | None ->
    let ts = read_ts t st in
    (match Version_store.version_at t.vstore ~ts k with
    | Some ver -> (ver.Version_store.value, ver.Version_store.writer)
    | None -> (None, 0))

(* The visible snapshot with the transaction's own writes applied — what
   its predicate scans see. *)
let visible_rows t st =
  let base = Version_store.snapshot_at t.vstore ~ts:(read_ts t st) in
  let without_overwritten =
    List.filter (fun (k, _) -> own_write st k = None) base
  in
  let own =
    List.filter_map
      (fun (k, v) -> match v with Some v -> Some (k, v) | None -> None)
      (List.rev st.writes)
  in
  (* Deduplicate own writes, keeping the newest per key. *)
  let own_latest =
    List.fold_left
      (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
      [] own
  in
  List.sort compare (without_overwritten @ own_latest)

let affected_predicates t k ~before ~after =
  List.filter_map
    (fun p ->
      if Predicate.affected_by_write p k ~before ~after then
        Some (Predicate.name p)
      else None)
    t.predicates

let record_read st k =
  if not (List.mem k st.read_keys) then st.read_keys <- k :: st.read_keys

let record_pred st p =
  if
    not
      (List.exists
         (fun q -> Predicate.name q = Predicate.name p)
         st.read_preds)
  then st.read_preds <- p :: st.read_preds

let do_read t st k =
  let v, writer = read_visible t st k in
  record_read st k;
  st.env <- Program.observe_read st.env k v;
  emit t (Action.read ~ver:writer ?value:v st.tid k);
  Progress

let drop_buffer st = st.writes <- []

let finish t st =
  Lock_table.release_all t.locks ~owner:st.tid;
  Hashtbl.reset st.cursors

let rollback t st reason =
  (* Nothing to compensate: the store never saw this transaction's writes
     (they were privately buffered) and any Vinstalls it logged carry no
     stamp — recovery discards them. The Abort record just closes the
     Begin so the transaction stops counting as a loser. *)
  drop_buffer st;
  Wal.append t.wal (Wal.Abort st.tid);
  st.status <- Aborted reason;
  finish t st;
  emit t (Action.abort st.tid)

(* Another active transaction holding an uncommitted write of [k]. *)
let concurrent_writer t st k =
  Hashtbl.fold
    (fun tid other acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if tid <> st.tid && other.status = Active && own_write other k <> None
        then Some tid
        else None)
    t.txns None

let do_write t st k ~after ~kind ~cursor_write =
  if st.read_only then
    invalid_arg "Mv_engine: read-only transactions cannot write";
  let before = fst (read_visible t st k) in
  let record () =
    st.writes <- (k, after) :: st.writes;
    let preds = affected_predicates t k ~before ~after in
    emit t
      (Action.write ~ver:st.tid ?value:after ~kind ~preds ~cursor:cursor_write
         st.tid k);
    Progress
  in
  match st.level with
  | Serializable_snapshot -> record ()
  | Snapshot_isolation ->
    if t.first_updater_wins then
      if Version_store.committed_after t.vstore ~ts:st.start_ts k then begin
        (* A conflicting write committed since our snapshot: abort now. *)
        rollback t st First_updater_wins;
        Progress
      end
      else begin
        match concurrent_writer t st k with
        | Some other -> Blocked [ other ]
        | None -> record ()
      end
    else record ()
  | Read_consistency -> (
    (* First-writer-wins: take a long Write lock on the row. *)
    let committed_before = Version_store.read_latest t.vstore k in
    match
      Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Long
        (Lock_table.Write_item { k; before = committed_before; after })
    with
    | Lock_table.Conflict holders -> Blocked holders
    | Lock_table.Granted -> record ())

let do_scan t st p =
  let rows = List.filter (fun (k, v) -> p.Predicate.satisfies k v) (visible_rows t st) in
  record_pred st p;
  st.env <- Program.observe_scan st.env (Predicate.name p) rows;
  if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
  then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
  Progress

let do_open_cursor t st name ~for_update p =
  let rows = List.filter (fun (k, v) -> p.Predicate.satisfies k v) (visible_rows t st) in
  record_pred st p;
  Hashtbl.replace st.cursors name
    { c = { remaining = rows; current = None }; for_update };
  st.env <- Program.observe_scan st.env (Predicate.name p) rows;
  if List.exists (fun q -> Predicate.name q = Predicate.name p) t.predicates
  then emit t (Action.pred_read ~keys:(List.map fst rows) st.tid (Predicate.name p));
  Progress

let do_fetch t st name =
  match Hashtbl.find_opt st.cursors name with
  | None -> invalid_arg "Mv_engine: fetch without an open cursor"
  | Some { c; for_update } -> (
    match c.remaining with
    | [] ->
      c.current <- None;
      Progress
    | (k, v) :: rest -> (
      let fetched () =
        c.remaining <- rest;
        c.current <- Some (k, v);
        record_read st k;
        st.env <- Program.observe_read st.env k (Some v);
        emit t (Action.read ~ver:st.tid ~value:v ~cursor:true st.tid k);
        Progress
      in
      match st.level with
      | Snapshot_isolation | Serializable_snapshot -> fetched ()
      | Read_consistency when not for_update -> fetched ()
      | Read_consistency -> (
        (* Updatable cursor: the fetch takes the row's Write lock, which is
           what makes P4C impossible under Read Consistency (§4.3). *)
        let committed_before = Version_store.read_latest t.vstore k in
        match
          Lock_table.acquire t.locks ~owner:st.tid ~tag:Lock_table.Long
            (Lock_table.Write_item
               { k; before = committed_before; after = Some v })
        with
        | Lock_table.Conflict holders -> Blocked holders
        | Lock_table.Granted -> fetched ())))

let do_cursor_write t st name expr =
  match Hashtbl.find_opt st.cursors name with
  | None | Some { c = { current = None; _ }; _ } ->
    invalid_arg "Mv_engine: cursor write without a current row"
  | Some { c = { current = Some (k, _); _ }; _ } ->
    let after = Some (expr st.env) in
    do_write t st k ~after ~kind:Action.Update ~cursor_write:true

(* First-Committer-Wins: commit fails if any item in the write set has a
   version committed after our Start-Timestamp (§4.2). *)
let fcw_conflict t st =
  List.exists
    (fun (k, _) -> Version_store.committed_after t.vstore ~ts:st.start_ts k)
    st.writes

(* Serializable SI read validation: the commit fails if any concurrent
   transaction committed a write of an item this transaction read, or a
   write affecting a predicate it evaluated. Together with
   First-Committer-Wins this serializes committed transactions in commit
   order (the conservative form of SSI: abort on any rw-antidependency to
   a committed concurrent transaction). *)
let read_validation_conflict t st =
  List.exists
    (fun k -> Version_store.committed_after t.vstore ~ts:st.start_ts k)
    st.read_keys
  || List.exists
       (fun p ->
         List.exists
           (fun (k, v) ->
             Predicate.affected_by_write p k
               ~before:(Version_store.read_at t.vstore ~ts:st.start_ts k)
               ~after:v.Version_store.value)
           (Version_store.versions_committed_after t.vstore ~ts:st.start_ts))
       st.read_preds

(* The oldest snapshot any active transaction can still read. *)
let oldest_active_snapshot t =
  Hashtbl.fold
    (fun _ st acc ->
      if st.status = Active then min acc st.start_ts else acc)
    t.txns t.now

(* Version garbage collection: discard versions no active or future
   snapshot can observe. The Watermark record makes the prune durable —
   recovery replays it, so the recovered store has buried exactly what
   the live store buried and no post-crash snapshot starts below the
   horizon — and the buried (key, writer) pairs feed the prune hook (the
   certifier retires its version-order entries on exactly these). *)
let vacuum_collect t =
  let horizon = oldest_active_snapshot t in
  let buried = Version_store.prune_collect t.vstore ~horizon in
  Wal.append t.wal (Wal.Watermark horizon);
  (match t.prune_hook with
  | Some f when buried <> [] -> f buried
  | _ -> ());
  (horizon, buried)

let vacuum t = List.length (snd (vacuum_collect t))

(* Periodic Vcheckpoint. A commit step runs under every stripe, so the
   transaction table and the version store are consistent here.
   Checkpoint cadence is also the GC cadence (cf. the lock engine):
   vacuum first so the image carries only reachable versions, then write
   the chains at the head of a fresh segment and truncate the log behind
   them. Active transactions are carried by tid alone — their writes are
   privately buffered, never in the store, so there is no journal to
   carry. *)
let maybe_checkpoint t =
  if t.checkpoint_every > 0 then begin
    t.commits_since_ckpt <- t.commits_since_ckpt + 1;
    if t.commits_since_ckpt >= t.checkpoint_every then begin
      t.commits_since_ckpt <- 0;
      let watermark, _ = vacuum_collect t in
      let active =
        Hashtbl.fold
          (fun tid st acc -> if st.status = Active then tid :: acc else acc)
          t.txns []
      in
      Wal.checkpoint_record t.wal
        (Wal.Vcheckpoint
           {
             chains = Version_store.chains t.vstore;
             next_ts = t.now;
             watermark;
             active;
           })
    end
  end

let do_commit t st =
  match st.level with
  | Snapshot_isolation when (not t.first_updater_wins) && fcw_conflict t st ->
    rollback t st First_committer_wins;
    Progress
  | Serializable_snapshot when fcw_conflict t st ->
    rollback t st First_committer_wins;
    Progress
  | Serializable_snapshot when read_validation_conflict t st ->
    rollback t st Serialization_failure;
    Progress
  | Snapshot_isolation | Read_consistency | Serializable_snapshot -> (
    let latest_per_key =
      List.fold_left
        (fun acc (k, v) ->
          if List.mem_assoc k acc then acc else (k, v) :: acc)
        [] st.writes
    in
    (* WAL discipline for versions: the Vinstalls go to the log first,
       then the Vcommit stamp, and only then does the store install —
       so every crash image either has the stamp (redo installs the
       versions) or lacks it (the versions never became visible). *)
    List.iter
      (fun (k, value) ->
        Wal.append t.wal (Wal.Vinstall { t = st.tid; k; value }))
      latest_per_key;
    match t.tear_commit with
    | Some tear when tear st.tid ->
      (* The injected crash strikes as the Vcommit stamp is logged: the
         Vinstalls are on the log, the stamp is not — the versions never
         became visible and the transaction never committed. Roll back
         (the Abort record closes the Begin; a real crash here is
         exactly the torn-version-write recovery case) and let the
         runtime retry the attempt under a fresh tid. *)
      rollback t st Fault_injected;
      Progress
    | _ ->
      if latest_per_key <> [] then begin
        t.now <- t.now + 1;
        Wal.append t.wal (Wal.Vcommit { t = st.tid; ts = t.now });
        Version_store.install t.vstore ~writer:st.tid ~commit_ts:t.now
          latest_per_key
      end
      else
        (* Read-only commit: the stamp still closes the Begin, at the
           unadvanced clock. *)
        Wal.append t.wal (Wal.Vcommit { t = st.tid; ts = t.now });
      st.status <- Committed;
      finish t st;
      emit t (Action.commit st.tid);
      maybe_checkpoint t;
      Progress)

(* A tid the engine no longer knows (finished and forgotten) already
   reached a terminal status, so the abort is a no-op. *)
let abort_txn t tid ~reason =
  match Hashtbl.find_opt t.txns tid with
  | Some st when st.status = Active -> rollback t st reason
  | Some _ | None -> ()

let step t tid (op : Program.op) =
  let st = state t tid in
  match st.status with
  | Committed | Aborted _ -> Finished
  | Active -> (
    match op with
    | Program.Read k -> do_read t st k
    | Program.Write (k, expr) ->
      do_write t st k ~after:(Some (expr st.env)) ~kind:Action.Update
        ~cursor_write:false
    | Program.Insert (k, expr) ->
      do_write t st k ~after:(Some (expr st.env)) ~kind:Action.Insert
        ~cursor_write:false
    | Program.Delete k ->
      do_write t st k ~after:None ~kind:Action.Delete ~cursor_write:false
    | Program.Scan p -> do_scan t st p
    | Program.Open_cursor { cursor; pred; for_update } ->
      do_open_cursor t st cursor ~for_update pred
    | Program.Fetch c -> do_fetch t st c
    | Program.Cursor_write (c, expr) -> do_cursor_write t st c expr
    | Program.Close_cursor c ->
      Hashtbl.remove st.cursors c;
      Progress
    | Program.Commit -> do_commit t st
    | Program.Abort ->
      rollback t st User_abort;
      Progress)

let final_state t = Version_store.to_latest_list t.vstore
let version_store t = t.vstore
let now t = t.now

(* Drop a finished transaction's state. Tids are dense and never reused,
   so without this every txn_state stays resident for the whole run. The
   table is mutated by steps running under every stripe, so the pool
   routes this call through the same all-stripes exclusion. *)
let forget t tid =
  match Hashtbl.find_opt t.txns tid with
  | Some st when st.status <> Active -> Hashtbl.remove t.txns tid
  | _ -> ()
