(** The unified engine: locking scheduler (Table 2 protocols) or
    multiversion engine (Snapshot Isolation, Oracle Read Consistency)
    behind one stepping interface. Levels mix freely within a family; an
    execution cannot mix locking and multiversion levels, because the two
    families do not share a store. *)

module Action = History.Action
module Level = Isolation.Level

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | First_committer_wins
  | First_updater_wins
  | Serialization_failure
      (** commit-time read validation failed (Serializable SI) *)
  | Too_late
      (** a timestamp-ordering operation arrived against a younger
          transaction's access *)
  | Fault_injected
      (** injected by a fault plan: spurious step failure or torn
          commit *)
  | Deadline_exceeded  (** the transaction ran past its deadline *)
  | Certifier_abort
      (** the online certifier doomed it: one of its actions closed a
          dependency cycle *)

val pp_abort_reason : abort_reason Fmt.t

type status = Active | Committed | Aborted of abort_reason

type step_outcome =
  | Progress          (** the operation executed (possibly terminating the txn) *)
  | Blocked of txn list  (** blocked on these holders; retry the operation *)
  | Finished          (** the transaction had already terminated *)

type t

val family_of_levels : Level.t list -> [ `Locking | `Mv | `Timestamp ]
(** @raise Invalid_argument if the levels mix families. *)

val create :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  ?stripes:int ->
  ?audit:bool ->
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?retain_trace:bool ->
  family:[ `Locking | `Mv | `Timestamp ] ->
  unit ->
  t
(** [predicates] are annotated onto matching writes in the trace (for the
    phantom detectors) — they do not affect locking, which uses the actual
    predicates of scans. [stripes] (default 1) shards the locking engine's
    store and lock table by key hash for the runtime's striped execution;
    [audit] (default true) keeps the lock table's audit log (striped
    callers turn it off). Both are ignored by the multiversion and
    timestamp engines, which always report an {!All} footprint.
    [first_updater_wins] switches Snapshot Isolation from
    First-Committer-Wins to the PostgreSQL-style write-time check.
    [next_key_locking] swaps the locking engine's predicate-lock phantom
    guard for next-key locking. The out-of-core options ([wal_dir],
    [wal_segment_bytes], [wal_group_commit], [checkpoint_every],
    [retain_trace]) pass through to every family's create — the locking
    and timestamp engines log the single-version record set, the
    multiversion engine logs versioned records
    (Vinstall/Vcommit/Watermark/Vcheckpoint). *)

val create_for_levels :
  initial:(key * value) list ->
  predicates:Storage.Predicate.t list ->
  ?stripes:int ->
  ?audit:bool ->
  ?first_updater_wins:bool ->
  ?next_key_locking:bool ->
  ?update_locks:bool ->
  ?wal_dir:string ->
  ?wal_segment_bytes:int ->
  ?wal_group_commit:bool ->
  ?checkpoint_every:int ->
  ?retain_trace:bool ->
  levels:Level.t list ->
  unit ->
  t
(** Like {!create}, inferring the family from the levels.
    @raise Invalid_argument if [levels] mixes the two families. *)

(** The shards a step of an operation touches — the runtime's stripe
    planner acquires exactly these stripes before stepping. [All] is the
    conservative answer (and the only one non-locking engines and
    next-key locking give): hold every stripe, i.e. the coarse latch. *)
type footprint = Lock_engine.footprint = All | Keys of { keys : key list; pred : bool }

val footprint : t -> txn -> Program.op -> footprint
(** Computed on the owning worker from owner-local state; see
    {!Lock_engine.footprint}. *)

val stripes : t -> int
(** The locking engine's shard count; [1] for other families. *)

val begin_txn : ?read_only:bool -> t -> txn -> level:Level.t -> unit
(** [read_only] transactions read the committed snapshot as of begin
    (lock-free under the locking engine — the Multiversion Mixed Method)
    and may not write. *)

val begin_txn_at : t -> txn -> level:Level.t -> start_ts:int -> unit
(** Time travel (§4.2): begin a multiversion transaction with an old
    Start-Timestamp. @raise Invalid_argument on locking engines. *)

val status : t -> txn -> status
val env : t -> txn -> Program.env
val step : t -> txn -> Program.op -> step_outcome

val abort_txn : ?reason:abort_reason -> t -> txn -> unit
(** Abort an active transaction from outside its program; no-op if
    already terminated. [reason] defaults to [Deadlock_victim]; the
    runtime also passes [Fault_injected], [Deadline_exceeded],
    [Certifier_abort] or [User_abort]. @raise Invalid_argument for
    engine-internal reasons (first-committer-wins, ...). *)

val forget : t -> txn -> unit
(** Release the engine's per-transaction state for a {e finished}
    transaction. Tids are dense and never reused, so without this every
    txn state stays resident for the whole run — the call is what keeps
    10^6-txn out-of-core runs flat. Terminal-status-guarded and
    idempotent; after it, [status]/[env] on the tid raise and
    [abort_txn] is a no-op. The locking engine serialises the call
    internally; the MV/timestamp tables are only safe to mutate under
    every stripe, so the runtime routes their forgets through its
    all-stripes exclusion. *)

val trace : t -> History.t

val trace_len : t -> int
(** Number of actions the engine has emitted so far, in O(1). The
    runtime's tracer reads it around each step to tag the step's trace
    event with the half-open range of history positions it produced —
    the bridge from oracle witnesses back to wall-clock moments. *)

val set_lock_hook : t -> (Locking.Lock_table.hook -> unit) -> unit
(** Install the lock-table observation hook (grants, conflicts with
    holders, releases, upgrade flags). Locking engines hook their one
    table; multiversion engines hook the Read Consistency write-lock
    table; timestamp ordering has no locks and ignores the hook. *)

val set_tear_hook : t -> (txn -> bool) -> unit
(** Install the torn-commit fault hook, consulted as the transaction's
    terminal record would be logged: the Commit record on the locking
    and timestamp engines ({!Lock_engine.set_tear_hook}), the Vcommit
    stamp on the multiversion engine ({!Mv_engine.set_tear_hook} — the
    Vinstalls made the log, the stamp did not). *)

val set_prune_hook : t -> ((key * txn) list -> unit) -> unit
(** Install the vacuum observation hook (multiversion engines only;
    no-op elsewhere): called with the (key, writer) pairs each vacuum
    buried, under the engine's all-stripes exclusion. The certifier
    retires its version-order entries on exactly these. *)

val set_trace_hook : t -> (int -> History.Action.t -> unit) -> unit
(** Install a trace observation hook, called with [(position, action)]
    as each action is appended to the history — serialised and in
    history order on every family. The online certifier's feed. Install
    before workers spawn; the hook must only take leaf locks. *)

val final_state : t -> (key * value) list
val wal : t -> Storage.Wal.t option
(** The write-ahead log. Every family logs: single-version records from
    the locking and timestamp engines, versioned records from the
    multiversion engine. *)

val wal_sync : t -> unit
(** Group-commit durability point ({!Storage.Wal.sync}), called by the
    runtime after a commit step returns and its stripes are released. *)

val family : t -> [ `Locking | `Mv | `Timestamp ]
(** The engine family this instance was created with. *)

val lock_events : t -> Locking.Lock_table.event list option
(** The lock table's audit log (locking engines only). *)

val lock_stats : t -> Locking.Lock_table.stats option
(** Cumulative lock-table grant/conflict/release counters (locking engines
    only). *)

val version_store : t -> Storage.Version_store.t option
(** The version store (multiversion engines only). *)
