(* The unified engine: dispatches transaction programs either to the
   locking scheduler (Table 2 protocols, possibly at mixed levels) or to
   the multiversion engine (Snapshot Isolation / Oracle Read Consistency).
   Lock-based and multiversion levels cannot share one store — the former
   updates in place, the latter reads committed snapshots — so an engine
   instance is one family or the other; within a family, levels mix
   freely (the paper's introduction scenario). *)

module Action = History.Action
module Level = Isolation.Level
module Predicate = Storage.Predicate

type txn = Action.txn
type key = Action.key
type value = Action.value

type abort_reason =
  | User_abort
  | Deadlock_victim
  | First_committer_wins
  | First_updater_wins
  | Serialization_failure
  | Too_late
  | Fault_injected
  | Deadline_exceeded
  | Certifier_abort

let pp_abort_reason ppf = function
  | User_abort -> Fmt.string ppf "user abort"
  | Deadlock_victim -> Fmt.string ppf "deadlock victim"
  | First_committer_wins -> Fmt.string ppf "first-committer-wins"
  | First_updater_wins -> Fmt.string ppf "first-updater-wins"
  | Serialization_failure -> Fmt.string ppf "serialization failure"
  | Too_late -> Fmt.string ppf "timestamp too late"
  | Fault_injected -> Fmt.string ppf "fault injected"
  | Deadline_exceeded -> Fmt.string ppf "deadline exceeded"
  | Certifier_abort -> Fmt.string ppf "certifier abort"

type status = Active | Committed | Aborted of abort_reason

type step_outcome = Progress | Blocked of txn list | Finished

type t =
  | Locking of Lock_engine.t
  | Mv of Mv_engine.t
  | Timestamp of To_engine.t

let family_of_levels levels =
  match List.sort_uniq compare (List.map Level.family levels) with
  | [] | [ `Locking ] -> `Locking
  | [ `Mv ] -> `Mv
  | [ `Timestamp ] -> `Timestamp
  | _ ->
    let fam l =
      match Level.family l with
      | `Locking -> "locking"
      | `Mv -> "multiversion"
      | `Timestamp -> "timestamp"
    in
    invalid_arg
      (Fmt.str
         "Engine.create: cannot mix engine families in one execution (they do \
          not share a store): %s. Declare one family's levels, or map the mix \
          onto a single family with Isolation.Lattice.strengthen."
         (String.concat ", "
            (List.map
               (fun l -> Fmt.str "%s (%s)" (Level.slug l) (fam l))
               (List.sort_uniq compare levels))))

let create ~initial ~predicates ?(stripes = 1) ?(audit = true)
    ?(first_updater_wins = false) ?(next_key_locking = false)
    ?(update_locks = false) ?wal_dir ?wal_segment_bytes ?wal_group_commit
    ?checkpoint_every ?retain_trace ~family () =
  match family with
  | `Locking ->
    Locking
      (Lock_engine.create ~initial ~predicates ~stripes ~audit ~next_key_locking
         ~update_locks ?wal_dir ?wal_segment_bytes ?wal_group_commit
         ?checkpoint_every ?retain_trace ())
  | `Mv ->
    Mv
      (Mv_engine.create ~initial ~predicates ~first_updater_wins ?wal_dir
         ?wal_segment_bytes ?wal_group_commit ?checkpoint_every ?retain_trace
         ())
  | `Timestamp ->
    Timestamp
      (To_engine.create ~initial ~predicates ?wal_dir ?wal_segment_bytes
         ?wal_group_commit ?checkpoint_every ?retain_trace ())

let create_for_levels ~initial ~predicates ?stripes ?audit ?first_updater_wins
    ?next_key_locking ?update_locks ?wal_dir ?wal_segment_bytes
    ?wal_group_commit ?checkpoint_every ?retain_trace ~levels () =
  create ~initial ~predicates ?stripes ?audit ?first_updater_wins
    ?next_key_locking ?update_locks ?wal_dir ?wal_segment_bytes
    ?wal_group_commit ?checkpoint_every ?retain_trace
    ~family:(family_of_levels levels) ()

let mv_level = function
  | Level.Snapshot -> Mv_engine.Snapshot_isolation
  | Level.Oracle_read_consistency -> Mv_engine.Read_consistency
  | Level.Serializable_snapshot -> Mv_engine.Serializable_snapshot
  | l -> invalid_arg (Fmt.str "Engine: %s is not a multiversion level" (Level.name l))

let begin_txn ?read_only t tid ~level =
  match t with
  | Locking e -> Lock_engine.begin_txn ?read_only e tid ~level
  | Mv e -> Mv_engine.begin_txn ?read_only e tid ~level:(mv_level level)
  | Timestamp e ->
    if read_only = Some true then
      invalid_arg "Engine: the timestamp engine has no read-only mode";
    To_engine.begin_txn e tid

let begin_txn_at t tid ~level ~start_ts =
  match t with
  | Locking _ | Timestamp _ ->
    invalid_arg "Engine.begin_txn_at: only multiversion engines have snapshots"
  | Mv e -> Mv_engine.begin_txn_at e tid ~level:(mv_level level) ~start_ts

let lift_lock_status = function
  | Lock_engine.Active -> Active
  | Lock_engine.Committed -> Committed
  | Lock_engine.Aborted Lock_engine.User_abort -> Aborted User_abort
  | Lock_engine.Aborted Lock_engine.Deadlock_victim -> Aborted Deadlock_victim
  | Lock_engine.Aborted Lock_engine.Fault_injected -> Aborted Fault_injected
  | Lock_engine.Aborted Lock_engine.Deadline_exceeded -> Aborted Deadline_exceeded
  | Lock_engine.Aborted Lock_engine.Certifier_abort -> Aborted Certifier_abort

let lift_mv_status = function
  | Mv_engine.Active -> Active
  | Mv_engine.Committed -> Committed
  | Mv_engine.Aborted Mv_engine.User_abort -> Aborted User_abort
  | Mv_engine.Aborted Mv_engine.Deadlock_victim -> Aborted Deadlock_victim
  | Mv_engine.Aborted Mv_engine.First_committer_wins -> Aborted First_committer_wins
  | Mv_engine.Aborted Mv_engine.First_updater_wins -> Aborted First_updater_wins
  | Mv_engine.Aborted Mv_engine.Serialization_failure -> Aborted Serialization_failure
  | Mv_engine.Aborted Mv_engine.Fault_injected -> Aborted Fault_injected
  | Mv_engine.Aborted Mv_engine.Deadline_exceeded -> Aborted Deadline_exceeded
  | Mv_engine.Aborted Mv_engine.Certifier_abort -> Aborted Certifier_abort

let lift_to_status = function
  | To_engine.Active -> Active
  | To_engine.Committed -> Committed
  | To_engine.Aborted To_engine.User_abort -> Aborted User_abort
  | To_engine.Aborted To_engine.Deadlock_victim -> Aborted Deadlock_victim
  | To_engine.Aborted To_engine.Too_late -> Aborted Too_late
  | To_engine.Aborted To_engine.Fault_injected -> Aborted Fault_injected
  | To_engine.Aborted To_engine.Deadline_exceeded -> Aborted Deadline_exceeded
  | To_engine.Aborted To_engine.Certifier_abort -> Aborted Certifier_abort

let status t tid =
  match t with
  | Locking e -> lift_lock_status (Lock_engine.status e tid)
  | Mv e -> lift_mv_status (Mv_engine.status e tid)
  | Timestamp e -> lift_to_status (To_engine.status e tid)

let env t tid =
  match t with
  | Locking e -> Lock_engine.env e tid
  | Mv e -> Mv_engine.env e tid
  | Timestamp e -> To_engine.env e tid

let step t tid op =
  let lift = function
    | Lock_engine.Progress -> Progress
    | Lock_engine.Blocked holders -> Blocked holders
    | Lock_engine.Finished -> Finished
  and lift_mv = function
    | Mv_engine.Progress -> Progress
    | Mv_engine.Blocked holders -> Blocked holders
    | Mv_engine.Finished -> Finished
  in
  match t with
  | Locking e -> lift (Lock_engine.step e tid op)
  | Mv e -> lift_mv (Mv_engine.step e tid op)
  | Timestamp e -> (
    match To_engine.step e tid op with
    | To_engine.Progress -> Progress
    | To_engine.Blocked holders -> Blocked holders
    | To_engine.Finished -> Finished)

(* Which shards a step touches, for the runtime's stripe planner. Only
   the locking engine is striped; the multiversion and timestamp engines
   share unsharded structures and always run under every stripe. *)
type footprint = Lock_engine.footprint = All | Keys of { keys : key list; pred : bool }

let footprint t tid op =
  match t with
  | Locking e -> Lock_engine.footprint e tid op
  | Mv _ | Timestamp _ -> All

let stripes = function
  | Locking e -> Lock_engine.stripes e
  | Mv _ | Timestamp _ -> 1

(* Externally-initiated aborts carry the reasons the runtime can decide
   on its own: deadlock victim (the default), an injected fault, a blown
   deadline, or a certifier doom. Engine-internal reasons
   (first-committer-wins, ...) only arise from the engines themselves. *)
let abort_txn ?(reason = Deadlock_victim) t tid =
  match t with
  | Locking e ->
    let reason =
      match reason with
      | Deadlock_victim -> Lock_engine.Deadlock_victim
      | Fault_injected -> Lock_engine.Fault_injected
      | Deadline_exceeded -> Lock_engine.Deadline_exceeded
      | User_abort -> Lock_engine.User_abort
      | Certifier_abort -> Lock_engine.Certifier_abort
      | _ ->
        invalid_arg "Engine.abort_txn: reason is internal to an engine"
    in
    Lock_engine.abort_txn e tid ~reason
  | Mv e ->
    let reason =
      match reason with
      | Deadlock_victim -> Mv_engine.Deadlock_victim
      | Fault_injected -> Mv_engine.Fault_injected
      | Deadline_exceeded -> Mv_engine.Deadline_exceeded
      | User_abort -> Mv_engine.User_abort
      | Certifier_abort -> Mv_engine.Certifier_abort
      | _ ->
        invalid_arg "Engine.abort_txn: reason is internal to an engine"
    in
    Mv_engine.abort_txn e tid ~reason
  | Timestamp e ->
    let reason =
      match reason with
      | Deadlock_victim -> To_engine.Deadlock_victim
      | Fault_injected -> To_engine.Fault_injected
      | Deadline_exceeded -> To_engine.Deadline_exceeded
      | User_abort -> To_engine.User_abort
      | Certifier_abort -> To_engine.Certifier_abort
      | _ ->
        invalid_arg "Engine.abort_txn: reason is internal to an engine"
    in
    To_engine.abort_txn e tid ~reason

(* Release a finished transaction's per-txn engine state. The locking
   engine clears its slot under its registration mutex, so the call is
   safe from the worker that owns the finished attempt without holding
   any stripes. The MV and timestamp engines step under *every* stripe
   (their footprint is [All]) and mutate plain transaction tables, so
   the runtime must call this for them under the same all-stripes
   exclusion (Pool routes it through with_aux_exclusion). *)
let forget t tid =
  match t with
  | Locking e -> Lock_engine.forget e tid
  | Mv e -> Mv_engine.forget e tid
  | Timestamp e -> To_engine.forget e tid

let trace = function
  | Locking e -> Lock_engine.trace e
  | Mv e -> Mv_engine.trace e
  | Timestamp e -> To_engine.trace e

let trace_len = function
  | Locking e -> Lock_engine.trace_len e
  | Mv e -> Mv_engine.trace_len e
  | Timestamp e -> To_engine.trace_len e

let set_lock_hook t f =
  match t with
  | Locking e -> Lock_engine.set_lock_hook e f
  | Mv e -> Mv_engine.set_lock_hook e f
  | Timestamp _ -> ()

(* Torn-commit injection: every family logs a terminal record now —
   Commit for the locking and timestamp engines, the Vcommit stamp for
   the multiversion one — and the hook is consulted as it would be
   written. *)
let set_tear_hook t f =
  match t with
  | Locking e -> Lock_engine.set_tear_hook e f
  | Mv e -> Mv_engine.set_tear_hook e f
  | Timestamp e -> To_engine.set_tear_hook e f

(* Vacuum observation (multiversion only): the certifier retires its
   version-order entries on the buried (key, writer) pairs. *)
let set_prune_hook t f =
  match t with
  | Mv e -> Mv_engine.set_prune_hook e f
  | Locking _ | Timestamp _ -> ()

let set_trace_hook t f =
  match t with
  | Locking e -> Lock_engine.set_trace_hook e f
  | Mv e -> Mv_engine.set_trace_hook e f
  | Timestamp e -> To_engine.set_trace_hook e f

let final_state = function
  | Locking e -> Lock_engine.final_state e
  | Mv e -> Mv_engine.final_state e
  | Timestamp e -> To_engine.final_state e

let wal = function
  | Locking e -> Some (Lock_engine.wal e)
  | Mv e -> Some (Mv_engine.wal e)
  | Timestamp e -> Some (To_engine.wal e)

(* Durability point after a commit step, outside the stripe critical
   section (group commit). *)
let wal_sync = function
  | Locking e -> Lock_engine.wal_sync e
  | Mv e -> Mv_engine.wal_sync e
  | Timestamp e -> To_engine.wal_sync e

let family = function
  | Locking _ -> `Locking
  | Mv _ -> `Mv
  | Timestamp _ -> `Timestamp

let lock_events = function
  | Locking e -> Some (Lock_engine.lock_events e)
  | Mv _ | Timestamp _ -> None

let lock_stats = function
  | Locking e -> Some (Lock_engine.lock_stats e)
  | Mv _ | Timestamp _ -> None
let version_store = function
  | Locking _ | Timestamp _ -> None
  | Mv e -> Some (Mv_engine.version_store e)
