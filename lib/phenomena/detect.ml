(* Executable detectors for the paper's phenomena and anomalies.

   Each detector scans a history for instances of the corresponding
   template and returns witnesses (the positions of the matching actions).
   The broad interpretations (P0-P3) fire as soon as the offending pattern
   appears while the first transaction is still active — the paper's point
   being precisely that a phenomenon flags a *potential* anomaly; the
   strict interpretations (A1-A3) additionally require the terminations the
   ANSI English demands. *)

type witness = {
  phenomenon : Phenomenon.t;
  t1 : History.Action.txn; (* the template's T1 role *)
  t2 : History.Action.txn;
  positions : int list;    (* positions of the matched actions, ascending *)
  note : string;
}

let pp_witness ppf w =
  Fmt.pf ppf "%s[T%d,T%d at %s]: %s"
    (Phenomenon.name w.phenomenon)
    w.t1 w.t2
    (String.concat "," (List.map string_of_int w.positions))
    w.note

module A = History.Action

type ctx = {
  arr : A.t array;
  term : A.txn -> int; (* termination position, or max_int while active *)
  commits : A.txn -> bool;
  aborts : A.txn -> bool;
}

let context h =
  let arr = Array.of_list h in
  let terms = Hashtbl.create 8 in
  let commits = Hashtbl.create 8 in
  let aborts = Hashtbl.create 8 in
  Array.iteri
    (fun i a ->
      match a with
      | A.Commit t ->
        Hashtbl.replace terms t i;
        Hashtbl.replace commits t ()
      | A.Abort t ->
        Hashtbl.replace terms t i;
        Hashtbl.replace aborts t ()
      | _ -> ())
    arr;
  {
    arr;
    term = (fun t -> Option.value ~default:max_int (Hashtbl.find_opt terms t));
    commits = (fun t -> Hashtbl.mem commits t);
    aborts = (fun t -> Hashtbl.mem aborts t);
  }

let item_reads ctx =
  Array.to_list ctx.arr
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (function i, A.Read r -> Some (i, r) | _ -> None)

let writes ctx =
  Array.to_list ctx.arr
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (function i, A.Write w -> Some (i, w) | _ -> None)

let pred_reads ctx =
  Array.to_list ctx.arr
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (function i, A.Pred_read p -> Some (i, p) | _ -> None)

(* Does a write affect a predicate read: it declares the predicate, or it
   touches an item the predicate matched when it was evaluated. *)
let affects (w : A.write) (p : A.pred_read) =
  List.mem p.pname w.wpreds || List.mem w.wk p.pkeys

let witness phenomenon t1 t2 positions note =
  { phenomenon; t1; t2; positions = List.sort compare positions; note }

(* P0: w1[x]...w2[x] while T1 is still active. *)
let detect_p0 ctx =
  List.concat_map
    (fun (i, (w1 : A.write)) ->
      List.filter_map
        (fun (j, (w2 : A.write)) ->
          if i < j && w1.wk = w2.wk && w1.wt <> w2.wt && j < ctx.term w1.wt then
            Some
              (witness Phenomenon.P0 w1.wt w2.wt [ i; j ]
                 (Fmt.str "T%d overwrites T%d's uncommitted write of %s" w2.wt
                    w1.wt w1.wk))
          else None)
        (writes ctx))
    (writes ctx)

(* P1: w1[x]...r2[x] while T1 is still active. Following the paper's broad
   reading of "data item" (§2.1: a predicate covers a set of items), a
   predicate evaluation that observes an uncommitted write affecting the
   predicate is also a dirty read — without this, forbidding P0-P3 would
   not imply serializability (the locking equivalence of Remark 6 relies
   on READ COMMITTED's short predicate locks blocking exactly these). *)
let detect_p1 ctx =
  List.concat_map
    (fun (i, (w1 : A.write)) ->
      List.filter_map
        (fun (j, (r2 : A.read)) ->
          if i < j && w1.wk = r2.rk && w1.wt <> r2.rt && j < ctx.term w1.wt then
            Some
              (witness Phenomenon.P1 w1.wt r2.rt [ i; j ]
                 (Fmt.str "T%d reads T%d's uncommitted write of %s" r2.rt w1.wt
                    w1.wk))
          else None)
        (item_reads ctx)
      @ List.filter_map
          (fun (j, (p2 : A.pred_read)) ->
            if i < j && affects w1 p2 && w1.wt <> p2.pt && j < ctx.term w1.wt
            then
              Some
                (witness Phenomenon.P1 w1.wt p2.pt [ i; j ]
                   (Fmt.str
                      "T%d evaluates %s over T%d's uncommitted write of %s"
                      p2.pt p2.pname w1.wt w1.wk))
            else None)
          (pred_reads ctx))
    (writes ctx)

(* A1: the P1 pattern where T1 in fact aborts and T2 commits. *)
let detect_a1 ctx =
  List.filter_map
    (fun w ->
      if ctx.aborts w.t1 && ctx.commits w.t2 then
        Some
          { w with
            phenomenon = Phenomenon.A1;
            note = w.note ^ "; T1 aborts and T2 commits" }
      else None)
    (detect_p1 ctx)

(* P2: r1[x]...w2[x] while T1 is still active. *)
let detect_p2 ctx =
  List.concat_map
    (fun (i, (r1 : A.read)) ->
      List.filter_map
        (fun (j, (w2 : A.write)) ->
          if i < j && r1.rk = w2.wk && r1.rt <> w2.wt && j < ctx.term r1.rt then
            Some
              (witness Phenomenon.P2 r1.rt w2.wt [ i; j ]
                 (Fmt.str "T%d modifies %s after T1=T%d read it, before T1 ends"
                    w2.wt r1.rk r1.rt))
          else None)
        (writes ctx))
    (item_reads ctx)

(* A2: r1[x]...w2[x]...c2...r1[x]...c1. *)
let detect_a2 ctx =
  List.concat_map
    (fun (i, (r1 : A.read)) ->
      List.concat_map
        (fun (j, (w2 : A.write)) ->
          if not (i < j && r1.rk = w2.wk && r1.rt <> w2.wt) then []
          else
            let c2 = ctx.term w2.wt in
            if not (ctx.commits w2.wt) then []
            else
              List.filter_map
                (fun (k, (r1' : A.read)) ->
                  if
                    r1'.rt = r1.rt && r1'.rk = r1.rk && j < c2 && c2 < k
                    && ctx.commits r1.rt
                  then
                    Some
                      (witness Phenomenon.A2 r1.rt w2.wt [ i; j; c2; k ]
                         (Fmt.str "T%d rereads %s after T%d's committed update"
                            r1.rt r1.rk w2.wt))
                  else None)
                (item_reads ctx))
        (writes ctx))
    (item_reads ctx)

(* P3: r1[P]...w2[y in P] while T1 is still active. *)
let detect_p3 ctx =
  List.concat_map
    (fun (i, (p1 : A.pred_read)) ->
      List.filter_map
        (fun (j, (w2 : A.write)) ->
          if i < j && w2.wt <> p1.pt && affects w2 p1 && j < ctx.term p1.pt then
            Some
              (witness Phenomenon.P3 p1.pt w2.wt [ i; j ]
                 (Fmt.str
                    "T%d writes %s satisfying predicate %s read by T%d, before \
                     T%d ends"
                    w2.wt w2.wk p1.pname p1.pt p1.pt))
          else None)
        (writes ctx))
    (pred_reads ctx)

(* A3: r1[P]...w2[y in P]...c2...r1[P]...c1. *)
let detect_a3 ctx =
  List.concat_map
    (fun (i, (p1 : A.pred_read)) ->
      List.concat_map
        (fun (j, (w2 : A.write)) ->
          if not (i < j && w2.wt <> p1.pt && affects w2 p1) then []
          else
            let c2 = ctx.term w2.wt in
            if not (ctx.commits w2.wt) then []
            else
              List.filter_map
                (fun (k, (p1' : A.pred_read)) ->
                  if
                    p1'.pt = p1.pt && p1'.pname = p1.pname && j < c2 && c2 < k
                    && ctx.commits p1.pt
                  then
                    Some
                      (witness Phenomenon.A3 p1.pt w2.wt [ i; j; c2; k ]
                         (Fmt.str
                            "T%d re-evaluates %s after T%d's committed \
                             phantom write"
                            p1.pt p1.pname w2.wt))
                  else None)
                (pred_reads ctx))
        (writes ctx))
    (pred_reads ctx)

(* P4: r1[x]...w2[x]...w1[x]...c1 — T1's update is based on a stale read,
   wiping T2's intervening update. *)
let detect_p4_generic phenomenon ~require_cursor ctx =
  List.concat_map
    (fun (i, (r1 : A.read)) ->
      if require_cursor && not r1.rcursor then []
      else
        List.concat_map
          (fun (j, (w2 : A.write)) ->
            if not (i < j && w2.wk = r1.rk && w2.wt <> r1.rt) then []
            else
              List.filter_map
                (fun (k, (w1 : A.write)) ->
                  if
                    j < k && w1.wt = r1.rt && w1.wk = r1.rk
                    && ctx.commits r1.rt
                  then
                    Some
                      (witness phenomenon r1.rt w2.wt [ i; j; k ]
                         (Fmt.str "T%d's update of %s is lost under T%d's"
                            w2.wt r1.rk r1.rt))
                  else None)
                (writes ctx))
          (writes ctx))
    (item_reads ctx)

let detect_p4 = detect_p4_generic Phenomenon.P4 ~require_cursor:false
let detect_p4c = detect_p4_generic Phenomenon.P4C ~require_cursor:true

(* A5A: r1[x]...w2[x]...w2[y]...c2...r1[y]. T1 reads x before and y after a
   committed update of both by T2 (the order of T2's two writes is
   immaterial to the anomaly, so we accept either). *)
let detect_a5a ctx =
  List.concat_map
    (fun (i, (r1 : A.read)) ->
      List.concat_map
        (fun (j, (w2x : A.write)) ->
          if not (i < j && w2x.wk = r1.rk && w2x.wt <> r1.rt) then []
          else
            List.concat_map
              (fun (k, (w2y : A.write)) ->
                if
                  not
                    (w2y.wt = w2x.wt && w2y.wk <> w2x.wk && i < k
                   && ctx.commits w2x.wt)
                then []
                else
                  let c2 = ctx.term w2x.wt in
                  List.filter_map
                    (fun (m, (r1y : A.read)) ->
                      if
                        r1y.rt = r1.rt && r1y.rk = w2y.wk && c2 < m && j < c2
                        && k < c2
                      then
                        Some
                          (witness Phenomenon.A5A r1.rt w2x.wt
                             [ i; j; k; c2; m ]
                             (Fmt.str
                                "T%d reads %s before and %s after T%d's \
                                 committed update of both"
                                r1.rt r1.rk w2y.wk w2x.wt))
                      else None)
                    (item_reads ctx))
              (writes ctx))
        (writes ctx))
    (item_reads ctx)

(* A5B: r1[x]...r2[y]...w1[y]...w2[x], both commit. *)
let detect_a5b ctx =
  List.concat_map
    (fun (i, (r1 : A.read)) ->
      List.concat_map
        (fun (j, (r2 : A.read)) ->
          if not (i < j && r2.rt <> r1.rt && r2.rk <> r1.rk) then []
          else
            List.concat_map
              (fun (k, (w1 : A.write)) ->
                if not (j < k && w1.wt = r1.rt && w1.wk = r2.rk) then []
                else
                  List.filter_map
                    (fun (l, (w2 : A.write)) ->
                      if
                        k < l && w2.wt = r2.rt && w2.wk = r1.rk
                        && ctx.commits r1.rt && ctx.commits r2.rt
                      then
                        Some
                          (witness Phenomenon.A5B r1.rt r2.rt [ i; j; k; l ]
                             (Fmt.str
                                "T%d and T%d cross-update %s and %s from \
                                 stale reads"
                                r1.rt r2.rt w1.wk w2.wk))
                      else None)
                    (writes ctx))
              (writes ctx))
        (item_reads ctx))
    (item_reads ctx)

(* Version-aware refinement for multiversion histories.

   The detectors above match the paper's single-version templates
   positionally. In a multiversion trace a read that positionally
   follows a write may still have returned an older version — a
   snapshot read — in which case the phenomenon did not occur; this is
   exactly §4.2's argument that Snapshot Isolation cannot be judged in
   single-version vocabulary. Each filter below keeps a witness only
   when the recorded versions (or terminations) corroborate the
   anomaly:

   - P0/P4/P4C: versions are private until commit, so an overwrite is
     only real when both transactions commit (what First-Committer-Wins
     forbids).
   - P1/A1: a dirty read must have returned the writer's uncommitted
     version; predicate evaluations run against the snapshot and are
     never dirty.
   - P2/A2, P3/A3: a fuzzy read / phantom must be observed — a later
     read (re-evaluation) by T1 returning a different version (item
     set); reads of T1's own versions do not count.
   - A5A: the second read must actually return T2's version.
   - A5B: write skew is real under SI; kept as matched. *)
let refine_mv h ws =
  let arr = Array.of_list h in
  let committed = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace committed t ()) (History.committed h);
  let commits t = Hashtbl.mem committed t in
  let read_at p = match arr.(p) with A.Read r -> Some r | _ -> None in
  let pred_at p = match arr.(p) with A.Pred_read pr -> Some pr | _ -> None in
  let minp (w : witness) = List.fold_left min max_int w.positions in
  let maxp (w : witness) = List.fold_left max 0 w.positions in
  let keys_differ a b = List.sort compare a <> List.sort compare b in
  let rereads_differently ~after t k ver =
    Array.exists Fun.id
      (Array.mapi
         (fun p a ->
           p > after
           &&
           match a with
           | A.Read r -> r.A.rt = t && r.A.rk = k && r.A.rver <> ver
                         && r.A.rver <> Some t
           | _ -> false)
         arr)
  in
  let reevaluates_differently ~after t pname keys =
    Array.exists Fun.id
      (Array.mapi
         (fun p a ->
           p > after
           &&
           match a with
           | A.Pred_read pr ->
             pr.A.pt = t && pr.A.pname = pname && keys_differ pr.A.pkeys keys
           | _ -> false)
         arr)
  in
  let keep (w : witness) =
    match w.phenomenon with
    | Phenomenon.P0 | Phenomenon.P4 | Phenomenon.P4C ->
      commits w.t1 && commits w.t2
    | Phenomenon.P1 | Phenomenon.A1 -> (
      match read_at (maxp w) with
      | Some r -> (
        match r.A.rver with Some v -> v = w.t1 | None -> true)
      | None -> false)
    | Phenomenon.P2 -> (
      match read_at (minp w) with
      | Some r -> rereads_differently ~after:(minp w) w.t1 r.A.rk r.A.rver
      | None -> true)
    | Phenomenon.A2 -> (
      match (read_at (minp w), read_at (maxp w)) with
      | Some r, Some r' -> r'.A.rver <> r.A.rver && r'.A.rver <> Some w.t1
      | _ -> true)
    | Phenomenon.P3 -> (
      match pred_at (minp w) with
      | Some pr ->
        reevaluates_differently ~after:(minp w) w.t1 pr.A.pname pr.A.pkeys
      | None -> true)
    | Phenomenon.A3 -> (
      match (pred_at (minp w), pred_at (maxp w)) with
      | Some pr, Some pr' -> keys_differ pr.A.pkeys pr'.A.pkeys
      | _ -> true)
    | Phenomenon.A5A -> (
      match read_at (maxp w) with
      | Some r -> (
        match r.A.rver with Some v -> v = w.t2 | None -> true)
      | None -> true)
    | Phenomenon.A5B -> true
  in
  List.filter keep ws

let detect_raw phenomenon h =
  let ctx = context h in
  match (phenomenon : Phenomenon.t) with
  | P0 -> detect_p0 ctx
  | P1 -> detect_p1 ctx
  | P2 -> detect_p2 ctx
  | P3 -> detect_p3 ctx
  | A1 -> detect_a1 ctx
  | A2 -> detect_a2 ctx
  | A3 -> detect_a3 ctx
  | P4 -> detect_p4 ctx
  | P4C -> detect_p4c ctx
  | A5A -> detect_a5a ctx
  | A5B -> detect_a5b ctx

(* Multiversion histories get the version-aware refinement by default,
   so the runtime oracle and deterministic Sim runs over MV traces share
   one detector library. *)
let detect phenomenon h =
  let ws = detect_raw phenomenon h in
  if ws <> [] && History.Mv.is_mv h then refine_mv h ws else ws

let occurs phenomenon h = detect phenomenon h <> []
let exhibited h = List.filter (fun p -> occurs p h) Phenomenon.all

let matrix h = List.map (fun p -> (p, occurs p h)) Phenomenon.all

(* Which template role suffers the anomaly — the transaction whose
   isolation guarantee the phenomenon breaks. Dirty reads (P1/A1) hurt
   the reader, which the templates cast as T2; the inconsistent-read
   family (P2/P3, A2/A3, A5A), lost updates (P4/P4C) — where T1's
   update is the one overwritten — hurt T1. Dirty writes (P0) and
   write skew (A5B) are symmetric: both participants' view is broken. *)
let victims (w : witness) =
  match w.phenomenon with
  | Phenomenon.P1 | Phenomenon.A1 -> [ w.t2 ]
  | Phenomenon.P0 | Phenomenon.A5B -> [ w.t1; w.t2 ]
  | Phenomenon.P2 | Phenomenon.A2 | Phenomenon.P3 | Phenomenon.A3
  | Phenomenon.P4 | Phenomenon.P4C | Phenomenon.A5A ->
    [ w.t1 ]
