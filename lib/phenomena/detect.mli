(** Executable detectors for the paper's phenomena and anomalies.

    Broad interpretations (P0–P3) fire as soon as the offending pattern
    appears while the template's T1 is still active; strict interpretations
    (A1–A3) also require the terminations the ANSI English demands. A5A
    accepts T2's two writes in either order (the anomaly does not depend on
    it); everything else follows the paper's templates literally. *)

type witness = {
  phenomenon : Phenomenon.t;
  t1 : History.Action.txn;  (** the template's T1 role *)
  t2 : History.Action.txn;
  positions : int list;     (** positions of the matched actions, ascending *)
  note : string;
}

val pp_witness : witness Fmt.t

val detect : Phenomenon.t -> History.t -> witness list
(** All instances of the phenomenon in the history. On a multiversion
    history (any version-annotated read, {!History.Mv.is_mv}) the
    positional matches are filtered through {!refine_mv}, so a snapshot
    read that positionally follows a write does not count as having
    observed it — §4.2's argument that SI cannot be judged in
    single-version vocabulary. *)

val detect_raw : Phenomenon.t -> History.t -> witness list
(** The purely positional template matches, with no version-aware
    refinement — the paper's single-version reading verbatim. *)

val refine_mv : History.t -> witness list -> witness list
(** Keep only witnesses the recorded versions (or terminations)
    corroborate: P0/P4/P4C need both transactions committed, a dirty
    read must return the writer's version, a fuzzy read / phantom must
    be observed by a later differing read, A5A's second read must
    return T2's version. A5B (write skew) is kept as matched. *)

val occurs : Phenomenon.t -> History.t -> bool
val exhibited : History.t -> Phenomenon.t list
val matrix : History.t -> (Phenomenon.t * bool) list

val victims : witness -> History.Action.txn list
(** The template role(s) whose isolation guarantee the phenomenon
    breaks: the reader for dirty reads (P1/A1), T1 for the
    inconsistent-read and lost-update families (P2/P3, A2/A3, A5A,
    P4/P4C), both participants for the symmetric P0 and A5B. The
    mixed-level criterion judges a witness against each victim's own
    declared level. *)
