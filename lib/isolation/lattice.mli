(** The isolation hierarchy (the paper's Figure 2 and its Definition of
    weaker/stronger/incomparable levels, §2.3).

    Levels are compared by their Table-4 possibility vectors: L1 « L2 when
    every phenomenon is possible under L2 in no more circumstances than
    under L1, strictly fewer for some. *)

module P = Phenomena.Phenomenon

type relation = Equivalent | Weaker | Stronger | Incomparable

val pp_relation : relation Fmt.t

val vector : Level.t -> int list
(** Possibility ranks over {!P.all}. *)

val compare_levels : Level.t -> Level.t -> relation
(** [compare_levels l1 l2] positions [l1] relative to [l2]:
    [Weaker] means [l1 « l2]. *)

val weaker : Level.t -> Level.t -> bool
(** The paper's [l1 « l2]. *)

val incomparable : Level.t -> Level.t -> bool
(** The paper's [l1 »« l2]. *)

val strengthen : Level.t -> [ `Locking | `Mv | `Timestamp ] -> Level.t
(** The weakest level of the target engine family whose possibility
    vector is pointwise at most the declared level's. Executing a
    transaction there keeps the declared contract on a single-family
    engine: nothing the declared level forbids becomes possible. Total —
    every family has a fully serializable member — and the identity on
    levels already of the target family. *)

val differentiating : Level.t -> Level.t -> P.t list
(** Phenomena strictly less possible under the second level — the paper's
    edge annotations in Figure 2. *)

type edge = { lower : Level.t; upper : Level.t; label : P.t list }

val pp_edge : edge Fmt.t

val hasse : unit -> edge list
(** Covering pairs of the computed strength order, with differentiating
    phenomena as labels. *)

val incomparable_pairs : unit -> (Level.t * Level.t * P.t list * P.t list) list
(** Incomparable pairs, each with the phenomena each side uniquely
    forbids. *)

val figure2_paper_edges : edge list
(** The edges as drawn in the paper's Figure 2 (reconstruction; see the
    implementation comment for the one divergence from the computed Hasse
    diagram). *)

val edge_consistent : edge -> bool
(** Is a claimed edge consistent with the computed order? Holds for every
    edge of {!figure2_paper_edges}. *)

(** The paper's remarks as decidable propositions. *)

val remark_1 : unit -> bool
(** RU « RC « RR « SERIALIZABLE. *)

val remark_7 : unit -> bool
(** READ COMMITTED « Cursor Stability « REPEATABLE READ. *)

val remark_8 : unit -> bool
(** READ COMMITTED « Snapshot Isolation. *)

val remark_9 : unit -> bool
(** REPEATABLE READ »« Snapshot Isolation. *)

val render_figure : unit -> string
(** ASCII rendering of Figure 2 with computed edge labels. *)
