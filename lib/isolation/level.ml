(* The isolation levels the paper names, spanning [GLPT]'s degrees of
   consistency (Table 2), the proposed phenomena-based levels (Table 3),
   Date's Cursor Stability (§4.1), Snapshot Isolation (§4.2) and Oracle
   Read Consistency (§4.3). *)

type t =
  | Degree_0
  | Read_uncommitted (* Degree 1 *)
  | Read_committed (* Degree 2 *)
  | Cursor_stability
  | Repeatable_read
  | Snapshot
  | Oracle_read_consistency
  | Serializable_snapshot
    (* extension: SI plus commit-time read validation; not in the paper *)
  | Timestamp_ordering
    (* extension: strict timestamp ordering, the classic lock-free
       serializable scheduler the ANSI definitions meant to admit *)
  | Serializable (* Degree 3 *)

let all =
  [ Degree_0; Read_uncommitted; Read_committed; Cursor_stability;
    Repeatable_read; Snapshot; Oracle_read_consistency;
    Serializable_snapshot; Timestamp_ordering; Serializable ]

(* The six rows of the paper's Table 4, in its order. *)
let table4_rows =
  [ Read_uncommitted; Read_committed; Cursor_stability; Repeatable_read;
    Snapshot; Serializable ]

let name = function
  | Degree_0 -> "Degree 0"
  | Read_uncommitted -> "READ UNCOMMITTED"
  | Read_committed -> "READ COMMITTED"
  | Cursor_stability -> "Cursor Stability"
  | Repeatable_read -> "REPEATABLE READ"
  | Snapshot -> "Snapshot"
  | Oracle_read_consistency -> "Oracle Read Consistency"
  | Serializable_snapshot -> "Serializable SI (SSI)"
  | Timestamp_ordering -> "Timestamp Ordering (T/O)"
  | Serializable -> "SERIALIZABLE"

(* [GLPT] degree of consistency, where one exists (Table 2). *)
let degree = function
  | Degree_0 -> Some 0
  | Read_uncommitted -> Some 1
  | Read_committed -> Some 2
  | Serializable -> Some 3
  | Cursor_stability | Repeatable_read | Snapshot | Oracle_read_consistency
  | Serializable_snapshot | Timestamp_ordering ->
    None

let is_multiversion = function
  | Snapshot | Oracle_read_consistency | Serializable_snapshot -> true
  | Degree_0 | Read_uncommitted | Read_committed | Cursor_stability
  | Repeatable_read | Timestamp_ordering | Serializable ->
    false

(* The engine family implementing each level. *)
let family = function
  | Snapshot | Oracle_read_consistency | Serializable_snapshot -> `Mv
  | Timestamp_ordering -> `Timestamp
  | Degree_0 | Read_uncommitted | Read_committed | Cursor_stability
  | Repeatable_read | Serializable ->
    `Locking

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "degree 0" | "degree0" | "degree_0" | "d0" -> Some Degree_0
  | "read uncommitted" | "read_uncommitted" | "ru" | "degree 1" | "d1" ->
    Some Read_uncommitted
  | "read committed" | "read_committed" | "rc" | "degree 2" | "d2" ->
    Some Read_committed
  | "cursor stability" | "cursor_stability" | "cs" -> Some Cursor_stability
  | "repeatable read" | "repeatable_read" | "rr" -> Some Repeatable_read
  | "snapshot" | "snapshot isolation" | "si" -> Some Snapshot
  | "oracle read consistency" | "oracle_read_consistency" | "read consistency"
  | "oracle" | "orc" ->
    Some Oracle_read_consistency
  | "serializable si (ssi)" | "serializable snapshot"
  | "serializable_snapshot" | "ssi" ->
    Some Serializable_snapshot
  | "timestamp ordering (t/o)" | "timestamp ordering" | "timestamp_ordering"
  | "timestamp" | "to" ->
    Some Timestamp_ordering
  | "serializable" | "ser" | "degree 3" | "d3" -> Some Serializable
  | _ -> None

(* Machine-readable spelling: JSON keys, Prometheus labels. Every slug
   round-trips through [of_string]. *)
let slug = function
  | Degree_0 -> "degree_0"
  | Read_uncommitted -> "read_uncommitted"
  | Read_committed -> "read_committed"
  | Cursor_stability -> "cursor_stability"
  | Repeatable_read -> "repeatable_read"
  | Snapshot -> "snapshot"
  | Oracle_read_consistency -> "oracle_read_consistency"
  | Serializable_snapshot -> "serializable_snapshot"
  | Timestamp_ordering -> "timestamp_ordering"
  | Serializable -> "serializable"

let pp ppf l = Fmt.string ppf (name l)
let compare = compare
let equal (a : t) b = a = b
