(** The isolation levels the paper names: [GLPT] degrees of consistency,
    the phenomena-based levels of Table 3, Cursor Stability (§4.1),
    Snapshot Isolation (§4.2) and Oracle Read Consistency (§4.3). *)

type t =
  | Degree_0
  | Read_uncommitted  (** Degree 1 *)
  | Read_committed  (** Degree 2 *)
  | Cursor_stability
  | Repeatable_read
  | Snapshot
  | Oracle_read_consistency
  | Serializable_snapshot
      (** extension: Snapshot Isolation plus commit-time read validation,
          the conservative form of PostgreSQL-style SSI; serializable but
          not in the paper *)
  | Timestamp_ordering
      (** extension: strict timestamp ordering — the classic lock-free
          serializable scheduler the ANSI definitions meant to admit *)
  | Serializable  (** Degree 3 *)

val all : t list

val table4_rows : t list
(** The six rows of the paper's Table 4, in its order. *)

val name : t -> string

val degree : t -> int option
(** The [GLPT] degree of consistency, where one exists. *)

val is_multiversion : t -> bool
(** Levels implemented by a multiversion engine rather than locking. *)

val family : t -> [ `Locking | `Mv | `Timestamp ]
(** The engine family implementing the level. *)

val slug : t -> string
(** Stable machine-readable name (lowercase, underscores): the JSON key
    and Prometheus label for the level. Round-trips via {!of_string}. *)

val of_string : string -> t option
val pp : t Fmt.t
val compare : t -> t -> int
val equal : t -> t -> bool
