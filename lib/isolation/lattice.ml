(* The isolation hierarchy (Figure 2).

   The paper's Definition (§2.3) compares levels by the non-serializable
   histories they admit. At the granularity of this module we compare
   levels by their Table-4 possibility vectors: L2 is stronger than L1 when
   every phenomenon is possible under L2 in no more circumstances than
   under L1 (rank(L2,p) <= rank(L1,p) for all p) and strictly fewer for
   some p. The simulator (lib/sim) refines this to per-scenario evidence. *)

module P = Phenomena.Phenomenon

type relation = Equivalent | Weaker | Stronger | Incomparable

let pp_relation ppf = function
  | Equivalent -> Fmt.string ppf "=="
  | Weaker -> Fmt.string ppf "<<" (* the paper's « *)
  | Stronger -> Fmt.string ppf ">>"
  | Incomparable -> Fmt.string ppf ">><<" (* the paper's »« *)

let vector level = List.map (fun p -> Spec.rank (Spec.table4 level p)) P.all

let compare_levels l1 l2 =
  let v1 = vector l1 and v2 = vector l2 in
  let le a b = List.for_all2 (fun x y -> x <= y) a b in
  match (le v1 v2, le v2 v1) with
  | true, true -> Equivalent
  | true, false -> Stronger (* l1 forbids at least as much as l2 *)
  | false, true -> Weaker
  | false, false -> Incomparable

let weaker l1 l2 = compare_levels l1 l2 = Weaker
let incomparable l1 l2 = compare_levels l1 l2 = Incomparable

(* The weakest level of [family] that honors every promise of [level]:
   among the family's levels whose possibility vector is pointwise <= the
   declared level's (each phenomenon possible in no more circumstances),
   the one permitting the most. Total because every family has a fully
   serializable member (SERIALIZABLE, Serializable SI, T/O). Running a
   transaction at [strengthen level family] on that family's engine keeps
   the declared contract: nothing the declared level forbids becomes
   possible. A declared level of the target family maps to itself — its
   own vector dominates every qualifying candidate's. *)
let strengthen level family =
  let v = vector level in
  let qualifies l =
    Level.family l = family && List.for_all2 (fun c d -> c <= d) (vector l) v
  in
  let permissiveness l = List.fold_left ( + ) 0 (vector l) in
  match
    List.fold_left
      (fun acc l ->
        if not (qualifies l) then acc
        else
          match acc with
          | Some best when permissiveness best >= permissiveness l -> acc
          | _ -> Some l)
      None Level.all
  with
  | Some l -> l
  | None -> assert false (* every family has a serializable member *)

(* Phenomena strictly less possible under [l2] than under [l1] — the
   paper's edge annotations. *)
let differentiating l1 l2 =
  List.filter
    (fun p -> Spec.rank (Spec.table4 l2 p) < Spec.rank (Spec.table4 l1 p))
    P.all

type edge = { lower : Level.t; upper : Level.t; label : P.t list }

let pp_edge ppf e =
  Fmt.pf ppf "%s << %s  [%s]" (Level.name e.lower) (Level.name e.upper)
    (String.concat "," (List.map P.name e.label))

(* Hasse diagram of the computed strength order: covering pairs only. *)
let hasse () =
  let levels = Level.all in
  let pairs =
    List.concat_map
      (fun l1 -> List.filter_map (fun l2 -> if weaker l1 l2 then Some (l1, l2) else None) levels)
      levels
  in
  let covers (l1, l2) =
    not
      (List.exists (fun l3 -> weaker l1 l3 && weaker l3 l2) levels)
  in
  List.filter covers pairs
  |> List.map (fun (l1, l2) -> { lower = l1; upper = l2; label = differentiating l1 l2 })

let incomparable_pairs () =
  let rec loop acc = function
    | [] -> List.rev acc
    | l1 :: rest ->
      let here =
        List.filter_map
          (fun l2 ->
            if incomparable l1 l2 then Some (l1, l2, differentiating l2 l1, differentiating l1 l2)
            else None)
          rest
      in
      loop (List.rev_append here acc) rest
  in
  loop [] Level.all

(* The edges as drawn in the paper's Figure 2 (reconstructed): both Cursor
   Stability and Oracle Read Consistency branch directly off READ
   COMMITTED, and REPEATABLE READ »« Snapshot Isolation. The computed
   Hasse diagram additionally orders Oracle Read Consistency below Cursor
   Stability, because cell-dominance ranks "Sometimes Possible" below
   "Possible"; the paper draws them as parallel branches. *)
let figure2_paper_edges =
  [
    { lower = Level.Degree_0; upper = Level.Read_uncommitted; label = [ P.P0 ] };
    { lower = Level.Read_uncommitted; upper = Level.Read_committed; label = [ P.P1 ] };
    { lower = Level.Read_committed; upper = Level.Cursor_stability; label = [ P.P4C ] };
    { lower = Level.Read_committed;
      upper = Level.Oracle_read_consistency;
      label = [ P.P4C ] };
    { lower = Level.Cursor_stability;
      upper = Level.Repeatable_read;
      label = [ P.P2; P.P4; P.A5A ] };
    { lower = Level.Oracle_read_consistency;
      upper = Level.Snapshot;
      label = [ P.A3; P.A5A; P.P4 ] };
    { lower = Level.Repeatable_read; upper = Level.Serializable; label = [ P.P3 ] };
    { lower = Level.Snapshot; upper = Level.Serializable; label = [ P.A5B ] };
  ]

(* Check that a claimed edge is consistent with the computed order: the
   lower level really is weaker, and every label phenomenon really does
   differentiate. *)
let edge_consistent e =
  (weaker e.lower e.upper || compare_levels e.lower e.upper = Equivalent)
  && List.for_all (fun p -> List.mem p (differentiating e.lower e.upper)) e.label

(* The paper's named remarks as decidable propositions. *)
let remark_1 () =
  weaker Level.Read_uncommitted Level.Read_committed
  && weaker Level.Read_committed Level.Repeatable_read
  && weaker Level.Repeatable_read Level.Serializable

let remark_7 () =
  weaker Level.Read_committed Level.Cursor_stability
  && weaker Level.Cursor_stability Level.Repeatable_read

let remark_8 () = weaker Level.Read_committed Level.Snapshot
let remark_9 () = incomparable Level.Repeatable_read Level.Snapshot

let render_figure () =
  let b = Buffer.create 1024 in
  let add fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let label l1 l2 =
    String.concat "," (List.map P.name (differentiating l1 l2))
  in
  add "                Serializable == Degree 3";
  add "                    /               \\";
  add "                 [%s]             [%s]"
    (label Level.Repeatable_read Level.Serializable)
    (label Level.Snapshot Level.Serializable);
  add "                  /                   \\";
  add "         Repeatable Read   >><<   Snapshot Isolation";
  add "                |       (A3 vs A5B)      |";
  add "          [%s]            [%s]"
    (label Level.Cursor_stability Level.Repeatable_read)
    (label Level.Oracle_read_consistency Level.Snapshot);
  add "                |                        |";
  add "        Cursor Stability     Oracle Read Consistency";
  add "                 \\                      /";
  add "                [%s]                [%s]"
    (label Level.Read_committed Level.Cursor_stability)
    (label Level.Read_committed Level.Oracle_read_consistency);
  add "                   \\                  /";
  add "                Read Committed == Degree 2";
  add "                        |";
  add "                      [%s]" (label Level.Read_uncommitted Level.Read_committed);
  add "                        |";
  add "               Read Uncommitted == Degree 1";
  add "                        |";
  add "                      [%s]" (label Level.Degree_0 Level.Read_uncommitted);
  add "                        |";
  add "                     Degree 0";
  Buffer.contents b
