(* The socket front-end: accept loop, per-connection reader/writer
   threads, frame dispatch into sessions, and the graceful drain.

   Thread/domain layout: the scheduler owns N worker *domains* that pump
   sessions (all engine work happens there); each accepted connection
   gets two *systhreads* on the main domain — a reader that decodes
   frames and routes them into session inboxes, and a writer that drains
   a response queue into the socket. Sessions ≫ connections ≫ file
   descriptors: the sid field in every frame multiplexes many sessions
   over one socket, which also keeps the server clear of [Unix.select]'s
   FD_SETSIZE ceiling.

   Responses can be produced from two places — the reader thread
   (protocol errors, session management) and any scheduler worker (a
   session answering) — so the writer queue is the single serialization
   point per connection.

   Drain: flip [draining] (new BEGINs and OPENs bounce with
   [err_draining]), give in-flight transactions a grace period, then
   shut the sockets down; the readers see EOF and feed every session a
   synthetic CLOSE, which aborts open transactions through the normal
   pump path. Only then is the scheduler stopped and the execution
   context finalized, so the trace, journal and certifier verdict cover
   every session. *)

module Pool = Runtime.Pool
module Level = Isolation.Level

type config = {
  host : string;
  port : int;  (** 0 picks a free port (see [on_ready]) *)
  pool : Pool.config;
      (** engine / concurrency / trace / fault / certify settings;
          [pool.workers] sizes the scheduler's domain pool *)
  family : [ `Locking | `Mv | `Timestamp ];
  default_level : Level.t;  (** sessions start here until SET LEVEL *)
  drain_grace_s : float;
  duration_s : float option;  (** [None] serves until [stop] flips *)
  stop : bool Atomic.t;
  on_ready : int -> unit;  (** called with the bound port once listening *)
  telemetry_port : int option;
      (** also serve a Prometheus text exposition over HTTP here
          (0 picks a free port, see [telemetry_ready]) *)
  telemetry_ready : int -> unit;
}

let config ?(host = "127.0.0.1") ?(port = 7654) ?(default_level = Level.Read_committed)
    ?(drain_grace_s = 2.0) ?duration_s ?(stop = Atomic.make false)
    ?(on_ready = fun _ -> ()) ?telemetry_port ?(telemetry_ready = fun _ -> ())
    ~pool ~family () =
  { host; port; pool; family; default_level; drain_grace_s; duration_s; stop;
    on_ready; telemetry_port; telemetry_ready }

type stats = {
  conns : int;
  sessions : int;
  frames : int;
  protocol_errors : int;
  disconnects : int;  (** injected connection severs (fault plan) *)
}

let pp_stats ppf s =
  Fmt.pf ppf "conns=%d sessions=%d frames=%d protocol_errors=%d disconnects=%d"
    s.conns s.sessions s.frames s.protocol_errors s.disconnects

(* {2 Connections} *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wm : Mutex.t;
  wcv : Condition.t;
  wq : Bytes.t Queue.t;
  mutable wclosed : bool;  (* no further responses; writer exits on empty *)
  sm : Mutex.t;
  sessions : (int, Session.t) Hashtbl.t;  (* sid -> session *)
  mutable frames_seen : int;
}

let conn_send c buf =
  Mutex.lock c.wm;
  if not c.wclosed then begin
    Queue.push buf c.wq;
    Condition.signal c.wcv
  end;
  Mutex.unlock c.wm

let conn_close_writes c =
  Mutex.lock c.wm;
  c.wclosed <- true;
  Condition.signal c.wcv;
  Mutex.unlock c.wm

let writer_loop c =
  let rec write_all buf pos len =
    if len > 0 then begin
      match Unix.write c.fd buf pos len with
      | n -> write_all buf (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all buf pos len
    end
  in
  let rec loop () =
    Mutex.lock c.wm;
    let rec next () =
      match Queue.take_opt c.wq with
      | Some buf -> Some buf
      | None ->
        if c.wclosed then None
        else begin
          Condition.wait c.wcv c.wm;
          next ()
        end
    in
    let item = next () in
    Mutex.unlock c.wm;
    match item with
    | None -> ()
    | Some buf -> (
      match write_all buf 0 (Bytes.length buf) with
      | () -> loop ()
      | exception Unix.Unix_error (_, _, _) ->
        (* peer gone; stop writing, the reader notices on its side *)
        conn_close_writes c)
  in
  loop ()

(* {2 The server} *)

type t = {
  cfg : config;
  exec : Pool.exec;
  sched : Scheduler.t;
  draining : bool Atomic.t;
  registry : (string, Storage.Predicate.t) Hashtbl.t;
  next_gid : int Atomic.t;
  n_conns : int Atomic.t;
  n_sessions : int Atomic.t;
  n_frames : int Atomic.t;
  n_protocol_errors : int Atomic.t;
  n_disconnects : int Atomic.t;
}

let emit_external t ~tid kind =
  match t.cfg.pool.Pool.trace with
  | Some sink -> Trace.Sink.emit_external sink ~worker:0 ~tid kind
  | None -> ()

let emit_inline t ~tid kind =
  (* from a scheduler worker domain: the ring is DLS-attached *)
  match t.cfg.pool.Pool.trace with
  | Some sink -> Trace.Sink.emit sink ~tid kind
  | None -> ()

let lookup_pred t : Protocol.pred -> (Storage.Predicate.t, string) result =
  function
  | Protocol.Named name -> (
    match Hashtbl.find_opt t.registry name with
    | Some p -> Ok p
    | None -> Error ("unknown predicate: " ^ name))
  | Protocol.Range { name; lo; hi } ->
    Ok (Storage.Predicate.key_range ~name ~lo ~hi)

let send_response c ~sid ~req resp =
  conn_send c (Protocol.encode_response ~sid ~req resp)

(* {2 Live telemetry}

   One scrape = one {!Telemetry.Report.t}: the runtime's live reading
   (racy-tolerant counter sums — no quiesce, no join) plus the
   scheduler's gauges and this front-end's own counters. Assembled on
   whichever thread asks: a connection reader answering STATS, or the
   HTTP exposition listener. *)

let report t =
  let sg = Scheduler.gauges t.sched in
  let scheduler =
    {
      Telemetry.Report.runnable = sg.Scheduler.runnable;
      parked = sg.Scheduler.parked;
      sessions_active = sg.Scheduler.active_tasks;
      wakes = sg.Scheduler.wakes;
      wake_wait_mean_us =
        (if sg.Scheduler.wakes = 0 then 0.
         else
           float_of_int sg.Scheduler.wake_ns_total
           /. float_of_int sg.Scheduler.wakes /. 1e3);
      wake_wait_max_us = float_of_int sg.Scheduler.wake_ns_max /. 1e3;
    }
  in
  let server =
    {
      Telemetry.Report.conns = Atomic.get t.n_conns;
      sessions = Atomic.get t.n_sessions;
      frames = Atomic.get t.n_frames;
      protocol_errors = Atomic.get t.n_protocol_errors;
      disconnects = Atomic.get t.n_disconnects;
      draining = Atomic.get t.draining;
    }
  in
  Telemetry.Report.make ~scheduler ~server (Pool.exec_live t.exec)

let open_session t c ~sid ~req =
  if Atomic.get t.draining then
    send_response c ~sid ~req
      (Protocol.Error { code = Protocol.err_draining; msg = "server draining" })
  else begin
    Mutex.lock c.sm;
    let fresh = not (Hashtbl.mem c.sessions sid) in
    Mutex.unlock c.sm;
    if not fresh then
      send_response c ~sid ~req
        (Protocol.Error
           { code = Protocol.err_bad_state; msg = "session already open" })
    else begin
      let gid = Atomic.fetch_and_add t.next_gid 1 in
      Atomic.incr t.n_sessions;
      let s =
        Session.create ~sid ~gid ~conn:c.cid ~exec:t.exec
          ~max_op_retries:t.cfg.pool.Pool.max_op_retries ~draining:t.draining
          ~lookup_pred:(lookup_pred t)
          ~send:(fun ~req resp -> send_response c ~sid ~req resp)
          ~emit:(fun ~tid kind -> emit_inline t ~tid kind)
          ~on_close:(fun s ->
            Mutex.lock c.sm;
            Hashtbl.remove c.sessions (Session.sid s);
            Mutex.unlock c.sm)
          ~level:t.cfg.default_level ~seed:t.cfg.pool.Pool.seed
      in
      let task = Scheduler.task (fun ~worker -> Session.pump s ~worker) in
      Session.set_task s task;
      Mutex.lock c.sm;
      Hashtbl.replace c.sessions sid s;
      Mutex.unlock c.sm;
      emit_external t ~tid:0
        (Trace.Event.Session_open { conn = c.cid; session = gid });
      send_response c ~sid ~req Protocol.Ok_resp
    end
  end

(* Feed every session of a dying connection a synthetic CLOSE: open
   transactions abort through the normal pump path, on a worker domain,
   with full journal/trace accounting. Replies go to the (now closed)
   writer queue and are dropped. *)
let close_all_sessions t c =
  Mutex.lock c.sm;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) c.sessions [] in
  Mutex.unlock c.sm;
  List.iter
    (fun s ->
      if Session.offer s ~req:0 Protocol.Close then
        Scheduler.wake t.sched (Session.task s))
    all

let handle_frame t c payload =
  match Protocol.decode_request payload with
  | Error msg ->
    Atomic.incr t.n_protocol_errors;
    send_response c ~sid:0 ~req:0
      (Protocol.Error { code = Protocol.err_malformed; msg });
    `Close "protocol_error"
  | Ok (sid, req, Protocol.Open) ->
    open_session t c ~sid ~req;
    `Continue
  | Ok (sid, req, Protocol.Stats) ->
    (* admin op, answered here on the reader thread (never enters a
       session); the reply rides the writer queue like any other
       response, so it pipelines with in-flight session traffic *)
    send_response c ~sid ~req
      (Protocol.Stats_resp (Telemetry.Report.to_json (report t)));
    `Continue
  | Ok (sid, req, request) -> (
    Mutex.lock c.sm;
    let s = Hashtbl.find_opt c.sessions sid in
    Mutex.unlock c.sm;
    match s with
    | None ->
      send_response c ~sid ~req
        (Protocol.Error
           { code = Protocol.err_bad_state; msg = "unknown session" });
      `Continue
    | Some s ->
      if Session.offer s ~req request then Scheduler.wake t.sched (Session.task s)
      else
        send_response c ~sid ~req
          (Protocol.Error
             { code = Protocol.err_bad_state; msg = "session closed" });
      `Continue)

let reader_loop t c =
  let buf = Bytes.create 65536 in
  let reader = Protocol.Reader.create () in
  let rec frames () =
    match Protocol.Reader.next reader with
    | `Awaiting -> `Continue
    | `Corrupt msg ->
      Atomic.incr t.n_protocol_errors;
      send_response c ~sid:0 ~req:0
        (Protocol.Error { code = Protocol.err_malformed; msg });
      `Close "protocol_error"
    | `Frame payload -> (
      c.frames_seen <- c.frames_seen + 1;
      Atomic.incr t.n_frames;
      let injected =
        match t.cfg.pool.Pool.fault with
        | Some plan -> (
          match
            Fault.Plan.point plan ~tid:c.cid
              (Fault.Plan.Frame { seq = c.frames_seen })
          with
          | Some Fault.Plan.Disconnect ->
            Atomic.incr t.n_disconnects;
            true
          | Some _ | None -> false)
        | None -> false
      in
      if injected then `Close "fault"
      else
        match handle_frame t c payload with
        | `Close _ as close -> close
        | `Continue -> frames ())
  in
  let rec loop () =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> "eof"
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> "eof"
    | n -> (
      Protocol.Reader.feed reader buf ~pos:0 ~len:n;
      match frames () with
      | `Continue -> loop ()
      | `Close reason -> reason)
  in
  let reason = loop () in
  emit_external t ~tid:0
    (Trace.Event.Conn_close { conn = c.cid; reason });
  close_all_sessions t c;
  conn_close_writes c

(* {2 The exposition endpoint}

   A deliberately tiny HTTP/1.0 responder: every request — whatever the
   path — gets the current Prometheus exposition and the connection is
   closed. Scrapers arrive every few seconds; keep-alive and request
   parsing would buy nothing. *)

let http_reply fd body =
  let msg =
    Bytes.of_string
      (Printf.sprintf
         "HTTP/1.0 200 OK\r\n\
          Content-Type: text/plain; version=0.0.4\r\n\
          Content-Length: %d\r\n\
          \r\n\
          %s"
         (String.length body) body)
  in
  let rec write_all pos len =
    if len > 0 then
      match Unix.write fd msg pos len with
      | n -> write_all (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all pos len
  in
  try write_all 0 (Bytes.length msg) with Unix.Unix_error (_, _, _) -> ()

let telemetry_loop t fd ~should_stop =
  let buf = Bytes.create 1024 in
  let rec loop () =
    if not (should_stop ()) then begin
      (match Unix.select [ fd ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept fd with
        | exception Unix.Unix_error (_, _, _) -> ()
        | cfd, _ ->
          (try ignore (Unix.read cfd buf 0 (Bytes.length buf))
           with Unix.Unix_error (_, _, _) -> ());
          http_reply cfd (Telemetry.Report.to_prometheus (report t));
          (try Unix.close cfd with Unix.Unix_error (_, _, _) -> ())));
      loop ()
    end
  in
  loop ()

(* {2 Serving} *)

let now () = Unix.gettimeofday ()

let serve cfg =
  (* a dead peer must not kill the server on write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let exec = Pool.exec_create cfg.pool ~family:cfg.family in
  let sched =
    Scheduler.create ~workers:cfg.pool.Pool.workers ~attach:(fun i ->
        Pool.exec_attach_worker exec ~worker:i)
  in
  let registry = Hashtbl.create 16 in
  Hashtbl.replace registry
    (Storage.Predicate.name Storage.Predicate.all)
    Storage.Predicate.all;
  List.iter
    (fun p -> Hashtbl.replace registry (Storage.Predicate.name p) p)
    cfg.pool.Pool.predicates;
  let t =
    {
      cfg;
      exec;
      sched;
      draining = Atomic.make false;
      registry;
      next_gid = Atomic.make 0;
      n_conns = Atomic.make 0;
      n_sessions = Atomic.make 0;
      n_frames = Atomic.make 0;
      n_protocol_errors = Atomic.make 0;
      n_disconnects = Atomic.make 0;
    }
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  cfg.on_ready port;
  let conns_m = Mutex.create () in
  let conns : conn list ref = ref [] in
  let threads : Thread.t list ref = ref [] in
  let deadline = Option.map (fun d -> now () +. d) cfg.duration_s in
  let should_stop () =
    Atomic.get cfg.stop
    || match deadline with Some d -> now () > d | None -> false
  in
  let telemetry =
    match cfg.telemetry_port with
    | None -> None
    | Some tport ->
      let tfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt tfd Unix.SO_REUSEADDR true;
      Unix.bind tfd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, tport));
      Unix.listen tfd 16;
      let bound =
        match Unix.getsockname tfd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> tport
      in
      cfg.telemetry_ready bound;
      Some (tfd, Thread.create (fun () -> telemetry_loop t tfd ~should_stop) ())
  in
  (* accept loop *)
  let rec accept_loop () =
    if not (should_stop ()) then begin
      match Unix.select [ listen_fd ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* a signal (typically the SIGINT drain) interrupted the poll;
           the loop condition re-checks the stop flag *)
        accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | exception Unix.Unix_error (_, _, _) -> accept_loop ()
        | fd, _ ->
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          let cid = Atomic.fetch_and_add t.n_conns 1 in
          let c =
            {
              cid;
              fd;
              wm = Mutex.create ();
              wcv = Condition.create ();
              wq = Queue.create ();
              wclosed = false;
              sm = Mutex.create ();
              sessions = Hashtbl.create 64;
              frames_seen = 0;
            }
          in
          emit_external t ~tid:0 (Trace.Event.Conn_open { conn = cid });
          let writer = Thread.create writer_loop c in
          let reader =
            Thread.create
              (fun () ->
                reader_loop t c;
                Thread.join writer;
                try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
              ()
          in
          Mutex.lock conns_m;
          conns := c :: !conns;
          threads := reader :: !threads;
          Mutex.unlock conns_m;
          accept_loop ())
    end
  in
  accept_loop ();
  (* drain: no new work, let in-flight transactions finish *)
  Atomic.set t.draining true;
  (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
  (match telemetry with
  | None -> ()
  | Some (tfd, th) ->
    (* the loop re-checks [should_stop] at select granularity; join it
       before the exec is finalized so no scrape races the teardown *)
    Thread.join th;
    (try Unix.close tfd with Unix.Unix_error (_, _, _) -> ()));
  ignore (Scheduler.quiesce sched ~timeout_s:cfg.drain_grace_s);
  (* sever the connections; readers see EOF and close every session
     through the pump path *)
  Mutex.lock conns_m;
  let live_conns = !conns and live_threads = !threads in
  Mutex.unlock conns_m;
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error (_, _, _) -> ())
    live_conns;
  List.iter Thread.join live_threads;
  ignore (Scheduler.quiesce sched ~timeout_s:(cfg.drain_grace_s +. 2.0));
  Scheduler.stop sched;
  let result = Pool.exec_finalize exec in
  let stats =
    {
      conns = Atomic.get t.n_conns;
      sessions = Atomic.get t.n_sessions;
      frames = Atomic.get t.n_frames;
      protocol_errors = Atomic.get t.n_protocol_errors;
      disconnects = Atomic.get t.n_disconnects;
    }
  in
  (result, stats)
